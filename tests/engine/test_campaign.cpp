// Campaign engine tests: spec expansion, work-unit sharding, determinism
// across thread counts and shard sizes, checkpoint/resume, edge cases, and
// the common-random-numbers / Monte-Carlo-equivalence guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/paper_encoders.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/report.hpp"
#include "link/monte_carlo.hpp"
#include "util/expect.hpp"

namespace sfqecc::engine {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest() {
    for (const core::PaperScheme& s : paper_schemes_)
      schemes_.push_back(
          link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
  }

  /// A small two-cell sweep with enough spread to produce non-trivial counts.
  CampaignSpec small_spec() const {
    CampaignSpec spec;
    spec.chips = 14;
    spec.messages_per_chip = 8;
    spec.seed = 4242;
    spec.spreads = {{0.20, ppv::SpreadDistribution::kUniform},
                    {0.30, ppv::SpreadDistribution::kUniform}};
    return spec;
  }

  /// Scoped temp file path; removed on destruction.
  struct TempFile {
    std::string path;
    explicit TempFile(const char* name)
        : path(std::string(::testing::TempDir()) + name) {
      std::remove(path.c_str());
    }
    ~TempFile() { std::remove(path.c_str()); }
  };

  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  std::vector<core::PaperScheme> paper_schemes_ = core::make_all_schemes(lib_);
  std::vector<link::SchemeSpec> schemes_;
};

// ----------------------------------------------------------- spec expansion --

TEST(CampaignSpecTest, ExpandsCartesianProduct) {
  CampaignSpec spec;
  spec.spreads = {{0.1, ppv::SpreadDistribution::kUniform},
                  {0.2, ppv::SpreadDistribution::kUniform}};
  spec.channels.resize(3);
  spec.arq_modes = {{false, 1}, {true, 4}};
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 2u * 3u * 2u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].seed, spec.seed);
    EXPECT_FALSE(cells[i].label.empty());
  }
}

TEST(CampaignSpecTest, EmptyAxisYieldsEmptySweep) {
  CampaignSpec spec;
  spec.spreads.clear();
  EXPECT_TRUE(expand_cells(spec).empty());
}

TEST(CampaignSpecTest, WorkUnitsInterleaveSchemes) {
  const auto units = make_work_units(/*cells=*/1, /*schemes=*/3, /*chips=*/10,
                                     /*shard_chips=*/4);
  ASSERT_EQ(units.size(), 3u * 3u);  // 3 shards x 3 schemes
  // Schemes are innermost: consecutive units cover different schemes.
  EXPECT_EQ(units[0].scheme, 0u);
  EXPECT_EQ(units[1].scheme, 1u);
  EXPECT_EQ(units[2].scheme, 2u);
  EXPECT_EQ(units[0].chip_lo, 0u);
  EXPECT_EQ(units[0].chip_hi, 4u);
  EXPECT_EQ(units.back().chip_lo, 8u);
  EXPECT_EQ(units.back().chip_hi, 10u);  // last shard clipped to chips
}

TEST(CampaignSpecTest, ZeroDimensionsYieldNoUnits) {
  EXPECT_TRUE(make_work_units(0, 2, 10, 4).empty());
  EXPECT_TRUE(make_work_units(2, 0, 10, 4).empty());
  EXPECT_TRUE(make_work_units(2, 2, 0, 4).empty());
}

TEST(CampaignSpecTest, ShardZeroMeansOneShardPerScheme) {
  const auto units = make_work_units(1, 2, 10, 0);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].chip_hi, 10u);
}

TEST(CampaignSpecTest, FingerprintDetectsCampaignChanges) {
  CampaignSpec spec;
  const auto cells = expand_cells(spec);
  const std::vector<std::string> names{"a", "b"};
  const std::uint64_t base = campaign_fingerprint(spec, cells, names, 32);
  EXPECT_EQ(base, campaign_fingerprint(spec, cells, names, 32));

  CampaignSpec reseeded = spec;
  reseeded.seed ^= 1;
  EXPECT_NE(base, campaign_fingerprint(reseeded, expand_cells(reseeded), names, 32));
  EXPECT_NE(base, campaign_fingerprint(spec, cells, names, 16));
  EXPECT_NE(base, campaign_fingerprint(spec, cells, {"a"}, 32));
}

// ------------------------------------------------------------- determinism --

TEST_F(CampaignTest, BitIdenticalAcrossThreadCountsAndShards) {
  const CampaignSpec spec = small_spec();
  RunnerOptions reference_options;
  reference_options.threads = 1;
  reference_options.shard_chips = 4;
  const CampaignResult reference = run_campaign(spec, schemes_, lib_, reference_options);
  const std::string reference_json = campaign_json(spec, reference);

  struct Variant {
    std::size_t threads, shard;
  };
  for (const Variant v : {Variant{2, 4}, Variant{8, 1}, Variant{3, 100}}) {
    RunnerOptions options;
    options.threads = v.threads;
    options.shard_chips = v.shard;
    const CampaignResult result = run_campaign(spec, schemes_, lib_, options);
    ASSERT_EQ(result.cells.size(), reference.cells.size());
    for (std::size_t c = 0; c < result.cells.size(); ++c)
      for (std::size_t s = 0; s < schemes_.size(); ++s) {
        EXPECT_EQ(result.cells[c].schemes[s].errors_per_chip,
                  reference.cells[c].schemes[s].errors_per_chip)
            << "threads=" << v.threads << " shard=" << v.shard;
        EXPECT_EQ(result.cells[c].schemes[s].flagged_per_chip,
                  reference.cells[c].schemes[s].flagged_per_chip);
        EXPECT_EQ(result.cells[c].schemes[s].channel_bit_errors_per_chip,
                  reference.cells[c].schemes[s].channel_bit_errors_per_chip);
      }
    EXPECT_EQ(campaign_json(spec, result), reference_json);
  }
}

TEST_F(CampaignTest, MatchesRunMonteCarloOnTheFig5Cell) {
  // A one-cell campaign expanded from the declarative spec must agree with
  // the run_monte_carlo wrapper (which hand-builds its cell) bit for bit.
  CampaignSpec spec;
  spec.chips = 12;
  spec.messages_per_chip = 10;
  spec.seed = 777;
  spec.spreads = {{0.20, ppv::SpreadDistribution::kUniform}};
  const CampaignResult campaign = run_campaign(spec, schemes_, lib_);

  link::MonteCarloConfig config;
  config.chips = spec.chips;
  config.messages_per_chip = spec.messages_per_chip;
  config.seed = spec.seed;
  config.link.sim.record_pulses = false;
  const auto outcomes = link::run_monte_carlo(schemes_, lib_, config);
  ASSERT_EQ(outcomes.size(), schemes_.size());
  for (std::size_t s = 0; s < schemes_.size(); ++s) {
    EXPECT_EQ(outcomes[s].errors_per_chip, campaign.cells[0].schemes[s].errors_per_chip)
        << schemes_[s].name;
    EXPECT_EQ(outcomes[s].flagged_per_chip,
              campaign.cells[0].schemes[s].flagged_per_chip);
    EXPECT_DOUBLE_EQ(outcomes[s].p_zero, campaign.cells[0].schemes[s].p_zero);
  }
}

TEST_F(CampaignTest, CommonRandomNumbersAcrossCells) {
  // Cells differing only in the ARQ axis evaluate identical fabricated chips,
  // so a scheme that never raises flags (the raw link has no decoder to flag)
  // sees identical outcomes in both cells.
  CampaignSpec spec = small_spec();
  spec.spreads.resize(1);
  spec.arq_modes = {{false, 1}, {true, 3}};
  const CampaignResult result = run_campaign(spec, schemes_, lib_);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].schemes[0].errors_per_chip,
            result.cells[1].schemes[0].errors_per_chip);
}

TEST_F(CampaignTest, HandBuiltCellsWithDuplicateIndexesStayDistinct) {
  // The public run_cells API accepts hand-built cells; two cells left at the
  // default index 0 but with different link configs must not share a worker's
  // cached DataLink (the cache keys on list position, not CampaignCell::index).
  CampaignSpec spec;
  spec.chips = 8;
  spec.messages_per_chip = 10;
  spec.seed = 99;
  CampaignCell quiet;
  quiet.seed = spec.seed;
  quiet.spread.fraction = 0.0;
  quiet.link.sim.record_pulses = false;
  CampaignCell noisy = quiet;
  noisy.link.channel.noise_sigma_mv = 0.30;  // per-bit BER of a few percent
  ASSERT_EQ(quiet.index, noisy.index);

  std::vector<link::SchemeSpec> raw{schemes_[0]};
  RunnerOptions options;
  options.threads = 1;  // one worker sees both cells: exercises the cache
  const CampaignResult result =
      run_cells(spec, {quiet, noisy}, raw, lib_, options);
  std::size_t quiet_bits = 0, noisy_bits = 0;
  for (std::size_t c : result.cells[0].schemes[0].channel_bit_errors_per_chip)
    quiet_bits += c;
  for (std::size_t c : result.cells[1].schemes[0].channel_bit_errors_per_chip)
    noisy_bits += c;
  EXPECT_EQ(quiet_bits, 0u);
  EXPECT_GT(noisy_bits, 0u);
}

// --------------------------------------------------------------- edge cases --

TEST_F(CampaignTest, EmptySweepYieldsEmptyResult) {
  CampaignSpec spec = small_spec();
  spec.channels.clear();
  const CampaignResult result = run_campaign(spec, schemes_, lib_);
  EXPECT_TRUE(result.cells.empty());
  EXPECT_EQ(result.units_total, 0u);
  EXPECT_TRUE(result.complete());
}

TEST_F(CampaignTest, NoSchemesYieldsNoUnits) {
  const CampaignResult result =
      run_campaign(small_spec(), std::vector<link::SchemeSpec>{}, lib_);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(result.cells[0].schemes.empty());
  EXPECT_EQ(result.units_total, 0u);
}

TEST_F(CampaignTest, ZeroChipsYieldsEmptyPerChipData) {
  CampaignSpec spec = small_spec();
  spec.chips = 0;
  const CampaignResult result = run_campaign(spec, schemes_, lib_);
  EXPECT_EQ(result.units_total, 0u);
  ASSERT_FALSE(result.cells.empty());
  const SchemeCellResult& scheme = result.cells[0].schemes[0];
  EXPECT_TRUE(scheme.errors_per_chip.empty());
  EXPECT_DOUBLE_EQ(scheme.p_zero, 0.0);
  EXPECT_DOUBLE_EQ(scheme.channel_ber, 0.0);
}

TEST_F(CampaignTest, SingleWorkUnit) {
  CampaignSpec spec = small_spec();
  spec.chips = 3;
  spec.spreads.resize(1);
  RunnerOptions options;
  options.shard_chips = 100;  // one shard covers all chips
  options.threads = 8;        // clamped to the single unit
  std::vector<link::SchemeSpec> one_scheme{schemes_[3]};
  const CampaignResult result = run_campaign(spec, one_scheme, lib_, options);
  EXPECT_EQ(result.units_total, 1u);
  EXPECT_EQ(result.units_executed, 1u);
  ASSERT_EQ(result.cells[0].schemes[0].errors_per_chip.size(), 3u);
  EXPECT_TRUE(result.complete());
}

// ---------------------------------------------------------------------- ARQ --

TEST_F(CampaignTest, ArqRetransmitsFlaggedFrames) {
  // Under 30 % spread Hamming(8,4) raises flags; with ARQ those frames are
  // retransmitted, so the chips that flag transmit strictly more frames.
  CampaignSpec spec = small_spec();
  spec.spreads = {{0.30, ppv::SpreadDistribution::kUniform}};
  spec.arq_modes = {{false, 1}, {true, 4}};
  std::vector<link::SchemeSpec> h84{schemes_[3]};
  const CampaignResult result = run_campaign(spec, h84, lib_);
  ASSERT_EQ(result.cells.size(), 2u);
  const SchemeCellResult& plain = result.cells[0].schemes[0];
  const SchemeCellResult& arq = result.cells[1].schemes[0];

  std::size_t plain_flagged = 0;
  for (std::size_t f : plain.flagged_per_chip) plain_flagged += f;
  ASSERT_GT(plain_flagged, 0u) << "fixture no longer produces flags; raise spread";

  for (std::size_t chip = 0; chip < spec.chips; ++chip) {
    EXPECT_EQ(plain.frames_per_chip[chip], spec.messages_per_chip);
    EXPECT_GE(arq.frames_per_chip[chip], spec.messages_per_chip);
    EXPECT_LE(arq.frames_per_chip[chip], spec.messages_per_chip * 4);
    if (plain.flagged_per_chip[chip] > 0) {
      EXPECT_GT(arq.frames_per_chip[chip], spec.messages_per_chip) << "chip " << chip;
    }
  }
  EXPECT_GT(arq.mean_frames, plain.mean_frames);
}

// --------------------------------------------------------- checkpoint/resume --

TEST_F(CampaignTest, CheckpointRoundTrip) {
  TempFile file("ckpt_roundtrip.txt");
  UnitResult unit;
  unit.unit = WorkUnit{1, 2, 4, 7};
  unit.errors = {1, 0, 5};
  unit.flagged = {0, 0, 2};
  unit.frames = {8, 8, 12};
  unit.channel_bit_errors = {0, 3, 1};
  {
    CheckpointWriter writer(file.path, 0xabcdefULL, false);
    writer.record(unit);
  }
  CheckpointData data;
  ASSERT_TRUE(load_checkpoint(file.path, data));
  EXPECT_EQ(data.fingerprint, 0xabcdefULL);
  ASSERT_EQ(data.units.size(), 1u);
  EXPECT_EQ(data.units[0].unit.cell, 1u);
  EXPECT_EQ(data.units[0].unit.scheme, 2u);
  EXPECT_EQ(data.units[0].errors, unit.errors);
  EXPECT_EQ(data.units[0].flagged, unit.flagged);
  EXPECT_EQ(data.units[0].frames, unit.frames);
  EXPECT_EQ(data.units[0].channel_bit_errors, unit.channel_bit_errors);
}

TEST_F(CampaignTest, KillTruncatedTrailingLineIsDroppedNotFatal) {
  // A SIGKILL mid-flush can persist any prefix of the final line; resume must
  // drop the partial record (re-running that unit), never abort.
  TempFile file("ckpt_truncated.txt");
  UnitResult unit;
  unit.unit = WorkUnit{0, 0, 0, 2};
  unit.errors = {1, 2};
  unit.flagged = {0, 1};
  unit.frames = {4, 4};
  unit.channel_bit_errors = {0, 0};
  {
    CheckpointWriter writer(file.path, 7, false);
    writer.record(unit);
  }
  for (const char* tail : {"un", "unit 0 1 2", "unit 0 1 2 4 e 1 2 f 0",
                           // All counts present but no "end" sentinel: a kill
                           // inside the final digit sequence must not be
                           // accepted as a complete record.
                           "unit 0 1 2 4 e 1 2 f 0 0 n 4 4 c 0 1"}) {
    std::ofstream append(file.path, std::ios::app);
    append << tail << '\n';
    append.close();
    CheckpointData data;
    ASSERT_TRUE(load_checkpoint(file.path, data)) << tail;
    EXPECT_EQ(data.units.size(), 1u) << tail;  // only the intact record survives
    // Rewrite the file fresh for the next tail variant.
    std::remove(file.path.c_str());
    CheckpointWriter writer(file.path, 7, false);
    writer.record(unit);
  }

  // A kill mid-flush can also leave the file ending mid-line with no
  // newline; a resuming writer must start on a fresh line so its record is
  // not concatenated onto the partial one.
  {
    std::ofstream append(file.path, std::ios::app);
    append << "unit 0 0 2 4 e 1";  // no trailing newline
  }
  CheckpointData before;
  ASSERT_TRUE(load_checkpoint(file.path, before));
  UnitResult second = unit;
  second.unit.chip_lo = 2;
  second.unit.chip_hi = 4;
  {
    CheckpointWriter writer(file.path, 7, true);
    writer.record(second);
  }
  CheckpointData after;
  ASSERT_TRUE(load_checkpoint(file.path, after));
  EXPECT_EQ(after.units.size(), before.units.size() + 1);
}

TEST_F(CampaignTest, MissingCheckpointFileIsAFreshRun) {
  CheckpointData data;
  EXPECT_FALSE(load_checkpoint("/nonexistent/checkpoint.txt", data));
}

TEST_F(CampaignTest, KillTruncatedHeaderIsAFreshRunNotFatal) {
  // A kill during the very first header flush can leave an empty file or a
  // newline-less header prefix; a rerun must recover (the writer truncates
  // the debris), not abort forever.
  for (const char* debris : {"", "sfq", "sfqecc-campaign-checkpoint 1 ab"}) {
    TempFile file("ckpt_header.txt");
    {
      std::ofstream out(file.path);
      out << debris;  // no newline: the flush never completed
    }
    CheckpointData data;
    EXPECT_FALSE(load_checkpoint(file.path, data)) << '"' << debris << '"';

    CheckpointWriter writer(file.path, 11, false);
    UnitResult unit;
    unit.unit = WorkUnit{0, 0, 0, 1};
    unit.errors = unit.flagged = unit.frames = unit.channel_bit_errors = {3};
    writer.record(unit);
    ASSERT_TRUE(load_checkpoint(file.path, data)) << '"' << debris << '"';
    EXPECT_EQ(data.fingerprint, 11u);
    ASSERT_EQ(data.units.size(), 1u);
  }
}

TEST_F(CampaignTest, CompleteForeignHeaderLineStaysFatal) {
  // A complete first line that is not a checkpoint header probably means the
  // path names the wrong file; never risk truncating user data.
  TempFile file("ckpt_foreign.txt");
  {
    std::ofstream out(file.path);
    out << "# My precious notes\n";
  }
  CheckpointData data;
  EXPECT_THROW(load_checkpoint(file.path, data), ContractViolation);
}

TEST_F(CampaignTest, PartialRunReportsHonestPerCellCompleteness) {
  // Units that never ran must not contribute fabricated perfect statistics:
  // their chips are excluded and chips_completed says what the stats cover.
  CampaignSpec spec = small_spec();
  RunnerOptions options;
  options.threads = 1;
  options.shard_chips = 7;  // 2 shards per (cell, scheme)
  options.max_units = 3;
  const CampaignResult partial = run_campaign(spec, schemes_, lib_, options);
  EXPECT_FALSE(partial.complete());

  std::size_t chips_covered = 0, fully_covered_pairs = 0;
  for (const CellResult& cell : partial.cells)
    for (const SchemeCellResult& scheme : cell.schemes) {
      EXPECT_LE(scheme.chips_completed, spec.chips);
      EXPECT_EQ(scheme.cdf.sample_count(), scheme.chips_completed);
      if (scheme.chips_completed == 0) {
        EXPECT_DOUBLE_EQ(scheme.p_zero, 0.0);
      }
      if (scheme.chips_completed == spec.chips) ++fully_covered_pairs;
      chips_covered += scheme.chips_completed;
    }
  EXPECT_EQ(chips_covered, 3u * 7u);  // 3 executed units x 7 chips each
  EXPECT_LT(fully_covered_pairs, partial.cells.size() * schemes_.size());

  // A complete run covers every chip of every pair.
  const CampaignResult full = run_campaign(spec, schemes_, lib_);
  for (const CellResult& cell : full.cells)
    for (const SchemeCellResult& scheme : cell.schemes)
      EXPECT_EQ(scheme.chips_completed, spec.chips);
}

TEST_F(CampaignTest, InterruptedAndResumedMatchesUninterrupted) {
  const CampaignSpec spec = small_spec();
  RunnerOptions plain;
  plain.threads = 2;
  plain.shard_chips = 4;
  const CampaignResult reference = run_campaign(spec, schemes_, lib_, plain);
  const std::string reference_json = campaign_json(spec, reference);
  const std::string reference_csv = campaign_csv(reference);

  TempFile file("ckpt_resume.txt");
  RunnerOptions interrupted = plain;
  interrupted.checkpoint_path = file.path;
  interrupted.max_units = reference.units_total / 2;  // simulate a mid-run kill
  const CampaignResult partial = run_campaign(spec, schemes_, lib_, interrupted);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.units_executed, reference.units_total / 2);

  RunnerOptions resumed = plain;
  resumed.checkpoint_path = file.path;
  const CampaignResult full = run_campaign(spec, schemes_, lib_, resumed);
  EXPECT_TRUE(full.complete());
  EXPECT_EQ(full.units_resumed, reference.units_total / 2);
  EXPECT_EQ(full.units_executed, reference.units_total - full.units_resumed);
  EXPECT_EQ(campaign_json(spec, full), reference_json);
  EXPECT_EQ(campaign_csv(full), reference_csv);
}

TEST_F(CampaignTest, ResumingACompletedCampaignExecutesNothing) {
  const CampaignSpec spec = small_spec();
  TempFile file("ckpt_complete.txt");
  RunnerOptions options;
  options.checkpoint_path = file.path;
  options.shard_chips = 4;
  const CampaignResult first = run_campaign(spec, schemes_, lib_, options);
  EXPECT_TRUE(first.complete());
  const CampaignResult again = run_campaign(spec, schemes_, lib_, options);
  EXPECT_TRUE(again.complete());
  EXPECT_EQ(again.units_executed, 0u);
  EXPECT_EQ(again.units_resumed, again.units_total);
  EXPECT_EQ(campaign_json(spec, again), campaign_json(spec, first));
}

TEST_F(CampaignTest, CheckpointFromDifferentCampaignIsRejected) {
  const CampaignSpec spec = small_spec();
  TempFile file("ckpt_mismatch.txt");
  RunnerOptions options;
  options.checkpoint_path = file.path;
  run_campaign(spec, schemes_, lib_, options);

  CampaignSpec other = spec;
  other.seed ^= 1;
  EXPECT_THROW(run_campaign(other, schemes_, lib_, options), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::engine
