// Artifact-cache tests: content-address fingerprints, hit/miss/eviction
// accounting, LRU byte-budget behaviour, and the campaign-level guarantees —
// cross-cell chip reuse under concurrent workers with byte-identical reports
// at any cache setting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/paper_encoders.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/campaign.hpp"
#include "engine/kernel.hpp"
#include "engine/report.hpp"
#include "engine/scheme_artifacts.hpp"

namespace sfqecc::engine {
namespace {

ppv::ChipSample sample_of(std::size_t cells, double ratio) {
  ppv::ChipSample chip;
  chip.health_ratios.assign(cells, ratio);
  chip.faults.assign(cells, sim::CellFault{});
  return chip;
}

ArtifactKey key_of(std::uint64_t chip_stream) {
  return ArtifactKey{0x5c5ecafeULL, 0x5b12eadULL, 20250831, chip_stream};
}

// ------------------------------------------------------------- fingerprints --

TEST(ArtifactFingerprintTest, SpreadFingerprintSeparatesSpecs) {
  const ppv::SpreadSpec base{0.20, ppv::SpreadDistribution::kUniform};
  EXPECT_EQ(spread_fingerprint(base), spread_fingerprint(base));
  EXPECT_NE(spread_fingerprint(base),
            spread_fingerprint({0.30, ppv::SpreadDistribution::kUniform}));
  EXPECT_NE(spread_fingerprint(base),
            spread_fingerprint({0.20, ppv::SpreadDistribution::kGaussian}));
}

TEST(ArtifactFingerprintTest, SchemeFingerprintSeparatesNetlistsNamesAndLibraries) {
  const auto& lib = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(lib);
  const std::uint64_t h74 =
      scheme_fingerprint(schemes[2].name, schemes[2].encoder->netlist, lib);
  EXPECT_EQ(h74, scheme_fingerprint(schemes[2].name, schemes[2].encoder->netlist, lib));
  // Different netlist, same library.
  EXPECT_NE(h74,
            scheme_fingerprint(schemes[3].name, schemes[3].encoder->netlist, lib));
  // Same netlist, different name (two schemes sharing a circuit must not alias).
  EXPECT_NE(h74, scheme_fingerprint("renamed", schemes[2].encoder->netlist, lib));

  // Same netlist and name under a recalibrated library: fabrication would
  // draw different chips, so the fingerprint must differ too.
  std::map<circuit::CellType, circuit::CellSpec> specs;
  for (circuit::CellType type :
       {circuit::CellType::kXor, circuit::CellType::kAnd, circuit::CellType::kOr,
        circuit::CellType::kNot, circuit::CellType::kDff, circuit::CellType::kSplitter,
        circuit::CellType::kJtl, circuit::CellType::kMerger, circuit::CellType::kTff,
        circuit::CellType::kSfqToDc, circuit::CellType::kDcToSfq})
    if (lib.has(type)) {
      circuit::CellSpec spec = lib.spec(type);
      spec.ppv_sensitivity *= 1.5;
      specs[type] = spec;
    }
  const circuit::CellLibrary recalibrated("recalibrated", std::move(specs));
  EXPECT_NE(h74, scheme_fingerprint(schemes[2].name, schemes[2].encoder->netlist,
                                    recalibrated));
}

// ---------------------------------------------------------------- accounting --

TEST(ArtifactCacheTest, HitMissAccounting) {
  ArtifactCache cache(1 << 20);
  ppv::ChipSample scratch;

  EXPECT_FALSE(cache.lookup(key_of(0), scratch));
  const ppv::ChipSample chip = sample_of(8, 0.75);
  cache.insert(key_of(0), chip);
  ASSERT_TRUE(cache.lookup(key_of(0), scratch));
  EXPECT_EQ(scratch.health_ratios, chip.health_ratios);
  EXPECT_FALSE(cache.lookup(key_of(1), scratch));

  const ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, ArtifactCache::artifact_bytes(chip));
}

TEST(ArtifactCacheTest, LookupCopiesIntoCallerScratch) {
  // The cached artifact must stay immutable: mutating the copy a lookup
  // hands out must not leak back into the store.
  ArtifactCache cache(1 << 20);
  cache.insert(key_of(0), sample_of(4, 1.0));
  ppv::ChipSample scratch;
  ASSERT_TRUE(cache.lookup(key_of(0), scratch));
  scratch.health_ratios[0] = -1.0;
  ppv::ChipSample fresh;
  ASSERT_TRUE(cache.lookup(key_of(0), fresh));
  EXPECT_DOUBLE_EQ(fresh.health_ratios[0], 1.0);
}

TEST(ArtifactCacheTest, DuplicateInsertKeepsFirstCopy) {
  ArtifactCache cache(1 << 20);
  cache.insert(key_of(0), sample_of(4, 0.25));
  cache.insert(key_of(0), sample_of(4, 0.75));  // racing-miss double insert
  ppv::ChipSample scratch;
  ASSERT_TRUE(cache.lookup(key_of(0), scratch));
  EXPECT_DOUBLE_EQ(scratch.health_ratios[0], 0.25);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

// ------------------------------------------------------------------ eviction --

TEST(ArtifactCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const ppv::ChipSample chip = sample_of(16, 0.5);
  const std::size_t each = ArtifactCache::artifact_bytes(chip);
  ArtifactCache cache(3 * each);  // room for exactly three artifacts
  cache.insert(key_of(0), chip);
  cache.insert(key_of(1), chip);
  cache.insert(key_of(2), chip);
  EXPECT_EQ(cache.stats().entries, 3u);

  // Touch 0 so 1 becomes the LRU, then overflow with 3.
  ppv::ChipSample scratch;
  ASSERT_TRUE(cache.lookup(key_of(0), scratch));
  cache.insert(key_of(3), chip);

  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 3 * each);
  EXPECT_FALSE(cache.lookup(key_of(1), scratch)) << "LRU entry should be gone";
  EXPECT_TRUE(cache.lookup(key_of(0), scratch));
  EXPECT_TRUE(cache.lookup(key_of(2), scratch));
  EXPECT_TRUE(cache.lookup(key_of(3), scratch));
}

TEST(ArtifactCacheTest, OversizedArtifactIsNotInsertedAndNothingIsThrashed) {
  const ppv::ChipSample small = sample_of(4, 0.5);
  ArtifactCache cache(ArtifactCache::artifact_bytes(small));
  cache.insert(key_of(0), small);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.insert(key_of(1), sample_of(4096, 0.5));  // can never fit
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  ppv::ChipSample scratch;
  EXPECT_TRUE(cache.lookup(key_of(0), scratch)) << "resident entry must survive";
}

TEST(ArtifactCacheTest, ZeroBudgetStoresNothing) {
  ArtifactCache cache(0);
  cache.insert(key_of(0), sample_of(4, 0.5));
  ppv::ChipSample scratch;
  EXPECT_FALSE(cache.lookup(key_of(0), scratch));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// --------------------------------------------------------------- concurrency --

TEST(ArtifactCacheTest, ConcurrentLookupInsertIsCoherent) {
  // Hammer one small key set from several threads; every successful lookup
  // must observe the first-inserted payload for its key, and the counters
  // must balance (hits + misses == lookups).
  ArtifactCache cache(1 << 20);
  constexpr std::size_t kThreads = 8, kKeys = 4, kIters = 500;
  std::atomic<std::size_t> lookups{0}, wrong{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t)
    pool.emplace_back([&cache, &lookups, &wrong] {
      ppv::ChipSample scratch;
      for (std::size_t i = 0; i < kIters; ++i) {
        const std::uint64_t k = i % kKeys;
        lookups.fetch_add(1);
        if (!cache.lookup(key_of(k), scratch)) {
          cache.insert(key_of(k), sample_of(8, static_cast<double>(k)));
        } else if (scratch.health_ratios[0] != static_cast<double>(k)) {
          wrong.fetch_add(1);
        }
      }
    });
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  const ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.entries, kKeys);
}

// ------------------------------------------- campaign-level cache behaviour --

class CampaignCacheTest : public ::testing::Test {
 protected:
  CampaignCacheTest() {
    for (const core::PaperScheme& s : paper_schemes_)
      schemes_.push_back(
          link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
  }

  /// Two cells per spread (ARQ off/on) so each fabricated population is
  /// shared by exactly two cells.
  CampaignSpec reuse_spec() const {
    CampaignSpec spec;
    spec.chips = 10;
    spec.messages_per_chip = 6;
    spec.seed = 20250831;
    spec.spreads = {{0.20, ppv::SpreadDistribution::kUniform},
                    {0.30, ppv::SpreadDistribution::kUniform}};
    spec.arq_modes = {{false, 1}, {true, 4}};
    return spec;
  }

  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  std::vector<core::PaperScheme> paper_schemes_ = core::make_all_schemes(lib_);
  std::vector<link::SchemeSpec> schemes_;
};

TEST_F(CampaignCacheTest, CrossCellChipReuseUnderConcurrentWorkers) {
  const CampaignSpec spec = reuse_spec();
  RunnerOptions options;
  options.threads = 4;
  options.shard_chips = 3;
  const CampaignResult result = run_campaign(spec, schemes_, lib_, options);

  // Every (scheme, chip) of every spread is needed by two cells: one
  // fabrication plus at least one hit each (racing misses may add a few
  // extra fabrications, never extra hits beyond the reuse count).
  const std::size_t populations = spec.spreads.size() * schemes_.size() * spec.chips;
  const ArtifactCacheStats& cache = result.artifact_cache;
  EXPECT_EQ(cache.hits + cache.misses, 2 * populations);
  EXPECT_GE(cache.misses, populations);
  EXPECT_GE(cache.hits, 1u);
  EXPECT_GT(cache.entries, 0u);
  EXPECT_EQ(cache.evictions, 0u);
}

TEST_F(CampaignCacheTest, ReportsAreByteIdenticalAtAnyCacheSetting) {
  const CampaignSpec spec = reuse_spec();
  RunnerOptions reference_options;
  reference_options.threads = 1;
  reference_options.artifact_cache_bytes = 0;  // uncached reference
  const CampaignResult reference = run_campaign(spec, schemes_, lib_, reference_options);
  EXPECT_EQ(reference.artifact_cache.hits + reference.artifact_cache.misses, 0u);
  const std::string reference_json = campaign_json(spec, reference);
  const std::string reference_csv = campaign_csv(reference);

  struct Variant {
    std::size_t threads, shard, cache_bytes;
  };
  for (const Variant v : {Variant{1, 32, 256u << 20}, Variant{4, 2, 256u << 20},
                          // A budget around one artifact: constant eviction
                          // churn, still transparent.
                          Variant{4, 2, 4096}}) {
    RunnerOptions options;
    options.threads = v.threads;
    options.shard_chips = v.shard;
    options.artifact_cache_bytes = v.cache_bytes;
    const CampaignResult result = run_campaign(spec, schemes_, lib_, options);
    EXPECT_EQ(campaign_json(spec, result), reference_json)
        << "threads=" << v.threads << " shard=" << v.shard
        << " cache=" << v.cache_bytes;
    EXPECT_EQ(campaign_csv(result), reference_csv);
  }
}

TEST_F(CampaignCacheTest, SingleCellRunsBypassTheCache) {
  // run_monte_carlo-shaped workloads have no cross-cell reuse; the engine
  // must not pay lookups or resident copies for them.
  CampaignSpec spec = reuse_spec();
  spec.arq_modes = {{false, 1}};
  spec.spreads.resize(1);
  const CampaignResult result = run_campaign(spec, schemes_, lib_);
  const ArtifactCacheStats& cache = result.artifact_cache;
  EXPECT_EQ(cache.hits + cache.misses, 0u);
  EXPECT_EQ(cache.entries, 0u);
}

TEST_F(CampaignCacheTest, DistinctSeedsNeverShareArtifacts) {
  // Hand-built cells differing only in seed draw different chips; the
  // reuse gate must not pool them.
  CampaignSpec spec;
  spec.chips = 6;
  spec.messages_per_chip = 4;
  spec.seed = 1;
  CampaignCell a;
  a.seed = 1;
  a.link.sim.record_pulses = false;
  a.label = "seed=1";
  CampaignCell b = a;
  b.seed = 2;
  b.label = "seed=2";
  std::vector<link::SchemeSpec> one{schemes_[3]};
  const CampaignResult result = run_cells(spec, {a, b}, one, lib_);
  EXPECT_EQ(result.artifact_cache.hits + result.artifact_cache.misses, 0u);
  EXPECT_NE(result.cells[0].schemes[0].errors_per_chip,
            result.cells[1].schemes[0].errors_per_chip);
}

TEST_F(CampaignCacheTest, FabricateChipMatchesCachedArtifactBytes) {
  // The cache contract: fabricate_chip for a task is a pure function of the
  // key fields, so a cached artifact replayed into a different cell equals
  // a fresh fabrication bit for bit.
  ChipTask task;
  task.scheme = &schemes_[3];
  task.library = &lib_;
  task.spread = {0.30, ppv::SpreadDistribution::kUniform};
  task.seed = 20250831;
  task.scheme_index = 3;
  task.chip = 7;
  task.chips = 10;

  ppv::ChipSample direct;
  fabricate_chip(task, direct);

  ArtifactCache cache(1 << 20);
  const ArtifactKey key{
      scheme_fingerprint(schemes_[3].name, schemes_[3].encoder->netlist, lib_),
      spread_fingerprint(task.spread), task.seed, task.stream()};
  cache.insert(key, direct);

  ppv::ChipSample replayed;
  ASSERT_TRUE(cache.lookup(key, replayed));
  ppv::ChipSample refabricated;
  fabricate_chip(task, refabricated);
  EXPECT_EQ(replayed.health_ratios, refabricated.health_ratios);
  ASSERT_EQ(replayed.faults.size(), refabricated.faults.size());
  for (std::size_t i = 0; i < replayed.faults.size(); ++i) {
    EXPECT_EQ(replayed.faults[i].mode, refabricated.faults[i].mode) << i;
    EXPECT_DOUBLE_EQ(replayed.faults[i].error_prob, refabricated.faults[i].error_prob);
  }
}

}  // namespace
}  // namespace sfqecc::engine
