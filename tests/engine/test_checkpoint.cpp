// Checkpoint I/O robustness tests: torn/corrupt files a kill or a flaky disk
// can leave behind, and the writer's failure policies. The happy-path
// round-trip and resume tests live in test_campaign.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/checkpoint.hpp"
#include "util/expect.hpp"

namespace sfqecc::engine {
namespace {

/// Scoped temp file path; removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

UnitResult sample_unit(std::size_t chip_lo, std::size_t chip_hi) {
  UnitResult unit;
  unit.unit = WorkUnit{0, 0, chip_lo, chip_hi};
  const std::size_t count = chip_hi - chip_lo;
  unit.errors.assign(count, 1);
  unit.flagged.assign(count, 0);
  unit.frames.assign(count, 8);
  unit.channel_bit_errors.assign(count, 2);
  return unit;
}

TEST(CheckpointRobustness, GarbageTailAfterValidUnitsIsDropped) {
  // A dying disk or an fs repair can leave arbitrary bytes after intact
  // records; every valid prefix record must survive, every garbage line must
  // be skipped (its unit re-runs), and loading must not abort.
  TempFile file("ckpt_garbage.txt");
  {
    CheckpointWriter writer(file.path, 5, false);
    writer.record(sample_unit(0, 2));
    writer.record(sample_unit(2, 4));
  }
  {
    std::ofstream append(file.path, std::ios::app);
    append << "lorem ipsum dolor\n"
           << "unit not numbers at all\n"
           << "unit 0 0 9 3 e 1 f 1 n 1 c 1 end\n"  // chip_hi <= chip_lo
           << "\x01\x02\x03 binary debris\n";
  }
  CheckpointData data;
  ASSERT_TRUE(load_checkpoint(file.path, data));
  EXPECT_EQ(data.fingerprint, 5u);
  ASSERT_EQ(data.units.size(), 2u);
  EXPECT_EQ(data.units[0].unit.chip_lo, 0u);
  EXPECT_EQ(data.units[1].unit.chip_lo, 2u);
}

TEST(CheckpointRobustness, MidRecordTruncationDropsOnlyThatRecord) {
  // Torn mid-line: a record cut inside each of its sections in turn. Earlier
  // intact records always survive; the torn one is always dropped.
  const std::string full =
      "unit 0 0 0 2 e 1 1 f 0 0 n 8 8 c 2 2 end";
  for (std::size_t cut : {std::size_t{6}, std::size_t{13}, std::size_t{20},
                          std::size_t{27}, std::size_t{34}, full.size() - 4}) {
    TempFile file("ckpt_torn.txt");
    {
      CheckpointWriter writer(file.path, 9, false);
      writer.record(sample_unit(0, 2));
    }
    {
      std::ofstream append(file.path, std::ios::app);
      append << full.substr(0, cut) << '\n';
    }
    CheckpointData data;
    ASSERT_TRUE(load_checkpoint(file.path, data)) << "cut=" << cut;
    EXPECT_EQ(data.units.size(), 1u) << "cut=" << cut;
  }
}

TEST(CheckpointRobustness, WrongVersionHeaderIsFatal) {
  // A complete header with an unknown version means a format we cannot
  // interpret — truncating it as debris could destroy a newer tool's data.
  TempFile file("ckpt_version.txt");
  {
    std::ofstream out(file.path);
    out << "sfqecc-campaign-checkpoint 2 ab\n";
  }
  CheckpointData data;
  EXPECT_THROW(load_checkpoint(file.path, data), ContractViolation);
}

TEST(CheckpointRobustness, DuplicateRecordsAreTolerated) {
  // A retried append under an injected checkpoint-write fault legitimately
  // persists the same unit twice; the loader must keep both parseable (the
  // campaign dedups, first wins) rather than reject the file.
  TempFile file("ckpt_duplicate.txt");
  {
    CheckpointWriter writer(file.path, 3, false);
    writer.record(sample_unit(0, 2));
    writer.record(sample_unit(0, 2));
  }
  CheckpointData data;
  ASSERT_TRUE(load_checkpoint(file.path, data));
  EXPECT_EQ(data.units.size(), 2u);
}

TEST(CheckpointRobustness, WarnPolicyCountsFailuresWithoutThrowing) {
  TempFile file("ckpt_warn.txt");
  CheckpointWriter writer(file.path, 7, false, IoErrorPolicy::kWarn);
  EXPECT_EQ(writer.io_errors(), 0u);
  writer.record(sample_unit(0, 2), /*inject_failure=*/true);
  writer.record(sample_unit(2, 4), /*inject_failure=*/true);
  EXPECT_EQ(writer.io_errors(), 2u);
  // A later healthy append still works — the stream state was cleared.
  writer.record(sample_unit(4, 6));
  EXPECT_EQ(writer.io_errors(), 2u);

  // The injected failures only simulate the failure handling: the bytes hit
  // the file, so all three records load (resume loses nothing here; a real
  // ENOSPC would have dropped the line and the unit would re-run).
  CheckpointData data;
  ASSERT_TRUE(load_checkpoint(file.path, data));
  EXPECT_EQ(data.units.size(), 3u);
}

TEST(CheckpointRobustness, FailPolicyThrowsIoErrorOnFailedAppend) {
  TempFile file("ckpt_fail.txt");
  CheckpointWriter writer(file.path, 7, false, IoErrorPolicy::kFail);
  EXPECT_THROW(writer.record(sample_unit(0, 2), /*inject_failure=*/true), IoError);
  EXPECT_EQ(writer.io_errors(), 1u);
  // The writer stays usable for the retried append.
  writer.record(sample_unit(0, 2));
  EXPECT_EQ(writer.io_errors(), 1u);
}

TEST(CheckpointRobustness, UnwritablePathSurfacesInsteadOfExitingZero) {
  // The pre-resilience writer silently ignored a header that never hit the
  // disk; now it must throw so a misconfigured path fails loudly.
  EXPECT_THROW(
      CheckpointWriter("/nonexistent-dir/ckpt.txt", 1, false),
      ContractViolation);
}

// ---------------------------------------------------------- shard merging --

UnitResult grid_unit(std::size_t cell, std::size_t scheme, std::size_t chip_lo,
                     std::size_t chip_hi, std::size_t errors) {
  UnitResult unit = sample_unit(chip_lo, chip_hi);
  unit.unit.cell = cell;
  unit.unit.scheme = scheme;
  unit.errors.assign(chip_hi - chip_lo, errors);
  return unit;
}

TEST(CheckpointMerge, MergesSortsAndDedupsFirstWins) {
  // Two workers recorded overlapping units (a reclaimed lease executed
  // twice); the merge keeps the first shard's record and emits canonical
  // (cell, scheme, chip_lo) order regardless of append interleaving.
  TempFile a("shard_a.ckpt"), b("shard_b.ckpt");
  {
    CheckpointWriter writer(a.path, 11, false);
    writer.record(grid_unit(1, 0, 0, 2, /*errors=*/7));
    writer.record(grid_unit(0, 1, 2, 4, /*errors=*/1));
  }
  {
    CheckpointWriter writer(b.path, 11, false);
    writer.record(grid_unit(0, 0, 0, 2, /*errors=*/2));
    writer.record(grid_unit(1, 0, 0, 2, /*errors=*/9));  // duplicate, loses
  }
  CheckpointData data;
  EXPECT_EQ(merge_checkpoint_shards({a.path, b.path}, 11, data), 3u);
  EXPECT_EQ(data.fingerprint, 11u);
  ASSERT_EQ(data.units.size(), 3u);
  EXPECT_EQ(data.units[0].unit.cell, 0u);
  EXPECT_EQ(data.units[0].unit.scheme, 0u);
  EXPECT_EQ(data.units[1].unit.scheme, 1u);
  EXPECT_EQ(data.units[2].unit.cell, 1u);
  EXPECT_EQ(data.units[2].errors[0], 7u) << "first shard in path order must win";
}

TEST(CheckpointMerge, SkipsMissingAndEmptyShards) {
  // A worker that never claimed a lease leaves no shard (or an empty file a
  // kill left behind); neither is an error, there is just nothing to merge.
  TempFile real("shard_real.ckpt"), empty("shard_empty.ckpt");
  {
    CheckpointWriter writer(real.path, 4, false);
    writer.record(grid_unit(0, 0, 0, 2, 1));
  }
  { std::ofstream touch(empty.path); }
  CheckpointData data;
  EXPECT_EQ(merge_checkpoint_shards(
                {std::string(::testing::TempDir()) + "no_such_shard.ckpt",
                 empty.path, real.path},
                4, data),
            1u);
  EXPECT_EQ(data.units.size(), 1u);
}

TEST(CheckpointMerge, DropsTornTrailingRecordPerShard) {
  // A SIGKILLed worker tears its last append; only that record is lost, the
  // shard's intact prefix and every other shard still merge.
  TempFile a("shard_torn_a.ckpt"), b("shard_torn_b.ckpt");
  {
    CheckpointWriter writer(a.path, 6, false);
    writer.record(grid_unit(0, 0, 0, 2, 1));
  }
  {
    std::ofstream append(a.path, std::ios::app);
    append << "unit 0 1 0 2 e 1 1 f 0";  // cut mid-record, no end sentinel
  }
  {
    CheckpointWriter writer(b.path, 6, false);
    writer.record(grid_unit(0, 1, 0, 2, 3));
  }
  CheckpointData data;
  EXPECT_EQ(merge_checkpoint_shards({a.path, b.path}, 6, data), 2u);
  ASSERT_EQ(data.units.size(), 2u);
  EXPECT_EQ(data.units[1].errors[0], 3u) << "torn record must not mask shard b's";
}

TEST(CheckpointMerge, ForeignFingerprintRejectedWithCaret) {
  // Shards from a different campaign must never silently mix into this one;
  // the diagnostic points a caret at the offending fingerprint so the
  // operator sees WHICH hex digits disagree.
  TempFile ours("shard_ours.ckpt"), foreign("shard_foreign.ckpt");
  {
    CheckpointWriter writer(ours.path, 0xabc, false);
    writer.record(grid_unit(0, 0, 0, 2, 1));
  }
  {
    CheckpointWriter writer(foreign.path, 0xdef, false);
    writer.record(grid_unit(0, 1, 0, 2, 1));
  }
  CheckpointData data;
  try {
    merge_checkpoint_shards({ours.path, foreign.path}, 0xabc, data);
    FAIL() << "foreign shard must be rejected";
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(foreign.path), std::string::npos) << message;
    EXPECT_NE(message.find("def"), std::string::npos) << message;
    EXPECT_NE(message.find("abc"), std::string::npos) << message;
    EXPECT_NE(message.find('^'), std::string::npos) << message;
  }
}

}  // namespace
}  // namespace sfqecc::engine
