// Reporter escaping tests: util::json_escape and the RFC 4180 CSV quoting
// must round-trip arbitrary cell labels and scheme names — commas, quotes,
// backslashes, newlines and control characters — through both reporters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/paper_encoders.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"
#include "util/json.hpp"

namespace sfqecc::engine {
namespace {

// ---- minimal conforming readers (what pandas/jq would do) -------------------

/// Decodes one JSON string literal starting at s[pos] == '"'. Returns the
/// decoded value and leaves `pos` one past the closing quote.
std::string json_unquote(const std::string& s, std::size_t& pos) {
  EXPECT_EQ(s[pos], '"');
  ++pos;
  std::string out;
  while (pos < s.size() && s[pos] != '"') {
    char c = s[pos++];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    const char esc = s[pos++];
    switch (esc) {
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        const unsigned code = std::strtoul(s.substr(pos, 4).c_str(), nullptr, 16);
        pos += 4;
        EXPECT_LT(code, 0x80u) << "test only decodes ASCII \\u escapes";
        out.push_back(static_cast<char>(code));
        break;
      }
      default: out.push_back(esc);  // \" and \\ (and any identity escape)
    }
  }
  ++pos;  // closing quote
  return out;
}

/// Value of the first occurrence of `"key": "..."` in a JSON document.
std::string json_string_field(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  std::size_t pos = doc.find(needle);
  EXPECT_NE(pos, std::string::npos) << key;
  pos += needle.size();
  return json_unquote(doc, pos);
}

/// Splits one RFC 4180 record (which may span lines via quoted newlines)
/// off the front of `csv` starting at `pos`; returns the decoded fields.
std::vector<std::string> csv_record(const std::string& csv, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  while (pos < csv.size()) {
    const char c = csv[pos];
    if (quoted) {
      if (c == '"' && pos + 1 < csv.size() && csv[pos + 1] == '"') {
        field.push_back('"');
        pos += 2;
      } else if (c == '"') {
        quoted = false;
        ++pos;
      } else {
        field.push_back(c);
        ++pos;
      }
    } else if (c == '"') {
      quoted = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      ++pos;
    } else if (c == '\n') {
      ++pos;
      break;
    } else {
      field.push_back(c);
      ++pos;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

// ---------------------------------------------------------------- json_escape --

TEST(JsonEscapeTest, PassesPlainStringsThrough) {
  EXPECT_EQ(util::json_escape("spread=20%u noise=0.04mV"),
            "spread=20%u noise=0.04mV");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(util::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(util::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(util::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(util::json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(util::json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(util::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(util::json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscapeTest, RoundTripsThroughAConformingReader) {
  const std::string evil = "label with \"quotes\", commas, back\\slashes,\nnewline "
                           "\r\t and \x01 control";
  const std::string doc = "{\"label\": \"" + util::json_escape(evil) + "\"}";
  EXPECT_EQ(json_string_field(doc, "label"), evil);
}

// ------------------------------------------------------- reporter round trips --

class ReportRoundTripTest : public ::testing::Test {
 protected:
  /// A one-chip campaign over one hand-built cell whose label (and scheme
  /// name) carry every character class the reporters must quote.
  CampaignResult run_with(const std::string& label, const std::string& scheme_name,
                          CampaignSpec& spec_out) {
    const auto& lib = circuit::coldflux_library();
    static const std::vector<core::PaperScheme> paper = core::make_all_schemes(lib);
    std::vector<link::SchemeSpec> schemes{link::SchemeSpec{
        scheme_name, paper[3].encoder.get(), paper[3].code.get(),
        paper[3].decoder.get()}};
    spec_out.chips = 1;
    spec_out.messages_per_chip = 1;
    CampaignCell cell;
    cell.seed = spec_out.seed;
    cell.link.sim.record_pulses = false;
    cell.label = label;
    return run_cells(spec_out, {cell}, schemes, lib);
  }
};

TEST_F(ReportRoundTripTest, EvilLabelsRoundTripThroughJson) {
  const std::string label = "cell \"A\", spread=20%, path=C:\\tmp\\x,\nsecond line";
  const std::string scheme = "h(8,4) \"SEC-DED\", strict\\mode";
  CampaignSpec spec;
  const CampaignResult result = run_with(label, scheme, spec);
  const std::string doc = campaign_json(spec, result);
  EXPECT_EQ(json_string_field(doc, "label"), label);
  EXPECT_EQ(json_string_field(doc, "scheme"), scheme);
}

TEST_F(ReportRoundTripTest, EvilLabelsRoundTripThroughCsv) {
  const std::string label = "cell \"A\", spread=20%, path=C:\\tmp\\x,\nsecond line";
  const std::string scheme = "h(8,4) \"SEC-DED\", strict\\mode";
  CampaignSpec spec;
  const CampaignResult result = run_with(label, scheme, spec);
  const std::string csv = campaign_csv(result);

  std::size_t pos = 0;
  const std::vector<std::string> header = csv_record(csv, pos);
  const std::vector<std::string> row = csv_record(csv, pos);
  ASSERT_EQ(header.size(), row.size());
  ASSERT_GE(header.size(), 3u);
  EXPECT_EQ(header[0], "cell");
  EXPECT_EQ(header[1], "label");
  EXPECT_EQ(header[2], "scheme");
  EXPECT_EQ(row[1], label);
  EXPECT_EQ(row[2], scheme);
  EXPECT_EQ(pos, csv.size()) << "one data row expected";
}

TEST_F(ReportRoundTripTest, GeneratedLabelsAreCsvStable) {
  // The engine's own labels contain no quoting-relevant characters today;
  // this pins that a plain reader splitting on commas still sees one label
  // column for generated sweeps (the quoted field contains no comma).
  CampaignSpec spec;
  spec.chips = 1;
  spec.messages_per_chip = 1;
  const auto& lib = circuit::coldflux_library();
  static const std::vector<core::PaperScheme> paper = core::make_all_schemes(lib);
  std::vector<link::SchemeSpec> schemes{link::SchemeSpec{
      paper[0].name, paper[0].encoder.get(), nullptr, nullptr}};
  const CampaignResult result = run_campaign(spec, schemes, lib);
  ASSERT_FALSE(result.cells.empty());
  const std::string& label = result.cells[0].cell.label;
  EXPECT_EQ(label.find(','), std::string::npos);
  EXPECT_EQ(label.find('"'), std::string::npos);
  const std::string csv = campaign_csv(result);
  std::size_t pos = 0;
  const std::vector<std::string> header = csv_record(csv, pos);
  const std::vector<std::string> row = csv_record(csv, pos);
  EXPECT_EQ(row[1], label);
  EXPECT_EQ(header.size(), row.size());
}

}  // namespace
}  // namespace sfqecc::engine
