// Work-stealing scheduler tests: exactly-once execution at any thread count,
// budget enforcement, stealing across skewed queues, error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/scheduler.hpp"

namespace sfqecc::engine {
namespace {

TEST(Scheduler, ExecutesEveryUnitExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::size_t units = 137;
    std::vector<std::atomic<int>> executed(units);
    SchedulerOptions options;
    options.threads = threads;
    const std::size_t count = run_work_stealing(
        units, [&](std::size_t unit, std::size_t) { executed[unit].fetch_add(1); },
        options);
    EXPECT_EQ(count, units) << "threads=" << threads;
    for (std::size_t u = 0; u < units; ++u)
      EXPECT_EQ(executed[u].load(), 1) << "unit " << u << " threads=" << threads;
  }
}

TEST(Scheduler, ZeroUnitsIsANoop) {
  std::atomic<int> calls(0);
  EXPECT_EQ(run_work_stealing(0, [&](std::size_t, std::size_t) { ++calls; }), 0u);
  EXPECT_EQ(calls.load(), 0);
}

TEST(Scheduler, ClampsThreadsToUnitCount) {
  SchedulerOptions options;
  options.threads = 64;
  std::atomic<int> calls(0);
  EXPECT_EQ(run_work_stealing(3, [&](std::size_t, std::size_t) { ++calls; }, options),
            3u);
  EXPECT_EQ(calls.load(), 3);
}

TEST(Scheduler, BudgetStopsAfterMaxUnits) {
  const std::size_t units = 40;
  std::vector<std::atomic<int>> executed(units);
  SchedulerOptions options;
  options.threads = 4;
  options.max_units = 7;
  const std::size_t count = run_work_stealing(
      units, [&](std::size_t unit, std::size_t) { executed[unit].fetch_add(1); },
      options);
  EXPECT_EQ(count, 7u);
  std::size_t total = 0;
  for (std::size_t u = 0; u < units; ++u) {
    EXPECT_LE(executed[u].load(), 1);
    total += static_cast<std::size_t>(executed[u].load());
  }
  EXPECT_EQ(total, 7u);
}

TEST(Scheduler, IdleWorkerStealsFromBusyQueues) {
  // Units dealt to queues 1..3 sleep; queue-0 units are instant. Worker 0
  // drains its own queue in microseconds while the others are still inside
  // their first sleeps, so it must steal slow units to finish the campaign.
  const std::size_t threads = 4, units = 64;
  std::vector<std::atomic<int>> worker_of(units);
  for (auto& w : worker_of) w.store(-1);
  SchedulerOptions options;
  options.threads = threads;
  run_work_stealing(
      units,
      [&](std::size_t unit, std::size_t worker) {
        worker_of[unit].store(static_cast<int>(worker));
        if (unit % threads != 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
      },
      options);
  std::size_t stolen_by_0 = 0;
  for (std::size_t u = 0; u < units; ++u) {
    ASSERT_NE(worker_of[u].load(), -1) << "unit " << u << " never ran";
    if (u % threads != 0 && worker_of[u].load() == 0) ++stolen_by_0;
  }
  EXPECT_GT(stolen_by_0, 0u);
}

TEST(Scheduler, WorkerExceptionPropagates) {
  SchedulerOptions options;
  options.threads = 2;
  EXPECT_THROW(run_work_stealing(
                   8,
                   [&](std::size_t unit, std::size_t) {
                     if (unit == 5) throw std::runtime_error("boom");
                   },
                   options),
               std::runtime_error);
}

// -------------------------------------------------------- retry/quarantine --

TEST(Scheduler, RetriedUnitSucceedsWithoutQuarantine) {
  const std::size_t units = 23;
  std::vector<std::atomic<int>> attempts_seen(units);
  SchedulerOptions options;
  options.threads = 4;
  options.unit_attempts = 3;
  options.fail_fast = false;
  const ScheduleOutcome outcome = run_units(
      units,
      [&](std::size_t unit, std::size_t, std::size_t attempt) {
        attempts_seen[unit].fetch_add(1);
        if (attempt == 0) throw std::runtime_error("transient");
      },
      options);
  EXPECT_EQ(outcome.executed, units);
  EXPECT_TRUE(outcome.failures.empty());
  EXPECT_FALSE(outcome.first_error);
  // Exactly one failed attempt plus one success per unit — the ladder stops
  // at the first success instead of burning the remaining attempt.
  for (std::size_t u = 0; u < units; ++u)
    EXPECT_EQ(attempts_seen[u].load(), 2) << "unit " << u;
}

TEST(Scheduler, ExhaustedAttemptsQuarantineSortedWhileOthersRun) {
  const std::size_t units = 31;
  std::vector<std::atomic<int>> attempts_seen(units);
  SchedulerOptions options;
  options.threads = 4;
  options.unit_attempts = 3;
  options.fail_fast = false;
  const ScheduleOutcome outcome = run_units(
      units,
      [&](std::size_t unit, std::size_t, std::size_t) {
        attempts_seen[unit].fetch_add(1);
        if (unit == 19 || unit == 7) throw std::runtime_error("persistent");
      },
      options);
  EXPECT_EQ(outcome.executed, units - 2);
  EXPECT_FALSE(outcome.first_error);
  ASSERT_EQ(outcome.failures.size(), 2u);
  EXPECT_EQ(outcome.failures[0].unit, 7u);  // sorted at any thread count
  EXPECT_EQ(outcome.failures[1].unit, 19u);
  for (const UnitFailure& failure : outcome.failures) {
    EXPECT_EQ(failure.attempts, 3u);
    EXPECT_NE(failure.error.find("persistent"), std::string::npos);
  }
  for (std::size_t u = 0; u < units; ++u)
    EXPECT_EQ(attempts_seen[u].load(), (u == 19 || u == 7) ? 3 : 1) << "unit " << u;
}

TEST(Scheduler, FailFastStopsWithoutRetrying) {
  std::atomic<int> failing_unit_attempts(0);
  SchedulerOptions options;
  options.threads = 1;
  options.unit_attempts = 5;  // ignored under fail_fast
  options.fail_fast = true;
  const ScheduleOutcome outcome = run_units(
      16,
      [&](std::size_t unit, std::size_t, std::size_t) {
        if (unit == 3) {
          failing_unit_attempts.fetch_add(1);
          throw std::runtime_error("fatal");
        }
      },
      options);
  EXPECT_TRUE(outcome.first_error);
  EXPECT_EQ(failing_unit_attempts.load(), 1);
  EXPECT_LT(outcome.executed, 16u);  // the tail was abandoned
  EXPECT_THROW(std::rethrow_exception(outcome.first_error), std::runtime_error);
}

}  // namespace
}  // namespace sfqecc::engine
