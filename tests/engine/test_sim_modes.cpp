// Simulation-mode tests: the chip_sliceable observability gate, and the
// byte-identity of campaign reports across --sim modes, thread counts and
// shard sizes (the property the CI --sim A/B leg enforces on the built
// binaries).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/paper_encoders.hpp"
#include "engine/campaign.hpp"
#include "engine/kernel.hpp"
#include "engine/report.hpp"

namespace sfqecc::engine {
namespace {

// ------------------------------------------------------ observability gate --

ppv::ChipSample healthy_chip(std::size_t cells = 8) {
  ppv::ChipSample chip;
  chip.health_ratios.assign(cells, 0.0);
  chip.faults.assign(cells, sim::CellFault{});
  return chip;
}

sim::SimConfig quiet_sim() {
  sim::SimConfig c;
  c.jitter_sigma_ps = 0.0;
  c.record_pulses = false;
  return c;
}

TEST(ChipSliceable, HealthyQuietChipIsEligible) {
  EXPECT_TRUE(chip_sliceable(healthy_chip(), quiet_sim()));
}

TEST(ChipSliceable, PulseRecordingDisqualifies) {
  sim::SimConfig c = quiet_sim();
  c.record_pulses = true;
  EXPECT_FALSE(chip_sliceable(healthy_chip(), c));
}

TEST(ChipSliceable, AnyJitterDisqualifies) {
  sim::SimConfig c = quiet_sim();
  c.jitter_sigma_ps = 0.8;
  EXPECT_FALSE(chip_sliceable(healthy_chip(), c));
  c.jitter_sigma_ps = 1e-12;  // the gate is exact, not thresholded
  EXPECT_FALSE(chip_sliceable(healthy_chip(), c));
}

TEST(ChipSliceable, AnyFaultyCellDisqualifies) {
  for (const sim::FaultMode mode :
       {sim::FaultMode::kFlaky, sim::FaultMode::kDead, sim::FaultMode::kSputter}) {
    ppv::ChipSample chip = healthy_chip();
    chip.faults[3].mode = mode;
    EXPECT_FALSE(chip_sliceable(chip, quiet_sim()));
  }
  // Even a flaky cell with error probability zero straddles the gate: the
  // scalar path draws from the noise RNG for it, the sliced path has no RNG.
  ppv::ChipSample chip = healthy_chip();
  chip.faults[0].mode = sim::FaultMode::kFlaky;
  chip.faults[0].error_prob = 0.0;
  EXPECT_FALSE(chip_sliceable(chip, quiet_sim()));
}

// ------------------------------------------------- campaign byte-identity --

class SimModesCampaignTest : public ::testing::Test {
 protected:
  SimModesCampaignTest() {
    for (const core::SchemeId id : {core::SchemeId::kHamming84, core::SchemeId::kRm13}) {
      schemes_owned_.push_back(core::make_scheme(id, lib_));
      const core::PaperScheme& s = schemes_owned_.back();
      schemes_.push_back(
          link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
    }
  }

  /// A sweep that straddles the gate on every axis: spread 0 fabricates only
  /// sliceable chips (maximal batches), spread 0.30 a healthy/faulty mix
  /// (lane classification per chip), and the jitter axis makes whole cells
  /// ineligible. ARQ on/off covers both tally loops.
  CampaignSpec spec() const {
    CampaignSpec s;
    s.chips = 10;
    s.messages_per_chip = 6;
    s.seed = 4242;
    s.spreads = {{0.0, ppv::SpreadDistribution::kUniform},
                 {0.30, ppv::SpreadDistribution::kUniform}};
    s.faults = {FaultSpec{0.0}, FaultSpec{0.8}};
    s.arq_modes = {{false, 1}, {true, 3}};
    return s;
  }

  std::string report(SimMode mode, std::size_t threads, std::size_t shard) const {
    RunnerOptions options;
    options.sim_mode = mode;
    options.threads = threads;
    options.shard_chips = shard;
    const CampaignSpec s = spec();
    return campaign_json(s, run_campaign(s, schemes_, lib_, options));
  }

  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  std::vector<core::PaperScheme> schemes_owned_;
  std::vector<link::SchemeSpec> schemes_;
};

TEST_F(SimModesCampaignTest, ReportsByteIdenticalAcrossModesThreadsShards) {
  const std::string reference = report(SimMode::kEvent, 1, 4);
  const struct {
    SimMode mode;
    std::size_t threads, shard;
  } variants[] = {
      {SimMode::kSliced, 1, 4},   // forced slicing, same partition
      {SimMode::kSliced, 2, 3},   // sliced batches race across workers
      {SimMode::kAuto, 1, 4},     // the default mode
      {SimMode::kAuto, 1, 3},     // 10 = 3+3+3+1: last shard falls back to event
      {SimMode::kAuto, 8, 2},     // many threads, 2-lane batches
      {SimMode::kAuto, 2, 100},   // one shard spans the whole cell
      {SimMode::kEvent, 8, 3},    // control: event path itself is invariant
  };
  for (const auto& v : variants)
    EXPECT_EQ(report(v.mode, v.threads, v.shard), reference)
        << "mode=" << static_cast<int>(v.mode) << " threads=" << v.threads
        << " shard=" << v.shard;
}

TEST_F(SimModesCampaignTest, SingleChipUnitsMatchEverywhere) {
  // chips=1 makes every unit a 1-chip batch: kSliced runs 1-lane slices,
  // kAuto falls back to the event path — all three must agree anyway.
  RunnerOptions options;
  options.threads = 1;
  options.shard_chips = 4;
  CampaignSpec s = spec();
  s.chips = 1;
  std::vector<std::string> reports;
  for (const SimMode mode : {SimMode::kEvent, SimMode::kSliced, SimMode::kAuto}) {
    options.sim_mode = mode;
    reports.push_back(campaign_json(s, run_campaign(s, schemes_, lib_, options)));
  }
  EXPECT_EQ(reports[1], reports[0]);
  EXPECT_EQ(reports[2], reports[0]);
}

}  // namespace
}  // namespace sfqecc::engine
