// High-contention regression tests for the engine's shared mutable state:
// the work-stealing scheduler's deques, the artifact cache's LRU index and
// the tally board's disjoint-slice scatter. The plain-build assertions prove
// exactly-once / last-writer semantics; the real target is the TSan CI job,
// which runs these same tests with every access instrumented — a lock
// dropped from any of these components becomes a hard failure there even
// when the unsynchronized code happens to produce the right answer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/paper_encoders.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/scheduler.hpp"
#include "engine/tally_board.hpp"

namespace sfqecc::engine {
namespace {

TEST(ConcurrencyStress, SchedulerTinyUnitsMaximizeStealContention) {
  // Thousands of near-instant units force workers to live on each other's
  // deques: every pop races a steal. Exactly-once execution must hold.
  const std::size_t units = 4096;
  std::vector<std::atomic<int>> executed(units);
  SchedulerOptions options;
  options.threads = 8;
  const std::size_t count = run_work_stealing(
      units, [&](std::size_t unit, std::size_t) { executed[unit].fetch_add(1); },
      options);
  EXPECT_EQ(count, units);
  for (std::size_t u = 0; u < units; ++u)
    ASSERT_EQ(executed[u].load(), 1) << "unit " << u;
}

TEST(ConcurrencyStress, SchedulerRetriesUnderContention) {
  // Every unit fails its first attempt, so the in-place retry path runs
  // concurrently with popping and stealing on all eight workers.
  const std::size_t units = 512;
  std::vector<std::atomic<int>> attempts(units);
  SchedulerOptions options;
  options.threads = 8;
  options.unit_attempts = 2;
  options.fail_fast = false;
  const ScheduleOutcome outcome = run_units(
      units,
      [&](std::size_t unit, std::size_t, std::size_t) {
        if (attempts[unit].fetch_add(1) == 0) throw std::runtime_error("first");
      },
      options);
  EXPECT_EQ(outcome.executed, units);
  EXPECT_TRUE(outcome.failures.empty());
  for (std::size_t u = 0; u < units; ++u)
    ASSERT_EQ(attempts[u].load(), 2) << "unit " << u;
}

TEST(ConcurrencyStress, ArtifactCacheHammeredFromEightThreads) {
  // Shared key space smaller than the thread count's working set, budget
  // tight enough to keep eviction running: lookups, racing duplicate
  // inserts and LRU reshuffling all interleave. First-copy-wins means any
  // hit must observe the complete original payload.
  ArtifactCache cache(8 * 1024);
  const std::size_t threads = 8, rounds = 400, keys = 24;
  std::atomic<int> torn_reads(0);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ppv::ChipSample scratch;
      for (std::size_t r = 0; r < rounds; ++r) {
        const std::uint64_t k = (t + r) % keys;
        ArtifactKey key{.scheme_fingerprint = k, .spread_fingerprint = ~k,
                        .seed = 7, .chip_stream = k * k};
        if (cache.lookup(key, scratch)) {
          // Payload is keyed: every byte must match what the first
          // inserter stored, regardless of which thread that was.
          if (scratch.health_ratios.size() != k + 1 ||
              scratch.health_ratios[0] != static_cast<double>(k))
            torn_reads.fetch_add(1);
        } else {
          ppv::ChipSample chip;
          chip.health_ratios.assign(k + 1, static_cast<double>(k));
          chip.faults.assign(k + 1, {});
          cache.insert(key, chip);
        }
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  EXPECT_EQ(torn_reads.load(), 0);
  const ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, threads * rounds);
  EXPECT_LE(stats.bytes, 8u * 1024u);
}

TEST(ConcurrencyStress, TallyBoardConcurrentScatterMatchesSerial) {
  // Disjoint-slice scatter is advertised as lock-free-safe for distinct
  // units; drive all units from 8 threads and check the grid equals a
  // serial scatter of the same results.
  const std::size_t cells = 4, schemes = 3, chips = 32, span = 4;
  std::vector<UnitResult> results;
  for (std::size_t cell = 0; cell < cells; ++cell)
    for (std::size_t scheme = 0; scheme < schemes; ++scheme)
      for (std::size_t lo = 0; lo < chips; lo += span) {
        UnitResult r;
        r.unit = {cell, scheme, lo, lo + span};
        for (std::size_t chip = lo; chip < lo + span; ++chip) {
          r.errors.push_back(cell + chip);
          r.flagged.push_back(scheme);
          r.frames.push_back(6);
          r.channel_bit_errors.push_back(chip % 3);
        }
        results.push_back(std::move(r));
      }

  // finalize_into derives channel BER from the encoder's codeword width, so
  // the scheme specs must be real ones.
  const circuit::CellLibrary& lib = circuit::coldflux_library();
  const std::vector<core::PaperScheme> paper = core::make_all_schemes(lib);
  ASSERT_GE(paper.size(), schemes);
  std::vector<link::SchemeSpec> scheme_specs;
  for (std::size_t s = 0; s < schemes; ++s)
    scheme_specs.push_back(link::SchemeSpec{paper[s].name, paper[s].encoder.get(),
                                            paper[s].code.get(),
                                            paper[s].decoder.get()});
  auto tally = [&](bool concurrent) {
    TallyBoard board(cells, schemes, chips);
    if (concurrent) {
      std::atomic<std::size_t> next(0);
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < 8; ++t)
        pool.emplace_back([&] {
          for (std::size_t i; (i = next.fetch_add(1)) < results.size();)
            board.scatter(results[i]);
        });
      for (std::thread& worker : pool) worker.join();
    } else {
      for (const UnitResult& r : results) board.scatter(r);
    }
    CampaignResult result = make_campaign_result_skeleton(
        std::vector<CampaignCell>(cells), scheme_specs);
    board.finalize_into(result, scheme_specs);
    return result;
  };

  const CampaignResult serial = tally(false);
  const CampaignResult parallel = tally(true);
  ASSERT_EQ(parallel.cells.size(), serial.cells.size());
  for (std::size_t c = 0; c < cells; ++c)
    for (std::size_t s = 0; s < schemes; ++s) {
      const SchemeCellResult& a = parallel.cells[c].schemes[s];
      const SchemeCellResult& b = serial.cells[c].schemes[s];
      EXPECT_EQ(a.errors_per_chip, b.errors_per_chip) << c << "/" << s;
      EXPECT_EQ(a.p_zero, b.p_zero) << c << "/" << s;
      EXPECT_EQ(a.mean_errors, b.mean_errors) << c << "/" << s;
      EXPECT_EQ(a.chips_completed, b.chips_completed) << c << "/" << s;
    }
}

}  // namespace
}  // namespace sfqecc::engine
