// Fault-injection harness tests: the CLI spec grammar, injector semantics,
// and the campaign-level resilience guarantees — retried runs stay
// byte-identical, quarantined units are excluded honestly and resumable,
// cache/checkpoint/report failures degrade instead of corrupting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/paper_encoders.hpp"
#include "engine/campaign.hpp"
#include "engine/fault_injection.hpp"
#include "engine/report.hpp"

namespace sfqecc::engine {
namespace {

// ------------------------------------------------------------ spec grammar --

TEST(InjectionSpecTest, SiteNamesRoundTrip) {
  for (FaultSite site : {FaultSite::kFabricate, FaultSite::kSimulate,
                         FaultSite::kCacheInsert, FaultSite::kCheckpointWrite,
                         FaultSite::kReportWrite, FaultSite::kLeaseClaim,
                         FaultSite::kShardWrite, FaultSite::kMerge}) {
    const auto parsed = parse_fault_site(fault_site_name(site));
    ASSERT_TRUE(parsed.has_value()) << fault_site_name(site);
    EXPECT_EQ(*parsed, site);
  }
  // The long-form alias resolves to the same site as the canonical name.
  const auto alias = parse_fault_site("artifact-cache-insert");
  ASSERT_TRUE(alias.has_value());
  EXPECT_EQ(*alias, FaultSite::kCacheInsert);
  EXPECT_FALSE(parse_fault_site("teleport").has_value());
}

TEST(InjectionSpecTest, ParsesWildcardsAndDefaults) {
  auto spec = parse_injection_spec("fabricate:*");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->site, FaultSite::kFabricate);
  EXPECT_EQ(spec->unit, InjectionSpec::kAny);
  EXPECT_EQ(spec->attempt, 0u);  // attempt defaults to the first try

  spec = parse_injection_spec("simulate:3:7");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->site, FaultSite::kSimulate);
  EXPECT_EQ(spec->unit, 3u);
  EXPECT_EQ(spec->attempt, 7u);

  spec = parse_injection_spec("cache-insert:*:*");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->unit, InjectionSpec::kAny);
  EXPECT_EQ(spec->attempt, InjectionSpec::kAny);
}

TEST(InjectionSpecTest, RejectsMalformedSpecsWithPositions) {
  struct Case {
    const char* text;
    std::size_t position;
  };
  for (const Case& c : {Case{"", 0}, Case{"teleport:0", 0}, Case{"fabricate", 9},
                        Case{"fabricate:", 10}, Case{"fabricate:x", 10},
                        Case{"fabricate:1:", 12}, Case{"fabricate:1:y", 12},
                        Case{"fabricate:1:2:3", 12}}) {
    InjectionParseError error;
    EXPECT_FALSE(parse_injection_spec(c.text, &error).has_value()) << c.text;
    EXPECT_EQ(error.position, c.position) << c.text << ": " << error.message;
    EXPECT_FALSE(error.message.empty()) << c.text;
  }
}

TEST(InjectionSpecTest, MatchingRespectsWildcards) {
  InjectionSpec spec;
  spec.site = FaultSite::kSimulate;
  spec.unit = 5;
  spec.attempt = InjectionSpec::kAny;
  EXPECT_TRUE(spec.matches(FaultSite::kSimulate, 5, 0));
  EXPECT_TRUE(spec.matches(FaultSite::kSimulate, 5, 17));
  EXPECT_FALSE(spec.matches(FaultSite::kSimulate, 4, 0));
  EXPECT_FALSE(spec.matches(FaultSite::kFabricate, 5, 0));
}

// --------------------------------------------------------------- injector --

TEST(FaultInjectorTest, MatchingIsPureFiringCounts) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  injector.arm(*parse_injection_spec("fabricate:2:1"));
  EXPECT_TRUE(injector.armed());

  // matches() never bumps the counter — it is the pure replay predicate.
  EXPECT_TRUE(injector.matches(FaultSite::kFabricate, 2, 1));
  EXPECT_FALSE(injector.matches(FaultSite::kFabricate, 2, 0));
  EXPECT_EQ(injector.fired(), 0u);

  EXPECT_FALSE(injector.fire(FaultSite::kFabricate, 1, 1));
  EXPECT_TRUE(injector.fire(FaultSite::kFabricate, 2, 1));
  EXPECT_EQ(injector.fired(), 1u);

  try {
    injector.check(FaultSite::kFabricate, 2, 1);
    FAIL() << "check() must throw at a matching coordinate";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.site(), FaultSite::kFabricate);
    EXPECT_EQ(fault.unit(), 2u);
    EXPECT_EQ(fault.attempt(), 1u);
    EXPECT_NE(std::string(fault.what()).find("fabricate"), std::string::npos);
  }
  EXPECT_EQ(injector.fired(), 2u);
}

// ------------------------------------------------------ campaign behavior --

class FaultCampaignTest : public ::testing::Test {
 protected:
  FaultCampaignTest() {
    for (const core::PaperScheme& s : paper_schemes_)
      schemes_.push_back(
          link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
  }

  CampaignSpec small_spec() const {
    CampaignSpec spec;
    spec.chips = 14;
    spec.messages_per_chip = 8;
    spec.seed = 4242;
    spec.spreads = {{0.20, ppv::SpreadDistribution::kUniform},
                    {0.30, ppv::SpreadDistribution::kUniform}};
    return spec;
  }

  struct TempFile {
    std::string path;
    explicit TempFile(const char* name)
        : path(std::string(::testing::TempDir()) + name) {
      std::remove(path.c_str());
    }
    ~TempFile() { std::remove(path.c_str()); }
  };

  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  std::vector<core::PaperScheme> paper_schemes_ = core::make_all_schemes(lib_);
  std::vector<link::SchemeSpec> schemes_;
};

TEST_F(FaultCampaignTest, RetriedRunIsByteIdenticalAtAnyThreadCount) {
  const CampaignSpec spec = small_spec();
  const std::string clean_json =
      campaign_json(spec, run_campaign(spec, schemes_, lib_));

  // Every unit fails fabrication on attempt 0 and simulation on attempt 1;
  // attempt 2 succeeds. The retry ladder runs in place on the owning worker,
  // so the schedule replays identically at any thread count and the report
  // must not change by a byte.
  FaultInjector injector;
  injector.arm(*parse_injection_spec("fabricate:*:0"));
  injector.arm(*parse_injection_spec("simulate:*:1"));
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    RunnerOptions options;
    options.threads = threads;
    options.unit_attempts = 3;
    options.fault_injector = &injector;
    const CampaignResult result = run_campaign(spec, schemes_, lib_, options);
    EXPECT_TRUE(result.complete()) << "threads=" << threads;
    EXPECT_TRUE(result.failures.empty());
    EXPECT_EQ(campaign_json(spec, result), clean_json) << "threads=" << threads;
  }
  EXPECT_GT(injector.fired(), 0u);
}

TEST_F(FaultCampaignTest, ExhaustedRetriesQuarantineTheUnitHonestly) {
  const CampaignSpec spec = small_spec();
  // Default shard (32 > 14 chips) gives one unit per (cell, scheme):
  // 2 cells x 4 schemes = 8 units; unit 2 is (cell 0, scheme 2).
  FaultInjector injector;
  injector.arm(*parse_injection_spec("fabricate:2:*"));
  RunnerOptions options;
  options.threads = 4;
  options.unit_attempts = 3;
  options.fault_injector = &injector;
  const CampaignResult result = run_campaign(spec, schemes_, lib_, options);

  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.units_executed, result.units_total - 1);
  ASSERT_EQ(result.failures.size(), 1u);
  const UnitFailureInfo& failure = result.failures[0];
  EXPECT_EQ(failure.unit_index, 2u);
  EXPECT_EQ(failure.unit.cell, 0u);
  EXPECT_EQ(failure.unit.scheme, 2u);
  EXPECT_EQ(failure.attempts, 3u);
  EXPECT_NE(failure.error.find("fabricate"), std::string::npos);

  // The quarantined unit's chips are excluded from the statistics — no
  // half-simulated attempt leaks into the published numbers.
  const SchemeCellResult& poisoned = result.cells[0].schemes[2];
  EXPECT_EQ(poisoned.chips_completed, 0u);
  for (std::size_t chip = 0; chip < spec.chips; ++chip) {
    EXPECT_EQ(poisoned.errors_per_chip[chip], 0u);
    EXPECT_EQ(poisoned.chip_done[chip], 0);
  }
  // Every other (cell, scheme) pair is untouched.
  EXPECT_EQ(result.cells[0].schemes[1].chips_completed, spec.chips);
  EXPECT_EQ(result.cells[1].schemes[2].chips_completed, spec.chips);
}

TEST_F(FaultCampaignTest, ResumeAfterQuarantineCompletesByteIdentical) {
  const CampaignSpec spec = small_spec();
  const CampaignResult reference = run_campaign(spec, schemes_, lib_);
  const std::string reference_json = campaign_json(spec, reference);

  TempFile file("ckpt_quarantine.txt");
  FaultInjector injector;
  injector.arm(*parse_injection_spec("fabricate:2:*"));
  RunnerOptions options;
  options.checkpoint_path = file.path;
  options.unit_attempts = 2;
  options.fault_injector = &injector;
  const CampaignResult broken = run_campaign(spec, schemes_, lib_, options);
  ASSERT_EQ(broken.failures.size(), 1u);
  EXPECT_FALSE(broken.complete());

  // The quarantined unit never reached the checkpoint, so a resume without
  // the fault re-runs exactly it and lands on the uninterrupted bytes.
  RunnerOptions resumed;
  resumed.checkpoint_path = file.path;
  const CampaignResult fixed = run_campaign(spec, schemes_, lib_, resumed);
  EXPECT_TRUE(fixed.complete());
  EXPECT_TRUE(fixed.failures.empty());
  EXPECT_EQ(fixed.units_executed, 1u);
  EXPECT_EQ(fixed.units_resumed, fixed.units_total - 1);
  EXPECT_EQ(campaign_json(spec, fixed), reference_json);
}

TEST_F(FaultCampaignTest, CacheInsertFailureDegradesWithoutChangingResults) {
  // Two cells differing only in ARQ share fabricated chip populations, so
  // the artifact cache is actually exercised.
  CampaignSpec spec = small_spec();
  spec.spreads.resize(1);
  spec.arq_modes = {{false, 1}, {true, 3}};
  const std::string clean_json =
      campaign_json(spec, run_campaign(spec, schemes_, lib_));

  FaultInjector injector;
  injector.arm(*parse_injection_spec("cache-insert:*:*"));
  RunnerOptions options;
  options.fault_injector = &injector;
  const CampaignResult result = run_campaign(spec, schemes_, lib_, options);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.failures.empty());  // capacity loss, never a unit failure
  EXPECT_GT(result.artifact_cache.insert_failures, 0u);
  EXPECT_EQ(campaign_json(spec, result), clean_json);
}

TEST_F(FaultCampaignTest, FailFastPropagatesTheInjectedFault) {
  FaultInjector injector;
  injector.arm(*parse_injection_spec("fabricate:0:0"));
  RunnerOptions options;
  options.fail_fast = true;
  options.fault_injector = &injector;
  EXPECT_THROW(run_campaign(small_spec(), schemes_, lib_, options), InjectedFault);
}

TEST_F(FaultCampaignTest, CheckpointWriteFaultUnderFailPolicyRetriesThrough) {
  // Under kFail a failed append throws IoError out of the unit, so the unit
  // re-runs and re-records. The loader tolerates the resulting duplicate
  // record (the injected "failure" really did write its bytes), and the
  // retried bytes are identical anyway.
  const CampaignSpec spec = small_spec();
  const std::string clean_json =
      campaign_json(spec, run_campaign(spec, schemes_, lib_));

  TempFile file("ckpt_inject_fail.txt");
  FaultInjector injector;
  injector.arm(*parse_injection_spec("checkpoint-write:*:0"));
  RunnerOptions options;
  options.checkpoint_path = file.path;
  options.unit_attempts = 2;
  options.io_error_policy = IoErrorPolicy::kFail;
  options.fault_injector = &injector;
  const CampaignResult result = run_campaign(spec, schemes_, lib_, options);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(campaign_json(spec, result), clean_json);

  // The duplicate-bearing checkpoint resumes cleanly: nothing re-executes.
  RunnerOptions resumed;
  resumed.checkpoint_path = file.path;
  const CampaignResult again = run_campaign(spec, schemes_, lib_, resumed);
  EXPECT_TRUE(again.complete());
  EXPECT_EQ(again.units_executed, 0u);
  EXPECT_EQ(campaign_json(spec, again), clean_json);
}

TEST_F(FaultCampaignTest, CheckpointWriteFaultUnderWarnPolicyOnlyCounts) {
  const CampaignSpec spec = small_spec();
  TempFile file("ckpt_inject_warn.txt");
  FaultInjector injector;
  injector.arm(*parse_injection_spec("checkpoint-write:*:*"));
  RunnerOptions options;
  options.checkpoint_path = file.path;
  options.fault_injector = &injector;
  const CampaignResult result = run_campaign(spec, schemes_, lib_, options);
  EXPECT_TRUE(result.complete());
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.checkpoint_io_errors, result.units_total);
}

// ---------------------------------------------------- atomic report writes --

TEST_F(FaultCampaignTest, AtomicWriteRetriesAnInjectedFailure) {
  TempFile file("report_retry.json");
  FaultInjector injector;
  injector.arm(*parse_injection_spec("report-write:0:0"));
  ReportIo io;
  io.attempts = 2;
  io.injector = &injector;
  io.ordinal = 0;
  EXPECT_TRUE(write_text_file_atomic(file.path, "payload\n", io));
  std::ifstream in(file.path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "payload\n");
  EXPECT_EQ(injector.fired(), 1u);
  std::ifstream tmp(file.path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "tmp file must not survive a successful write";
}

TEST_F(FaultCampaignTest, ExhaustedWriteLeavesThePreviousFileIntact) {
  TempFile file("report_exhausted.json");
  {
    std::ofstream out(file.path);
    out << "previous report\n";
  }
  FaultInjector injector;
  injector.arm(*parse_injection_spec("report-write:0:*"));
  ReportIo io;
  io.attempts = 3;
  io.injector = &injector;
  EXPECT_FALSE(write_text_file_atomic(file.path, "new report\n", io));
  std::ifstream in(file.path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "previous report\n");
  std::ifstream tmp(file.path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "a failed write must remove its tmp file";

  io.policy = IoErrorPolicy::kFail;
  EXPECT_THROW(write_text_file_atomic(file.path, "new report\n", io), IoError);
}

}  // namespace
}  // namespace sfqecc::engine
