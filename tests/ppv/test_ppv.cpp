// Tests for the process-parameter-variation layer: spread sampling, the
// sensitivity/margin health model and chip sampling.
#include <gtest/gtest.h>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "ppv/calibration.hpp"
#include "ppv/chip.hpp"
#include "ppv/margin_model.hpp"
#include "ppv/spread.hpp"
#include "util/expect.hpp"

namespace sfqecc::ppv {
namespace {

TEST(Spread, UniformStaysInRange) {
  SpreadSpec spec;
  spec.fraction = 0.20;
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double d = sample_deviation(spec, rng);
    EXPECT_GE(d, -0.20);
    EXPECT_LE(d, 0.20);
  }
}

TEST(Spread, UniformMomentsMatch) {
  SpreadSpec spec;
  spec.fraction = 0.20;
  util::Rng rng(2);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double d = sample_deviation(spec, rng);
    sum += d;
    sum2 += d * d;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.002);
  EXPECT_NEAR(std::sqrt(sum2 / n), deviation_sigma(spec), 0.002);
}

TEST(Spread, GaussianTruncated) {
  SpreadSpec spec;
  spec.fraction = 0.20;
  spec.distribution = SpreadDistribution::kGaussian;
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const double d = sample_deviation(spec, rng);
    EXPECT_GE(d, -0.40);
    EXPECT_LE(d, 0.40);
  }
  EXPECT_DOUBLE_EQ(deviation_sigma(spec), 0.10);
}

TEST(Spread, VectorHasRequestedCount) {
  SpreadSpec spec;
  util::Rng rng(4);
  EXPECT_EQ(sample_deviations(spec, kParamsPerCell, rng).size(), kParamsPerCell);
}

TEST(Spread, InvalidFractionRejected) {
  SpreadSpec spec;
  spec.fraction = 1.5;
  util::Rng rng(5);
  EXPECT_THROW(sample_deviation(spec, rng), ContractViolation);
}

TEST(MarginModel, HealthStatisticNormalization) {
  // sigma_H must equal spread * sensitivity: check by Monte Carlo.
  SpreadSpec spec;
  spec.fraction = 0.20;
  util::Rng rng(6);
  double sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto d = sample_deviations(spec, kParamsPerCell, rng);
    const double h = health_statistic(d, 1.0);
    sum2 += h * h;
  }
  EXPECT_NEAR(std::sqrt(sum2 / n), 0.20, 0.005);
}

TEST(MarginModel, HealthStatisticScalesWithSensitivity) {
  const std::vector<double> d(kParamsPerCell, 0.1);
  EXPECT_NEAR(health_statistic(d, 2.0), 2.0 * health_statistic(d, 1.0), 1e-12);
}

TEST(MarginModel, WrongVectorSizeRejected) {
  EXPECT_THROW(health_statistic({0.1, 0.2}, 1.0), ContractViolation);
}

TEST(MarginModel, FaultMappingRegions) {
  util::Rng rng(7);
  EXPECT_TRUE(fault_from_health_ratio(0.0, rng).healthy());
  EXPECT_TRUE(fault_from_health_ratio(kSoftOnset - 0.01, rng).healthy());
  const sim::CellFault soft = fault_from_health_ratio(0.95, rng);
  EXPECT_EQ(soft.mode, sim::FaultMode::kFlaky);
  EXPECT_GT(soft.error_prob, 0.0);
  EXPECT_LT(soft.error_prob, kSoftMaxErrorProb);
  const sim::CellFault hard = fault_from_health_ratio(1.5, rng);
  EXPECT_TRUE(hard.mode == sim::FaultMode::kDead ||
              hard.mode == sim::FaultMode::kSputter);
}

TEST(MarginModel, FlakyProbabilityRampsQuadratically) {
  util::Rng rng(8);
  const double h1 = kSoftOnset + 0.25 * (1.0 - kSoftOnset);
  const double h2 = kSoftOnset + 0.50 * (1.0 - kSoftOnset);
  const double p1 = fault_from_health_ratio(h1, rng).error_prob;
  const double p2 = fault_from_health_ratio(h2, rng).error_prob;
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(MarginModel, DeadSputterSplitMatchesCalibration) {
  util::Rng rng(9);
  int dead = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (fault_from_health_ratio(1.2, rng).mode == sim::FaultMode::kDead) ++dead;
  EXPECT_NEAR(static_cast<double>(dead) / n, kDeadFraction, 0.02);
}

TEST(MarginModel, TroubleProbabilityMatchesMonteCarlo) {
  // The analytic Gaussian approximation must agree with sampling within MC
  // error for every cell type used by the paper's encoders.
  SpreadSpec spec;
  spec.fraction = 0.20;
  const auto& lib = circuit::coldflux_library();
  for (auto type : {circuit::CellType::kXor, circuit::CellType::kDff,
                    circuit::CellType::kSplitter, circuit::CellType::kSfqToDc}) {
    const auto& cs = lib.spec(type);
    util::Rng rng(100 + static_cast<int>(type));
    int trouble = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
      if (!sample_cell_health(cs, spec, rng).fault.healthy()) ++trouble;
    const double analytic = trouble_probability(cs, spec);
    EXPECT_NEAR(static_cast<double>(trouble) / n, analytic, 0.15 * analytic + 0.002)
        << circuit::cell_type_name(type);
  }
}

TEST(Chip, SamplesEveryCell) {
  const auto& lib = circuit::coldflux_library();
  const auto built = circuit::build_encoder(code::paper_hamming84(), lib);
  SpreadSpec spec;
  util::Rng rng(10);
  const ChipSample chip = sample_chip(built.netlist, lib, spec, rng);
  EXPECT_EQ(chip.faults.size(), built.netlist.cell_count());
  EXPECT_EQ(chip.health_ratios.size(), built.netlist.cell_count());
  EXPECT_EQ(chip.flaky_cells() + chip.hard_failed_cells() <= chip.faults.size(), true);
}

TEST(Chip, ZeroSpreadIsAlwaysHealthy) {
  const auto& lib = circuit::coldflux_library();
  const auto built = circuit::build_encoder(code::paper_hamming84(), lib);
  SpreadSpec spec;
  spec.fraction = 0.0;
  util::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const ChipSample chip = sample_chip(built.netlist, lib, spec, rng);
    EXPECT_TRUE(chip.fully_healthy());
  }
}

TEST(Chip, FailureRateGrowsWithSpread) {
  const auto& lib = circuit::coldflux_library();
  const auto built = circuit::build_encoder(code::paper_rm13(), lib);
  auto unhealthy_chips = [&](double fraction) {
    SpreadSpec spec;
    spec.fraction = fraction;
    util::Rng rng(12);
    int bad = 0;
    for (int i = 0; i < 400; ++i)
      if (!sample_chip(built.netlist, lib, spec, rng).fully_healthy()) ++bad;
    return bad;
  };
  const int at10 = unhealthy_chips(0.10);
  const int at20 = unhealthy_chips(0.20);
  const int at30 = unhealthy_chips(0.30);
  EXPECT_LT(at10, at20);
  EXPECT_LT(at20, at30);
}

TEST(Chip, DeterministicForSameRngState) {
  const auto& lib = circuit::coldflux_library();
  const auto built = circuit::build_encoder(code::paper_hamming74(), lib);
  SpreadSpec spec;
  util::Rng a(13), b(13);
  const ChipSample ca = sample_chip(built.netlist, lib, spec, a);
  const ChipSample cb = sample_chip(built.netlist, lib, spec, b);
  EXPECT_EQ(ca.health_ratios, cb.health_ratios);
  for (std::size_t i = 0; i < ca.faults.size(); ++i) {
    EXPECT_EQ(ca.faults[i].mode, cb.faults[i].mode);
    EXPECT_EQ(ca.faults[i].error_prob, cb.faults[i].error_prob);
  }
}

TEST(Chip, ApplyChipInstallsFaults) {
  const auto& lib = circuit::coldflux_library();
  const auto built = circuit::build_no_encoder_link(4, lib);
  sim::SimConfig config;
  sim::EventSimulator simulator(built.netlist, lib, config);
  ChipSample chip;
  chip.faults.assign(built.netlist.cell_count(), sim::CellFault{});
  chip.health_ratios.assign(built.netlist.cell_count(), 0.0);
  chip.faults[0] = sim::CellFault{sim::FaultMode::kDead, 0.0};
  apply_chip(chip, simulator);
  simulator.inject_pulse(built.message_inputs[0], 10.0);
  simulator.inject_pulse(built.message_inputs[1], 10.0);
  simulator.run_until(100.0);
  EXPECT_FALSE(simulator.dc_level(built.codeword_outputs[0]));  // dead converter
  EXPECT_TRUE(simulator.dc_level(built.codeword_outputs[1]));
}

}  // namespace
}  // namespace sfqecc::ppv
