// Tests for the bounded MPMC queues behind the link server: ring-buffer
// semantics (bounded, no loss, no duplication) and per-producer FIFO under
// real contention, for both the lock-free ring and the mutex fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/mpmc_ring.hpp"

namespace sfqecc::serve {
namespace {

TEST(RingCapacity, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(ring_capacity(0), 2u);
  EXPECT_EQ(ring_capacity(1), 2u);
  EXPECT_EQ(ring_capacity(2), 2u);
  EXPECT_EQ(ring_capacity(3), 4u);
  EXPECT_EQ(ring_capacity(1000), 1024u);
  EXPECT_EQ(ring_capacity(1024), 1024u);
}

template <typename Queue>
void single_thread_semantics() {
  Queue queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out)) << "empty queue must report empty";

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int{i}));
  EXPECT_FALSE(queue.try_push(99)) << "full queue must report full";
  EXPECT_EQ(queue.approx_size(), 4u);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i) << "single-threaded use is strictly FIFO";
  }
  EXPECT_FALSE(queue.try_pop(out));

  // Wrap around the ring several times.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(queue.try_push(int{round}));
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(MpmcRing, SingleThreadSemantics) { single_thread_semantics<MpmcRing<int>>(); }
TEST(MutexQueue, SingleThreadSemantics) { single_thread_semantics<MutexQueue<int>>(); }

TEST(ServeQueue, SwitchesImplementations) {
  for (const bool lock_free : {true, false}) {
    ServeQueue<int> queue(8, lock_free);
    EXPECT_EQ(queue.capacity(), 8u);
    EXPECT_TRUE(queue.try_push(7));
    int out = 0;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, 7);
    EXPECT_FALSE(queue.try_pop(out));
  }
}

/// Each item encodes (producer, sequence); consumers verify that no item is
/// lost or duplicated and that each producer's items arrive in order.
template <typename Queue>
void contended_no_loss_no_duplication() {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  Queue queue(64);

  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> last_seq(
      kConsumers, std::vector<std::uint64_t>(kProducers, 0));
  std::vector<std::vector<std::uint64_t>> counts(
      kConsumers, std::vector<std::uint64_t>(kProducers, 0));

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (std::uint64_t seq = 1; seq <= kPerProducer; ++seq) {
        std::uint64_t item = (static_cast<std::uint64_t>(p) << 32) | seq;
        while (!queue.try_push(std::move(item))) std::this_thread::yield();
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t item = 0;
      while (consumed.load(std::memory_order_relaxed) < kProducers * kPerProducer) {
        if (!queue.try_pop(item)) {
          std::this_thread::yield();
          continue;
        }
        consumed.fetch_add(1, std::memory_order_relaxed);
        const std::size_t p = static_cast<std::size_t>(item >> 32);
        const std::uint64_t seq = item & 0xffffffffu;
        ASSERT_LT(p, kProducers);
        // Per-producer FIFO: the sequences one consumer sees from a given
        // producer are strictly increasing.
        ASSERT_GT(seq, last_seq[c][p]) << "producer " << p << " reordered";
        last_seq[c][p] = seq;
        ++counts[c][p];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  for (std::size_t p = 0; p < kProducers; ++p) {
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < kConsumers; ++c) total += counts[c][p];
    EXPECT_EQ(total, kPerProducer) << "producer " << p << " lost or duplicated items";
  }
}

TEST(MpmcRing, ContendedNoLossNoDuplication) {
  contended_no_loss_no_duplication<MpmcRing<std::uint64_t>>();
}
TEST(MutexQueue, ContendedNoLossNoDuplication) {
  contended_no_loss_no_duplication<MutexQueue<std::uint64_t>>();
}

TEST(MpmcRing, NeverExceedsCapacity) {
  MpmcRing<int> ring(8);
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.try_push(i++);
      EXPECT_LE(ring.approx_size(), ring.capacity());
    }
  });
  int out = 0;
  for (int i = 0; i < 50000; ++i) {
    ring.try_pop(out);
  }
  stop.store(true, std::memory_order_relaxed);
  producer.join();
}

}  // namespace
}  // namespace sfqecc::serve
