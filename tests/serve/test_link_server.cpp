// Link-server tests: byte-identity of served decode outcomes against serial
// DataLink execution (the determinism contract replay mode rests on),
// heterogeneous batch coalescing — mixed schemes interleaved in one queue,
// partial (<64 lane) slices, gate-ineligible requests falling back to the
// event path — plus admission, drain and telemetry invariants.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/scheme_catalog.hpp"
#include "serve/link_server.hpp"
#include "serve/telemetry.hpp"
#include "util/expect.hpp"

namespace sfqecc::serve {
namespace {

const circuit::CellLibrary& lib() { return circuit::coldflux_library(); }

std::vector<core::Scheme> two_schemes() {
  std::vector<core::Scheme> schemes;
  schemes.push_back(core::SchemeCatalog::builtin().resolve("hamming:7,4", lib()));
  schemes.push_back(core::SchemeCatalog::builtin().resolve("rm:1,3", lib()));
  return schemes;
}

/// Spread 0.20 at seed 777 fabricates a mix of fully healthy (gate-eligible)
/// and faulty (event-path-only) chips for both schemes, so one trace
/// exercises slicing, fallback and their interleaving at once.
LinkServerConfig mixed_config() {
  LinkServerConfig config;
  config.chips_per_scheme = 6;
  config.spread = {0.20, ppv::SpreadDistribution::kUniform};
  config.seed = 777;
  return config;
}

std::string served_outcomes(const LinkServerConfig& config,
                            const std::vector<TraceRequest>& trace) {
  LinkServer server(two_schemes(), lib(), config);
  const std::vector<Response> responses = run_trace_served(server, trace);
  server.shutdown();
  return outcomes_text(trace, responses);
}

// --------------------------------------------------- replay byte-identity --

TEST(LinkServerReplay, ServedMatchesSerialAtWorkerCounts) {
  const LinkServerConfig config = mixed_config();
  const std::vector<TraceRequest> trace =
      synthesize_trace(300, 2, config.chips_per_scheme, 99);
  const std::string serial = outcomes_text(
      trace, run_trace_serial(two_schemes(), lib(), config, trace));

  // The acceptance worker counts, plus the coalescing and queue axes: every
  // execution shape must reproduce the serial oracle byte for byte.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const bool coalesce : {true, false}) {
      LinkServerConfig variant = config;
      variant.workers = workers;
      variant.coalesce = coalesce;
      EXPECT_EQ(served_outcomes(variant, trace), serial)
          << "workers=" << workers << " coalesce=" << coalesce;
    }
  }
  LinkServerConfig mutex_variant = config;
  mutex_variant.workers = 4;
  mutex_variant.lock_free_queue = false;
  EXPECT_EQ(served_outcomes(mutex_variant, trace), serial) << "mutex+cv queue";
}

TEST(LinkServerReplay, GateIneligibleConfigServesEverythingOnEventPath) {
  // Jitter makes every chip fail the observability gate: the server must
  // fall back to the event path wholesale and still match serial execution.
  LinkServerConfig config = mixed_config();
  config.link.sim.jitter_sigma_ps = 1.0;
  config.workers = 4;
  const std::vector<TraceRequest> trace =
      synthesize_trace(80, 2, config.chips_per_scheme, 5);
  const std::string serial = outcomes_text(
      trace, run_trace_serial(two_schemes(), lib(), config, trace));

  LinkServer server(two_schemes(), lib(), config);
  for (std::size_t s = 0; s < server.scheme_count(); ++s)
    for (std::size_t c = 0; c < server.chips_per_scheme(); ++c)
      EXPECT_FALSE(server.chip_sliceable(s, c));
  const std::vector<Response> responses = run_trace_served(server, trace);
  server.shutdown();
  EXPECT_EQ(outcomes_text(trace, responses), serial);

  const ServerTelemetry telemetry = server.telemetry();
  for (const SchemeTelemetry& scheme : telemetry.schemes)
    EXPECT_EQ(scheme.sliced_requests, 0u);
  EXPECT_EQ(telemetry.batch.batches, 0u);
}

// ------------------------------------------------ deterministic coalescing --

/// Pre-queues a backlog on a paused single-worker server, then starts it:
/// the first dispatch sees the whole backlog, making batch shape (not just
/// outcomes) deterministic.
TEST(LinkServerCoalescing, BacklogCoalescesMixedSchemesIntoPartialSlices) {
  LinkServerConfig config;
  config.chips_per_scheme = 4;
  config.spread = {0.0, ppv::SpreadDistribution::kUniform};  // all chips healthy
  config.workers = 1;
  config.start_workers = false;
  config.seed = 31;

  // 10 hamming + 7 rm requests interleaved in one queue (alternating, then a
  // hamming tail). All chips are gate-eligible, so the single dispatch must
  // produce exactly one sliced batch per scheme, each a partial (< 64 lane)
  // slice.
  std::vector<TraceRequest> trace;
  for (std::size_t i = 0; i < 17; ++i)
    trace.push_back({i < 14 ? i % 2 : 0, i % 4, 0x9e3779b97f4a7c15ULL * i});

  const std::string serial = outcomes_text(
      trace, run_trace_serial(two_schemes(), lib(), config, trace));

  LinkServer server(two_schemes(), lib(), config);
  ASSERT_TRUE(server.chip_sliceable(0, 0));
  const std::vector<Response> responses = run_trace_served(server, trace);
  server.shutdown();
  EXPECT_EQ(outcomes_text(trace, responses), serial);

  const ServerTelemetry telemetry = server.telemetry();
  EXPECT_EQ(telemetry.batch.batches, 2u) << "one partial slice per scheme";
  EXPECT_EQ(telemetry.batch.width.min(), 7u);
  EXPECT_EQ(telemetry.batch.width.max(), 10u);
  EXPECT_EQ(telemetry.schemes[0].sliced_requests, 10u);
  EXPECT_EQ(telemetry.schemes[1].sliced_requests, 7u);
  EXPECT_EQ(telemetry.schemes[0].event_requests, 0u);
  EXPECT_EQ(telemetry.schemes[1].event_requests, 0u);
}

TEST(LinkServerCoalescing, LoneEligibleRequestTakesEventPath) {
  // A batch of one has no word-level parallelism to win: exactly like
  // unit_executor's kAuto mode, a lone gate-eligible request runs on the
  // event path instead of a 1-lane slice.
  LinkServerConfig config;
  config.chips_per_scheme = 2;
  config.spread = {0.0, ppv::SpreadDistribution::kUniform};
  config.workers = 1;
  config.start_workers = false;
  LinkServer server(two_schemes(), lib(), config);

  Completion completion;
  ASSERT_TRUE(server.submit({0, 0, 0x5555}, &completion));
  server.start();
  server.drain();
  ASSERT_TRUE(completion.ready());
  server.shutdown();

  const ServerTelemetry telemetry = server.telemetry();
  EXPECT_EQ(telemetry.batch.batches, 0u);
  EXPECT_EQ(telemetry.schemes[0].sliced_requests, 0u);
  EXPECT_EQ(telemetry.schemes[0].event_requests, 1u);
}

TEST(LinkServerCoalescing, MixedEligibilityBacklogSplitsExactly) {
  // Spread 0.20 at seed 777 fabricates both healthy and faulty chips; route
  // requests at known-sliceable and known-ineligible chips of one scheme and
  // check the split is exact: eligible ones in one slice, the rest on the
  // event path, outcomes byte-identical to serial either way.
  LinkServerConfig config = mixed_config();
  config.workers = 1;
  config.start_workers = false;

  LinkServer probe(two_schemes(), lib(), config);
  std::vector<std::size_t> sliceable_chips, event_chips;
  for (std::size_t c = 0; c < config.chips_per_scheme; ++c)
    (probe.chip_sliceable(0, c) ? sliceable_chips : event_chips).push_back(c);
  probe.shutdown();
  ASSERT_GE(sliceable_chips.size(), 2u)
      << "seed 777 / spread 0.20 should fabricate >= 2 healthy chips";
  ASSERT_GE(event_chips.size(), 1u)
      << "seed 777 / spread 0.20 should fabricate >= 1 faulty chip";

  std::vector<TraceRequest> trace;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto& pool = i % 3 == 2 ? event_chips : sliceable_chips;
    trace.push_back({0, pool[i % pool.size()], 0xabcdef12345 + i});
  }
  const std::string serial = outcomes_text(
      trace, run_trace_serial(two_schemes(), lib(), config, trace));

  LinkServer server(two_schemes(), lib(), config);
  const std::vector<Response> responses = run_trace_served(server, trace);
  server.shutdown();
  EXPECT_EQ(outcomes_text(trace, responses), serial);

  const ServerTelemetry telemetry = server.telemetry();
  EXPECT_EQ(telemetry.batch.batches, 1u);
  EXPECT_EQ(telemetry.schemes[0].sliced_requests, 8u);
  EXPECT_EQ(telemetry.schemes[0].event_requests, 4u);
}

// ------------------------------------------------------- admission & drain --

TEST(LinkServerAdmission, BlockingAdmissionNeverSheds) {
  LinkServerConfig config;
  config.chips_per_scheme = 2;
  config.queue_capacity = 2;  // far smaller than the request count
  config.workers = 2;
  config.admission = AdmissionPolicy::kBlock;
  const std::vector<TraceRequest> trace = synthesize_trace(100, 2, 2, 3);

  LinkServer server(two_schemes(), lib(), config);
  const std::vector<Response> responses = run_trace_served(server, trace);
  server.shutdown();
  EXPECT_EQ(responses.size(), trace.size());

  const ServerTelemetry telemetry = server.telemetry();
  EXPECT_EQ(telemetry.queue.submitted, trace.size());
  EXPECT_EQ(telemetry.queue.rejected, 0u);
  EXPECT_LE(telemetry.queue.max_depth, telemetry.queue.capacity);
  std::uint64_t served = 0;
  for (const SchemeTelemetry& scheme : telemetry.schemes) served += scheme.requests();
  EXPECT_EQ(served, trace.size());
}

TEST(LinkServerAdmission, RejectPolicyRefusesWhenFull) {
  // A paused server cannot drain, so filling the queue forces deterministic
  // rejections: capacity admissions succeed, every further submit fails.
  LinkServerConfig config;
  config.chips_per_scheme = 2;
  config.queue_capacity = 4;
  config.admission = AdmissionPolicy::kReject;
  config.start_workers = false;
  LinkServer server(two_schemes(), lib(), config);

  std::vector<Completion> completions(8);
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < completions.size(); ++i)
    if (server.submit({0, 0, i}, &completions[i])) ++admitted;
  EXPECT_EQ(admitted, 4u);

  server.shutdown();  // serves the admitted backlog, then stops
  for (std::size_t i = 0; i < admitted; ++i) EXPECT_TRUE(completions[i].ready());

  const ServerTelemetry telemetry = server.telemetry();
  EXPECT_EQ(telemetry.queue.submitted, 4u);
  EXPECT_EQ(telemetry.queue.rejected, 4u);

  // After shutdown nothing is admitted, under either policy.
  Completion late;
  EXPECT_FALSE(server.submit({0, 0, 1}, &late));
}

// ----------------------------------------------------------------- telemetry --

TEST(LinkServerTelemetry, InvariantsAndStableJson) {
  LinkServerConfig config = mixed_config();
  config.workers = 2;
  const std::vector<TraceRequest> trace =
      synthesize_trace(120, 2, config.chips_per_scheme, 21);
  LinkServer server(two_schemes(), lib(), config);
  run_trace_served(server, trace);
  server.shutdown();

  const ServerTelemetry telemetry = server.telemetry();
  EXPECT_EQ(telemetry.workers, 2u);
  EXPECT_GT(telemetry.wall_seconds, 0.0);
  for (const SchemeTelemetry& scheme : telemetry.schemes) {
    EXPECT_EQ(scheme.latency_ns.count(), scheme.requests());
    EXPECT_LE(scheme.latency_ns.quantile(0.50), scheme.latency_ns.quantile(0.99));
    EXPECT_LE(scheme.latency_ns.quantile(0.99), scheme.latency_ns.quantile(0.999));
  }
  EXPECT_LE(telemetry.batch.width.max(), 64u);

  const std::string json = telemetry_json(telemetry);
  for (const char* key :
       {"\"schema\": 1", "\"kind\": \"serve_telemetry\"", "\"workers\": 2",
        "\"queue\": {", "\"batch\": {", "\"schemes\": [", "\"Hamming(7,4)\"",
        "\"RM(1,3)\"", "\"p50\":", "\"p999\":", "\"throughput_rps\":"})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
}

// -------------------------------------------------------------------- traces --

TEST(LinkServerTrace, TextRoundTripsAndRejectsGarbage) {
  const std::vector<TraceRequest> trace = synthesize_trace(25, 3, 5, 17);
  const std::vector<TraceRequest> parsed = parse_trace(trace_text(trace));
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].scheme, trace[i].scheme);
    EXPECT_EQ(parsed[i].chip, trace[i].chip);
    EXPECT_EQ(parsed[i].message, trace[i].message);
  }
  EXPECT_THROW(parse_trace("not a trace"), ContractViolation);
  EXPECT_THROW(parse_trace("sfqecc-trace 1\n5\n0 0 1\n"), ContractViolation);
}

TEST(LinkServerTrace, SynthesisIsDeterministic) {
  const std::vector<TraceRequest> a = synthesize_trace(50, 2, 4, 123);
  const std::vector<TraceRequest> b = synthesize_trace(50, 2, 4, 123);
  const std::vector<TraceRequest> c = synthesize_trace(50, 2, 4, 124);
  EXPECT_EQ(trace_text(a), trace_text(b));
  EXPECT_NE(trace_text(a), trace_text(c));
}

}  // namespace
}  // namespace sfqecc::serve
