// Integration tests: the paper's headline claims, asserted end-to-end.
//
// Table I  — code-level detection/correction structure.
// Table II — synthesized circuit inventories, JJ count, power, area (exact).
// Fig. 3   — pulse-level timing: message 1011 at 0.1 ns -> codeword 01100110
//            two clock cycles later at 5 GHz with thermal jitter.
// Fig. 5   — Monte-Carlo ordering under +/-20 % PPV: every encoder beats the
//            raw link, Hamming(8,4) is best, and the biggest circuit (RM)
//            trails Hamming(8,4) despite equal code distance.
#include <gtest/gtest.h>

#include "sfqecc.hpp"

namespace sfqecc {
namespace {

TEST(PaperClaims, TableI) {
  const code::LinearCode h74 = code::paper_hamming74();
  const code::LinearCode h84 = code::paper_hamming84();
  const code::LinearCode rm13 = code::paper_rm13();

  // dmin column.
  EXPECT_EQ(h74.dmin(), 3u);
  EXPECT_EQ(h84.dmin(), 4u);
  EXPECT_EQ(rm13.dmin(), 4u);

  // Guaranteed ("worst case") correction: one error each.
  const code::SyndromeDecoder d74(h74);
  const code::ExtendedHammingDecoder d84(h84, h74);
  const code::RmFhtDecoder drm(rm13);
  EXPECT_EQ(code::analyze_error_patterns(d74).guaranteed_correct, 1u);
  EXPECT_EQ(code::analyze_error_patterns(d84).guaranteed_correct, 1u);
  EXPECT_EQ(code::analyze_error_patterns(drm).guaranteed_correct, 1u);

  // "Best case" correction: RM corrects certain 2-bit patterns, Hamming not.
  const code::SyndromeDecoder rm_array(rm13);
  EXPECT_EQ(code::analyze_error_patterns(rm_array, 2).best_correct, 2u);
  EXPECT_EQ(code::analyze_error_patterns(d84, 2).best_correct, 1u);

  // Section II-C: 28 of 35 weight-3 patterns detectable for Hamming(7,4).
  const auto cov = code::detection_coverage(h74, 3);
  EXPECT_EQ(cov[2].detected, core::paper::kH74ThreeBitDetected);
  EXPECT_EQ(cov[2].patterns, core::paper::kH74ThreeBitPatterns);
}

TEST(PaperClaims, TableII) {
  const auto& library = circuit::coldflux_library();
  struct Expected {
    core::SchemeId id;
    const core::paper::TableIIRow& row;
  };
  const Expected expected[] = {
      {core::SchemeId::kRm13, core::paper::kTableII[0]},
      {core::SchemeId::kHamming74, core::paper::kTableII[1]},
      {core::SchemeId::kHamming84, core::paper::kTableII[2]},
  };
  for (const Expected& e : expected) {
    const core::PaperScheme scheme = core::make_scheme(e.id, library);
    const circuit::NetlistStats stats = circuit::compute_stats(
        scheme.encoder->netlist, library, scheme.encoder->clock_input);
    EXPECT_EQ(stats.count(circuit::CellType::kXor), e.row.xor_gates) << e.row.encoder;
    EXPECT_EQ(stats.count(circuit::CellType::kDff), e.row.dffs) << e.row.encoder;
    EXPECT_EQ(stats.count(circuit::CellType::kSplitter), e.row.splitters)
        << e.row.encoder;
    EXPECT_EQ(stats.count(circuit::CellType::kSfqToDc), e.row.sfq_to_dc)
        << e.row.encoder;
    EXPECT_EQ(stats.jj_count, e.row.jj_count) << e.row.encoder;
    EXPECT_NEAR(stats.static_power_uw, e.row.power_uw, 0.05) << e.row.encoder;
    EXPECT_NEAR(stats.area_mm2, e.row.area_mm2, 0.0005) << e.row.encoder;
  }
}

TEST(PaperClaims, Fig3) {
  const auto& library = circuit::coldflux_library();
  const core::PaperScheme scheme =
      core::make_scheme(core::SchemeId::kHamming84, library);
  EXPECT_EQ(scheme.encoder->logic_depth, core::paper::kFig3LogicDepth);

  sim::SimConfig config;
  config.jitter_sigma_ps = 0.8;  // thermal noise at 4.2 K
  config.noise_seed = 7;
  sim::EventSimulator simulator(scheme.encoder->netlist, library, config);
  const code::BitVec message = code::BitVec::from_string(core::paper::kFig3Message);
  for (std::size_t b = 0; b < 4; ++b)
    if (message.get(b))
      simulator.inject_pulse(scheme.encoder->message_inputs[b], 100.0);
  simulator.inject_clock(scheme.encoder->clock_input, 200.0, 200.0, 400.5);
  simulator.run_until(450.0);  // just past 0.4 ns + settling

  code::BitVec word(8);
  for (std::size_t j = 0; j < 8; ++j)
    word.set(j, simulator.dc_level(scheme.encoder->codeword_outputs[j]));
  EXPECT_EQ(word.to_string(), core::paper::kFig3Codeword);
}

TEST(PaperClaims, Fig5OrderingAndAnchors) {
  const auto& library = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(library);
  std::vector<link::SchemeSpec> specs;
  for (const auto& s : schemes)
    specs.push_back(
        link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});

  link::MonteCarloConfig config;
  config.chips = 300;  // enough for the ordering at test-time cost
  config.messages_per_chip = 100;
  config.seed = 20250831;
  config.link.sim.record_pulses = false;
  config.link.sim.jitter_sigma_ps = 0.8;
  const auto outcomes = link::run_monte_carlo(specs, library, config);

  // Paper's ordering: no encoder < RM(1,3) < Hamming(7,4) < Hamming(8,4).
  EXPECT_LT(outcomes[0].p_zero, outcomes[1].p_zero);
  EXPECT_LT(outcomes[1].p_zero, outcomes[2].p_zero);
  EXPECT_LT(outcomes[2].p_zero, outcomes[3].p_zero);

  // Anchor: the raw link sits near the paper's 80 % (within MC tolerance).
  EXPECT_NEAR(outcomes[0].p_zero, 0.80, 0.06);
  // Every CDF must reach ~1 near the right edge like Fig. 5.
  for (const auto& o : outcomes) EXPECT_GT(o.cdf.at(95), 0.99);
}

TEST(PaperClaims, TradeoffStrongestCodeIsNotBestCircuit) {
  // The paper's central observation: RM(1,3) has the best code-level error
  // correction (corrects some doubles) but the largest circuit, and loses to
  // Hamming(8,4) under PPV. Assert both halves.
  const auto& library = circuit::coldflux_library();
  const core::PaperScheme rm = core::make_scheme(core::SchemeId::kRm13, library);
  const core::PaperScheme h84 = core::make_scheme(core::SchemeId::kHamming84, library);

  const auto rm_stats =
      circuit::compute_stats(rm.encoder->netlist, library, rm.encoder->clock_input);
  const auto h84_stats =
      circuit::compute_stats(h84.encoder->netlist, library, h84.encoder->clock_input);
  EXPECT_GT(rm_stats.jj_count, h84_stats.jj_count);

  const code::SyndromeDecoder rm_array(*rm.code);
  const code::SyndromeDecoder h84_array(*h84.code);
  EXPECT_GT(code::analyze_error_patterns(rm_array, 2).by_weight[1].corrected, 0u);
}

}  // namespace
}  // namespace sfqecc
