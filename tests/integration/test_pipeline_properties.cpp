// Property tests of the complete synthesis + simulation pipeline on RANDOM
// codes: for any full-rank generator matrix, the synthesized, balanced,
// legalized SFQ netlist — simulated at pulse level through its real clock
// tree — must compute exactly the code's encoding map, obey all structural
// invariants, and carry the predicted cell counts.
#include <gtest/gtest.h>

#include "circuit/balance.hpp"
#include "circuit/encoder_builder.hpp"
#include "circuit/netlist_stats.hpp"
#include "code/linear_code.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace sfqecc {
namespace {

using circuit::BuiltEncoder;
using code::BitVec;
using code::Gf2Matrix;

Gf2Matrix random_full_rank(std::size_t k, std::size_t n, util::Rng& rng) {
  Gf2Matrix g(k, n);
  for (;;) {
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t c = 0; c < n; ++c) g.set(r, c, rng.bernoulli(0.5));
    // No zero columns (pulse logic cannot emit constants) and full rank.
    bool ok = g.rank() == k;
    for (std::size_t c = 0; ok && c < n; ++c)
      if (g.column(c).is_zero()) ok = false;
    if (ok) return g;
  }
}

BitVec run_pulse_frame(const BuiltEncoder& built, const BitVec& message) {
  sim::SimConfig config;
  config.record_pulses = false;
  sim::EventSimulator simulator(built.netlist, circuit::coldflux_library(), config);
  for (std::size_t b = 0; b < message.size(); ++b)
    if (message.get(b)) simulator.inject_pulse(built.message_inputs[b], 100.0);
  const double last = 200.0 * static_cast<double>(built.logic_depth);
  if (built.logic_depth > 0)
    simulator.inject_clock(built.clock_input, 200.0, 200.0, last + 0.5);
  simulator.run_until(std::max(last, 100.0) + 60.0);
  BitVec word(built.codeword_outputs.size());
  for (std::size_t j = 0; j < word.size(); ++j)
    word.set(j, simulator.dc_level(built.codeword_outputs[j]));
  return word;
}

class RandomCodePipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCodePipeline, PulseSimMatchesEncodingMap) {
  util::Rng rng(GetParam());
  const std::size_t k = 2 + rng.below(4);       // 2..5
  const std::size_t n = k + 1 + rng.below(6);   // up to k+6
  const code::LinearCode code("random", random_full_rank(k, n, rng));
  const BuiltEncoder built = circuit::build_encoder(code, circuit::coldflux_library());

  // Structural invariants.
  built.netlist.validate(true);
  EXPECT_TRUE(built.netlist.obeys_fanout_discipline());

  // Predicted balancing DFF count matches the built netlist.
  EXPECT_EQ(built.netlist.count_cells(circuit::CellType::kDff),
            circuit::balancing_dff_count(built.program, built.logic_depth));

  // Clock splitters = clocked cells - 1 (binary tree), when any exist.
  const auto stats = circuit::compute_stats(built.netlist, circuit::coldflux_library(),
                                            built.clock_input);
  const std::size_t clocked = built.netlist.count_cells(circuit::CellType::kXor) +
                              built.netlist.count_cells(circuit::CellType::kDff);
  if (clocked > 0) {
    EXPECT_EQ(stats.clock_splitters, clocked - 1);
  }

  // Functional equivalence, every message, at pulse level.
  for (std::uint64_t m = 0; m < (1ULL << k); ++m) {
    const BitVec message = BitVec::from_u64(k, m);
    EXPECT_EQ(run_pulse_frame(built, message), code.encode(message))
        << "k=" << k << " n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCodePipeline,
                         ::testing::Range<std::uint64_t>(1000, 1030));

class RandomCodeStreaming : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCodeStreaming, BalancedPipelineStreams) {
  // Streaming property on random codes: message i enters in clock window i,
  // codeword i is the differential read of window i + depth.
  util::Rng rng(GetParam());
  const std::size_t k = 2 + rng.below(3);
  const std::size_t n = k + 2 + rng.below(4);
  const code::LinearCode code("random", random_full_rank(k, n, rng));
  const BuiltEncoder built = circuit::build_encoder(code, circuit::coldflux_library());
  const std::size_t depth = built.logic_depth;
  if (depth == 0) GTEST_SKIP() << "combinational code";

  constexpr double kPeriod = 200.0;
  sim::SimConfig config;
  config.record_pulses = false;
  sim::EventSimulator simulator(built.netlist, circuit::coldflux_library(), config);

  std::vector<BitVec> messages;
  for (int i = 0; i < 6; ++i) {
    BitVec m(k);
    for (std::size_t b = 0; b < k; ++b) m.set(b, rng.bernoulli(0.5));
    messages.push_back(m);
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const double t = 100.0 + kPeriod * static_cast<double>(i);
    for (std::size_t b = 0; b < k; ++b)
      if (messages[i].get(b)) simulator.inject_pulse(built.message_inputs[b], t);
  }
  const std::size_t cycles = messages.size() + depth;
  simulator.inject_clock(built.clock_input, kPeriod, kPeriod,
                         kPeriod * static_cast<double>(cycles) + 0.5);

  std::vector<BitVec> samples;
  for (std::size_t c = 0; c <= cycles; ++c) {
    simulator.run_until(kPeriod * static_cast<double>(c) + 80.0);
    BitVec levels(n);
    for (std::size_t j = 0; j < n; ++j)
      levels.set(j, simulator.dc_level(built.codeword_outputs[j]));
    samples.push_back(levels);
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(samples[i + depth] ^ samples[i + depth - 1], code.encode(messages[i]))
        << "streamed message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCodeStreaming,
                         ::testing::Range<std::uint64_t>(2000, 2015));

}  // namespace
}  // namespace sfqecc
