// Distributed-fabric end-to-end tests: a coordinator plus in-process worker
// threads over a temp spool, byte-compared against the single-process engine.
// The fabric's whole contract is "moves WHERE units run, never WHAT they
// produce" — so every test here reduces to report equality with
// engine::run_campaign, including under stale-claim reclaim, torn-shard
// resume, quarantine, and injected merge faults (mirroring the in-process
// resilience suite in test_fault_injection.cpp).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_encoders.hpp"
#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "engine/fault_injection.hpp"
#include "engine/report.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/spool.hpp"
#include "fabric/worker.hpp"
#include "util/expect.hpp"

namespace sfqecc::fabric {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() {
    // Two schemes keep the simulation budget small while still exercising
    // the scheme-interleaved unit order.
    for (std::size_t i = 0; i < 2; ++i) {
      const core::PaperScheme& s = paper_schemes_[i];
      schemes_.push_back(
          link::SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
    }
  }

  engine::CampaignSpec small_spec() const {
    engine::CampaignSpec spec;
    spec.chips = 10;
    spec.messages_per_chip = 4;
    spec.seed = 777;
    spec.spreads = {{0.25, ppv::SpreadDistribution::kUniform}};
    return spec;
  }

  /// Scoped spool rooted in the test temp dir; removed on destruction.
  struct TempSpool {
    SpoolPaths spool;
    explicit TempSpool(const std::string& name)
        : spool{fs::path(::testing::TempDir()) / name} {
      fs::remove_all(spool.root);
    }
    ~TempSpool() { fs::remove_all(spool.root); }
    const SpoolPaths& operator*() const { return spool; }
  };

  /// Fast-polling worker options (the tests should finish in milliseconds,
  /// not default poll intervals), with a generous idle timeout as a hang
  /// backstop — a healthy run never gets near it.
  WorkerOptions worker_options(const std::string& id) const {
    WorkerOptions options;
    options.worker_id = id;
    options.threads = 1;
    options.poll_interval = 2ms;
    options.idle_timeout = 30000ms;
    return options;
  }

  CoordinatorOptions coordinator_options() const {
    CoordinatorOptions options;
    options.poll_interval = 2ms;
    options.idle_timeout = 30000ms;
    return options;
  }

  /// Runs the coordinator on this thread and `worker_count` workers on their
  /// own threads, returning the coordinator outcome. Worker exceptions fail
  /// the test; worker outcomes land in `worker_outcomes_`.
  CoordinatorOutcome run_fabric(const SpoolPaths& spool,
                                const engine::CampaignSpec& spec,
                                CoordinatorOptions coordinator,
                                std::size_t worker_count,
                                const engine::FaultInjector* worker_injector = nullptr) {
    const std::vector<engine::CampaignCell> cells = engine::expand_cells(spec);
    worker_outcomes_.assign(worker_count, WorkerOutcome{});
    std::vector<std::string> worker_errors(worker_count);
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < worker_count; ++w)
      threads.emplace_back([&, w] {
        WorkerOptions options = worker_options("w" + std::to_string(w));
        options.shard_chips = coordinator.shard_chips;
        options.fault_injector = worker_injector;
        try {
          worker_outcomes_[w] = run_worker(spool, spec, cells, schemes_, lib_, options);
        } catch (const std::exception& e) {
          worker_errors[w] = e.what();
        }
      });
    CoordinatorOutcome outcome;
    std::string coordinator_error;
    try {
      outcome = run_coordinator(spool, spec, cells, schemes_, coordinator);
    } catch (const std::exception& e) {
      coordinator_error = e.what();
      mark_complete(spool);  // release the workers before rethrowing
    }
    for (std::thread& thread : threads) thread.join();
    for (std::size_t w = 0; w < worker_count; ++w)
      EXPECT_TRUE(worker_errors[w].empty()) << "worker " << w << ": "
                                            << worker_errors[w];
    if (!coordinator_error.empty()) throw engine::IoError(coordinator_error);
    return outcome;
  }

  /// The reports a single-process run of `spec` produces (the fabric's
  /// byte-identity reference).
  std::pair<std::string, std::string> single_process_reports(
      const engine::CampaignSpec& spec,
      const engine::RunnerOptions& options = {}) const {
    const engine::CampaignResult result =
        engine::run_campaign(spec, schemes_, lib_, options);
    return {engine::campaign_json(spec, result), engine::campaign_csv(result)};
  }

  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  std::vector<core::PaperScheme> paper_schemes_ = core::make_all_schemes(lib_);
  std::vector<link::SchemeSpec> schemes_;
  std::vector<WorkerOutcome> worker_outcomes_;
};

// -------------------------------------------------------------- determinism --

TEST_F(FabricTest, ThreeWorkersByteIdenticalAcrossShardAndLeaseSizes) {
  // The tentpole guarantee: any worker fleet, any shard size, any lease
  // granularity — the merged reports match a single-machine run to the byte.
  const engine::CampaignSpec spec = small_spec();
  const auto [json, csv] = single_process_reports(spec);
  for (std::size_t shard_chips : {std::size_t{1}, std::size_t{3}, std::size_t{7}})
    for (std::size_t lease_units : {std::size_t{1}, std::size_t{3}}) {
      SCOPED_TRACE("shard=" + std::to_string(shard_chips) +
                   " lease=" + std::to_string(lease_units));
      TempSpool temp("fabric_det_" + std::to_string(shard_chips) + "_" +
                     std::to_string(lease_units));
      CoordinatorOptions coordinator = coordinator_options();
      coordinator.shard_chips = shard_chips;
      coordinator.lease_units = lease_units;
      const CoordinatorOutcome outcome = run_fabric(*temp, spec, coordinator, 3);

      EXPECT_TRUE(outcome.result.complete());
      EXPECT_TRUE(outcome.result.failures.empty());
      EXPECT_EQ(outcome.result.units_executed, outcome.result.units_total);
      EXPECT_EQ(engine::campaign_json(spec, outcome.result), json);
      EXPECT_EQ(engine::campaign_csv(outcome.result), csv);
      EXPECT_TRUE(is_complete(*temp));
    }
}

TEST_F(FabricTest, StaleClaimIsReclaimedAndReportStaysIdentical) {
  // A worker that claims a lease and dies (no heartbeat, ever) must not
  // wedge the campaign: the coordinator republishes its lease and a live
  // worker picks it up — the corpse never executed anything, so the report
  // is untouched.
  const engine::CampaignSpec spec = small_spec();
  const auto [json, csv] = single_process_reports(spec);
  TempSpool temp("fabric_stale");
  CoordinatorOptions coordinator = coordinator_options();
  coordinator.lease_timeout = 50ms;

  const std::vector<engine::CampaignCell> cells = engine::expand_cells(spec);
  std::thread corpse([&] {
    // Wait for the coordinator to open the campaign, then grab the first
    // lease under an id that will never heartbeat.
    Manifest manifest;
    while (!read_manifest(*temp, manifest)) std::this_thread::sleep_for(1ms);
    for (;;) {
      const std::vector<std::string> names = list_leases(*temp);
      if (!names.empty()) {
        Lease lease;
        if (claim_lease(*temp, names.front(), "corpse", lease)) break;
      } else if (is_complete(*temp)) {
        break;  // lost every race to the live workers — nothing left to steal
      }
      std::this_thread::sleep_for(1ms);
    }
  });
  const CoordinatorOutcome outcome = run_fabric(*temp, spec, coordinator, 2);
  corpse.join();

  EXPECT_TRUE(outcome.result.complete());
  EXPECT_EQ(engine::campaign_json(spec, outcome.result), json);
  EXPECT_EQ(engine::campaign_csv(outcome.result), csv);
}

TEST_F(FabricTest, TornShardResumesWithOnlyMissingUnitsReexecuted) {
  // A worker SIGKILLed mid-append leaves a shard ending in a torn record. A
  // coordinator relaunch must treat every intact record as done (the
  // distributed analogue of checkpoint resume), re-lease only the rest, and
  // still produce the byte-identical report.
  const engine::CampaignSpec spec = small_spec();
  const auto [json, csv] = single_process_reports(spec);
  TempSpool temp("fabric_torn");
  CoordinatorOptions coordinator = coordinator_options();
  coordinator.shard_chips = 2;  // 10 units, so the shard has lines to tear

  const CoordinatorOutcome first = run_fabric(*temp, spec, coordinator, 1);
  ASSERT_TRUE(first.result.complete());
  const std::size_t total = first.result.units_total;

  // Keep the header and the first two records, then a torn third — exactly
  // what a kill during the third append leaves behind.
  const std::string shard = shard_path(*temp, "w0").string();
  std::vector<std::string> lines;
  {
    std::ifstream in(shard);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);
  {
    std::ofstream out(shard, std::ios::trunc);
    out << lines[0] << '\n' << lines[1] << '\n' << lines[2] << '\n'
        << lines[3].substr(0, lines[3].size() / 2);
  }

  // Relaunch order matters on a completed spool: drop the previous run's
  // complete marker before workers start (the coordinator-first launch order
  // the protocol documents), or a fresh worker may correctly observe the OLD
  // campaign as complete and exit before claiming anything.
  clear_campaign_state(*temp);
  const CoordinatorOutcome resumed = run_fabric(*temp, spec, coordinator, 1);
  EXPECT_TRUE(resumed.result.complete());
  EXPECT_EQ(resumed.result.units_resumed, 2u);
  EXPECT_EQ(resumed.result.units_executed, total - 2u);
  EXPECT_EQ(engine::campaign_json(spec, resumed.result), json);
  EXPECT_EQ(engine::campaign_csv(resumed.result), csv);
}

// ------------------------------------------------- failure & fault injection --

TEST_F(FabricTest, QuarantinedUnitMatchesInProcessFailureSemantics) {
  // A unit that fails every attempt on the worker lands in failed/ and flows
  // into CampaignResult::failures exactly like an in-process quarantine —
  // same excluded chips, so the (incomplete) reports still match an
  // in-process run under the identical injected fault.
  const engine::CampaignSpec spec = small_spec();
  // shard_chips must match between reference and fabric: the injected unit
  // index is a position in the shared work-unit list.
  engine::FaultInjector inject_simulate;
  inject_simulate.arm(*engine::parse_injection_spec("simulate:3:*"));
  engine::RunnerOptions reference_options;
  reference_options.shard_chips = 2;
  reference_options.fault_injector = &inject_simulate;
  const auto [json, csv] = single_process_reports(spec, reference_options);

  TempSpool temp("fabric_quarantine");
  CoordinatorOptions coordinator = coordinator_options();
  coordinator.shard_chips = 2;
  engine::FaultInjector worker_injector;
  worker_injector.arm(*engine::parse_injection_spec("simulate:3:*"));
  const CoordinatorOutcome outcome =
      run_fabric(*temp, spec, coordinator, 2, &worker_injector);

  ASSERT_EQ(outcome.result.failures.size(), 1u);
  EXPECT_EQ(outcome.result.failures[0].unit_index, 3u);
  EXPECT_NE(outcome.result.failures[0].error.find("(worker "), std::string::npos)
      << outcome.result.failures[0].error;
  EXPECT_FALSE(outcome.result.complete());
  EXPECT_EQ(engine::campaign_json(spec, outcome.result), json);
  EXPECT_EQ(engine::campaign_csv(outcome.result), csv);

  // A clean relaunch on the same spool retries exactly the quarantined unit
  // and completes the campaign — now matching the fault-free report.
  const auto [clean_json, clean_csv] = single_process_reports(spec);
  clear_campaign_state(*temp);  // coordinator-first relaunch order (see above)
  const CoordinatorOutcome retried = run_fabric(*temp, spec, coordinator, 1);
  EXPECT_TRUE(retried.result.complete());
  EXPECT_TRUE(retried.result.failures.empty());
  EXPECT_EQ(retried.result.units_executed, 1u);
  EXPECT_EQ(engine::campaign_json(spec, retried.result), clean_json);
  EXPECT_EQ(engine::campaign_csv(retried.result), clean_csv);
}

TEST_F(FabricTest, SkippedLeaseClaimsOnlyDelayTheCampaign) {
  // kLeaseClaim models a lost claim race / crash between list and rename:
  // the first consideration of every lease is skipped, a later pass claims
  // it, and nothing about the result changes.
  const engine::CampaignSpec spec = small_spec();
  const auto [json, csv] = single_process_reports(spec);
  TempSpool temp("fabric_leaseclaim");
  engine::FaultInjector worker_injector;
  worker_injector.arm(*engine::parse_injection_spec("lease-claim:*:0"));
  const CoordinatorOutcome outcome = run_fabric(
      *temp, spec, coordinator_options(), 1, &worker_injector);
  EXPECT_GT(worker_injector.fired(), 0u);
  EXPECT_TRUE(outcome.result.complete());
  EXPECT_EQ(engine::campaign_json(spec, outcome.result), json);
}

TEST_F(FabricTest, InjectedShardWriteFailureRetriesToTheSameBytes) {
  // The shard writer runs under IoErrorPolicy::kFail, so an injected append
  // failure re-runs the unit; the retry appends a duplicate record and
  // first-wins dedup keeps the result byte-identical.
  const engine::CampaignSpec spec = small_spec();
  const auto [json, csv] = single_process_reports(spec);
  TempSpool temp("fabric_shardwrite");
  CoordinatorOptions coordinator = coordinator_options();
  coordinator.shard_chips = 2;
  engine::FaultInjector worker_injector;
  worker_injector.arm(*engine::parse_injection_spec("shard-write:2:0"));
  const CoordinatorOutcome outcome =
      run_fabric(*temp, spec, coordinator, 1, &worker_injector);
  EXPECT_EQ(worker_injector.fired(), 1u);
  EXPECT_TRUE(outcome.result.complete());
  EXPECT_TRUE(outcome.result.failures.empty());
  EXPECT_EQ(engine::campaign_json(spec, outcome.result), json);
  EXPECT_EQ(engine::campaign_csv(outcome.result), csv);
}

TEST_F(FabricTest, MergeFaultRetriesInPlaceAndExhaustionThrows) {
  // First run the campaign to completion so a coordinator relaunch has
  // nothing to lease — isolating the final-merge retry ladder.
  const engine::CampaignSpec spec = small_spec();
  const auto [json, csv] = single_process_reports(spec);
  TempSpool temp("fabric_merge");
  ASSERT_TRUE(run_fabric(*temp, spec, coordinator_options(), 1).result.complete());
  const std::vector<engine::CampaignCell> cells = engine::expand_cells(spec);

  engine::FaultInjector once;
  once.arm(*engine::parse_injection_spec("merge:*:0"));
  CoordinatorOptions retrying = coordinator_options();
  retrying.fault_injector = &once;
  const CoordinatorOutcome outcome =
      run_coordinator(*temp, spec, cells, schemes_, retrying);
  EXPECT_GT(once.fired(), 0u);
  EXPECT_TRUE(outcome.result.complete());
  EXPECT_EQ(outcome.result.units_resumed, outcome.result.units_total);
  EXPECT_EQ(engine::campaign_json(spec, outcome.result), json);

  engine::FaultInjector always;
  always.arm(*engine::parse_injection_spec("merge:*:*"));
  CoordinatorOptions exhausted = coordinator_options();
  exhausted.fault_injector = &always;
  exhausted.merge_attempts = 2;
  EXPECT_THROW(run_coordinator(*temp, spec, cells, schemes_, exhausted),
               engine::InjectedFault);
}

TEST_F(FabricTest, MismatchedWorkerConfigurationRefusesToRun) {
  // A worker launched with different campaign flags fingerprints a different
  // campaign and must refuse loudly instead of corrupting the spool.
  const engine::CampaignSpec spec = small_spec();
  TempSpool temp("fabric_mismatch");
  const std::vector<engine::CampaignCell> cells = engine::expand_cells(spec);

  std::thread coordinator_thread([&] {
    CoordinatorOptions coordinator = coordinator_options();
    run_coordinator(*temp, spec, cells, schemes_, coordinator);
  });
  engine::CampaignSpec reseeded = spec;
  reseeded.seed ^= 1;
  WorkerOptions options = worker_options("imposter");
  EXPECT_THROW(run_worker(*temp, reseeded, engine::expand_cells(reseeded), schemes_,
                          lib_, options),
               ContractViolation);
  // A correctly configured worker still completes the campaign.
  WorkerOptions good = worker_options("good");
  run_worker(*temp, spec, cells, schemes_, lib_, good);
  coordinator_thread.join();
  EXPECT_TRUE(is_complete(*temp));
}

}  // namespace
}  // namespace sfqecc::fabric
