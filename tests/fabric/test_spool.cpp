// Spool protocol tests: the filesystem primitives under the distributed
// campaign fabric — atomic publication, the claim-by-rename race, stale-claim
// reclaim, done/failed markers and numeric lease ordering. The end-to-end
// coordinator/worker behaviour lives in test_fabric.cpp.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/fault_injection.hpp"
#include "fabric/spool.hpp"
#include "util/expect.hpp"

namespace sfqecc::fabric {
namespace {

namespace fs = std::filesystem;

/// Scoped spool rooted in the test temp dir; removed on destruction.
struct TempSpool {
  SpoolPaths spool;
  explicit TempSpool(const char* name)
      : spool{fs::path(::testing::TempDir()) / name} {
    fs::remove_all(spool.root);
  }
  ~TempSpool() { fs::remove_all(spool.root); }
  const SpoolPaths& operator*() const { return spool; }
};

TEST(SpoolLayout, CreateIsIdempotentAndClearKeepsShards) {
  TempSpool temp("spool_layout");
  create_spool_layout(*temp);
  create_spool_layout(*temp);  // second call must be a no-op, not an error
  for (const fs::path& dir :
       {temp.spool.leases(), temp.spool.claims(), temp.spool.done(),
        temp.spool.shards(), temp.spool.heartbeats(), temp.spool.failed()})
    EXPECT_TRUE(fs::is_directory(dir)) << dir;

  // Shards are the campaign's results — a relaunch clears run state (leases,
  // claims, markers) but must never delete recorded work.
  { std::ofstream shard(shard_path(*temp, "w1")); }
  publish_lease(*temp, Lease{"0", {0, 1}});
  mark_lease_done(*temp, "0");
  mark_complete(*temp);
  clear_campaign_state(*temp);
  EXPECT_TRUE(fs::exists(shard_path(*temp, "w1")));
  EXPECT_TRUE(list_leases(*temp).empty());
  EXPECT_EQ(count_done(*temp), 0u);
  EXPECT_FALSE(is_complete(*temp));
}

TEST(SpoolManifest, RoundTripsAndSignalsAbsence) {
  TempSpool temp("spool_manifest");
  create_spool_layout(*temp);
  Manifest read_back;
  EXPECT_FALSE(read_manifest(*temp, read_back)) << "no manifest yet";

  Manifest manifest;
  manifest.fingerprint = 0xdeadbeefcafeull;
  manifest.units = 42;
  manifest.leases = 6;
  manifest.lease_units = 8;
  write_manifest(*temp, manifest);
  ASSERT_TRUE(read_manifest(*temp, read_back));
  EXPECT_EQ(read_back.fingerprint, manifest.fingerprint);
  EXPECT_EQ(read_back.units, 42u);
  EXPECT_EQ(read_back.leases, 6u);
  EXPECT_EQ(read_back.lease_units, 8u);
}

TEST(SpoolManifest, ForeignFileIsLoudNotMisread) {
  TempSpool temp("spool_manifest_foreign");
  create_spool_layout(*temp);
  { std::ofstream out(temp.spool.manifest()); out << "not a manifest at all\n"; }
  Manifest manifest;
  EXPECT_THROW(read_manifest(*temp, manifest), ContractViolation);
}

TEST(SpoolLease, PublishClaimRoundTripsUnitList) {
  TempSpool temp("spool_lease");
  create_spool_layout(*temp);
  publish_lease(*temp, Lease{"12", {12, 13, 17}});
  ASSERT_EQ(list_leases(*temp), std::vector<std::string>{"12"});

  Lease claimed;
  ASSERT_TRUE(claim_lease(*temp, "12", "w1", claimed));
  EXPECT_EQ(claimed.name, "12");
  EXPECT_EQ(claimed.units, (std::vector<std::size_t>{12, 13, 17}));
  EXPECT_TRUE(list_leases(*temp).empty()) << "claim moves the lease file";
  const std::vector<ClaimInfo> claims = list_claims(*temp);
  ASSERT_EQ(claims.size(), 1u);
  EXPECT_EQ(claims[0].lease, "12");
  EXPECT_EQ(claims[0].worker, "w1");
}

TEST(SpoolLease, SecondClaimantLosesTheRace) {
  // Claiming is one atomic rename: exactly one worker can win, the loser
  // gets `false` (not an exception) and moves on to the next lease.
  TempSpool temp("spool_lease_race");
  create_spool_layout(*temp);
  publish_lease(*temp, Lease{"0", {0}});
  Lease first, second;
  EXPECT_TRUE(claim_lease(*temp, "0", "w1", first));
  EXPECT_FALSE(claim_lease(*temp, "0", "w2", second));
}

TEST(SpoolLease, ReclaimRepublishesAndRemoveRetires) {
  TempSpool temp("spool_lease_reclaim");
  create_spool_layout(*temp);
  publish_lease(*temp, Lease{"0", {0, 1}});
  Lease claimed;
  ASSERT_TRUE(claim_lease(*temp, "0", "dead", claimed));

  // Reclaim puts the identical lease back; a new worker claims the same units.
  ASSERT_TRUE(reclaim_lease(*temp, ClaimInfo{"0", "dead"}));
  EXPECT_TRUE(list_claims(*temp).empty());
  Lease again;
  ASSERT_TRUE(claim_lease(*temp, "0", "alive", again));
  EXPECT_EQ(again.units, claimed.units);

  // remove_claim retires a finished worker's claim without republishing.
  remove_claim(*temp, ClaimInfo{"0", "alive"});
  EXPECT_TRUE(list_claims(*temp).empty());
  EXPECT_TRUE(list_leases(*temp).empty());
}

TEST(SpoolLease, NumericNamesSortNumerically) {
  // Lease names are decimal unit indices; "10" must come after "9" so
  // workers scan the queue in campaign order.
  TempSpool temp("spool_lease_order");
  create_spool_layout(*temp);
  for (const char* name : {"10", "2", "0", "9"})
    publish_lease(*temp, Lease{name, {std::size_t(1)}});
  EXPECT_EQ(list_leases(*temp),
            (std::vector<std::string>{"0", "2", "9", "10"}));
}

TEST(SpoolLease, RejectsClaimUnsafeWorkerIds)
{
  // '.' separates lease from worker in claim names and '/' would escape the
  // directory — both must be rejected before they corrupt the namespace.
  TempSpool temp("spool_lease_ids");
  create_spool_layout(*temp);
  publish_lease(*temp, Lease{"0", {0}});
  Lease out;
  EXPECT_THROW(claim_lease(*temp, "0", "a.b", out), ContractViolation);
  EXPECT_THROW(claim_lease(*temp, "0", "a/b", out), ContractViolation);
  EXPECT_THROW(claim_lease(*temp, "0", "", out), ContractViolation);
}

TEST(SpoolMarkers, DoneHeartbeatFailedAndComplete) {
  TempSpool temp("spool_markers");
  create_spool_layout(*temp);

  EXPECT_FALSE(is_lease_done(*temp, "0"));
  mark_lease_done(*temp, "0");
  mark_lease_done(*temp, "0");  // idempotent (a reclaimed lease can finish twice)
  mark_lease_done(*temp, "8");
  EXPECT_TRUE(is_lease_done(*temp, "0"));
  EXPECT_EQ(count_done(*temp), 2u);

  EXPECT_FALSE(heartbeat_age(*temp, "w1").has_value()) << "no heartbeat yet";
  touch_heartbeat(*temp, "w1");
  const auto age = heartbeat_age(*temp, "w1");
  ASSERT_TRUE(age.has_value());
  EXPECT_GE(age->count(), 0);
  EXPECT_LT(age->count(), 60000) << "freshly touched heartbeat reads as recent";
  EXPECT_EQ(list_heartbeats(*temp), std::vector<std::string>{"w1"});

  mark_unit_failed(*temp, 7, "w1", 3, "simulate blew up");
  const std::vector<FailedUnit> failed = list_failed(*temp);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].unit, 7u);
  EXPECT_EQ(failed[0].worker, "w1");
  EXPECT_EQ(failed[0].attempts, 3u);
  EXPECT_EQ(failed[0].error, "simulate blew up");

  EXPECT_FALSE(is_complete(*temp));
  mark_complete(*temp);
  EXPECT_TRUE(is_complete(*temp));
}

TEST(SpoolMarkers, InFlightTempFilesAreInvisible) {
  // Publication is write-tmp-then-rename; a reader listing a directory while
  // a publish is in flight must never see the half-written temp file.
  TempSpool temp("spool_tmpfiles");
  create_spool_layout(*temp);
  { std::ofstream out(temp.spool.leases() / ".tmp-123-0-5.lease"); out << "x"; }
  { std::ofstream out(temp.spool.shards() / ".tmp-123-1-w1.ckpt"); out << "x"; }
  EXPECT_TRUE(list_leases(*temp).empty());
  EXPECT_TRUE(list_shards(*temp).empty());
}

}  // namespace
}  // namespace sfqecc::fabric
