// Junction-level physics tests: the RCSJ substrate must reproduce the
// textbook SFQ phenomenology the behavioural simulator assumes.
#include "josim/rcsj.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::josim {
namespace {

JunctionParams nominal_junction() {
  JunctionParams j;
  j.ic_ma = 0.10;
  j.r_ohm = 5.0;
  j.c_pf = JunctionParams::capacitance_for_beta_c(0.10, 5.0, 1.0);
  return j;
}

TEST(Rcsj, BetaCRoundTrip) {
  const JunctionParams j = nominal_junction();
  EXPECT_NEAR(j.beta_c(), 1.0, 1e-12);
}

TEST(Rcsj, SubcriticalJunctionStaysSuperconducting) {
  const JunctionParams j = nominal_junction();
  const auto trace =
      simulate_junction(j, [](double) { return 0.08; }, 200.0);  // 0.8 Ic
  EXPECT_TRUE(trace.slip_times_ps.empty());
  // Phase settles to arcsin(I/Ic), voltage decays to zero.
  EXPECT_NEAR(trace.phase_rad.back(), std::asin(0.8), 1e-3);
  EXPECT_NEAR(trace.voltage_mv.back(), 0.0, 1e-4);
  EXPECT_NEAR(trace.flux_quanta(), std::asin(0.8) / (2 * M_PI), 0.01);
}

TEST(Rcsj, SupercriticalJunctionRunsAtJosephsonFrequency) {
  const JunctionParams j = nominal_junction();
  const double drive = 0.20;  // 2 Ic -> voltage state
  const auto trace = simulate_junction(j, [=](double) { return drive; }, 200.0);
  EXPECT_GT(trace.slip_times_ps.size(), 10u);
  // Average voltage ~ R * sqrt(I^2 - Ic^2) (overdamped estimate); Josephson
  // relation: slip rate = <V>/Phi0.
  const double expected_v = j.r_ohm * std::sqrt(drive * drive - j.ic_ma * j.ic_ma);
  const double window = trace.time_ps.back() - trace.slip_times_ps.front();
  const double rate =
      static_cast<double>(trace.slip_times_ps.size() - 1) / window;
  EXPECT_NEAR(rate * kPhi0, expected_v, 0.15 * expected_v);
}

TEST(Rcsj, PulseDriveEmitsSingleFluxQuantum) {
  const JunctionParams j = nominal_junction();
  // DC bias 0.7 Ic plus a short overdrive pulse.
  auto drive = [&](double t) {
    double i = 0.07;
    if (t >= 20.0 && t <= 25.0)
      i += 0.12 * 0.5 * (1.0 - std::cos(2 * M_PI * (t - 20.0) / 5.0));
    return i;
  };
  const auto trace = simulate_junction(j, drive, 100.0);
  ASSERT_EQ(trace.slip_times_ps.size(), 1u);
  EXPECT_GT(trace.slip_times_ps[0], 20.0);
  EXPECT_LT(trace.slip_times_ps[0], 30.0);
  // The emitted pulse carries one flux quantum (plus the small static
  // arcsin() phase ramp).
  EXPECT_NEAR(trace.flux_quanta(), 1.0, 0.15);
}

TEST(Rcsj, SfqPulseIsPicosecondMillivoltScale) {
  const JunctionParams j = nominal_junction();
  auto drive = [&](double t) {
    double i = 0.07;
    if (t >= 20.0 && t <= 25.0)
      i += 0.12 * 0.5 * (1.0 - std::cos(2 * M_PI * (t - 20.0) / 5.0));
    return i;
  };
  const auto trace = simulate_junction(j, drive, 100.0);
  double peak = 0.0;
  for (double v : trace.voltage_mv) peak = std::max(peak, v);
  // The paper: "amplitude of the voltage pulse is around 1 mV with 2 ps
  // duration". RCSJ gives a few hundred uV to ~1 mV peak for these params.
  EXPECT_GT(peak, 0.2);
  EXPECT_LT(peak, 2.0);
  // FWHM of the pulse: count samples above half peak.
  std::size_t above = 0;
  for (double v : trace.voltage_mv)
    if (v > peak / 2) ++above;
  const double fwhm = static_cast<double>(above) * 0.01;
  EXPECT_GT(fwhm, 0.5);
  EXPECT_LT(fwhm, 6.0);
}

TEST(Rcsj, JtlPropagatesSinglePulse) {
  JtlParams jtl;
  jtl.junction = nominal_junction();
  const JtlTrace trace = simulate_jtl(jtl, PulseStimulus{});
  EXPECT_TRUE(trace.clean_single_pulse());
  // Slips happen in order along the line.
  for (std::size_t j = 1; j < jtl.stages; ++j)
    EXPECT_GT(trace.slip_times_ps[j][0], trace.slip_times_ps[j - 1][0]);
}

TEST(Rcsj, JtlStageDelayIsPicoseconds) {
  JtlParams jtl;
  jtl.junction = nominal_junction();
  const JtlTrace trace = simulate_jtl(jtl, PulseStimulus{});
  const double delay = trace.stage_delay_ps();
  // The behavioural JTL cell uses 4 ps; the microscopic line gives the same
  // order of magnitude.
  EXPECT_GT(delay, 0.5);
  EXPECT_LT(delay, 12.0);
}

TEST(Rcsj, JtlQuietWithoutStimulus) {
  JtlParams jtl;
  jtl.junction = nominal_junction();
  PulseStimulus none;
  none.amplitude_ma = 0.0;
  const JtlTrace trace = simulate_jtl(jtl, none);
  for (const auto& slips : trace.slip_times_ps) EXPECT_TRUE(slips.empty());
}

TEST(Rcsj, OverbiasedJtlFreeRuns) {
  JtlParams jtl;
  jtl.junction = nominal_junction();
  jtl.bias_fraction = 1.3;  // beyond critical: junctions oscillate on their own
  PulseStimulus none;
  none.amplitude_ma = 0.0;
  const JtlTrace trace = simulate_jtl(jtl, none);
  EXPECT_GT(trace.slip_times_ps[0].size(), 3u);
}

TEST(Rcsj, BiasMarginsAreWideAtNominal) {
  JtlParams jtl;
  jtl.junction = nominal_junction();
  const BiasMargins margins = find_bias_margins(jtl);
  // SFQ circuits are designed for +/-20-30 % parameter margins (paper,
  // Section I); the microscopic JTL shows margins at least that wide.
  EXPECT_LT(margins.low, 0.56);   // >= 20 % below nominal 0.7
  EXPECT_GT(margins.high, 0.84);  // >= 20 % above
  EXPECT_GE(margins.relative_margin(0.70), 0.20);
}

TEST(Rcsj, CriticalCurrentSpreadDegradesTransmission) {
  // Microscopic version of the PPV story: apply a uniform +/-spread to every
  // junction's Ic and measure the clean-transmission yield. Yield must be
  // ~100 % at 10 % spread and visibly degraded at 60 %.
  util::Rng rng(7);
  auto yield_at = [&](double spread) {
    int ok = 0;
    const int chips = 40;
    for (int c = 0; c < chips; ++c) {
      JtlParams jtl;
      jtl.junction = nominal_junction();
      jtl.ic_scale.resize(jtl.stages);
      for (double& s : jtl.ic_scale) s = 1.0 + rng.uniform(-spread, spread);
      if (jtl_transmits(jtl)) ++ok;
    }
    return ok;
  };
  const int y10 = yield_at(0.10);
  const int y60 = yield_at(0.60);
  EXPECT_GE(y10, 38);
  EXPECT_LT(y60, y10);
}

TEST(Rcsj, DeterministicIntegration) {
  JtlParams jtl;
  jtl.junction = nominal_junction();
  const JtlTrace a = simulate_jtl(jtl, PulseStimulus{});
  const JtlTrace b = simulate_jtl(jtl, PulseStimulus{});
  ASSERT_EQ(a.slip_times_ps.size(), b.slip_times_ps.size());
  for (std::size_t j = 0; j < a.slip_times_ps.size(); ++j)
    EXPECT_EQ(a.slip_times_ps[j], b.slip_times_ps[j]);
}

TEST(Rcsj, StepSizeConvergence) {
  // Halving dt must not change the slip count and should move slip times by
  // less than the step size.
  JtlParams jtl;
  jtl.junction = nominal_junction();
  const JtlTrace coarse = simulate_jtl(jtl, PulseStimulus{}, 100.0, 0.02);
  const JtlTrace fine = simulate_jtl(jtl, PulseStimulus{}, 100.0, 0.01);
  ASSERT_TRUE(coarse.clean_single_pulse());
  ASSERT_TRUE(fine.clean_single_pulse());
  for (std::size_t j = 0; j < jtl.stages; ++j)
    EXPECT_NEAR(coarse.slip_times_ps[j][0], fine.slip_times_ps[j][0], 0.05);
}

TEST(Rcsj, ContractChecks) {
  JunctionParams j = nominal_junction();
  EXPECT_THROW(simulate_junction(j, [](double) { return 0.0; }, -1.0),
               ContractViolation);
  EXPECT_THROW(JunctionParams::capacitance_for_beta_c(0.0, 5.0, 1.0),
               ContractViolation);
  JtlParams jtl;
  jtl.junction = j;
  jtl.ic_scale = {1.0};  // wrong size
  EXPECT_THROW(simulate_jtl(jtl, PulseStimulus{}), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::josim
