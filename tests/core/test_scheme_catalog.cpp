// Scheme-catalog tests: descriptor grammar (parse / round-trip / errors),
// catalog-vs-SchemeId-wrapper equivalence (names, codes, decoders, artifact
// cache keys, byte-identical Monte-Carlo outcomes), non-paper families
// through the full link stack, mixed-catalog campaign determinism across
// thread counts and shard sizes, and catalog extensibility.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "circuit/netlist_stats.hpp"
#include "code/hamming.hpp"
#include "core/paper_encoders.hpp"
#include "core/scheme_catalog.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/campaign.hpp"
#include "engine/report.hpp"
#include "link/monte_carlo.hpp"
#include "util/expect.hpp"

namespace sfqecc::core {
namespace {

const circuit::CellLibrary& lib() { return circuit::coldflux_library(); }

SchemeDescriptor parse_ok(const std::string& text) {
  DescriptorParseError error;
  const auto desc = parse_scheme_descriptor(text, &error);
  EXPECT_TRUE(desc.has_value()) << text << ": " << error.message;
  return desc.value_or(SchemeDescriptor{});
}

DescriptorParseError parse_fail(const std::string& text) {
  DescriptorParseError error;
  EXPECT_FALSE(parse_scheme_descriptor(text, &error).has_value()) << text;
  return error;
}

// ------------------------------------------------------- descriptor grammar --

TEST(SchemeDescriptorTest, ParsesFullGrammar) {
  const SchemeDescriptor desc = parse_ok("hamming:8,4x/secded@tree");
  EXPECT_EQ(desc.family, "hamming");
  EXPECT_EQ(desc.params, (std::vector<std::size_t>{8, 4}));
  EXPECT_TRUE(desc.extended);
  EXPECT_EQ(desc.decoder, "secded");
  EXPECT_EQ(desc.synthesis, "tree");
}

TEST(SchemeDescriptorTest, ParsesMinimalForms) {
  EXPECT_EQ(parse_ok("none").family, "none");
  EXPECT_TRUE(parse_ok("none").params.empty());
  EXPECT_EQ(parse_ok("bch:15,7").params, (std::vector<std::size_t>{15, 7}));
  EXPECT_FALSE(parse_ok("bch:15,7").extended);
  EXPECT_EQ(parse_ok("rm:1,3/soft").decoder, "soft");
  EXPECT_EQ(parse_ok("code3832@chain").synthesis, "chain");
}

TEST(SchemeDescriptorTest, ExpandsLegacyAliases) {
  EXPECT_EQ(parse_ok("rm13").text(), "rm:1,3");
  EXPECT_EQ(parse_ok("h74").text(), "hamming:7,4");
  EXPECT_EQ(parse_ok("h84").text(), "hamming:8,4x");
  // Aliases compose with suffixes.
  EXPECT_EQ(parse_ok("h84/syndrome@tree").text(), "hamming:8,4x/syndrome@tree");
}

TEST(SchemeDescriptorTest, TextRoundTrips) {
  for (const char* text :
       {"none", "none:8", "rm:1,3", "hamming:8,4x", "hsiao:13,8/syndrome",
        "bch:15,7/bm@paar-unbounded", "code3832@tree", "rm:1,3/majority"}) {
    const SchemeDescriptor desc = parse_ok(text);
    EXPECT_EQ(desc.text(), text);
    // Parsing the round-tripped text reproduces the descriptor.
    const SchemeDescriptor again = parse_ok(desc.text());
    EXPECT_EQ(again.text(), desc.text());
  }
}

TEST(SchemeDescriptorTest, RejectsMalformedTextWithPositions) {
  EXPECT_EQ(parse_fail("").message, "empty scheme descriptor");
  EXPECT_EQ(parse_fail("hamming:").position, 8u);   // missing parameters
  EXPECT_EQ(parse_fail("hamming:7,,4").position, 10u);  // empty parameter
  EXPECT_EQ(parse_fail("hamming:7,4,").position, 12u);  // trailing comma
  EXPECT_EQ(parse_fail("hamming:7,4/").position, 12u);  // missing decoder
  EXPECT_EQ(parse_fail("rm:1,3@").position, 7u);        // missing synthesis
  EXPECT_EQ(parse_fail("rm:1,3//ml").position, 7u);     // duplicate '/'
  EXPECT_EQ(parse_fail("rm:1,3@a@b").position, 8u);     // duplicate '@'
  EXPECT_EQ(parse_fail("rm@tree/ml").position, 7u);     // '/' after '@'
  EXPECT_EQ(parse_fail("7foo").position, 0u);   // digit-leading family
  EXPECT_EQ(parse_fail("Hamming:7,4").position, 0u);  // uppercase family
  EXPECT_EQ(parse_fail("hamming:7x,4").position, 9u);  // 'x' on non-last param
  EXPECT_EQ(parse_fail("hamming:a,4").position, 8u);   // non-numeric param
  EXPECT_EQ(parse_fail(":7,4").message, "missing scheme family");
}

TEST(SchemeCatalogTest, CanonicalDropsFamilyDefaults) {
  const SchemeCatalog& catalog = SchemeCatalog::builtin();
  EXPECT_EQ(catalog.canonical(parse_ok("hamming:7,4/syndrome")), "hamming:7,4");
  EXPECT_EQ(catalog.canonical(parse_ok("hamming:8,4x/secded")), "hamming:8,4x");
  EXPECT_EQ(catalog.canonical(parse_ok("hamming:8,4x/syndrome")),
            "hamming:8,4x/syndrome");  // non-default stays
  EXPECT_EQ(catalog.canonical(parse_ok("rm:1,3/ml@paar")), "rm:1,3");
  EXPECT_EQ(catalog.canonical(parse_ok("none:4")), "none");
  EXPECT_EQ(catalog.canonical(parse_ok("none:8")), "none:8");
  EXPECT_EQ(catalog.canonical(parse_ok("hsiao:8,4/secded@tree")), "hsiao:8,4@tree");
}

// ------------------------------------------------------------ resolve errors --

TEST(SchemeCatalogTest, ResolveRejectsUnknownAndInvalid) {
  const SchemeCatalog& catalog = SchemeCatalog::builtin();
  EXPECT_THROW(catalog.resolve("golay:23,12", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("hamming:6,3", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("hamming:7,4x", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("hsiao:9,5", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("bch:15,9", lib()), ContractViolation);  // no such k
  EXPECT_THROW(catalog.resolve("bch:16,7", lib()), ContractViolation);  // n != 2^m-1
  // Over-wide codes must fail fast, before any construction work.
  EXPECT_THROW(catalog.resolve("bch:32767,100", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("hsiao:32768,32752", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("hamming:127,120", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("hamming:128,120x", lib()), ContractViolation);
  // k = 64 would make the kernel's 1 << k message draw undefined.
  EXPECT_THROW(catalog.resolve("rm:6,6/syndrome", lib()), ContractViolation);
  // The parser's parameter cap has no off-by-one on the last digit.
  EXPECT_EQ(parse_fail("bch:1000009,7").message, "parameter out of range");
  EXPECT_THROW(catalog.resolve("rm:1,3/bogus", lib()), ContractViolation);
  // secded needs the overall parity bit: only the extended variant has one.
  EXPECT_THROW(catalog.resolve("hamming:7,4/secded", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("rm:2,4", lib()), ContractViolation);  // ml needs r=1
  EXPECT_THROW(catalog.resolve("hamming:7,4@fast", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("none/syndrome", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("none@tree", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("code3832:38,32", lib()), ContractViolation);
  EXPECT_THROW(catalog.resolve("bad descriptor", lib()), ContractViolation);
}

TEST(SchemeCatalogTest, ResolvesNonDefaultVariants) {
  const SchemeCatalog& catalog = SchemeCatalog::builtin();
  // Higher-order RM with an explicit syndrome decoder.
  const Scheme rm24 = catalog.resolve("rm:2,4/syndrome", lib());
  EXPECT_EQ(rm24.name, "rm:2,4/syndrome");
  EXPECT_EQ(rm24.code->n(), 16u);
  EXPECT_EQ(rm24.code->k(), 11u);
  // Ablation synthesis algorithms flow into the build options.
  const Scheme tree = catalog.resolve("hamming:7,4@tree", lib());
  EXPECT_EQ(tree.build_options.algorithm, circuit::SynthesisAlgorithm::kTree);
  EXPECT_EQ(tree.name, "hamming:7,4@tree");  // not the paper scheme's name
  // Wider no-encoder link.
  const Scheme raw8 = catalog.resolve("none:8", lib());
  EXPECT_FALSE(raw8.has_code());
  EXPECT_EQ(raw8.encoder->message_inputs.size(), 8u);
  EXPECT_EQ(raw8.name, "none:8");
}

// ------------------------------------- equivalence with the SchemeId wrappers --

TEST(SchemeCatalogTest, PaperDescriptorsMatchSchemeIdWrappers) {
  const SchemeCatalog& catalog = SchemeCatalog::builtin();
  const SchemeId ids[] = {SchemeId::kNoEncoder, SchemeId::kRm13,
                          SchemeId::kHamming74, SchemeId::kHamming84};
  for (SchemeId id : ids) {
    const Scheme from_enum = make_scheme(id, lib());
    const Scheme from_catalog = catalog.resolve(paper_descriptor(id), lib());
    EXPECT_EQ(from_enum.name, scheme_name(id));
    EXPECT_EQ(from_catalog.name, from_enum.name);
    EXPECT_EQ(from_catalog.descriptor, paper_descriptor(id));
    ASSERT_EQ(from_catalog.has_code(), from_enum.has_code());
    if (from_enum.has_code()) {
      EXPECT_EQ(from_catalog.code->generator(), from_enum.code->generator());
      EXPECT_EQ(from_catalog.decoder->name(), from_enum.decoder->name());
    }
    const circuit::NetlistStats enum_stats = circuit::compute_stats(
        from_enum.encoder->netlist, lib(), from_enum.encoder->clock_input);
    const circuit::NetlistStats catalog_stats = circuit::compute_stats(
        from_catalog.encoder->netlist, lib(), from_catalog.encoder->clock_input);
    EXPECT_EQ(catalog_stats.inventory(), enum_stats.inventory());
    // The artifact-cache key proof: identical scheme fingerprints mean
    // catalog-built schemes address the very same fabrication artifacts.
    EXPECT_EQ(engine::scheme_fingerprint(from_catalog.name,
                                         from_catalog.encoder->netlist, lib()),
              engine::scheme_fingerprint(from_enum.name, from_enum.encoder->netlist,
                                         lib()));
  }
}

TEST(SchemeCatalogTest, PaperMonteCarloIsByteIdenticalViaCatalog) {
  const std::vector<PaperScheme> from_enum = make_all_schemes(lib());
  std::vector<Scheme> from_catalog;
  for (const std::string& descriptor : paper_descriptors())
    from_catalog.push_back(SchemeCatalog::builtin().resolve(descriptor, lib()));

  link::MonteCarloConfig config;
  config.chips = 6;
  config.messages_per_chip = 5;
  config.threads = 2;
  const auto enum_outcomes = link::run_monte_carlo(scheme_specs(from_enum), lib(), config);
  const auto catalog_outcomes = link::run_monte_carlo(from_catalog, lib(), config);
  ASSERT_EQ(enum_outcomes.size(), catalog_outcomes.size());
  for (std::size_t s = 0; s < enum_outcomes.size(); ++s) {
    EXPECT_EQ(catalog_outcomes[s].name, enum_outcomes[s].name);
    EXPECT_EQ(catalog_outcomes[s].errors_per_chip, enum_outcomes[s].errors_per_chip);
    EXPECT_EQ(catalog_outcomes[s].flagged_per_chip, enum_outcomes[s].flagged_per_chip);
  }
}

// --------------------------------------------- non-paper families end to end --

TEST(SchemeCatalogTest, BchSchemeCorrectsTwoErrors) {
  const Scheme bch = SchemeCatalog::builtin().resolve("bch:15,7", lib());
  ASSERT_TRUE(bch.has_code());
  EXPECT_EQ(bch.code->dmin(), 5u);
  const code::BitVec message = code::BitVec::from_string("1011001");
  code::BitVec received = bch.code->encode(message);
  received.flip(2);
  received.flip(11);
  const code::DecodeResult result = bch.decoder->decode(received);
  EXPECT_EQ(result.status, code::DecodeStatus::kCorrected);
  EXPECT_EQ(result.message, message);
  EXPECT_EQ(result.bits_flipped, 2u);
}

TEST(SchemeCatalogTest, RmDecoderVariantsCorrectSingleErrors) {
  for (const char* descriptor : {"rm:1,3", "rm:1,3/ml-flag", "rm:1,3/majority",
                                 "rm:1,3/soft", "rm:1,3/syndrome"}) {
    const Scheme scheme = SchemeCatalog::builtin().resolve(descriptor, lib());
    const code::BitVec message = code::BitVec::from_string("1010");
    code::BitVec received = scheme.code->encode(message);
    received.flip(5);
    const code::DecodeResult result = scheme.decoder->decode(received);
    EXPECT_EQ(result.message, message) << descriptor;
    EXPECT_EQ(result.status, code::DecodeStatus::kCorrected) << descriptor;
  }
}

TEST(SchemeCatalogTest, HsiaoSecDedFlagsDoubleErrors) {
  const Scheme hsiao = SchemeCatalog::builtin().resolve("hsiao:8,4", lib());
  EXPECT_EQ(hsiao.code->dmin(), 4u);
  const code::BitVec message = code::BitVec::from_string("1101");
  code::BitVec received = hsiao.code->encode(message);
  received.flip(0);
  received.flip(6);
  EXPECT_EQ(hsiao.decoder->decode(received).status, code::DecodeStatus::kDetected);
  received.flip(6);  // back to a single error
  const code::DecodeResult single = hsiao.decoder->decode(received);
  EXPECT_EQ(single.status, code::DecodeStatus::kCorrected);
  EXPECT_EQ(single.message, message);
}

// ------------------------------------------ mixed-catalog campaign determinism --

TEST(SchemeCatalogTest, MixedCatalogCampaignIsDeterministicAcrossSchedules) {
  std::vector<Scheme> schemes;
  schemes.push_back(SchemeCatalog::builtin().resolve("hsiao:8,4", lib()));
  schemes.push_back(SchemeCatalog::builtin().resolve("bch:15,7", lib()));

  engine::CampaignSpec spec;
  spec.chips = 10;
  spec.messages_per_chip = 6;
  spec.seed = 20260729;
  spec.spreads = {{0.20, ppv::SpreadDistribution::kUniform},
                  {0.30, ppv::SpreadDistribution::kUniform}};

  engine::RunnerOptions reference_options;
  reference_options.threads = 1;
  reference_options.shard_chips = 4;
  const engine::CampaignResult reference =
      engine::run_campaign(spec, schemes, lib(), reference_options);
  const std::string reference_json = engine::campaign_json(spec, reference);
  ASSERT_EQ(reference.cells.size(), 2u);
  EXPECT_EQ(reference.cells[0].schemes[0].scheme, "hsiao:8,4");
  EXPECT_EQ(reference.cells[0].schemes[1].scheme, "bch:15,7");

  for (std::size_t threads : {2u, 8u}) {
    for (std::size_t shard : {1u, 3u, 64u}) {
      engine::RunnerOptions options;
      options.threads = threads;
      options.shard_chips = shard;
      const engine::CampaignResult result =
          engine::run_campaign(spec, schemes, lib(), options);
      for (std::size_t c = 0; c < reference.cells.size(); ++c)
        for (std::size_t s = 0; s < schemes.size(); ++s)
          EXPECT_EQ(result.cells[c].schemes[s].errors_per_chip,
                    reference.cells[c].schemes[s].errors_per_chip)
              << "threads=" << threads << " shard=" << shard;
      EXPECT_EQ(engine::campaign_json(spec, result), reference_json)
          << "threads=" << threads << " shard=" << shard;
    }
  }
}

// -------------------------------------------------------------- extensibility --

TEST(SchemeCatalogTest, RegisteredFamilyResolvesLikeBuiltins) {
  SchemeCatalog catalog = SchemeCatalog::with_builtins();
  catalog.register_family(
      {.family = "parity",
       .params_help = "k  single parity check over k bits",
       .default_params = {},
       .default_decoder = "detect",
       .extended_default_decoder = "",
       .decoders = {"detect"},
       .summary = "test family",
       .example = "parity:4"},
      [](const SchemeDescriptor& desc, const circuit::CellLibrary&, Scheme& scheme) {
        expects(desc.params.size() == 1, "parity takes one parameter");
        const std::size_t k = desc.params[0];
        code::Gf2Matrix generator(k, k + 1);
        for (std::size_t i = 0; i < k; ++i) {
          generator.set(i, i, true);
          generator.set(i, k, true);
        }
        scheme.code = std::make_unique<code::LinearCode>(
            "parity(" + std::to_string(k) + ")", std::move(generator), 2);
        scheme.decoder = std::make_unique<code::DetectOnlyDecoder>(*scheme.code);
      });

  const Scheme parity = catalog.resolve("parity:4", lib());
  EXPECT_EQ(parity.name, "parity:4");
  EXPECT_EQ(parity.code->n(), 5u);
  EXPECT_EQ(parity.code->dmin(), 2u);
  code::BitVec received = parity.code->encode(code::BitVec::from_string("1100"));
  received.flip(1);
  EXPECT_EQ(parity.decoder->decode(received).status, code::DecodeStatus::kDetected);
  // The new family rides the whole pipeline: synthesized encoder + link.
  link::MonteCarloConfig config;
  config.chips = 2;
  config.messages_per_chip = 3;
  std::vector<Scheme> schemes;
  schemes.push_back(catalog.resolve("parity:4", lib()));
  const auto outcomes = link::run_monte_carlo(schemes, lib(), config);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].name, "parity:4");
}

}  // namespace
}  // namespace sfqecc::core
