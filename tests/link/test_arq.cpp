#include "link/arq.hpp"

#include <gtest/gtest.h>

#include "core/paper_encoders.hpp"
#include "util/expect.hpp"

namespace sfqecc::link {
namespace {

using code::BitVec;

class ArqFixture : public ::testing::Test {
 protected:
  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  core::PaperScheme h84_ = core::make_scheme(core::SchemeId::kHamming84, lib_);
  DataLinkConfig config_;

  DataLink make_link() {
    config_.sim.record_pulses = false;
    return DataLink(*h84_.encoder, lib_, h84_.code.get(), h84_.decoder.get(), config_);
  }

  ppv::ChipSample chip_with_dead_converters(std::initializer_list<int> outputs) {
    ppv::ChipSample chip;
    chip.faults.assign(h84_.encoder->netlist.cell_count(), sim::CellFault{});
    chip.health_ratios.assign(h84_.encoder->netlist.cell_count(), 0.0);
    for (int j : outputs) {
      const auto& net = h84_.encoder->netlist.net(
          h84_.encoder->codeword_outputs[static_cast<std::size_t>(j)]);
      chip.faults[net.driver_cell] = sim::CellFault{sim::FaultMode::kDead, 0.0};
    }
    return chip;
  }
};

TEST_F(ArqFixture, CleanChipDeliversFirstTry) {
  DataLink link = make_link();
  util::Rng rng(1);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const ArqResult r = send_with_arq(link, BitVec::from_u64(4, m), rng);
    EXPECT_EQ(r.attempts, 1u);
    EXPECT_FALSE(r.surrendered);
    EXPECT_FALSE(r.residual_error);
    EXPECT_EQ(r.delivered, BitVec::from_u64(4, m));
  }
}

TEST_F(ArqFixture, PersistentDoubleFaultSurrenders) {
  // Two dead converters: every frame is flagged, ARQ retries then surrenders
  // — but never delivers a wrong message.
  DataLink link = make_link();
  link.install_chip(chip_with_dead_converters({0, 1}));
  util::Rng rng(2);
  ArqConfig config;
  config.max_attempts = 3;
  std::size_t surrendered = 0;
  for (std::uint64_t m = 0; m < 16; ++m) {
    const ArqResult r = send_with_arq(link, BitVec::from_u64(4, m), rng, config);
    EXPECT_FALSE(r.residual_error) << "silent wrong delivery under ARQ";
    if (r.surrendered) {
      ++surrendered;
      EXPECT_EQ(r.attempts, 3u);
    }
  }
  // Exactly the messages whose codeword is 1 on BOTH dead channels produce a
  // double error: c1 = m1^m2^m4 and c2 = m1^m3^m4 are both 1 for 4 of the 16
  // messages. Single-channel hits are corrected, zero hits are clean.
  EXPECT_EQ(surrendered, 4u);
}

TEST_F(ArqFixture, SingleFaultIsCorrectedWithoutRetries) {
  DataLink link = make_link();
  link.install_chip(chip_with_dead_converters({3}));
  util::Rng rng(3);
  const ArqStats stats = [&] {
    util::Rng msg_rng(4);
    return run_arq_session(link, 64, msg_rng, rng);
  }();
  EXPECT_EQ(stats.delivered_ok, 64u);
  EXPECT_EQ(stats.total_frames, 64u);  // correction, not retransmission
  EXPECT_EQ(stats.residual_errors, 0u);
}

TEST_F(ArqFixture, TransientChannelNoiseIsRetriedAway) {
  // Strong receiver noise: double channel errors get flagged and retried;
  // the residual error rate stays far below the raw double-error rate.
  config_.channel.noise_sigma_mv = 0.22;
  DataLink link = make_link();
  util::Rng msg_rng(5), chan_rng(6);
  ArqConfig config;
  config.max_attempts = 5;
  const ArqStats stats = run_arq_session(link, 800, msg_rng, chan_rng, config);
  EXPECT_GT(stats.total_frames, stats.messages);  // some retransmissions happened
  EXPECT_EQ(stats.surrendered, 0u);               // transient noise always clears
  EXPECT_LT(stats.residual_error_rate(), 0.02);
}

TEST_F(ArqFixture, MaxAttemptsOneDisablesRetransmission) {
  DataLink link = make_link();
  link.install_chip(chip_with_dead_converters({0, 1}));
  util::Rng rng(7);
  ArqConfig config;
  config.max_attempts = 1;
  const ArqResult r = send_with_arq(link, BitVec::from_string("1111"), rng, config);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_TRUE(r.surrendered);
}

TEST_F(ArqFixture, ContractOnZeroAttempts) {
  DataLink link = make_link();
  util::Rng rng(8);
  ArqConfig config;
  config.max_attempts = 0;
  EXPECT_THROW(send_with_arq(link, BitVec(4), rng, config), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::link
