// End-to-end data-link tests: channel model, frame pipeline, Monte Carlo.
#include <gtest/gtest.h>

#include "core/paper_encoders.hpp"
#include "link/monte_carlo.hpp"
#include "util/expect.hpp"

namespace sfqecc::link {
namespace {

using code::BitVec;

// ------------------------------------------------------------------ channel --

TEST(Channel, NoiselessIsPerfect) {
  ChannelModel ch;
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(transmit_level(ch, true, rng));
    EXPECT_FALSE(transmit_level(ch, false, rng));
  }
  EXPECT_DOUBLE_EQ(ch.bit_error_probability(), 0.0);
}

TEST(Channel, AnalyticBerMatchesMonteCarlo) {
  ChannelModel ch;
  ch.noise_sigma_mv = 0.25;  // strong noise for a measurable BER
  util::Rng rng(2);
  int errors = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const bool bit = (i % 2) == 0;
    if (transmit_level(ch, bit, rng) != bit) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / n, ch.bit_error_probability(), 0.003);
}

TEST(Channel, AttenuationRaisesOneErrors) {
  ChannelModel ch;
  ch.noise_sigma_mv = 0.15;
  ch.attenuation = 0.7;  // high level closer to the threshold
  util::Rng rng(3);
  int err1 = 0, err0 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (!transmit_level(ch, true, rng)) ++err1;
    if (transmit_level(ch, false, rng)) ++err0;
  }
  EXPECT_GT(err1, err0 * 2);
}

TEST(Channel, InvalidAttenuationRejected) {
  ChannelModel ch;
  ch.attenuation = 0.0;
  util::Rng rng(4);
  EXPECT_THROW(transmit_level(ch, true, rng), ContractViolation);
}

// ----------------------------------------------------------------- datalink --

class PaperLinks : public ::testing::Test {
 protected:
  const circuit::CellLibrary& lib_ = circuit::coldflux_library();
  std::vector<core::PaperScheme> schemes_ = core::make_all_schemes(lib_);
};

TEST_F(PaperLinks, CleanChipsDeliverEveryMessage) {
  DataLinkConfig config;
  util::Rng rng(5);
  for (const core::PaperScheme& scheme : schemes_) {
    DataLink dlink(*scheme.encoder, lib_, scheme.code.get(), scheme.decoder.get(),
                   config);
    for (std::uint64_t m = 0; m < 16; ++m) {
      const BitVec message = BitVec::from_u64(4, m);
      const FrameResult frame = dlink.send(message, rng);
      EXPECT_FALSE(frame.message_error) << scheme.name << " m=" << m;
      EXPECT_FALSE(frame.flagged);
      EXPECT_EQ(frame.delivered_message, message);
      EXPECT_EQ(frame.encoder_bit_errors, 0u);
      EXPECT_EQ(frame.channel_bit_errors, 0u);
      EXPECT_EQ(frame.transmitted_word, frame.reference_codeword);
    }
  }
}

TEST_F(PaperLinks, DeadConverterIsCorrectedByEncoders) {
  DataLinkConfig config;
  util::Rng rng(6);
  for (const core::PaperScheme& scheme : schemes_) {
    if (!scheme.has_code()) continue;  // skip the raw link
    // Kill the first SFQ-to-DC converter.
    ppv::ChipSample chip;
    chip.faults.assign(scheme.encoder->netlist.cell_count(), sim::CellFault{});
    chip.health_ratios.assign(scheme.encoder->netlist.cell_count(), 0.0);
    const auto& net = scheme.encoder->netlist.net(scheme.encoder->codeword_outputs[0]);
    chip.faults[net.driver_cell] = sim::CellFault{sim::FaultMode::kDead, 0.0};

    DataLink dlink(*scheme.encoder, lib_, scheme.code.get(), scheme.decoder.get(),
                   config);
    dlink.install_chip(chip);
    for (std::uint64_t m = 0; m < 16; ++m) {
      const BitVec message = BitVec::from_u64(4, m);
      const FrameResult frame = dlink.send(message, rng);
      EXPECT_FALSE(frame.message_error) << scheme.name << " m=" << m;
      EXPECT_EQ(frame.delivered_message, message) << scheme.name;
      EXPECT_LE(frame.encoder_bit_errors, 1u);
    }
  }
}

TEST_F(PaperLinks, DeadConverterBreaksRawLink) {
  DataLinkConfig config;
  util::Rng rng(7);
  const core::PaperScheme& raw = schemes_[0];
  ASSERT_FALSE(raw.has_code());
  ppv::ChipSample chip;
  chip.faults.assign(raw.encoder->netlist.cell_count(), sim::CellFault{});
  chip.health_ratios.assign(raw.encoder->netlist.cell_count(), 0.0);
  chip.faults[0] = sim::CellFault{sim::FaultMode::kDead, 0.0};
  DataLink dlink(*raw.encoder, lib_, nullptr, nullptr, config);
  dlink.install_chip(chip);
  const FrameResult frame = dlink.send(BitVec::from_string("1111"), rng);
  EXPECT_TRUE(frame.message_error);
}

TEST_F(PaperLinks, NoisyChannelErrorsAreCorrected) {
  // Strong receiver noise: the raw link suffers, the coded links correct
  // single-bit channel errors.
  DataLinkConfig config;
  config.channel.noise_sigma_mv = 0.25;  // per-bit BER ~ 2.3 %
  const core::PaperScheme& h84 = schemes_[3];
  DataLink coded(*h84.encoder, lib_, h84.code.get(), h84.decoder.get(), config);
  DataLink raw(*schemes_[0].encoder, lib_, nullptr, nullptr, config);

  util::Rng rng_coded(8), rng_raw(8);
  int raw_errors = 0, coded_errors = 0;
  const int frames = 400;
  for (int i = 0; i < frames; ++i) {
    const BitVec message = BitVec::from_u64(4, static_cast<std::uint64_t>(i) % 16);
    if (raw.send(message, rng_raw).message_error) ++raw_errors;
    const FrameResult f = coded.send(message, rng_coded);
    if (f.message_error) ++coded_errors;
  }
  EXPECT_GT(raw_errors, 15);
  EXPECT_LT(coded_errors, raw_errors / 2);
}

TEST_F(PaperLinks, FlagRaisedOnDoubleChannelError) {
  // Kill two converters on the Hamming(8,4) link: SEC-DED must flag, not
  // deliver silently wrong messages.
  const core::PaperScheme& h84 = schemes_[3];
  ppv::ChipSample chip;
  chip.faults.assign(h84.encoder->netlist.cell_count(), sim::CellFault{});
  chip.health_ratios.assign(h84.encoder->netlist.cell_count(), 0.0);
  for (int j : {0, 1}) {
    const auto& net = h84.encoder->netlist.net(h84.encoder->codeword_outputs[j]);
    chip.faults[net.driver_cell] = sim::CellFault{sim::FaultMode::kDead, 0.0};
  }
  DataLinkConfig config;
  DataLink dlink(*h84.encoder, lib_, h84.code.get(), h84.decoder.get(), config);
  dlink.install_chip(chip);
  util::Rng rng(9);
  int flagged = 0, silent_wrong = 0;
  for (std::uint64_t m = 0; m < 16; ++m) {
    const FrameResult f = dlink.send(BitVec::from_u64(4, m), rng);
    if (f.flagged) ++flagged;
    if (f.message_error) ++silent_wrong;
  }
  EXPECT_EQ(silent_wrong, 0);
  EXPECT_GT(flagged, 0);
}

// -------------------------------------------------------------- Monte Carlo --

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  const auto& lib = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(lib);
  std::vector<SchemeSpec> specs;
  for (const auto& s : schemes)
    specs.push_back(SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});

  MonteCarloConfig config;
  config.chips = 24;
  config.messages_per_chip = 20;
  config.seed = 777;
  config.link.sim.record_pulses = false;

  config.threads = 1;
  const auto seq = run_monte_carlo(specs, lib, config);
  config.threads = 4;
  const auto par = run_monte_carlo(specs, lib, config);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t s = 0; s < seq.size(); ++s) {
    EXPECT_EQ(seq[s].errors_per_chip, par[s].errors_per_chip) << seq[s].name;
    EXPECT_EQ(seq[s].flagged_per_chip, par[s].flagged_per_chip);
  }
}

TEST(MonteCarlo, ZeroSpreadGivesZeroErrors) {
  const auto& lib = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(lib);
  std::vector<SchemeSpec> specs;
  for (const auto& s : schemes)
    specs.push_back(SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
  MonteCarloConfig config;
  config.chips = 10;
  config.messages_per_chip = 30;
  config.spread.fraction = 0.0;
  config.link.sim.record_pulses = false;
  for (const auto& outcome : run_monte_carlo(specs, lib, config)) {
    EXPECT_DOUBLE_EQ(outcome.p_zero, 1.0) << outcome.name;
    EXPECT_DOUBLE_EQ(outcome.mean_errors, 0.0);
  }
}

TEST(MonteCarlo, EncodersBeatRawLinkUnderSpread) {
  const auto& lib = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(lib);
  std::vector<SchemeSpec> specs;
  for (const auto& s : schemes)
    specs.push_back(SchemeSpec{s.name, s.encoder.get(), s.code.get(), s.decoder.get()});
  MonteCarloConfig config;
  config.chips = 150;
  config.messages_per_chip = 50;
  config.seed = 99;
  config.link.sim.record_pulses = false;
  const auto outcomes = run_monte_carlo(specs, lib, config);
  // The paper's qualitative result: every encoder beats the raw link.
  for (std::size_t s = 1; s < outcomes.size(); ++s)
    EXPECT_GT(outcomes[s].p_zero, outcomes[0].p_zero) << outcomes[s].name;
}

TEST(MonteCarlo, FlaggedAccountingOnlyLowersPZero) {
  const auto& lib = circuit::coldflux_library();
  const auto schemes = core::make_all_schemes(lib);
  std::vector<SchemeSpec> specs{
      SchemeSpec{schemes[3].name, schemes[3].encoder.get(), schemes[3].code.get(),
                 schemes[3].decoder.get()}};
  MonteCarloConfig config;
  config.chips = 120;
  config.messages_per_chip = 40;
  config.link.sim.record_pulses = false;
  const auto base = run_monte_carlo(specs, lib, config);
  config.count_flagged_as_error = true;
  const auto strict = run_monte_carlo(specs, lib, config);
  EXPECT_LE(strict[0].p_zero, base[0].p_zero);
}

}  // namespace
}  // namespace sfqecc::link
