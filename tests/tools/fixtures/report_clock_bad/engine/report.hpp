// Closure seed: pulls in the stamp helper, which breaks report-clock.
#pragma once
#include "engine/stamp.hpp"

std::string render_report();
