#pragma once
#include <chrono>
#include <string>

inline std::string stamp() {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return "stamped";
}
