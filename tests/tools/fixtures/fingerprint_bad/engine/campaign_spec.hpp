// known-bad: the FaultSpec axis grew a field (flux_trap_rate) that
// campaign_fingerprint never mixes in.
#pragma once
#include <cstdint>
#include <vector>

struct FaultSpec {
  double jitter_sigma_ps = 0.0;
  double flux_trap_rate = 0.0;
};

struct CampaignSpec {
  unsigned long chips = 1000;
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults{FaultSpec{}};
};

std::uint64_t campaign_fingerprint(const CampaignSpec& spec);
