#pragma once
#include <sstream>
#include <thread>

inline void tag(std::ostringstream& out) {
  out << std::this_thread::get_id();
}
