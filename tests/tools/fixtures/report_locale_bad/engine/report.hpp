#pragma once
#include <locale>
#include <sstream>

inline void localize(std::ostringstream& out) {
  out.imbue(std::locale(""));
}
