// known-good: near-miss identifiers, and banned names in comments/strings
// (std::mt19937, rand(), random_device) must not trigger.
#include <string>

struct Operand {
  int operand_count = 0;
  int my_rand_values = 0;  // "rand" only as a substring
};

const char* describe() { return "uses mt19937 internally via util::Rng"; }

int branded(const Operand& op) { return op.operand_count + op.my_rand_values; }
