#pragma once
#include <string>
void save(const std::string& path, const std::string& text);
