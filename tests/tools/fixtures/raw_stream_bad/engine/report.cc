#include <fstream>
#include <string>

void save(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}
