// known-good: steady_clock in the fabric (NOT reachable from the
// reporters) is fine — heartbeat timing never enters report bytes.
#include <chrono>

long long now_ms() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}
