#pragma once
#include <string>
std::string render_report();
