// known-bad: a raw engine outside util/rng.* / engine/kernel.*.
#include <random>

int draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
