// known-good by suppression: both trailing and line-above directives.
#include <random>

int seeded_draw() {
  std::mt19937 gen(42);  // detlint:allow(rng-domain)
  // detlint:allow(rng-domain) -- reviewed: fixture exercising the directive
  std::mt19937_64 wide(7);
  return static_cast<int>(gen() + wide());
}
