#include "engine/report.hpp"

std::string Report::render() const {
  std::string out;
  for (const auto& entry : totals) out += entry.first;
  return out;
}
