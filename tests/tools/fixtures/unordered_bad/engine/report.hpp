#pragma once
#include <string>
#include <unordered_map>

struct Report {
  std::unordered_map<std::string, int> totals;
  std::string render() const;
};
