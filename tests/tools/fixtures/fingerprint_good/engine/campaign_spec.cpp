#include "engine/campaign_spec.hpp"

static void mix(std::uint64_t& h, std::uint64_t v) { h = h * 1099511628211ULL ^ v; }

std::uint64_t campaign_fingerprint(const CampaignSpec& spec) {
  std::uint64_t h = 14695981039346656037ULL;
  mix(h, spec.chips);
  mix(h, spec.seed);
  for (const FaultSpec& fault : spec.faults) {
    mix(h, static_cast<std::uint64_t>(fault.jitter_sigma_ps * 1e6));
    mix(h, static_cast<std::uint64_t>(fault.flux_trap_rate * 1e6));
  }
  return h;
}
