#pragma once
#include <cstdlib>

inline const char* checkpoint_dir() {
  return std::getenv("CKPT_DIR");
}
