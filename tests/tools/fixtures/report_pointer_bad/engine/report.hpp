#pragma once
#include <cstdio>

inline void dump(const void* p, char* buf, unsigned long n) {
  std::snprintf(buf, n, "cell at %p", p);
}
