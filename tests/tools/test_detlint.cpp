// Tests for tools/detlint: one fixture corpus case per rule, plus the
// suppression directive, caret positions, closure scoping, and — the gate
// the whole PR exists for — the real tree linting clean.
//
// Fixtures live in tests/tools/fixtures/<case>/ as miniature source trees;
// DETLINT_FIXTURE_DIR and SFQECC_SOURCE_ROOT are injected by CMake.
#include "detlint/detlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using detlint::Diagnostic;

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  std::string error;
  const std::vector<Diagnostic> findings =
      detlint::lint_paths({std::string(DETLINT_FIXTURE_DIR) + "/" + name}, &error);
  EXPECT_EQ(error, "") << "fixture " << name;
  return findings;
}

bool has_rule(const std::vector<Diagnostic>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<std::string> rules_of(const std::vector<Diagnostic>& findings) {
  std::vector<std::string> rules;
  for (const Diagnostic& d : findings) rules.push_back(d.rule);
  return rules;
}

TEST(Detlint, RngOutsideDomainIsFlagged) {
  const auto findings = lint_fixture("rng_bad");
  ASSERT_EQ(findings.size(), 1u) << detlint::format(findings.empty()
                                                        ? Diagnostic{}
                                                        : findings[0]);
  EXPECT_EQ(findings[0].rule, "rng-domain");
  // std::mt19937 gen(42); — the identifier, not the std:: qualifier.
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_NE(findings[0].message.find("mt19937"), std::string::npos);
}

TEST(Detlint, RngNearMissesAndCommentsAreClean) {
  EXPECT_TRUE(lint_fixture("rng_good").empty());
}

TEST(Detlint, WallClockReachableFromReportHeaderIsFlagged) {
  // The violation is in engine/stamp.hpp, reached only through the include
  // closure of the seed engine/report.hpp — this is the reachability test.
  const auto findings = lint_fixture("report_clock_bad");
  ASSERT_TRUE(has_rule(findings, "report-clock"));
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Diagnostic& d) { return d.rule == "report-clock"; });
  EXPECT_NE(it->file.find("stamp.hpp"), std::string::npos);
}

TEST(Detlint, GetenvReachableFromCheckpointIsFlagged) {
  EXPECT_TRUE(has_rule(lint_fixture("report_env_bad"), "report-env"));
}

TEST(Detlint, LocaleReachableFromReportIsFlagged) {
  EXPECT_TRUE(has_rule(lint_fixture("report_locale_bad"), "report-locale"));
}

TEST(Detlint, ThreadIdReachableFromReportIsFlagged) {
  EXPECT_TRUE(has_rule(lint_fixture("report_thread_id_bad"), "report-thread-id"));
}

TEST(Detlint, PointerFormatReachableFromReportIsFlagged) {
  const auto findings = lint_fixture("report_pointer_bad");
  ASSERT_TRUE(has_rule(findings, "report-pointer-format"));
}

TEST(Detlint, UnorderedIterationFeedingReportIsFlagged) {
  const auto findings = lint_fixture("unordered_bad");
  ASSERT_TRUE(has_rule(findings, "unordered-output-order"))
      << "rules: " << ::testing::PrintToString(rules_of(findings));
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Diagnostic& d) {
        return d.rule == "unordered-output-order";
      });
  // for (const auto& entry : totals) — flagged at the range expression.
  EXPECT_NE(it->file.find("report.cc"), std::string::npos);
  EXPECT_NE(it->message.find("totals"), std::string::npos);
}

TEST(Detlint, RawOfstreamInReportPathIsFlagged) {
  EXPECT_TRUE(has_rule(lint_fixture("raw_stream_bad"), "raw-report-stream"));
}

TEST(Detlint, MissingFingerprintAxisFieldIsFlagged) {
  const auto findings = lint_fixture("fingerprint_bad");
  ASSERT_TRUE(has_rule(findings, "fingerprint-axis"));
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Diagnostic& d) { return d.rule == "fingerprint-axis"; });
  EXPECT_NE(it->message.find("flux_trap_rate"), std::string::npos);
  // Anchored at the axis declaration in the spec header.
  EXPECT_NE(it->file.find("campaign_spec.hpp"), std::string::npos);
}

TEST(Detlint, CompleteFingerprintIsClean) {
  EXPECT_TRUE(lint_fixture("fingerprint_good").empty());
}

TEST(Detlint, SuppressionDirectiveSilencesBothPlacements) {
  // Two violations, one suppressed by a trailing comment and one by a
  // directive on the line above — both must be silent.
  EXPECT_TRUE(lint_fixture("suppression").empty());
}

TEST(Detlint, ClockOutsideReportClosureIsClean) {
  // steady_clock in fabric/ (heartbeats) is legitimate: the fabric is not
  // reachable from the reporters, so the closure must not swallow it.
  EXPECT_TRUE(lint_fixture("closure_scope_good").empty());
}

TEST(Detlint, CaretPositionIsExact) {
  const auto findings = lint_fixture("rng_bad");
  ASSERT_EQ(findings.size(), 1u);
  // "  std::mt19937 gen(42);" — mt19937 starts at column 8 (1-based).
  EXPECT_EQ(findings[0].col, 8u);
  const std::string rendered = detlint::format(findings[0]);
  // The caret line must point at the 'm' of mt19937: 4 indent spaces (the
  // renderer's) + 7 alignment spaces + '^'.
  EXPECT_NE(rendered.find("\n    " + std::string(7, ' ') + "^\n"), std::string::npos)
      << rendered;
}

TEST(Detlint, RuleTableCoversEveryFixtureRule) {
  std::vector<std::string> names;
  for (const detlint::RuleInfo& rule : detlint::rules()) names.push_back(rule.name);
  for (const char* expected :
       {"rng-domain", "report-clock", "report-env", "report-locale",
        "report-thread-id", "report-pointer-format", "unordered-output-order",
        "raw-report-stream", "fingerprint-axis"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(Detlint, RealTreeIsClean) {
  // The in-suite twin of the detlint.tree ctest gate: src/, bench/ and
  // examples/ must lint clean (reviewed exceptions carry detlint:allow).
  std::string error;
  const std::string root = SFQECC_SOURCE_ROOT;
  const auto findings = detlint::lint_paths(
      {root + "/src", root + "/bench", root + "/examples"}, &error);
  EXPECT_EQ(error, "");
  std::string rendered;
  for (const Diagnostic& d : findings) rendered += detlint::format(d);
  EXPECT_TRUE(findings.empty()) << rendered;
}

TEST(Detlint, UnreadablePathReportsError) {
  std::string error;
  const auto findings =
      detlint::lint_paths({std::string(DETLINT_FIXTURE_DIR) + "/does-not-exist"},
                          &error);
  EXPECT_TRUE(findings.empty());
  EXPECT_NE(error.find("does-not-exist"), std::string::npos);
}

}  // namespace
