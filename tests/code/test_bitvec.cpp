#include "code/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_zero());
}

TEST(BitVec, ConstructedZeroed) {
  BitVec v(130);  // spans three words
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.weight(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_EQ(v.weight(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.weight(), 3u);
  v.set(0, false);
  EXPECT_EQ(v.weight(), 2u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), ContractViolation);
  EXPECT_THROW(v.set(100, true), ContractViolation);
  EXPECT_THROW(v.flip(8), ContractViolation);
}

TEST(BitVec, FromU64RoundTrip) {
  const BitVec v = BitVec::from_u64(8, 0b10110100);
  EXPECT_EQ(v.to_u64(), 0b10110100u);
  EXPECT_FALSE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_EQ(v.weight(), 4u);
}

TEST(BitVec, FromU64MasksHighBits) {
  const BitVec v = BitVec::from_u64(4, 0xFF);
  EXPECT_EQ(v.to_u64(), 0xFu);
  EXPECT_EQ(v.weight(), 4u);
}

TEST(BitVec, FromU64SixtyFourBits) {
  const BitVec v = BitVec::from_u64(64, ~0ULL);
  EXPECT_EQ(v.weight(), 64u);
  EXPECT_EQ(v.to_u64(), ~0ULL);
}

TEST(BitVec, StringRoundTrip) {
  const std::string s = "0110100010";
  const BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.weight(), 4u);
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("01x1"), ContractViolation);
}

TEST(BitVec, XorAlgebra) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a ^ a).weight(), 0u);  // self-inverse
  BitVec c = a;
  c ^= b;
  c ^= b;
  EXPECT_EQ(c, a);  // involution
}

TEST(BitVec, XorSizeMismatchThrows) {
  BitVec a(4), b(5);
  EXPECT_THROW(a ^= b, ContractViolation);
}

TEST(BitVec, AndAndDot) {
  const BitVec a = BitVec::from_string("1101");
  const BitVec b = BitVec::from_string("1011");
  EXPECT_EQ((a & b).to_string(), "1001");
  EXPECT_FALSE(a.dot(b));  // two common ones -> even parity
  const BitVec c = BitVec::from_string("1000");
  EXPECT_TRUE(a.dot(c));
}

TEST(BitVec, Parity) {
  EXPECT_TRUE(BitVec::from_string("10101").parity());
  EXPECT_FALSE(BitVec::from_string("1001").parity());
  EXPECT_FALSE(BitVec(7).parity());
}

TEST(BitVec, ConcatAndSlice) {
  const BitVec a = BitVec::from_string("101");
  const BitVec b = BitVec::from_string("0110");
  const BitVec c = a.concat(b);
  EXPECT_EQ(c.to_string(), "1010110");
  EXPECT_EQ(c.slice(0, 3), a);
  EXPECT_EQ(c.slice(3, 4), b);
  EXPECT_THROW(c.slice(4, 4), ContractViolation);
}

TEST(BitVec, SliceAcrossWordBoundary) {
  BitVec v(100);
  v.set(60, true);
  v.set(70, true);
  const BitVec s = v.slice(58, 20);
  EXPECT_EQ(s.weight(), 2u);
  EXPECT_TRUE(s.get(2));
  EXPECT_TRUE(s.get(12));
}

TEST(BitVec, Support) {
  const BitVec v = BitVec::from_string("0101001");
  const std::vector<std::size_t> expected{1, 3, 6};
  EXPECT_EQ(v.support(), expected);
}

TEST(BitVec, EqualityIncludesSize) {
  EXPECT_NE(BitVec(4), BitVec(5));
  EXPECT_EQ(BitVec::from_string("0101"), BitVec::from_u64(4, 0b1010));
}

TEST(BitVec, HashDistinguishesContent) {
  const BitVec a = BitVec::from_string("0101");
  const BitVec b = BitVec::from_string("0111");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), BitVec::from_string("0101").hash());
}

TEST(BitVec, WeightMatchesPopcountRandomized) {
  util::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = 1 + rng.below(200);
    BitVec v(size);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < size; ++i) {
      if (rng.bernoulli(0.4)) {
        if (!v.get(i)) ++expected;
        v.set(i, true);
      }
    }
    EXPECT_EQ(v.weight(), expected);
  }
}

TEST(BitVec, DotIsBilinearRandomized) {
  util::Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t size = 1 + rng.below(120);
    auto random_vec = [&] {
      BitVec v(size);
      for (std::size_t i = 0; i < size; ++i) v.set(i, rng.bernoulli(0.5));
      return v;
    };
    const BitVec a = random_vec(), b = random_vec(), c = random_vec();
    // <a ^ b, c> == <a, c> ^ <b, c>
    EXPECT_EQ((a ^ b).dot(c), a.dot(c) != b.dot(c));
  }
}

}  // namespace
}  // namespace sfqecc::code
