#include "code/hsiao.hpp"

#include <gtest/gtest.h>

#include <set>

#include "code/decoder.hpp"
#include "code/hamming.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

TEST(Hsiao, ShapeAndDistance) {
  const LinearCode c = hsiao_13_8();
  EXPECT_EQ(c.n(), 13u);
  EXPECT_EQ(c.k(), 8u);
  // Verify dmin = 4 by enumeration rather than trusting the constructor.
  const LinearCode enumerated("check", c.generator());
  EXPECT_EQ(enumerated.dmin(), 4u);
}

TEST(Hsiao, AllParityCheckColumnsOdd) {
  const LinearCode c = hsiao_13_8();
  const Gf2Matrix h = c.parity_check();
  for (std::size_t col = 0; col < c.n(); ++col)
    EXPECT_EQ(h.column(col).weight() % 2, 1u) << "column " << col;
}

TEST(Hsiao, ColumnsDistinct) {
  const LinearCode c = hsiao_13_8();
  const Gf2Matrix h = c.parity_check();
  std::set<std::uint64_t> seen;
  for (std::size_t col = 0; col < c.n(); ++col)
    EXPECT_TRUE(seen.insert(h.column(col).to_u64()).second);
}

TEST(Hsiao, SyndromeParityDistinguishesSingleFromDouble) {
  // The Hsiao property: odd-weight syndrome <=> odd number of errors.
  const LinearCode c = hsiao_13_8();
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec m(8);
    for (std::size_t i = 0; i < 8; ++i) m.set(i, rng.bernoulli(0.5));
    BitVec rx = c.encode(m);
    const std::size_t nerr = 1 + rng.below(2);
    std::set<std::size_t> pos;
    while (pos.size() < nerr) pos.insert(rng.below(13));
    for (std::size_t p : pos) rx.flip(p);
    EXPECT_EQ(c.syndrome(rx).weight() % 2, nerr % 2) << "errors " << nerr;
  }
}

TEST(Hsiao, CorrectsSinglesDetectsDoubles) {
  const LinearCode c = hsiao_13_8();
  const SyndromeDecoder dec(c, /*max_correct_weight=*/1);
  util::Rng rng(2);
  BitVec m(8);
  for (std::size_t i = 0; i < 8; ++i) m.set(i, rng.bernoulli(0.5));
  const BitVec cw = c.encode(m);
  for (std::size_t i = 0; i < 13; ++i) {
    BitVec rx = cw;
    rx.flip(i);
    const DecodeResult r = dec.decode(rx);
    EXPECT_EQ(r.status, DecodeStatus::kCorrected);
    EXPECT_EQ(r.message, m);
  }
  for (std::size_t i = 0; i < 13; ++i)
    for (std::size_t j = i + 1; j < 13; ++j) {
      BitVec rx = cw;
      rx.flip(i);
      rx.flip(j);
      EXPECT_EQ(dec.decode(rx).status, DecodeStatus::kDetected) << i << "," << j;
    }
}

TEST(Hsiao, LighterThanExtendedHammingColumns) {
  // Minimum-weight odd columns: Hsiao's total parity-check weight must not
  // exceed the extended Hamming construction at the same (n, k) — fewer XOR
  // terms in the encoder.
  const LinearCode hsiao = hsiao_13_8();
  // Extended Hamming(13,8): shorten Hamming(15,11) to 8 data columns, extend.
  const LinearCode h15 = hamming_code(4);
  Gf2Matrix g12(8, 12);
  for (std::size_t i = 0; i < 8; ++i) {
    g12.set(i, i, true);
    for (std::size_t p = 0; p < 4; ++p) g12.set(i, 8 + p, h15.generator().get(i, 11 + p));
  }
  const LinearCode ext = extend_with_overall_parity(LinearCode("h128", g12, 3));

  auto generator_weight = [](const LinearCode& c) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < c.k(); ++r) w += c.generator().row(r).weight();
    return w;
  };
  EXPECT_LE(generator_weight(hsiao), generator_weight(ext));
}

TEST(Hsiao, GeneralSizes) {
  for (auto [k, r] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 4}, {8, 5}, {16, 6}, {32, 7}}) {
    const LinearCode c = hsiao_code(k, r);
    EXPECT_EQ(c.n(), k + r);
    EXPECT_EQ(c.k(), k);
    if (k <= 16) {
      const LinearCode enumerated("check", c.generator());
      EXPECT_EQ(enumerated.dmin(), 4u) << "k=" << k;
    }
  }
}

TEST(Hsiao, RejectsOverfullColumnSpace) {
  EXPECT_THROW(hsiao_code(13, 5), ContractViolation);  // 2^4 - 5 = 11 < 13
}

}  // namespace
}  // namespace sfqecc::code
