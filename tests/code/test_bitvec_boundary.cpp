// Boundary coverage for BitVec's small-buffer storage: the inline/heap
// transition sits at 64 bits, so every operation is exercised at sizes
// 0, 1, 63, 64, 65 and 128 against a naive std::vector<bool> reference.
#include "code/bitvec.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

constexpr std::size_t kBoundarySizes[] = {0, 1, 63, 64, 65, 128};

/// Reference model: plain bit vector with per-bit semantics.
using Ref = std::vector<bool>;

BitVec from_ref(const Ref& ref) {
  BitVec v(ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    if (ref[i]) v.set(i, true);
  return v;
}

void expect_matches(const BitVec& v, const Ref& ref) {
  ASSERT_EQ(v.size(), ref.size());
  std::size_t weight = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(v.get(i), ref[i]) << "bit " << i;
    if (ref[i]) ++weight;
  }
  EXPECT_EQ(v.weight(), weight);
  EXPECT_EQ(v.parity(), weight % 2 != 0);
  EXPECT_EQ(v.is_zero(), weight == 0);
}

Ref random_ref(std::size_t size, util::Rng& rng) {
  Ref ref(size);
  for (std::size_t i = 0; i < size; ++i) ref[i] = rng.bernoulli(0.5);
  return ref;
}

TEST(BitVecBoundary, XorAndMatchReference) {
  util::Rng rng(101);
  for (std::size_t size : kBoundarySizes) {
    for (int round = 0; round < 8; ++round) {
      const Ref ra = random_ref(size, rng);
      const Ref rb = random_ref(size, rng);
      const BitVec a = from_ref(ra);
      const BitVec b = from_ref(rb);

      Ref rx(size), rn(size);
      for (std::size_t i = 0; i < size; ++i) {
        rx[i] = ra[i] != rb[i];
        rn[i] = ra[i] && rb[i];
      }
      expect_matches(a ^ b, rx);
      expect_matches(a & b, rn);
      EXPECT_EQ(a.dot(b), from_ref(rn).parity());
    }
  }
}

TEST(BitVecBoundary, SliceMatchesReference) {
  util::Rng rng(102);
  for (std::size_t size : kBoundarySizes) {
    const Ref ref = random_ref(size, rng);
    const BitVec v = from_ref(ref);
    // Every (begin, count) pair across the word boundary.
    for (std::size_t begin = 0; begin <= size; begin += size < 8 ? 1 : 13) {
      for (std::size_t count = 0; begin + count <= size;
           count += size < 8 ? 1 : 17) {
        Ref expected(ref.begin() + static_cast<std::ptrdiff_t>(begin),
                     ref.begin() + static_cast<std::ptrdiff_t>(begin + count));
        expect_matches(v.slice(begin, count), expected);
      }
    }
  }
}

TEST(BitVecBoundary, ConcatMatchesReference) {
  util::Rng rng(103);
  for (std::size_t sa : kBoundarySizes) {
    for (std::size_t sb : kBoundarySizes) {
      const Ref ra = random_ref(sa, rng);
      const Ref rb = random_ref(sb, rng);
      Ref expected = ra;
      expected.insert(expected.end(), rb.begin(), rb.end());
      expect_matches(from_ref(ra).concat(from_ref(rb)), expected);
    }
  }
}

TEST(BitVecBoundary, EqualityAndHashAgree) {
  util::Rng rng(104);
  for (std::size_t size : kBoundarySizes) {
    const Ref ref = random_ref(size, rng);
    const BitVec a = from_ref(ref);
    const BitVec b = from_ref(ref);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    if (size > 0) {
      BitVec c = b;
      c.flip(size / 2);
      EXPECT_NE(a, c);
      c.flip(size / 2);
      EXPECT_EQ(a, c);
      EXPECT_EQ(a.hash(), c.hash());
    }
    // Same content, different length must not compare equal.
    BitVec longer(size + 1);
    for (std::size_t i = 0; i < size; ++i) longer.set(i, ref[i]);
    EXPECT_NE(a, longer);
  }
}

TEST(BitVecBoundary, SupportAndStringRoundTrip) {
  util::Rng rng(105);
  for (std::size_t size : kBoundarySizes) {
    const Ref ref = random_ref(size, rng);
    const BitVec v = from_ref(ref);
    const std::vector<std::size_t> support = v.support();
    std::size_t si = 0;
    for (std::size_t i = 0; i < size; ++i) {
      if (ref[i]) {
        ASSERT_LT(si, support.size());
        EXPECT_EQ(support[si++], i);
      }
    }
    EXPECT_EQ(si, support.size());
    EXPECT_EQ(BitVec::from_string(v.to_string()), v);
  }
}

TEST(BitVecBoundary, U64RoundTripAtInlineLimit) {
  const BitVec v63 = BitVec::from_u64(63, 0x7fffffffffffffffULL);
  EXPECT_EQ(v63.weight(), 63u);
  EXPECT_EQ(v63.to_u64(), 0x7fffffffffffffffULL);
  const BitVec v64 = BitVec::from_u64(64, ~0ULL);
  EXPECT_EQ(v64.weight(), 64u);
  EXPECT_EQ(v64.to_u64(), ~0ULL);
  const BitVec zero = BitVec::from_u64(0, 0);
  EXPECT_EQ(zero.to_u64(), 0u);
  EXPECT_TRUE(zero.empty());
}

}  // namespace
}  // namespace sfqecc::code
