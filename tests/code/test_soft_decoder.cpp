#include "code/soft_decoder.hpp"

#include <gtest/gtest.h>

#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

TEST(SoftDecoder, HardInputMatchesHardDecoder) {
  const LinearCode rm = paper_rm13();
  const RmSoftDecoder soft(rm);
  const RmFhtDecoder hard(rm, /*flag_ties=*/false);
  util::Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    BitVec rx(8);
    for (std::size_t j = 0; j < 8; ++j) rx.set(j, rng.bernoulli(0.5));
    const DecodeResult hs = soft.decode_bits(rx);
    const DecodeResult hh = hard.decode(rx);
    // On +/-1 inputs the soft FHT equals the hard FHT, but soft ties resolve
    // by index while the hard decoder uses coset leaders; compare distance.
    EXPECT_EQ((hs.codeword ^ rx).weight() <= 2, (hh.codeword ^ rx).weight() <= 2);
    if (hh.status != DecodeStatus::kDetected &&
        (hh.codeword ^ rx).weight() <= 1) {
      EXPECT_EQ(hs.message, hh.message);
    }
  }
}

TEST(SoftDecoder, CleanWordsAllMessages) {
  const LinearCode rm = paper_rm13();
  const RmSoftDecoder soft(rm);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const DecodeResult r = soft.decode_bits(rm.encode(msg));
    EXPECT_EQ(r.message, msg);
    EXPECT_EQ(r.status, DecodeStatus::kNoError);
  }
}

TEST(SoftDecoder, ReliabilityBreaksTies) {
  // A double error is a tie for the hard decoder, but if the two flipped
  // bits are *unreliable* (small magnitude), soft decoding recovers.
  const LinearCode rm = paper_rm13();
  const RmSoftDecoder soft(rm);
  util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec msg = BitVec::from_u64(4, rng.below(16));
    const BitVec cw = rm.encode(msg);
    std::vector<double> y(8);
    for (std::size_t j = 0; j < 8; ++j) y[j] = cw.get(j) ? -1.0 : 1.0;
    // Flip two positions but with low reliability.
    const std::size_t i = rng.below(8);
    std::size_t j = rng.below(8);
    while (j == i) j = rng.below(8);
    y[i] *= -0.2;
    y[j] *= -0.2;
    EXPECT_EQ(soft.decode(y).message, msg) << "trial " << trial;
  }
}

TEST(SoftDecoder, OneStrongErrorCorrected) {
  const LinearCode rm = paper_rm13();
  const RmSoftDecoder soft(rm);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const BitVec cw = rm.encode(msg);
    for (std::size_t flip = 0; flip < 8; ++flip) {
      std::vector<double> y(8);
      for (std::size_t j = 0; j < 8; ++j) y[j] = cw.get(j) ? -1.0 : 1.0;
      y[flip] = -y[flip];
      EXPECT_EQ(soft.decode(y).message, msg);
    }
  }
}

TEST(SoftDecoder, BeatsHardOnGaussianChannel) {
  const LinearCode rm = paper_rm13();
  const RmSoftDecoder soft(rm);
  const RmFhtDecoder hard(rm, false);
  util::Rng rng(3);
  const double sigma = 0.6;  // on bipolar +/-1 signalling
  std::size_t soft_errors = 0, hard_errors = 0;
  const int words = 4000;
  for (int w = 0; w < words; ++w) {
    const BitVec msg = BitVec::from_u64(4, rng.below(16));
    const BitVec cw = rm.encode(msg);
    std::vector<double> y(8);
    BitVec sliced(8);
    for (std::size_t j = 0; j < 8; ++j) {
      y[j] = (cw.get(j) ? -1.0 : 1.0) + rng.gaussian(0.0, sigma);
      sliced.set(j, y[j] < 0.0);
    }
    if (soft.decode(y).message != msg) ++soft_errors;
    if (hard.decode(sliced).message != msg) ++hard_errors;
  }
  EXPECT_LT(soft_errors * 2, hard_errors)
      << "soft=" << soft_errors << " hard=" << hard_errors;
}

TEST(SoftDecoder, WorksForLongerCodes) {
  const LinearCode rm = reed_muller(1, 5);
  const RmSoftDecoder soft(rm);
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec msg = BitVec::from_u64(6, rng.below(64));
    const BitVec cw = rm.encode(msg);
    std::vector<double> y(32);
    for (std::size_t j = 0; j < 32; ++j)
      y[j] = (cw.get(j) ? -1.0 : 1.0) + rng.gaussian(0.0, 0.5);
    EXPECT_EQ(soft.decode(y).message, msg);
  }
}

TEST(SoftDecoder, RejectsNonRm1) {
  const LinearCode h84 = paper_hamming84();
  EXPECT_THROW(RmSoftDecoder{h84}, ContractViolation);
  const LinearCode rm = paper_rm13();
  const RmSoftDecoder soft(rm);
  EXPECT_THROW(soft.decode({1.0, -1.0}), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::code
