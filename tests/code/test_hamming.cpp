#include "code/hamming.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

TEST(Hamming, PaperH74MatchesEquationThree) {
  const LinearCode c = paper_hamming74();
  // Spot-check Eq. (3): message (m1..m4), codeword (c1..c7).
  util::Rng rng(1);
  for (int trial = 0; trial < 16; ++trial) {
    const BitVec m = BitVec::from_u64(4, static_cast<std::uint64_t>(trial));
    const bool m1 = m.get(0), m2 = m.get(1), m3 = m.get(2), m4 = m.get(3);
    const BitVec cw = c.encode(m);
    EXPECT_EQ(cw.get(0), (m1 != m2) != m4);  // c1 = m1^m2^m4
    EXPECT_EQ(cw.get(1), (m1 != m3) != m4);
    EXPECT_EQ(cw.get(2), m1);
    EXPECT_EQ(cw.get(3), (m2 != m3) != m4);
    EXPECT_EQ(cw.get(4), m2);
    EXPECT_EQ(cw.get(5), m3);
    EXPECT_EQ(cw.get(6), m4);
  }
}

TEST(Hamming, PaperH84MatchesEquationOne) {
  const LinearCode c = paper_hamming84();
  for (std::uint64_t mi = 0; mi < 16; ++mi) {
    const BitVec m = BitVec::from_u64(4, mi);
    const bool m1 = m.get(0), m2 = m.get(1), m3 = m.get(2);
    const BitVec cw = c.encode(m);
    // First seven bits agree with Hamming(7,4); c8 = m1^m2^m3.
    EXPECT_EQ(cw.slice(0, 7), paper_hamming74().encode(m));
    EXPECT_EQ(cw.get(7), (m1 != m2) != m3);
  }
}

TEST(Hamming, PaperFig3Vector) {
  // Fig. 3 of the paper: message 1011 -> codeword 01100110.
  const LinearCode c = paper_hamming84();
  EXPECT_EQ(c.encode(BitVec::from_string("1011")).to_string(), "01100110");
}

TEST(Hamming, H84LastBitIsOverallParity) {
  const LinearCode c = paper_hamming84();
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec cw = c.encode(BitVec::from_u64(4, m));
    EXPECT_FALSE(cw.parity()) << "extended Hamming codewords must be even weight";
  }
}

TEST(Hamming, DminValues) {
  EXPECT_EQ(paper_hamming74().dmin(), 3u);
  EXPECT_EQ(paper_hamming84().dmin(), 4u);
}

TEST(Hamming, H74WeightDistribution) {
  // Known: A0=1, A3=7, A4=7, A7=1.
  const LinearCode c = paper_hamming74();
  const auto& dist = c.weight_distribution();
  ASSERT_EQ(dist.size(), 8u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[3], 7u);
  EXPECT_EQ(dist[4], 7u);
  EXPECT_EQ(dist[7], 1u);
  EXPECT_EQ(dist[1] + dist[2] + dist[5] + dist[6], 0u);
}

TEST(Hamming, H84WeightDistribution) {
  // Known: A0=1, A4=14, A8=1.
  const LinearCode c = paper_hamming84();
  const auto& dist = c.weight_distribution();
  ASSERT_EQ(dist.size(), 9u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[4], 14u);
  EXPECT_EQ(dist[8], 1u);
}

TEST(Hamming, GeneralFamilyShapes) {
  for (std::size_t r = 2; r <= 6; ++r) {
    const LinearCode c = hamming_code(r);
    const std::size_t n = (std::size_t{1} << r) - 1;
    EXPECT_EQ(c.n(), n);
    EXPECT_EQ(c.k(), n - r);
    if (c.k() <= 24) {
      EXPECT_EQ(c.dmin(), 3u);
    }
  }
}

TEST(Hamming, GeneralFamilyIsPerfect) {
  // Perfect single-error-correcting: every nonzero syndrome is a weight-1 leader.
  for (std::size_t r = 3; r <= 5; ++r) {
    const LinearCode c = hamming_code(r);
    const auto& leaders = c.coset_leaders();
    for (std::size_t s = 1; s < leaders.size(); ++s)
      EXPECT_EQ(leaders[s].weight(), 1u) << "r=" << r << " syndrome=" << s;
  }
}

TEST(Hamming, ExtendGeneric) {
  const LinearCode base = hamming_code(3);
  const LinearCode ext = extend_with_overall_parity(base);
  EXPECT_EQ(ext.n(), base.n() + 1);
  EXPECT_EQ(ext.k(), base.k());
  EXPECT_EQ(ext.dmin(), 4u);
  for (std::uint64_t m = 0; m < (1ULL << ext.k()); ++m) {
    const BitVec cw = ext.encode(BitVec::from_u64(ext.k(), m));
    EXPECT_FALSE(cw.parity());
  }
}

TEST(Hamming, ExtendEvenDminCodeKeepsDmin) {
  // Extending an even-dmin code does not raise dmin.
  const LinearCode ext = extend_with_overall_parity(paper_hamming84());
  EXPECT_EQ(ext.dmin(), 4u);
}

TEST(Hamming, PaperH84EqualsGenericExtension) {
  // The paper's (8,4) code must be *equivalent* to extending the paper's
  // (7,4): identical codeword sets.
  const LinearCode ext = extend_with_overall_parity(paper_hamming74());
  const LinearCode paper = paper_hamming84();
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec cw = ext.encode(BitVec::from_u64(4, m));
    EXPECT_TRUE(paper.is_codeword(cw));
  }
}

}  // namespace
}  // namespace sfqecc::code
