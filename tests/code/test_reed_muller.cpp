#include "code/reed_muller.hpp"

#include <gtest/gtest.h>

#include "code/hamming.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

TEST(ReedMuller, DimensionFormula) {
  EXPECT_EQ(reed_muller_k(0, 3), 1u);
  EXPECT_EQ(reed_muller_k(1, 3), 4u);
  EXPECT_EQ(reed_muller_k(2, 3), 7u);
  EXPECT_EQ(reed_muller_k(3, 3), 8u);
  EXPECT_EQ(reed_muller_k(1, 4), 5u);
  EXPECT_EQ(reed_muller_k(2, 5), 16u);
}

TEST(ReedMuller, ShapesAndDistance) {
  for (std::size_t m = 1; m <= 5; ++m) {
    for (std::size_t r = 0; r <= m; ++r) {
      const LinearCode c = reed_muller(r, m);
      EXPECT_EQ(c.n(), std::size_t{1} << m);
      EXPECT_EQ(c.k(), reed_muller_k(r, m));
      EXPECT_EQ(c.dmin(), std::size_t{1} << (m - r));
    }
  }
}

TEST(ReedMuller, DminVerifiedByEnumeration) {
  // The constructor supplies dmin analytically; confirm against enumeration.
  for (std::size_t m = 2; m <= 4; ++m) {
    for (std::size_t r = 0; r <= m; ++r) {
      const LinearCode c = reed_muller(r, m);
      LinearCode enumerated("check", c.generator());
      EXPECT_EQ(enumerated.dmin(), std::size_t{1} << (m - r)) << "RM(" << r << "," << m << ")";
    }
  }
}

TEST(ReedMuller, Rm03IsRepetition) {
  const LinearCode c = reed_muller(0, 3);
  EXPECT_EQ(c.encode(BitVec::from_string("1")).weight(), 8u);
  EXPECT_EQ(c.encode(BitVec::from_string("0")).weight(), 0u);
}

TEST(ReedMuller, RmMMIsFullSpace) {
  const LinearCode c = reed_muller(2, 2);
  EXPECT_EQ(c.k(), 4u);
  EXPECT_EQ(c.dmin(), 1u);
}

TEST(ReedMuller, PaperRm13Mapping) {
  // c_j = m1 ^ (m2 & j0) ^ (m3 & j1) ^ (m4 & j2), j = bit index 0..7.
  const LinearCode c = paper_rm13();
  for (std::uint64_t mi = 0; mi < 16; ++mi) {
    const BitVec m = BitVec::from_u64(4, mi);
    const BitVec cw = c.encode(m);
    for (std::size_t j = 0; j < 8; ++j) {
      bool expected = m.get(0);
      if (j & 1) expected = expected != m.get(1);
      if (j & 2) expected = expected != m.get(2);
      if (j & 4) expected = expected != m.get(3);
      EXPECT_EQ(cw.get(j), expected) << "m=" << mi << " j=" << j;
    }
  }
}

TEST(ReedMuller, Rm13WeightDistribution) {
  // RM(1,3): A0=1, A4=14, A8=1 (first-order RM of length 8 is self-dual-like:
  // all non-constant codewords have weight 4).
  const LinearCode c = paper_rm13();
  const auto& dist = c.weight_distribution();
  ASSERT_EQ(dist.size(), 9u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[4], 14u);
  EXPECT_EQ(dist[8], 1u);
}

TEST(ReedMuller, Rm13EquivalentToExtendedHammingAsSet) {
  // RM(1,3) and the extended Hamming(8,4) are both the unique (8,4,4) code up
  // to coordinate permutation; with the paper's layouts they even share the
  // codeword *set* property of being even-weight self-complementary.
  const LinearCode rm = paper_rm13();
  for (std::uint64_t mi = 0; mi < 16; ++mi) {
    const BitVec cw = rm.encode(BitVec::from_u64(4, mi));
    EXPECT_FALSE(cw.parity());
    // Self-complementary: complement of a codeword is a codeword.
    BitVec comp = cw;
    for (std::size_t j = 0; j < 8; ++j) comp.flip(j);
    EXPECT_TRUE(rm.is_codeword(comp));
  }
}

TEST(ReedMuller, PlotkinRecursion) {
  // RM(r, m+1) == Plotkin(RM(r, m), RM(r-1, m)) as a codeword set.
  for (std::size_t m = 2; m <= 3; ++m) {
    for (std::size_t r = 1; r <= m; ++r) {
      const LinearCode big = reed_muller(r, m + 1);
      const LinearCode combined =
          plotkin_combine(reed_muller(r, m), reed_muller(r - 1, m));
      ASSERT_EQ(big.k(), combined.k());
      for (std::uint64_t mi = 0; mi < (1ULL << combined.k()); ++mi) {
        const BitVec cw = combined.encode(BitVec::from_u64(combined.k(), mi));
        EXPECT_TRUE(big.is_codeword(cw))
            << "RM(" << r << "," << m + 1 << ") missing a Plotkin codeword";
      }
    }
  }
}

TEST(ReedMuller, PlotkinDistanceProperty) {
  // d(Plotkin(A,B)) = min(2 d(A), d(B)).
  const LinearCode a = reed_muller(1, 2);
  const LinearCode b = reed_muller(0, 2);
  const LinearCode p = plotkin_combine(a, b);
  LinearCode enumerated("check", p.generator());
  EXPECT_EQ(enumerated.dmin(), std::min(2 * a.dmin(), b.dmin()));
}

TEST(ReedMuller, RejectsBadParameters) {
  EXPECT_THROW(reed_muller(3, 2), ContractViolation);
  EXPECT_THROW(reed_muller(1, 0), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::code
