#include "code/gf2_matrix.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

Gf2Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng,
                        double density = 0.5) {
  Gf2Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m.set(r, c, rng.bernoulli(density));
  return m;
}

TEST(Gf2Matrix, FromRowsAndAccess) {
  const Gf2Matrix m = Gf2Matrix::from_rows({{1, 0, 1}, {0, 1, 1}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_FALSE(m.get(0, 1));
  EXPECT_TRUE(m.get(1, 2));
}

TEST(Gf2Matrix, FromStringsMatchesFromRows) {
  EXPECT_EQ(Gf2Matrix::from_strings({"101", "011"}),
            Gf2Matrix::from_rows({{1, 0, 1}, {0, 1, 1}}));
}

TEST(Gf2Matrix, RaggedInitializerThrows) {
  EXPECT_THROW(Gf2Matrix::from_rows({{1, 0}, {1}}), ContractViolation);
  EXPECT_THROW(Gf2Matrix::from_strings({"10", "1"}), ContractViolation);
}

TEST(Gf2Matrix, IdentityProperties) {
  const Gf2Matrix id = Gf2Matrix::identity(5);
  EXPECT_EQ(id.rank(), 5u);
  EXPECT_EQ(id.multiply(id), id);
  EXPECT_EQ(id.transpose(), id);
}

TEST(Gf2Matrix, MulLeftSelectsRowCombinations) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"1100", "0110", "0011"});
  EXPECT_EQ(m.mul_left(BitVec::from_string("100")), BitVec::from_string("1100"));
  EXPECT_EQ(m.mul_left(BitVec::from_string("110")), BitVec::from_string("1010"));
  EXPECT_EQ(m.mul_left(BitVec::from_string("111")), BitVec::from_string("1001"));
}

TEST(Gf2Matrix, MulRightIsTransposeOfMulLeft) {
  util::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t rows = 1 + rng.below(8), cols = 1 + rng.below(8);
    const Gf2Matrix m = random_matrix(rows, cols, rng);
    BitVec v(cols);
    for (std::size_t c = 0; c < cols; ++c) v.set(c, rng.bernoulli(0.5));
    EXPECT_EQ(m.mul_right(v), m.transpose().mul_left(v));
  }
}

TEST(Gf2Matrix, TransposeInvolution) {
  util::Rng rng(8);
  const Gf2Matrix m = random_matrix(6, 9, rng);
  EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(Gf2Matrix, MultiplyAssociativeRandomized) {
  util::Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const Gf2Matrix a = random_matrix(4, 5, rng);
    const Gf2Matrix b = random_matrix(5, 6, rng);
    const Gf2Matrix c = random_matrix(6, 3, rng);
    EXPECT_EQ(a.multiply(b).multiply(c), a.multiply(b.multiply(c)));
  }
}

TEST(Gf2Matrix, RankBounds) {
  util::Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t rows = 1 + rng.below(10), cols = 1 + rng.below(10);
    const Gf2Matrix m = random_matrix(rows, cols, rng);
    EXPECT_LE(m.rank(), std::min(rows, cols));
    EXPECT_EQ(m.rank(), m.transpose().rank());
  }
}

TEST(Gf2Matrix, RankOfDuplicatedRows) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"1010", "1010", "0101"});
  EXPECT_EQ(m.rank(), 2u);
}

TEST(Gf2Matrix, RrefIsIdempotent) {
  util::Rng rng(11);
  const Gf2Matrix m = random_matrix(5, 8, rng);
  EXPECT_EQ(m.rref().rref(), m.rref());
}

TEST(Gf2Matrix, NullSpaceOrthogonality) {
  util::Rng rng(12);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 1 + rng.below(6), cols = rows + 1 + rng.below(6);
    const Gf2Matrix m = random_matrix(rows, cols, rng);
    const Gf2Matrix ns = m.null_space();
    EXPECT_EQ(ns.rows(), cols - m.rank());
    for (std::size_t i = 0; i < ns.rows(); ++i) {
      EXPECT_TRUE(m.mul_right(ns.row(i)).is_zero())
          << "null-space vector not in kernel";
    }
    // Null-space basis must itself be independent.
    if (ns.rows() > 0) {
      EXPECT_EQ(ns.rank(), ns.rows());
    }
  }
}

TEST(Gf2Matrix, InverseRoundTrip) {
  util::Rng rng(13);
  int found = 0;
  while (found < 20) {
    const Gf2Matrix m = random_matrix(5, 5, rng);
    if (m.rank() != 5) continue;
    ++found;
    const Gf2Matrix inv = m.inverse();
    EXPECT_EQ(m.multiply(inv), Gf2Matrix::identity(5));
    EXPECT_EQ(inv.multiply(m), Gf2Matrix::identity(5));
  }
}

TEST(Gf2Matrix, InverseOfSingularThrows) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"11", "11"});
  EXPECT_THROW(m.inverse(), ContractViolation);
}

TEST(Gf2Matrix, SelectColumns) {
  const Gf2Matrix m = Gf2Matrix::from_strings({"1010", "0110"});
  const Gf2Matrix s = m.select_columns({2, 0});
  EXPECT_EQ(s, Gf2Matrix::from_strings({"11", "10"}));
}

TEST(Gf2Matrix, HconcatShapes) {
  const Gf2Matrix a = Gf2Matrix::identity(3);
  const Gf2Matrix b = Gf2Matrix::from_strings({"11", "01", "10"});
  const Gf2Matrix c = a.hconcat(b);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_EQ(c.row(1).to_string(), "01001");
}

TEST(Gf2Matrix, ToSystematicAlreadySystematic) {
  const Gf2Matrix g = Gf2Matrix::from_strings({"10011", "01010", "00111"});
  const auto sys = g.to_systematic();
  EXPECT_FALSE(sys.permuted);
  EXPECT_EQ(sys.generator.rows(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(sys.generator.get(r, c), r == c);
}

TEST(Gf2Matrix, ToSystematicSpansSameCode) {
  util::Rng rng(14);
  int found = 0;
  while (found < 20) {
    Gf2Matrix g = random_matrix(3, 7, rng);
    if (g.rank() != 3) continue;
    ++found;
    const auto sys = g.to_systematic();
    // The permuted systematic generator must span the column-permuted code:
    // check every systematic codeword, un-permuted, lies in the original code.
    const Gf2Matrix h = g.null_space();  // parity check of original code
    for (std::uint64_t m = 0; m < 8; ++m) {
      const BitVec msg = BitVec::from_u64(3, m);
      const BitVec cw_sys = sys.generator.mul_left(msg);
      BitVec cw(7);
      for (std::size_t c = 0; c < 7; ++c) cw.set(sys.column_order[c], cw_sys.get(c));
      for (std::size_t r = 0; r < h.rows(); ++r) EXPECT_FALSE(h.row(r).dot(cw));
    }
  }
}

TEST(Gf2Matrix, ParityCheckFromSystematic) {
  // Hamming(7,4) style [I | P].
  const Gf2Matrix g = Gf2Matrix::from_strings(
      {"1000110", "0100101", "0010011", "0001111"});
  const Gf2Matrix h = parity_check_from_systematic(g);
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 7u);
  // G H^T = 0.
  const Gf2Matrix product = g.multiply(h.transpose());
  for (std::size_t r = 0; r < product.rows(); ++r)
    EXPECT_TRUE(product.row(r).is_zero());
}

TEST(Gf2Matrix, ParityCheckRejectsNonSystematic) {
  const Gf2Matrix g = Gf2Matrix::from_strings({"0111", "1011"});
  EXPECT_THROW(parity_check_from_systematic(g), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::code
