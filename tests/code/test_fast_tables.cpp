// Equivalence of LinearCode's cached u64 fast paths with the generic
// Gf2Matrix products, across every code the paper uses (all have n <= 64 and
// therefore take the table-driven path in encode/syndrome/extract_message).
#include <gtest/gtest.h>

#include "code/bitvec.hpp"
#include "code/code3832.hpp"
#include "code/gf2_matrix.hpp"
#include "code/hamming.hpp"
#include "code/hsiao.hpp"
#include "code/linear_code.hpp"
#include "code/reed_muller.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

std::vector<LinearCode> paper_codes() {
  std::vector<LinearCode> codes;
  codes.push_back(paper_hamming74());
  codes.push_back(paper_hamming84());
  codes.push_back(paper_rm13());
  codes.push_back(hsiao_13_8());
  codes.push_back(code3832());
  return codes;
}

TEST(FastTables, PaperCodesHaveFastPath) {
  for (const LinearCode& code : paper_codes()) {
    EXPECT_TRUE(code.has_fast_path()) << code.name();
    EXPECT_LE(code.n(), LinearCode::kFastPathMaxN) << code.name();
  }
}

TEST(FastTables, EncodeMatchesGeneratorProduct) {
  for (const LinearCode& code : paper_codes()) {
    const std::uint64_t total = std::uint64_t{1} << code.k();
    // Exhaustive for small k, sampled above (code3832 has k = 32).
    const std::uint64_t step = total <= (1u << 16) ? 1 : (total / 50021) | 1;
    for (std::uint64_t m = 0; m < total; m += step) {
      const BitVec message = BitVec::from_u64(code.k(), m);
      const BitVec via_tables = code.encode(message);
      const BitVec via_matrix = code.generator().mul_left(message);
      ASSERT_EQ(via_tables, via_matrix) << code.name() << " message " << m;
      ASSERT_EQ(code.encode_u64(m), via_matrix.to_u64()) << code.name();
    }
  }
}

TEST(FastTables, SyndromeMatchesParityCheckProduct) {
  util::Rng rng(77);
  for (const LinearCode& code : paper_codes()) {
    for (int round = 0; round < 200; ++round) {
      const std::uint64_t bits =
          code.n() == 64 ? rng.next_u64()
                         : rng.below(std::uint64_t{1} << code.n());
      const BitVec received = BitVec::from_u64(code.n(), bits);
      const BitVec via_tables = code.syndrome(received);
      const BitVec via_matrix = code.parity_check().mul_right(received);
      ASSERT_EQ(via_tables, via_matrix) << code.name();
      ASSERT_EQ(code.syndrome_u64(bits), via_matrix.to_u64()) << code.name();
      ASSERT_EQ(code.is_codeword(received), via_matrix.is_zero()) << code.name();
    }
  }
}

TEST(FastTables, ExtractMessageInvertsEncode) {
  util::Rng rng(78);
  for (const LinearCode& code : paper_codes()) {
    for (int round = 0; round < 100; ++round) {
      const std::uint64_t m = rng.below(std::uint64_t{1} << std::min<std::size_t>(
                                            code.k(), 63));
      const BitVec message = BitVec::from_u64(code.k(), m);
      const BitVec codeword = code.encode(message);
      ASSERT_EQ(code.extract_message(codeword), message) << code.name();
      ASSERT_EQ(code.extract_message_u64(codeword.to_u64()), m) << code.name();
    }
  }
}

TEST(FastTables, CosetLeaderWordsMatchLeaders) {
  for (const LinearCode& code : {paper_hamming74(), paper_hamming84(), paper_rm13()}) {
    const std::vector<BitVec>& leaders = code.coset_leaders();
    const std::vector<std::uint64_t>& words = code.coset_leader_words();
    ASSERT_EQ(leaders.size(), words.size()) << code.name();
    for (std::size_t s = 0; s < leaders.size(); ++s)
      EXPECT_EQ(leaders[s].to_u64(), words[s]) << code.name() << " syndrome " << s;
  }
}

TEST(FastTables, AllCodewordsMatchesEncode) {
  for (const LinearCode& code : {paper_hamming74(), paper_hamming84(), paper_rm13(),
                                 hsiao_13_8()}) {
    const std::vector<BitVec> all = code.all_codewords();
    ASSERT_EQ(all.size(), std::size_t{1} << code.k()) << code.name();
    for (std::uint64_t m = 0; m < all.size(); ++m)
      EXPECT_EQ(all[m], code.encode(BitVec::from_u64(code.k(), m)))
          << code.name() << " message " << m;
  }
}

// The generic (matrix-product) path must stay live for long codes: RM(1,7)
// has n = 128 > 64 and must behave consistently with its own tables absent.
TEST(FastTables, LongCodesSkipFastPathConsistently) {
  const LinearCode rm17 = reed_muller(1, 7);
  EXPECT_FALSE(rm17.has_fast_path());
  util::Rng rng(79);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t m = rng.below(std::uint64_t{1} << rm17.k());
    const BitVec message = BitVec::from_u64(rm17.k(), m);
    const BitVec codeword = rm17.encode(message);
    EXPECT_TRUE(rm17.is_codeword(codeword));
    EXPECT_EQ(rm17.extract_message(codeword), message);
  }
}

}  // namespace
}  // namespace sfqecc::code
