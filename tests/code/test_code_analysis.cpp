// Exhaustive error-pattern analysis: these tests pin down the numbers behind
// the paper's Table I and Section II claims.
#include "code/code_analysis.hpp"

#include <gtest/gtest.h>

#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

std::size_t binom(std::size_t n, std::size_t k) {
  std::size_t r = 1;
  for (std::size_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

TEST(CodeAnalysis, H74SyndromePerWeight) {
  const LinearCode h74 = paper_hamming74();
  const SyndromeDecoder dec(h74);
  const auto a = analyze_error_patterns(dec, 3);
  ASSERT_EQ(a.by_weight.size(), 3u);
  // Weight 1: all 7 corrected.
  EXPECT_EQ(a.by_weight[0].corrected, 7u);
  // Weight 2: all 21 miscorrected (perfect code).
  EXPECT_EQ(a.by_weight[1].miscorrected, 21u);
  // Weight 3: 7 are codewords (invisible), 28 miscorrect.
  EXPECT_EQ(a.by_weight[2].undetected, 7u);
  EXPECT_EQ(a.by_weight[2].miscorrected, 28u);
  EXPECT_EQ(a.guaranteed_correct, 1u);
  EXPECT_EQ(a.guaranteed_safe, 1u);
}

TEST(CodeAnalysis, H84SecDedPerWeight) {
  const LinearCode h84 = paper_hamming84();
  const LinearCode h74 = paper_hamming74();
  const ExtendedHammingDecoder dec(h84, h74);
  const auto a = analyze_error_patterns(dec, 4);
  EXPECT_EQ(a.by_weight[0].corrected, 8u);    // all singles
  EXPECT_EQ(a.by_weight[1].detected, 28u);    // all doubles
  EXPECT_EQ(a.by_weight[2].miscorrected, 56u);// all triples alias to singles
  EXPECT_EQ(a.by_weight[3].undetected, 14u);  // A4 = 14 codewords
  EXPECT_EQ(a.guaranteed_correct, 1u);
  EXPECT_EQ(a.guaranteed_safe, 2u);
}

TEST(CodeAnalysis, Rm13MlTieFlaggingPerWeight) {
  const LinearCode rm = paper_rm13();
  const RmFhtDecoder dec(rm);
  const auto a = analyze_error_patterns(dec, 2);
  EXPECT_EQ(a.by_weight[0].corrected, 8u);
  EXPECT_EQ(a.by_weight[1].detected, 28u);  // every double ties
  EXPECT_EQ(a.guaranteed_correct, 1u);
  EXPECT_EQ(a.guaranteed_safe, 2u);
}

TEST(CodeAnalysis, Rm13StandardArrayCorrectsSevenDoubles) {
  // Section II-B: the recursive structure "provides the ability to correct
  // certain 2-bit error patterns" — exactly the 7 coset leaders of weight 2.
  const LinearCode rm = paper_rm13();
  const SyndromeDecoder dec(rm);
  const auto a = analyze_error_patterns(dec, 2);
  EXPECT_EQ(a.by_weight[1].corrected, 7u);
  EXPECT_EQ(a.by_weight[1].patterns, 28u);
  EXPECT_EQ(a.best_correct, 2u);
}

TEST(CodeAnalysis, Rm13TiebreakFhtAlsoCorrectsDoubles) {
  const LinearCode rm = paper_rm13();
  const RmFhtDecoder dec(rm, /*flag_ties=*/false);
  const auto a = analyze_error_patterns(dec, 2);
  EXPECT_EQ(a.by_weight[1].corrected + a.by_weight[1].miscorrected, 28u);
  EXPECT_EQ(a.by_weight[1].corrected, 7u) << "deterministic tie-break corrects "
                                             "one pattern per weight-2 coset";
  EXPECT_EQ(a.best_correct, 2u);
}

TEST(CodeAnalysis, DetectionCoverageH74) {
  // Section II-C: 28 of 35 3-bit patterns detected (80 %).
  const LinearCode h74 = paper_hamming74();
  const auto cov = detection_coverage(h74, 3);
  ASSERT_EQ(cov.size(), 3u);
  EXPECT_EQ(cov[0].detected, 7u);
  EXPECT_EQ(cov[0].patterns, 7u);
  EXPECT_EQ(cov[1].detected, 21u);
  EXPECT_EQ(cov[2].detected, 28u);
  EXPECT_EQ(cov[2].patterns, 35u);
}

TEST(CodeAnalysis, DetectionCoverageCountsBinomials) {
  const LinearCode h84 = paper_hamming84();
  const auto cov = detection_coverage(h84, 4);
  for (std::size_t w = 1; w <= 4; ++w)
    EXPECT_EQ(cov[w - 1].patterns, binom(8, w));
  // All weights < dmin fully detected.
  EXPECT_EQ(cov[0].detected, cov[0].patterns);
  EXPECT_EQ(cov[1].detected, cov[1].patterns);
  EXPECT_EQ(cov[2].detected, cov[2].patterns);
  // Weight 4: 14 codewords invisible.
  EXPECT_EQ(cov[3].detected, cov[3].patterns - 14);
}

TEST(CodeAnalysis, TotalsAreConserved) {
  const LinearCode h84 = paper_hamming84();
  const LinearCode h74 = paper_hamming74();
  const ExtendedHammingDecoder dec(h84, h74);
  for (const auto& w : analyze_error_patterns(dec, 8).by_weight) {
    EXPECT_EQ(w.corrected + w.detected + w.miscorrected + w.undetected, w.patterns)
        << "weight " << w.weight;
    EXPECT_EQ(w.patterns, binom(8, w.weight));
  }
}

TEST(CodeAnalysis, TranslationInvarianceJustification) {
  // analyze_error_patterns() classifies patterns against the zero codeword;
  // verify on random codewords that every decoder used in the benches is
  // translation invariant.
  const LinearCode h84 = paper_hamming84();
  const LinearCode h74 = paper_hamming74();
  const LinearCode rm = paper_rm13();
  const SyndromeDecoder d74(h74);
  const ExtendedHammingDecoder d84(h84, h74);
  const RmFhtDecoder drm(rm, false);
  util::Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    const BitVec m = BitVec::from_u64(4, rng.below(16));
    // Same random error pattern against zero and against a codeword.
    auto check = [&](const Decoder& dec, const LinearCode& c) {
      BitVec e(c.n());
      for (std::size_t i = 0; i < c.n(); ++i) e.set(i, rng.bernoulli(0.3));
      const BitVec cw = c.encode(m);
      const DecodeResult r0 = dec.decode(e);
      const DecodeResult rc = dec.decode(cw ^ e);
      EXPECT_EQ(r0.status, rc.status);
      const BitVec zero_k(c.k());
      EXPECT_EQ(r0.message == zero_k, rc.message == m);
    };
    check(d74, h74);
    check(d84, h84);
    check(drm, rm);
  }
}

TEST(CodeAnalysis, DefaultMaxWeightIsDminPlusOne) {
  const LinearCode h74 = paper_hamming74();
  const SyndromeDecoder dec(h74);
  EXPECT_EQ(analyze_error_patterns(dec).by_weight.size(), 4u);  // dmin + 1 = 4
}

}  // namespace
}  // namespace sfqecc::code
