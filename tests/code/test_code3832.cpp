// Tests for the (38,32) baseline code of Peng et al. [14].
#include "code/code3832.hpp"

#include <gtest/gtest.h>

#include <set>

#include "code/decoder.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

TEST(Code3832, Shape) {
  const LinearCode c = code3832();
  EXPECT_EQ(c.n(), 38u);
  EXPECT_EQ(c.k(), 32u);
  EXPECT_EQ(c.parity_bits(), 6u);
  EXPECT_EQ(c.dmin(), 3u);
}

TEST(Code3832, SystematicLayout) {
  const LinearCode c = code3832();
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec m(32);
    for (std::size_t i = 0; i < 32; ++i) m.set(i, rng.bernoulli(0.5));
    const BitVec cw = c.encode(m);
    EXPECT_EQ(cw.slice(0, 32), m);
  }
}

TEST(Code3832, DminLowerBoundColumnsDistinct) {
  // dmin >= 3 iff all parity-check columns are nonzero and pairwise distinct.
  const LinearCode c = code3832();
  const Gf2Matrix h = c.parity_check();
  std::set<std::uint64_t> seen;
  for (std::size_t col = 0; col < 38; ++col) {
    const BitVec v = h.column(col);
    EXPECT_FALSE(v.is_zero()) << "column " << col;
    EXPECT_TRUE(seen.insert(v.to_u64()).second) << "duplicate column " << col;
  }
}

TEST(Code3832, DminUpperBoundExplicitWeight3Codeword) {
  // Message flipping data bits whose columns are 0b000011, 0b000101, 0b000110
  // (data columns 0, 1, 2 in our low-weight-first order) encodes to weight 3:
  // the parities cancel pairwise.
  const LinearCode c = code3832();
  BitVec m(32);
  m.set(0, true);
  m.set(1, true);
  m.set(2, true);
  const BitVec cw = c.encode(m);
  EXPECT_EQ(cw.weight(), 3u);
}

TEST(Code3832, CorrectsAllSingleErrors) {
  const LinearCode c = code3832();
  const SyndromeDecoder dec(c);
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    BitVec m(32);
    for (std::size_t i = 0; i < 32; ++i) m.set(i, rng.bernoulli(0.5));
    const BitVec cw = c.encode(m);
    for (std::size_t pos = 0; pos < 38; ++pos) {
      BitVec rx = cw;
      rx.flip(pos);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.message, m) << "position " << pos;
      EXPECT_EQ(r.status, DecodeStatus::kCorrected);
    }
  }
}

TEST(Code3832, DetectsAllDoubleErrorsInDetectMode) {
  // [14] claims 2-bit detection; with dmin = 3 this holds in detect-only
  // operation (no weight-2 codewords).
  const LinearCode c = code3832();
  util::Rng rng(3);
  BitVec m(32);
  for (std::size_t i = 0; i < 32; ++i) m.set(i, rng.bernoulli(0.5));
  const BitVec cw = c.encode(m);
  for (std::size_t i = 0; i < 38; ++i)
    for (std::size_t j = i + 1; j < 38; ++j) {
      BitVec rx = cw;
      rx.flip(i);
      rx.flip(j);
      EXPECT_FALSE(c.is_codeword(rx)) << i << "," << j;
    }
}

TEST(Code3832, SyndromeTableComplete) {
  const LinearCode c = code3832();
  const auto& leaders = c.coset_leaders();
  ASSERT_EQ(leaders.size(), 64u);
  // 38 single-bit cosets + zero coset; the remaining 25 have weight-2 leaders.
  std::size_t w1 = 0, w2 = 0;
  for (const BitVec& l : leaders) {
    if (l.weight() == 1) ++w1;
    if (l.weight() == 2) ++w2;
  }
  EXPECT_EQ(w1, 38u);
  EXPECT_EQ(w2, 25u);
}

}  // namespace
}  // namespace sfqecc::code
