#include "code/linear_code.hpp"

#include <gtest/gtest.h>

#include "code/hamming.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

LinearCode simple_parity_code() {
  // [4,3] single parity check code, dmin 2.
  return LinearCode("parity(4,3)",
                    Gf2Matrix::from_strings({"1001", "0101", "0011"}));
}

TEST(LinearCode, BasicShape) {
  const LinearCode c = simple_parity_code();
  EXPECT_EQ(c.n(), 4u);
  EXPECT_EQ(c.k(), 3u);
  EXPECT_EQ(c.parity_bits(), 1u);
  EXPECT_DOUBLE_EQ(c.rate(), 0.75);
}

TEST(LinearCode, RejectsRankDeficientGenerator) {
  EXPECT_THROW(
      LinearCode("bad", Gf2Matrix::from_strings({"1010", "1010"})),
      ContractViolation);
}

TEST(LinearCode, RejectsWideGenerator) {
  EXPECT_THROW(LinearCode("bad", Gf2Matrix::from_strings({"10", "01", "11"})),
               ContractViolation);
}

TEST(LinearCode, EncodeLinearity) {
  const LinearCode c = paper_hamming74();
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec a = BitVec::from_u64(4, rng.below(16));
    const BitVec b = BitVec::from_u64(4, rng.below(16));
    EXPECT_EQ(c.encode(a ^ b), c.encode(a) ^ c.encode(b));
  }
}

TEST(LinearCode, ParityCheckAnnihilatesCodewords) {
  const LinearCode c = paper_hamming74();
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec cw = c.encode(BitVec::from_u64(4, m));
    EXPECT_TRUE(c.syndrome(cw).is_zero());
    EXPECT_TRUE(c.is_codeword(cw));
  }
}

TEST(LinearCode, SyndromeDetectsNonCodewords) {
  const LinearCode c = paper_hamming74();
  const BitVec cw = c.encode(BitVec::from_u64(4, 9));
  for (std::size_t i = 0; i < 7; ++i) {
    BitVec corrupted = cw;
    corrupted.flip(i);
    EXPECT_FALSE(c.syndrome(corrupted).is_zero());
  }
}

TEST(LinearCode, SyndromeIsLinearInError) {
  const LinearCode c = paper_hamming74();
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec cw = c.encode(BitVec::from_u64(4, rng.below(16)));
    BitVec e(7);
    for (std::size_t i = 0; i < 7; ++i) e.set(i, rng.bernoulli(0.3));
    EXPECT_EQ(c.syndrome(cw ^ e), c.syndrome(e));
  }
}

TEST(LinearCode, ExtractMessageInvertsEncode) {
  const LinearCode c = paper_hamming74();
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    EXPECT_EQ(c.extract_message(c.encode(msg)), msg);
  }
}

TEST(LinearCode, ExtractMessageRejectsNonCodeword) {
  const LinearCode c = paper_hamming74();
  BitVec w = c.encode(BitVec::from_u64(4, 3));
  w.flip(0);
  EXPECT_THROW(c.extract_message(w), ContractViolation);
}

TEST(LinearCode, ExtractMessageWorksForNonSystematicGenerator) {
  // The paper's Hamming(7,4) generator is not systematic (message bits are
  // scattered at c3, c5, c6, c7); extraction still has to invert it.
  const LinearCode c = paper_hamming74();
  const BitVec msg = BitVec::from_string("1011");
  const BitVec cw = c.encode(msg);
  EXPECT_EQ(c.extract_message(cw), msg);
}

TEST(LinearCode, DminOfParityCode) {
  EXPECT_EQ(simple_parity_code().dmin(), 2u);
}

TEST(LinearCode, WeightDistributionParityCode) {
  const LinearCode c = simple_parity_code();
  const auto& dist = c.weight_distribution();
  // [4,3,2] even-weight code: A0=1, A2=6, A4=1 (sum = 8 codewords).
  ASSERT_EQ(dist.size(), 5u);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[1], 0u);
  EXPECT_EQ(dist[2], 6u);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[4], 1u);
}

TEST(LinearCode, WeightDistributionSumsToCodebook) {
  const LinearCode c = paper_hamming74();
  const auto& dist = c.weight_distribution();
  std::size_t total = 0;
  for (std::size_t a : dist) total += a;
  EXPECT_EQ(total, 16u);
}

TEST(LinearCode, CosetLeadersCoverAllSyndromes) {
  const LinearCode c = paper_hamming74();
  const auto& leaders = c.coset_leaders();
  ASSERT_EQ(leaders.size(), 8u);
  EXPECT_TRUE(leaders[0].is_zero());
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(c.syndrome(leaders[s]).to_u64(), s) << "leader maps to wrong syndrome";
  }
}

TEST(LinearCode, CosetLeadersAreMinimumWeight) {
  // Perfect Hamming code: every nonzero syndrome has a weight-1 leader.
  const LinearCode c = paper_hamming74();
  const auto& leaders = c.coset_leaders();
  for (std::size_t s = 1; s < 8; ++s) EXPECT_EQ(leaders[s].weight(), 1u);
}

TEST(LinearCode, CosetLeaderWeightsForExtendedCode) {
  // Hamming(8,4): 16 cosets; weights 0 (1), 1 (8), 2 (7).
  const LinearCode c = paper_hamming84();
  const auto& leaders = c.coset_leaders();
  ASSERT_EQ(leaders.size(), 16u);
  std::size_t w0 = 0, w1 = 0, w2 = 0;
  for (const BitVec& l : leaders) {
    if (l.weight() == 0) ++w0;
    if (l.weight() == 1) ++w1;
    if (l.weight() == 2) ++w2;
  }
  EXPECT_EQ(w0, 1u);
  EXPECT_EQ(w1, 8u);
  EXPECT_EQ(w2, 7u);
}

TEST(LinearCode, AllCodewordsDistinct) {
  const LinearCode c = paper_hamming84();
  const auto codewords = c.all_codewords();
  ASSERT_EQ(codewords.size(), 16u);
  for (std::size_t i = 0; i < codewords.size(); ++i)
    for (std::size_t j = i + 1; j < codewords.size(); ++j)
      EXPECT_NE(codewords[i], codewords[j]);
}

TEST(LinearCode, DminMatchesPairwiseDistance) {
  const LinearCode c = paper_hamming84();
  const auto codewords = c.all_codewords();
  std::size_t best = c.n();
  for (std::size_t i = 0; i < codewords.size(); ++i)
    for (std::size_t j = i + 1; j < codewords.size(); ++j)
      best = std::min(best, (codewords[i] ^ codewords[j]).weight());
  EXPECT_EQ(best, c.dmin());
}

class RandomCodeProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCodeProperties, InvariantsHoldOnRandomCodes) {
  util::Rng rng(GetParam());
  // Random full-rank generator, k in [2,6], n in [k+1, k+6].
  const std::size_t k = 2 + rng.below(5);
  const std::size_t n = k + 1 + rng.below(6);
  Gf2Matrix g(k, n);
  do {
    for (std::size_t r = 0; r < k; ++r)
      for (std::size_t c = 0; c < n; ++c) g.set(r, c, rng.bernoulli(0.5));
  } while (g.rank() != k);

  const LinearCode code("random", g);
  // Encode/extract round trip.
  for (std::uint64_t m = 0; m < (1ULL << k); ++m) {
    const BitVec msg = BitVec::from_u64(k, m);
    const BitVec cw = code.encode(msg);
    EXPECT_TRUE(code.is_codeword(cw));
    EXPECT_EQ(code.extract_message(cw), msg);
  }
  // Weight distribution counts 2^k codewords and locates dmin.
  const auto& dist = code.weight_distribution();
  std::size_t total = 0;
  for (std::size_t a : dist) total += a;
  EXPECT_EQ(total, 1ULL << k);
  // Coset leaders: correct syndrome, minimal weight within sampled coset.
  const auto& leaders = code.coset_leaders();
  EXPECT_EQ(leaders.size(), 1ULL << (n - k));
  for (std::size_t s = 0; s < leaders.size(); ++s)
    EXPECT_EQ(code.syndrome(leaders[s]).to_u64(), s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCodeProperties,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace sfqecc::code
