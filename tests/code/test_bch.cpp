// GF(2^m) arithmetic and BCH encode/decode tests.
#include "code/bch.hpp"

#include <gtest/gtest.h>

#include <set>

#include "code/gf2m.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

// ---------------------------------------------------------------- GF(2^m) --

TEST(Gf2m, FieldAxiomsGf16) {
  const Gf2mField f(4);
  EXPECT_EQ(f.order(), 15u);
  for (std::uint32_t a = 1; a <= f.order(); ++a) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "a=" << a;
    EXPECT_EQ(f.mul(a, 1), a);
    EXPECT_EQ(f.add(a, a), 0u);  // characteristic 2
  }
}

TEST(Gf2m, MultiplicationCommutesAndAssociates) {
  const Gf2mField f(5);
  util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint32_t>(rng.below(f.order() + 1));
    const auto b = static_cast<std::uint32_t>(rng.below(f.order() + 1));
    const auto c = static_cast<std::uint32_t>(rng.below(f.order() + 1));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    // Distributivity.
    EXPECT_EQ(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST(Gf2m, AlphaGeneratesTheField) {
  for (unsigned m = 2; m <= 10; ++m) {
    const Gf2mField f(m);
    std::vector<bool> seen(f.order() + 1, false);
    for (std::uint32_t e = 0; e < f.order(); ++e) {
      const std::uint32_t v = f.alpha_pow(e);
      EXPECT_FALSE(seen[v]) << "m=" << m;
      seen[v] = true;
    }
  }
}

TEST(Gf2m, LogExpRoundTrip) {
  const Gf2mField f(6);
  for (std::uint32_t a = 1; a <= f.order(); ++a)
    EXPECT_EQ(f.alpha_pow(f.log(a)), a);
}

TEST(Gf2m, PowMatchesRepeatedMul) {
  const Gf2mField f(4);
  for (std::uint32_t a = 1; a <= f.order(); ++a) {
    std::uint32_t acc = 1;
    for (unsigned e = 0; e < 6; ++e) {
      EXPECT_EQ(f.pow(a, e), acc);
      acc = f.mul(acc, a);
    }
  }
}

TEST(Gf2m, MinimalPolynomialOfAlphaIsPrimitive) {
  const Gf2mField f(4);
  const Gf2Poly mp = minimal_polynomial(f, 1);
  // x^4 + x + 1 -> coefficients (1,1,0,0,1).
  const Gf2Poly expected{1, 1, 0, 0, 1};
  EXPECT_EQ(mp, expected);
}

TEST(Gf2m, MinimalPolynomialsHaveConjugateDegree) {
  const Gf2mField f(4);
  EXPECT_EQ(poly_degree(minimal_polynomial(f, 3)), 4u);
  EXPECT_EQ(poly_degree(minimal_polynomial(f, 5)), 2u);  // alpha^5 has order 3
  EXPECT_EQ(poly_degree(minimal_polynomial(f, 7)), 4u);
}

TEST(Gf2m, PolyMulMod) {
  // (x+1)(x^2+x+1) = x^3+1 over GF(2).
  const Gf2Poly a{1, 1};
  const Gf2Poly b{1, 1, 1};
  const Gf2Poly p = poly_mul(a, b);
  const Gf2Poly expected{1, 0, 0, 1};
  EXPECT_EQ(p, expected);
  // (x^3+1) mod (x^2+x+1) = (x+1)(x^2+x+1) mod ... = 0? No: x^3+1 = (x+1)(x^2+x+1), so remainder 0.
  const Gf2Poly r = poly_mod(p, b);
  EXPECT_EQ(poly_degree(r), static_cast<std::size_t>(-1));
}

// -------------------------------------------------------------------- BCH --

TEST(Bch, Bch15ShapeFamily) {
  // Classic narrow-sense BCH codes of length 15.
  EXPECT_EQ(BchCode(4, 3).k(), 11u);   // BCH(15,11,3) == Hamming
  EXPECT_EQ(BchCode(4, 5).k(), 7u);    // BCH(15,7,5)
  EXPECT_EQ(BchCode(4, 7).k(), 5u);    // BCH(15,5,7)
}

TEST(Bch, Bch31Shapes) {
  EXPECT_EQ(BchCode(5, 3).k(), 26u);
  EXPECT_EQ(BchCode(5, 5).k(), 21u);
  EXPECT_EQ(BchCode(5, 7).k(), 16u);
}

TEST(Bch, EncodeIsSystematic) {
  const BchCode bch(4, 5);
  util::Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec m = BitVec::from_u64(7, rng.below(128));
    const BitVec cw = bch.encode(m);
    EXPECT_EQ(cw.slice(0, 7), m);
  }
}

TEST(Bch, LinearCodeBridgeAgrees) {
  const BchCode bch(4, 5);
  const LinearCode lc = bch.to_linear_code();
  EXPECT_EQ(lc.n(), 15u);
  EXPECT_EQ(lc.k(), 7u);
  EXPECT_EQ(lc.dmin(), 5u);  // designed distance met exactly for BCH(15,7)
  for (std::uint64_t m = 0; m < 128; ++m) {
    const BitVec msg = BitVec::from_u64(7, m);
    EXPECT_EQ(lc.encode(msg), bch.encode(msg));
  }
}

TEST(Bch, DecodesUpToTErrors) {
  const BchCode bch(4, 5);  // t = 2
  util::Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const BitVec m = BitVec::from_u64(7, rng.below(128));
    BitVec rx = bch.encode(m);
    const std::size_t nerr = rng.below(3);  // 0..2
    std::set<std::size_t> positions;
    while (positions.size() < nerr) positions.insert(rng.below(15));
    for (std::size_t p : positions) rx.flip(p);
    const DecodeResult r = bch.decode(rx);
    EXPECT_EQ(r.message, m) << "errors at " << nerr;
    EXPECT_NE(r.status, DecodeStatus::kDetected);
    EXPECT_EQ(r.bits_flipped, nerr);
  }
}

TEST(Bch, TripleErrorNotSilentlyAccepted) {
  // t = 2: three errors either get flagged or miscorrect to a valid codeword;
  // decoded output must always be a codeword when accepted.
  const BchCode bch(4, 5);
  const LinearCode lc = bch.to_linear_code();
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec m = BitVec::from_u64(7, rng.below(128));
    BitVec rx = bch.encode(m);
    std::set<std::size_t> positions;
    while (positions.size() < 3) positions.insert(rng.below(15));
    for (std::size_t p : positions) rx.flip(p);
    const DecodeResult r = bch.decode(rx);
    if (r.status == DecodeStatus::kCorrected) {
      EXPECT_TRUE(lc.is_codeword(r.codeword));
    }
  }
}

TEST(Bch, HigherTCorrection) {
  const BchCode bch(5, 7);  // BCH(31,16,7), t = 3
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec m(16);
    for (std::size_t i = 0; i < 16; ++i) m.set(i, rng.bernoulli(0.5));
    BitVec rx = bch.encode(m);
    std::set<std::size_t> positions;
    while (positions.size() < 3) positions.insert(rng.below(31));
    for (std::size_t p : positions) rx.flip(p);
    EXPECT_EQ(bch.decode(rx).message, m);
  }
}

TEST(Bch, RejectsBadParameters) {
  EXPECT_THROW(BchCode(4, 4), ContractViolation);   // even distance
  EXPECT_THROW(BchCode(4, 1), ContractViolation);   // too small
  EXPECT_THROW(BchCode(4, 17), ContractViolation);  // exceeds length
}

TEST(Bch, Bch15_11IsHammingEquivalent) {
  // BCH with delta = 3 is the Hamming code up to coordinate labelling: same
  // (n, k, dmin).
  const LinearCode bch = BchCode(4, 3).to_linear_code();
  EXPECT_EQ(bch.n(), 15u);
  EXPECT_EQ(bch.k(), 11u);
  EXPECT_EQ(bch.dmin(), 3u);
}

TEST(Bch, MakeBchFindsDesignedDistanceFromDimensions) {
  EXPECT_EQ(make_bch(15, 11).designed_distance(), 3u);
  EXPECT_EQ(make_bch(15, 7).designed_distance(), 5u);
  EXPECT_EQ(make_bch(15, 5).designed_distance(), 7u);
  EXPECT_EQ(make_bch(31, 16).designed_distance(), 7u);
  EXPECT_EQ(make_bch(63, 45).t(), 3u);
}

TEST(Bch, MakeBchRejectsImpossibleDimensions) {
  EXPECT_THROW(make_bch(16, 7), ContractViolation);   // n != 2^m - 1
  EXPECT_THROW(make_bch(15, 9), ContractViolation);   // no such k for n = 15
  EXPECT_THROW(make_bch(15, 15), ContractViolation);  // k must be < n
  EXPECT_THROW(make_bch(7, 0), ContractViolation);
}

TEST(Bch, DecoderAdapterMatchesDirectDecoding) {
  const BchCode bch = make_bch(15, 7);
  const LinearCode code = bch.to_linear_code();
  const BchDecoder decoder(bch, code);
  EXPECT_EQ(&decoder.base_code(), &code);

  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec m(7);
    for (std::size_t i = 0; i < 7; ++i) m.set(i, rng.bernoulli(0.5));
    BitVec rx = code.encode(m);
    std::set<std::size_t> positions;
    while (positions.size() < 2) positions.insert(rng.below(15));
    for (std::size_t p : positions) rx.flip(p);
    const DecodeResult via_adapter = decoder.decode(rx);
    const DecodeResult direct = bch.decode(rx);
    EXPECT_EQ(via_adapter.status, direct.status);
    EXPECT_EQ(via_adapter.message, m);
    EXPECT_EQ(via_adapter.status, DecodeStatus::kCorrected);
  }
}

TEST(Bch, DecoderAdapterRejectsMismatchedCode) {
  const LinearCode wrong = BchCode(4, 3).to_linear_code();  // (15,11)
  EXPECT_THROW(BchDecoder(make_bch(15, 7), wrong), ContractViolation);
}

}  // namespace
}  // namespace sfqecc::code
