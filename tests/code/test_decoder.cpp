#include "code/decoder.hpp"

#include <gtest/gtest.h>

#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::code {
namespace {

// ---------------------------------------------------------------- syndrome --

TEST(SyndromeDecoder, CleanWordPassesThrough) {
  const LinearCode c = paper_hamming74();
  const SyndromeDecoder dec(c);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const DecodeResult r = dec.decode(c.encode(msg));
    EXPECT_EQ(r.status, DecodeStatus::kNoError);
    EXPECT_EQ(r.message, msg);
    EXPECT_EQ(r.bits_flipped, 0u);
  }
}

TEST(SyndromeDecoder, CorrectsEverySingleError) {
  const LinearCode c = paper_hamming74();
  const SyndromeDecoder dec(c);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const BitVec cw = c.encode(msg);
    for (std::size_t i = 0; i < 7; ++i) {
      BitVec rx = cw;
      rx.flip(i);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.status, DecodeStatus::kCorrected);
      EXPECT_EQ(r.message, msg) << "m=" << m << " flip=" << i;
      EXPECT_EQ(r.bits_flipped, 1u);
    }
  }
}

TEST(SyndromeDecoder, DoubleErrorsMiscorrectOnPerfectCode) {
  // A perfect code has no spare syndromes: every 2-bit error lands in a
  // weight-1 coset and is silently miscorrected.
  const LinearCode c = paper_hamming74();
  const SyndromeDecoder dec(c);
  const BitVec msg = BitVec::from_string("1010");
  const BitVec cw = c.encode(msg);
  std::size_t miscorrected = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = i + 1; j < 7; ++j) {
      BitVec rx = cw;
      rx.flip(i);
      rx.flip(j);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.status, DecodeStatus::kCorrected);
      if (r.message != msg) ++miscorrected;
    }
  }
  EXPECT_EQ(miscorrected, 21u) << "all C(7,2) double errors must miscorrect";
}

TEST(SyndromeDecoder, WeightBoundTurnsMiscorrectionIntoDetection) {
  const LinearCode c = paper_hamming84();
  const SyndromeDecoder bounded(c, 1);
  const BitVec cw = c.encode(BitVec::from_string("1100"));
  BitVec rx = cw;
  rx.flip(0);
  rx.flip(3);
  const DecodeResult r = bounded.decode(rx);
  EXPECT_EQ(r.status, DecodeStatus::kDetected);  // weight-2 leader refused
}

TEST(SyndromeDecoder, TranslationInvariance) {
  const LinearCode c = paper_hamming84();
  const SyndromeDecoder dec(c);
  util::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec e(8);
    for (std::size_t i = 0; i < 8; ++i) e.set(i, rng.bernoulli(0.25));
    const BitVec msg = BitVec::from_u64(4, rng.below(16));
    const BitVec cw = c.encode(msg);
    const DecodeResult r_zero = dec.decode(e);
    const DecodeResult r_cw = dec.decode(cw ^ e);
    EXPECT_EQ(r_zero.status, r_cw.status);
    // Error estimate (received ^ decoded codeword) must coincide.
    EXPECT_EQ(e ^ r_zero.codeword, (cw ^ e) ^ r_cw.codeword);
  }
}

// -------------------------------------------------------------- detect only --

TEST(DetectOnlyDecoder, FlagsEveryNonCodeword) {
  const LinearCode c = paper_hamming74();
  const DetectOnlyDecoder dec(c);
  for (std::uint64_t w = 0; w < 128; ++w) {
    const BitVec rx = BitVec::from_u64(7, w);
    const DecodeResult r = dec.decode(rx);
    if (c.is_codeword(rx))
      EXPECT_EQ(r.status, DecodeStatus::kNoError);
    else
      EXPECT_EQ(r.status, DecodeStatus::kDetected);
  }
}

// --------------------------------------------------------- extended Hamming --

TEST(ExtendedHammingDecoder, CleanWord) {
  const LinearCode ext = paper_hamming84();
  const LinearCode base = paper_hamming74();
  const ExtendedHammingDecoder dec(ext, base);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const DecodeResult r = dec.decode(ext.encode(msg));
    EXPECT_EQ(r.status, DecodeStatus::kNoError);
    EXPECT_EQ(r.message, msg);
  }
}

TEST(ExtendedHammingDecoder, CorrectsEverySingleErrorIncludingParityBit) {
  const LinearCode ext = paper_hamming84();
  const LinearCode base = paper_hamming74();
  const ExtendedHammingDecoder dec(ext, base);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const BitVec cw = ext.encode(msg);
    for (std::size_t i = 0; i < 8; ++i) {
      BitVec rx = cw;
      rx.flip(i);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.status, DecodeStatus::kCorrected) << "i=" << i;
      EXPECT_EQ(r.message, msg) << "i=" << i;
    }
  }
}

TEST(ExtendedHammingDecoder, DetectsEveryDoubleError) {
  const LinearCode ext = paper_hamming84();
  const LinearCode base = paper_hamming74();
  const ExtendedHammingDecoder dec(ext, base);
  const BitVec msg = BitVec::from_string("0111");
  const BitVec cw = ext.encode(msg);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      BitVec rx = cw;
      rx.flip(i);
      rx.flip(j);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.status, DecodeStatus::kDetected) << i << "," << j;
    }
  }
}

TEST(ExtendedHammingDecoder, TripleErrorsMiscorrect) {
  // Odd error count looks like a single error: the decoder corrects to a
  // wrong codeword. This is the known SEC-DED limitation the analysis bench
  // quantifies against the paper's loose "detects 3" claim.
  const LinearCode ext = paper_hamming84();
  const LinearCode base = paper_hamming74();
  const ExtendedHammingDecoder dec(ext, base);
  const BitVec msg = BitVec::from_string("1001");
  const BitVec cw = ext.encode(msg);
  std::size_t wrong = 0, total = 0;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = i + 1; j < 8; ++j)
      for (std::size_t l = j + 1; l < 8; ++l) {
        BitVec rx = cw;
        rx.flip(i);
        rx.flip(j);
        rx.flip(l);
        const DecodeResult r = dec.decode(rx);
        ++total;
        if (r.status != DecodeStatus::kDetected && r.message != msg) ++wrong;
      }
  EXPECT_EQ(total, 56u);
  EXPECT_EQ(wrong, 56u);
}

// ----------------------------------------------------------------- RM FHT --

TEST(RmFhtDecoder, CleanWord) {
  const LinearCode rm = paper_rm13();
  const RmFhtDecoder dec(rm);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const DecodeResult r = dec.decode(rm.encode(msg));
    EXPECT_EQ(r.status, DecodeStatus::kNoError);
    EXPECT_EQ(r.message, msg);
  }
}

TEST(RmFhtDecoder, CorrectsEverySingleError) {
  const LinearCode rm = paper_rm13();
  const RmFhtDecoder dec(rm);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const BitVec cw = rm.encode(msg);
    for (std::size_t i = 0; i < 8; ++i) {
      BitVec rx = cw;
      rx.flip(i);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.status, DecodeStatus::kCorrected);
      EXPECT_EQ(r.message, msg);
    }
  }
}

TEST(RmFhtDecoder, DoubleErrorsNeverSilentlyWrong) {
  // dmin = 4: a 2-bit error is at distance 2 from the sent codeword and at
  // least 2 from every other, so ML either returns the sent codeword or ties.
  const LinearCode rm = paper_rm13();
  const RmFhtDecoder dec(rm);
  const BitVec msg = BitVec::from_string("0101");
  const BitVec cw = rm.encode(msg);
  std::size_t detected = 0, corrected = 0;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = i + 1; j < 8; ++j) {
      BitVec rx = cw;
      rx.flip(i);
      rx.flip(j);
      const DecodeResult r = dec.decode(rx);
      if (r.status == DecodeStatus::kDetected)
        ++detected;
      else if (r.message == msg)
        ++corrected;
      else
        FAIL() << "silent miscorrection of a double error at " << i << "," << j;
    }
  EXPECT_EQ(detected + corrected, 28u);
  EXPECT_EQ(detected, 28u) << "every double error is equidistant to >= 2 codewords";
}

TEST(RmFhtDecoder, WorksForLongerRm1m) {
  const LinearCode rm14 = reed_muller(1, 4);
  const RmFhtDecoder dec(rm14);
  util::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec msg = BitVec::from_u64(5, rng.below(32));
    BitVec rx = rm14.encode(msg);
    // Up to 3 errors are guaranteed-correctable for dmin = 8.
    std::size_t nerr = rng.below(4);
    for (std::size_t e = 0; e < nerr; ++e) rx.flip(rng.below(16));
    const DecodeResult r = dec.decode(rx);
    // Distinct positions not guaranteed above; only check when it was <= 3.
    if ((rx ^ rm14.encode(msg)).weight() <= 3) {
      EXPECT_EQ(r.message, msg);
      EXPECT_NE(r.status, DecodeStatus::kDetected);
    }
  }
}

TEST(RmFhtDecoder, RejectsNonRm1Codes) {
  const LinearCode h84 = paper_hamming84();
  EXPECT_THROW(RmFhtDecoder{h84}, ContractViolation);
}

// ------------------------------------------------------------- RM majority --

TEST(RmMajorityDecoder, CleanAndSingleError) {
  const LinearCode rm = paper_rm13();
  const RmMajorityDecoder dec(rm);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec msg = BitVec::from_u64(4, m);
    const BitVec cw = rm.encode(msg);
    EXPECT_EQ(dec.decode(cw).message, msg);
    EXPECT_EQ(dec.decode(cw).status, DecodeStatus::kNoError);
    for (std::size_t i = 0; i < 8; ++i) {
      BitVec rx = cw;
      rx.flip(i);
      const DecodeResult r = dec.decode(rx);
      EXPECT_EQ(r.message, msg) << "m=" << m << " i=" << i;
    }
  }
}

TEST(RmMajorityDecoder, AgreesWithFhtOnSingleErrors) {
  const LinearCode rm = reed_muller(1, 4);
  const RmMajorityDecoder maj(rm);
  const RmFhtDecoder fht(rm);
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec msg = BitVec::from_u64(5, rng.below(32));
    BitVec rx = rm.encode(msg);
    rx.flip(rng.below(16));
    EXPECT_EQ(maj.decode(rx).message, fht.decode(rx).message);
  }
}

}  // namespace
}  // namespace sfqecc::code
