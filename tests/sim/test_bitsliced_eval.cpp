// Lane-equivalence tests for the bit-sliced simulator: every observable of a
// SlicedSimulator / SlicedLink lane must be bit-identical to an independent
// scalar EventSimulator / DataLink run fed that lane's stimulus. No cell
// semantics are asserted directly — the scalar path is the oracle, so these
// tests hold under any future (mirrored) semantics change.
#include "sim/bitsliced_eval.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"
#include "core/paper_encoders.hpp"
#include "link/datalink.hpp"
#include "sim/event_sim.hpp"
#include "util/expect.hpp"

namespace sfqecc::sim {
namespace {

using circuit::CellId;
using circuit::CellLibrary;
using circuit::CellType;
using circuit::coldflux_library;
using circuit::Netlist;
using circuit::NetId;

SimConfig quiet() {
  SimConfig c;
  c.jitter_sigma_ps = 0.0;
  c.record_pulses = false;
  return c;
}

// A small netlist crossing every stateful cell class: clocked XOR and DFF,
// unclocked TFF, merger, and two DC converters observing separate paths.
//
//   a, b --XOR(clk)--> x --TFF--> t --split--> SfqToDc --> out1
//   b --DFF(clk)--> f --+
//   t (other split leg) -+-merge-> m --SfqToDc--> out2
struct MixedNetlist {
  Netlist nl{"mixed"};
  NetId a, b, clk, out1, out2;

  MixedNetlist() {
    a = nl.add_primary_input("a");
    b = nl.add_primary_input("b");
    clk = nl.add_primary_input("clk");
    const CellId x = nl.add_cell(CellType::kXor, "x", {a, b}, {"xo"});
    nl.connect_clock(x, clk);
    const NetId xo = nl.cell(x).outputs[0];
    const CellId t = nl.add_cell(CellType::kTff, "t", {xo}, {"to"});
    const NetId to = nl.cell(t).outputs[0];
    const CellId f = nl.add_cell(CellType::kDff, "f", {b}, {"fo"});
    nl.connect_clock(f, clk);
    const NetId fo = nl.cell(f).outputs[0];
    const CellId s = nl.add_cell(CellType::kSplitter, "s", {to}, {"s1", "s2"});
    const NetId s1 = nl.cell(s).outputs[0];
    const NetId s2 = nl.cell(s).outputs[1];
    const CellId m = nl.add_cell(CellType::kMerger, "m", {s2, fo}, {"mo"});
    const NetId mo = nl.cell(m).outputs[0];
    const CellId d1 = nl.add_cell(CellType::kSfqToDc, "d1", {s1}, {"out1"});
    out1 = nl.cell(d1).outputs[0];
    const CellId d2 = nl.add_cell(CellType::kSfqToDc, "d2", {mo}, {"out2"});
    out2 = nl.cell(d2).outputs[0];
  }
};

TEST(BitslicedEval, MixedNetlistMatchesScalarPerLane) {
  MixedNetlist t;
  constexpr std::size_t kLanes = 8;
  // Lane l's stimulus is encoded in its index bits: a@10 iff bit0, b@12 iff
  // bit1, a second b@30 iff bit2 — eight distinct pulse histories.
  LaneMask mask_a = 0, mask_b = 0, mask_b2 = 0;
  for (std::size_t l = 0; l < kLanes; ++l) {
    if (l & 1) mask_a |= LaneMask{1} << l;
    if (l & 2) mask_b |= LaneMask{1} << l;
    if (l & 4) mask_b2 |= LaneMask{1} << l;
  }
  const LaneMask all = (LaneMask{1} << kLanes) - 1;

  SlicedSimulator sliced(t.nl, coldflux_library());
  if (mask_a) sliced.inject_pulse(t.a, 10.0, mask_a);
  if (mask_b) sliced.inject_pulse(t.b, 12.0, mask_b);
  if (mask_b2) sliced.inject_pulse(t.b, 30.0, mask_b2);
  sliced.inject_clock(t.clk, 50.0, 50.0, 120.0, all);
  sliced.run_until(300.0);

  for (std::size_t l = 0; l < kLanes; ++l) {
    EventSimulator scalar(t.nl, coldflux_library(), quiet());
    if (l & 1) scalar.inject_pulse(t.a, 10.0);
    if (l & 2) scalar.inject_pulse(t.b, 12.0);
    if (l & 4) scalar.inject_pulse(t.b, 30.0);
    scalar.inject_clock(t.clk, 50.0, 50.0, 120.0);
    scalar.run_until(300.0);
    EXPECT_EQ((sliced.dc_levels(t.out1) >> l) & 1, scalar.dc_level(t.out1) ? 1u : 0u)
        << "out1 lane " << l;
    EXPECT_EQ((sliced.dc_levels(t.out2) >> l) & 1, scalar.dc_level(t.out2) ? 1u : 0u)
        << "out2 lane " << l;
  }
}

TEST(BitslicedEval, ZeroMaskLanesAreNoOps) {
  // A pulse whose mask excludes a lane must leave that lane's state exactly
  // as if the pulse were never injected.
  MixedNetlist t;
  SlicedSimulator sliced(t.nl, coldflux_library());
  sliced.inject_pulse(t.a, 10.0, LaneMask{1} << 3);  // lane 3 only
  sliced.inject_clock(t.clk, 50.0, 50.0, 120.0, ~LaneMask{0});
  sliced.run_until(300.0);

  EventSimulator untouched(t.nl, coldflux_library(), quiet());
  untouched.inject_clock(t.clk, 50.0, 50.0, 120.0);
  untouched.run_until(300.0);
  for (std::size_t l = 0; l < 64; ++l) {
    if (l == 3) continue;
    EXPECT_EQ((sliced.dc_levels(t.out1) >> l) & 1, untouched.dc_level(t.out1) ? 1u : 0u);
    EXPECT_EQ((sliced.dc_levels(t.out2) >> l) & 1, untouched.dc_level(t.out2) ? 1u : 0u);
  }
}

TEST(BitslicedEval, SnapshotReplayMatchesDirectRun) {
  // Clock train captured once and replayed via restore_queue — the SlicedLink
  // fast path — must produce the same DC words as injecting it directly.
  const code::LinearCode c = code::paper_hamming84();
  const circuit::BuiltEncoder built = circuit::build_encoder(c, coldflux_library());
  const double until = 200.0 * (built.logic_depth + 1);
  const LaneMask all = ~LaneMask{0};

  SlicedSimulator replayed(built.netlist, coldflux_library());
  SlicedSimulator::QueueSnapshot snapshot;
  replayed.inject_clock(built.clock_input, 200.0, 200.0, until, all);
  replayed.snapshot_queue(snapshot);
  replayed.reset();
  replayed.restore_queue(snapshot);
  SlicedSimulator direct(replayed.tables());
  direct.inject_clock(built.clock_input, 200.0, 200.0, until, all);

  for (SlicedSimulator* sim : {&replayed, &direct}) {
    for (std::size_t b = 0; b < built.message_inputs.size(); ++b)
      sim->inject_pulse(built.message_inputs[b],
                        100.0, LaneMask{0x9e3779b97f4a7c15ull} << b | 1u);
    sim->run_until(until + 100.0);
  }
  for (const NetId out : built.codeword_outputs)
    EXPECT_EQ(replayed.dc_levels(out), direct.dc_levels(out));
}

class SlicedLinkTest : public ::testing::Test {
 protected:
  SlicedLinkTest()
      : scheme_(core::make_scheme(core::SchemeId::kHamming84, coldflux_library())) {
    config_.sim.record_pulses = false;
    config_.sim.jitter_sigma_ps = 0.0;
  }

  link::DataLink event_link() const {
    return link::DataLink(*scheme_.encoder, coldflux_library(), scheme_.code.get(),
                          scheme_.decoder.get(), config_);
  }
  link::SlicedLink sliced_link() const {
    return link::SlicedLink(*scheme_.encoder, coldflux_library(), scheme_.code.get(),
                            scheme_.decoder.get(), config_);
  }

  core::PaperScheme scheme_;
  link::DataLinkConfig config_;
};

TEST_F(SlicedLinkTest, AllSixteenMessagesAcrossLanes) {
  // Every H84 message in its own lane of one transmit() vs sixteen scalar
  // sends: the circuit half must agree word-for-word.
  link::DataLink dlink = event_link();
  link::SlicedLink slink = sliced_link();
  std::vector<code::BitVec> messages(16), transmitted(16);
  for (std::size_t m = 0; m < 16; ++m)
    messages[m] = code::BitVec::from_u64(4, m);
  slink.transmit(messages.data(), 16, transmitted.data());

  util::Rng rng(99);  // channel only; transmitted_word is pre-channel
  for (std::size_t m = 0; m < 16; ++m)
    EXPECT_EQ(transmitted[m], dlink.send(messages[m], rng).transmitted_word)
        << "message " << m;
}

TEST_F(SlicedLinkTest, PartialLaneCountsReuseOneLink) {
  // Batches of 63, 5 and 1 lanes through the same SlicedLink: exercises the
  // clock-snapshot retake on every active-mask change.
  link::DataLink dlink = event_link();
  link::SlicedLink slink = sliced_link();
  util::Rng msg_rng(7);
  for (const std::size_t lanes : {std::size_t{63}, std::size_t{5}, std::size_t{1}}) {
    std::vector<code::BitVec> messages(lanes), transmitted(lanes);
    for (std::size_t l = 0; l < lanes; ++l)
      messages[l] = code::BitVec::from_u64(4, msg_rng.below(16));
    slink.transmit(messages.data(), lanes, transmitted.data());
    util::Rng rng(99);
    for (std::size_t l = 0; l < lanes; ++l)
      EXPECT_EQ(transmitted[l], dlink.send(messages[l], rng).transmitted_word)
          << "lanes=" << lanes << " lane " << l;
  }
}

TEST_F(SlicedLinkTest, FinishMatchesSendUnderChannelNoise) {
  // transmit + finish with the chip's own RNG must reproduce the event
  // path's FrameResult field-for-field, channel draws included.
  config_.channel.noise_sigma_mv = 0.2;
  link::DataLink dlink = event_link();
  link::SlicedLink slink = sliced_link();
  std::vector<code::BitVec> messages(32), transmitted(32);
  util::Rng msg_rng(11);
  for (std::size_t l = 0; l < 32; ++l)
    messages[l] = code::BitVec::from_u64(4, msg_rng.below(16));
  slink.transmit(messages.data(), 32, transmitted.data());

  util::Rng event_rng(424242), sliced_rng(424242);
  for (std::size_t l = 0; l < 32; ++l) {
    const link::FrameResult ev = dlink.send(messages[l], event_rng);
    const link::FrameResult sl = slink.finish(messages[l], transmitted[l], sliced_rng);
    EXPECT_EQ(sl.sent_message, ev.sent_message);
    EXPECT_EQ(sl.reference_codeword, ev.reference_codeword);
    EXPECT_EQ(sl.transmitted_word, ev.transmitted_word);
    EXPECT_EQ(sl.received_word, ev.received_word);
    EXPECT_EQ(sl.delivered_message, ev.delivered_message);
    EXPECT_EQ(sl.flagged, ev.flagged);
    EXPECT_EQ(sl.message_error, ev.message_error);
    EXPECT_EQ(sl.channel_bit_errors, ev.channel_bit_errors);
    EXPECT_EQ(sl.encoder_bit_errors, ev.encoder_bit_errors);
  }
}

TEST_F(SlicedLinkTest, RejectsObservableTimingConfigs) {
  // The constructor enforces the observability gate: jitter or recording
  // make timing observable, which the sliced path cannot represent.
  link::DataLinkConfig jittery = config_;
  jittery.sim.jitter_sigma_ps = 0.8;
  EXPECT_THROW(link::SlicedLink(*scheme_.encoder, coldflux_library(),
                                scheme_.code.get(), scheme_.decoder.get(), jittery),
               ContractViolation);
  link::DataLinkConfig recording = config_;
  recording.sim.record_pulses = true;
  EXPECT_THROW(link::SlicedLink(*scheme_.encoder, coldflux_library(),
                                scheme_.code.get(), scheme_.decoder.get(), recording),
               ContractViolation);
}

}  // namespace
}  // namespace sfqecc::sim
