#include "sim/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"

namespace sfqecc::sim {
namespace {

TEST(Waveform, PulseRasterPeaksAtPulseTimes) {
  RasterOptions opt;
  opt.t1_ps = 100.0;
  opt.pulse_amplitude_uv = 400.0;
  const AnalogTrace t = rasterize_pulses("x", {50.0}, opt);
  ASSERT_EQ(t.samples_uv.size(), 101u);
  EXPECT_NEAR(t.samples_uv[50], 400.0, 1.0);
  EXPECT_NEAR(t.samples_uv[10], 0.0, 1e-6);
  // Symmetric falloff.
  EXPECT_NEAR(t.samples_uv[49], t.samples_uv[51], 1e-9);
}

TEST(Waveform, OverlappingPulsesSuperpose) {
  RasterOptions opt;
  opt.t1_ps = 100.0;
  const AnalogTrace one = rasterize_pulses("x", {50.0}, opt);
  const AnalogTrace two = rasterize_pulses("x", {50.0, 50.0}, opt);
  EXPECT_NEAR(two.samples_uv[50], 2.0 * one.samples_uv[50], 1e-9);
}

TEST(Waveform, PulsesOutsideWindowIgnored) {
  RasterOptions opt;
  opt.t1_ps = 100.0;
  const AnalogTrace t = rasterize_pulses("x", {-500.0, 900.0}, opt);
  for (double s : t.samples_uv) EXPECT_NEAR(s, 0.0, 1e-9);
}

TEST(Waveform, DcRasterSteps) {
  RasterOptions opt;
  opt.t1_ps = 100.0;
  const AnalogTrace t = rasterize_dc("c", {20.0, 60.0}, 400.0, opt);
  EXPECT_DOUBLE_EQ(t.samples_uv[10], 0.0);
  EXPECT_DOUBLE_EQ(t.samples_uv[40], 400.0);
  EXPECT_DOUBLE_EQ(t.samples_uv[80], 0.0);
}

TEST(Waveform, NoiseIsReproducible) {
  RasterOptions opt;
  opt.t1_ps = 50.0;
  opt.noise_sigma_uv = 20.0;
  opt.noise_seed = 11;
  const AnalogTrace a = rasterize_pulses("x", {25.0}, opt);
  const AnalogTrace b = rasterize_pulses("x", {25.0}, opt);
  EXPECT_EQ(a.samples_uv, b.samples_uv);
  opt.noise_seed = 12;
  const AnalogTrace c = rasterize_pulses("x", {25.0}, opt);
  EXPECT_NE(a.samples_uv, c.samples_uv);
}

TEST(Waveform, CsvHasHeaderAndRows) {
  RasterOptions opt;
  opt.t1_ps = 10.0;
  const AnalogTrace a = rasterize_pulses("m1", {5.0}, opt);
  const AnalogTrace b = rasterize_dc("c1", {3.0}, 400.0, opt);
  const std::string csv = traces_to_csv({a, b});
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "time_ps,m1_uV,c1_uV");
  std::size_t lines = 0;
  for (char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 12u);  // header + 11 samples
}

TEST(Waveform, CsvRejectsMismatchedGrids) {
  RasterOptions a_opt;
  a_opt.t1_ps = 10.0;
  RasterOptions b_opt;
  b_opt.t1_ps = 20.0;
  const AnalogTrace a = rasterize_pulses("a", {}, a_opt);
  const AnalogTrace b = rasterize_pulses("b", {}, b_opt);
  EXPECT_THROW(traces_to_csv({a, b}), ContractViolation);
}

TEST(Waveform, AsciiShowsPulsesAndLabels) {
  RasterOptions opt;
  opt.t1_ps = 100.0;
  const AnalogTrace t = rasterize_pulses("m1", {50.0}, opt);
  const std::string art = traces_to_ascii({t}, 50);
  EXPECT_NE(art.find("m1"), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
  EXPECT_NE(art.find('_'), std::string::npos);
}

TEST(Waveform, AsciiFlatTraceIsBaseline) {
  RasterOptions opt;
  opt.t1_ps = 100.0;
  const AnalogTrace t = rasterize_pulses("quiet", {}, opt);
  const std::string art = traces_to_ascii({t}, 40);
  EXPECT_EQ(art.find('|'), std::string::npos);
}

}  // namespace
}  // namespace sfqecc::sim
