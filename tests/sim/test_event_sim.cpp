// Cell-semantics tests for the pulse-level simulator.
#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace sfqecc::sim {
namespace {

using circuit::CellId;
using circuit::CellLibrary;
using circuit::CellType;
using circuit::coldflux_library;
using circuit::Netlist;
using circuit::NetId;

SimConfig quiet() {
  SimConfig c;
  c.jitter_sigma_ps = 0.0;
  return c;
}

TEST(EventSim, SplitterDuplicatesPulse) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId s = nl.add_cell(CellType::kSplitter, "s", {a}, {"o1", "o2"});
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(a, 10.0);
  sim.run_until(100.0);
  const double d = coldflux_library().spec(CellType::kSplitter).delay_ps;
  ASSERT_EQ(sim.pulses(nl.cell(s).outputs[0]).size(), 1u);
  ASSERT_EQ(sim.pulses(nl.cell(s).outputs[1]).size(), 1u);
  EXPECT_DOUBLE_EQ(sim.pulses(nl.cell(s).outputs[0])[0], 10.0 + d);
}

TEST(EventSim, JtlDelaysPulse) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId j = nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(a, 5.0);
  sim.run_until(50.0);
  const double d = coldflux_library().spec(CellType::kJtl).delay_ps;
  ASSERT_EQ(sim.pulses(nl.cell(j).outputs[0]).size(), 1u);
  EXPECT_DOUBLE_EQ(sim.pulses(nl.cell(j).outputs[0])[0], 5.0 + d);
}

TEST(EventSim, DffStoresUntilClock) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId clk = nl.add_primary_input("clk");
  const CellId dff = nl.add_cell(CellType::kDff, "d", {a}, {"q"});
  nl.connect_clock(dff, clk);
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(a, 10.0);
  sim.inject_pulse(clk, 100.0);
  sim.inject_pulse(clk, 200.0);  // second clock: storage already drained
  sim.run_until(300.0);
  const auto& q = sim.pulses(nl.cell(dff).outputs[0]);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q[0], 100.0 + coldflux_library().spec(CellType::kDff).delay_ps);
}

TEST(EventSim, DffWithoutDataStaysSilent) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId clk = nl.add_primary_input("clk");
  const CellId dff = nl.add_cell(CellType::kDff, "d", {a}, {"q"});
  nl.connect_clock(dff, clk);
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(clk, 100.0);
  sim.run_until(200.0);
  EXPECT_TRUE(sim.pulses(nl.cell(dff).outputs[0]).empty());
}

struct GateCase {
  CellType type;
  bool a, b, expected;
};

class ClockedGateTruth : public ::testing::TestWithParam<GateCase> {};

TEST_P(ClockedGateTruth, EvaluatesOnClock) {
  const GateCase& gc = GetParam();
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  const NetId clk = nl.add_primary_input("clk");
  const CellId g = nl.add_cell(gc.type, "g", {a, b}, {"o"});
  nl.connect_clock(g, clk);
  EventSimulator sim(nl, coldflux_library(), quiet());
  if (gc.a) sim.inject_pulse(a, 10.0);
  if (gc.b) sim.inject_pulse(b, 12.0);
  sim.inject_pulse(clk, 100.0);
  sim.run_until(200.0);
  EXPECT_EQ(sim.pulses(nl.cell(g).outputs[0]).size(), gc.expected ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, ClockedGateTruth,
    ::testing::Values(GateCase{CellType::kXor, false, false, false},
                      GateCase{CellType::kXor, true, false, true},
                      GateCase{CellType::kXor, false, true, true},
                      GateCase{CellType::kXor, true, true, false},
                      GateCase{CellType::kAnd, false, false, false},
                      GateCase{CellType::kAnd, true, false, false},
                      GateCase{CellType::kAnd, false, true, false},
                      GateCase{CellType::kAnd, true, true, true},
                      GateCase{CellType::kOr, false, false, false},
                      GateCase{CellType::kOr, true, false, true},
                      GateCase{CellType::kOr, false, true, true},
                      GateCase{CellType::kOr, true, true, true}),
    [](const auto& info) {
      const GateCase& gc = info.param;
      std::string name = cell_type_name(gc.type);
      name += gc.a ? "1" : "0";
      name += gc.b ? "1" : "0";
      return name;
    });

TEST(EventSim, ClockedGateResetsAfterClock) {
  // Destructive readout: arms cleared at each clock.
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  const NetId clk = nl.add_primary_input("clk");
  const CellId g = nl.add_cell(CellType::kXor, "g", {a, b}, {"o"});
  nl.connect_clock(g, clk);
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(a, 10.0);
  sim.inject_pulse(clk, 100.0);  // fires
  sim.inject_pulse(b, 110.0);
  sim.inject_pulse(clk, 200.0);  // fires again (only b set now)
  sim.inject_pulse(clk, 300.0);  // silent
  sim.run_until(400.0);
  EXPECT_EQ(sim.pulses(nl.cell(g).outputs[0]).size(), 2u);
}

TEST(EventSim, NotGateEmitsOnEmptyClock) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId clk = nl.add_primary_input("clk");
  const CellId g = nl.add_cell(CellType::kNot, "g", {a}, {"o"});
  nl.connect_clock(g, clk);
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(clk, 100.0);  // no input -> emits
  sim.inject_pulse(a, 150.0);
  sim.inject_pulse(clk, 200.0);  // input seen -> silent
  sim.run_until(300.0);
  EXPECT_EQ(sim.pulses(nl.cell(g).outputs[0]).size(), 1u);
}

TEST(EventSim, TffDividesByTwo) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId t = nl.add_cell(CellType::kTff, "t", {a}, {"o"});
  EventSimulator sim(nl, coldflux_library(), quiet());
  for (int i = 0; i < 8; ++i) sim.inject_pulse(a, 10.0 * (i + 1));
  sim.run_until(200.0);
  EXPECT_EQ(sim.pulses(nl.cell(t).outputs[0]).size(), 4u);
}

TEST(EventSim, SfqToDcToggles) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId c = nl.add_cell(CellType::kSfqToDc, "c", {a}, {"dc"});
  const NetId out = nl.cell(c).outputs[0];
  EventSimulator sim(nl, coldflux_library(), quiet());
  EXPECT_FALSE(sim.dc_level(out));
  sim.inject_pulse(a, 10.0);
  sim.run_until(50.0);
  EXPECT_TRUE(sim.dc_level(out));
  sim.inject_pulse(a, 60.0);
  sim.run_until(100.0);
  EXPECT_FALSE(sim.dc_level(out));
  EXPECT_EQ(sim.dc_transitions(out).size(), 2u);
}

TEST(EventSim, MergerForwardsBothInputs) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  const CellId m = nl.add_cell(CellType::kMerger, "m", {a, b}, {"o"});
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.inject_pulse(a, 10.0);
  sim.inject_pulse(b, 20.0);
  sim.run_until(100.0);
  EXPECT_EQ(sim.pulses(nl.cell(m).outputs[0]).size(), 2u);
}

TEST(EventSim, ResetClearsStateKeepsFaults) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId c = nl.add_cell(CellType::kSfqToDc, "c", {a}, {"dc"});
  const NetId out = nl.cell(c).outputs[0];
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.set_fault(c, CellFault{FaultMode::kDead, 0.0});
  sim.inject_pulse(a, 10.0);
  sim.run_until(50.0);
  EXPECT_FALSE(sim.dc_level(out));  // dead converter never toggles
  sim.reset();
  sim.inject_pulse(a, 10.0);
  sim.run_until(50.0);
  EXPECT_FALSE(sim.dc_level(out)) << "fault must survive reset()";
}

TEST(EventSim, DeadCellDropsPulses) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId j = nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.set_fault(j, CellFault{FaultMode::kDead, 0.0});
  sim.inject_pulse(a, 10.0);
  sim.run_until(50.0);
  EXPECT_TRUE(sim.pulses(nl.cell(j).outputs[0]).empty());
}

TEST(EventSim, SputteringGateFiresEveryClock) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId clk = nl.add_primary_input("clk");
  const CellId d = nl.add_cell(CellType::kDff, "d", {a}, {"q"});
  nl.connect_clock(d, clk);
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.set_fault(d, CellFault{FaultMode::kSputter, 0.0});
  for (int i = 1; i <= 5; ++i) sim.inject_pulse(clk, 100.0 * i);
  sim.run_until(600.0);
  EXPECT_EQ(sim.pulses(nl.cell(d).outputs[0]).size(), 5u);
}

TEST(EventSim, FlakyCellDropsSomePulses) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId j = nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  SimConfig config = quiet();
  config.noise_seed = 99;
  EventSimulator sim(nl, coldflux_library(), config);
  sim.set_fault(j, CellFault{FaultMode::kFlaky, 0.5});
  for (int i = 0; i < 200; ++i) sim.inject_pulse(a, 10.0 * (i + 1));
  sim.run_until(3000.0);
  const std::size_t passed = sim.pulses(nl.cell(j).outputs[0]).size();
  EXPECT_GT(passed, 50u);
  EXPECT_LT(passed, 150u);
}

TEST(EventSim, JitterShiftsButKeepsPulses) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId j = nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  SimConfig config;
  config.jitter_sigma_ps = 0.8;
  config.noise_seed = 5;
  EventSimulator sim(nl, coldflux_library(), config);
  sim.inject_pulse(a, 100.0);
  sim.run_until(200.0);
  const auto& out = sim.pulses(nl.cell(j).outputs[0]);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 104.0, 5.0);
  EXPECT_NE(out[0], 104.0);  // jitter actually applied
}

TEST(EventSim, DeterministicForFixedSeed) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId j = nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  SimConfig config;
  config.jitter_sigma_ps = 1.0;
  config.noise_seed = 12345;
  auto run = [&] {
    EventSimulator sim(nl, coldflux_library(), config);
    for (int i = 0; i < 50; ++i) sim.inject_pulse(a, 10.0 * (i + 1));
    sim.run_until(1000.0);
    return sim.pulses(nl.cell(j).outputs[0]);
  };
  EXPECT_EQ(run(), run());
}

TEST(EventSim, RunUntilAdvancesTime) {
  Netlist nl("t");
  nl.add_primary_input("a");
  EventSimulator sim(nl, coldflux_library(), quiet());
  sim.run_until(123.0);
  EXPECT_DOUBLE_EQ(sim.now(), 123.0);
  EXPECT_THROW(sim.inject_pulse(0, 50.0), ContractViolation);  // in the past
}

}  // namespace
}  // namespace sfqecc::sim
