// Cross-validation of the fast behavioural evaluator against the reference
// pulse-level simulator: frame-equivalent for healthy and dead-fault chips on
// balanced netlists — including exhaustive per-cell kill agreement.
#include "sim/behavioral_eval.hpp"

#include <gtest/gtest.h>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "sim/event_sim.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::sim {
namespace {

using circuit::BuiltEncoder;
using circuit::coldflux_library;
using code::BitVec;

BitVec pulse_frame(const BuiltEncoder& built, const BitVec& message,
                   const std::vector<CellFault>& faults) {
  SimConfig config;
  config.record_pulses = false;
  EventSimulator simulator(built.netlist, coldflux_library(), config);
  for (std::size_t id = 0; id < faults.size(); ++id) simulator.set_fault(id, faults[id]);
  for (std::size_t b = 0; b < message.size(); ++b)
    if (message.get(b)) simulator.inject_pulse(built.message_inputs[b], 100.0);
  const double last = 200.0 * static_cast<double>(built.logic_depth);
  if (built.logic_depth > 0)
    simulator.inject_clock(built.clock_input, 200.0, 200.0, last + 0.5);
  simulator.run_until(std::max(last, 100.0) + 60.0);
  BitVec word(built.codeword_outputs.size());
  for (std::size_t j = 0; j < word.size(); ++j)
    word.set(j, simulator.dc_level(built.codeword_outputs[j]));
  return word;
}

class EnginesAgree : public ::testing::TestWithParam<const char*> {
 protected:
  static code::LinearCode make_code(const std::string& name) {
    if (name == "H74") return code::paper_hamming74();
    if (name == "RM13") return code::paper_rm13();
    return code::paper_hamming84();
  }
};

TEST_P(EnginesAgree, HealthyChipsAllMessages) {
  const code::LinearCode code = make_code(GetParam());
  const BuiltEncoder built = circuit::build_encoder(code, coldflux_library());
  BehavioralEvaluator eval(built.netlist, coldflux_library(), built.logic_depth);
  util::Rng rng(1);
  const std::vector<CellFault> healthy(built.netlist.cell_count());
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec message = BitVec::from_u64(4, m);
    EXPECT_EQ(eval.evaluate(message, rng), pulse_frame(built, message, healthy))
        << GetParam() << " m=" << m;
  }
}

TEST_P(EnginesAgree, ExhaustiveSingleDeadCellAgreement) {
  // For EVERY cell, kill it and compare both engines on every message. This
  // pins the behavioural fault semantics to the reference simulator.
  const code::LinearCode code = make_code(GetParam());
  const BuiltEncoder built = circuit::build_encoder(code, coldflux_library());
  BehavioralEvaluator eval(built.netlist, coldflux_library(), built.logic_depth);
  util::Rng rng(2);
  for (circuit::CellId victim = 0; victim < built.netlist.cell_count(); ++victim) {
    std::vector<CellFault> faults(built.netlist.cell_count());
    faults[victim] = CellFault{FaultMode::kDead, 0.0};
    eval.clear_faults();
    eval.set_fault(victim, faults[victim]);
    for (std::uint64_t m = 0; m < 16; ++m) {
      const BitVec message = BitVec::from_u64(4, m);
      EXPECT_EQ(eval.evaluate(message, rng), pulse_frame(built, message, faults))
          << GetParam() << " dead cell " << built.netlist.cell(victim).name
          << " m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperEncoders, EnginesAgree,
                         ::testing::Values("H74", "H84", "RM13"));

TEST(BehavioralEval, NoEncoderLink) {
  const BuiltEncoder link = circuit::build_no_encoder_link(4, coldflux_library());
  BehavioralEvaluator eval(link.netlist, coldflux_library(), 0);
  util::Rng rng(3);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec message = BitVec::from_u64(4, m);
    EXPECT_EQ(eval.evaluate(message, rng), message);
  }
}

TEST(BehavioralEval, MessageLengthContract) {
  const BuiltEncoder built =
      circuit::build_encoder(code::paper_hamming84(), coldflux_library());
  BehavioralEvaluator eval(built.netlist, coldflux_library(), built.logic_depth);
  util::Rng rng(4);
  EXPECT_THROW(eval.evaluate(BitVec(5), rng), ContractViolation);
}

TEST(BehavioralEval, FlakyFaultsProduceErrorsStatistically) {
  const BuiltEncoder built =
      circuit::build_encoder(code::paper_hamming84(), coldflux_library());
  const code::LinearCode code = code::paper_hamming84();
  BehavioralEvaluator eval(built.netlist, coldflux_library(), built.logic_depth);
  // Make one output-adjacent DFF flaky at p = 0.5.
  circuit::CellId victim = circuit::kInvalidId;
  for (const circuit::Cell& cell : built.netlist.cells())
    if (cell.type == circuit::CellType::kDff) victim = cell.id;
  ASSERT_NE(victim, circuit::kInvalidId);
  eval.set_fault(victim, CellFault{FaultMode::kFlaky, 0.5});
  util::Rng rng(5);
  int errors = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const BitVec message = BitVec::from_u64(4, rng.below(16));
    if (eval.evaluate(message, rng) != code.encode(message)) ++errors;
  }
  EXPECT_GT(errors, 50);
  EXPECT_LT(errors, 350);
}

}  // namespace
}  // namespace sfqecc::sim
