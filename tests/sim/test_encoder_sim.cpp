// Functional-equivalence tests: the synthesized SFQ netlists, simulated at
// pulse level with a real clock tree, must compute exactly the codes'
// encoding maps — for every message, including back-to-back streaming.
#include <gtest/gtest.h>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "sim/event_sim.hpp"

namespace sfqecc::sim {
namespace {

using circuit::BuiltEncoder;
using circuit::coldflux_library;
using code::BitVec;

constexpr double kPeriod = 200.0;  // 5 GHz

/// Drives one message through an encoder netlist and reads the DC levels.
BitVec run_frame(const BuiltEncoder& built, const BitVec& message, double jitter = 0.0,
                 std::uint64_t seed = 1) {
  SimConfig config;
  config.jitter_sigma_ps = jitter;
  config.noise_seed = seed;
  EventSimulator sim(built.netlist, coldflux_library(), config);
  for (std::size_t i = 0; i < message.size(); ++i)
    if (message.get(i)) sim.inject_pulse(built.message_inputs[i], 100.0);
  const double last = kPeriod * static_cast<double>(built.logic_depth);
  if (built.logic_depth > 0)
    sim.inject_clock(built.clock_input, kPeriod, kPeriod, last + 0.5);
  sim.run_until(std::max(last, 100.0) + 60.0);
  BitVec out(built.codeword_outputs.size());
  for (std::size_t j = 0; j < out.size(); ++j)
    out.set(j, sim.dc_level(built.codeword_outputs[j]));
  return out;
}

class PaperEncoderFunctional
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(PaperEncoderFunctional, NetlistMatchesCodeForMessage) {
  const auto& [name, message_value] = GetParam();
  const code::LinearCode code = [&] {
    if (std::string(name) == "H74") return code::paper_hamming74();
    if (std::string(name) == "H84") return code::paper_hamming84();
    return code::paper_rm13();
  }();
  const BuiltEncoder built = circuit::build_encoder(code, coldflux_library());
  const BitVec message = BitVec::from_u64(4, message_value);
  EXPECT_EQ(run_frame(built, message), code.encode(message))
      << name << " message " << message_value;
}

INSTANTIATE_TEST_SUITE_P(
    AllSixteenMessages, PaperEncoderFunctional,
    ::testing::Combine(::testing::Values("H74", "H84", "RM13"),
                       ::testing::Range<std::uint64_t>(0, 16)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

TEST(EncoderSim, Fig3Vector) {
  // Fig. 3: message 1011 applied ~0.1 ns, codeword 01100110 ready at 0.4 ns
  // (two clock cycles at 5 GHz).
  const BuiltEncoder built =
      circuit::build_encoder(code::paper_hamming84(), coldflux_library());
  EXPECT_EQ(built.logic_depth, 2u);
  EXPECT_EQ(run_frame(built, BitVec::from_string("1011")).to_string(), "01100110");
}

TEST(EncoderSim, SurvivesThermalJitter) {
  // 0.8 ps jitter at 4.2 K must not break functionality at a 200 ps period.
  const BuiltEncoder built =
      circuit::build_encoder(code::paper_hamming84(), coldflux_library());
  const code::LinearCode code = code::paper_hamming84();
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec message = BitVec::from_u64(4, m);
    EXPECT_EQ(run_frame(built, message, 0.8, 1000 + m), code.encode(message));
  }
}

TEST(EncoderSim, NoEncoderLinkPassesBitsThrough) {
  const BuiltEncoder link = circuit::build_no_encoder_link(4, coldflux_library());
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitVec message = BitVec::from_u64(4, m);
    EXPECT_EQ(run_frame(link, message), message);
  }
}

TEST(EncoderSim, StreamingOneMessagePerClock) {
  // The balanced encoder is a true pipeline: a new message can enter every
  // clock cycle; codeword i appears after clock i+2. Read differentially
  // (toggling SFQ-to-DC drivers).
  const code::LinearCode code = code::paper_hamming84();
  const BuiltEncoder built = circuit::build_encoder(code, coldflux_library());
  const std::vector<BitVec> messages = {
      BitVec::from_string("1011"), BitVec::from_string("0110"),
      BitVec::from_string("1111"), BitVec::from_string("0001"),
      BitVec::from_string("1000"), BitVec::from_string("0000"),
      BitVec::from_string("1101")};

  SimConfig config;
  EventSimulator sim(built.netlist, coldflux_library(), config);
  // Message i is applied in the window before clock i+1.
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const double t = 100.0 + kPeriod * static_cast<double>(i);
    for (std::size_t b = 0; b < 4; ++b)
      if (messages[i].get(b)) sim.inject_pulse(built.message_inputs[b], t);
  }
  const std::size_t total_clocks = messages.size() + built.logic_depth;
  sim.inject_clock(built.clock_input, kPeriod, kPeriod,
                   kPeriod * static_cast<double>(total_clocks) + 0.5);

  // Sample each output after every clock edge; the differential read of
  // window i+2 is codeword i.
  std::vector<BitVec> samples;
  for (std::size_t c = 0; c <= total_clocks; ++c) {
    sim.run_until(kPeriod * static_cast<double>(c) + 80.0);
    BitVec levels(8);
    for (std::size_t j = 0; j < 8; ++j)
      levels.set(j, sim.dc_level(built.codeword_outputs[j]));
    samples.push_back(levels);
  }
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const BitVec word = samples[i + 2] ^ samples[i + 1];  // differential read
    EXPECT_EQ(word, code.encode(messages[i])) << "streamed message " << i;
  }
}

TEST(EncoderSim, UnbalancedEncoderBreaksUnderStreaming) {
  // Ablation: without path-balancing DFFs the pipeline mixes consecutive
  // messages — the design-choice justification for Table II's DFF overhead.
  circuit::EncoderBuildOptions options;
  options.balance_paths = false;
  const code::LinearCode code = code::paper_hamming84();
  const BuiltEncoder built = circuit::build_encoder(code, coldflux_library(), options);

  SimConfig config;
  EventSimulator sim(built.netlist, coldflux_library(), config);
  const std::vector<BitVec> messages = {BitVec::from_string("1011"),
                                        BitVec::from_string("0110"),
                                        BitVec::from_string("1100")};
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const double t = 100.0 + kPeriod * static_cast<double>(i);
    for (std::size_t b = 0; b < 4; ++b)
      if (messages[i].get(b)) sim.inject_pulse(built.message_inputs[b], t);
  }
  sim.inject_clock(built.clock_input, kPeriod, kPeriod, kPeriod * 5 + 0.5);
  std::vector<BitVec> samples;
  for (std::size_t c = 0; c <= 5; ++c) {
    sim.run_until(kPeriod * static_cast<double>(c) + 80.0);
    BitVec levels(8);
    for (std::size_t j = 0; j < 8; ++j)
      levels.set(j, sim.dc_level(built.codeword_outputs[j]));
    samples.push_back(levels);
  }
  bool any_wrong = false;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    // Try both plausible read windows; the unbalanced circuit satisfies
    // neither consistently.
    const BitVec w1 = samples[i + 2] ^ samples[i + 1];
    if (w1 != code.encode(messages[i])) any_wrong = true;
  }
  EXPECT_TRUE(any_wrong) << "unbalanced encoder unexpectedly streamed correctly";
}

TEST(EncoderSim, DeadOutputChainDffCausesSingleBitError) {
  // A dead cell adjacent to one output corrupts exactly that codeword bit —
  // the correctable failure class of Fig. 5.
  const code::LinearCode code = code::paper_hamming84();
  const BuiltEncoder built = circuit::build_encoder(code, coldflux_library());
  // Find a DFF that drives an SFQ-to-DC converter directly.
  circuit::CellId victim = circuit::kInvalidId;
  std::size_t victim_output = 0;
  for (const circuit::Cell& cell : built.netlist.cells()) {
    if (cell.type != circuit::CellType::kDff) continue;
    const auto& sinks = built.netlist.net(cell.outputs[0]).sinks;
    if (sinks.size() == 1 &&
        built.netlist.cell(sinks[0].cell).type == circuit::CellType::kSfqToDc) {
      victim = cell.id;
      for (std::size_t j = 0; j < built.codeword_outputs.size(); ++j)
        if (built.netlist.net(built.codeword_outputs[j]).driver_cell == sinks[0].cell)
          victim_output = j;
      break;
    }
  }
  ASSERT_NE(victim, circuit::kInvalidId);

  SimConfig config;
  EventSimulator sim(built.netlist, coldflux_library(), config);
  sim.set_fault(victim, CellFault{FaultMode::kDead, 0.0});
  const BitVec message = BitVec::from_string("1111");
  for (std::size_t b = 0; b < 4; ++b)
    if (message.get(b)) sim.inject_pulse(built.message_inputs[b], 100.0);
  sim.inject_clock(built.clock_input, kPeriod, kPeriod, 2 * kPeriod + 0.5);
  sim.run_until(2 * kPeriod + 60.0);
  BitVec word(8);
  for (std::size_t j = 0; j < 8; ++j)
    word.set(j, sim.dc_level(built.codeword_outputs[j]));
  const BitVec expected = code.encode(message);
  const BitVec diff = word ^ expected;
  EXPECT_EQ(diff.weight(), 1u);
  EXPECT_TRUE(diff.get(victim_output));
}

}  // namespace
}  // namespace sfqecc::sim
