// Shared SimTables tests: simulator instances leasing one immutable table
// set must behave exactly like instances that flattened the netlist
// privately — including across different configs (a recording instance and
// a fast-path instance on the same tables) — and must keep per-instance
// fault state fully independent.
#include <gtest/gtest.h>

#include <memory>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"
#include "sim/event_sim.hpp"

namespace sfqecc::sim {
namespace {

using circuit::BuiltEncoder;
using circuit::coldflux_library;

code::BitVec run_frame(EventSimulator& sim, const BuiltEncoder& built,
                       std::uint64_t message) {
  sim.reset();
  for (std::size_t b = 0; b < built.message_inputs.size(); ++b)
    if ((message >> b) & 1) sim.inject_pulse(built.message_inputs[b], 100.0);
  const double last_clock = 200.0 * static_cast<double>(built.logic_depth);
  sim.inject_clock(built.clock_input, 200.0, 200.0, last_clock + 0.5);
  sim.run_until(last_clock + 60.0);
  code::BitVec out(built.codeword_outputs.size());
  for (std::size_t j = 0; j < built.codeword_outputs.size(); ++j)
    out.set(j, sim.dc_level(built.codeword_outputs[j]));
  return out;
}

TEST(SimTablesTest, SharedTablesMatchPrivateConstruction) {
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming84(), lib);
  const auto tables = std::make_shared<SimTables>(built.netlist, lib);

  SimConfig config;
  config.record_pulses = false;
  EventSimulator shared_a(tables, config);
  EventSimulator shared_b(tables, config);
  EventSimulator private_sim(built.netlist, lib, config);

  for (std::uint64_t m = 0; m < 16; ++m) {
    const code::BitVec expected = run_frame(private_sim, built, m);
    EXPECT_EQ(run_frame(shared_a, built, m), expected) << "message " << m;
    EXPECT_EQ(run_frame(shared_b, built, m), expected) << "message " << m;
  }
}

TEST(SimTablesTest, MixedConfigsShareTables) {
  // A recording (expansion-off) and a fast-path (expansion-on) instance on
  // the same tables must agree — the expansion decision is per instance,
  // not baked into the shared tables.
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming74(), lib);
  const auto tables = std::make_shared<SimTables>(built.netlist, lib);

  SimConfig fast;
  fast.record_pulses = false;
  SimConfig recording;
  recording.record_pulses = true;
  EventSimulator fast_sim(tables, fast);
  EventSimulator recording_sim(tables, recording);

  for (std::uint64_t m = 0; m < 16; ++m)
    EXPECT_EQ(run_frame(fast_sim, built, m), run_frame(recording_sim, built, m))
        << "message " << m;
  // The recording instance kept pulse history (the clock train of the last
  // frame at least); sharing tables must not disable recording.
  EXPECT_FALSE(recording_sim.pulses(built.clock_input).empty());
}

TEST(SimTablesTest, FaultStateIsPerInstance) {
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming84(), lib);
  const auto tables = std::make_shared<SimTables>(built.netlist, lib);

  SimConfig config;
  config.record_pulses = false;
  EventSimulator healthy(tables, config);
  EventSimulator broken(tables, config);

  CellFault dead;
  dead.mode = FaultMode::kDead;
  // Kill every cell of one instance: its frames go all-zero while the
  // sibling on the same tables stays fully functional.
  for (circuit::CellId id = 0; id < built.netlist.cell_count(); ++id)
    broken.set_fault(id, dead);

  bool saw_nonzero = false;
  for (std::uint64_t m = 1; m < 16; ++m) {
    const code::BitVec healthy_out = run_frame(healthy, built, m);
    const code::BitVec broken_out = run_frame(broken, built, m);
    EXPECT_EQ(broken_out.weight(), 0u) << "message " << m;
    saw_nonzero |= healthy_out.weight() > 0;
  }
  EXPECT_TRUE(saw_nonzero);

  // Clearing the faults restores the instance — the shared tables were
  // never poisoned by the other instance's revalidation.
  for (circuit::CellId id = 0; id < built.netlist.cell_count(); ++id)
    broken.set_fault(id, CellFault{});
  for (std::uint64_t m = 0; m < 16; ++m)
    EXPECT_EQ(run_frame(broken, built, m), run_frame(healthy, built, m));
}

TEST(SimTablesTest, TablesOutliveViaSharedOwnership) {
  // The simulator co-owns the tables: dropping the caller's handle must not
  // invalidate a live instance.
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming74(), lib);
  auto tables = std::make_shared<SimTables>(built.netlist, lib);
  SimConfig config;
  config.record_pulses = false;
  EventSimulator sim(tables, config);
  const code::BitVec before = run_frame(sim, built, 5);
  tables.reset();
  EXPECT_EQ(run_frame(sim, built, 5), before);
}

}  // namespace
}  // namespace sfqecc::sim
