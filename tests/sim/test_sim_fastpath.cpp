// The event simulator's static fan-out expansion (active when pulse
// recording is off and jitter is zero) must be behaviourally invisible:
// frames simulated with the expansion enabled must produce exactly the DC
// output levels of the fully dynamic cell-by-cell simulation, for healthy
// chips and for chips with dead cells anywhere in the netlist (dead faults
// consume no randomness, so both paths are strictly deterministic).
#include <gtest/gtest.h>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"

namespace sfqecc::sim {
namespace {

using circuit::BuiltEncoder;
using circuit::coldflux_library;

code::BitVec run_frame(EventSimulator& sim, const BuiltEncoder& built,
                       std::uint64_t message) {
  sim.reset();
  for (std::size_t b = 0; b < built.message_inputs.size(); ++b)
    if ((message >> b) & 1) sim.inject_pulse(built.message_inputs[b], 100.0);
  const double last_clock = 200.0 * static_cast<double>(built.logic_depth);
  sim.inject_clock(built.clock_input, 200.0, 200.0, last_clock + 0.5);
  sim.run_until(last_clock + 60.0);
  code::BitVec out(built.codeword_outputs.size());
  for (std::size_t j = 0; j < built.codeword_outputs.size(); ++j)
    out.set(j, sim.dc_level(built.codeword_outputs[j]));
  return out;
}

TEST(SimFastPath, ExpansionMatchesDynamicOnHealthyChip) {
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming84(), lib);

  SimConfig fast_config;
  fast_config.record_pulses = false;  // expansion active
  SimConfig slow_config;
  slow_config.record_pulses = true;  // expansion disabled, exact cell-by-cell
  EventSimulator fast(built.netlist, lib, fast_config);
  EventSimulator slow(built.netlist, lib, slow_config);

  for (std::uint64_t m = 0; m < 16; ++m)
    EXPECT_EQ(run_frame(fast, built, m), run_frame(slow, built, m)) << "message " << m;
}

TEST(SimFastPath, ExpansionMatchesDynamicWithDeadCells) {
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming84(), lib);

  SimConfig fast_config;
  fast_config.record_pulses = false;
  SimConfig slow_config;
  slow_config.record_pulses = true;
  EventSimulator fast(built.netlist, lib, fast_config);
  EventSimulator slow(built.netlist, lib, slow_config);

  util::Rng rng(4242);
  for (int chip = 0; chip < 64; ++chip) {
    // Kill a random subset of cells (including, sometimes, clock-tree
    // splitters — which must force the expansion's dynamic fallback).
    CellFault dead;
    dead.mode = FaultMode::kDead;
    for (circuit::CellId id = 0; id < built.netlist.cell_count(); ++id) {
      const CellFault fault = rng.bernoulli(0.15) ? dead : CellFault{};
      fast.set_fault(id, fault);
      slow.set_fault(id, fault);
    }
    for (std::uint64_t m : {std::uint64_t{0}, std::uint64_t{5}, std::uint64_t{15}})
      EXPECT_EQ(run_frame(fast, built, m), run_frame(slow, built, m))
          << "chip " << chip << " message " << m;
  }
}

TEST(SimFastPath, SnapshotReplayMatchesReinjection) {
  const auto& lib = coldflux_library();
  const BuiltEncoder built = circuit::build_encoder(code::paper_hamming74(), lib);

  SimConfig config;
  config.record_pulses = false;
  EventSimulator sim(built.netlist, lib, config);

  // Capture the clock schedule once, then verify replaying it gives the
  // same frame outputs as re-injecting the train from scratch.
  const double last_clock = 200.0 * static_cast<double>(built.logic_depth);
  sim.reset();
  sim.inject_clock(built.clock_input, 200.0, 200.0, last_clock + 0.5);
  EventSimulator::QueueSnapshot snapshot;
  sim.snapshot_queue(snapshot);

  for (std::uint64_t m = 0; m < 16; ++m) {
    const code::BitVec reinjected = run_frame(sim, built, m);

    sim.reset();
    sim.restore_queue(snapshot);
    for (std::size_t b = 0; b < built.message_inputs.size(); ++b)
      if ((m >> b) & 1) sim.inject_pulse(built.message_inputs[b], 100.0);
    sim.run_until(last_clock + 60.0);
    code::BitVec replayed(built.codeword_outputs.size());
    for (std::size_t j = 0; j < built.codeword_outputs.size(); ++j)
      replayed.set(j, sim.dc_level(built.codeword_outputs[j]));

    EXPECT_EQ(replayed, reinjected) << "message " << m;
  }
}

}  // namespace
}  // namespace sfqecc::sim
