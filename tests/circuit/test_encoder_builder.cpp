// End-to-end synthesis tests: the built netlists must match the paper's
// Table II cell-for-cell and remain structurally legal.
#include <gtest/gtest.h>

#include "circuit/encoder_builder.hpp"
#include "circuit/netlist_stats.hpp"
#include "code/code3832.hpp"
#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "core/paper_constants.hpp"

namespace sfqecc::circuit {
namespace {

struct TableIICase {
  const char* name;
  std::size_t xors, dffs, splitters, converters, jjs;
  double power_uw, area_mm2;
};

class TableIIExact : public ::testing::TestWithParam<TableIICase> {};

TEST_P(TableIIExact, SynthesisReproducesPaperRow) {
  const TableIICase& expected = GetParam();
  const CellLibrary& lib = coldflux_library();

  code::LinearCode code = [&] {
    if (std::string(expected.name) == "RM(1,3)") return code::paper_rm13();
    if (std::string(expected.name) == "Hamming(7,4)") return code::paper_hamming74();
    return code::paper_hamming84();
  }();

  const BuiltEncoder built = build_encoder(code, lib);
  built.netlist.validate(true);
  EXPECT_TRUE(built.netlist.obeys_fanout_discipline());
  EXPECT_EQ(built.logic_depth, 2u);

  const NetlistStats stats = compute_stats(built.netlist, lib, built.clock_input);
  EXPECT_EQ(stats.count(CellType::kXor), expected.xors);
  EXPECT_EQ(stats.count(CellType::kDff), expected.dffs);
  EXPECT_EQ(stats.count(CellType::kSplitter), expected.splitters);
  EXPECT_EQ(stats.count(CellType::kSfqToDc), expected.converters);
  EXPECT_EQ(stats.jj_count, expected.jjs);
  EXPECT_NEAR(stats.static_power_uw, expected.power_uw, 0.05);
  EXPECT_NEAR(stats.area_mm2, expected.area_mm2, 0.0005);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIIExact,
    ::testing::Values(TableIICase{"RM(1,3)", 8, 7, 26, 8, 305, 101.5, 0.193},
                      TableIICase{"Hamming(7,4)", 5, 8, 20, 7, 247, 81.7, 0.158},
                      TableIICase{"Hamming(8,4)", 6, 8, 23, 8, 278, 92.3, 0.177}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(EncoderBuilder, Hamming84SplitterBreakdown) {
  // Section III: 10 data splitters (Fig. 2) + 13 clock splitters.
  const CellLibrary& lib = coldflux_library();
  const code::LinearCode h84 = code::paper_hamming84();
  const BuiltEncoder built = build_encoder(h84, lib);
  const NetlistStats stats = compute_stats(built.netlist, lib, built.clock_input);
  EXPECT_EQ(stats.data_splitters, core::paper::kH84DataSplitters);
  EXPECT_EQ(stats.clock_splitters, core::paper::kH84ClockSplitters);
}

TEST(EncoderBuilder, ClockSinksMatchClockedCells) {
  // A binary splitter tree over n sinks has n-1 splitters: clock splitter
  // count must equal (XOR + DFF) - 1 for every paper encoder.
  const CellLibrary& lib = coldflux_library();
  for (auto make : {code::paper_hamming74, code::paper_hamming84, code::paper_rm13}) {
    const code::LinearCode code = make();
    const BuiltEncoder built = build_encoder(code, lib);
    const NetlistStats stats = compute_stats(built.netlist, lib, built.clock_input);
    EXPECT_EQ(stats.clock_splitters,
              stats.count(CellType::kXor) + stats.count(CellType::kDff) - 1);
  }
}

TEST(EncoderBuilder, NoEncoderLink) {
  const CellLibrary& lib = coldflux_library();
  const BuiltEncoder link = build_no_encoder_link(4, lib);
  link.netlist.validate(false);
  EXPECT_EQ(link.logic_depth, 0u);
  EXPECT_EQ(link.clock_input, kInvalidId);
  EXPECT_EQ(link.netlist.count_cells(CellType::kSfqToDc), 4u);
  EXPECT_EQ(link.netlist.cell_count(), 4u);  // nothing but converters
}

TEST(EncoderBuilder, UnbalancedVariantDropsDffs) {
  const CellLibrary& lib = coldflux_library();
  const code::LinearCode h84 = code::paper_hamming84();
  EncoderBuildOptions options;
  options.balance_paths = false;
  const BuiltEncoder built = build_encoder(h84, lib, options);
  built.netlist.validate(true);
  EXPECT_EQ(built.netlist.count_cells(CellType::kDff), 0u);
  EXPECT_EQ(built.netlist.count_cells(CellType::kXor), 6u);
}

TEST(EncoderBuilder, TreeSynthesisOptionRespected) {
  const CellLibrary& lib = coldflux_library();
  const code::LinearCode h84 = code::paper_hamming84();
  EncoderBuildOptions options;
  options.algorithm = SynthesisAlgorithm::kTree;
  const BuiltEncoder built = build_encoder(h84, lib, options);
  EXPECT_EQ(built.netlist.count_cells(CellType::kXor), 8u);  // no sharing
}

TEST(EncoderBuilder, BaselineCode3832Synthesizes) {
  // The (38,32) baseline of [14] runs through the same pipeline; its scale
  // (84 XOR / 135 DFF in the original) is reproduced in shape by our
  // synthesis — exact counts depend on the unpublished column order.
  const CellLibrary& lib = coldflux_library();
  const code::LinearCode baseline = code::code3832();
  const BuiltEncoder built = build_encoder(baseline, lib);
  built.netlist.validate(true);
  EXPECT_TRUE(built.netlist.obeys_fanout_discipline());
  const NetlistStats stats = compute_stats(built.netlist, lib, built.clock_input);
  EXPECT_GT(stats.count(CellType::kXor), 30u);
  EXPECT_GT(stats.count(CellType::kDff), 20u);
  EXPECT_EQ(stats.count(CellType::kSfqToDc), 38u);
}

TEST(EncoderBuilder, MessageAndOutputPortsOrdered) {
  const CellLibrary& lib = coldflux_library();
  const BuiltEncoder built = build_encoder(code::paper_hamming84(), lib);
  ASSERT_EQ(built.message_inputs.size(), 4u);
  ASSERT_EQ(built.codeword_outputs.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(built.netlist.net(built.message_inputs[i]).name,
              "m" + std::to_string(i + 1));
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_EQ(built.netlist.net(built.codeword_outputs[j]).name,
              "c" + std::to_string(j + 1));
}

}  // namespace
}  // namespace sfqecc::circuit
