#include "circuit/xor_synth.hpp"

#include <gtest/gtest.h>

#include "code/code3832.hpp"
#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::circuit {
namespace {

using code::BitVec;
using code::Gf2Matrix;

/// Evaluation of every program must equal plain matrix multiplication.
void expect_program_matches_matrix(const XorProgram& program, const Gf2Matrix& g) {
  for (std::uint64_t m = 0; m < (1ULL << g.rows()); ++m) {
    const BitVec msg = BitVec::from_u64(g.rows(), m);
    EXPECT_EQ(program.evaluate(msg), g.mul_left(msg)) << "message " << m;
  }
}

TEST(XorSynth, PaarHamming84CountsAndDepth) {
  const auto g = code::paper_hamming84().generator();
  const XorProgram p = synthesize_paar(g);
  EXPECT_EQ(p.xor_count(), 6u);  // Table II
  EXPECT_EQ(p.depth(), 2u);      // "logic depth is equal to two"
  expect_program_matches_matrix(p, g);
}

TEST(XorSynth, PaarHamming74CountsAndDepth) {
  const auto g = code::paper_hamming74().generator();
  const XorProgram p = synthesize_paar(g);
  EXPECT_EQ(p.xor_count(), 5u);
  EXPECT_EQ(p.depth(), 2u);
  expect_program_matches_matrix(p, g);
}

TEST(XorSynth, PaarRm13CountsAndDepth) {
  const auto g = code::paper_rm13().generator();
  const XorProgram p = synthesize_paar(g);
  EXPECT_EQ(p.xor_count(), 8u);
  EXPECT_EQ(p.depth(), 2u);
  expect_program_matches_matrix(p, g);
}

TEST(XorSynth, PaarIsDeterministic) {
  const auto g = code::paper_rm13().generator();
  const XorProgram a = synthesize_paar(g);
  const XorProgram b = synthesize_paar(g);
  ASSERT_EQ(a.xor_count(), b.xor_count());
  for (std::size_t i = 0; i < a.ops().size(); ++i) {
    EXPECT_EQ(a.ops()[i].a, b.ops()[i].a);
    EXPECT_EQ(a.ops()[i].b, b.ops()[i].b);
  }
}

TEST(XorSynth, TreeNoSharingCounts) {
  // Without sharing: sum over columns of (weight - 1).
  const auto g = code::paper_hamming84().generator();
  const XorProgram p = synthesize_tree(g);
  // Column weights: c1..c8 = 3,3,1,3,1,1,1,3 -> XORs = 2+2+0+2+0+0+0+2 = 8.
  EXPECT_EQ(p.xor_count(), 8u);
  EXPECT_EQ(p.depth(), 2u);  // balanced trees of 3 leaves have depth 2
  expect_program_matches_matrix(p, g);
}

TEST(XorSynth, ChainDepthEqualsWeightMinusOne) {
  const auto g = code::paper_rm13().generator();
  const XorProgram p = synthesize_chain(g);
  EXPECT_EQ(p.depth(), 3u);  // c8 has weight 4
  expect_program_matches_matrix(p, g);
}

TEST(XorSynth, PaarNeverWorseThanTree) {
  util::Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t k = 3 + rng.below(4);
    const std::size_t n = k + 1 + rng.below(6);
    Gf2Matrix g(k, n);
    for (std::size_t c = 0; c < n; ++c) {
      // Ensure nonzero columns.
      bool any = false;
      for (std::size_t r = 0; r < k; ++r) {
        const bool bit = rng.bernoulli(0.5);
        g.set(r, c, bit);
        any = any || bit;
      }
      if (!any) g.set(rng.below(k), c, true);
    }
    const XorProgram paar = synthesize_paar(g);
    const XorProgram tree = synthesize_tree(g);
    EXPECT_LE(paar.xor_count(), tree.xor_count());
    EXPECT_EQ(paar.depth(), tree.depth()) << "Paar is depth-bounded to the minimum";
    expect_program_matches_matrix(paar, g);
    expect_program_matches_matrix(tree, g);
    expect_program_matches_matrix(synthesize_chain(g), g);
  }
}

TEST(XorSynth, OptimalMatchesPaarOnPaperCodes) {
  // Exhaustive search confirms Paar's gate counts are optimal (even allowing
  // cancellation) for the two Hamming encoders.
  const XorProgram h74 = synthesize_optimal(code::paper_hamming74().generator(), 5);
  EXPECT_EQ(h74.xor_count(), 5u);
  expect_program_matches_matrix(h74, code::paper_hamming74().generator());

  const XorProgram h84 = synthesize_optimal(code::paper_hamming84().generator(), 6);
  EXPECT_EQ(h84.xor_count(), 6u);
  expect_program_matches_matrix(h84, code::paper_hamming84().generator());
}

TEST(XorSynth, OptimalNeverWorseThanPaarRandomized) {
  util::Rng rng(22);
  for (int trial = 0; trial < 10; ++trial) {
    Gf2Matrix g(4, 5);
    for (std::size_t c = 0; c < 5; ++c) {
      bool any = false;
      for (std::size_t r = 0; r < 4; ++r) {
        const bool bit = rng.bernoulli(0.5);
        g.set(r, c, bit);
        any = any || bit;
      }
      if (!any) g.set(rng.below(4), c, true);
    }
    const XorProgram paar = synthesize_paar(g);
    const XorProgram opt = synthesize_optimal(g, paar.xor_count());
    EXPECT_LE(opt.xor_count(), paar.xor_count());
    expect_program_matches_matrix(opt, g);
  }
}

TEST(XorSynth, ZeroColumnRejected) {
  Gf2Matrix g(2, 2);
  g.set(0, 0, true);  // column 1 is zero
  EXPECT_THROW(synthesize_paar(g), ContractViolation);
  EXPECT_THROW(synthesize_tree(g), ContractViolation);
  EXPECT_THROW(synthesize_chain(g), ContractViolation);
}

TEST(XorSynth, SignalSupportTracksColumns) {
  const auto g = code::paper_hamming84().generator();
  const XorProgram p = synthesize_paar(g);
  for (std::size_t j = 0; j < p.outputs().size(); ++j) {
    const BitVec support = p.signal_support(p.outputs()[j]);
    EXPECT_EQ(support, g.column(j)) << "output " << j;
  }
}

TEST(XorSynth, LargeBaselineCodeSynthesizes) {
  // The (38,32) baseline of [14]: synthesis must stay cancellation-free
  // correct. Check via 100 random messages (2^32 is too many to enumerate).
  const auto g = code::code3832().generator();
  const XorProgram p = synthesize_paar(g);
  EXPECT_GT(p.xor_count(), 0u);
  util::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec msg(32);
    for (std::size_t i = 0; i < 32; ++i) msg.set(i, rng.bernoulli(0.5));
    EXPECT_EQ(p.evaluate(msg), g.mul_left(msg));
  }
}

TEST(XorSynth, DepthZeroForIdentity) {
  const Gf2Matrix id = Gf2Matrix::identity(4);
  const XorProgram p = synthesize_paar(id);
  EXPECT_EQ(p.xor_count(), 0u);
  EXPECT_EQ(p.depth(), 0u);
}

}  // namespace
}  // namespace sfqecc::circuit
