#include "circuit/netlist.hpp"

#include <gtest/gtest.h>

#include "circuit/cell_library.hpp"
#include "circuit/netlist_stats.hpp"
#include "util/expect.hpp"

namespace sfqecc::circuit {
namespace {

TEST(Netlist, EmptyIsValid) {
  Netlist nl("empty");
  nl.validate();
  EXPECT_EQ(nl.cell_count(), 0u);
  EXPECT_EQ(nl.net_count(), 0u);
}

TEST(Netlist, AddCellWiresPortsBothWays) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId jtl = nl.add_cell(CellType::kJtl, "jtl0", {a}, {"a_d"});
  const Cell& cell = nl.cell(jtl);
  EXPECT_EQ(cell.inputs[0], a);
  EXPECT_EQ(nl.net(a).sinks.size(), 1u);
  EXPECT_EQ(nl.net(a).sinks[0].cell, jtl);
  EXPECT_EQ(nl.net(cell.outputs[0]).driver_cell, jtl);
  nl.validate(false);
}

TEST(Netlist, ArityEnforced) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  EXPECT_THROW(nl.add_cell(CellType::kXor, "x", {a}, {"o"}), ContractViolation);
  EXPECT_THROW(nl.add_cell(CellType::kSplitter, "s", {a}, {"o"}), ContractViolation);
  EXPECT_THROW(nl.add_cell(CellType::kJtl, "j", {a}, {"o1", "o2"}), ContractViolation);
}

TEST(Netlist, ClockConnection) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId clk = nl.add_primary_input("clk");
  const CellId dff = nl.add_cell(CellType::kDff, "dff0", {a}, {"q"});
  EXPECT_THROW(nl.validate(true), ContractViolation);  // clock missing
  nl.connect_clock(dff, clk);
  nl.validate(true);
  EXPECT_EQ(nl.cell(dff).clock, clk);
  // Double connection rejected; unclocked cells have no clock port.
  EXPECT_THROW(nl.connect_clock(dff, clk), ContractViolation);
  const CellId jtl = nl.add_cell(CellType::kJtl, "jtl0", {a}, {"a_d"});
  EXPECT_THROW(nl.connect_clock(jtl, clk), ContractViolation);
}

TEST(Netlist, MoveSinkRewires) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_net("b");
  const CellId jtl = nl.add_cell(CellType::kJtl, "jtl0", {a}, {"o"});
  nl.move_sink(a, b, Sink{jtl, 0});
  EXPECT_EQ(nl.cell(jtl).inputs[0], b);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  ASSERT_EQ(nl.net(b).sinks.size(), 1u);
  EXPECT_THROW(nl.move_sink(a, b, Sink{jtl, 0}), ContractViolation);  // gone
}

TEST(Netlist, FanoutQueries) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  nl.add_cell(CellType::kJtl, "j1", {a}, {"o1"});
  EXPECT_TRUE(nl.obeys_fanout_discipline());
  nl.add_cell(CellType::kJtl, "j2", {a}, {"o2"});
  EXPECT_FALSE(nl.obeys_fanout_discipline());
  EXPECT_EQ(nl.max_fanout(), 2u);
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId c1 = nl.add_cell(CellType::kJtl, "j1", {a}, {"o1"});
  const CellId c2 = nl.add_cell(CellType::kJtl, "j2", {nl.cell(c1).outputs[0]}, {"o2"});
  const CellId c3 = nl.add_cell(CellType::kJtl, "j3", {nl.cell(c2).outputs[0]}, {"o3"});
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](CellId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(c1), pos(c2));
  EXPECT_LT(pos(c2), pos(c3));
}

TEST(Netlist, CountCells) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId s = nl.add_cell(CellType::kSplitter, "s", {a}, {"o1", "o2"});
  nl.add_cell(CellType::kJtl, "j", {nl.cell(s).outputs[0]}, {"o3"});
  EXPECT_EQ(nl.count_cells(CellType::kSplitter), 1u);
  EXPECT_EQ(nl.count_cells(CellType::kJtl), 1u);
  EXPECT_EQ(nl.count_cells(CellType::kXor), 0u);
}

TEST(Netlist, PrimaryOutputs) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId j = nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  nl.mark_primary_output(nl.cell(j).outputs[0]);
  ASSERT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_THROW(nl.mark_primary_output(nl.cell(j).outputs[0]), ContractViolation);
}

TEST(CellLibrary, ColdfluxHasAllTypes) {
  const CellLibrary& lib = coldflux_library();
  for (CellType t : {CellType::kXor, CellType::kDff, CellType::kSplitter,
                     CellType::kSfqToDc, CellType::kJtl, CellType::kMerger,
                     CellType::kTff, CellType::kDcToSfq, CellType::kAnd,
                     CellType::kOr, CellType::kNot}) {
    ASSERT_TRUE(lib.has(t));
    const CellSpec& spec = lib.spec(t);
    EXPECT_GT(spec.jj_count, 0u);
    EXPECT_GT(spec.static_power_uw, 0.0);
    EXPECT_GT(spec.area_mm2, 0.0);
    EXPECT_GT(spec.delay_ps, 0.0);
    EXPECT_GT(spec.ppv_threshold, 0.0);
  }
}

TEST(CellLibrary, TableIICalibration) {
  // The per-cell JJ counts are the exact solution of Table II (DESIGN.md §3).
  const CellLibrary& lib = coldflux_library();
  EXPECT_EQ(lib.spec(CellType::kXor).jj_count, 11u);
  EXPECT_EQ(lib.spec(CellType::kDff).jj_count, 7u);
  EXPECT_EQ(lib.spec(CellType::kSplitter).jj_count, 4u);
  EXPECT_EQ(lib.spec(CellType::kSfqToDc).jj_count, 8u);
}

TEST(NetlistStats, AggregatesOverCells) {
  const CellLibrary& lib = coldflux_library();
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const CellId s = nl.add_cell(CellType::kSplitter, "s", {a}, {"o1", "o2"});
  nl.add_cell(CellType::kSfqToDc, "c1", {nl.cell(s).outputs[0]}, {"d1"});
  nl.add_cell(CellType::kSfqToDc, "c2", {nl.cell(s).outputs[1]}, {"d2"});
  const NetlistStats stats = compute_stats(nl, lib);
  EXPECT_EQ(stats.count(CellType::kSplitter), 1u);
  EXPECT_EQ(stats.count(CellType::kSfqToDc), 2u);
  EXPECT_EQ(stats.jj_count, 4u + 2 * 8u);
  EXPECT_NEAR(stats.static_power_uw, 1.4 + 2 * 2.9071428571428571, 1e-9);
  EXPECT_EQ(stats.data_splitters + stats.clock_splitters, 1u);
}

}  // namespace
}  // namespace sfqecc::circuit
