// Tests for the balancing, fan-out legalization and clock-tree passes.
#include <gtest/gtest.h>

#include "circuit/balance.hpp"
#include "circuit/clock_tree.hpp"
#include "circuit/fanout.hpp"
#include "circuit/xor_synth.hpp"
#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::circuit {
namespace {

// ----------------------------------------------------------------- balance --

TEST(Balance, Hamming84NeedsEightDffs) {
  const XorProgram p = synthesize_paar(code::paper_hamming84().generator());
  EXPECT_EQ(balancing_dff_count(p, p.depth()), 8u);  // Table II
}

TEST(Balance, Hamming74NeedsEightDffs) {
  const XorProgram p = synthesize_paar(code::paper_hamming74().generator());
  EXPECT_EQ(balancing_dff_count(p, p.depth()), 8u);
}

TEST(Balance, Rm13NeedsSevenDffs) {
  const XorProgram p = synthesize_paar(code::paper_rm13().generator());
  EXPECT_EQ(balancing_dff_count(p, p.depth()), 7u);
}

TEST(Balance, ChainsAreSharedAcrossConsumers) {
  // In Hamming(8,4) every message bit needs both a depth-1 copy (XOR arm) and
  // a depth-2 copy (pass-through output): one chain of two DFFs each, taps at
  // both depths — not three DFFs.
  const XorProgram p = synthesize_paar(code::paper_hamming84().generator());
  const auto taps = balancing_taps(p, p.depth());
  std::size_t input_chains = 0;
  for (const SignalTaps& st : taps) {
    if (st.signal < 4) {
      ++input_chains;
      EXPECT_EQ(st.native_depth, 0u);
      EXPECT_EQ(st.taps, (std::vector<std::size_t>{1, 2}));
    }
  }
  EXPECT_EQ(input_chains, 4u);
}

TEST(Balance, ExtraPipelineStagesAddDffs) {
  const XorProgram p = synthesize_paar(code::paper_hamming84().generator());
  const std::size_t base = balancing_dff_count(p, p.depth());
  // One extra stage adds one DFF per codeword output.
  EXPECT_EQ(balancing_dff_count(p, p.depth() + 1), base + 8u);
}

TEST(Balance, TargetBelowDepthRejected) {
  const XorProgram p = synthesize_paar(code::paper_hamming84().generator());
  EXPECT_THROW(balancing_taps(p, p.depth() - 1), ContractViolation);
}

TEST(Balance, IdentityProgramNeedsNoDffs) {
  std::vector<SignalRef> outs;
  for (std::size_t i = 0; i < 4; ++i) outs.push_back(SignalRef{false, i});
  const XorProgram p(4, {}, outs);
  EXPECT_EQ(balancing_dff_count(p, 0), 0u);
}

// ------------------------------------------------------------------ fanout --

TEST(Fanout, SplitterTreeCounts) {
  // f sinks need f-1 splitters, any f.
  for (std::size_t f = 2; f <= 9; ++f) {
    Netlist nl("t");
    const NetId a = nl.add_primary_input("a");
    for (std::size_t i = 0; i < f; ++i)
      nl.add_cell(CellType::kJtl, "j" + std::to_string(i), {a}, {"o" + std::to_string(i)});
    const std::size_t inserted = legalize_fanout(nl);
    EXPECT_EQ(inserted, f - 1);
    EXPECT_TRUE(nl.obeys_fanout_discipline());
    nl.validate(false);
    EXPECT_EQ(nl.count_cells(CellType::kSplitter), f - 1);
  }
}

TEST(Fanout, SingleSinkUntouched) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  nl.add_cell(CellType::kJtl, "j", {a}, {"o"});
  EXPECT_EQ(legalize_fanout(nl), 0u);
  EXPECT_EQ(nl.count_cells(CellType::kSplitter), 0u);
}

TEST(Fanout, TreeDepthIsLogarithmic) {
  // 8 sinks: balanced tree of depth 3, not a chain of depth 7.
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  std::vector<CellId> sinks;
  for (std::size_t i = 0; i < 8; ++i)
    sinks.push_back(
        nl.add_cell(CellType::kJtl, "j" + std::to_string(i), {a}, {"o" + std::to_string(i)}));
  legalize_fanout(nl);
  // Depth of each sink = number of splitters between it and `a`.
  for (CellId sink : sinks) {
    std::size_t depth = 0;
    NetId net = nl.cell(sink).inputs[0];
    while (nl.net(net).driver_cell != kInvalidId) {
      ++depth;
      net = nl.cell(nl.net(net).driver_cell).inputs[0];
    }
    EXPECT_EQ(depth, 3u);
  }
}

TEST(Fanout, PreservesConnectivitySemantics) {
  // After legalization every original sink is still reachable from the
  // original driver through splitters only.
  util::Rng rng(31);
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const std::size_t f = 5;
  std::vector<CellId> consumers;
  for (std::size_t i = 0; i < f; ++i)
    consumers.push_back(
        nl.add_cell(CellType::kJtl, "j" + std::to_string(i), {a}, {"o" + std::to_string(i)}));
  legalize_fanout(nl);
  for (CellId consumer : consumers) {
    NetId net = nl.cell(consumer).inputs[0];
    while (nl.net(net).driver_cell != kInvalidId) {
      const Cell& driver = nl.cell(nl.net(net).driver_cell);
      EXPECT_EQ(driver.type, CellType::kSplitter);
      net = driver.inputs[0];
    }
    EXPECT_EQ(net, a);
  }
}

// -------------------------------------------------------------- clock tree --

TEST(ClockTree, AttachesAllClockedCells) {
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  const NetId b = nl.add_primary_input("b");
  nl.add_cell(CellType::kXor, "x", {a, b}, {"o1"});
  nl.add_cell(CellType::kDff, "d", {a}, {"o2"});
  nl.add_cell(CellType::kJtl, "j", {b}, {"o3"});  // unclocked
  const NetId clk = nl.add_primary_input("clk");
  EXPECT_EQ(clocked_cell_count(nl), 2u);
  EXPECT_EQ(attach_clock(nl, clk), 2u);
  nl.validate(true);
  // Re-attaching is a no-op.
  EXPECT_EQ(attach_clock(nl, clk), 0u);
}

TEST(ClockTree, FanoutLegalizationBuildsClockSplitters) {
  // n clocked cells -> n-1 clock splitters after legalization.
  Netlist nl("t");
  const NetId a = nl.add_primary_input("a");
  for (std::size_t i = 0; i < 14; ++i)
    nl.add_cell(CellType::kDff, "d" + std::to_string(i), {a}, {"q" + std::to_string(i)});
  const NetId clk = nl.add_primary_input("clk");
  attach_clock(nl, clk);
  legalize_fanout(nl);
  nl.validate(true);
  // 13 splitters for 14 clock sinks plus 13 for the 14 data sinks on `a`.
  EXPECT_EQ(nl.count_cells(CellType::kSplitter), 26u);
}

}  // namespace
}  // namespace sfqecc::circuit
