#include "circuit/netlist_export.hpp"

#include <gtest/gtest.h>

#include "circuit/encoder_builder.hpp"
#include "code/hamming.hpp"

namespace sfqecc::circuit {
namespace {

BuiltEncoder h84() {
  return build_encoder(code::paper_hamming84(), coldflux_library());
}

TEST(NetlistExport, SpiceListsEveryCell) {
  const BuiltEncoder built = h84();
  const std::string spice = to_spice(built.netlist);
  // One X line per cell.
  std::size_t instances = 0;
  for (std::size_t pos = 0; (pos = spice.find("\nX", pos)) != std::string::npos; ++pos)
    ++instances;
  EXPECT_EQ(instances, built.netlist.cell_count());
  EXPECT_NE(spice.find("LSMITLL_XORT"), std::string::npos);
  EXPECT_NE(spice.find("LSMITLL_DFFT"), std::string::npos);
  EXPECT_NE(spice.find("LSMITLL_SPLITT"), std::string::npos);
  EXPECT_NE(spice.find("LSMITLL_SFQDC"), std::string::npos);
  EXPECT_NE(spice.find(".end"), std::string::npos);
}

TEST(NetlistExport, SpiceDeclaresPorts) {
  const std::string spice = to_spice(h84().netlist);
  for (const char* port : {"m1", "m2", "m3", "m4", "clk"})
    EXPECT_NE(spice.find(std::string(".input ") + port), std::string::npos) << port;
  for (int j = 1; j <= 8; ++j)
    EXPECT_NE(spice.find(".output c" + std::to_string(j)), std::string::npos);
}

TEST(NetlistExport, SpiceClockedCellsReferenceClockNode) {
  const BuiltEncoder built = h84();
  const std::string spice = to_spice(built.netlist);
  // Every XOR instance line must have 4 node refs (a, b, clk-tree node, out).
  std::istringstream in(spice);
  std::string line;
  std::size_t xor_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("Xxor_", 0) != 0) continue;
    ++xor_lines;
    std::istringstream fields(line);
    std::string tok;
    std::size_t count = 0;
    while (fields >> tok) ++count;
    EXPECT_EQ(count, 6u) << line;  // name, subckt, a, b, clk, out
  }
  EXPECT_EQ(xor_lines, 6u);
}

TEST(NetlistExport, SpiceIsDeterministic) {
  EXPECT_EQ(to_spice(h84().netlist), to_spice(h84().netlist));
}

TEST(NetlistExport, DotHasNodesAndEdges) {
  const BuiltEncoder built = h84();
  const std::string dot = to_dot(built.netlist);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);     // inputs
  EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);  // outputs
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);       // clock edges
  // Edge count >= number of sinks.
  std::size_t edges = 0;
  for (std::size_t pos = 0; (pos = dot.find("->", pos)) != std::string::npos; ++pos)
    ++edges;
  std::size_t sinks = 0;
  for (const Net& net : built.netlist.nets()) sinks += net.sinks.size();
  EXPECT_GE(edges, sinks);
}

TEST(NetlistExport, DotSanitizesNames) {
  Netlist nl("weird name!");
  const NetId a = nl.add_primary_input("a net");
  nl.add_cell(CellType::kJtl, "j/0", {a}, {"out-1"});
  const std::string dot = to_dot(nl);
  EXPECT_EQ(dot.find("a net"), std::string::npos);
  EXPECT_NE(dot.find("a_net"), std::string::npos);
  const std::string spice = to_spice(nl);
  EXPECT_NE(spice.find("Xj_0"), std::string::npos);
}

}  // namespace
}  // namespace sfqecc::circuit
