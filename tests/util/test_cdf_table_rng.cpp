// Tests for the empirical CDF, the table/plot formatters and the RNG streams.
#include <gtest/gtest.h>

#include <set>

#include "util/ascii_plot.hpp"
#include "util/cdf.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace sfqecc::util {
namespace {

// ---------------------------------------------------------------------- CDF --

TEST(EmpiricalCdf, EmptyBehaves) {
  EmpiricalCdf cdf;
  EXPECT_EQ(cdf.sample_count(), 0u);
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.0);
  EXPECT_THROW(cdf.inverse(0.5), ContractViolation);
}

TEST(EmpiricalCdf, BasicSteps) {
  const EmpiricalCdf cdf(std::vector<std::size_t>{0, 0, 1, 3});
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(1), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(2), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100), 1.0);
  EXPECT_EQ(cdf.count_at(0), 2u);
  EXPECT_EQ(cdf.count_at(2), 0u);
  EXPECT_EQ(cdf.max_value(), 3u);
}

TEST(EmpiricalCdf, MonotoneNonDecreasing) {
  Rng rng(5);
  std::vector<std::size_t> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.below(50));
  const EmpiricalCdf cdf(xs);
  double prev = 0.0;
  for (std::size_t n = 0; n <= 50; ++n) {
    EXPECT_GE(cdf.at(n), prev);
    prev = cdf.at(n);
  }
  EXPECT_DOUBLE_EQ(cdf.at(50), 1.0);
}

TEST(EmpiricalCdf, InverseIsGeneralizedInverse) {
  const EmpiricalCdf cdf(std::vector<std::size_t>{1, 2, 2, 9});
  EXPECT_EQ(cdf.inverse(0.25), 1u);
  EXPECT_EQ(cdf.inverse(0.5), 2u);
  EXPECT_EQ(cdf.inverse(0.75), 2u);
  EXPECT_EQ(cdf.inverse(1.0), 9u);
}

// -------------------------------------------------------------------- table --

TEST(TextTable, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xx", "1"});
  t.add_row({"y", "22"});
  const std::string s = t.to_string();
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t lines = 0;
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t nl = s.find('\n', pos);
    const std::size_t len = nl - pos;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 6u);  // rule, header, rule, 2 rows, rule
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

TEST(TextTable, FixedAndPercent) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.0, 0), "-1");
  EXPECT_EQ(percent(0.927, 1), "92.7 %");
  EXPECT_EQ(percent(1.0, 0), "100 %");
}

// --------------------------------------------------------------------- plot --

TEST(AsciiPlot, RendersSeriesGlyphs) {
  Series s1{"up", {0, 1, 2}, {0, 1, 2}};
  Series s2{"down", {0, 1, 2}, {2, 1, 0}};
  PlotOptions opt;
  opt.width = 40;
  opt.height = 10;
  const std::string plot = plot_xy({s1, s2}, opt);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("up"), std::string::npos);
  EXPECT_NE(plot.find("down"), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotHandled) {
  EXPECT_EQ(plot_xy({}, PlotOptions{}), "(empty plot)\n");
}

TEST(AsciiPlot, MismatchedSeriesRejected) {
  Series bad{"bad", {0, 1}, {0}};
  EXPECT_THROW(plot_xy({bad}, PlotOptions{}), ContractViolation);
}

TEST(AsciiPlot, PulseStripPlacesTicks) {
  const std::string strip = pulse_strip({0.0, 50.0, 99.0}, 0.0, 100.0, 10);
  EXPECT_EQ(strip.size(), 10u);
  EXPECT_EQ(strip[0], '|');
  EXPECT_EQ(strip[5], '|');
  EXPECT_EQ(strip[9], '|');
  EXPECT_EQ(strip[2], '_');
}

TEST(AsciiPlot, PulseStripIgnoresOutOfWindow) {
  const std::string strip = pulse_strip({-5.0, 200.0}, 0.0, 100.0, 10);
  EXPECT_EQ(strip, "__________");
}

// ---------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SubstreamsAreIndependentlySeeded) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(substream_seed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions among the first 1000 streams
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-0.2, 0.2);
    EXPECT_GE(u, -0.2);
    EXPECT_LT(u, 0.2);
  }
}

TEST(Rng, BelowIsUniformish) {
  Rng rng(10);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.25)) ++heads;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(12);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(1.0, 2.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.06);
  EXPECT_NEAR(var, 4.0, 0.15);
}

}  // namespace
}  // namespace sfqecc::util
