// Tests for the constant-memory log-linear latency histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/latency_histogram.hpp"
#include "util/rng.hpp"

namespace sfqecc::util {
namespace {

TEST(LatencyHistogram, EmptyReportsZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Values below kSubBuckets get a bucket each, so quantiles are exact.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) h.record(v);
  EXPECT_EQ(h.count(), LatencyHistogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), LatencyHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.quantile(0.5), LatencyHistogram::kSubBuckets / 2);
}

TEST(LatencyHistogram, BucketIndexIsMonotone) {
  std::size_t last = 0;
  for (std::uint64_t v = 0; v < 100000; ++v) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    EXPECT_GE(index, last) << "value " << v;
    EXPECT_LE(v, LatencyHistogram::bucket_upper_bound(index)) << "value " << v;
    last = index;
  }
}

TEST(LatencyHistogram, UpperBoundIsTightAcrossMagnitudes) {
  // Every value lands in a bucket whose inclusive upper bound is >= the
  // value and within one sub-bucket width (bounded relative error).
  for (std::uint64_t v : std::vector<std::uint64_t>{
           1, 31, 32, 33, 63, 64, 100, 1000, 123456, 1ull << 20, (1ull << 20) + 7,
           1ull << 40, std::numeric_limits<std::uint64_t>::max()}) {
    const std::size_t index = LatencyHistogram::bucket_index(v);
    const std::uint64_t upper = LatencyHistogram::bucket_upper_bound(index);
    ASSERT_GE(upper, v);
    if (v >= LatencyHistogram::kSubBuckets) {
      // Relative error bound: bucket width / value <= 2 / kSubBuckets.
      EXPECT_LE(static_cast<double>(upper - v),
                2.0 * static_cast<double>(v) /
                    static_cast<double>(LatencyHistogram::kSubBuckets));
    } else {
      EXPECT_EQ(upper, v);
    }
  }
}

TEST(LatencyHistogram, QuantilesAreMonotoneAndClamped) {
  LatencyHistogram h;
  Rng rng(7, 0);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1u << 20);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  std::uint64_t previous = 0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t estimate = h.quantile(q);
    EXPECT_GE(estimate, previous) << "q=" << q;
    EXPECT_GE(estimate, h.min());
    EXPECT_LE(estimate, h.max());
    previous = estimate;
  }
  // The estimate brackets the exact order statistic within bucket error.
  const std::uint64_t exact_p50 = values[values.size() / 2];
  const std::uint64_t estimate_p50 = h.quantile(0.5);
  EXPECT_GE(estimate_p50, exact_p50 - exact_p50 / 16);
  EXPECT_LE(estimate_p50, exact_p50 + exact_p50 / 8 + 1);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram combined, a, b;
  Rng rng(11, 1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (i % 50);
    combined.record(v);
    (i % 3 == 0 ? a : b).record(v);
  }
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.sum(), combined.sum());
  EXPECT_EQ(merged.min(), combined.min());
  EXPECT_EQ(merged.max(), combined.max());
  EXPECT_EQ(merged.buckets(), combined.buckets());
  for (const double q : {0.5, 0.99, 0.999})
    EXPECT_EQ(merged.quantile(q), combined.quantile(q));
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  h.record(42);
  h.record(7);
  LatencyHistogram before = h;
  h.merge(LatencyHistogram{});
  EXPECT_EQ(h.count(), before.count());
  EXPECT_EQ(h.min(), before.min());
  EXPECT_EQ(h.max(), before.max());

  LatencyHistogram empty;
  empty.merge(h);
  EXPECT_EQ(empty.count(), h.count());
  EXPECT_EQ(empty.min(), h.min());
  EXPECT_EQ(empty.max(), h.max());
  EXPECT_EQ(empty.buckets(), h.buckets());
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

}  // namespace
}  // namespace sfqecc::util
