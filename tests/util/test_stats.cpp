#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::util {
namespace {

TEST(Stats, SummaryOfEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
}

TEST(Stats, AccumulatorMatchesBatchOnRandomData) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    Accumulator acc;
    const std::size_t n = 2 + rng.below(500);
    for (std::size_t i = 0; i < n; ++i) {
      const double x = rng.gaussian(3.0, 2.0);
      xs.push_back(x);
      acc.add(x);
    }
    const Summary s = summarize(xs);
    EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
    EXPECT_NEAR(acc.variance(), s.variance, 1e-9);
    EXPECT_DOUBLE_EQ(acc.min(), s.min);
    EXPECT_DOUBLE_EQ(acc.max(), s.max);
  }
}

TEST(Stats, WelfordIsStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: large mean, small variance.
  Accumulator acc;
  const int n = 1000;
  for (int i = 0; i < n; ++i) acc.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  // Unbiased estimator of the alternating +/-0.5 sequence: 0.25 * n/(n-1).
  EXPECT_NEAR(acc.variance(), 0.25 * n / (n - 1.0), 1e-9);
}

TEST(Stats, QuantileEndpointsAndMedian) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.35), 3.5);
}

TEST(Stats, QuantileContractChecks) {
  EXPECT_THROW(quantile({}, 0.5), ContractViolation);
  EXPECT_THROW(quantile({1.0}, 1.5), ContractViolation);
}

TEST(Stats, WilsonIntervalContainsPointEstimate) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 10 + rng.below(1000);
    const std::size_t k = rng.below(n + 1);
    const Interval ci = wilson_interval(k, n);
    const double p = static_cast<double>(k) / static_cast<double>(n);
    EXPECT_LE(ci.lo, p + 1e-12);
    EXPECT_GE(ci.hi, p - 1e-12);
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
  }
}

TEST(Stats, WilsonIntervalShrinksWithN) {
  const Interval small = wilson_interval(8, 10);
  const Interval large = wilson_interval(800, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Stats, WilsonIntervalKnownValue) {
  // 950/1000 at z = 1.96: standard Wilson interval ~ [0.9346, 0.9626].
  const Interval ci = wilson_interval(950, 1000);
  EXPECT_NEAR(ci.lo, 0.9346, 0.001);
  EXPECT_NEAR(ci.hi, 0.9626, 0.001);
}

TEST(Stats, WilsonIntervalEdgeCases) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_THROW(wilson_interval(5, 0), ContractViolation);
  EXPECT_THROW(wilson_interval(5, 4), ContractViolation);
}

TEST(Stats, WilsonCoverageMonteCarlo) {
  // The 95 % interval must cover the true p in roughly 95 % of experiments.
  Rng rng(3);
  const double p = 0.3;
  int covered = 0;
  const int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    std::size_t k = 0;
    const std::size_t n = 200;
    for (std::size_t i = 0; i < n; ++i)
      if (rng.bernoulli(p)) ++k;
    const Interval ci = wilson_interval(k, n);
    if (ci.lo <= p && p <= ci.hi) ++covered;
  }
  EXPECT_GT(covered, experiments * 90 / 100);
}

}  // namespace
}  // namespace sfqecc::util
