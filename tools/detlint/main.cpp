// detlint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error — the same
// convention as the campaign endpoints (0 ok, 2 usage).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "detlint/detlint.hpp"

namespace {

int usage(std::FILE* to) {
  std::fputs(
      "usage: detlint [--list-rules] <file-or-directory>...\n"
      "\n"
      "Statically checks the determinism invariants of this repository over\n"
      "the given files (directories recurse into *.hpp *.h *.cpp *.cc).\n"
      "Typical invocation, from the repository root:\n"
      "\n"
      "    detlint src bench examples\n"
      "\n"
      "Suppress a finding with a comment on the offending line (or the line\n"
      "above it):  // detlint:allow(<rule>)\n",
      to);
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0)
      return usage(stdout);
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const detlint::RuleInfo& rule : detlint::rules())
        std::printf("%-24s %s\n", rule.name, rule.summary);
      return 0;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "detlint: unknown flag '%s'\n", argv[i]);
      return usage(stderr);
    }
    paths.push_back(argv[i]);
  }
  if (paths.empty()) return usage(stderr);

  std::string error;
  const std::vector<detlint::Diagnostic> findings =
      detlint::lint_paths(paths, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  for (const detlint::Diagnostic& d : findings)
    std::fputs(detlint::format(d).c_str(), stderr);
  if (!findings.empty()) {
    std::fprintf(stderr,
                 "detlint: %zu finding%s — determinism invariants violated "
                 "(see tools/detlint/detlint.hpp; suppress a reviewed "
                 "exception with // detlint:allow(<rule>))\n",
                 findings.size(), findings.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
