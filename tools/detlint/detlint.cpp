#include "detlint/detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace detlint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- rule table

const char* kRngDomain = "rng-domain";
const char* kReportClock = "report-clock";
const char* kReportEnv = "report-env";
const char* kReportLocale = "report-locale";
const char* kReportThreadId = "report-thread-id";
const char* kReportPointerFormat = "report-pointer-format";
const char* kUnorderedOutputOrder = "unordered-output-order";
const char* kRawReportStream = "raw-report-stream";
const char* kFingerprintAxis = "fingerprint-axis";

// Seeds of the "reachable from the reporters / checkpoint writers" closure.
const char* kClosureSeeds[] = {"engine/report.hpp", "engine/checkpoint.hpp"};

// Files where raw random sources are the point (the RNG domain layer).
const char* kRngAllowedStems[] = {"util/rng", "engine/kernel"};

// The axis-coverage cross-check's two source files.
const char* kSpecHeader = "engine/campaign_spec.hpp";
const char* kSpecSource = "engine/campaign_spec.cpp";

// ------------------------------------------------------------------- lexing

struct Token {
  std::string text;
  std::size_t pos = 0;  ///< byte offset into the file content
};

struct StringSpan {
  std::size_t pos = 0;  ///< offset of the literal's first content byte
  std::string text;     ///< literal content (escapes left as written)
};

struct SourceFile {
  std::string path;      ///< normalized with forward slashes
  std::string content;   ///< raw bytes
  std::string scrubbed;  ///< comments and literal contents blanked
  std::vector<std::size_t> line_start;
  std::vector<Token> tokens;
  std::vector<StringSpan> strings;
  std::vector<std::string> includes;  ///< quoted includes, as written
  /// line (1-based) -> rules suppressed on that line by detlint:allow.
  std::map<std::size_t, std::set<std::string>> allowed;
  bool in_closure = false;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::size_t line_of(const SourceFile& file, std::size_t pos) {
  const auto it = std::upper_bound(file.line_start.begin(), file.line_start.end(), pos);
  return static_cast<std::size_t>(it - file.line_start.begin());
}

std::size_t col_of(const SourceFile& file, std::size_t pos) {
  const std::size_t line = line_of(file, pos);
  return pos - file.line_start[line - 1] + 1;
}

std::string line_text(const SourceFile& file, std::size_t line) {
  if (line == 0 || line > file.line_start.size()) return "";
  const std::size_t begin = file.line_start[line - 1];
  std::size_t end = file.content.find('\n', begin);
  if (end == std::string::npos) end = file.content.size();
  return file.content.substr(begin, end - begin);
}

/// Registers the rules of one `detlint:allow(a, b)` directive found in a
/// comment ending on `end_line`: they cover that line and the next one.
void harvest_allows(SourceFile& file, const std::string& comment,
                    std::size_t end_line) {
  std::size_t at = 0;
  while ((at = comment.find("detlint:allow(", at)) != std::string::npos) {
    at += 14;
    const std::size_t close = comment.find(')', at);
    if (close == std::string::npos) return;
    std::stringstream list(comment.substr(at, close - at));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const std::size_t first = rule.find_first_not_of(" \t");
      const std::size_t last = rule.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      const std::string name = rule.substr(first, last - first + 1);
      file.allowed[end_line].insert(name);
      file.allowed[end_line + 1].insert(name);
    }
    at = close;
  }
}

/// One pass over the raw content: blanks comments and string/char literal
/// contents into `scrubbed` (newlines preserved so offsets and line numbers
/// stay valid), records string spans for the %p scan, and harvests
/// suppression directives from comment text.
void scrub(SourceFile& file) {
  const std::string& src = file.content;
  std::string out(src);
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto blank = [&](std::size_t at) {
    if (out[at] != '\n') out[at] = ' ';
  };
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t begin = i;
      while (i < n && src[i] != '\n') blank(i++);
      harvest_allows(file, src.substr(begin, i - begin), line_of(file, i ? i - 1 : 0));
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t begin = i;
      blank(i++);
      blank(i++);
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) blank(i++);
      if (i + 1 < n) {
        blank(i++);
        blank(i++);
      } else if (i < n) {
        blank(i++);
      }
      harvest_allows(file, src.substr(begin, i - begin), line_of(file, i ? i - 1 : 0));
      continue;
    }
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (i == 0 || !ident_char(src[i - 1]))) {
      // Raw string literal: R"delim( ... )delim".
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      if (j < n) {
        const std::string closer = ")" + delim + "\"";
        const std::size_t body = j + 1;
        std::size_t end = src.find(closer, body);
        if (end == std::string::npos) end = n;
        file.strings.push_back({body, src.substr(body, end - body)});
        i += 2;  // keep R" visible? No: blank the whole literal.
        i = i - 2;
        const std::size_t stop = std::min(n, end + closer.size());
        while (i < stop) blank(i++);
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t body = i + 1;
      blank(i++);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (quote == '"') file.strings.push_back({body, src.substr(body, i - body)});
      if (i < n) blank(i++);
      continue;
    }
    ++i;
  }
  file.scrubbed = std::move(out);
}

void index_lines(SourceFile& file) {
  file.line_start.push_back(0);
  for (std::size_t i = 0; i < file.content.size(); ++i)
    if (file.content[i] == '\n') file.line_start.push_back(i + 1);
}

void tokenize(SourceFile& file) {
  const std::string& s = file.scrubbed;
  std::size_t i = 0;
  while (i < s.size()) {
    if (ident_start(s[i])) {
      const std::size_t begin = i;
      while (i < s.size() && ident_char(s[i])) ++i;
      file.tokens.push_back({s.substr(begin, i - begin), begin});
    } else {
      ++i;
    }
  }
}

void parse_includes(SourceFile& file) {
  std::size_t pos = 0;
  while (pos < file.content.size()) {
    std::size_t end = file.content.find('\n', pos);
    if (end == std::string::npos) end = file.content.size();
    std::size_t i = pos;
    const std::string& s = file.content;
    auto skip_ws = [&] {
      while (i < end && (s[i] == ' ' || s[i] == '\t')) ++i;
    };
    skip_ws();
    if (i < end && s[i] == '#') {
      ++i;
      skip_ws();
      if (s.compare(i, 7, "include") == 0) {
        i += 7;
        skip_ws();
        if (i < end && s[i] == '"') {
          const std::size_t close = s.find('"', i + 1);
          if (close != std::string::npos && close < end)
            file.includes.push_back(s.substr(i + 1, close - i - 1));
        }
      }
    }
    pos = end + 1;
  }
}

// ------------------------------------------------------------------ helpers

std::string normalize(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// True when `path` ends with "/suffix" or equals it.
bool path_ends_with(const std::string& path, const std::string& suffix) {
  if (path.size() == suffix.size()) return path == suffix;
  return path.size() > suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0 &&
         path[path.size() - suffix.size() - 1] == '/';
}

/// Path with its extension removed ("src/util/rng.hpp" -> "src/util/rng").
std::string stem_path(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return path;
  return path.substr(0, dot);
}

bool skip_ws_backward(const std::string& s, std::size_t& i) {
  while (i > 0 && std::isspace(static_cast<unsigned char>(s[i - 1]))) --i;
  return i > 0;
}

bool skip_ws_forward(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i < s.size();
}

/// True when the identifier starting at `pos` is qualified as std::<name>
/// (or std::chrono::<name>), directly or through the chrono namespace.
bool std_qualified(const SourceFile& file, std::size_t pos) {
  const std::string& s = file.scrubbed;
  std::size_t i = pos;
  if (!skip_ws_backward(s, i) || i < 2 || s[i - 1] != ':' || s[i - 2] != ':') return false;
  i -= 2;
  if (!skip_ws_backward(s, i)) return false;
  std::size_t end = i;
  while (i > 0 && ident_char(s[i - 1])) --i;
  const std::string qualifier = s.substr(i, end - i);
  if (qualifier == "std") return true;
  if (qualifier == "chrono") return std_qualified(file, i);
  return false;
}

/// True when the identifier at `pos` is a member access (preceded by . or ->).
bool member_access(const SourceFile& file, std::size_t pos) {
  const std::string& s = file.scrubbed;
  std::size_t i = pos;
  if (!skip_ws_backward(s, i)) return false;
  if (s[i - 1] == '.') return true;
  return i >= 2 && s[i - 1] == '>' && s[i - 2] == '-';
}

struct Finding {
  const SourceFile* file;
  std::size_t pos;
  const char* rule;
  std::string message;
};

class Analysis {
 public:
  explicit Analysis(std::vector<SourceFile> files) : files_(std::move(files)) {
    compute_closure();
    collect_unordered_names();
  }

  std::vector<Diagnostic> run() {
    for (SourceFile& file : files_) {
      check_rng_domain(file);
      if (file.in_closure) {
        check_report_identifiers(file);
        check_pointer_format(file);
        check_unordered_iteration(file);
        check_raw_streams(file);
      }
    }
    check_fingerprint_axes();
    return finish();
  }

 private:
  // ---- include closure ----------------------------------------------------

  const SourceFile* resolve_include(const std::string& include) const {
    for (const SourceFile& file : files_)
      if (path_ends_with(file.path, include)) return &file;
    return nullptr;
  }

  void compute_closure() {
    std::vector<const SourceFile*> frontier;
    std::set<std::string> in_closure;
    for (SourceFile& file : files_)
      for (const char* seed : kClosureSeeds)
        if (path_ends_with(file.path, seed) && in_closure.insert(file.path).second)
          frontier.push_back(&file);
    while (!frontier.empty()) {
      const SourceFile* header = frontier.back();
      frontier.pop_back();
      for (const std::string& include : header->includes) {
        const SourceFile* next = resolve_include(include);
        if (next && in_closure.insert(next->path).second)
          frontier.push_back(next);
      }
    }
    // A closure header's paired translation unit is where its code lives;
    // scan it with the same rules (its own includes do not extend the
    // closure — reachability is over interfaces, not implementation
    // dependencies).
    for (SourceFile& file : files_) {
      if (in_closure.count(file.path)) {
        file.in_closure = true;
        continue;
      }
      const std::string stem = stem_path(file.path);
      for (const char* ext : {".hpp", ".h"})
        if (in_closure.count(stem + ext)) file.in_closure = true;
    }
  }

  // ---- diagnostics --------------------------------------------------------

  void report(const SourceFile& file, std::size_t pos, const char* rule,
              std::string message) {
    findings_.push_back(Finding{&file, pos, rule, std::move(message)});
  }

  std::vector<Diagnostic> finish() {
    std::vector<Diagnostic> out;
    for (const Finding& f : findings_) {
      const std::size_t line = line_of(*f.file, f.pos);
      const auto allowed = f.file->allowed.find(line);
      if (allowed != f.file->allowed.end() &&
          (allowed->second.count(f.rule) || allowed->second.count("all")))
        continue;
      Diagnostic d;
      d.file = f.file->path;
      d.line = line;
      d.col = col_of(*f.file, f.pos);
      d.rule = f.rule;
      d.message = f.message;
      d.source_line = line_text(*f.file, line);
      out.push_back(std::move(d));
    }
    std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
      if (a.file != b.file) return a.file < b.file;
      if (a.line != b.line) return a.line < b.line;
      if (a.col != b.col) return a.col < b.col;
      return a.rule < b.rule;
    });
    return out;
  }

  // ---- rng-domain ---------------------------------------------------------

  void check_rng_domain(const SourceFile& file) {
    const std::string stem = stem_path(file.path);
    for (const char* allowed : kRngAllowedStems)
      if (path_ends_with(stem, allowed)) return;
    static const std::set<std::string> kBanned = {
        "mt19937",     "mt19937_64", "minstd_rand", "minstd_rand0",
        "ranlux24",    "ranlux48",   "knuth_b",     "default_random_engine",
        "random_device", "rand",     "srand",       "rand_r",
        "drand48",     "lrand48",    "mrand48",     "erand48",
    };
    for (const Token& token : file.tokens) {
      if (!kBanned.count(token.text)) continue;
      if (member_access(file, token.pos)) continue;  // a member named rand is ours
      report(file, token.pos, kRngDomain,
             "'" + token.text +
                 "' is a random source outside the RNG domain layer; draw "
                 "through util::Rng substreams (util/rng.hpp) so the "
                 "(Domain, chip_stream_index) layout stays reproducible");
    }
  }

  // ---- report-* identifier bans ------------------------------------------

  void check_report_identifiers(const SourceFile& file) {
    struct Ban {
      const char* rule;
      const char* why;
      bool std_only;  ///< only when written std:: / std::chrono:: qualified
    };
    static const std::map<std::string, Ban> kBans = {
        {"system_clock", {kReportClock, "wall-clock time", false}},
        {"steady_clock", {kReportClock, "monotonic time", false}},
        {"high_resolution_clock", {kReportClock, "clock time", false}},
        {"file_clock", {kReportClock, "file time", false}},
        {"utc_clock", {kReportClock, "wall-clock time", false}},
        {"clock_gettime", {kReportClock, "clock time", false}},
        {"gettimeofday", {kReportClock, "wall-clock time", false}},
        {"timespec_get", {kReportClock, "wall-clock time", false}},
        {"time", {kReportClock, "wall-clock time", true}},
        {"clock", {kReportClock, "processor time", true}},
        {"ctime", {kReportClock, "formatted wall-clock time", false}},
        {"asctime", {kReportClock, "formatted wall-clock time", false}},
        {"localtime", {kReportClock, "local time", false}},
        {"localtime_r", {kReportClock, "local time", false}},
        {"gmtime", {kReportClock, "calendar time", false}},
        {"gmtime_r", {kReportClock, "calendar time", false}},
        {"strftime", {kReportClock, "formatted time", false}},
        {"mktime", {kReportClock, "calendar time", false}},
        {"getenv", {kReportEnv, "environment state", false}},
        {"secure_getenv", {kReportEnv, "environment state", false}},
        {"setenv", {kReportEnv, "environment state", false}},
        {"putenv", {kReportEnv, "environment state", false}},
        {"unsetenv", {kReportEnv, "environment state", false}},
        {"environ", {kReportEnv, "environment state", false}},
        {"setlocale", {kReportLocale, "host locale", false}},
        {"localeconv", {kReportLocale, "host locale", false}},
        {"locale", {kReportLocale, "host locale", true}},
        {"imbue", {kReportLocale, "stream locale", false}},
        {"this_thread", {kReportThreadId, "thread identity", false}},
        {"get_id", {kReportThreadId, "thread identity", false}},
        {"pthread_self", {kReportThreadId, "thread identity", false}},
        {"gettid", {kReportThreadId, "thread identity", false}},
    };
    for (const Token& token : file.tokens) {
      const auto it = kBans.find(token.text);
      if (it == kBans.end()) continue;
      const Ban& ban = it->second;
      if (ban.std_only) {
        if (!std_qualified(file, token.pos)) continue;
      } else if (member_access(file, token.pos)) {
        continue;  // obj.get_id() on one of our types is not std thread identity
      }
      report(file, token.pos, ban.rule,
             std::string("'") + token.text + "' injects " + ban.why +
                 " into code reachable from the reporters/checkpoint "
                 "writers; report bytes must depend only on the campaign "
                 "inputs");
    }
  }

  // ---- report-pointer-format ---------------------------------------------

  void check_pointer_format(const SourceFile& file) {
    for (const StringSpan& literal : file.strings) {
      const std::size_t at = literal.text.find("%p");
      if (at != std::string::npos)
        report(file, literal.pos + at, kReportPointerFormat,
               "\"%p\" formats a pointer value; addresses differ per run "
               "under ASLR and must never reach report bytes");
    }
    for (const Token& token : file.tokens) {
      if (token.text != "uintptr_t" && token.text != "intptr_t") continue;
      report(file, token.pos, kReportPointerFormat,
             "'" + token.text +
                 "' converts a pointer to an integer in code reachable from "
                 "the reporters; address-derived values are not stable "
                 "across runs");
    }
  }

  // ---- unordered-output-order --------------------------------------------

  void collect_unordered_names() {
    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (const SourceFile& file : files_) {
      for (std::size_t t = 0; t < file.tokens.size(); ++t) {
        if (!kUnorderedTypes.count(file.tokens[t].text)) continue;
        // Skip the template argument list, then take the declared name.
        const std::string& s = file.scrubbed;
        std::size_t i = file.tokens[t].pos + file.tokens[t].text.size();
        if (!skip_ws_forward(s, i) || s[i] != '<') continue;
        std::size_t depth = 0;
        while (i < s.size()) {
          if (s[i] == '<') ++depth;
          if (s[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
          ++i;
        }
        if (!skip_ws_forward(s, i) || !ident_start(s[i])) continue;
        const std::size_t begin = i;
        while (i < s.size() && ident_char(s[i])) ++i;
        unordered_names_.insert(s.substr(begin, i - begin));
      }
    }
  }

  void check_unordered_iteration(const SourceFile& file) {
    const std::string& s = file.scrubbed;
    for (std::size_t t = 0; t < file.tokens.size(); ++t) {
      const Token& token = file.tokens[t];
      // Range-for over an unordered container (by declared name or an
      // inline unordered_* expression).
      if (token.text == "for") {
        std::size_t i = token.pos + 3;
        if (!skip_ws_forward(s, i) || s[i] != '(') continue;
        std::size_t depth = 0, colon = std::string::npos;
        const std::size_t open = i;
        while (i < s.size()) {
          if (s[i] == '(') ++depth;
          if (s[i] == ')' && --depth == 0) break;
          if (s[i] == ':' && depth == 1 &&
              (i + 1 >= s.size() || s[i + 1] != ':') && (i == 0 || s[i - 1] != ':'))
            colon = i;
          ++i;
        }
        if (colon == std::string::npos || i >= s.size()) continue;
        const std::string range = s.substr(colon + 1, i - colon - 1);
        // Identifiers of the range expression; flag ones declared unordered.
        std::size_t j = 0;
        while (j < range.size()) {
          if (!ident_start(range[j])) {
            ++j;
            continue;
          }
          const std::size_t begin = j;
          while (j < range.size() && ident_char(range[j])) ++j;
          const std::string name = range.substr(begin, j - begin);
          if (unordered_names_.count(name) ||
              name.rfind("unordered_", 0) == 0) {
            report(file, colon + 1 + begin, kUnorderedOutputOrder,
                   "iterating '" + name +
                       "' (unordered container) in code reachable from the "
                       "reporters; bucket order is implementation-defined "
                       "and would leak into report/checkpoint/fingerprint "
                       "bytes — use an ordered container or sort first");
            break;
          }
        }
        (void)open;
        continue;
      }
      // Explicit iterator walk: name.begin() / name.cbegin().
      if (unordered_names_.count(token.text)) {
        std::size_t i = token.pos + token.text.size();
        if (!skip_ws_forward(s, i)) continue;
        std::size_t after = i;
        if (s[i] == '.') {
          after = i + 1;
        } else if (s[i] == '-' && i + 1 < s.size() && s[i + 1] == '>') {
          after = i + 2;
        } else {
          continue;
        }
        if (!skip_ws_forward(s, after)) continue;
        for (const char* it : {"begin", "cbegin", "rbegin"}) {
          const std::size_t len = std::string(it).size();
          if (s.compare(after, len, it) == 0 && after + len < s.size() &&
              !ident_char(s[after + len])) {
            report(file, token.pos, kUnorderedOutputOrder,
                   "iterator over '" + token.text +
                       "' (unordered container) in code reachable from the "
                       "reporters; iteration order is implementation-"
                       "defined — use an ordered container or sort first");
            break;
          }
        }
      }
    }
  }

  // ---- raw-report-stream --------------------------------------------------

  void check_raw_streams(const SourceFile& file) {
    static const std::set<std::string> kBanned = {"ofstream", "fopen", "fwrite",
                                                  "fprintf"};
    for (const Token& token : file.tokens) {
      if (!kBanned.count(token.text)) continue;
      // fprintf(stderr, ...) is diagnostics, not report bytes.
      if (token.text == "fprintf") {
        const std::string& s = file.scrubbed;
        std::size_t i = token.pos + token.text.size();
        if (skip_ws_forward(s, i) && s[i] == '(') {
          ++i;
          if (skip_ws_forward(s, i) && s.compare(i, 6, "stderr") == 0) continue;
        }
      }
      report(file, token.pos, kRawReportStream,
             "'" + token.text +
                 "' writes report/checkpoint bytes through a raw stream; "
                 "route them through engine::write_text_file_atomic (or the "
                 "flush-verified CheckpointWriter) so a crash or full disk "
                 "can never tear the file");
    }
  }

  // ---- fingerprint-axis ---------------------------------------------------

  struct Field {
    std::string name;
    std::string element;  ///< vector axes: element type name; else empty
    std::size_t pos = 0;
  };

  /// Parses the depth-1 data members of `struct <name> { ... }` in `file`.
  /// Returns false when the struct is not defined there.
  bool parse_struct_fields(const SourceFile& file, const std::string& name,
                           std::vector<Field>& fields) const {
    const std::string& s = file.scrubbed;
    std::size_t body = std::string::npos;
    for (std::size_t t = 0; t + 1 < file.tokens.size(); ++t) {
      if (file.tokens[t].text != "struct" && file.tokens[t].text != "class")
        continue;
      if (file.tokens[t + 1].text != name) continue;
      std::size_t i = file.tokens[t + 1].pos + name.size();
      if (!skip_ws_forward(s, i)) continue;
      if (s[i] == '{') {
        body = i + 1;
        break;
      }
    }
    if (body == std::string::npos) return false;
    // Split depth-1 statements on ';'.
    std::size_t i = body, stmt = body;
    int braces = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '{') ++braces;
      if (c == '}') {
        if (braces == 0) break;
        --braces;
      }
      if (c == ';' && braces == 0) {
        parse_member(s, stmt, i, fields);
        stmt = i + 1;
      }
      ++i;
    }
    return true;
  }

  /// Parses one member statement [begin, end); appends a Field for plain
  /// data members, skipping functions (anything with a parameter list).
  void parse_member(const std::string& s, std::size_t begin, std::size_t end,
                    std::vector<Field>& fields) const {
    std::string element;
    std::size_t init = end;  // start of the initializer, if any
    int angles = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const char c = s[i];
      if (c == '<') ++angles;
      if (c == '>' && angles > 0) --angles;
      if (angles == 0 && c == '=' &&
          (i + 1 >= end || s[i + 1] != '=') && (i == begin || s[i - 1] != '=') &&
          (i == begin || s[i - 1] != '!') && (i == begin || s[i - 1] != '<') &&
          (i == begin || s[i - 1] != '>')) {
        init = i;
        break;
      }
      if (angles == 0 && c == '{') {
        init = i;
        break;
      }
      if (angles == 0 && c == '(') return;  // function declaration
    }
    // operator== / operator<=> declarations reach here with their '=' taken
    // for an initializer; they are not data members.
    if (s.substr(begin, init - begin).find("operator") != std::string::npos)
      return;
    // The member name is the last identifier before the initializer.
    std::size_t name_begin = std::string::npos, name_end = 0;
    for (std::size_t i = begin; i < init; ++i) {
      if (ident_start(s[i]) && (i == begin || !ident_char(s[i - 1]))) {
        std::size_t j = i;
        while (j < init && ident_char(s[j])) ++j;
        name_begin = i;
        name_end = j;
        i = j;
      }
    }
    if (name_begin == std::string::npos) return;
    const std::string name = s.substr(name_begin, name_end - name_begin);
    if (name == "const" || name == "static" || name == "constexpr") return;
    // Vector axes: remember the element type's unqualified name.
    const std::size_t vec = s.substr(begin, init - begin).find("vector<");
    if (vec != std::string::npos) {
      std::size_t i = begin + vec + 6, depth = 0, elem_end = end;
      std::size_t j = i;
      while (j < init) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>' && --depth == 0) {
          elem_end = j;
          break;
        }
        ++j;
      }
      // Element type name: last identifier inside the angle brackets.
      std::size_t eb = std::string::npos, ee = 0;
      for (std::size_t k = i + 1; k < elem_end; ++k) {
        if (ident_start(s[k]) && !ident_char(s[k - 1])) {
          std::size_t m = k;
          while (m < elem_end && ident_char(s[m])) ++m;
          eb = k;
          ee = m;
          k = m;
        }
      }
      if (eb != std::string::npos) element = s.substr(eb, ee - eb);
      // The name we captured above is the element type when the declarator
      // has no initializer; re-find the name after the closing '>'.
      std::size_t after = elem_end + 1;
      if (skip_ws_forward(s, after) && ident_start(s[after]) && after < init) {
        std::size_t m = after;
        while (m < init && ident_char(s[m])) ++m;
        fields.push_back(Field{s.substr(after, m - after), element, after});
        return;
      }
    }
    fields.push_back(Field{name, element, name_begin});
  }

  /// Extracts the body of `campaign_fingerprint(...){ ... }` from `file`.
  bool fingerprint_body(const SourceFile& file, std::string& body) const {
    const std::string& s = file.scrubbed;
    for (const Token& token : file.tokens) {
      if (token.text != "campaign_fingerprint") continue;
      std::size_t i = token.pos + token.text.size();
      if (!skip_ws_forward(s, i) || s[i] != '(') continue;
      std::size_t depth = 0;
      while (i < s.size()) {
        if (s[i] == '(') ++depth;
        if (s[i] == ')' && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
      if (!skip_ws_forward(s, i) || s[i] != '{') continue;  // a declaration
      const std::size_t open = i;
      std::size_t braces = 0;
      while (i < s.size()) {
        if (s[i] == '{') ++braces;
        if (s[i] == '}' && --braces == 0) break;
        ++i;
      }
      body = s.substr(open, i - open);
      return true;
    }
    return false;
  }

  bool body_has_identifier(const std::string& body, const std::string& name) const {
    std::size_t at = 0;
    while ((at = body.find(name, at)) != std::string::npos) {
      const bool left_ok = at == 0 || !ident_char(body[at - 1]);
      const std::size_t end = at + name.size();
      const bool right_ok = end >= body.size() || !ident_char(body[end]);
      if (left_ok && right_ok) return true;
      at = end;
    }
    return false;
  }

  void check_fingerprint_axes() {
    const SourceFile* header = nullptr;
    for (const SourceFile& file : files_)
      if (path_ends_with(file.path, kSpecHeader)) header = &file;
    if (!header) return;  // campaign_spec not part of this lint run

    std::vector<Field> spec_fields;
    if (!parse_struct_fields(*header, "CampaignSpec", spec_fields)) {
      report(*header, 0, kFingerprintAxis,
             "could not parse struct CampaignSpec; the fingerprint-axis "
             "cross-check needs its field list");
      return;
    }

    std::string body;
    bool have_body = false;
    for (const SourceFile& file : files_) {
      if (!path_ends_with(file.path, kSpecSource) &&
          !path_ends_with(file.path, kSpecHeader))
        continue;
      if (fingerprint_body(file, body)) {
        have_body = true;
        break;
      }
    }
    if (!have_body) {
      report(*header, 0, kFingerprintAxis,
             "campaign_fingerprint definition not found next to "
             "CampaignSpec; every axis must be mixed into the fingerprint");
      return;
    }

    for (const Field& field : spec_fields) {
      if (field.element.empty()) {
        // Workload scalar: the fingerprint must mix spec.<name>.
        if (!body_has_identifier(body, field.name))
          report(*header, field.pos, kFingerprintAxis,
                 "CampaignSpec field '" + field.name +
                     "' is never mixed into campaign_fingerprint; a resumed "
                     "checkpoint could silently merge runs that differ in it");
        continue;
      }
      // Sweep axis: every leaf field of the element struct must be mixed in
      // (through the expanded cells).
      std::vector<Field> element_fields;
      bool found = false;
      for (const SourceFile& file : files_) {
        if (parse_struct_fields(file, field.element, element_fields)) {
          found = true;
          break;
        }
      }
      if (!found) {
        report(*header, field.pos, kFingerprintAxis,
               "axis '" + field.name + "': element struct '" + field.element +
                   "' is not defined in the linted tree, so fingerprint "
                   "coverage cannot be verified");
        continue;
      }
      for (const Field& leaf : element_fields) {
        if (!body_has_identifier(body, leaf.name))
          report(*header, field.pos, kFingerprintAxis,
                 "axis '" + field.name + "': field '" + field.element + "::" +
                     leaf.name +
                     "' is never mixed into campaign_fingerprint — follow "
                     "the ROADMAP \"adding a sweep axis\" recipe (apply in "
                     "expand_cells, mix into campaign_fingerprint, surface "
                     "in cell_label/reporters)");
      }
    }
  }

  std::vector<SourceFile> files_;
  std::set<std::string> unordered_names_;
  std::vector<Finding> findings_;
};

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {kRngDomain,
       "random sources (mt19937, rand, random_device, ...) only in "
       "util/rng.* and engine/kernel.*"},
      {kReportClock, "no wall/monotonic clock reachable from the reporters"},
      {kReportEnv, "no environment reads reachable from the reporters"},
      {kReportLocale, "no locale machinery reachable from the reporters"},
      {kReportThreadId, "no thread identity reachable from the reporters"},
      {kReportPointerFormat,
       "no pointer-value formatting reachable from the reporters"},
      {kUnorderedOutputOrder,
       "no unordered_map/unordered_set iteration reachable from the "
       "reporters"},
      {kRawReportStream,
       "no raw ofstream/fopen writes reachable from the reporters; use "
       "engine::write_text_file_atomic"},
      {kFingerprintAxis,
       "every CampaignSpec axis field must be mixed into "
       "campaign_fingerprint"},
  };
  return kRules;
}

std::vector<Diagnostic> lint_paths(const std::vector<std::string>& paths,
                                   std::string* error) {
  std::vector<std::string> inputs;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable_extension(it->path()))
          inputs.push_back(it->path().string());
      }
    } else if (fs::is_regular_file(path, ec)) {
      inputs.push_back(path);
    } else {
      if (error) *error = "detlint: cannot read '" + path + "'";
      return {};
    }
  }
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());

  std::vector<SourceFile> files;
  files.reserve(inputs.size());
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (error) *error = "detlint: cannot read '" + path + "'";
      return {};
    }
    SourceFile file;
    file.path = normalize(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    file.content = buffer.str();
    index_lines(file);
    scrub(file);
    tokenize(file);
    parse_includes(file);
    files.push_back(std::move(file));
  }
  return Analysis(std::move(files)).run();
}

std::string format(const Diagnostic& d) {
  std::ostringstream out;
  out << d.file << ":" << d.line << ":" << d.col << ": detlint[" << d.rule
      << "]: " << d.message << "\n";
  out << "    " << d.source_line << "\n";
  out << "    ";
  // Expand tabs the same way the source line prints so the caret lands on
  // the offending column.
  for (std::size_t i = 0; i + 1 < d.col && i < d.source_line.size(); ++i)
    out << (d.source_line[i] == '\t' ? '\t' : ' ');
  out << "^\n";
  return out.str();
}

}  // namespace detlint
