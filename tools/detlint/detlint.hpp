// detlint — static checker for this repository's determinism invariants.
//
// The campaign engine's central contract is that reports are byte-identical
// across thread counts, shard sizes, cache settings, worker fleets and
// crash/resume. The CI smoke runs prove that contract dynamically on one
// container; detlint enforces the *bug class* statically, at review time:
//
//   rng-domain             random sources (mt19937, rand(), random_device,
//                          ...) are confined to util/rng.* and engine/
//                          kernel.* — everything else must draw through
//                          util::Rng substreams so the (Domain,
//                          chip_stream_index) layout stays load-bearing.
//   report-clock           no wall/monotonic clock reachable from the
//                          reporters or checkpoint writers (report bytes
//                          must not depend on when they were produced).
//   report-env             no environment reads (getenv & friends) in that
//                          same reachable set.
//   report-locale          no locale machinery (setlocale, imbue, ...) —
//                          number formatting must not vary by host config.
//   report-thread-id       no thread identity (this_thread, get_id) — bytes
//                          must not depend on which worker produced them.
//   report-pointer-format  no pointer-value formatting ("%p", uintptr_t
//                          casts) — addresses differ per run under ASLR.
//   unordered-output-order no iteration over unordered_map/unordered_set in
//                          the reachable set — bucket order is
//                          implementation-defined and would leak into
//                          report/checkpoint/fingerprint bytes.
//   raw-report-stream      no raw ofstream/fopen writes in the reachable
//                          set — report and checkpoint bytes go through
//                          engine::write_text_file_atomic (or the
//                          flush-verified CheckpointWriter), never through
//                          a bare stream a crash can tear.
//   fingerprint-axis       every CampaignSpec axis field must be mixed into
//                          campaign_fingerprint — cross-references
//                          engine/campaign_spec.{hpp,cpp} and fails when a
//                          new sweep axis is added without being
//                          fingerprinted (the ROADMAP "adding a sweep axis"
//                          recipe, machine-checked).
//
// "Reachable from the reporters" is computed over the quoted-include graph:
// the closure of engine/report.hpp and engine/checkpoint.hpp, plus each
// closure header's paired .cpp. The analysis is token-based (comments and
// string literals stripped), so identifiers in comments or strings never
// trigger findings.
//
// Suppression: a comment containing `detlint:allow(<rule>[, <rule>...])`
// silences those rules on the comment's own line and the line immediately
// after it (so both trailing comments and a directive line above the code
// work). Every suppression is a reviewable artifact in the diff.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace detlint {

/// One finding. `line`/`col` are 1-based; `source_line` is the offending
/// line's text for caret rendering.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string rule;
  std::string message;
  std::string source_line;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// The rule table, in documentation order.
const std::vector<RuleInfo>& rules();

/// Lints every .hpp/.h/.cpp/.cc file under the given files/directories as
/// one analysis unit (the include closure and the fingerprint cross-check
/// need the whole set at once). Returns findings sorted by
/// (file, line, col, rule). On an unreadable path, sets *error and returns
/// an empty list.
std::vector<Diagnostic> lint_paths(const std::vector<std::string>& paths,
                                   std::string* error);

/// Renders one finding in the repo's caret-diagnostic style:
///   file:line:col: detlint[rule]: message
///       offending source line
///       ^
std::string format(const Diagnostic& diagnostic);

}  // namespace detlint
