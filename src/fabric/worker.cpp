#include "fabric/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "engine/checkpoint.hpp"
#include "engine/scheduler.hpp"
#include "engine/unit_executor.hpp"
#include "util/expect.hpp"

namespace sfqecc::fabric {
namespace {

std::string hex_fingerprint(std::uint64_t fingerprint) {
  std::ostringstream out;
  out << std::hex << fingerprint;
  return out.str();
}

}  // namespace

std::string default_worker_id() {
  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  std::string id = (host[0] ? std::string(host) : std::string("worker")) + "-" +
                   std::to_string(::getpid());
  for (char& c : id)
    if (c == '/' || c == '.') c = '-';
  return id;
}

WorkerOutcome run_worker(const SpoolPaths& spool, const engine::CampaignSpec& spec,
                         const std::vector<engine::CampaignCell>& cells,
                         const std::vector<link::SchemeSpec>& schemes,
                         const circuit::CellLibrary& library,
                         const WorkerOptions& options) {
  using Clock = std::chrono::steady_clock;
  const std::string worker_id =
      options.worker_id.empty() ? default_worker_id() : options.worker_id;

  engine::SchedulerOptions sched;
  sched.threads = options.threads;
  sched.unit_attempts = options.unit_attempts;
  sched.fail_fast = false;

  engine::UnitExecutorOptions exec_options;
  exec_options.shard_chips = options.shard_chips;
  exec_options.artifact_cache_bytes = options.artifact_cache_bytes;
  exec_options.fault_injector = options.fault_injector;
  exec_options.sim_mode = options.sim_mode;
  // Sized for the largest batch this worker will ever run at once; batches
  // are capped at `threads` units below, so this is also the scratch bound.
  const std::size_t threads =
      engine::resolved_thread_count(sched, static_cast<std::size_t>(-1));
  exec_options.workers = threads;

  engine::UnitExecutor executor(spec, cells, schemes, library, exec_options);
  const std::vector<engine::WorkUnit>& units = executor.units();

  WorkerOutcome outcome;
  create_spool_layout(spool);

  // ---- wait for the manifest (the coordinator's "open for business") ------
  Manifest manifest;
  Clock::time_point last_progress = Clock::now();
  while (!read_manifest(spool, manifest)) {
    if (is_complete(spool)) return outcome;
    if (options.idle_timeout.count() > 0 &&
        Clock::now() - last_progress > options.idle_timeout)
      throw engine::IoError("fabric worker " + worker_id +
                            ": timed out waiting for a manifest in " +
                            spool.root.string());
    std::this_thread::sleep_for(options.poll_interval);
  }
  if (manifest.fingerprint != executor.fingerprint())
    throw ContractViolation(
        "fabric worker " + worker_id + ": manifest fingerprint " +
        hex_fingerprint(manifest.fingerprint) +
        " does not match this worker's campaign configuration (" +
        hex_fingerprint(executor.fingerprint()) +
        ") — coordinator and worker must agree on every campaign flag");
  expects(manifest.units == units.size(),
          "fabric worker: manifest unit count disagrees with the expanded campaign");

  // ---- shard: this worker's append-only result log ------------------------
  // A restarted worker with the same id resumes its shard: units it already
  // recorded are skipped, everything else appends after the existing records.
  // IoErrorPolicy::kFail is deliberate and NOT configurable — under kWarn a
  // lost append would leave the unit unrecorded forever while its lease is
  // marked done, and the coordinator would wait on a unit nobody will
  // deliver. Failing the attempt instead routes the unit into the
  // retry/quarantine ladder, whose failed/ marker the coordinator DOES see.
  const engine::UnitIndexMap index(units, cells.size(), schemes.size(), spec.chips);
  std::vector<char> recorded(units.size(), 0);
  engine::CheckpointData prior;
  const bool shard_existed =
      engine::load_checkpoint(shard_path(spool, worker_id).string(), prior);
  if (shard_existed) {
    expects(prior.fingerprint == executor.fingerprint(),
            "fabric worker: existing shard belongs to a different campaign");
    for (const engine::UnitResult& unit : prior.units) {
      const std::size_t i = index.find(unit.unit);
      if (i != engine::UnitIndexMap::npos) recorded[i] = 1;
    }
  }
  engine::CheckpointWriter writer(shard_path(spool, worker_id).string(),
                                  executor.fingerprint(), shard_existed,
                                  engine::IoErrorPolicy::kFail);

  const engine::FaultInjector* injector = options.fault_injector;
  std::vector<engine::UnitResult> scratch(threads);
  std::map<std::string, std::size_t> claim_attempts;
  std::size_t last_done = static_cast<std::size_t>(-1);
  last_progress = Clock::now();

  for (;;) {
    if (is_complete(spool)) break;
    // Heartbeat BEFORE claiming, so a claim always has a live heartbeat
    // behind it — the coordinator treats a claim without one as stale.
    touch_heartbeat(spool, worker_id);

    // ---- claim a batch: enough leases to feed every thread ----------------
    std::vector<Lease> batch;
    std::size_t batch_units = 0;
    for (const std::string& name : list_leases(spool)) {
      // kLeaseClaim: deterministically skip this claim attempt (simulating a
      // lost claim race / a crash between listing and renaming). The lease
      // stays claimable, by this worker on a later pass or by any other.
      const std::size_t lease_index =
          static_cast<std::size_t>(std::strtoull(name.c_str(), nullptr, 10));
      const std::size_t claim_attempt = claim_attempts[name]++;
      if (injector &&
          injector->fire(engine::FaultSite::kLeaseClaim, lease_index, claim_attempt))
        continue;
      Lease lease;
      if (!claim_lease(spool, name, worker_id, lease)) continue;
      batch_units += lease.units.size();
      batch.push_back(std::move(lease));
      if (batch_units >= threads) break;
    }

    if (batch.empty()) {
      // Nothing claimable. The campaign is over exactly when every published
      // lease carries a done marker (claims held by dead workers keep the
      // count short until the coordinator reclaims them, so we keep polling
      // rather than exit and strand the campaign one worker short).
      const std::size_t done = count_done(spool);
      if (manifest.leases > 0 && done >= manifest.leases) break;
      if (done != last_done) {
        last_done = done;
        last_progress = Clock::now();
      }
      if (options.idle_timeout.count() > 0 &&
          Clock::now() - last_progress > options.idle_timeout)
        throw engine::IoError("fabric worker " + worker_id +
                              ": no spool progress for " +
                              std::to_string(options.idle_timeout.count()) + " ms");
      std::this_thread::sleep_for(options.poll_interval);
      continue;
    }
    last_progress = Clock::now();
    outcome.leases_claimed += batch.size();

    // ---- run the batch through the shared kernel --------------------------
    std::vector<std::size_t> todo;
    todo.reserve(batch_units);
    for (const Lease& lease : batch)
      for (std::size_t unit : lease.units) {
        expects(unit < units.size(),
                "fabric worker: lease references a unit outside the campaign");
        if (!recorded[unit]) todo.push_back(unit);
      }

    std::atomic<std::size_t> executed{0};
    const engine::ScheduleOutcome run = engine::run_units(
        todo.size(),
        [&](std::size_t todo_index, std::size_t worker_index, std::size_t attempt) {
          const std::size_t unit_index = todo[todo_index];
          engine::UnitResult& record = scratch[worker_index];
          executor.execute(unit_index, worker_index, attempt, record);
          // kShardWrite: the bytes are written, only the failure handling is
          // simulated — the kFail writer throws, this attempt fails, and the
          // retry appends a duplicate record (first-wins on merge).
          const bool inject =
              injector &&
              injector->fire(engine::FaultSite::kShardWrite, unit_index, attempt);
          writer.record(record, inject);
          executed.fetch_add(1, std::memory_order_relaxed);
          touch_heartbeat(spool, worker_id);
        },
        sched);
    if (run.first_error) std::rethrow_exception(run.first_error);

    for (std::size_t i = 0; i < todo.size(); ++i) recorded[todo[i]] = 1;
    outcome.units_executed += executed.load(std::memory_order_relaxed);
    for (const engine::UnitFailure& failure : run.failures) {
      recorded[todo[failure.unit]] = 0;  // quarantined, not recorded
      mark_unit_failed(spool, todo[failure.unit], worker_id, failure.attempts,
                       failure.error);
      ++outcome.units_quarantined;
    }

    // Done markers last: a kill anywhere above leaves the claim in place and
    // the coordinator's staleness scan republishes the lease. Only once the
    // marker is durably up is the claim released (a claim outliving its done
    // marker is harmless — the coordinator discards, never reclaims, those).
    for (const Lease& lease : batch) {
      mark_lease_done(spool, lease.name);
      remove_claim(spool, ClaimInfo{lease.name, worker_id});
    }
  }

  outcome.artifact_cache = executor.cache_stats();
  return outcome;
}

}  // namespace sfqecc::fabric
