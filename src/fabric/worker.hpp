// Fabric worker: claims spool leases and executes their units.
//
// A worker is stateless beyond its shard file: it recomputes the campaign —
// cells, schemes, work units, fingerprint — from its own configuration,
// validates that fingerprint against the coordinator's manifest (refusing to
// run someone else's campaign), then loops: claim a batch of leases, run the
// units through the shared engine kernel (engine/unit_executor.hpp), append
// each result to its checkpoint shard, mark the leases done. Results are
// deterministic, so WHICH worker runs a unit never matters — only that some
// worker records it.
//
// Crash safety: the shard is appended-and-flushed per unit (the checkpoint
// writer under IoErrorPolicy::kFail — a result that cannot be recorded is an
// unfinished unit, so the failure flows into the per-unit retry/quarantine
// ladder instead of being warned away), and the done marker is written only
// after every unit of the lease is recorded or quarantined. A worker killed
// mid-lease leaves a claim with a stale heartbeat; the coordinator reclaims
// it, another worker re-runs the lease, and first-wins shard dedup discards
// whatever duplicate prefix the dead worker had recorded.
//
// A unit that exhausts its retry budget is marked in failed/ (with attempt
// count and error) and its lease still completes — one poisoned unit
// quarantines, it does not wedge the campaign.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "circuit/cell_library.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/campaign_spec.hpp"
#include "engine/fault_injection.hpp"
#include "engine/kernel.hpp"
#include "fabric/spool.hpp"
#include "link/scheme_spec.hpp"

namespace sfqecc::fabric {

struct WorkerOptions {
  /// Claim-name-safe id (no '/' or '.'); also names the shard and heartbeat
  /// files, so a restarted worker with the SAME id resumes its own shard.
  /// Empty = "<hostname>-<pid>".
  std::string worker_id;
  std::size_t threads = 0;       ///< 0 = hardware concurrency
  std::size_t shard_chips = 32;  ///< must match the coordinator (fingerprint input)
  std::size_t artifact_cache_bytes = 256ull << 20;
  std::size_t unit_attempts = 3;
  /// How often the idle worker re-polls the spool (and how often a busy one
  /// refreshes its heartbeat between units at minimum).
  std::chrono::milliseconds poll_interval{100};
  /// Give up when the spool makes no observable progress for this long —
  /// manifest absent, or nothing claimable while the done count stalls. 0
  /// waits forever (the coordinator's complete marker is the normal exit).
  std::chrono::milliseconds idle_timeout{0};
  /// Deterministic fault injection (engine/fault_injection.hpp): kLeaseClaim
  /// skips a claim attempt, kShardWrite fails a shard append, and the
  /// executor sites fire inside the kernel. Borrowed, may be null.
  const engine::FaultInjector* fault_injector = nullptr;
  /// Stage-2 evaluation mode (engine::SimMode). Speed-only and byte-
  /// identical across modes, so it is NOT a fingerprint input: workers of
  /// one campaign may mix modes and the merged report is unchanged.
  engine::SimMode sim_mode = engine::SimMode::kAuto;
};

struct WorkerOutcome {
  std::size_t leases_claimed = 0;
  std::size_t units_executed = 0;     ///< recorded to the shard this run
  std::size_t units_quarantined = 0;  ///< marked in failed/ this run
  engine::ArtifactCacheStats artifact_cache;
};

/// Returns the default worker id, "<hostname>-<pid>" with claim-unsafe
/// characters replaced by '-'.
std::string default_worker_id();

/// Runs the worker loop against `spool` until the campaign completes (the
/// complete marker, or every published lease done), throwing IoError on idle
/// timeout and ContractViolation when the manifest's fingerprint or unit
/// count disagrees with this worker's configuration.
WorkerOutcome run_worker(const SpoolPaths& spool, const engine::CampaignSpec& spec,
                         const std::vector<engine::CampaignCell>& cells,
                         const std::vector<link::SchemeSpec>& schemes,
                         const circuit::CellLibrary& library,
                         const WorkerOptions& options);

}  // namespace sfqecc::fabric
