#include "fabric/coordinator.hpp"

#include <algorithm>
#include <thread>
#include <tuple>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/tally_board.hpp"
#include "util/expect.hpp"

namespace sfqecc::fabric {
namespace {

/// Everything the coordinator can observe changing on the spool; the idle
/// timeout fires only when this stays frozen (heartbeats alone are not
/// progress — a worker that pings but never claims is not moving the
/// campaign).
struct SpoolSignature {
  std::size_t done = 0;
  std::vector<std::string> leases;
  std::vector<std::pair<std::string, std::string>> claims;

  bool operator==(const SpoolSignature& other) const {
    return done == other.done && leases == other.leases && claims == other.claims;
  }
};

SpoolSignature observe(const SpoolPaths& spool) {
  SpoolSignature sig;
  sig.done = count_done(spool);
  sig.leases = list_leases(spool);
  for (const ClaimInfo& claim : list_claims(spool))
    sig.claims.emplace_back(claim.lease, claim.worker);
  std::sort(sig.claims.begin(), sig.claims.end());
  return sig;
}

}  // namespace

CoordinatorOutcome run_coordinator(const SpoolPaths& spool,
                                   const engine::CampaignSpec& spec,
                                   const std::vector<engine::CampaignCell>& cells,
                                   const std::vector<link::SchemeSpec>& schemes,
                                   const CoordinatorOptions& options) {
  using Clock = std::chrono::steady_clock;
  for (const link::SchemeSpec& scheme : schemes)
    expects(scheme.encoder != nullptr, "campaign scheme without encoder");
  expects(options.lease_units > 0, "fabric coordinator: lease_units must be >= 1");

  std::vector<std::string> scheme_names;
  scheme_names.reserve(schemes.size());
  for (const link::SchemeSpec& scheme : schemes) scheme_names.push_back(scheme.name);
  const std::uint64_t fingerprint =
      engine::campaign_fingerprint(spec, cells, scheme_names, options.shard_chips);
  const std::vector<engine::WorkUnit> units = engine::make_work_units(
      cells.size(), schemes.size(), spec.chips, options.shard_chips);

  CoordinatorOutcome outcome;
  outcome.result = engine::make_campaign_result_skeleton(cells, schemes);
  outcome.result.units_total = units.size();
  if (units.empty()) return outcome;

  const engine::UnitIndexMap index(units, cells.size(), schemes.size(), spec.chips);
  engine::TallyBoard board(cells.size(), schemes.size(), spec.chips);

  // ---- spool setup: wipe run state, keep shards (they ARE the resume) ------
  create_spool_layout(spool);
  clear_campaign_state(spool);

  // ---- resume: pre-merge existing shards, lease only what is missing -------
  // (A mismatched pre-existing shard throws here — launching a different
  // campaign over a spool holding another campaign's results must be loud.)
  std::vector<char> merged(units.size(), 0);
  std::size_t resumed = 0;
  {
    engine::CheckpointData prior;
    engine::merge_checkpoint_shards(list_shards(spool), fingerprint, prior);
    for (const engine::UnitResult& unit : prior.units) {
      const std::size_t i = index.find(unit.unit);
      if (i == engine::UnitIndexMap::npos || merged[i]) continue;
      merged[i] = 1;
      ++resumed;
    }
  }
  outcome.result.units_resumed = resumed;

  // ---- publish leases, THEN the manifest ------------------------------------
  // Order matters: the manifest is the workers' "open for business" signal,
  // so by the time any worker reads it, every lease is already claimable —
  // a worker can never observe an open campaign with a half-published queue.
  {
    Lease lease;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (merged[i]) continue;
      if (lease.units.empty()) lease.name = std::to_string(i);
      lease.units.push_back(i);
      if (lease.units.size() >= options.lease_units) {
        publish_lease(spool, lease);
        ++outcome.leases_published;
        lease.units.clear();
      }
    }
    if (!lease.units.empty()) {
      publish_lease(spool, lease);
      ++outcome.leases_published;
    }
  }
  Manifest manifest;
  manifest.fingerprint = fingerprint;
  manifest.units = units.size();
  manifest.leases = outcome.leases_published;
  manifest.lease_units = options.lease_units;
  write_manifest(spool, manifest);

  // ---- supervise: wait for done markers, republish stale claims ------------
  if (outcome.leases_published > 0) {
    SpoolSignature last_seen = observe(spool);
    Clock::time_point last_progress = Clock::now();
    for (;;) {
      if (count_done(spool) >= outcome.leases_published) break;

      for (const ClaimInfo& claim : list_claims(spool)) {
        if (is_lease_done(spool, claim.lease)) {
          // Finished lease whose worker died between the done marker and the
          // claim release: nothing to re-run, just retire the claim.
          remove_claim(spool, claim);
          continue;
        }
        const std::optional<std::chrono::milliseconds> age =
            heartbeat_age(spool, claim.worker);
        if (!age || *age > options.lease_timeout) {
          // Dead (or never-started) worker: hand the lease back. The corpse
          // may still append duplicate records later — first-wins dedup and
          // determinism make that harmless.
          if (reclaim_lease(spool, claim)) ++outcome.leases_reclaimed;
        }
      }

      const SpoolSignature now_seen = observe(spool);
      if (!(now_seen == last_seen)) {
        last_seen = now_seen;
        last_progress = Clock::now();
      } else if (options.idle_timeout.count() > 0 &&
                 Clock::now() - last_progress > options.idle_timeout) {
        throw engine::IoError(
            "fabric coordinator: no spool progress for " +
            std::to_string(options.idle_timeout.count()) +
            " ms (" + std::to_string(count_done(spool)) + "/" +
            std::to_string(outcome.leases_published) +
            " leases done — are any workers running?)");
      }
      std::this_thread::sleep_for(options.poll_interval);
    }
  }

  // ---- final merge (kMerge retry ladder, shard ordinal coordinates) --------
  const std::vector<std::string> shards = list_shards(spool);
  engine::CheckpointData data;
  const engine::FaultInjector* injector = options.fault_injector;
  const std::size_t merge_attempts = std::max<std::size_t>(1, options.merge_attempts);
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (injector)
        for (std::size_t ordinal = 0; ordinal < shards.size(); ++ordinal)
          injector->check(engine::FaultSite::kMerge, ordinal, attempt);
      engine::merge_checkpoint_shards(shards, fingerprint, data);
      break;
    } catch (const engine::InjectedFault&) {
      if (attempt + 1 >= merge_attempts) throw;
    }
  }
  outcome.shards_merged = shards.size();

  std::fill(merged.begin(), merged.end(), 0);
  std::size_t merged_count = 0;
  for (const engine::UnitResult& unit : data.units) {
    const std::size_t i = index.find(unit.unit);
    if (i == engine::UnitIndexMap::npos || merged[i]) continue;
    board.scatter(unit);
    merged[i] = 1;
    ++merged_count;
  }
  outcome.result.units_executed = merged_count - resumed;

  // Quarantine flow: a failed/ marker counts only while no shard carries the
  // unit — success (a reclaimed or retried execution that finished) always
  // supersedes an earlier failure. One failure per unit (first marker in
  // (unit, worker) order), mirroring the in-process quarantine list.
  for (const FailedUnit& failure : list_failed(spool)) {
    if (failure.unit >= units.size() || merged[failure.unit]) continue;
    if (!outcome.result.failures.empty() &&
        outcome.result.failures.back().unit_index == failure.unit)
      continue;
    outcome.result.failures.push_back(engine::UnitFailureInfo{
        failure.unit, units[failure.unit], failure.attempts,
        failure.error + " (worker " + failure.worker + ")"});
  }

  // ---- optional canonical merged checkpoint --------------------------------
  // Unit-list order: deterministic, loadable by the single-process runner's
  // --checkpoint for inspection or a later in-process resume.
  if (!options.merged_checkpoint_path.empty()) {
    std::vector<const engine::UnitResult*> by_index(units.size(), nullptr);
    for (const engine::UnitResult& unit : data.units) {
      const std::size_t i = index.find(unit.unit);
      if (i != engine::UnitIndexMap::npos && !by_index[i]) by_index[i] = &unit;
    }
    engine::CheckpointWriter writer(options.merged_checkpoint_path, fingerprint,
                                    /*existing_header=*/false,
                                    engine::IoErrorPolicy::kFail);
    for (const engine::UnitResult* unit : by_index)
      if (unit) writer.record(*unit);
  }

  mark_complete(spool);
  outcome.workers_seen = list_heartbeats(spool).size();
  board.finalize_into(outcome.result, schemes);
  return outcome;
}

}  // namespace sfqecc::fabric
