#include "fabric/spool.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "engine/fault_injection.hpp"
#include "util/expect.hpp"

namespace sfqecc::fabric {
namespace fs = std::filesystem;
namespace {

constexpr const char* kManifestMagic = "sfqecc-campaign-manifest";
constexpr const char* kLeaseMagic = "sfqecc-campaign-lease";
constexpr int kVersion = 1;

/// Publishes `content` at `target` atomically: write + flush a uniquely named
/// sibling, then rename over the target. Readers see the old file or the new
/// one, never a prefix; concurrent publishers of the SAME target (idempotent
/// markers) both succeed and leave one complete copy.
void atomic_publish(const fs::path& target, const std::string& content) {
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp =
      target.parent_path() /
      (".tmp-" + std::to_string(::getpid()) + "-" +
       std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) + "-" +
       target.filename().string());
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << content;
    out.flush();
    if (!out.good()) {
      std::error_code discard;
      fs::remove(tmp, discard);
      throw engine::IoError("spool: cannot write " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    std::error_code discard;
    fs::remove(tmp, discard);
    throw engine::IoError("spool: cannot publish " + target.string() + ": " +
                          ec.message());
  }
}

/// Numeric-first name ordering: lease names are decimal unit indices, and
/// "10" must sort after "9", not before "2".
bool name_less(const std::string& a, const std::string& b) {
  if (a.size() != b.size() && a.find_first_not_of("0123456789") == std::string::npos &&
      b.find_first_not_of("0123456789") == std::string::npos)
    return a.size() < b.size();
  return a < b;
}

std::vector<fs::path> list_directory(const fs::path& dir) {
  std::vector<fs::path> entries;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (!name.empty() && name[0] == '.') continue;  // in-flight tmp files
    entries.push_back(it->path());
  }
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace

void create_spool_layout(const SpoolPaths& spool) {
  std::error_code ec;
  for (const fs::path& dir :
       {spool.root, spool.leases(), spool.claims(), spool.done(), spool.shards(),
        spool.heartbeats(), spool.failed()}) {
    fs::create_directories(dir, ec);
    if (ec)
      throw engine::IoError("spool: cannot create " + dir.string() + ": " +
                            ec.message());
  }
}

void clear_campaign_state(const SpoolPaths& spool) {
  std::error_code ec;
  for (const fs::path& dir : {spool.leases(), spool.claims(), spool.done(),
                              spool.heartbeats(), spool.failed()}) {
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    if (ec)
      throw engine::IoError("spool: cannot reset " + dir.string() + ": " +
                            ec.message());
  }
  fs::remove(spool.manifest(), ec);
  fs::remove(spool.complete(), ec);
}

void write_manifest(const SpoolPaths& spool, const Manifest& manifest) {
  std::ostringstream out;
  out << kManifestMagic << ' ' << kVersion << '\n'
      << "fingerprint " << std::hex << manifest.fingerprint << std::dec << '\n'
      << "units " << manifest.units << '\n'
      << "leases " << manifest.leases << '\n'
      << "lease-units " << manifest.lease_units << '\n';
  atomic_publish(spool.manifest(), out.str());
}

bool read_manifest(const SpoolPaths& spool, Manifest& manifest) {
  std::ifstream in(spool.manifest());
  if (!in) return false;
  std::string magic, key;
  int version = 0;
  in >> magic >> version;
  expects(magic == kManifestMagic && version == kVersion && !in.fail(),
          "spool: unrecognized manifest header");
  manifest = Manifest{};
  while (in >> key) {
    if (key == "fingerprint")
      in >> std::hex >> manifest.fingerprint >> std::dec;
    else if (key == "units")
      in >> manifest.units;
    else if (key == "leases")
      in >> manifest.leases;
    else if (key == "lease-units")
      in >> manifest.lease_units;
    else
      break;  // unknown trailing key: forward-compatible, ignore the rest
    if (in.fail())
      throw ContractViolation("spool: malformed manifest field '" + key + "'");
  }
  return true;
}

void publish_lease(const SpoolPaths& spool, const Lease& lease) {
  expects(!lease.name.empty() && !lease.units.empty(),
          "spool: cannot publish an empty lease");
  std::ostringstream out;
  out << kLeaseMagic << ' ' << kVersion << "\nunits";
  for (std::size_t unit : lease.units) out << ' ' << unit;
  out << " end\n";
  atomic_publish(spool.leases() / (lease.name + ".lease"), out.str());
}

std::vector<std::string> list_leases(const SpoolPaths& spool) {
  std::vector<std::string> names;
  for (const fs::path& path : list_directory(spool.leases()))
    if (path.extension() == ".lease") names.push_back(path.stem().string());
  std::sort(names.begin(), names.end(), name_less);
  return names;
}

bool claim_lease(const SpoolPaths& spool, const std::string& name,
                 const std::string& worker_id, Lease& out) {
  expects(worker_id.find('/') == std::string::npos &&
              worker_id.find('.') == std::string::npos && !worker_id.empty(),
          "spool: worker id must be non-empty without '/' or '.'");
  const fs::path source = spool.leases() / (name + ".lease");
  const fs::path target = spool.claims() / (name + "." + worker_id);
  std::error_code ec;
  fs::rename(source, target, ec);
  if (ec) return false;  // another worker won the race (or the lease vanished)

  std::ifstream in(target);
  std::string magic, key;
  int version = 0;
  in >> magic >> version >> key;
  if (!(magic == kLeaseMagic && version == kVersion && key == "units" && !in.fail()))
    throw ContractViolation("spool: unrecognized lease file " + target.string());
  out.name = name;
  out.units.clear();
  std::string field;
  while (in >> field && field != "end") {
    char* end = nullptr;
    const unsigned long long unit = std::strtoull(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0')
      throw ContractViolation("spool: malformed unit index in lease " +
                              target.string());
    out.units.push_back(static_cast<std::size_t>(unit));
  }
  if (field != "end" || out.units.empty())
    throw ContractViolation("spool: truncated lease file " + target.string());
  return true;
}

std::vector<ClaimInfo> list_claims(const SpoolPaths& spool) {
  std::vector<ClaimInfo> claims;
  for (const fs::path& path : list_directory(spool.claims())) {
    const std::string name = path.filename().string();
    const std::size_t dot = name.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= name.size()) continue;
    claims.push_back(ClaimInfo{name.substr(0, dot), name.substr(dot + 1)});
  }
  return claims;
}

bool reclaim_lease(const SpoolPaths& spool, const ClaimInfo& claim) {
  const fs::path source = spool.claims() / (claim.lease + "." + claim.worker);
  const fs::path target = spool.leases() / (claim.lease + ".lease");
  std::error_code ec;
  fs::rename(source, target, ec);
  return !ec;
}

void remove_claim(const SpoolPaths& spool, const ClaimInfo& claim) {
  std::error_code ec;
  fs::remove(spool.claims() / (claim.lease + "." + claim.worker), ec);
}

void mark_lease_done(const SpoolPaths& spool, const std::string& name) {
  atomic_publish(spool.done() / (name + ".done"), "done\n");
}

bool is_lease_done(const SpoolPaths& spool, const std::string& name) {
  std::error_code ec;
  return fs::exists(spool.done() / (name + ".done"), ec);
}

std::size_t count_done(const SpoolPaths& spool) {
  std::size_t count = 0;
  for (const fs::path& path : list_directory(spool.done()))
    if (path.extension() == ".done") ++count;
  return count;
}

void touch_heartbeat(const SpoolPaths& spool, const std::string& worker_id) {
  atomic_publish(spool.heartbeats() / worker_id, "alive\n");
}

std::optional<std::chrono::milliseconds> heartbeat_age(const SpoolPaths& spool,
                                                       const std::string& worker_id) {
  std::error_code ec;
  const fs::file_time_type stamp =
      fs::last_write_time(spool.heartbeats() / worker_id, ec);
  if (ec) return std::nullopt;
  const auto age = fs::file_time_type::clock::now() - stamp;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
      age < fs::file_time_type::duration::zero() ? fs::file_time_type::duration::zero()
                                                 : age);
}

std::vector<std::string> list_heartbeats(const SpoolPaths& spool) {
  std::vector<std::string> workers;
  for (const fs::path& path : list_directory(spool.heartbeats()))
    workers.push_back(path.filename().string());
  return workers;
}

void mark_unit_failed(const SpoolPaths& spool, std::size_t unit,
                      const std::string& worker_id, std::size_t attempts,
                      const std::string& error) {
  std::ostringstream out;
  out << "attempts " << attempts << '\n' << error << '\n';
  atomic_publish(spool.failed() / (std::to_string(unit) + "." + worker_id),
                 out.str());
}

std::vector<FailedUnit> list_failed(const SpoolPaths& spool) {
  std::vector<FailedUnit> failed;
  for (const fs::path& path : list_directory(spool.failed())) {
    const std::string name = path.filename().string();
    const std::size_t dot = name.find('.');
    if (dot == std::string::npos || dot == 0) continue;
    FailedUnit entry;
    char* end = nullptr;
    const std::string unit_text = name.substr(0, dot);
    entry.unit = static_cast<std::size_t>(std::strtoull(unit_text.c_str(), &end, 10));
    if (*end != '\0') continue;
    entry.worker = name.substr(dot + 1);
    std::ifstream in(path);
    std::string key;
    in >> key >> entry.attempts;
    in.ignore(1, '\n');
    std::getline(in, entry.error);
    failed.push_back(std::move(entry));
  }
  std::sort(failed.begin(), failed.end(), [](const FailedUnit& a, const FailedUnit& b) {
    return a.unit != b.unit ? a.unit < b.unit : a.worker < b.worker;
  });
  return failed;
}

std::filesystem::path shard_path(const SpoolPaths& spool,
                                 const std::string& worker_id) {
  return spool.shards() / (worker_id + ".ckpt");
}

std::vector<std::string> list_shards(const SpoolPaths& spool) {
  std::vector<std::string> shards;
  for (const fs::path& path : list_directory(spool.shards()))
    if (path.extension() == ".ckpt") shards.push_back(path.string());
  return shards;
}

void mark_complete(const SpoolPaths& spool) {
  atomic_publish(spool.complete(), "complete\n");
}

bool is_complete(const SpoolPaths& spool) {
  std::error_code ec;
  return fs::exists(spool.complete(), ec);
}

}  // namespace sfqecc::fabric
