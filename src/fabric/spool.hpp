// Spool-directory protocol of the distributed campaign fabric.
//
// A fabric campaign runs over one shared directory (local disk for
// multi-process runs, NFS/shared storage for multi-machine ones). The
// coordinator (fabric/coordinator.hpp) expands the campaign, publishes the
// pending work as LEASE files, and writes the MANIFEST — the "open for
// business" signal workers poll for. Workers (fabric/worker.hpp) claim
// leases, execute their units through the shared engine kernel, and append
// results to per-worker checkpoint SHARDS; the coordinator merges the shards
// back into the canonical unit-result set and emits reports byte-identical
// to a single-process run.
//
// Layout under the spool root:
//
//   manifest             protocol header + campaign fingerprint + unit/lease
//                        counts (written last at startup, read-only after)
//   leases/<N>.lease     unclaimed lease: the unit indices of one work batch,
//                        N = first unit index (decimal)
//   claims/<N>.<worker>  claimed lease (the SAME file, renamed — claiming is
//                        one atomic POSIX rename, so exactly one worker wins)
//   done/<N>.done        lease N fully processed (every unit recorded to a
//                        shard or marked failed)
//   shards/<worker>.ckpt per-worker result log in the checkpoint format
//                        (engine/checkpoint.hpp) — the fabric's result
//                        transport
//   heartbeats/<worker>  liveness marker, re-touched by the worker; the
//                        coordinator reclaims claims whose worker's heartbeat
//                        goes stale (crash/SIGKILL recovery)
//   failed/<unit>.<worker> quarantine marker: that unit exhausted its retry
//                        budget on that worker (attempt count + error text)
//   complete             terminal marker: the coordinator merged the shards;
//                        workers exit when they see it
//
// Every file is published with write-to-temp + rename, so readers never see
// a torn manifest, lease, or marker. A lease lives in exactly one of leases/
// or claims/ at any instant; done/failed markers are idempotent (a reclaimed
// lease finished by two workers writes the marker twice — same name, same
// meaning, and the shard merge's first-wins dedup makes the duplicate unit
// records harmless because determinism makes them byte-identical).
//
// Relaunch ordering: a coordinator re-run on a used spool clears the
// previous run's state (keeping shards/) before opening the new campaign.
// Until that clear happens, the spool legitimately still describes the
// COMPLETED previous run — a worker launched concurrently may observe its
// complete marker and exit cleanly having claimed nothing. That observation
// is correct, not a protocol violation; to re-use a completed spool, start
// the coordinator before the workers (or call clear_campaign_state first).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace sfqecc::fabric {

/// Path arithmetic over one spool root. Cheap value type; the directories
/// themselves are created by create_spool_layout.
struct SpoolPaths {
  std::filesystem::path root;

  std::filesystem::path manifest() const { return root / "manifest"; }
  std::filesystem::path leases() const { return root / "leases"; }
  std::filesystem::path claims() const { return root / "claims"; }
  std::filesystem::path done() const { return root / "done"; }
  std::filesystem::path shards() const { return root / "shards"; }
  std::filesystem::path heartbeats() const { return root / "heartbeats"; }
  std::filesystem::path failed() const { return root / "failed"; }
  std::filesystem::path complete() const { return root / "complete"; }
};

/// The campaign identity workers validate before touching any lease: a
/// worker whose own CLI flags fingerprint differently is configured for a
/// different campaign and must refuse (the distributed analogue of the
/// checkpoint fingerprint check).
struct Manifest {
  std::uint64_t fingerprint = 0;  ///< engine::campaign_fingerprint
  std::size_t units = 0;          ///< total work units in the campaign
  std::size_t leases = 0;         ///< leases published this coordinator run
  std::size_t lease_units = 0;    ///< max units per lease (informational)
};

/// One claimable batch of work: explicit unit indices into the campaign's
/// deterministic work-unit list (engine/campaign_spec.hpp make_work_units
/// order — the spool protocol's wire contract). Explicit indices, not a
/// range, so a resumed campaign can lease around already-merged holes.
struct Lease {
  std::string name;                ///< file stem: first unit index, decimal
  std::vector<std::size_t> units;  ///< ascending unit indices
};

/// A claimed lease as seen by the coordinator's staleness scan.
struct ClaimInfo {
  std::string lease;   ///< lease name (file stem before the first '.')
  std::string worker;  ///< claiming worker's id
};

/// A quarantine marker: `unit` exhausted its retry budget on `worker`.
struct FailedUnit {
  std::size_t unit = 0;
  std::string worker;
  std::size_t attempts = 0;
  std::string error;
};

/// Creates the spool root and every subdirectory (idempotent).
void create_spool_layout(const SpoolPaths& spool);

/// Removes campaign-run state — leases, claims, done/failed markers,
/// heartbeats, the manifest and the complete marker — while PRESERVING
/// shards/ (the results a resumed coordinator pre-merges). Called by the
/// coordinator before publishing a fresh lease set.
void clear_campaign_state(const SpoolPaths& spool);

void write_manifest(const SpoolPaths& spool, const Manifest& manifest);
/// False when the manifest does not exist yet (coordinator still setting
/// up); throws ContractViolation on a malformed one.
bool read_manifest(const SpoolPaths& spool, Manifest& manifest);

void publish_lease(const SpoolPaths& spool, const Lease& lease);
/// Unclaimed lease names, sorted numerically (first-unit order).
std::vector<std::string> list_leases(const SpoolPaths& spool);

/// Atomically claims lease `name` for `worker_id` (rename into claims/) and
/// parses its unit list into `out`. Returns false when another worker won
/// the rename race. `worker_id` must be claim-name safe (no '/' or '.').
bool claim_lease(const SpoolPaths& spool, const std::string& name,
                 const std::string& worker_id, Lease& out);
std::vector<ClaimInfo> list_claims(const SpoolPaths& spool);
/// Moves a (stale) claim back to leases/ so another worker can take it.
/// Returns false when the claim no longer exists (its worker finished or a
/// concurrent scan already reclaimed it).
bool reclaim_lease(const SpoolPaths& spool, const ClaimInfo& claim);
/// Deletes a claim file outright: workers release their claims once the done
/// marker is up, and the coordinator discards stale claims whose lease is
/// already done (reclaiming those would re-run finished work).
void remove_claim(const SpoolPaths& spool, const ClaimInfo& claim);

void mark_lease_done(const SpoolPaths& spool, const std::string& name);
bool is_lease_done(const SpoolPaths& spool, const std::string& name);
std::size_t count_done(const SpoolPaths& spool);

/// (Re)writes the worker's liveness marker. Workers touch it before their
/// first claim attempt and after every unit, so a live worker's heartbeat
/// age stays far below any sane lease timeout.
void touch_heartbeat(const SpoolPaths& spool, const std::string& worker_id);
/// Age of the worker's heartbeat, or nullopt when it never heartbeat (a
/// claim without a heartbeat is from a worker that died pre-claim or a
/// previous campaign run — the coordinator treats it as stale).
std::optional<std::chrono::milliseconds> heartbeat_age(
    const SpoolPaths& spool, const std::string& worker_id);

/// Worker ids that have ever heartbeat on this spool (campaign-run scoped:
/// clear_campaign_state resets it).
std::vector<std::string> list_heartbeats(const SpoolPaths& spool);

void mark_unit_failed(const SpoolPaths& spool, std::size_t unit,
                      const std::string& worker_id, std::size_t attempts,
                      const std::string& error);
/// All quarantine markers, sorted by (unit, worker). The coordinator
/// subtracts units that a later (reclaimed) execution merged successfully —
/// success supersedes failure.
std::vector<FailedUnit> list_failed(const SpoolPaths& spool);

std::filesystem::path shard_path(const SpoolPaths& spool,
                                 const std::string& worker_id);
/// All shard files, sorted by path — the canonical merge order (and the
/// shard-ordinal coordinate of the kMerge fault site).
std::vector<std::string> list_shards(const SpoolPaths& spool);

void mark_complete(const SpoolPaths& spool);
bool is_complete(const SpoolPaths& spool);

}  // namespace sfqecc::fabric
