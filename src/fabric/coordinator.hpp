// Fabric coordinator: fans a campaign out over spool workers and merges the
// result byte-identically to a single-machine run.
//
// The coordinator never executes a unit. It expands the campaign, publishes
// every pending unit as lease files, writes the manifest (the signal workers
// poll for), then supervises: stale claims — a worker whose heartbeat went
// quiet, typically SIGKILLed mid-lease — are reclaimed back into leases/ for
// the surviving workers, until every lease carries a done marker. It then
// merges the per-worker checkpoint shards (first-wins dedup; canonical
// (cell, scheme, chip) order), scatters the merged units through the same
// TallyBoard the in-process engine uses, and returns a CampaignResult whose
// reports are byte-identical to `run_campaign` on one machine — the fabric
// moves WHERE units run, never WHAT they produce.
//
// Failure semantics mirror the in-process engine:
//   - a unit quarantined by a worker (failed/ marker) with no successful
//     record in any shard lands in CampaignResult::failures — success
//     supersedes a stale failure marker, because a reclaimed lease may have
//     failed on one worker and completed on another;
//   - a coordinator re-run on the same spool pre-merges the existing shards
//     and leases only the remaining units (the distributed analogue of
//     checkpoint resume), counting them in units_resumed;
//   - the merge itself retries under the kMerge fault site, shard ordinal =
//     position in the sorted shard list.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/campaign_spec.hpp"
#include "engine/fault_injection.hpp"
#include "fabric/spool.hpp"
#include "link/scheme_spec.hpp"

namespace sfqecc::fabric {

struct CoordinatorOptions {
  /// Units per lease: the fabric's work-distribution granularity. Small
  /// values spread load and shrink the re-run window after a worker death;
  /// large values cut spool traffic. Unit boundaries (shard_chips) are
  /// unaffected — lease size never changes a single byte of any report.
  std::size_t lease_units = 8;
  /// Chips per work unit — a campaign_fingerprint input, so coordinator and
  /// workers must agree on it.
  std::size_t shard_chips = 32;
  std::chrono::milliseconds poll_interval{100};
  /// A claim whose worker heartbeat is older than this (or missing) is
  /// considered dead and its lease republished. Must comfortably exceed a
  /// worker's per-unit runtime, since busy workers heartbeat between units.
  std::chrono::milliseconds lease_timeout{2000};
  /// Give up when the spool makes no progress — no new done markers, no
  /// claim movement — for this long. 0 = wait forever. This is the guard
  /// against a campaign with no (surviving) workers at all.
  std::chrono::milliseconds idle_timeout{0};
  /// Attempts for the final shard merge (the kMerge fault site retries
  /// in-place, like any unit retry ladder).
  std::size_t merge_attempts = 3;
  /// When non-empty, the merged units are also written here as one canonical
  /// checkpoint file (unit-list order) — loadable by `campaign_runner
  /// --checkpoint` for inspection or a later single-process resume.
  std::string merged_checkpoint_path;
  /// Deterministic fault injection: kMerge fires here; kLeaseClaim /
  /// kShardWrite and the kernel sites fire in the workers (which run in
  /// other processes — give them their own --inject flags).
  const engine::FaultInjector* fault_injector = nullptr;
};

struct CoordinatorOutcome {
  engine::CampaignResult result;
  std::size_t leases_published = 0;
  std::size_t leases_reclaimed = 0;  ///< stale-claim republishes
  std::size_t shards_merged = 0;     ///< shard files read by the final merge
  std::size_t workers_seen = 0;      ///< distinct worker ids that heartbeat
};

/// Runs a campaign over `spool`. Blocks until every lease is done (workers
/// may join at any time after the manifest appears), throws IoError on idle
/// timeout. The returned CampaignResult is byte-equivalent to running
/// engine::run_cells over the same campaign in one process — including
/// failures, which appear exactly like in-process quarantined units.
CoordinatorOutcome run_coordinator(const SpoolPaths& spool,
                                   const engine::CampaignSpec& spec,
                                   const std::vector<engine::CampaignCell>& cells,
                                   const std::vector<link::SchemeSpec>& schemes,
                                   const CoordinatorOptions& options);

}  // namespace sfqecc::fabric
