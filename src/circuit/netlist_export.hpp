// Netlist exporters.
//
// * JoSIM-style hierarchical SPICE netlist: each cell becomes a subcircuit
//   instance (X...), nets become nodes, primary inputs become sources —
//   the hand-off format a designer would feed to the real JoSIM after
//   replacing the behavioural .subckt stubs with the ColdFlux cells.
// * Graphviz DOT: the circuit as a DAG for visual inspection (data edges
//   solid, clock edges dashed).
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace sfqecc::circuit {

/// Serializes the netlist as a JoSIM/SPICE-style deck. Deterministic.
std::string to_spice(const Netlist& netlist);

/// Serializes the netlist as a Graphviz digraph. Deterministic.
std::string to_dot(const Netlist& netlist);

}  // namespace sfqecc::circuit
