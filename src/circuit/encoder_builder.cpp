#include "circuit/encoder_builder.hpp"

#include <map>
#include <string>
#include <vector>

#include "circuit/balance.hpp"
#include "circuit/clock_tree.hpp"
#include "circuit/fanout.hpp"
#include "util/expect.hpp"

namespace sfqecc::circuit {
namespace {

XorProgram run_synthesis(const code::Gf2Matrix& generator, SynthesisAlgorithm algorithm) {
  switch (algorithm) {
    case SynthesisAlgorithm::kPaar: return synthesize_paar(generator);
    case SynthesisAlgorithm::kPaarUnbounded: return synthesize_paar_unbounded(generator);
    case SynthesisAlgorithm::kTree: return synthesize_tree(generator);
    case SynthesisAlgorithm::kChain: return synthesize_chain(generator);
  }
  throw ContractViolation("unknown synthesis algorithm");
}

}  // namespace

const char* synthesis_algorithm_name(SynthesisAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case SynthesisAlgorithm::kPaar: return "paar";
    case SynthesisAlgorithm::kPaarUnbounded: return "paar-unbounded";
    case SynthesisAlgorithm::kTree: return "tree";
    case SynthesisAlgorithm::kChain: return "chain";
  }
  return "?";
}

std::optional<SynthesisAlgorithm> parse_synthesis_algorithm(
    std::string_view tag) noexcept {
  for (SynthesisAlgorithm algorithm :
       {SynthesisAlgorithm::kPaar, SynthesisAlgorithm::kPaarUnbounded,
        SynthesisAlgorithm::kTree, SynthesisAlgorithm::kChain})
    if (tag == synthesis_algorithm_name(algorithm)) return algorithm;
  return std::nullopt;
}

BuiltEncoder build_encoder(const code::LinearCode& code, const CellLibrary& library,
                           const EncoderBuildOptions& options) {
  expects(library.has(CellType::kXor) && library.has(CellType::kDff) &&
              library.has(CellType::kSplitter) && library.has(CellType::kSfqToDc),
          "library lacks required cell types");

  XorProgram program = run_synthesis(code.generator(), options.algorithm);
  const std::size_t k = program.num_inputs();
  const std::size_t depth = program.depth();

  BuiltEncoder built(Netlist(code.name() + "-encoder"), program);
  Netlist& nl = built.netlist;
  built.logic_depth = depth;

  // net_at[signal][d] = net carrying the signal delayed to depth d.
  std::vector<std::map<std::size_t, NetId>> net_at(k + program.ops().size());

  for (std::size_t i = 0; i < k; ++i) {
    const NetId net = nl.add_primary_input("m" + std::to_string(i + 1));
    built.message_inputs.push_back(net);
    net_at[i][0] = net;
  }

  // Tap requirements (only when balancing).
  std::vector<std::vector<std::size_t>> taps(k + program.ops().size());
  if (options.balance_paths) {
    for (const SignalTaps& st : balancing_taps(program, depth)) taps[st.signal] = st.taps;
  }

  auto signal_name = [&](std::size_t signal) {
    return signal < k ? "m" + std::to_string(signal + 1)
                      : "x" + std::to_string(signal - k + 1);
  };

  // Builds the DFF chain of `signal` from its native depth to its deepest tap.
  auto build_chain = [&](std::size_t signal, std::size_t native_depth) {
    if (taps[signal].empty()) return;
    const std::size_t deepest = taps[signal].back();
    NetId prev = net_at[signal].at(native_depth);
    for (std::size_t d = native_depth + 1; d <= deepest; ++d) {
      const std::string stage = signal_name(signal) + "_d" + std::to_string(d);
      const CellId dff = nl.add_cell(CellType::kDff, "dff_" + stage, {prev}, {stage});
      prev = nl.cell(dff).outputs[0];
      net_at[signal][d] = prev;
    }
  };

  auto resolve = [&](const SignalRef& ref, std::size_t at_depth) {
    const std::size_t signal = ref.is_op ? k + ref.index : ref.index;
    const auto it = net_at[signal].find(at_depth);
    expects(it != net_at[signal].end(), "signal not available at required depth");
    return it->second;
  };

  // Input chains first (ops may consume their taps).
  for (std::size_t i = 0; i < k; ++i) build_chain(i, 0);

  // XOR cells in program order (topological), then each op's own chain.
  for (std::size_t i = 0; i < program.ops().size(); ++i) {
    const XorOp& op = program.ops()[i];
    const std::size_t d = program.signal_depth(SignalRef{true, i});
    const std::size_t arm_depth = options.balance_paths ? d - 1 : std::size_t{0};
    const NetId a = options.balance_paths
                        ? resolve(op.a, std::max(arm_depth, program.signal_depth(op.a)))
                        : net_at[op.a.is_op ? k + op.a.index : op.a.index].begin()->second;
    const NetId b = options.balance_paths
                        ? resolve(op.b, std::max(arm_depth, program.signal_depth(op.b)))
                        : net_at[op.b.is_op ? k + op.b.index : op.b.index].begin()->second;
    const std::string out_name = "x" + std::to_string(i + 1);
    const CellId cell = nl.add_cell(CellType::kXor, "xor_" + out_name, {a, b}, {out_name});
    net_at[k + i][d] = nl.cell(cell).outputs[0];
    if (options.balance_paths) build_chain(k + i, d);
  }

  // Outputs: balanced to the circuit depth, then converted to DC.
  for (std::size_t j = 0; j < program.outputs().size(); ++j) {
    const SignalRef& out = program.outputs()[j];
    const std::size_t at =
        options.balance_paths ? depth : program.signal_depth(out);
    const NetId net = resolve(out, at);
    if (options.add_output_converters) {
      const CellId conv = nl.add_cell(CellType::kSfqToDc, "sfqdc_c" + std::to_string(j + 1),
                                      {net}, {"c" + std::to_string(j + 1)});
      const NetId dc = nl.cell(conv).outputs[0];
      nl.mark_primary_output(dc);
      built.codeword_outputs.push_back(dc);
    } else {
      nl.mark_primary_output(net);
      built.codeword_outputs.push_back(net);
    }
  }

  if (options.build_clock_tree && clocked_cell_count(nl) > 0) {
    built.clock_input = nl.add_primary_input("clk");
    attach_clock(nl, built.clock_input);
  }
  legalize_fanout(nl);
  nl.validate(/*require_clocks=*/options.build_clock_tree);
  return built;
}

BuiltEncoder build_no_encoder_link(std::size_t bits, const CellLibrary& library) {
  expects(bits > 0, "link needs at least one bit");
  expects(library.has(CellType::kSfqToDc), "library lacks SFQ-to-DC");

  // Identity "code": pass-through program with no ops.
  code::Gf2Matrix identity = code::Gf2Matrix::identity(bits);
  std::vector<SignalRef> outs;
  for (std::size_t i = 0; i < bits; ++i) outs.push_back(SignalRef{false, i});
  XorProgram program(bits, {}, outs);

  BuiltEncoder built(Netlist("no-encoder-link"), program);
  Netlist& nl = built.netlist;
  for (std::size_t i = 0; i < bits; ++i) {
    const NetId in = nl.add_primary_input("m" + std::to_string(i + 1));
    built.message_inputs.push_back(in);
    const CellId conv = nl.add_cell(CellType::kSfqToDc, "sfqdc_c" + std::to_string(i + 1),
                                    {in}, {"c" + std::to_string(i + 1)});
    const NetId dc = nl.cell(conv).outputs[0];
    nl.mark_primary_output(dc);
    built.codeword_outputs.push_back(dc);
  }
  nl.validate(/*require_clocks=*/false);
  return built;
}

}  // namespace sfqecc::circuit
