#include "circuit/xor_synth.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <set>

#include "util/expect.hpp"

namespace sfqecc::circuit {

using code::BitVec;
using code::Gf2Matrix;

XorProgram::XorProgram(std::size_t num_inputs, std::vector<XorOp> ops,
                       std::vector<SignalRef> outputs)
    : num_inputs_(num_inputs), ops_(std::move(ops)), outputs_(std::move(outputs)) {
  op_depth_.reserve(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const XorOp& op = ops_[i];
    auto arm_depth = [&](const SignalRef& r) -> std::size_t {
      if (!r.is_op) {
        sfqecc::expects(r.index < num_inputs_, "op references unknown input");
        return 0;
      }
      sfqecc::expects(r.index < i, "op references a later op");
      return op_depth_[r.index];
    };
    op_depth_.push_back(1 + std::max(arm_depth(op.a), arm_depth(op.b)));
  }
  for (const SignalRef& out : outputs_) {
    sfqecc::expects(out.is_op ? out.index < ops_.size() : out.index < num_inputs_,
                    "output references unknown signal");
  }
}

std::size_t XorProgram::signal_depth(const SignalRef& ref) const {
  if (!ref.is_op) return 0;
  sfqecc::expects(ref.index < ops_.size(), "unknown op");
  return op_depth_[ref.index];
}

std::size_t XorProgram::depth() const {
  std::size_t d = 0;
  for (std::size_t v : op_depth_) d = std::max(d, v);
  return d;
}

BitVec XorProgram::evaluate(const BitVec& inputs) const {
  sfqecc::expects(inputs.size() == num_inputs_, "input length mismatch");
  std::vector<bool> values(ops_.size());
  auto value_of = [&](const SignalRef& r) {
    return r.is_op ? values[r.index] : inputs.get(r.index);
  };
  for (std::size_t i = 0; i < ops_.size(); ++i)
    values[i] = value_of(ops_[i].a) != value_of(ops_[i].b);
  BitVec out(outputs_.size());
  for (std::size_t j = 0; j < outputs_.size(); ++j) out.set(j, value_of(outputs_[j]));
  return out;
}

BitVec XorProgram::signal_support(const SignalRef& ref) const {
  if (!ref.is_op) {
    BitVec v(num_inputs_);
    v.set(ref.index, true);
    return v;
  }
  sfqecc::expects(ref.index < ops_.size(), "unknown op");
  // Supports are small; recompute front-to-back.
  std::vector<BitVec> sup;
  sup.reserve(ops_.size());
  auto support_of = [&](const SignalRef& r) {
    if (!r.is_op) {
      BitVec v(num_inputs_);
      v.set(r.index, true);
      return v;
    }
    return sup[r.index];
  };
  for (std::size_t i = 0; i <= ref.index; ++i)
    sup.push_back(support_of(ops_[i].a) ^ support_of(ops_[i].b));
  return sup[ref.index];
}

namespace {

/// Minimum achievable tree depth when merging signals of the given depths
/// with two-input XORs: repeatedly combine the two shallowest.
std::size_t min_completion_depth(std::vector<std::size_t> depths) {
  sfqecc::expects(!depths.empty(), "empty merge");
  std::sort(depths.begin(), depths.end());
  while (depths.size() > 1) {
    const std::size_t merged = std::max(depths[0], depths[1]) + 1;
    depths.erase(depths.begin(), depths.begin() + 2);
    depths.insert(std::lower_bound(depths.begin(), depths.end(), merged), merged);
  }
  return depths[0];
}

std::size_t ceil_log2(std::size_t v) {
  std::size_t d = 0;
  while ((std::size_t{1} << d) < v) ++d;
  return d;
}

/// Column state during synthesis: the set of signal indices whose XOR equals
/// the target output.
using Column = std::set<std::size_t>;

std::vector<Column> initial_columns(const Gf2Matrix& g) {
  std::vector<Column> columns(g.cols());
  for (std::size_t j = 0; j < g.cols(); ++j) {
    for (std::size_t i = 0; i < g.rows(); ++i)
      if (g.get(i, j)) columns[j].insert(i);
    sfqecc::expects(!columns[j].empty(),
                    "generator has a zero column (constant output)");
  }
  return columns;
}

}  // namespace

namespace {

XorProgram paar_impl(const Gf2Matrix& g, std::size_t depth_bound);

}  // namespace

XorProgram synthesize_paar(const Gf2Matrix& g) {
  // Depth bound: the minimum achievable circuit depth (all inputs at depth 0).
  std::size_t depth_bound = 0;
  for (const Column& c : initial_columns(g))
    depth_bound = std::max(depth_bound, ceil_log2(c.size()));
  return paar_impl(g, depth_bound);
}

XorProgram synthesize_paar_unbounded(const Gf2Matrix& g) {
  // A column of weight w can never need depth beyond w-1 (a chain), so this
  // bound never constrains the greedy choice.
  std::size_t loose = 1;
  for (const Column& c : initial_columns(g)) loose = std::max(loose, c.size());
  return paar_impl(g, g.rows() + loose);
}

namespace {

XorProgram paar_impl(const Gf2Matrix& g, std::size_t depth_bound) {
  const std::size_t k = g.rows();
  std::vector<Column> columns = initial_columns(g);

  std::vector<std::size_t> depth(k, 0);  // depth per signal
  std::vector<XorOp> ops;

  auto column_feasible_after = [&](const Column& col, std::size_t a, std::size_t b,
                                   std::size_t new_depth) {
    // Depths of the column's signals after replacing {a, b} by the new signal.
    std::vector<std::size_t> ds;
    ds.reserve(col.size() - 1);
    for (std::size_t s : col)
      if (s != a && s != b) ds.push_back(depth[s]);
    ds.push_back(new_depth);
    return min_completion_depth(std::move(ds)) <= depth_bound;
  };

  auto remaining = [&]() {
    std::size_t r = 0;
    for (const Column& c : columns) r += c.size() - 1;
    return r;
  };

  while (remaining() > 0) {
    // Count, for each signal pair, the columns where substitution is feasible.
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> counts;
    for (const Column& col : columns) {
      if (col.size() < 2) continue;
      for (auto ia = col.begin(); ia != col.end(); ++ia) {
        for (auto ib = std::next(ia); ib != col.end(); ++ib) {
          const std::size_t a = *ia, b = *ib;
          const std::size_t nd = std::max(depth[a], depth[b]) + 1;
          if (nd > depth_bound) continue;
          if (!column_feasible_after(col, a, b, nd)) continue;
          ++counts[{a, b}];
        }
      }
    }
    sfqecc::ensures(!counts.empty(), "no feasible pair; depth bound unreachable");

    // Greedy choice: maximum feasible count; std::map iteration order gives
    // the lexicographically smallest pair on ties.
    std::pair<std::size_t, std::size_t> best{};
    std::size_t best_count = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best_count) {
        best = pair;
        best_count = count;
      }
    }

    const auto [a, b] = best;
    const std::size_t new_index = k + ops.size();
    const std::size_t new_depth = std::max(depth[a], depth[b]) + 1;
    ops.push_back(XorOp{
        SignalRef{a >= k, a >= k ? a - k : a},
        SignalRef{b >= k, b >= k ? b - k : b},
    });
    depth.push_back(new_depth);

    for (Column& col : columns) {
      if (col.size() < 2 || !col.count(a) || !col.count(b)) continue;
      if (!column_feasible_after(col, a, b, new_depth)) continue;
      col.erase(a);
      col.erase(b);
      col.insert(new_index);
    }
  }

  std::vector<SignalRef> outputs;
  outputs.reserve(columns.size());
  for (const Column& col : columns) {
    const std::size_t s = *col.begin();
    outputs.push_back(SignalRef{s >= k, s >= k ? s - k : s});
  }
  return XorProgram(k, std::move(ops), std::move(outputs));
}

}  // namespace

XorProgram synthesize_tree(const Gf2Matrix& g) {
  const std::size_t k = g.rows();
  std::vector<XorOp> ops;
  std::vector<SignalRef> outputs;
  for (std::size_t j = 0; j < g.cols(); ++j) {
    std::vector<SignalRef> level;
    for (std::size_t i = 0; i < k; ++i)
      if (g.get(i, j)) level.push_back(SignalRef{false, i});
    sfqecc::expects(!level.empty(), "generator has a zero column");
    while (level.size() > 1) {
      std::vector<SignalRef> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        ops.push_back(XorOp{level[i], level[i + 1]});
        next.push_back(SignalRef{true, ops.size() - 1});
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    outputs.push_back(level[0]);
  }
  return XorProgram(k, std::move(ops), std::move(outputs));
}

XorProgram synthesize_chain(const Gf2Matrix& g) {
  const std::size_t k = g.rows();
  std::vector<XorOp> ops;
  std::vector<SignalRef> outputs;
  for (std::size_t j = 0; j < g.cols(); ++j) {
    SignalRef acc{};
    bool first = true;
    for (std::size_t i = 0; i < k; ++i) {
      if (!g.get(i, j)) continue;
      if (first) {
        acc = SignalRef{false, i};
        first = false;
      } else {
        ops.push_back(XorOp{acc, SignalRef{false, i}});
        acc = SignalRef{true, ops.size() - 1};
      }
    }
    sfqecc::expects(!first, "generator has a zero column");
    outputs.push_back(acc);
  }
  return XorProgram(k, std::move(ops), std::move(outputs));
}

namespace {

/// Depth-first search for a program reaching all targets within `budget`
/// additional ops. `signals` holds the support mask of every available signal.
bool optimal_dfs(std::vector<std::uint64_t>& signals, const std::set<std::uint64_t>& targets,
                 std::size_t budget, std::vector<XorOp>& ops, std::size_t num_inputs) {
  std::size_t missing = 0;
  for (std::uint64_t t : targets)
    if (std::find(signals.begin(), signals.end(), t) == signals.end()) ++missing;
  if (missing == 0) return true;
  if (missing > budget) return false;

  for (std::size_t a = 0; a < signals.size(); ++a) {
    for (std::size_t b = a + 1; b < signals.size(); ++b) {
      const std::uint64_t merged = signals[a] ^ signals[b];
      if (merged == 0) continue;
      if (std::find(signals.begin(), signals.end(), merged) != signals.end()) continue;
      signals.push_back(merged);
      ops.push_back(XorOp{SignalRef{a >= num_inputs, a >= num_inputs ? a - num_inputs : a},
                          SignalRef{b >= num_inputs, b >= num_inputs ? b - num_inputs : b}});
      if (optimal_dfs(signals, targets, budget - 1, ops, num_inputs)) return true;
      signals.pop_back();
      ops.pop_back();
    }
  }
  return false;
}

}  // namespace

XorProgram synthesize_optimal(const Gf2Matrix& g, std::size_t max_ops_bound) {
  const std::size_t k = g.rows();
  sfqecc::expects(k <= 6, "optimal search is exponential; k <= 6 only");

  std::set<std::uint64_t> targets;
  std::vector<std::uint64_t> target_per_column(g.cols());
  for (std::size_t j = 0; j < g.cols(); ++j) {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < k; ++i)
      if (g.get(i, j)) mask |= std::uint64_t{1} << i;
    sfqecc::expects(mask != 0, "generator has a zero column");
    target_per_column[j] = mask;
    if (std::popcount(mask) > 1) targets.insert(mask);
  }

  for (std::size_t budget = 0; budget <= max_ops_bound; ++budget) {
    std::vector<std::uint64_t> signals;
    for (std::size_t i = 0; i < k; ++i) signals.push_back(std::uint64_t{1} << i);
    std::vector<XorOp> ops;
    if (optimal_dfs(signals, targets, budget, ops, k)) {
      // Map each column to the signal computing it.
      std::vector<SignalRef> outputs;
      for (std::uint64_t mask : target_per_column) {
        const auto it = std::find(signals.begin(), signals.end(), mask);
        sfqecc::ensures(it != signals.end(), "target not produced");
        const auto idx = static_cast<std::size_t>(it - signals.begin());
        outputs.push_back(SignalRef{idx >= k, idx >= k ? idx - k : idx});
      }
      return XorProgram(k, std::move(ops), std::move(outputs));
    }
  }
  throw ContractViolation("optimal synthesis exceeded the op bound");
}

}  // namespace sfqecc::circuit
