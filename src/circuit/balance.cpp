#include "circuit/balance.hpp"

#include <map>
#include <set>

#include "util/expect.hpp"

namespace sfqecc::circuit {
namespace {

std::size_t signal_index(const XorProgram& program, const SignalRef& ref) {
  return ref.is_op ? program.num_inputs() + ref.index : ref.index;
}

}  // namespace

std::vector<SignalTaps> balancing_taps(const XorProgram& program,
                                       std::size_t target_depth) {
  expects(target_depth >= program.depth(), "target depth below circuit depth");

  std::map<std::size_t, std::set<std::size_t>> taps;  // signal -> required depths
  auto require = [&](const SignalRef& ref, std::size_t at_depth) {
    const std::size_t native = program.signal_depth(ref);
    expects(at_depth >= native, "consumer earlier than producer");
    if (at_depth > native) taps[signal_index(program, ref)].insert(at_depth);
  };

  for (std::size_t i = 0; i < program.ops().size(); ++i) {
    const XorOp& op = program.ops()[i];
    const std::size_t d = program.signal_depth(SignalRef{true, i});
    require(op.a, d - 1);
    require(op.b, d - 1);
  }
  for (const SignalRef& out : program.outputs()) require(out, target_depth);

  std::vector<SignalTaps> result;
  for (const auto& [signal, depths] : taps) {
    SignalTaps st;
    st.signal = signal;
    st.native_depth =
        signal < program.num_inputs()
            ? 0
            : program.signal_depth(SignalRef{true, signal - program.num_inputs()});
    st.taps.assign(depths.begin(), depths.end());
    result.push_back(std::move(st));
  }
  return result;
}

std::size_t balancing_dff_count(const XorProgram& program, std::size_t target_depth) {
  std::size_t count = 0;
  for (const SignalTaps& st : balancing_taps(program, target_depth))
    count += st.taps.back() - st.native_depth;  // chain reaches the deepest tap
  return count;
}

}  // namespace sfqecc::circuit
