#include "circuit/netlist_stats.hpp"

#include <queue>
#include <sstream>
#include <vector>

namespace sfqecc::circuit {

std::string NetlistStats::inventory() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [type, count] : cell_counts) {
    if (count == 0) continue;
    if (!first) out << ", ";
    out << count << ' ' << cell_type_name(type);
    first = false;
  }
  return out.str();
}

NetlistStats compute_stats(const Netlist& netlist, const CellLibrary& library,
                           NetId clock_net) {
  NetlistStats stats;
  for (const Cell& c : netlist.cells()) {
    ++stats.cell_counts[c.type];
    const CellSpec& spec = library.spec(c.type);
    stats.jj_count += spec.jj_count;
    stats.static_power_uw += spec.static_power_uw;
    stats.area_mm2 += spec.area_mm2;
  }

  // Classify splitters by walking the clock cone: every cell fed (directly or
  // through other splitters) by the clock primary input.
  std::vector<bool> in_clock_cone(netlist.cell_count(), false);
  if (clock_net != kInvalidId) {
    std::queue<NetId> frontier;
    frontier.push(clock_net);
    while (!frontier.empty()) {
      const NetId net = frontier.front();
      frontier.pop();
      for (const Sink& s : netlist.net(net).sinks) {
        const Cell& c = netlist.cell(s.cell);
        if (c.type == CellType::kSplitter && !in_clock_cone[c.id]) {
          in_clock_cone[c.id] = true;
          for (NetId out : c.outputs) frontier.push(out);
        }
      }
    }
  }
  for (const Cell& c : netlist.cells()) {
    if (c.type != CellType::kSplitter) continue;
    if (in_clock_cone[c.id])
      ++stats.clock_splitters;
    else
      ++stats.data_splitters;
  }
  return stats;
}

}  // namespace sfqecc::circuit
