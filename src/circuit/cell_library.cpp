#include "circuit/cell_library.hpp"

#include "util/expect.hpp"

namespace sfqecc::circuit {

const char* cell_type_name(CellType type) noexcept {
  switch (type) {
    case CellType::kXor: return "XOR";
    case CellType::kAnd: return "AND";
    case CellType::kOr: return "OR";
    case CellType::kNot: return "NOT";
    case CellType::kDff: return "DFF";
    case CellType::kSplitter: return "SPL";
    case CellType::kJtl: return "JTL";
    case CellType::kMerger: return "MRG";
    case CellType::kTff: return "TFF";
    case CellType::kSfqToDc: return "SFQDC";
    case CellType::kDcToSfq: return "DCSFQ";
  }
  return "?";
}

CellLibrary::CellLibrary(std::string name, std::map<CellType, CellSpec> specs)
    : name_(std::move(name)), specs_(std::move(specs)) {}

const CellSpec& CellLibrary::spec(CellType type) const {
  auto it = specs_.find(type);
  expects(it != specs_.end(), "cell type not in library");
  return it->second;
}

const CellLibrary& coldflux_library() {
  // JJ count, power and area for XOR/DFF/SPL/SFQDC are the exact solution of
  // the paper's Table II (three encoder rows as linear equations; splitter
  // power 1.4 uW and area 0.002 mm^2 chosen as the free parameters). See
  // DESIGN.md §3. Remaining cells use representative RSFQlib-scale values.
  //
  // PPV thresholds encode per-cell failure probabilities at the paper's
  // +/-20 % spread through q(h*) = 2*Phi(-h* * threshold / (spread *
  // sensitivity)). With the final calibration (EXPERIMENTS.md):
  //   SFQ-to-DC 0.418 -> ~6.0 % in trouble (the Suzuki-stack-class output
  //     driver is the known weak point of SFQ-CMOS interfaces),
  //   XOR 0.572 -> ~1.0 %, DFF 0.645 -> ~0.37 %, splitter 0.618 -> ~0.55 %.
  // These anchor the no-encoder P(N=0) = 80 % point of Fig. 5; the encoder
  // curves then emerge from circuit structure alone.
  static const CellLibrary library(
      "SuperTools/ColdFlux RSFQ (Table II calibration)",
      {
          {CellType::kXor,
           {CellType::kXor, 11, 3.4928571428571429, 0.0076428571428571429, 8.0,
            true, 2, 1.0, 0.5720}},
          {CellType::kAnd,
           {CellType::kAnd, 11, 3.60, 0.0076, 8.0, true, 2, 1.0, 0.5720}},
          {CellType::kOr,
           {CellType::kOr, 9, 3.00, 0.0066, 8.0, true, 2, 1.0, 0.5720}},
          {CellType::kNot,
           {CellType::kNot, 9, 3.00, 0.0066, 8.0, true, 1, 1.0, 0.5720}},
          {CellType::kDff,
           {CellType::kDff, 7, 1.9857142857142858, 0.0052857142857142857, 7.0,
            true, 1, 1.0, 0.6450}},
          {CellType::kSplitter,
           {CellType::kSplitter, 4, 1.4, 0.002, 5.0, false, 1, 1.0, 0.6180}},
          {CellType::kJtl,
           {CellType::kJtl, 2, 0.66, 0.0012, 4.0, false, 1, 1.0, 0.6960}},
          {CellType::kMerger,
           {CellType::kMerger, 7, 2.31, 0.0035, 6.0, false, 2, 1.0, 0.6580}},
          {CellType::kTff,
           {CellType::kTff, 10, 3.30, 0.0050, 6.0, false, 1, 1.0, 0.6180}},
          {CellType::kSfqToDc,
           {CellType::kSfqToDc, 8, 2.9071428571428571, 0.0053571428571428571,
            10.0, false, 1, 1.0, 0.4180}},
          {CellType::kDcToSfq,
           {CellType::kDcToSfq, 6, 2.00, 0.0030, 5.0, false, 1, 1.0, 0.6180}},
      });
  return library;
}

}  // namespace sfqecc::circuit
