// Fan-out legalization.
//
// SFQ cells drive exactly one sink, so every net with f > 1 consumers must be
// materialized as a binary tree of f-1 splitter cells. The same pass realizes
// the clock distribution network: the clock net simply has every clocked cell
// as a sink before legalization.
#pragma once

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"

namespace sfqecc::circuit {

/// Replaces every multi-sink net with a balanced binary splitter tree.
/// Deterministic: sinks are split in recorded order. After this pass
/// `netlist.obeys_fanout_discipline()` holds.
/// Returns the number of splitters inserted.
std::size_t legalize_fanout(Netlist& netlist);

}  // namespace sfqecc::circuit
