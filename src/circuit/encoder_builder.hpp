// End-to-end encoder synthesis: generator matrix -> legal SFQ netlist.
//
// Pipeline (DESIGN.md §3):
//   1. XOR-network synthesis (depth-bounded Paar CSE by default),
//   2. path balancing with shared DFF chains,
//   3. SFQ-to-DC output converters,
//   4. clock attachment,
//   5. fan-out legalization (data and clock splitter trees).
//
// On the paper's three codes this reproduces Table II exactly:
//   Hamming(8,4): 6 XOR, 8 DFF, 23 SPL (10 data + 13 clock), 8 SFQ-DC
//   Hamming(7,4): 5 XOR, 8 DFF, 20 SPL ( 8 data + 12 clock), 7 SFQ-DC
//   RM(1,3):      8 XOR, 7 DFF, 26 SPL (12 data + 14 clock), 8 SFQ-DC
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "circuit/xor_synth.hpp"
#include "code/linear_code.hpp"

namespace sfqecc::circuit {

enum class SynthesisAlgorithm {
  kPaar,           ///< depth-bounded greedy CSE (production)
  kPaarUnbounded,  ///< XOR-count-only greedy CSE (ablation: deeper pipelines)
  kTree,           ///< balanced tree per output, no sharing (ablation)
  kChain,          ///< left-to-right chain per output (ablation)
};

/// Stable textual tag of an algorithm ("paar", "paar-unbounded", "tree",
/// "chain") — the "@synthesis" suffix of scheme descriptors.
const char* synthesis_algorithm_name(SynthesisAlgorithm algorithm) noexcept;

/// Inverse of synthesis_algorithm_name; nullopt for an unknown tag.
std::optional<SynthesisAlgorithm> parse_synthesis_algorithm(
    std::string_view tag) noexcept;

struct EncoderBuildOptions {
  SynthesisAlgorithm algorithm = SynthesisAlgorithm::kPaar;
  bool balance_paths = true;          ///< insert DFF chains (disable for the streaming-hazard ablation)
  bool add_output_converters = true;  ///< SFQ-to-DC driver per codeword bit
  bool build_clock_tree = true;       ///< attach clock + legalize its fan-out
};

/// A synthesized encoder: the netlist plus the information the simulator and
/// benches need to drive it.
struct BuiltEncoder {
  Netlist netlist;
  XorProgram program;           ///< the logic the netlist implements
  std::size_t logic_depth = 0;  ///< clock cycles from message pulses to codeword
  std::vector<NetId> message_inputs;   ///< primary input nets m1..mk
  NetId clock_input = kInvalidId;      ///< primary clock net (kInvalidId if untouched)
  std::vector<NetId> codeword_outputs; ///< primary output nets c1..cn

  BuiltEncoder(Netlist nl, XorProgram prog)
      : netlist(std::move(nl)), program(std::move(prog)) {}
};

/// Synthesizes an SFQ encoder for `code`. The netlist is validated before
/// return; with default options it obeys the fan-out discipline and is fully
/// path balanced.
BuiltEncoder build_encoder(const code::LinearCode& code, const CellLibrary& library,
                           const EncoderBuildOptions& options = {});

/// The trivial "no encoder" data link of the paper's Fig. 5: k pass-through
/// channels, each ending in an SFQ-to-DC converter. No clocked cells.
BuiltEncoder build_no_encoder_link(std::size_t bits, const CellLibrary& library);

}  // namespace sfqecc::circuit
