// Synthesis of XOR networks (linear straight-line programs) from a generator
// matrix: codeword bit j is the XOR of the message bits selected by column j.
//
// Three strategies:
//  * Paar's greedy cancellation-free common-subexpression elimination — the
//    production algorithm. Deterministic (lexicographic tie-breaking); on the
//    paper's codes it recovers exactly the published gate counts: 6 XORs for
//    Hamming(8,4), 5 for Hamming(7,4), 8 for RM(1,3), all at logic depth 2.
//  * Naive left-to-right chains (no sharing) — ablation baseline; depth equals
//    the column weight minus one.
//  * Exhaustive optimal search for tiny instances — verifies Paar's optimality
//    on the paper's codes in the tests.
#pragma once

#include <cstddef>
#include <vector>

#include "code/bitvec.hpp"
#include "code/gf2_matrix.hpp"

namespace sfqecc::circuit {

/// Reference to a signal in an XOR program: either primary input `index`
/// (is_op == false) or the output of op `index` (is_op == true).
struct SignalRef {
  bool is_op = false;
  std::size_t index = 0;
  bool operator==(const SignalRef&) const = default;
};

/// One two-input XOR operation.
struct XorOp {
  SignalRef a;
  SignalRef b;
};

/// A straight-line program computing `outputs.size()` XOR combinations of
/// `num_inputs` inputs using two-input XOR ops.
class XorProgram {
 public:
  XorProgram(std::size_t num_inputs, std::vector<XorOp> ops,
             std::vector<SignalRef> outputs);

  std::size_t num_inputs() const noexcept { return num_inputs_; }
  const std::vector<XorOp>& ops() const noexcept { return ops_; }
  const std::vector<SignalRef>& outputs() const noexcept { return outputs_; }
  std::size_t xor_count() const noexcept { return ops_.size(); }

  /// Logic depth of a signal: inputs have depth 0; an op has depth
  /// 1 + max(depth(a), depth(b)).
  std::size_t signal_depth(const SignalRef& ref) const;

  /// Circuit depth: maximum signal depth over ops (passthrough outputs have
  /// depth 0 and do not lower this).
  std::size_t depth() const;

  /// Evaluates the program on a message (length num_inputs), returning the
  /// outputs in order.
  code::BitVec evaluate(const code::BitVec& inputs) const;

  /// The GF(2) column each signal computes, as a mask over the inputs.
  code::BitVec signal_support(const SignalRef& ref) const;

 private:
  std::size_t num_inputs_;
  std::vector<XorOp> ops_;
  std::vector<SignalRef> outputs_;
  std::vector<std::size_t> op_depth_;  // memoized depths
};

/// Paar greedy CSE, depth-bounded to the minimum achievable circuit depth
/// (ceil(log2(max column weight))). Column weights must be >= 1 (a zero
/// column would make the output constant, which SFQ pulse logic cannot emit
/// without a clock source).
XorProgram synthesize_paar(const code::Gf2Matrix& generator);

/// Pure Paar greedy CSE without the depth bound: minimizes XOR count alone.
/// On RM(1,3) this finds 7 XORs (one fewer than the paper) at depth 3 — and
/// the deeper pipeline then needs so many extra balancing DFFs that the total
/// JJ count is far worse; the ablation bench quantifies this trade-off.
XorProgram synthesize_paar_unbounded(const code::Gf2Matrix& generator);

/// No sharing: each output of weight w gets a balanced tree of w-1 fresh XORs.
XorProgram synthesize_tree(const code::Gf2Matrix& generator);

/// No sharing, left-to-right chain per output (worst depth). Ablation only.
XorProgram synthesize_chain(const code::Gf2Matrix& generator);

/// Exhaustive search for a minimum-XOR cancellation-free program; exponential,
/// intended for k <= 5, n <= 10 (test-time verification of Paar optimality).
XorProgram synthesize_optimal(const code::Gf2Matrix& generator,
                              std::size_t max_ops_bound = 12);

}  // namespace sfqecc::circuit
