// Clock distribution.
//
// Every clocked cell (XOR, DFF, ...) is attached to the primary clock input;
// the subsequent fan-out legalization pass materializes the clock splitter
// tree (n sinks -> n-1 splitters), exactly the "13 more splitters ... to form
// a clock distribution network" the paper describes for Hamming(8,4).
#pragma once

#include <cstddef>

#include "circuit/netlist.hpp"

namespace sfqecc::circuit {

/// Connects the clock port of every clocked cell without a clock to
/// `clock_net`, in cell-id order. Returns the number of connections made.
std::size_t attach_clock(Netlist& netlist, NetId clock_net);

/// Number of clocked cells in the netlist.
std::size_t clocked_cell_count(const Netlist& netlist) noexcept;

}  // namespace sfqecc::circuit
