#include "circuit/netlist.hpp"

#include <algorithm>
#include <queue>

#include "util/expect.hpp"

namespace sfqecc::circuit {
namespace {

std::size_t expected_outputs(CellType type) {
  return type == CellType::kSplitter ? 2 : 1;
}

std::size_t expected_inputs(CellType type) {
  switch (type) {
    case CellType::kXor:
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kMerger:
      return 2;
    default:
      return 1;
  }
}

bool is_clocked(CellType type) {
  switch (type) {
    case CellType::kXor:
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kNot:
    case CellType::kDff:
      return true;
    default:
      return false;
  }
}

}  // namespace

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

NetId Netlist::add_net(std::string name) {
  Net n;
  n.id = nets_.size();
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return nets_.back().id;
}

NetId Netlist::add_primary_input(std::string name) {
  const NetId id = add_net(std::move(name));
  nets_[id].primary_input = true;
  primary_inputs_.push_back(id);
  return id;
}

void Netlist::mark_primary_output(NetId net) {
  expects(net < nets_.size(), "unknown net");
  expects(!nets_[net].primary_output, "net already a primary output");
  nets_[net].primary_output = true;
  primary_outputs_.push_back(net);
}

CellId Netlist::add_cell(CellType type, std::string name,
                         const std::vector<NetId>& inputs,
                         const std::vector<std::string>& output_names) {
  expects(inputs.size() == expected_inputs(type), "wrong input count for cell type");
  expects(output_names.size() == expected_outputs(type), "wrong output count for cell type");

  Cell c;
  c.id = cells_.size();
  c.type = type;
  c.name = std::move(name);
  c.inputs = inputs;
  cells_.push_back(std::move(c));
  Cell& cell = cells_.back();

  for (std::size_t port = 0; port < inputs.size(); ++port) {
    expects(inputs[port] < nets_.size(), "unknown input net");
    nets_[inputs[port]].sinks.push_back(Sink{cell.id, port});
  }
  for (std::size_t port = 0; port < output_names.size(); ++port) {
    const NetId out = add_net(output_names[port]);
    nets_[out].driver_cell = cell.id;
    nets_[out].driver_port = port;
    cells_[cell.id].outputs.push_back(out);
  }
  return cell.id;
}

void Netlist::connect_clock(CellId cell_id, NetId clock_net) {
  expects(cell_id < cells_.size(), "unknown cell");
  expects(clock_net < nets_.size(), "unknown clock net");
  Cell& c = cells_[cell_id];
  expects(is_clocked(c.type), "cell type has no clock port");
  expects(c.clock == kInvalidId, "clock already connected");
  c.clock = clock_net;
  nets_[clock_net].sinks.push_back(Sink{cell_id, kClockPort});
}

void Netlist::move_sink(NetId from, NetId to, const Sink& sink) {
  expects(from < nets_.size() && to < nets_.size(), "unknown net");
  auto& sinks = nets_[from].sinks;
  auto it = std::find(sinks.begin(), sinks.end(), sink);
  expects(it != sinks.end(), "sink not found on source net");
  sinks.erase(it);
  nets_[to].sinks.push_back(sink);
  if (sink.port == kClockPort) {
    cells_[sink.cell].clock = to;
  } else {
    cells_[sink.cell].inputs[sink.port] = to;
  }
}

const Cell& Netlist::cell(CellId id) const {
  expects(id < cells_.size(), "unknown cell");
  return cells_[id];
}

const Net& Netlist::net(NetId id) const {
  expects(id < nets_.size(), "unknown net");
  return nets_[id];
}

std::size_t Netlist::count_cells(CellType type) const noexcept {
  std::size_t n = 0;
  for (const Cell& c : cells_)
    if (c.type == type) ++n;
  return n;
}

std::vector<CellId> Netlist::topological_order() const {
  std::vector<std::size_t> pending(cells_.size(), 0);
  for (const Cell& c : cells_)
    for (NetId in : c.inputs)
      if (nets_[in].driver_cell != kInvalidId) ++pending[c.id];
  // Clock edges also order cells (the clock tree feeds clocked cells).
  for (const Cell& c : cells_)
    if (c.clock != kInvalidId && nets_[c.clock].driver_cell != kInvalidId) ++pending[c.id];

  std::queue<CellId> ready;
  for (const Cell& c : cells_)
    if (pending[c.id] == 0) ready.push(c.id);

  std::vector<CellId> order;
  order.reserve(cells_.size());
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (NetId out : cells_[id].outputs) {
      for (const Sink& s : nets_[out].sinks) {
        if (--pending[s.cell] == 0) ready.push(s.cell);
      }
    }
  }
  expects(order.size() == cells_.size(), "netlist contains a cycle");
  return order;
}

void Netlist::validate(bool require_clocks) const {
  for (const Net& n : nets_) {
    if (n.primary_input) {
      expects(n.driver_cell == kInvalidId, "primary input must not have a cell driver");
    }
    for (const Sink& s : n.sinks) {
      expects(s.cell < cells_.size(), "sink references unknown cell");
      const Cell& c = cells_[s.cell];
      if (s.port == kClockPort) {
        expects(c.clock == n.id, "clock sink inconsistent");
      } else {
        expects(s.port < c.inputs.size(), "sink port out of range");
        expects(c.inputs[s.port] == n.id, "sink back-reference inconsistent");
      }
    }
  }
  for (const Cell& c : cells_) {
    expects(c.inputs.size() == expected_inputs(c.type), "input arity mismatch");
    expects(c.outputs.size() == expected_outputs(c.type), "output arity mismatch");
    for (NetId out : c.outputs) {
      expects(out < nets_.size(), "unknown output net");
      expects(nets_[out].driver_cell == c.id, "driver back-reference inconsistent");
    }
    if (require_clocks && is_clocked(c.type)) {
      expects(c.clock != kInvalidId, "clocked cell without clock");
    }
  }
  (void)topological_order();  // throws on cycles
}

bool Netlist::obeys_fanout_discipline() const noexcept {
  return max_fanout() <= 1;
}

std::size_t Netlist::max_fanout() const noexcept {
  std::size_t worst = 0;
  for (const Net& n : nets_) worst = std::max(worst, n.sinks.size());
  return worst;
}

}  // namespace sfqecc::circuit
