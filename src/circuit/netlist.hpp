// Gate-level SFQ netlist.
//
// A Netlist is a DAG of cells connected by nets. SFQ discipline: every net
// has exactly one driver (a cell output or a primary input) and — after
// fan-out legalization — at most one sink, because SFQ gates have a fan-out
// of one. Clocked cells reference a clock net that is itself driven through
// the (real, simulated) clock splitter tree.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "circuit/cell_library.hpp"

namespace sfqecc::circuit {

using CellId = std::size_t;
using NetId = std::size_t;

inline constexpr std::size_t kInvalidId = std::numeric_limits<std::size_t>::max();

/// A connection endpoint: (cell, input port index). Port kClockPort denotes
/// the clock input of a clocked cell.
struct Sink {
  CellId cell = kInvalidId;
  std::size_t port = 0;
  bool operator==(const Sink&) const = default;
};

inline constexpr std::size_t kClockPort = std::numeric_limits<std::size_t>::max();

struct Net {
  NetId id = kInvalidId;
  std::string name;
  CellId driver_cell = kInvalidId;   ///< kInvalidId when driven by a primary input
  std::size_t driver_port = 0;
  std::vector<Sink> sinks;
  bool primary_input = false;
  bool primary_output = false;
};

struct Cell {
  CellId id = kInvalidId;
  CellType type = CellType::kJtl;
  std::string name;
  std::vector<NetId> inputs;    ///< data inputs, in port order
  std::vector<NetId> outputs;   ///< outputs, in port order (splitter has two)
  NetId clock = kInvalidId;     ///< clock net for clocked cells
};

/// Mutable gate-level netlist with construction-time invariant checking.
class Netlist {
 public:
  explicit Netlist(std::string name);

  const std::string& name() const noexcept { return name_; }

  // ---- construction -------------------------------------------------------
  NetId add_net(std::string name);
  NetId add_primary_input(std::string name);
  void mark_primary_output(NetId net);

  /// Adds a cell. `inputs` are connected as data sinks in port order;
  /// `output_names` create one new net per output port. Returns the cell id.
  CellId add_cell(CellType type, std::string name, const std::vector<NetId>& inputs,
                  const std::vector<std::string>& output_names);

  /// Connects a clocked cell's clock port to `clock_net`.
  void connect_clock(CellId cell, NetId clock_net);

  /// Moves a data sink from one net to another (used by legalization passes).
  void move_sink(NetId from, NetId to, const Sink& sink);

  // ---- access --------------------------------------------------------------
  std::size_t cell_count() const noexcept { return cells_.size(); }
  std::size_t net_count() const noexcept { return nets_.size(); }
  const Cell& cell(CellId id) const;
  const Net& net(NetId id) const;
  const std::vector<Cell>& cells() const noexcept { return cells_; }
  const std::vector<Net>& nets() const noexcept { return nets_; }
  const std::vector<NetId>& primary_inputs() const noexcept { return primary_inputs_; }
  const std::vector<NetId>& primary_outputs() const noexcept { return primary_outputs_; }

  std::size_t count_cells(CellType type) const noexcept;

  /// Cells in topological order over data edges (primary inputs first).
  /// Throws on combinational cycles.
  std::vector<CellId> topological_order() const;

  // ---- invariants ----------------------------------------------------------
  /// Structural validation: single driver per net, ports consistent, clocked
  /// cells have clocks when `require_clocks`. Throws on violation.
  void validate(bool require_clocks = true) const;

  /// True when every net has at most one sink (SFQ fan-out discipline).
  bool obeys_fanout_discipline() const noexcept;

  /// Largest number of sinks on any net.
  std::size_t max_fanout() const noexcept;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
};

}  // namespace sfqecc::circuit
