// Aggregated circuit statistics — the quantities reported in the paper's
// Table II: standard-cell inventory (with data/clock splitter breakdown),
// total JJ count, static power dissipation and layout area.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"

namespace sfqecc::circuit {

struct NetlistStats {
  std::map<CellType, std::size_t> cell_counts;
  std::size_t data_splitters = 0;   ///< splitters in the data cone
  std::size_t clock_splitters = 0;  ///< splitters in the clock distribution cone
  std::size_t jj_count = 0;
  double static_power_uw = 0.0;
  double area_mm2 = 0.0;

  std::size_t count(CellType type) const noexcept {
    auto it = cell_counts.find(type);
    return it == cell_counts.end() ? 0 : it->second;
  }

  /// One-line inventory, e.g. "6 XOR, 8 DFF, 23 SPL, 8 SFQDC".
  std::string inventory() const;
};

/// Computes stats using the given cell library. `clock_net` (when valid)
/// identifies the primary clock input; splitters reachable from it are
/// classified as clock splitters.
NetlistStats compute_stats(const Netlist& netlist, const CellLibrary& library,
                           NetId clock_net = kInvalidId);

}  // namespace sfqecc::circuit
