#include "circuit/clock_tree.hpp"

namespace sfqecc::circuit {
namespace {

bool is_clocked_type(CellType type) noexcept {
  switch (type) {
    case CellType::kXor:
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kNot:
    case CellType::kDff:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::size_t attach_clock(Netlist& netlist, NetId clock_net) {
  std::size_t attached = 0;
  const std::size_t cells = netlist.cell_count();
  for (CellId id = 0; id < cells; ++id) {
    const Cell& c = netlist.cell(id);
    if (is_clocked_type(c.type) && c.clock == kInvalidId) {
      netlist.connect_clock(id, clock_net);
      ++attached;
    }
  }
  return attached;
}

std::size_t clocked_cell_count(const Netlist& netlist) noexcept {
  std::size_t n = 0;
  for (const Cell& c : netlist.cells())
    if (is_clocked_type(c.type)) ++n;
  return n;
}

}  // namespace sfqecc::circuit
