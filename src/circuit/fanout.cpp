#include "circuit/fanout.hpp"

#include <string>
#include <vector>

#include "util/expect.hpp"

namespace sfqecc::circuit {
namespace {

/// Attaches `sinks` to `source` through a balanced binary splitter tree.
std::size_t build_splitter_tree(Netlist& netlist, NetId source,
                                const std::vector<Sink>& sinks, std::size_t& counter) {
  if (sinks.size() == 1) {
    // The sink is already attached to `source` by the caller.
    return 0;
  }
  // Detach all sinks, insert one splitter, recurse on the two halves.
  const std::string base = netlist.net(source).name;
  const CellId spl = netlist.add_cell(
      CellType::kSplitter, "spl" + std::to_string(counter), {source},
      {base + "_s" + std::to_string(counter) + "a",
       base + "_s" + std::to_string(counter) + "b"});
  ++counter;
  const NetId out_a = netlist.cell(spl).outputs[0];
  const NetId out_b = netlist.cell(spl).outputs[1];

  const std::size_t half = (sinks.size() + 1) / 2;
  std::vector<Sink> first(sinks.begin(), sinks.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<Sink> second(sinks.begin() + static_cast<std::ptrdiff_t>(half), sinks.end());
  for (const Sink& s : first) netlist.move_sink(source, out_a, s);
  for (const Sink& s : second) netlist.move_sink(source, out_b, s);

  std::size_t inserted = 1;
  inserted += build_splitter_tree(netlist, out_a, first, counter);
  inserted += build_splitter_tree(netlist, out_b, second, counter);
  return inserted;
}

}  // namespace

std::size_t legalize_fanout(Netlist& netlist) {
  std::size_t counter = 0;
  std::size_t inserted = 0;
  // Iterate over the nets that exist now; splitter outputs created during the
  // pass are single-sink by construction.
  const std::size_t original_nets = netlist.net_count();
  for (NetId id = 0; id < original_nets; ++id) {
    const std::vector<Sink> sinks = netlist.net(id).sinks;  // copy: pass mutates
    if (sinks.size() < 2) continue;
    inserted += build_splitter_tree(netlist, id, sinks, counter);
  }
  ensures(netlist.obeys_fanout_discipline(), "fan-out legalization incomplete");
  return inserted;
}

}  // namespace sfqecc::circuit
