// RSFQ standard-cell library model.
//
// Each cell type carries the static parameters the experiments need: JJ
// count, static power, layout area, timing, and the PPV sensitivity/margin
// pair used by the ppv:: health model.
//
// The default library, coldflux_library(), is calibrated against Table II of
// the paper: solving the table's three rows as linear equations yields the
// unique integer JJ counts (XOR 11, DFF 7, splitter 4, SFQ-to-DC 8) and, with
// the splitter as the free parameter, per-cell power and area values that
// reproduce every printed entry exactly (see DESIGN.md §3).
#pragma once

#include <cstddef>
#include <map>
#include <string>

namespace sfqecc::circuit {

enum class CellType {
  kXor,       ///< clocked 2-input XOR
  kAnd,       ///< clocked 2-input AND
  kOr,        ///< clocked 2-input OR
  kNot,       ///< clocked inverter (emits when no input pulse arrived)
  kDff,       ///< clocked D flip-flop (destructive readout)
  kSplitter,  ///< 1-to-2 pulse splitter (unclocked)
  kJtl,       ///< Josephson transmission line segment (unclocked delay)
  kMerger,    ///< confluence buffer, 2-to-1 (unclocked)
  kTff,       ///< toggle flip-flop (unclocked divide-by-two)
  kSfqToDc,   ///< output driver: each pulse toggles a DC level (unclocked)
  kDcToSfq,   ///< input converter: DC edge to SFQ pulse (unclocked)
};

/// Human-readable cell-type name ("XOR", "DFF", ...).
const char* cell_type_name(CellType type) noexcept;

/// Static and dynamic parameters of one cell type.
struct CellSpec {
  CellType type = CellType::kJtl;
  std::size_t jj_count = 0;
  double static_power_uw = 0.0;  ///< static (bias) power at 4.2 K, microwatts
  double area_mm2 = 0.0;         ///< layout area, square millimetres
  double delay_ps = 0.0;         ///< propagation delay (unclocked) or clock-to-Q (clocked)
  bool clocked = false;
  std::size_t data_inputs = 1;

  // PPV model (see ppv/margin_model.hpp): the cell's scalar health statistic
  // is Gaussian with sigma = spread * ppv_sensitivity under a uniform +/-spread
  // parameter deviation; the cell leaves its operating region when the
  // statistic magnitude exceeds ppv_threshold.
  double ppv_sensitivity = 1.0;
  double ppv_threshold = 1.0;
};

/// An immutable collection of cell specs keyed by type.
class CellLibrary {
 public:
  CellLibrary(std::string name, std::map<CellType, CellSpec> specs);

  const std::string& name() const noexcept { return name_; }
  const CellSpec& spec(CellType type) const;
  bool has(CellType type) const noexcept { return specs_.count(type) > 0; }

 private:
  std::string name_;
  std::map<CellType, CellSpec> specs_;
};

/// The SuperTools/ColdFlux-calibrated library (MIT-LL SFQ5ee 10 kA/cm^2
/// process model) used throughout the paper reproduction.
const CellLibrary& coldflux_library();

}  // namespace sfqecc::circuit
