// Path balancing for clocked SFQ logic.
//
// Every SFQ gate is clocked, so both arms of a depth-d XOR must arrive exactly
// at depth d-1 and every primary output must exit at the common circuit depth
// D; otherwise pulses from different messages mix between pipeline stages.
// Balancing inserts D-flip-flop (DFF) chains. Chains are shared: one chain per
// signal, tapped at every required depth — this is what lets the paper's
// encoders reach the published DFF counts (8/8/7), e.g. the first DFF of the
// c3 = m1 output chain doubles as the delayed m1 arm of the c2 XOR.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/xor_synth.hpp"

namespace sfqecc::circuit {

/// Balancing requirements of one signal of an XorProgram.
struct SignalTaps {
  std::size_t signal = 0;        ///< 0..k-1 inputs, then k+i for op i
  std::size_t native_depth = 0;  ///< depth at which the signal is produced
  std::vector<std::size_t> taps; ///< ascending depths > native_depth at which a delayed copy is consumed
};

/// Computes, for every signal, the set of delayed copies required to balance
/// the program at depth `target_depth` (pass program.depth(), or more for
/// extra pipeline stages). Signals with no required taps are omitted.
///
/// Consumers needing the signal at its native depth use the raw signal; an op
/// at depth d consumes its arms at depth d-1; outputs are consumed at
/// target_depth.
std::vector<SignalTaps> balancing_taps(const XorProgram& program, std::size_t target_depth);

/// Total DFF count implied by the chains: one DFF per chain stage from
/// native_depth+1 to the deepest tap of each signal.
std::size_t balancing_dff_count(const XorProgram& program, std::size_t target_depth);

}  // namespace sfqecc::circuit
