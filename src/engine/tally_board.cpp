#include "engine/tally_board.hpp"

#include <utility>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace sfqecc::engine {
namespace {

/// Statistics cover only executed chips (result.chip_done), so a partial run
/// reports honest numbers over what actually ran instead of zero-filled
/// perfection.
void finalize(SchemeCellResult& result, std::size_t codeword_bits) {
  const std::vector<char>& done = result.chip_done;
  std::vector<std::size_t> completed_errors;
  completed_errors.reserve(done.size());
  util::Accumulator err_acc, flag_acc, frame_acc;
  std::size_t bit_errors = 0, frames = 0;
  for (std::size_t chip = 0; chip < done.size(); ++chip) {
    if (!done[chip]) continue;
    completed_errors.push_back(result.errors_per_chip[chip]);
    err_acc.add(static_cast<double>(result.errors_per_chip[chip]));
    flag_acc.add(static_cast<double>(result.flagged_per_chip[chip]));
    frame_acc.add(static_cast<double>(result.frames_per_chip[chip]));
    frames += result.frames_per_chip[chip];
    bit_errors += result.channel_bit_errors_per_chip[chip];
  }
  result.chips_completed = completed_errors.size();
  result.cdf = util::EmpiricalCdf(completed_errors);
  result.p_zero = result.cdf.at(0);
  result.mean_errors = err_acc.mean();
  result.mean_flagged = flag_acc.mean();
  result.mean_frames = frame_acc.mean();
  const std::size_t bits = frames * codeword_bits;
  result.channel_ber = bits > 0 ? static_cast<double>(bit_errors) / bits : 0.0;
}

}  // namespace

CampaignResult make_campaign_result_skeleton(
    const std::vector<CampaignCell>& cells,
    const std::vector<link::SchemeSpec>& schemes) {
  CampaignResult result;
  result.cells.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    CellResult cell_result;
    cell_result.cell = cell;
    cell_result.schemes.resize(schemes.size());
    for (std::size_t s = 0; s < schemes.size(); ++s)
      cell_result.schemes[s].scheme = schemes[s].name;
    result.cells.push_back(std::move(cell_result));
  }
  return result;
}

TallyBoard::TallyBoard(std::size_t cells, std::size_t schemes, std::size_t chips)
    : chips_(chips) {
  tallies_.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c)
    tallies_.emplace_back(schemes, Tally(chips));
}

void TallyBoard::scatter(const UnitResult& result) {
  const WorkUnit& unit = result.unit;
  expects(unit.cell < tallies_.size() && unit.scheme < tallies_[unit.cell].size() &&
              unit.chip_lo < unit.chip_hi && unit.chip_hi <= chips_,
          "tally board: unit outside the grid");
  const std::size_t count = unit.chip_hi - unit.chip_lo;
  expects(result.errors.size() == count && result.flagged.size() == count &&
              result.frames.size() == count &&
              result.channel_bit_errors.size() == count,
          "tally board: unit result with mismatched counts");
  Tally& tally = tallies_[unit.cell][unit.scheme];
  for (std::size_t i = 0; i < count; ++i) {
    tally.errors[unit.chip_lo + i] = result.errors[i];
    tally.flagged[unit.chip_lo + i] = result.flagged[i];
    tally.frames[unit.chip_lo + i] = result.frames[i];
    tally.channel_bit_errors[unit.chip_lo + i] = result.channel_bit_errors[i];
    tally.done[unit.chip_lo + i] = 1;
  }
}

void TallyBoard::finalize_into(CampaignResult& result,
                               const std::vector<link::SchemeSpec>& schemes) {
  expects(result.cells.size() == tallies_.size(),
          "tally board: result skeleton does not match the grid");
  for (std::size_t c = 0; c < tallies_.size(); ++c) {
    for (std::size_t s = 0; s < tallies_[c].size(); ++s) {
      SchemeCellResult& scheme_result = result.cells[c].schemes[s];
      Tally& tally = tallies_[c][s];
      scheme_result.errors_per_chip = std::move(tally.errors);
      scheme_result.flagged_per_chip = std::move(tally.flagged);
      scheme_result.frames_per_chip = std::move(tally.frames);
      scheme_result.channel_bit_errors_per_chip = std::move(tally.channel_bit_errors);
      scheme_result.chip_done = std::move(tally.done);
      finalize(scheme_result, schemes[s].encoder->codeword_outputs.size());
    }
  }
}

}  // namespace sfqecc::engine
