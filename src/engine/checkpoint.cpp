#include "engine/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/expect.hpp"

namespace sfqecc::engine {
namespace {

constexpr const char* kMagic = "sfqecc-campaign-checkpoint";
constexpr int kVersion = 1;

void read_counts(std::istringstream& in, char expected_tag, std::size_t count,
                 std::vector<std::size_t>& out) {
  std::string tag;
  in >> tag;
  expects(tag.size() == 1 && tag[0] == expected_tag, "checkpoint: bad section tag");
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    expects(static_cast<bool>(in >> out[i]), "checkpoint: truncated counts");
  }
}

/// Best-effort errno rendering: stream operations usually leave a meaningful
/// errno on Linux, but the standard does not promise one.
std::string errno_detail() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

}  // namespace

bool load_checkpoint(const std::string& path, CheckpointData& data) {
  std::ifstream in(path);
  if (!in) return false;

  std::string line;
  // A kill during the very first header flush can leave an empty file or a
  // newline-less header prefix; both mean no resumable data exists, so they
  // count as a fresh run (the writer then truncates the debris). A *complete*
  // header line that fails to parse is a different situation — the path
  // likely names a file that is not a checkpoint — and stays fatal rather
  // than letting the writer truncate user data.
  if (!std::getline(in, line) || in.eof()) return false;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version >> std::hex >> data.fingerprint;
    expects(magic == kMagic && version == kVersion && !header.fail(),
            "checkpoint: unrecognized header");
  }

  data.units.clear();
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    // A kill mid-flush can persist any prefix of the final line. Every
    // malformed record — truncated keyword here, truncated body below — is
    // skipped rather than fatal: the unit simply re-runs on resume.
    if (keyword != "unit") continue;
    UnitResult result;
    fields >> result.unit.cell >> result.unit.scheme >> result.unit.chip_lo >>
        result.unit.chip_hi;
    if (fields.fail() || result.unit.chip_hi <= result.unit.chip_lo) continue;
    const std::size_t count = result.unit.chip_hi - result.unit.chip_lo;
    try {
      read_counts(fields, 'e', count, result.errors);
      read_counts(fields, 'f', count, result.flagged);
      read_counts(fields, 'n', count, result.frames);
      read_counts(fields, 'c', count, result.channel_bit_errors);
      // The trailing sentinel guards against truncation *inside* the final
      // digit sequence, which would otherwise parse as a complete record
      // with a silently wrong last count.
      std::string sentinel;
      fields >> sentinel;
      expects(sentinel == "end", "checkpoint: missing end-of-record sentinel");
    } catch (const ContractViolation&) {
      continue;  // truncated trailing record: re-run that unit
    }
    data.units.push_back(std::move(result));
  }
  // eof ends the loop normally; badbit means the device failed mid-read.
  // Surface it — resuming from a silently shortened file would quietly
  // re-run completed work at best and mask a dying disk at worst.
  if (in.bad())
    throw IoError("checkpoint: read error on " + path + errno_detail());
  return true;
}

CheckpointWriter::CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                                   bool existing_header, IoErrorPolicy policy)
    : path_(path),
      out_(path, existing_header ? std::ios::app : std::ios::trunc),
      policy_(policy) {
  expects(static_cast<bool>(out_), "checkpoint: cannot open file for writing");
  if (!existing_header) {
    out_ << kMagic << ' ' << kVersion << ' ' << std::hex << fingerprint << std::dec
         << '\n';
  } else {
    // The prior run may have been killed mid-flush, leaving the file ending
    // mid-line; start on a fresh line so the first resumed record is never
    // concatenated onto the partial one (the loader skips empty lines).
    out_ << '\n';
  }
  errno = 0;
  out_.flush();
  // A header that never made it to disk makes every later append worthless
  // (the loader sees a truncated header and a fresh run truncates the file),
  // so this failure is fatal under every policy.
  if (!out_.good())
    throw IoError("checkpoint: cannot write header to " + path_ + errno_detail());
}

void CheckpointWriter::record(const UnitResult& result, bool inject_failure) {
  std::ostringstream line;
  line << "unit " << result.unit.cell << ' ' << result.unit.scheme << ' '
       << result.unit.chip_lo << ' ' << result.unit.chip_hi;
  auto emit = [&line](char tag, const std::vector<std::size_t>& counts) {
    line << ' ' << tag;
    for (std::size_t v : counts) line << ' ' << v;
  };
  emit('e', result.errors);
  emit('f', result.flagged);
  emit('n', result.frames);
  emit('c', result.channel_bit_errors);
  line << " end\n";

  std::lock_guard<std::mutex> lock(mutex_);
  errno = 0;
  out_ << line.str();
  out_.flush();
  const bool failed = inject_failure || !out_.good();
  if (!failed) return;

  // The stream state is sticky; clear it so later records still *attempt*
  // the append (a transient ENOSPC may resolve) instead of failing free.
  // A truly dead stream just keeps counting io_errors.
  const std::string detail = errno_detail();
  out_.clear();
  ++io_errors_;
  if (policy_ == IoErrorPolicy::kFail)
    throw IoError("checkpoint: write failed on " + path_ + detail);
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "engine::checkpoint: WARNING: write failed on %s%s — continuing "
                 "without durability for the affected units (they will re-run on "
                 "resume)\n",
                 path_.c_str(), detail.c_str());
  }
}

std::uint64_t CheckpointWriter::io_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_errors_;
}

}  // namespace sfqecc::engine
