#include "engine/checkpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/expect.hpp"

namespace sfqecc::engine {
namespace {

constexpr const char* kMagic = "sfqecc-campaign-checkpoint";
constexpr int kVersion = 1;

void read_counts(std::istringstream& in, char expected_tag, std::size_t count,
                 std::vector<std::size_t>& out) {
  std::string tag;
  in >> tag;
  expects(tag.size() == 1 && tag[0] == expected_tag, "checkpoint: bad section tag");
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    expects(static_cast<bool>(in >> out[i]), "checkpoint: truncated counts");
  }
}

/// Best-effort errno rendering: stream operations usually leave a meaningful
/// errno on Linux, but the standard does not promise one.
std::string errno_detail() {
  return errno != 0 ? std::string(": ") + std::strerror(errno) : std::string();
}

std::string hex_fingerprint(std::uint64_t fingerprint) {
  std::ostringstream out;
  out << std::hex << fingerprint;
  return out.str();
}

/// Shared body of load_checkpoint and merge_checkpoint_shards. When
/// `header_line` is non-null it receives the raw first line (for caret
/// diagnostics over the fingerprint field).
bool parse_checkpoint(const std::string& path, CheckpointData& data,
                      std::string* header_line) {
  std::ifstream in(path);
  if (!in) return false;

  std::string line;
  // A kill during the very first header flush can leave an empty file or a
  // newline-less header prefix; both mean no resumable data exists, so they
  // count as a fresh run (the writer then truncates the debris). A *complete*
  // header line that fails to parse is a different situation — the path
  // likely names a file that is not a checkpoint — and stays fatal rather
  // than letting the writer truncate user data.
  if (!std::getline(in, line) || in.eof()) return false;
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version >> std::hex >> data.fingerprint;
    expects(magic == kMagic && version == kVersion && !header.fail(),
            "checkpoint: unrecognized header");
  }
  if (header_line) *header_line = line;

  data.units.clear();
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    // A kill mid-flush can persist any prefix of the final line. Every
    // malformed record — truncated keyword here, truncated body below — is
    // skipped rather than fatal: the unit simply re-runs on resume.
    if (keyword != "unit") continue;
    UnitResult result;
    fields >> result.unit.cell >> result.unit.scheme >> result.unit.chip_lo >>
        result.unit.chip_hi;
    if (fields.fail() || result.unit.chip_hi <= result.unit.chip_lo) continue;
    const std::size_t count = result.unit.chip_hi - result.unit.chip_lo;
    try {
      read_counts(fields, 'e', count, result.errors);
      read_counts(fields, 'f', count, result.flagged);
      read_counts(fields, 'n', count, result.frames);
      read_counts(fields, 'c', count, result.channel_bit_errors);
      // The trailing sentinel guards against truncation *inside* the final
      // digit sequence, which would otherwise parse as a complete record
      // with a silently wrong last count.
      std::string sentinel;
      fields >> sentinel;
      expects(sentinel == "end", "checkpoint: missing end-of-record sentinel");
    } catch (const ContractViolation&) {
      continue;  // truncated trailing record: re-run that unit
    }
    data.units.push_back(std::move(result));
  }
  // eof ends the loop normally; badbit means the device failed mid-read.
  // Surface it — resuming from a silently shortened file would quietly
  // re-run completed work at best and mask a dying disk at worst.
  if (in.bad())
    throw IoError("checkpoint: read error on " + path + errno_detail());
  return true;
}

}  // namespace

bool load_checkpoint(const std::string& path, CheckpointData& data) {
  return parse_checkpoint(path, data, nullptr);
}

std::size_t merge_checkpoint_shards(const std::vector<std::string>& paths,
                                    std::uint64_t expected_fingerprint,
                                    CheckpointData& data) {
  data.fingerprint = expected_fingerprint;
  data.units.clear();
  // First-wins dedup across shards AND within one shard, keyed by the full
  // record identity (a reclaimed lease re-executed by a second worker, or a
  // retried append, persists the same unit more than once).
  std::unordered_map<std::string, char> seen;
  for (const std::string& path : paths) {
    CheckpointData shard;
    std::string header_line;
    if (!parse_checkpoint(path, shard, &header_line)) continue;
    if (shard.fingerprint != expected_fingerprint) {
      // Caret under the fingerprint field (the header's last token), in the
      // style of the CLI diagnostics: the operator sees exactly which shard
      // carries which campaign instead of a silent cross-campaign merge.
      const std::size_t column = header_line.rfind(' ') + 1;
      throw ContractViolation(
          "checkpoint shard " + path +
          " belongs to a different campaign (expected fingerprint " +
          hex_fingerprint(expected_fingerprint) + ")\n  " + header_line + "\n  " +
          std::string(column, ' ') + "^");
    }
    for (UnitResult& unit : shard.units) {
      std::string key = std::to_string(unit.unit.cell) + ' ' +
                        std::to_string(unit.unit.scheme) + ' ' +
                        std::to_string(unit.unit.chip_lo) + ' ' +
                        std::to_string(unit.unit.chip_hi);
      if (!seen.emplace(std::move(key), 1).second) continue;
      data.units.push_back(std::move(unit));
    }
  }
  // Worker append interleaving is a scheduling accident; canonical order is
  // the deterministic contract downstream consumers (merged-checkpoint
  // emission, tests) rely on.
  std::sort(data.units.begin(), data.units.end(),
            [](const UnitResult& a, const UnitResult& b) {
              if (a.unit.cell != b.unit.cell) return a.unit.cell < b.unit.cell;
              if (a.unit.scheme != b.unit.scheme) return a.unit.scheme < b.unit.scheme;
              return a.unit.chip_lo < b.unit.chip_lo;
            });
  return data.units.size();
}

UnitIndexMap::UnitIndexMap(const std::vector<WorkUnit>& units, std::size_t cells,
                           std::size_t schemes, std::size_t chips)
    : units_(&units), cells_(cells), schemes_(schemes), chips_(chips) {
  index_.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    const WorkUnit& u = units[i];
    index_.emplace((u.cell * schemes_ + u.scheme) * (chips_ + 1) + u.chip_lo, i);
  }
}

std::size_t UnitIndexMap::find(const WorkUnit& unit) const {
  // Range-check before hashing: out-of-range fields from a corrupted record
  // could alias another unit's key.
  if (unit.cell >= cells_ || unit.scheme >= schemes_ || unit.chip_lo >= chips_)
    return npos;
  const auto it =
      index_.find((unit.cell * schemes_ + unit.scheme) * (chips_ + 1) + unit.chip_lo);
  if (it == index_.end()) return npos;
  return (*units_)[it->second].chip_hi == unit.chip_hi ? it->second : npos;
}

CheckpointWriter::CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                                   bool existing_header, IoErrorPolicy policy)
    : path_(path),
      out_(path, existing_header ? std::ios::app : std::ios::trunc),
      policy_(policy) {
  expects(static_cast<bool>(out_), "checkpoint: cannot open file for writing");
  if (!existing_header) {
    out_ << kMagic << ' ' << kVersion << ' ' << std::hex << fingerprint << std::dec
         << '\n';
  } else {
    // The prior run may have been killed mid-flush, leaving the file ending
    // mid-line; start on a fresh line so the first resumed record is never
    // concatenated onto the partial one (the loader skips empty lines).
    out_ << '\n';
  }
  errno = 0;
  out_.flush();
  // A header that never made it to disk makes every later append worthless
  // (the loader sees a truncated header and a fresh run truncates the file),
  // so this failure is fatal under every policy.
  if (!out_.good())
    throw IoError("checkpoint: cannot write header to " + path_ + errno_detail());
}

void CheckpointWriter::record(const UnitResult& result, bool inject_failure) {
  std::ostringstream line;
  line << "unit " << result.unit.cell << ' ' << result.unit.scheme << ' '
       << result.unit.chip_lo << ' ' << result.unit.chip_hi;
  auto emit = [&line](char tag, const std::vector<std::size_t>& counts) {
    line << ' ' << tag;
    for (std::size_t v : counts) line << ' ' << v;
  };
  emit('e', result.errors);
  emit('f', result.flagged);
  emit('n', result.frames);
  emit('c', result.channel_bit_errors);
  line << " end\n";

  std::lock_guard<std::mutex> lock(mutex_);
  errno = 0;
  out_ << line.str();
  out_.flush();
  const bool failed = inject_failure || !out_.good();
  if (!failed) return;

  // The stream state is sticky; clear it so later records still *attempt*
  // the append (a transient ENOSPC may resolve) instead of failing free.
  // A truly dead stream just keeps counting io_errors.
  const std::string detail = errno_detail();
  out_.clear();
  ++io_errors_;
  if (policy_ == IoErrorPolicy::kFail)
    throw IoError("checkpoint: write failed on " + path_ + detail);
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "engine::checkpoint: WARNING: write failed on %s%s — continuing "
                 "without durability for the affected units (they will re-run on "
                 "resume)\n",
                 path_.c_str(), detail.c_str());
  }
}

std::uint64_t CheckpointWriter::io_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return io_errors_;
}

}  // namespace sfqecc::engine
