#include "engine/campaign_spec.hpp"

#include <algorithm>

#include "util/fnv.hpp"
#include "util/table.hpp"

namespace sfqecc::engine {

using util::compact;
using util::fnv_mix_double;
using util::fnv_mix_string;
using util::fnv_mix_u64;

std::string cell_label(const ppv::SpreadSpec& spread, const link::DataLinkConfig& link,
                       const ArqMode& arq) {
  std::string label = "spread=" + compact(spread.fraction * 100.0) + "%";
  label += spread.distribution == ppv::SpreadDistribution::kUniform ? "u" : "g";
  label += " noise=" + compact(link.channel.noise_sigma_mv) + "mV";
  if (link.channel.attenuation != 1.0)
    label += " atten=" + compact(link.channel.attenuation);
  label += " clk=" + compact(link.clock_period_ps) + "ps";
  label += " jitter=" + compact(link.sim.jitter_sigma_ps) + "ps";
  label += arq.enabled ? " arq=" + std::to_string(arq.max_attempts) : " arq=off";
  return label;
}

std::vector<CampaignCell> expand_cells(const CampaignSpec& spec) {
  std::vector<CampaignCell> cells;
  cells.reserve(spec.spreads.size() * spec.channels.size() * spec.timings.size() *
                spec.faults.size() * spec.arq_modes.size());
  for (const ppv::SpreadSpec& spread : spec.spreads)
    for (const link::ChannelModel& channel : spec.channels)
      for (const LinkTiming& timing : spec.timings)
        for (const FaultSpec& fault : spec.faults)
          for (const ArqMode& arq : spec.arq_modes) {
            CampaignCell cell;
            cell.index = cells.size();
            cell.seed = spec.seed;
            cell.spread = spread;
            cell.link.clock_period_ps = timing.clock_period_ps;
            cell.link.input_phase_ps = timing.input_phase_ps;
            cell.link.settle_margin_ps = timing.settle_margin_ps;
            cell.link.channel = channel;
            cell.link.sim.jitter_sigma_ps = fault.jitter_sigma_ps;
            cell.link.sim.record_pulses = false;  // Monte-Carlo speed
            cell.arq = arq;
            cell.label = cell_label(spread, cell.link, arq);
            cells.push_back(std::move(cell));
          }
  return cells;
}

std::vector<WorkUnit> make_work_units(std::size_t cells, std::size_t schemes,
                                      std::size_t chips, std::size_t shard_chips) {
  std::vector<WorkUnit> units;
  if (cells == 0 || schemes == 0 || chips == 0) return units;
  if (shard_chips == 0) shard_chips = chips;
  // Overflow-safe ceiling division: chips + shard_chips - 1 would wrap for
  // huge chip counts and silently yield zero shards.
  const std::size_t shards = chips / shard_chips + (chips % shard_chips != 0 ? 1 : 0);
  units.reserve(cells * schemes * shards);
  // Schemes innermost: consecutive units alternate schemes, so the pool's
  // round-robin seeding spreads every scheme across every worker and the
  // no-encoder shards never pile up behind the heavyweight ones.
  for (std::size_t cell = 0; cell < cells; ++cell)
    for (std::size_t shard = 0; shard < shards; ++shard)
      for (std::size_t scheme = 0; scheme < schemes; ++scheme)
        units.push_back(WorkUnit{cell, scheme, shard * shard_chips,
                                 std::min(chips, (shard + 1) * shard_chips)});
  return units;
}

std::uint64_t campaign_fingerprint(const CampaignSpec& spec,
                                   const std::vector<CampaignCell>& cells,
                                   const std::vector<std::string>& scheme_names,
                                   std::size_t shard_chips) {
  std::uint64_t h = util::kFnvOffset;
  fnv_mix_u64(h, spec.chips);
  fnv_mix_u64(h, spec.messages_per_chip);
  fnv_mix_u64(h, spec.seed);
  fnv_mix_u64(h, spec.count_flagged_as_error ? 1 : 0);
  fnv_mix_u64(h, shard_chips);
  fnv_mix_u64(h, cells.size());
  for (const CampaignCell& cell : cells) {
    fnv_mix_u64(h, cell.seed);
    fnv_mix_double(h, cell.spread.fraction);
    fnv_mix_u64(h, static_cast<std::uint64_t>(cell.spread.distribution));
    fnv_mix_double(h, cell.link.clock_period_ps);
    fnv_mix_double(h, cell.link.input_phase_ps);
    fnv_mix_double(h, cell.link.settle_margin_ps);
    fnv_mix_double(h, cell.link.channel.swing_mv);
    fnv_mix_double(h, cell.link.channel.attenuation);
    fnv_mix_double(h, cell.link.channel.noise_sigma_mv);
    fnv_mix_double(h, cell.link.channel.threshold_mv);
    fnv_mix_double(h, cell.link.sim.jitter_sigma_ps);
    fnv_mix_u64(h, cell.arq.enabled ? cell.arq.max_attempts : 0);
  }
  fnv_mix_u64(h, scheme_names.size());
  for (const std::string& name : scheme_names) fnv_mix_string(h, name);
  return h;
}

}  // namespace sfqecc::engine
