// Declarative campaign specification for the sharded campaign engine.
//
// A CampaignSpec names the sweep axes of a link-stack experiment — parameter
// spread, channel model, link timing, simulator fault/noise model, ARQ mode —
// and the per-cell workload (chips, messages per chip). expand_cells takes
// the cartesian product of the axes into a flat list of CampaignCells; each
// (cell, scheme, chip shard) triple then becomes one deterministic WorkUnit
// for the scheduler (engine/scheduler.hpp).
//
// Determinism contract: every cell runs under the campaign seed with the
// per-(scheme, chip) substream layout of engine/kernel.hpp, so two cells
// that differ only in channel/timing settings evaluate the *same* fabricated
// chips (common random numbers) and any cell matching the Fig. 5 defaults
// reproduces link::run_monte_carlo bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "link/datalink.hpp"
#include "ppv/spread.hpp"

namespace sfqecc::engine {

/// Frame timing axis (the non-channel, non-sim part of DataLinkConfig).
struct LinkTiming {
  double clock_period_ps = 200.0;
  double input_phase_ps = 100.0;
  double settle_margin_ps = 60.0;
};

/// Simulator-level fault/noise model axis.
struct FaultSpec {
  double jitter_sigma_ps = 0.0;  ///< thermal timing jitter (4.2 K ~ 0.8 ps)
};

/// ARQ axis: off (plain frames, the Fig. 5 protocol) or stop-and-wait with
/// retransmission on flagged frames.
struct ArqMode {
  bool enabled = false;
  std::size_t max_attempts = 4;
};

/// The declarative sweep. Axis vectors must be non-empty for a non-empty
/// campaign; the defaults describe a single Fig. 5-like cell.
struct CampaignSpec {
  std::size_t chips = 1000;
  std::size_t messages_per_chip = 100;
  std::uint64_t seed = 20250831;
  bool count_flagged_as_error = false;  ///< accounting choice, DESIGN.md §6

  std::vector<ppv::SpreadSpec> spreads{ppv::SpreadSpec{}};
  std::vector<link::ChannelModel> channels{link::ChannelModel{}};
  std::vector<LinkTiming> timings{LinkTiming{}};
  std::vector<FaultSpec> faults{FaultSpec{}};
  std::vector<ArqMode> arq_modes{ArqMode{}};
};

/// One resolved scenario: a point of the cartesian sweep with its fully
/// assembled DataLinkConfig. `seed` equals the campaign seed for every cell
/// (common-random-numbers design, see header comment).
struct CampaignCell {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  ppv::SpreadSpec spread;
  link::DataLinkConfig link;
  ArqMode arq;
  std::string label;  ///< human-readable scenario tag for reports
};

/// Cartesian expansion, innermost axis last: spread > channel > timing >
/// fault > arq. Any empty axis yields an empty cell list.
std::vector<CampaignCell> expand_cells(const CampaignSpec& spec);

/// Builds the label expand_cells assigns to a cell with these settings.
std::string cell_label(const ppv::SpreadSpec& spread, const link::DataLinkConfig& link,
                       const ArqMode& arq);

/// One schedulable unit of work: chips [chip_lo, chip_hi) of one scheme in
/// one cell. Units from all schemes interleave in the flat list so short
/// schemes never leave threads idle at scheme boundaries.
struct WorkUnit {
  std::size_t cell = 0;
  std::size_t scheme = 0;
  std::size_t chip_lo = 0;
  std::size_t chip_hi = 0;
};

/// Slices `chips` chips of every (cell, scheme) pair into shards of at most
/// `shard_chips` chips (shard order: cell > shard > scheme). Returns an empty
/// list when any dimension is zero.
std::vector<WorkUnit> make_work_units(std::size_t cells, std::size_t schemes,
                                      std::size_t chips, std::size_t shard_chips);

/// FNV-1a fingerprint of everything that determines work-unit boundaries and
/// per-unit results: workload scalars, cells, scheme names and shard size.
/// Checkpoint files carry it so a resume against a different campaign is
/// rejected instead of silently merged.
std::uint64_t campaign_fingerprint(const CampaignSpec& spec,
                                   const std::vector<CampaignCell>& cells,
                                   const std::vector<std::string>& scheme_names,
                                   std::size_t shard_chips);

}  // namespace sfqecc::engine
