// Shared tally assembly of the campaign engine.
//
// A TallyBoard turns a stream of UnitResults — from the in-process scheduler,
// a checkpoint resume, or the distributed fabric's merged shards — into the
// finalized per-(cell, scheme) statistics of a CampaignResult. It is the
// second half of the byte-identity guarantee: because every consumer funnels
// unit results through this one accumulation + finalize path, a report's
// bytes depend only on WHICH units completed, never on who executed them,
// in what order, or over how many processes.
//
// Statistics cover only chips whose units actually completed (chip_done), so
// partial runs (max_units, interruption, quarantined units) report honest
// numbers over what ran instead of zero-filled perfection.
#pragma once

#include <cstddef>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/checkpoint.hpp"
#include "link/scheme_spec.hpp"

namespace sfqecc::engine {

/// Builds the result skeleton every campaign entry point starts from: one
/// CellResult per cell, scheme names filled, statistics empty until a
/// TallyBoard finalizes into it.
CampaignResult make_campaign_result_skeleton(
    const std::vector<CampaignCell>& cells,
    const std::vector<link::SchemeSpec>& schemes);

/// Per-chip tally grid over (cell, scheme, chip). Work units scatter into
/// disjoint [chip_lo, chip_hi) slices, so concurrent scatter calls for
/// distinct units need no synchronization; scattering the same unit twice is
/// idempotent (determinism makes both copies byte-identical).
class TallyBoard {
 public:
  TallyBoard(std::size_t cells, std::size_t schemes, std::size_t chips);

  /// Copies one completed unit's per-chip counts into its slice and marks
  /// those chips done. The unit must lie inside the grid and carry exactly
  /// chip_hi - chip_lo counts per section (callers validate records from
  /// disk with UnitIndexMap first; this only asserts).
  void scatter(const UnitResult& result);

  /// Moves the tallies into result.cells and computes the final statistics
  /// (CDF, P(N=0), means, channel BER) over completed chips. The board is
  /// consumed: call at most once, after all scattering is done.
  void finalize_into(CampaignResult& result,
                     const std::vector<link::SchemeSpec>& schemes);

 private:
  struct Tally {
    std::vector<std::size_t> errors, flagged, frames, channel_bit_errors;
    std::vector<char> done;  ///< chips actually executed (partial runs)

    explicit Tally(std::size_t chips)
        : errors(chips, 0), flagged(chips, 0), frames(chips, 0),
          channel_bit_errors(chips, 0), done(chips, 0) {}
  };

  std::size_t chips_;
  std::vector<std::vector<Tally>> tallies_;  // [cell][scheme]
};

}  // namespace sfqecc::engine
