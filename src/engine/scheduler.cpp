#include "engine/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sfqecc::engine {
namespace {

/// One worker's deque. Shard-granular units are milliseconds of simulation
/// each, so a plain mutex per deque costs nothing measurable and keeps the
/// owner-pop / thief-steal protocol straightforward.
struct WorkQueue {
  std::mutex mutex;
  std::deque<std::size_t> units;

  bool pop_front(std::size_t& unit) {
    std::lock_guard<std::mutex> lock(mutex);
    if (units.empty()) return false;
    unit = units.front();
    units.pop_front();
    return true;
  }

  bool steal_back(std::size_t& unit) {
    std::lock_guard<std::mutex> lock(mutex);
    if (units.empty()) return false;
    unit = units.back();
    units.pop_back();
    return true;
  }

  std::size_t size() {
    std::lock_guard<std::mutex> lock(mutex);
    return units.size();
  }
};

std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

std::size_t resolved_thread_count(const SchedulerOptions& options,
                                  std::size_t unit_count) {
  std::size_t threads = options.threads;
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min(threads, std::max<std::size_t>(1, unit_count));
}

ScheduleOutcome run_units(
    std::size_t unit_count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const SchedulerOptions& options) {
  ScheduleOutcome outcome;
  if (unit_count == 0 || options.max_units == 0) return outcome;

  const std::size_t threads = resolved_thread_count(options, unit_count);
  const std::size_t attempts =
      options.fail_fast ? 1 : std::max<std::size_t>(1, options.unit_attempts);

  std::vector<WorkQueue> queues(threads);
  for (std::size_t unit = 0; unit < unit_count; ++unit)
    queues[unit % threads].units.push_back(unit);

  // Budget of units this run may still start; decremented before execution so
  // an interrupted campaign starts exactly max_units units. A unit's retry
  // ladder consumes the one slot its first attempt claimed.
  std::atomic<std::size_t> budget(options.max_units);
  std::atomic<std::size_t> executed(0);
  std::atomic<bool> stop(false);
  std::mutex outcome_mutex;  // guards failures + first_error

  auto worker = [&](std::size_t worker_index) {
    for (;;) {
      // Under fail_fast a thrown unit stops the whole pool at the next unit
      // boundary instead of letting the surviving workers finish a doomed
      // campaign.
      if (stop.load(std::memory_order_relaxed)) return;
      std::size_t unit = 0;
      bool found = queues[worker_index].pop_front(unit);
      while (!found) {
        // Steal from the victim with the most remaining work so the tail
        // stays balanced. A sweep that sees no work anywhere means done
        // (queues only shrink — nothing re-enqueues); a steal that loses
        // the race to the owner just re-sweeps, since other victims may
        // still hold units.
        std::size_t best = threads, best_size = 0;
        for (std::size_t v = 0; v < threads; ++v) {
          if (v == worker_index) continue;
          const std::size_t size = queues[v].size();
          if (size > best_size) {
            best = v;
            best_size = size;
          }
        }
        if (best == threads) return;
        found = queues[best].steal_back(unit);
      }
      // Claim one slot of the budget; put the unit back conceptually by just
      // stopping — once the budget is gone every worker drains to exit.
      std::size_t remaining = budget.load(std::memory_order_relaxed);
      do {
        if (remaining == 0) return;
      } while (!budget.compare_exchange_weak(remaining, remaining - 1,
                                             std::memory_order_relaxed));
      // The retry ladder runs in place on this worker, immediately, so the
      // (unit, attempt) coordinate of any failure never depends on what the
      // other workers are doing — that is what makes injected failure
      // schedules (engine/fault_injection.hpp) replayable at any thread
      // count. Determinism of the units themselves makes the re-run sound:
      // a successful retry produces the exact bytes attempt 0 would have.
      std::exception_ptr last_error;
      bool success = false;
      for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
        try {
          fn(unit, worker_index, attempt);
          success = true;
          break;
        } catch (...) {
          last_error = std::current_exception();
        }
      }
      if (success) {
        executed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (options.fail_fast) {
        stop.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(outcome_mutex);
        if (!outcome.first_error) outcome.first_error = last_error;
        return;
      }
      // Quarantine: record the failure and keep draining — one bad unit must
      // not abandon the queue. The caller decides what "quarantined" means
      // (the campaign leaves the unit out of its checkpoint so a resume
      // re-runs it).
      std::lock_guard<std::mutex> lock(outcome_mutex);
      outcome.failures.push_back(UnitFailure{unit, attempts, describe(last_error)});
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }
  // Completion order is a scheduling accident; sort so the quarantine list
  // is deterministic at any thread count.
  std::sort(outcome.failures.begin(), outcome.failures.end(),
            [](const UnitFailure& a, const UnitFailure& b) { return a.unit < b.unit; });
  outcome.executed = executed.load();
  return outcome;
}

std::size_t run_work_stealing(std::size_t unit_count,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              const SchedulerOptions& options) {
  SchedulerOptions legacy = options;
  legacy.fail_fast = true;
  legacy.unit_attempts = 1;
  const ScheduleOutcome outcome = run_units(
      unit_count,
      [&fn](std::size_t unit, std::size_t worker, std::size_t) { fn(unit, worker); },
      legacy);
  if (outcome.first_error) std::rethrow_exception(outcome.first_error);
  return outcome.executed;
}

}  // namespace sfqecc::engine
