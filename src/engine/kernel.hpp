// Per-(scheme, chip) simulation kernel of the campaign engine, staged as an
// explicit fabricate -> simulate pipeline.
//
// This is the inner loop formerly private to link::run_monte_carlo, extracted
// so that engine work units and the Monte-Carlo wrapper share one definition.
// The two stages are separable on purpose: fabrication (PPV sampling) is a
// pure function of the task's identity fields, so its product — the
// ppv::ChipSample — is a cacheable, shippable artifact (engine/
// artifact_cache.hpp), while simulation consumes the artifact plus the
// cell's link configuration.
//
// The RNG substream layout is load-bearing: the Domain constants and
// chip_stream_index() fix the exact seeds every (scheme, chip) pair draws
// from, so campaign cells reproduce historical run_monte_carlo outcomes
// bit-for-bit. Do not change them without a deliberate re-baselining PR.
// Fabrication and simulation draw from disjoint domains (kPpv vs the rest),
// which is what makes skipping fabrication on a cache hit transparent: the
// simulate streams never depend on whether the kPpv stream was consumed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "engine/campaign_spec.hpp"
#include "link/datalink.hpp"
#include "link/scheme_spec.hpp"
#include "ppv/chip.hpp"

namespace sfqecc::engine {

/// Substream domains mixed into the cell seed so that PPV, message, channel
/// and simulator-noise streams never collide.
enum class Domain : std::uint64_t {
  kPpv = 0x50505601,
  kMessages = 0x4d534701,
  kChannel = 0x43484e01,
  kSimNoise = 0x53494d01,
};

/// Substream index of chip `chip` of scheme `scheme` in a `chips`-chip cell.
constexpr std::uint64_t chip_stream_index(std::size_t scheme, std::size_t chip,
                                          std::size_t chips) noexcept {
  return static_cast<std::uint64_t>(scheme) * chips + chip;
}

/// Raw per-chip tallies produced by the kernel.
struct ChipCounts {
  std::size_t errors = 0;   ///< erroneous messages N (per the accounting)
  std::size_t flagged = 0;  ///< detected-uncorrectable frames (ARQ: surrenders)
  std::size_t frames = 0;   ///< frames transmitted (> messages under ARQ)
  std::size_t channel_bit_errors = 0;  ///< received vs transmitted bits
};

/// Everything that identifies one (scheme, chip) unit of kernel work.
/// Replaces the former 12-positional-parameter run_chip signature. The
/// pointed-to scheme and library are borrowed and must outlive the task.
struct ChipTask {
  const link::SchemeSpec* scheme = nullptr;
  const circuit::CellLibrary* library = nullptr;
  ppv::SpreadSpec spread;
  std::uint64_t seed = 0;          ///< cell seed
  std::size_t scheme_index = 0;    ///< position in the campaign's scheme list
  std::size_t chip = 0;            ///< chip index within the cell
  std::size_t chips = 0;           ///< chips per (cell, scheme) — fixes the stream
  std::size_t messages = 0;        ///< messages to transmit through the chip
  bool count_flagged_as_error = false;
  ArqMode arq;

  /// The task's RNG substream index (shared by all four domains).
  std::uint64_t stream() const noexcept {
    return chip_stream_index(scheme_index, chip, chips);
  }
};

/// Stage 1 — fabrication: samples the chip's PPV deviations into `chip`
/// (reusing its capacity; no allocation in steady state). A pure function of
/// (seed, spread, scheme netlist, stream()): two tasks agreeing on those
/// produce bit-identical ChipSamples, which is the common-random-numbers
/// guarantee the artifact cache keys on.
void fabricate_chip(const ChipTask& task, ppv::ChipSample& chip);

/// Stage 2 — simulation: installs a fabricated chip on `dlink`, reseeds the
/// simulator noise stream for the task, and transmits `task.messages` random
/// messages (retransmitting flagged frames when `task.arq.enabled`). The
/// chip may come from fabricate_chip or from the artifact cache — results
/// are identical either way because the message/channel/noise streams are
/// derived from the task, not from fabrication.
ChipCounts simulate_chip(link::DataLink& dlink, const ChipTask& task,
                         const ppv::ChipSample& chip);

/// How the executor evaluates stage 2. A speed-only switch: every mode
/// produces byte-identical reports (enforced by CI's --sim A/B leg), so it
/// is deliberately NOT part of the campaign fingerprint — like the artifact
/// cache, it changes how results are computed, never what they are.
enum class SimMode {
  kEvent,   ///< exact event simulator for every chip
  kSliced,  ///< bit-sliced batches for every gate-eligible chip, even alone
  kAuto,    ///< sliced when a unit yields >= 2 eligible chips, event otherwise
};

/// The sliced observability gate, per chip: true when nothing about the chip
/// or the simulator config makes timing observable — every cell fully
/// healthy, no thermal jitter, no pulse recording. Exactly the condition
/// under which EventSimulator's static fan-out expansion is unconditionally
/// valid; such a chip's frame outcomes are a deterministic function of the
/// message, so 64 of them can share one bit-sliced evaluation.
bool chip_sliceable(const ppv::ChipSample& chip, const sim::SimConfig& sim) noexcept;

/// Stage 2, bit-sliced: simulates `lanes` (<= 64) gate-eligible chips of one
/// (cell, scheme) through `slink` at once. `base` carries the task fields
/// shared by the batch (its `chip` field is ignored); `chips[l]` is lane l's
/// chip index. Writes lane l's tallies to out[l].
///
/// Per-chip RNG substreams are preserved exactly: each lane draws its
/// messages and channel noise from the same (seed, stream) pairs
/// simulate_chip would use. The kSimNoise reseed is skipped — a sliceable
/// chip never draws from the simulator noise stream (no jitter, no faults),
/// and the domains are disjoint, so the skip is observationally identical.
void simulate_chip_batch(link::SlicedLink& slink, const ChipTask& base,
                         const std::size_t* chips, std::size_t lanes, ChipCounts* out);

}  // namespace sfqecc::engine
