// Per-(scheme, chip) simulation kernel of the campaign engine.
//
// This is the inner loop formerly private to link::run_monte_carlo, extracted
// so that engine work units and the Monte-Carlo wrapper share one definition.
// The RNG substream layout is load-bearing: the Domain constants and
// chip_stream_index() fix the exact seeds every (scheme, chip) pair draws
// from, so campaign cells reproduce historical run_monte_carlo outcomes
// bit-for-bit. Do not change them without a deliberate re-baselining PR.
#pragma once

#include <cstddef>
#include <cstdint>

#include "engine/campaign_spec.hpp"
#include "link/datalink.hpp"
#include "link/monte_carlo.hpp"
#include "ppv/chip.hpp"

namespace sfqecc::engine {

/// Substream domains mixed into the cell seed so that PPV, message, channel
/// and simulator-noise streams never collide.
enum class Domain : std::uint64_t {
  kPpv = 0x50505601,
  kMessages = 0x4d534701,
  kChannel = 0x43484e01,
  kSimNoise = 0x53494d01,
};

/// Substream index of chip `chip` of scheme `scheme` in a `chips`-chip cell.
constexpr std::uint64_t chip_stream_index(std::size_t scheme, std::size_t chip,
                                          std::size_t chips) noexcept {
  return static_cast<std::uint64_t>(scheme) * chips + chip;
}

/// Raw per-chip tallies produced by the kernel.
struct ChipCounts {
  std::size_t errors = 0;   ///< erroneous messages N (per the accounting)
  std::size_t flagged = 0;  ///< detected-uncorrectable frames (ARQ: surrenders)
  std::size_t frames = 0;   ///< frames transmitted (> messages under ARQ)
  std::size_t channel_bit_errors = 0;  ///< received vs transmitted bits
};

/// Simulates one fabricated chip of one scheme: samples the chip's PPV
/// deviations, installs it on `dlink`, and transmits `messages` random
/// messages (retransmitting flagged frames when `arq.enabled`). `scratch` is
/// the caller's reusable chip-sample buffer; the steady-state path does not
/// allocate. Deterministic in (seed, scheme_index, chip, chips) only.
ChipCounts run_chip(link::DataLink& dlink, const link::SchemeSpec& scheme,
                    const circuit::CellLibrary& library, const ppv::SpreadSpec& spread,
                    std::uint64_t seed, std::size_t scheme_index, std::size_t chip,
                    std::size_t chips, std::size_t messages,
                    bool count_flagged_as_error, const ArqMode& arq,
                    ppv::ChipSample& scratch);

}  // namespace sfqecc::engine
