// Work-stealing thread pool for campaign work units.
//
// Units are dealt round-robin onto per-worker deques; a worker drains its own
// deque from the front and, when empty, steals from the back of the busiest
// victim. Stealing keeps every thread busy until the global tail: work units
// from short schemes (e.g. the no-encoder link) interleave with heavyweight
// ones instead of leaving threads idle at scheme boundaries, which was the
// chip-striping limitation of the original link::run_monte_carlo.
//
// Units are deterministic-by-construction (each writes disjoint output and
// draws from its own RNG substreams), so the scheduler is free to execute
// them in any order on any number of threads without changing results.
#pragma once

#include <cstddef>
#include <functional>

namespace sfqecc::engine {

struct SchedulerOptions {
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Stop handing out units once this many have been executed this run
  /// (SIZE_MAX = no budget). Used for incremental/interrupted campaigns.
  std::size_t max_units = static_cast<std::size_t>(-1);
};

/// Number of worker threads run_work_stealing will actually use for
/// `unit_count` units: options.threads (hardware concurrency when 0),
/// clamped to the unit count. Callers sizing per-worker scratch state must
/// use this instead of re-deriving the clamp.
std::size_t resolved_thread_count(const SchedulerOptions& options,
                                  std::size_t unit_count);

/// Executes `fn(unit_index, worker_index)` for up to `options.max_units` of
/// the `unit_count` units, each exactly once, on a work-stealing pool.
/// `worker_index` is stable per thread (0 .. threads-1) so workers can keep
/// per-thread scratch state. Returns the number of units executed. When `fn`
/// throws, the pool stops at the next unit boundary (remaining queued units
/// are abandoned, not drained) and the first exception rethrows from the
/// calling thread.
std::size_t run_work_stealing(std::size_t unit_count,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              const SchedulerOptions& options = {});

}  // namespace sfqecc::engine
