// Work-stealing thread pool for campaign work units, with failure
// containment.
//
// Units are dealt round-robin onto per-worker deques; a worker drains its own
// deque from the front and, when empty, steals from the back of the busiest
// victim. Stealing keeps every thread busy until the global tail: work units
// from short schemes (e.g. the no-encoder link) interleave with heavyweight
// ones instead of leaving threads idle at scheme boundaries, which was the
// chip-striping limitation of the original link::run_monte_carlo.
//
// Units are deterministic-by-construction (each writes disjoint output and
// draws from its own RNG substreams), so the scheduler is free to execute
// them in any order on any number of threads without changing results. The
// same property makes per-unit retry sound: re-running a failed unit
// reproduces the exact bytes its first attempt would have produced.
//
// Failure containment (run_units): a unit that throws is retried in place up
// to `unit_attempts` times; a unit that exhausts its attempts is QUARANTINED
// — recorded in ScheduleOutcome::failures (sorted by unit index, so the list
// is deterministic at any thread count) while the rest of the queue drains
// normally. `fail_fast` restores the legacy semantics: the pool stops at the
// next unit boundary after the first exception and surfaces it.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

namespace sfqecc::engine {

struct SchedulerOptions {
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Stop handing out units once this many have been started this run
  /// (SIZE_MAX = no budget). Used for incremental/interrupted campaigns.
  std::size_t max_units = static_cast<std::size_t>(-1);
  /// Maximum attempts per unit before it is quarantined (>= 1; a retry is
  /// attempts - 1 re-runs). Ignored under fail_fast, which never retries.
  std::size_t unit_attempts = 1;
  /// Stop the pool at the next unit boundary after the first exception and
  /// surface it via ScheduleOutcome::first_error (the legacy abort
  /// semantics); remaining queued units are abandoned, not drained.
  bool fail_fast = true;
};

/// One quarantined unit: it threw on every one of its `attempts` attempts.
struct UnitFailure {
  std::size_t unit = 0;
  std::size_t attempts = 0;
  std::string error;  ///< what() of the last attempt's exception
};

/// What a run_units call accomplished.
struct ScheduleOutcome {
  std::size_t executed = 0;           ///< units that completed successfully
  std::vector<UnitFailure> failures;  ///< quarantined units, sorted by index
  /// Set only when fail_fast stopped the pool; holds the first exception so
  /// the caller can rethrow it on its own thread.
  std::exception_ptr first_error;
};

/// Number of worker threads the scheduler will actually use for
/// `unit_count` units: options.threads (hardware concurrency when 0),
/// clamped to the unit count. Callers sizing per-worker scratch state must
/// use this instead of re-deriving the clamp.
std::size_t resolved_thread_count(const SchedulerOptions& options,
                                  std::size_t unit_count);

/// Executes `fn(unit_index, worker_index, attempt)` for up to
/// `options.max_units` of the `unit_count` units on a work-stealing pool,
/// each unit at most `options.unit_attempts` times (attempt = 0 is the first
/// try; a successful attempt ends the unit's ladder). `worker_index` is
/// stable per thread (0 .. threads-1) so workers can keep per-thread scratch
/// state; retries run on the worker that held the unit, immediately, so the
/// (site, unit, attempt) coordinate of any failure is schedule-independent.
/// Attempts never consume extra budget — a unit claims one slot whether it
/// succeeds first try or quarantines.
ScheduleOutcome run_units(
    std::size_t unit_count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const SchedulerOptions& options = {});

/// Legacy entry point: single-attempt fail-fast scheduling. Executes
/// `fn(unit_index, worker_index)` exactly once per unit; when `fn` throws,
/// the pool stops at the next unit boundary and the first exception rethrows
/// from the calling thread. Returns the number of units executed.
std::size_t run_work_stealing(std::size_t unit_count,
                              const std::function<void(std::size_t, std::size_t)>& fn,
                              const SchedulerOptions& options = {});

}  // namespace sfqecc::engine
