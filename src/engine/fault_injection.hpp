// Deterministic fault injection for the campaign engine, plus the shared
// failure-policy vocabulary of the failure-containment layer.
//
// The engine's resilience story (per-unit retry, quarantine, degraded cache,
// checkpoint/report I/O policies) is only trustworthy if every failure mode
// can be reproduced on demand. This header provides that harness: a registry
// of named injection sites at the stage boundaries of the campaign pipeline
//
//   fabricate          before a work unit's PPV sampling
//   simulate           before a work unit's frame/ARQ simulation
//   cache-insert       an artifact-cache insert (simulated alloc failure;
//                      the unit falls back to uncached re-fabrication)
//   checkpoint-write   a CheckpointWriter::record append
//   report-write       a report file write (JSON/CSV/cache-stats)
//   lease-claim        a fabric worker's lease-claim rename (simulated lost
//                      race; the worker skips the lease — fabric/worker.hpp)
//   shard-write        a fabric worker's checkpoint-shard append (the unit
//                      attempt fails and retries — an unrecorded result is an
//                      unfinished unit in the spool protocol)
//   merge              the fabric coordinator's final shard merge (retried;
//                      fabric/coordinator.hpp)
//
// firing deterministically by the coordinate (site, unit index, attempt):
// matching is a pure function of those three values, so an injected failure
// schedule replays identically at any thread count, shard order or steal
// pattern. Unit indices address the campaign's deterministic work-unit list
// (engine/campaign_spec.hpp make_work_units order) — stable across resumes —
// except at the report-write site, where "unit" is the ordinal of the file
// in write order (campaign_runner: 0 = JSON, 1 = CSV, 2 = cache stats), at
// lease-claim, where it is the lease index (the first unit index of the
// lease's range), and at merge, where it is the shard's ordinal in the
// coordinator's sorted shard-path order.
//
// CLI grammar (campaign_runner --inject-fault=SPEC, repeatable):
//   SPEC    := site ':' unit [':' attempt]
//   site    := fabricate | simulate | cache-insert | checkpoint-write
//            | report-write | lease-claim | shard-write | merge
//            (artifact-cache-insert aliases cache-insert)
//   unit    := integer | '*'       (every unit)
//   attempt := integer | '*'       (every attempt; default 0 = first attempt)
// e.g. --inject-fault='fabricate:*' fails every unit's first fabrication
// (retries succeed — the report must stay byte-identical), while
// --inject-fault='fabricate:5:*' fails unit 5 on every attempt (the unit
// exhausts its retries and is quarantined).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sfqecc::engine {

/// Named injection sites at the campaign pipeline's stage boundaries.
enum class FaultSite : std::uint8_t {
  kFabricate = 0,
  kSimulate,
  kCacheInsert,
  kCheckpointWrite,
  kReportWrite,
  kLeaseClaim,
  kShardWrite,
  kMerge,
};

inline constexpr std::size_t kFaultSiteCount = 8;

/// Canonical site name as used by the CLI grammar ("fabricate", ...).
const char* fault_site_name(FaultSite site) noexcept;

/// Parses a canonical site name (or the "artifact-cache-insert" alias).
std::optional<FaultSite> parse_fault_site(const std::string& name);

/// One armed injection: fail `site` for `unit` on `attempt`. kAny wildcards.
struct InjectionSpec {
  static constexpr std::size_t kAny = static_cast<std::size_t>(-1);

  FaultSite site = FaultSite::kFabricate;
  std::size_t unit = kAny;
  std::size_t attempt = 0;  ///< 0 = first attempt (the CLI default)

  bool matches(FaultSite s, std::size_t u, std::size_t a) const noexcept {
    return s == site && (unit == kAny || u == unit) &&
           (attempt == kAny || a == attempt);
  }
};

/// Parse failure detail for caret diagnostics (position is a byte offset
/// into the spec text).
struct InjectionParseError {
  std::string message;
  std::size_t position = 0;
};

/// Parses the CLI grammar above. Returns nullopt and fills `error` (when
/// non-null) on a malformed spec.
std::optional<InjectionSpec> parse_injection_spec(const std::string& text,
                                                  InjectionParseError* error = nullptr);

/// Thrown by FaultInjector::check at a matching coordinate. Deliberately a
/// std::runtime_error (not ContractViolation): an injected fault models an
/// environmental failure, and must flow through the same retry/quarantine
/// path a real one would.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, std::size_t unit, std::size_t attempt);

  FaultSite site() const noexcept { return site_; }
  std::size_t unit() const noexcept { return unit_; }
  std::size_t attempt() const noexcept { return attempt_; }

 private:
  FaultSite site_;
  std::size_t unit_;
  std::size_t attempt_;
};

/// Immutable-after-arming registry of injection specs. Matching (`matches`)
/// is a pure function of (site, unit, attempt) — the determinism guarantee —
/// while `fire`/`check` additionally bump an atomic counter so drivers can
/// report how many injections actually triggered. Arm everything before
/// handing the injector to a campaign; arming is not thread-safe, matching
/// and firing are.
class FaultInjector {
 public:
  void arm(const InjectionSpec& spec) { specs_.push_back(spec); }

  bool armed() const noexcept { return !specs_.empty(); }

  /// Pure match: does any armed spec cover this coordinate?
  bool matches(FaultSite site, std::size_t unit, std::size_t attempt) const noexcept {
    for (const InjectionSpec& spec : specs_)
      if (spec.matches(site, unit, attempt)) return true;
    return false;
  }

  /// Match + count. Use at sites that degrade gracefully instead of throwing
  /// (cache-insert, checkpoint-write, report-write).
  bool fire(FaultSite site, std::size_t unit, std::size_t attempt) const noexcept {
    if (!matches(site, unit, attempt)) return false;
    fired_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Match + count + throw InjectedFault. Use at sites whose real failures
  /// surface as exceptions (fabricate, simulate).
  void check(FaultSite site, std::size_t unit, std::size_t attempt) const {
    if (fire(site, unit, attempt)) throw InjectedFault(site, unit, attempt);
  }

  /// Number of injections that triggered so far (diagnostics only — the
  /// count depends on how far each unit's attempt ladder progressed).
  std::uint64_t fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<InjectionSpec> specs_;
  mutable std::atomic<std::uint64_t> fired_{0};
};

/// What checkpoint/report writers do when the underlying stream fails
/// (badbit after flush, failed rename): warn on stderr and keep the run
/// alive, or throw engine::IoError so the driver can exit with a distinct
/// code. The campaign default is kWarn — losing durability or a side file
/// should not destroy hours of Monte-Carlo.
enum class IoErrorPolicy : std::uint8_t {
  kWarn,
  kFail,
};

/// Thrown on an unrecoverable I/O failure under IoErrorPolicy::kFail.
/// Distinct from ContractViolation (API misuse) so drivers can map it to a
/// distinct exit code.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

}  // namespace sfqecc::engine
