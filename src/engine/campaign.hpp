// The campaign engine: declarative scenario sweeps over the full link stack.
//
// Pipeline (see ROADMAP.md "Campaign engine" for the architecture note):
//
//   CampaignSpec --expand_cells--> cells --make_work_units--> work units
//     --run_units--> per-chip tallies (engine/kernel.hpp; bounded per-unit
//                    retry, quarantine on exhaustion — engine/scheduler.hpp)
//     --finalize--> per-(cell, scheme) CDF / P(N=0) / BER via util::stats
//     --reporters--> JSON / CSV (engine/report.hpp)
//
// with optional checkpoint/resume (engine/checkpoint.hpp) in the middle and
// deterministic fault injection (engine/fault_injection.hpp) at every stage
// boundary.
// link::run_monte_carlo is a thin wrapper over run_cells with a single
// hand-built cell, so every scenario the engine runs shares the Fig. 5
// hot path and its determinism guarantees.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/cell_library.hpp"
#include "core/scheme_catalog.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/campaign_spec.hpp"
#include "engine/fault_injection.hpp"
#include "engine/kernel.hpp"
#include "link/monte_carlo.hpp"
#include "util/cdf.hpp"
#include "util/latency_histogram.hpp"

namespace sfqecc::engine {

struct RunnerOptions {
  std::size_t threads = 0;      ///< 0 = hardware concurrency
  std::size_t shard_chips = 32; ///< chips per work unit (0 = one shard per scheme)
  std::string checkpoint_path;  ///< empty = no checkpointing
  /// Execute at most this many units this run (SIZE_MAX = all). With a
  /// checkpoint this makes campaigns incrementally resumable; the result's
  /// complete() tells whether everything ran.
  std::size_t max_units = static_cast<std::size_t>(-1);
  /// Byte budget of the fabrication-artifact cache (engine/artifact_cache.hpp):
  /// cells sharing a (seed, spread) reuse fabricated chips instead of
  /// re-sampling them. 0 disables the cache. Never affects results — cached
  /// fabrication is bit-identical by the cache's key rules — only speed, so
  /// reports are byte-identical at any setting.
  std::size_t artifact_cache_bytes = 256ull << 20;
  /// Maximum attempts per work unit before it is quarantined (>= 1, so the
  /// default allows two retries). Retrying is sound because the kernel is a
  /// pure function of the unit: a successful retry produces the exact bytes
  /// the first attempt would have.
  std::size_t unit_attempts = 3;
  /// Abort the campaign on the first unit failure (the pre-resilience
  /// semantics: no retries, the exception propagates out of run_cells)
  /// instead of retrying and quarantining.
  bool fail_fast = false;
  /// What the checkpoint writer does when an append fails (engine/
  /// checkpoint.hpp): kWarn keeps the run alive without durability for the
  /// affected units; kFail throws engine::IoError, which flows into the
  /// retry/quarantine machinery like any other unit failure.
  IoErrorPolicy io_error_policy = IoErrorPolicy::kWarn;
  /// Optional deterministic fault-injection harness (engine/
  /// fault_injection.hpp); null = no injection. Borrowed, must outlive the
  /// run. Unit indices in the injector's coordinates address the campaign's
  /// deterministic work-unit list (make_work_units order).
  const FaultInjector* fault_injector = nullptr;
  /// Stage-2 evaluation mode (engine::SimMode): event, bit-sliced, or the
  /// per-chip observability-gated auto default. Speed-only — reports are
  /// byte-identical in every mode — so it is not a campaign axis and not
  /// part of the fingerprint.
  SimMode sim_mode = SimMode::kAuto;
};

/// Finalized per-(cell, scheme) statistics. The per-chip vectors are always
/// `chips` long; in a partial run (`max_units`/interruption) entries for
/// never-executed chips are zero and excluded from every statistic below —
/// `chips_completed` says how many chips the statistics actually cover.
struct SchemeCellResult {
  std::string scheme;
  std::vector<std::size_t> errors_per_chip;
  std::vector<std::size_t> flagged_per_chip;
  std::vector<std::size_t> frames_per_chip;             ///< > messages under ARQ
  std::vector<std::size_t> channel_bit_errors_per_chip;
  std::vector<char> chip_done;      ///< 1 where the chip actually executed
  std::size_t chips_completed = 0;  ///< chips the statistics are computed over
  util::EmpiricalCdf cdf;      ///< CDF of errors over completed chips
  double p_zero = 0.0;         ///< P(N = 0)
  double mean_errors = 0.0;
  double mean_flagged = 0.0;
  double mean_frames = 0.0;    ///< mean frames per chip (ARQ goodput cost)
  double channel_ber = 0.0;    ///< channel bit errors / transmitted bits
};

struct CellResult {
  CampaignCell cell;
  std::vector<SchemeCellResult> schemes;
};

/// One quarantined work unit: every attempt threw. Its chips are excluded
/// from the statistics (the tally slice is cleared) and it is absent from
/// the checkpoint, so a resume re-runs it exactly like an interrupted unit.
struct UnitFailureInfo {
  std::size_t unit_index = 0;  ///< position in the deterministic unit list
  WorkUnit unit;
  std::size_t attempts = 0;
  std::string error;  ///< what() of the last attempt's exception
};

struct CampaignResult {
  std::vector<CellResult> cells;
  std::size_t units_total = 0;
  std::size_t units_executed = 0;  ///< executed successfully this run
  std::size_t units_resumed = 0;   ///< pre-filled from the checkpoint
  /// Units that exhausted their retry budget this run, sorted by unit index
  /// (deterministic at any thread count). Non-empty failures leave the
  /// campaign incomplete; re-running with the same checkpoint retries
  /// exactly these units.
  std::vector<UnitFailureInfo> failures;
  /// Checkpoint appends that failed under IoErrorPolicy::kWarn (0 when
  /// checkpointing was off or healthy). Those units re-run on resume.
  std::uint64_t checkpoint_io_errors = 0;
  /// Fabrication-artifact cache counters for this run (all zero when the
  /// cache was disabled or no cell pair could share chips). Diagnostics
  /// only: hit/miss totals are scheduling-order dependent under concurrent
  /// workers, so reporters keep them out of the byte-stable reports.
  ArtifactCacheStats artifact_cache;
  /// Wall time per executed unit (nanoseconds), merged across workers.
  /// Diagnostics only, like the cache stats: wall times are machine- and
  /// scheduling-dependent by nature, so reporters must keep this out of the
  /// byte-stable reports (console summaries and side files only).
  util::LatencyHistogram unit_wall_ns;
  bool complete() const noexcept {
    return units_executed + units_resumed == units_total;
  }
};

/// Runs pre-expanded cells. The workload scalars (chips, messages_per_chip,
/// count_flagged_as_error) come from `spec`; its axis vectors are ignored.
/// This is the entry point link::run_monte_carlo wraps.
CampaignResult run_cells(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
                         const std::vector<link::SchemeSpec>& schemes,
                         const circuit::CellLibrary& library,
                         const RunnerOptions& options = {});

/// expand_cells + run_cells: the one-call declarative campaign.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<link::SchemeSpec>& schemes,
                            const circuit::CellLibrary& library,
                            const RunnerOptions& options = {});

/// Convenience overloads over owning catalog schemes (core/scheme_catalog.hpp):
/// forward the schemes' borrowed views to the entry points above. The caller
/// keeps ownership; the schemes must outlive the call (they do — the engine
/// borrows only for its duration).
CampaignResult run_cells(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
                         const std::vector<core::Scheme>& schemes,
                         const circuit::CellLibrary& library,
                         const RunnerOptions& options = {});
CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<core::Scheme>& schemes,
                            const circuit::CellLibrary& library,
                            const RunnerOptions& options = {});

}  // namespace sfqecc::engine
