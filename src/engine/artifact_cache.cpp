#include "engine/artifact_cache.hpp"

#include <new>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "util/fnv.hpp"

namespace sfqecc::engine {
namespace {

using util::fnv_mix;
using util::fnv_mix_double;
using util::fnv_mix_string;
using util::fnv_mix_u64;

/// Per-entry index overhead charged on top of the payload: key, LRU node and
/// hash-map slot. An estimate — the budget is a resource bound, not an
/// accounting exercise.
constexpr std::size_t kEntryOverhead =
    sizeof(ArtifactKey) + 6 * sizeof(void*) + sizeof(std::size_t);

}  // namespace

std::uint64_t scheme_fingerprint(const std::string& name,
                                 const circuit::Netlist& netlist,
                                 const circuit::CellLibrary& library) {
  std::uint64_t h = util::kFnvOffset;
  fnv_mix_string(h, name);
  fnv_mix_u64(h, netlist.cell_count());
  for (const circuit::Cell& cell : netlist.cells()) {
    fnv_mix_u64(h, static_cast<std::uint64_t>(cell.type));
    // The library content fabrication consumes for this cell (see
    // sample_cell_health): without it, artifacts fabricated under different
    // library calibrations would alias across processes/machines.
    const circuit::CellSpec& spec = library.spec(cell.type);
    fnv_mix_double(h, spec.ppv_sensitivity);
    fnv_mix_double(h, spec.ppv_threshold);
  }
  return h;
}

std::uint64_t spread_fingerprint(const ppv::SpreadSpec& spread) {
  std::uint64_t h = util::kFnvOffset;
  fnv_mix(h, &spread.fraction, sizeof spread.fraction);
  fnv_mix_u64(h, static_cast<std::uint64_t>(spread.distribution));
  return h;
}

std::size_t ArtifactCache::KeyHash::operator()(const ArtifactKey& key) const noexcept {
  // The fingerprints are already well-mixed FNV words; fold the tuple with
  // distinct odd multipliers so permuted fields never collide structurally.
  std::uint64_t h = key.scheme_fingerprint;
  h = h * 0x9e3779b97f4a7c15ULL + key.spread_fingerprint;
  h = h * 0xbf58476d1ce4e5b9ULL + key.seed;
  h = h * 0x94d049bb133111ebULL + key.chip_stream;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

std::size_t ArtifactCache::artifact_bytes(const ppv::ChipSample& chip) noexcept {
  return chip.health_ratios.size() * sizeof(double) +
         chip.faults.size() * sizeof(sim::CellFault) + kEntryOverhead;
}

bool ArtifactCache::lookup(const ArtifactKey& key, ppv::ChipSample& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, no realloc
  const ppv::ChipSample& chip = it->second->chip;
  out.health_ratios.assign(chip.health_ratios.begin(), chip.health_ratios.end());
  out.faults.assign(chip.faults.begin(), chip.faults.end());
  ++stats_.hits;
  return true;
}

bool ArtifactCache::insert(const ArtifactKey& key, const ppv::ChipSample& chip) {
  const std::size_t bytes = artifact_bytes(chip);
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.find(key) != index_.end()) return true;  // racing miss: first copy wins
  if (bytes > byte_budget_) return true;  // can never fit; don't thrash the LRU
  try {
    lru_.push_front(Entry{key, chip, bytes});
  } catch (const std::bad_alloc&) {
    ++stats_.insert_failures;
    return false;
  }
  try {
    index_.emplace(key, lru_.begin());
  } catch (const std::bad_alloc&) {
    lru_.pop_front();  // keep list and index consistent
    ++stats_.insert_failures;
    return false;
  }
  stats_.bytes += bytes;
  ++stats_.entries;
  ++stats_.insertions;
  evict_to_budget_locked();
  return true;
}

void ArtifactCache::evict_to_budget_locked() {
  while (stats_.bytes > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.key);
    lru_.pop_back();
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace sfqecc::engine
