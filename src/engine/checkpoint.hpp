// Checkpoint/resume for campaign runs.
//
// The runner appends one line per completed work unit to a plain-text
// checkpoint file; a resumed run loads the file, pre-fills the matching
// result slices and only executes the remaining units. Because every unit is
// deterministic, an interrupted-and-resumed campaign produces byte-identical
// reports to an uninterrupted one.
//
// Format (line-oriented, whitespace-separated):
//   sfqecc-campaign-checkpoint 1 <fingerprint-hex>
//   unit <cell> <scheme> <chip_lo> <chip_hi> e <..> f <..> n <..> c <..> end
// where each of e/f/n/c is followed by (chip_hi - chip_lo) per-chip counts:
// errors, flagged frames, frames sent, channel bit errors; the trailing
// "end" sentinel lets the loader reject records a kill truncated mid-digit.
// Malformed/truncated lines are dropped (those units re-run). The fingerprint
// (engine/campaign_spec.hpp) ties the file to one exact campaign; loading a
// mismatched file is a contract violation, not a silent merge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "engine/campaign_spec.hpp"

namespace sfqecc::engine {

/// Per-chip tallies of one completed work unit, chips [chip_lo, chip_hi).
struct UnitResult {
  WorkUnit unit;
  std::vector<std::size_t> errors;
  std::vector<std::size_t> flagged;
  std::vector<std::size_t> frames;
  std::vector<std::size_t> channel_bit_errors;
};

/// Parsed checkpoint file.
struct CheckpointData {
  std::uint64_t fingerprint = 0;
  std::vector<UnitResult> units;
};

/// Loads `path`. Returns false when the file does not exist, is empty, or
/// holds only a kill-truncated header prefix — all fresh runs; throws
/// sfqecc::ContractViolation when a *complete* header line is not a
/// checkpoint header (probably the wrong file — never truncate user data).
bool load_checkpoint(const std::string& path, CheckpointData& data);

/// Checkpoint writer, safe for concurrent workers. On a fresh run it
/// truncates the file (clearing any kill-truncated header debris) and writes
/// the header; on a resume it appends.
class CheckpointWriter {
 public:
  /// `existing_header` says whether `path` already carries a valid header
  /// (i.e. load_checkpoint succeeded on it).
  CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                   bool existing_header);

  /// Serializes one completed unit and flushes, so a kill at any point loses
  /// at most the in-flight units.
  void record(const UnitResult& result);

 private:
  std::ofstream out_;
  std::mutex mutex_;
};

}  // namespace sfqecc::engine
