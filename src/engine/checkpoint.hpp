// Checkpoint/resume for campaign runs.
//
// The runner appends one line per completed work unit to a plain-text
// checkpoint file; a resumed run loads the file, pre-fills the matching
// result slices and only executes the remaining units. Because every unit is
// deterministic, an interrupted-and-resumed campaign produces byte-identical
// reports to an uninterrupted one. The same format is the distributed
// fabric's result transport: each fabric worker appends its units to a
// per-worker checkpoint SHARD, and the coordinator merges the shards
// (merge_checkpoint_shards) back into one canonical unit-result set.
//
// Format (line-oriented, whitespace-separated):
//   sfqecc-campaign-checkpoint 1 <fingerprint-hex>
//   unit <cell> <scheme> <chip_lo> <chip_hi> e <..> f <..> n <..> c <..> end
// where each of e/f/n/c is followed by (chip_hi - chip_lo) per-chip counts:
// errors, flagged frames, frames sent, channel bit errors; the trailing
// "end" sentinel lets the loader reject records a kill truncated mid-digit.
// Malformed/truncated lines are dropped (those units re-run); duplicate
// records for one unit are tolerated (first wins — a retried append under
// fault injection can legitimately persist twice). The fingerprint
// (engine/campaign_spec.hpp) ties the file to one exact campaign; loading a
// mismatched file is a contract violation, not a silent merge.
//
// I/O failure semantics: the writer checks the stream after every flush, so
// a full disk or revoked permission is never silently ignored. Under
// IoErrorPolicy::kWarn (the campaign default) a failed append warns on
// stderr once, is counted in io_errors(), and the run continues — losing
// durability, not results. Under kFail the writer throws engine::IoError so
// the failure flows into the unit retry/quarantine machinery and the driver
// can exit with a distinct code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/campaign_spec.hpp"
#include "engine/fault_injection.hpp"

namespace sfqecc::engine {

/// Per-chip tallies of one completed work unit, chips [chip_lo, chip_hi).
struct UnitResult {
  WorkUnit unit;
  std::vector<std::size_t> errors;
  std::vector<std::size_t> flagged;
  std::vector<std::size_t> frames;
  std::vector<std::size_t> channel_bit_errors;
};

/// Parsed checkpoint file.
struct CheckpointData {
  std::uint64_t fingerprint = 0;
  std::vector<UnitResult> units;
};

/// Loads `path`. Returns false when the file does not exist, is empty, or
/// holds only a kill-truncated header prefix — all fresh runs; throws
/// sfqecc::ContractViolation when a *complete* header line is not a
/// checkpoint header (probably the wrong file — never truncate user data),
/// and engine::IoError when the underlying stream reports a read error
/// (badbit), so a flaky disk surfaces instead of silently resuming less.
bool load_checkpoint(const std::string& path, CheckpointData& data);

/// Merges checkpoint shard files — per-worker unit-result logs, as written by
/// the distributed fabric (fabric/worker.hpp) — into one deduplicated
/// CheckpointData. Shards are read in the given order; duplicate records for
/// one unit keep the first occurrence (the load_checkpoint semantics — a
/// reclaimed lease can legitimately be executed by two workers, and
/// determinism makes their records byte-identical). Missing/empty shard files
/// are skipped (a worker that never claimed a lease has nothing to merge);
/// torn trailing records are dropped exactly like load_checkpoint does. A
/// shard whose header fingerprint differs from `expected_fingerprint` is
/// rejected with a ContractViolation carrying a caret diagnostic under the
/// offending fingerprint — shards from different campaigns must never be
/// silently mixed. The merged units are sorted by (cell, scheme, chip_lo) so
/// the result is deterministic regardless of worker append interleaving.
/// Returns the number of distinct units merged.
std::size_t merge_checkpoint_shards(const std::vector<std::string>& paths,
                                    std::uint64_t expected_fingerprint,
                                    CheckpointData& data);

/// Maps checkpoint/shard records back to positions in the deterministic
/// work-unit list (engine/campaign_spec.hpp make_work_units order),
/// validating the record's full identity — out-of-range fields from a
/// corrupted or hand-edited record could otherwise alias another unit's key
/// and silently fill the wrong tally. Shared by the campaign runner's
/// checkpoint resume and the fabric coordinator's shard merge: the unit
/// numbering it recovers is the spool protocol's wire contract.
class UnitIndexMap {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  UnitIndexMap(const std::vector<WorkUnit>& units, std::size_t cells,
               std::size_t schemes, std::size_t chips);

  /// Returns the position of `unit` in the unit list, or npos when no unit
  /// matches all four of its fields.
  std::size_t find(const WorkUnit& unit) const;

 private:
  const std::vector<WorkUnit>* units_;
  std::size_t cells_, schemes_, chips_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

/// Checkpoint writer, safe for concurrent workers. On a fresh run it
/// truncates the file (clearing any kill-truncated header debris) and writes
/// the header; on a resume it appends.
class CheckpointWriter {
 public:
  /// `existing_header` says whether `path` already carries a valid header
  /// (i.e. load_checkpoint succeeded on it). Throws ContractViolation when
  /// the file cannot be opened, and — regardless of `policy` — IoError when
  /// the header itself fails to flush: without a header nothing later in the
  /// file is resumable, so "warn and continue" has nothing to preserve.
  CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                   bool existing_header, IoErrorPolicy policy = IoErrorPolicy::kWarn);

  /// Serializes one completed unit and flushes, so a kill at any point loses
  /// at most the in-flight units. A failed flush follows the policy above;
  /// `inject_failure` lets the fault-injection harness exercise that path
  /// deterministically (the bytes are actually written — only the failure
  /// handling is simulated).
  void record(const UnitResult& result, bool inject_failure = false);

  /// Appends that failed so far (kWarn policy keeps counting; kFail throws
  /// on the first). A nonzero count means the file is missing units and a
  /// resume will re-run them — durability degraded, correctness intact.
  std::uint64_t io_errors() const;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  // The append-only unit log IS the sanctioned raw stream: every record()
  // is flush-verified and the loader tolerates a torn tail, which is the
  // durability contract write_text_file_atomic cannot provide for appends.
  std::ofstream out_;  // detlint:allow(raw-report-stream)
  IoErrorPolicy policy_;
  std::uint64_t io_errors_ = 0;
  bool warned_ = false;
  mutable std::mutex mutex_;
};

}  // namespace sfqecc::engine
