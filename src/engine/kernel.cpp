#include "engine/kernel.hpp"

#include <vector>

#include "link/arq.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace sfqecc::engine {

void fabricate_chip(const ChipTask& task, ppv::ChipSample& chip) {
  util::Rng ppv_rng(task.seed ^ static_cast<std::uint64_t>(Domain::kPpv), task.stream());
  ppv::sample_chip_into(chip, task.scheme->encoder->netlist, *task.library, task.spread,
                        ppv_rng);
}

ChipCounts simulate_chip(link::DataLink& dlink, const ChipTask& task,
                         const ppv::ChipSample& chip) {
  const std::uint64_t stream = task.stream();

  dlink.install_chip(chip);
  dlink.reseed_noise(util::substream_seed(
      task.seed ^ static_cast<std::uint64_t>(Domain::kSimNoise), stream));

  util::Rng msg_rng(task.seed ^ static_cast<std::uint64_t>(Domain::kMessages), stream);
  util::Rng chan_rng(task.seed ^ static_cast<std::uint64_t>(Domain::kChannel), stream);

  const std::size_t k = task.scheme->encoder->message_inputs.size();
  ChipCounts counts;
  for (std::size_t m = 0; m < task.messages; ++m) {
    const code::BitVec message =
        code::BitVec::from_u64(k, msg_rng.below(std::uint64_t{1} << k));
    if (!task.arq.enabled) {
      const link::FrameResult frame = dlink.send(message, chan_rng);
      ++counts.frames;
      counts.channel_bit_errors += frame.channel_bit_errors;
      if (frame.message_error) ++counts.errors;
      if (frame.flagged) {
        ++counts.flagged;
        if (task.count_flagged_as_error) ++counts.errors;
      }
    } else {
      // Stop-and-wait ARQ. A surrendered message counts as flagged — it is
      // the detected-loss outcome — and as erroneous under the strict
      // accounting; an accepted-but-wrong message is a residual error.
      const link::ArqResult result =
          link::send_with_arq(dlink, message, chan_rng, {task.arq.max_attempts});
      counts.frames += result.attempts;
      counts.channel_bit_errors += result.channel_bit_errors;
      if (result.surrendered) {
        ++counts.flagged;
        if (task.count_flagged_as_error) ++counts.errors;
      } else if (result.residual_error) {
        ++counts.errors;
      }
    }
  }
  return counts;
}

bool chip_sliceable(const ppv::ChipSample& chip, const sim::SimConfig& sim) noexcept {
  return !sim.record_pulses && sim.jitter_sigma_ps <= 0.0 && chip.fully_healthy();
}

void simulate_chip_batch(link::SlicedLink& slink, const ChipTask& base,
                         const std::size_t* chips, std::size_t lanes, ChipCounts* out) {
  expects(lanes >= 1 && lanes <= link::SlicedLink::kMaxLanes, "lane count out of range");
  const std::size_t k = base.scheme->encoder->message_inputs.size();

  // One message and one channel RNG per lane, seeded exactly as
  // simulate_chip seeds them for that lane's chip index.
  std::vector<util::Rng> msg_rng;
  std::vector<util::Rng> chan_rng;
  msg_rng.reserve(lanes);
  chan_rng.reserve(lanes);
  ChipTask task = base;
  for (std::size_t l = 0; l < lanes; ++l) {
    task.chip = chips[l];
    const std::uint64_t stream = task.stream();
    msg_rng.emplace_back(task.seed ^ static_cast<std::uint64_t>(Domain::kMessages),
                         stream);
    chan_rng.emplace_back(task.seed ^ static_cast<std::uint64_t>(Domain::kChannel),
                          stream);
    out[l] = ChipCounts{};
  }

  std::vector<code::BitVec> messages(lanes);
  std::vector<code::BitVec> transmitted(lanes);
  for (std::size_t m = 0; m < base.messages; ++m) {
    for (std::size_t l = 0; l < lanes; ++l)
      messages[l] = code::BitVec::from_u64(k, msg_rng[l].below(std::uint64_t{1} << k));
    // The circuit half runs once for all lanes; the channel/decode half runs
    // per lane on its own substream, via the same finish_frame the event
    // path uses.
    slink.transmit(messages.data(), lanes, transmitted.data());
    for (std::size_t l = 0; l < lanes; ++l) {
      if (!base.arq.enabled) {
        const link::FrameResult frame = slink.finish(messages[l], transmitted[l],
                                                     chan_rng[l]);
        ++out[l].frames;
        out[l].channel_bit_errors += frame.channel_bit_errors;
        if (frame.message_error) ++out[l].errors;
        if (frame.flagged) {
          ++out[l].flagged;
          if (base.count_flagged_as_error) ++out[l].errors;
        }
      } else {
        // Stop-and-wait ARQ with the same counting as link::send_with_arq.
        // A gate-eligible chip transmits deterministically, so every
        // retransmission of this message would produce the identical word —
        // re-running only the channel + decode half per attempt is exactly
        // what the event path recomputes.
        bool surrendered = true;
        bool residual_error = false;
        for (std::size_t attempt = 0; attempt < base.arq.max_attempts; ++attempt) {
          const link::FrameResult frame = slink.finish(messages[l], transmitted[l],
                                                       chan_rng[l]);
          ++out[l].frames;
          out[l].channel_bit_errors += frame.channel_bit_errors;
          if (frame.flagged) continue;  // detected-uncorrectable: retransmit
          surrendered = false;
          residual_error = frame.message_error;
          break;
        }
        if (surrendered) {
          ++out[l].flagged;
          if (base.count_flagged_as_error) ++out[l].errors;
        } else if (residual_error) {
          ++out[l].errors;
        }
      }
    }
  }
}

}  // namespace sfqecc::engine
