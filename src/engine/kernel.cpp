#include "engine/kernel.hpp"

#include "link/arq.hpp"
#include "util/rng.hpp"

namespace sfqecc::engine {

void fabricate_chip(const ChipTask& task, ppv::ChipSample& chip) {
  util::Rng ppv_rng(task.seed ^ static_cast<std::uint64_t>(Domain::kPpv), task.stream());
  ppv::sample_chip_into(chip, task.scheme->encoder->netlist, *task.library, task.spread,
                        ppv_rng);
}

ChipCounts simulate_chip(link::DataLink& dlink, const ChipTask& task,
                         const ppv::ChipSample& chip) {
  const std::uint64_t stream = task.stream();

  dlink.install_chip(chip);
  dlink.reseed_noise(util::substream_seed(
      task.seed ^ static_cast<std::uint64_t>(Domain::kSimNoise), stream));

  util::Rng msg_rng(task.seed ^ static_cast<std::uint64_t>(Domain::kMessages), stream);
  util::Rng chan_rng(task.seed ^ static_cast<std::uint64_t>(Domain::kChannel), stream);

  const std::size_t k = task.scheme->encoder->message_inputs.size();
  ChipCounts counts;
  for (std::size_t m = 0; m < task.messages; ++m) {
    const code::BitVec message =
        code::BitVec::from_u64(k, msg_rng.below(std::uint64_t{1} << k));
    if (!task.arq.enabled) {
      const link::FrameResult frame = dlink.send(message, chan_rng);
      ++counts.frames;
      counts.channel_bit_errors += frame.channel_bit_errors;
      if (frame.message_error) ++counts.errors;
      if (frame.flagged) {
        ++counts.flagged;
        if (task.count_flagged_as_error) ++counts.errors;
      }
    } else {
      // Stop-and-wait ARQ. A surrendered message counts as flagged — it is
      // the detected-loss outcome — and as erroneous under the strict
      // accounting; an accepted-but-wrong message is a residual error.
      const link::ArqResult result =
          link::send_with_arq(dlink, message, chan_rng, {task.arq.max_attempts});
      counts.frames += result.attempts;
      counts.channel_bit_errors += result.channel_bit_errors;
      if (result.surrendered) {
        ++counts.flagged;
        if (task.count_flagged_as_error) ++counts.errors;
      } else if (result.residual_error) {
        ++counts.errors;
      }
    }
  }
  return counts;
}

}  // namespace sfqecc::engine
