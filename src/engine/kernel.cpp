#include "engine/kernel.hpp"

#include "link/arq.hpp"
#include "util/rng.hpp"

namespace sfqecc::engine {

ChipCounts run_chip(link::DataLink& dlink, const link::SchemeSpec& scheme,
                    const circuit::CellLibrary& library, const ppv::SpreadSpec& spread,
                    std::uint64_t seed, std::size_t scheme_index, std::size_t chip,
                    std::size_t chips, std::size_t messages,
                    bool count_flagged_as_error, const ArqMode& arq,
                    ppv::ChipSample& scratch) {
  const std::uint64_t stream = chip_stream_index(scheme_index, chip, chips);

  util::Rng ppv_rng(seed ^ static_cast<std::uint64_t>(Domain::kPpv), stream);
  ppv::sample_chip_into(scratch, scheme.encoder->netlist, library, spread, ppv_rng);

  dlink.install_chip(scratch);
  dlink.reseed_noise(
      util::substream_seed(seed ^ static_cast<std::uint64_t>(Domain::kSimNoise), stream));

  util::Rng msg_rng(seed ^ static_cast<std::uint64_t>(Domain::kMessages), stream);
  util::Rng chan_rng(seed ^ static_cast<std::uint64_t>(Domain::kChannel), stream);

  const std::size_t k = scheme.encoder->message_inputs.size();
  ChipCounts counts;
  for (std::size_t m = 0; m < messages; ++m) {
    const code::BitVec message =
        code::BitVec::from_u64(k, msg_rng.below(std::uint64_t{1} << k));
    if (!arq.enabled) {
      const link::FrameResult frame = dlink.send(message, chan_rng);
      ++counts.frames;
      counts.channel_bit_errors += frame.channel_bit_errors;
      if (frame.message_error) ++counts.errors;
      if (frame.flagged) {
        ++counts.flagged;
        if (count_flagged_as_error) ++counts.errors;
      }
    } else {
      // Stop-and-wait ARQ. A surrendered message counts as flagged — it is
      // the detected-loss outcome — and as erroneous under the strict
      // accounting; an accepted-but-wrong message is a residual error.
      const link::ArqResult result =
          link::send_with_arq(dlink, message, chan_rng, {arq.max_attempts});
      counts.frames += result.attempts;
      counts.channel_bit_errors += result.channel_bit_errors;
      if (result.surrendered) {
        ++counts.flagged;
        if (count_flagged_as_error) ++counts.errors;
      } else if (result.residual_error) {
        ++counts.errors;
      }
    }
  }
  return counts;
}

}  // namespace sfqecc::engine
