// Content-addressed cache of fabrication artifacts (ppv::ChipSample).
//
// The staged kernel (engine/kernel.hpp) makes fabrication a pure function of
// (seed, spread, scheme netlist, RNG stream). Campaign cells that differ only
// in channel / timing / jitter / ARQ settings therefore fabricate bit-
// identical chip populations (common random numbers); this cache lets them
// share the artifacts, dropping fabrication cost from once per cell to once
// per spread.
//
// Key rules (what "content-addressed" means here): a key is the tuple
//   (scheme fingerprint, spread fingerprint, seed, chip stream index)
// where the scheme fingerprint hashes the netlist the PPV pass walks (cell
// count + per-cell types + each cell's library PPV sensitivity/threshold,
// plus the scheme name), the spread fingerprint hashes the SpreadSpec, and
// the chip stream index is
// chip_stream_index(scheme_index, chip, chips) — it encodes the chip's
// position in the substream layout, so two campaigns with different scheme
// orderings or chip counts never alias. Identical keys guarantee bit-
// identical ChipSample bytes; that invariant is what makes a cache hit
// transparent to every report, and it is also the unit a future cross-
// machine distribution layer would ship instead of re-fabricating.
//
// Thread safety: all operations take an internal mutex. Fabrication costs
// microseconds per chip while the lock is held for a map probe plus a vector
// copy, so contention is negligible at campaign shard granularity. Lookups
// copy into the caller's scratch buffer (reusing its capacity) instead of
// handing out pointers, so eviction can never invalidate a worker's chip
// mid-simulation.
//
// Eviction: least-recently-used under a byte budget. Entries are charged
// their payload bytes (health ratios + fault states) plus a fixed estimate
// of the index overhead. A budget of 0 disables insertion entirely (the
// cache stores nothing and every lookup misses), which is what the
// campaign runner's --no-artifact-cache maps to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "ppv/chip.hpp"
#include "ppv/spread.hpp"

namespace sfqecc { namespace circuit { class CellLibrary; class Netlist; } }

namespace sfqecc::engine {

/// Content address of one fabrication artifact. See the header comment for
/// the key rules; build the fingerprints with the helpers below.
struct ArtifactKey {
  std::uint64_t scheme_fingerprint = 0;
  std::uint64_t spread_fingerprint = 0;
  std::uint64_t seed = 0;
  std::uint64_t chip_stream = 0;  ///< chip_stream_index(scheme_index, chip, chips)

  bool operator==(const ArtifactKey&) const = default;
};

/// FNV-1a over everything fabrication consumes besides the spread and RNG
/// stream: the netlist structure the PPV pass walks (cell count and per-cell
/// types, visited in id order — exactly the walk sample_chip_into performs)
/// together with each visited cell's PPV parameters from `library`
/// (sensitivity/threshold — so artifacts fabricated under different library
/// calibrations never alias, even across processes), mixed with `name` to
/// separate schemes that share a netlist shape.
std::uint64_t scheme_fingerprint(const std::string& name,
                                 const circuit::Netlist& netlist,
                                 const circuit::CellLibrary& library);

/// FNV-1a over a SpreadSpec (fraction bits + distribution tag).
std::uint64_t spread_fingerprint(const ppv::SpreadSpec& spread);

/// Monotonic counters describing one cache's lifetime. `hits + misses` is
/// the number of lookups; `bytes`/`entries` are the current residency. Note
/// that under concurrent workers two threads can miss the same key back to
/// back (both fabricate; the second insert is dropped), so hit/miss totals
/// are not deterministic across thread counts — which is why they live in
/// run summaries, never in the byte-stable campaign reports.
struct ArtifactCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  /// Inserts that failed (allocation failure, or an injected cache-insert
  /// fault at the campaign layer). Each one degrades gracefully: the worker
  /// keeps its freshly fabricated chip and later lookups of the key simply
  /// miss and re-fabricate — slower, never wrong.
  std::uint64_t insert_failures = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t entries = 0;
};

/// Thread-safe LRU store of fabricated chips under a byte budget.
class ArtifactCache {
 public:
  /// `byte_budget` bounds resident payload bytes; 0 stores nothing.
  explicit ArtifactCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Copies the artifact for `key` into `out` (reusing its capacity) and
  /// refreshes its recency. Returns false — counting a miss — when absent.
  bool lookup(const ArtifactKey& key, ppv::ChipSample& out);

  /// Stores a copy of `chip` under `key`, evicting least-recently-used
  /// entries until the budget holds. A duplicate insert (two workers racing
  /// on the same miss) is dropped: the first copy wins, so lookups always
  /// observe one immutable artifact per key. Returns false — counting an
  /// insert_failure — when the copy's allocation fails: the cache absorbs
  /// memory pressure as a capacity loss (callers fall back to uncached
  /// re-fabrication) instead of letting bad_alloc abort the work unit.
  /// Deliberate drops (duplicate key, artifact larger than the budget)
  /// return true; they are design behavior, not degradation.
  bool insert(const ArtifactKey& key, const ppv::ChipSample& chip);

  ArtifactCacheStats stats() const;

  std::size_t byte_budget() const noexcept { return byte_budget_; }

  /// Payload bytes charged for one sample (plus per-entry index overhead).
  static std::size_t artifact_bytes(const ppv::ChipSample& chip) noexcept;

 private:
  struct KeyHash {
    std::size_t operator()(const ArtifactKey& key) const noexcept;
  };
  struct Entry {
    ArtifactKey key;
    ppv::ChipSample chip;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void evict_to_budget_locked();

  const std::size_t byte_budget_;
  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<ArtifactKey, LruList::iterator, KeyHash> index_;
  ArtifactCacheStats stats_;
};

}  // namespace sfqecc::engine
