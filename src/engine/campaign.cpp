#include "engine/campaign.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/kernel.hpp"
#include "engine/scheduler.hpp"
#include "engine/scheme_artifacts.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"

namespace sfqecc::engine {
namespace {

/// Raw per-chip tally arrays for one (cell, scheme) pair; work units write
/// disjoint [chip_lo, chip_hi) slices, so no synchronization is needed.
struct Tally {
  std::vector<std::size_t> errors, flagged, frames, channel_bit_errors;
  std::vector<char> done;  ///< chips actually executed (partial runs)

  explicit Tally(std::size_t chips)
      : errors(chips, 0), flagged(chips, 0), frames(chips, 0),
        channel_bit_errors(chips, 0), done(chips, 0) {}
};

/// Per-worker scratch: one DataLink slot per scheme, rebuilt when the cell's
/// link config differs from the cached one. Spread/ARQ-only sweeps (equal
/// configs) build each scheme's simulator once per worker; channel/timing
/// sweeps rebuild at cell boundaries, which is shard-granular and cheap
/// (the link leases the scheme's shared SimTables, so a rebuild allocates
/// only mutable simulator state — the netlist is never re-flattened), while
/// memory stays bounded at one simulator per scheme per worker no matter how
/// many cells the sweep expands to. Reuse never affects results — the kernel
/// reinstalls chip state and reseeds all noise streams per chip.
struct WorkerState {
  struct SchemeSlot {
    link::DataLinkConfig config;
    std::unique_ptr<link::DataLink> link;
  };
  std::vector<SchemeSlot> slots;  ///< indexed by scheme
  ppv::ChipSample sample;

  link::DataLink& link_for(const CampaignCell& cell, std::size_t scheme_index,
                           const link::SchemeSpec& scheme,
                           const SchemeArtifacts& artifacts) {
    if (slots.size() <= scheme_index) slots.resize(scheme_index + 1);
    SchemeSlot& slot = slots[scheme_index];
    if (!slot.link || !(slot.config == cell.link)) {
      slot.link = std::make_unique<link::DataLink>(*scheme.encoder, artifacts.tables,
                                                   scheme.reference, scheme.decoder,
                                                   cell.link);
      slot.config = cell.link;
    }
    return *slot.link;
  }
};

/// Statistics cover only executed chips (result.chip_done), so a partial run
/// reports honest numbers over what actually ran instead of zero-filled
/// perfection.
void finalize(SchemeCellResult& result, std::size_t codeword_bits) {
  const std::vector<char>& done = result.chip_done;
  std::vector<std::size_t> completed_errors;
  completed_errors.reserve(done.size());
  util::Accumulator err_acc, flag_acc, frame_acc;
  std::size_t bit_errors = 0, frames = 0;
  for (std::size_t chip = 0; chip < done.size(); ++chip) {
    if (!done[chip]) continue;
    completed_errors.push_back(result.errors_per_chip[chip]);
    err_acc.add(static_cast<double>(result.errors_per_chip[chip]));
    flag_acc.add(static_cast<double>(result.flagged_per_chip[chip]));
    frame_acc.add(static_cast<double>(result.frames_per_chip[chip]));
    frames += result.frames_per_chip[chip];
    bit_errors += result.channel_bit_errors_per_chip[chip];
  }
  result.chips_completed = completed_errors.size();
  result.cdf = util::EmpiricalCdf(completed_errors);
  result.p_zero = result.cdf.at(0);
  result.mean_errors = err_acc.mean();
  result.mean_flagged = flag_acc.mean();
  result.mean_frames = frame_acc.mean();
  const std::size_t bits = frames * codeword_bits;
  result.channel_ber = bits > 0 ? static_cast<double>(bit_errors) / bits : 0.0;
}

}  // namespace

CampaignResult run_cells(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
                         const std::vector<link::SchemeSpec>& schemes,
                         const circuit::CellLibrary& library,
                         const RunnerOptions& options) {
  for (const link::SchemeSpec& scheme : schemes)
    expects(scheme.encoder != nullptr, "campaign scheme without encoder");

  CampaignResult result;
  result.cells.reserve(cells.size());
  for (const CampaignCell& cell : cells) {
    CellResult cell_result;
    cell_result.cell = cell;
    cell_result.schemes.resize(schemes.size());
    for (std::size_t s = 0; s < schemes.size(); ++s)
      cell_result.schemes[s].scheme = schemes[s].name;
    result.cells.push_back(std::move(cell_result));
  }

  const std::vector<WorkUnit> units =
      make_work_units(cells.size(), schemes.size(), spec.chips, options.shard_chips);
  result.units_total = units.size();
  if (units.empty()) return result;  // empty sweep / no schemes / chips == 0

  std::vector<std::vector<Tally>> tallies;  // [cell][scheme]
  tallies.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c)
    tallies.emplace_back(schemes.size(), Tally(spec.chips));

  // ---- checkpoint: load prior progress, mark completed units ---------------
  std::vector<char> done(units.size(), 0);
  std::unique_ptr<CheckpointWriter> writer;
  if (!options.checkpoint_path.empty()) {
    std::vector<std::string> scheme_names;
    for (const link::SchemeSpec& scheme : schemes) scheme_names.push_back(scheme.name);
    const std::uint64_t fingerprint =
        campaign_fingerprint(spec, cells, scheme_names, options.shard_chips);

    std::unordered_map<std::uint64_t, std::size_t> unit_index;
    auto unit_key = [&](const WorkUnit& u) {
      return (static_cast<std::uint64_t>(u.cell) * schemes.size() + u.scheme) *
                 (spec.chips + 1) +
             u.chip_lo;
    };
    for (std::size_t i = 0; i < units.size(); ++i) unit_index[unit_key(units[i])] = i;

    CheckpointData data;
    const bool existed = load_checkpoint(options.checkpoint_path, data);
    if (existed) {
      expects(data.fingerprint == fingerprint,
              "checkpoint belongs to a different campaign");
      for (const UnitResult& unit : data.units) {
        // Range-check before hashing: out-of-range fields from a corrupted
        // or hand-edited record could alias another unit's key and silently
        // fill the wrong tally.
        if (unit.unit.cell >= cells.size() || unit.unit.scheme >= schemes.size() ||
            unit.unit.chip_lo >= spec.chips)
          continue;
        auto it = unit_index.find(unit_key(unit.unit));
        if (it == unit_index.end() || done[it->second]) continue;
        const WorkUnit& u = units[it->second];
        if (unit.unit.chip_hi != u.chip_hi) continue;
        Tally& tally = tallies[u.cell][u.scheme];
        for (std::size_t i = 0; i < unit.errors.size(); ++i) {
          tally.errors[u.chip_lo + i] = unit.errors[i];
          tally.flagged[u.chip_lo + i] = unit.flagged[i];
          tally.frames[u.chip_lo + i] = unit.frames[i];
          tally.channel_bit_errors[u.chip_lo + i] = unit.channel_bit_errors[i];
          tally.done[u.chip_lo + i] = 1;
        }
        done[it->second] = 1;
        ++result.units_resumed;
      }
    }
    writer = std::make_unique<CheckpointWriter>(options.checkpoint_path, fingerprint,
                                                existed, options.io_error_policy);
  }

  // ---- schedule the remaining units ----------------------------------------
  std::vector<std::size_t> pending;
  pending.reserve(units.size() - result.units_resumed);
  for (std::size_t i = 0; i < units.size(); ++i)
    if (!done[i]) pending.push_back(i);

  if (!pending.empty() && options.max_units > 0) {
    // ---- stage 0: shared immutable per-scheme artifacts --------------------
    const std::vector<SchemeArtifacts> artifacts =
        build_scheme_artifacts(schemes, library);

    // ---- fabrication-artifact cache ---------------------------------------
    // Cells fabricate identical chips exactly when they agree on (seed,
    // spread): the kPpv substream depends on nothing else. Only cells whose
    // (seed, spread fingerprint) pair recurs can ever hit, so single-cell
    // runs (run_monte_carlo) and pure spread sweeps bypass the cache
    // entirely — no lookups, no resident copies, the exact pre-cache path.
    std::vector<std::uint64_t> cell_spread_fp(cells.size(), 0);
    std::vector<char> cell_cached(cells.size(), 0);
    std::unique_ptr<ArtifactCache> cache;
    if (options.artifact_cache_bytes > 0) {
      std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> population;
      for (std::size_t c = 0; c < cells.size(); ++c) {
        cell_spread_fp[c] = spread_fingerprint(cells[c].spread);
        ++population[{cells[c].seed, cell_spread_fp[c]}];
      }
      for (std::size_t c = 0; c < cells.size(); ++c)
        cell_cached[c] = population[{cells[c].seed, cell_spread_fp[c]}] > 1 ? 1 : 0;
      for (char cached : cell_cached)
        if (cached) {
          cache = std::make_unique<ArtifactCache>(options.artifact_cache_bytes);
          break;
        }
    }

    SchedulerOptions sched;
    sched.threads = options.threads;
    sched.max_units = options.max_units;
    sched.unit_attempts = options.unit_attempts;
    sched.fail_fast = options.fail_fast;
    std::vector<WorkerState> workers(resolved_thread_count(sched, pending.size()));

    const FaultInjector* injector = options.fault_injector;
    // Injected cache-insert failures bypass the cache object, so their count
    // is merged into the cache stats after the run (atomic: chips of one
    // unit increment concurrently with other units').
    std::atomic<std::uint64_t> injected_insert_failures{0};

    const ScheduleOutcome outcome = run_units(
        pending.size(),
        [&](std::size_t pending_index, std::size_t worker_index, std::size_t attempt) {
          // Injection coordinates address the deterministic unit list, not
          // the pending subset, so a fault schedule replays identically
          // across resumes with different completed prefixes.
          const std::size_t unit_index = pending[pending_index];
          const WorkUnit& unit = units[unit_index];
          const CampaignCell& cell = cells[unit.cell];
          const link::SchemeSpec& scheme = schemes[unit.scheme];
          WorkerState& worker = workers[worker_index];
          // Reusing the worker's DataLink across attempts is safe for the
          // same reason reusing it across units is: simulate_chip reinstalls
          // the chip and reseeds every noise stream per chip, so no state
          // from an abandoned attempt can leak into the retry.
          link::DataLink& dlink =
              worker.link_for(cell, unit.scheme, scheme, artifacts[unit.scheme]);
          Tally& tally = tallies[unit.cell][unit.scheme];

          ChipTask task;
          task.scheme = &scheme;
          task.library = &library;
          task.spread = cell.spread;
          task.seed = cell.seed;
          task.scheme_index = unit.scheme;
          task.chips = spec.chips;
          task.messages = spec.messages_per_chip;
          task.count_flagged_as_error = spec.count_flagged_as_error;
          task.arq = cell.arq;

          // The fabricate/simulate checks throw InjectedFault on a matching
          // (site, unit, attempt) at the stage boundary of the first chip
          // that reaches it — so a simulate fault fires after fabrication
          // (and any cache insert) already happened, exercising retry over
          // partially completed work. A failed attempt may leave some chips
          // of the slice already tallied — harmless, because a successful
          // retry rewrites every chip (deterministically identical values)
          // and quarantine clears the whole slice below.
          for (std::size_t chip = unit.chip_lo; chip < unit.chip_hi; ++chip) {
            task.chip = chip;
            if (injector) injector->check(FaultSite::kFabricate, unit_index, attempt);
            if (cache && cell_cached[unit.cell]) {
              const ArtifactKey key{artifacts[unit.scheme].fingerprint,
                                    cell_spread_fp[unit.cell], cell.seed,
                                    task.stream()};
              if (!cache->lookup(key, worker.sample)) {
                fabricate_chip(task, worker.sample);
                // Graceful degradation: a failed insert (injected here, or a
                // real allocation failure inside the cache) keeps the chip
                // out of the cache but never out of the unit — the sample in
                // hand is used as-is and peers re-fabricate on their misses.
                if (injector &&
                    injector->fire(FaultSite::kCacheInsert, unit_index, attempt)) {
                  injected_insert_failures.fetch_add(1, std::memory_order_relaxed);
                } else {
                  cache->insert(key, worker.sample);
                }
              }
            } else {
              fabricate_chip(task, worker.sample);
            }
            if (injector) injector->check(FaultSite::kSimulate, unit_index, attempt);
            const ChipCounts counts = simulate_chip(dlink, task, worker.sample);
            tally.errors[chip] = counts.errors;
            tally.flagged[chip] = counts.flagged;
            tally.frames[chip] = counts.frames;
            tally.channel_bit_errors[chip] = counts.channel_bit_errors;
            tally.done[chip] = 1;
          }
          if (writer) {
            UnitResult record;
            record.unit = unit;
            const std::size_t count = unit.chip_hi - unit.chip_lo;
            record.errors.assign(tally.errors.begin() + unit.chip_lo,
                                 tally.errors.begin() + unit.chip_lo + count);
            record.flagged.assign(tally.flagged.begin() + unit.chip_lo,
                                  tally.flagged.begin() + unit.chip_lo + count);
            record.frames.assign(tally.frames.begin() + unit.chip_lo,
                                 tally.frames.begin() + unit.chip_lo + count);
            record.channel_bit_errors.assign(
                tally.channel_bit_errors.begin() + unit.chip_lo,
                tally.channel_bit_errors.begin() + unit.chip_lo + count);
            // An injected checkpoint-write failure surfaces through the
            // writer's real policy path (warn-and-count or thrown IoError);
            // under kFail the throw makes this attempt fail, so the unit is
            // re-simulated and re-recorded — the loader tolerates the
            // resulting duplicate record (first wins).
            const bool inject_ckpt =
                injector && injector->fire(FaultSite::kCheckpointWrite, unit_index,
                                           attempt);
            writer->record(record, inject_ckpt);
          }
        },
        sched);

    // Fail-fast preserves the pre-resilience contract: the first failure
    // aborts the campaign and the exception propagates to the caller.
    if (outcome.first_error) std::rethrow_exception(outcome.first_error);

    result.units_executed = outcome.executed;
    for (const UnitFailure& failure : outcome.failures) {
      const std::size_t unit_index = pending[failure.unit];
      const WorkUnit& unit = units[unit_index];
      // Quarantine: wipe the unit's tally slice so chips a failed attempt
      // already simulated never leak into the statistics — the published
      // numbers cover exactly the units that completed, and the checkpoint
      // (which never saw this unit) agrees.
      Tally& tally = tallies[unit.cell][unit.scheme];
      for (std::size_t chip = unit.chip_lo; chip < unit.chip_hi; ++chip) {
        tally.errors[chip] = 0;
        tally.flagged[chip] = 0;
        tally.frames[chip] = 0;
        tally.channel_bit_errors[chip] = 0;
        tally.done[chip] = 0;
      }
      result.failures.push_back(
          UnitFailureInfo{unit_index, unit, failure.attempts, failure.error});
    }
    if (cache) result.artifact_cache = cache->stats();
    result.artifact_cache.insert_failures +=
        injected_insert_failures.load(std::memory_order_relaxed);
  }
  if (writer) result.checkpoint_io_errors = writer->io_errors();

  // ---- finalize -------------------------------------------------------------
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      SchemeCellResult& scheme_result = result.cells[c].schemes[s];
      Tally& tally = tallies[c][s];
      scheme_result.errors_per_chip = std::move(tally.errors);
      scheme_result.flagged_per_chip = std::move(tally.flagged);
      scheme_result.frames_per_chip = std::move(tally.frames);
      scheme_result.channel_bit_errors_per_chip = std::move(tally.channel_bit_errors);
      scheme_result.chip_done = std::move(tally.done);
      finalize(scheme_result, schemes[s].encoder->codeword_outputs.size());
    }
  }
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<link::SchemeSpec>& schemes,
                            const circuit::CellLibrary& library,
                            const RunnerOptions& options) {
  return run_cells(spec, expand_cells(spec), schemes, library, options);
}

CampaignResult run_cells(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
                         const std::vector<core::Scheme>& schemes,
                         const circuit::CellLibrary& library,
                         const RunnerOptions& options) {
  return run_cells(spec, cells, core::scheme_specs(schemes), library, options);
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<core::Scheme>& schemes,
                            const circuit::CellLibrary& library,
                            const RunnerOptions& options) {
  return run_cells(spec, expand_cells(spec), schemes, library, options);
}

}  // namespace sfqecc::engine
