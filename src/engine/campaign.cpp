#include "engine/campaign.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "engine/checkpoint.hpp"
#include "engine/scheduler.hpp"
#include "engine/tally_board.hpp"
#include "engine/unit_executor.hpp"
#include "util/expect.hpp"

namespace sfqecc::engine {

CampaignResult run_cells(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
                         const std::vector<link::SchemeSpec>& schemes,
                         const circuit::CellLibrary& library,
                         const RunnerOptions& options) {
  for (const link::SchemeSpec& scheme : schemes)
    expects(scheme.encoder != nullptr, "campaign scheme without encoder");

  CampaignResult result = make_campaign_result_skeleton(cells, schemes);

  const std::vector<WorkUnit> units =
      make_work_units(cells.size(), schemes.size(), spec.chips, options.shard_chips);
  result.units_total = units.size();
  if (units.empty()) return result;  // empty sweep / no schemes / chips == 0

  TallyBoard board(cells.size(), schemes.size(), spec.chips);

  // ---- checkpoint: load prior progress, mark completed units ---------------
  std::vector<char> done(units.size(), 0);
  std::unique_ptr<CheckpointWriter> writer;
  if (!options.checkpoint_path.empty()) {
    std::vector<std::string> scheme_names;
    for (const link::SchemeSpec& scheme : schemes) scheme_names.push_back(scheme.name);
    const std::uint64_t fingerprint =
        campaign_fingerprint(spec, cells, scheme_names, options.shard_chips);

    CheckpointData data;
    const bool existed = load_checkpoint(options.checkpoint_path, data);
    if (existed) {
      expects(data.fingerprint == fingerprint,
              "checkpoint belongs to a different campaign");
      const UnitIndexMap index(units, cells.size(), schemes.size(), spec.chips);
      for (const UnitResult& unit : data.units) {
        const std::size_t i = index.find(unit.unit);
        if (i == UnitIndexMap::npos || done[i]) continue;
        board.scatter(unit);
        done[i] = 1;
        ++result.units_resumed;
      }
    }
    writer = std::make_unique<CheckpointWriter>(options.checkpoint_path, fingerprint,
                                                existed, options.io_error_policy);
  }

  // ---- schedule the remaining units ----------------------------------------
  std::vector<std::size_t> pending;
  pending.reserve(units.size() - result.units_resumed);
  for (std::size_t i = 0; i < units.size(); ++i)
    if (!done[i]) pending.push_back(i);

  if (!pending.empty() && options.max_units > 0) {
    SchedulerOptions sched;
    sched.threads = options.threads;
    sched.max_units = options.max_units;
    sched.unit_attempts = options.unit_attempts;
    sched.fail_fast = options.fail_fast;

    // The executor is built lazily — only when units actually run — so a
    // fully-resumed campaign skips stage 0 (netlist flattening, SimTables)
    // entirely, exactly like the pre-refactor engine did.
    UnitExecutorOptions exec_options;
    exec_options.workers = resolved_thread_count(sched, pending.size());
    exec_options.shard_chips = options.shard_chips;
    exec_options.artifact_cache_bytes = options.artifact_cache_bytes;
    exec_options.fault_injector = options.fault_injector;
    exec_options.sim_mode = options.sim_mode;
    UnitExecutor executor(spec, cells, schemes, library, exec_options);

    // Per-worker result scratch: execute() fully overwrites it, the board
    // scatter copies it out, so one buffer per worker amortizes to zero
    // allocations once the vectors reach shard size.
    std::vector<UnitResult> scratch(exec_options.workers);
    // Per-worker wall-time histograms, merged below. Diagnostics only (see
    // CampaignResult::unit_wall_ns) — never reaches the byte-stable reports.
    std::vector<util::LatencyHistogram> unit_wall(exec_options.workers);
    const FaultInjector* injector = options.fault_injector;

    const ScheduleOutcome outcome = run_units(
        pending.size(),
        [&](std::size_t pending_index, std::size_t worker_index, std::size_t attempt) {
          // Injection coordinates address the deterministic unit list, not
          // the pending subset, so a fault schedule replays identically
          // across resumes with different completed prefixes.
          const std::size_t unit_index = pending[pending_index];
          UnitResult& record = scratch[worker_index];
          // Unit wall time is diagnostic telemetry, not a result input.
          // detlint:allow(report-clock)
          const auto unit_start = std::chrono::steady_clock::now();
          executor.execute(unit_index, worker_index, attempt, record);
          // detlint:allow(report-clock)
          const auto unit_end = std::chrono::steady_clock::now();
          unit_wall[worker_index].record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(unit_end -
                                                                   unit_start)
                  .count()));
          // Record before scatter: if the checkpoint append fails under
          // IoErrorPolicy::kFail the thrown IoError makes this attempt fail
          // before the board sees the unit, so a unit that ultimately
          // quarantines is absent from BOTH the checkpoint and the
          // statistics (an injected failure exercises the same path; the
          // loader tolerates the duplicate record a successful retry
          // appends — first wins).
          if (writer) {
            const bool inject_ckpt =
                injector &&
                injector->fire(FaultSite::kCheckpointWrite, unit_index, attempt);
            writer->record(record, inject_ckpt);
          }
          board.scatter(record);
        },
        sched);

    // Fail-fast preserves the pre-resilience contract: the first failure
    // aborts the campaign and the exception propagates to the caller.
    if (outcome.first_error) std::rethrow_exception(outcome.first_error);

    result.units_executed = outcome.executed;
    for (const UnitFailure& failure : outcome.failures) {
      const std::size_t unit_index = pending[failure.unit];
      result.failures.push_back(
          UnitFailureInfo{unit_index, units[unit_index], failure.attempts, failure.error});
    }
    result.artifact_cache = executor.cache_stats();
    for (const util::LatencyHistogram& histogram : unit_wall)
      result.unit_wall_ns.merge(histogram);
  }
  if (writer) result.checkpoint_io_errors = writer->io_errors();

  board.finalize_into(result, schemes);
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<link::SchemeSpec>& schemes,
                            const circuit::CellLibrary& library,
                            const RunnerOptions& options) {
  return run_cells(spec, expand_cells(spec), schemes, library, options);
}

CampaignResult run_cells(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
                         const std::vector<core::Scheme>& schemes,
                         const circuit::CellLibrary& library,
                         const RunnerOptions& options) {
  return run_cells(spec, cells, core::scheme_specs(schemes), library, options);
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<core::Scheme>& schemes,
                            const circuit::CellLibrary& library,
                            const RunnerOptions& options) {
  return run_cells(spec, expand_cells(spec), schemes, library, options);
}

}  // namespace sfqecc::engine
