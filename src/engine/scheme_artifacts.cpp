#include "engine/scheme_artifacts.hpp"

#include "circuit/encoder_builder.hpp"
#include "engine/artifact_cache.hpp"

namespace sfqecc::engine {

std::vector<SchemeArtifacts> build_scheme_artifacts(
    const std::vector<link::SchemeSpec>& schemes, const circuit::CellLibrary& library) {
  std::vector<SchemeArtifacts> artifacts;
  artifacts.reserve(schemes.size());
  for (const link::SchemeSpec& scheme : schemes) {
    SchemeArtifacts a;
    a.tables = std::make_shared<sim::SimTables>(scheme.encoder->netlist, library);
    a.fingerprint = scheme_fingerprint(scheme.name, scheme.encoder->netlist, library);
    artifacts.push_back(std::move(a));
  }
  return artifacts;
}

}  // namespace sfqecc::engine
