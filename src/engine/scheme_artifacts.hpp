// Shared immutable per-scheme artifacts of a campaign run.
//
// Stage 0 of the staged pipeline: everything about a scheme that is
// independent of the sweep cell — the flattened simulator dispatch tables
// (sim::SimTables) and the scheme's content fingerprint (the netlist hash
// fabrication artifacts are addressed under) — is built exactly once per
// run_cells call and leased to every worker. Workers previously re-flattened
// the netlist inside each lazily rebuilt DataLink, once per (worker, scheme,
// cell-config change); now a rebuild allocates only mutable simulator state.
// The encoder, reference code and decoder were already shared through the
// borrowed SchemeSpec pointers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/cell_library.hpp"
#include "link/scheme_spec.hpp"
#include "sim/event_sim.hpp"

namespace sfqecc::engine {

/// The immutable artifacts of one scheme, leased (shared) by all workers.
struct SchemeArtifacts {
  std::shared_ptr<const sim::SimTables> tables;  ///< flattened dispatch tables
  std::uint64_t fingerprint = 0;  ///< scheme_fingerprint(name, netlist)
};

/// Builds the artifacts for every scheme. Each scheme must have an encoder
/// (run_cells checks this before calling).
std::vector<SchemeArtifacts> build_scheme_artifacts(
    const std::vector<link::SchemeSpec>& schemes, const circuit::CellLibrary& library);

}  // namespace sfqecc::engine
