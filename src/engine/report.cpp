#include "engine/report.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/table.hpp"

namespace sfqecc::engine {
namespace {

using util::roundtrip;  // byte-stable doubles: tests compare whole files

/// RFC 4180 quoting: wrap in double quotes, double embedded quotes.
std::string csv_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void cell_fields(std::ostringstream& out, const CampaignCell& cell) {
  out << "\"cell\": " << cell.index << ", \"label\": \"" << util::json_escape(cell.label)
      << "\", \"spread_fraction\": " << roundtrip(cell.spread.fraction)
      << ", \"spread_distribution\": \""
      << (cell.spread.distribution == ppv::SpreadDistribution::kUniform ? "uniform"
                                                                        : "gaussian")
      << "\", \"noise_sigma_mv\": " << roundtrip(cell.link.channel.noise_sigma_mv)
      << ", \"attenuation\": " << roundtrip(cell.link.channel.attenuation)
      << ", \"swing_mv\": " << roundtrip(cell.link.channel.swing_mv)
      << ", \"threshold_mv\": " << roundtrip(cell.link.channel.threshold_mv)
      << ", \"clock_period_ps\": " << roundtrip(cell.link.clock_period_ps)
      << ", \"input_phase_ps\": " << roundtrip(cell.link.input_phase_ps)
      << ", \"settle_margin_ps\": " << roundtrip(cell.link.settle_margin_ps)
      << ", \"jitter_sigma_ps\": " << roundtrip(cell.link.sim.jitter_sigma_ps)
      << ", \"arq_max_attempts\": " << (cell.arq.enabled ? cell.arq.max_attempts : 0);
}

}  // namespace

std::string campaign_json(const CampaignSpec& spec, const CampaignResult& result) {
  std::ostringstream out;
  out << "{\n  \"schema\": 1,\n  \"chips\": " << spec.chips
      << ",\n  \"messages_per_chip\": " << spec.messages_per_chip
      << ",\n  \"seed\": " << spec.seed << ",\n  \"count_flagged_as_error\": "
      << (spec.count_flagged_as_error ? "true" : "false")
      << ",\n  \"complete\": " << (result.complete() ? "true" : "false")
      << ",\n  \"results\": [\n";
  bool first = true;
  for (const CellResult& cell : result.cells) {
    for (const SchemeCellResult& scheme : cell.schemes) {
      if (!first) out << ",\n";
      first = false;
      out << "    {";
      cell_fields(out, cell.cell);
      out << ", \"scheme\": \"" << util::json_escape(scheme.scheme)
          << "\", \"chips_completed\": " << scheme.chips_completed << ", \"p_zero\": "
          << roundtrip(scheme.p_zero) << ", \"mean_errors\": " << roundtrip(scheme.mean_errors)
          << ", \"mean_flagged\": " << roundtrip(scheme.mean_flagged)
          << ", \"mean_frames\": " << roundtrip(scheme.mean_frames)
          << ", \"channel_ber\": " << roundtrip(scheme.channel_ber)
          << ", \"errors_per_chip\": [";
      for (std::size_t i = 0; i < scheme.errors_per_chip.size(); ++i)
        out << (i ? "," : "") << scheme.errors_per_chip[i];
      out << "]";
      // In a partial run the zero-filled histogram entries of never-run
      // chips are indistinguishable from real zero-error chips, so emit the
      // mask consumers need to re-plot honestly. Complete runs omit it.
      if (scheme.chips_completed < scheme.chip_done.size()) {
        out << ", \"chip_done\": [";
        for (std::size_t i = 0; i < scheme.chip_done.size(); ++i)
          out << (i ? "," : "") << (scheme.chip_done[i] ? 1 : 0);
        out << "]";
      }
      out << "}";
    }
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream out;
  out << "cell,label,scheme,spread_fraction,spread_distribution,noise_sigma_mv,"
         "attenuation,swing_mv,threshold_mv,clock_period_ps,input_phase_ps,"
         "settle_margin_ps,jitter_sigma_ps,arq_max_attempts,chips_completed,p_zero,"
         "mean_errors,mean_flagged,mean_frames,channel_ber\n";
  for (const CellResult& cell : result.cells) {
    for (const SchemeCellResult& scheme : cell.schemes) {
      out << cell.cell.index << "," << csv_quote(cell.cell.label) << ","
          << csv_quote(scheme.scheme) << ","
          << roundtrip(cell.cell.spread.fraction) << ","
          << (cell.cell.spread.distribution == ppv::SpreadDistribution::kUniform
                  ? "uniform"
                  : "gaussian")
          << "," << roundtrip(cell.cell.link.channel.noise_sigma_mv) << ","
          << roundtrip(cell.cell.link.channel.attenuation) << ","
          << roundtrip(cell.cell.link.channel.swing_mv) << ","
          << roundtrip(cell.cell.link.channel.threshold_mv) << ","
          << roundtrip(cell.cell.link.clock_period_ps) << ","
          << roundtrip(cell.cell.link.input_phase_ps) << ","
          << roundtrip(cell.cell.link.settle_margin_ps) << ","
          << roundtrip(cell.cell.link.sim.jitter_sigma_ps) << ","
          << (cell.cell.arq.enabled ? cell.cell.arq.max_attempts : 0) << ","
          << scheme.chips_completed << ","
          << roundtrip(scheme.p_zero) << "," << roundtrip(scheme.mean_errors) << ","
          << roundtrip(scheme.mean_flagged) << "," << roundtrip(scheme.mean_frames) << ","
          << roundtrip(scheme.channel_ber) << "\n";
    }
  }
  return out.str();
}

std::string cache_stats_json(const ArtifactCacheStats& stats) {
  std::ostringstream out;
  out << "{\n  \"schema\": 1,\n  \"hits\": " << stats.hits
      << ",\n  \"misses\": " << stats.misses
      << ",\n  \"insertions\": " << stats.insertions
      << ",\n  \"insert_failures\": " << stats.insert_failures
      << ",\n  \"evictions\": " << stats.evictions
      << ",\n  \"bytes\": " << stats.bytes
      << ",\n  \"entries\": " << stats.entries << "\n}\n";
  return out.str();
}

bool write_text_file_atomic(const std::string& path, const std::string& text,
                            const ReportIo& io) {
  const std::string tmp = path + ".tmp";
  const std::size_t attempts = std::max<std::size_t>(1, io.attempts);
  std::string reason;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    bool failed = false;
    {
      errno = 0;
      // This is write_text_file_atomic itself — the one place a raw stream
      // is allowed, because the tmp+flush+verify+rename dance around it is
      // exactly what the rule forces everyone else through.
      std::ofstream out(tmp, std::ios::trunc);  // detlint:allow(raw-report-stream)
      if (!out) {
        reason = "cannot open " + tmp;
        failed = true;
      } else {
        out << text;
        out.flush();  // surface buffered ENOSPC here, not at the destructor
        if (io.injector &&
            io.injector->fire(FaultSite::kReportWrite, io.ordinal, attempt)) {
          reason = "injected fault at report-write";
          failed = true;
        } else if (!out.good()) {
          reason = "write failed";
          failed = true;
        }
      }
      if (failed && errno != 0) reason += std::string(": ") + std::strerror(errno);
    }  // close the tmp file before renaming it
    if (!failed) {
      errno = 0;
      if (std::rename(tmp.c_str(), path.c_str()) == 0) return true;
      reason = std::string("rename failed: ") + std::strerror(errno);
    }
    std::remove(tmp.c_str());  // never leave a torn tmp behind
  }
  std::fprintf(stderr, "engine::report: failed to write %s (%s)\n", path.c_str(),
               reason.c_str());
  if (io.policy == IoErrorPolicy::kFail)
    throw IoError("report: failed to write " + path + " (" + reason + ")");
  return false;
}

bool write_text_file(const std::string& path, const std::string& text) {
  return write_text_file_atomic(path, text);
}

}  // namespace sfqecc::engine
