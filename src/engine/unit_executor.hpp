// Shared per-unit execution core of the campaign engine.
//
// UnitExecutor owns everything the staged fabricate→simulate pipeline needs
// to run any work unit of one campaign — the deterministic unit list, the
// shared per-scheme artifacts (stage 0), the fabrication-artifact cache with
// its population gating, and per-worker scratch state — behind a single
// execute() call that turns a unit index into a UnitResult. It exists so
// that the in-process scheduler (engine/campaign.cpp run_cells) and the
// distributed fabric worker (fabric/worker.hpp) run bit-identical units from
// one definition: the unit numbering exposed by units() is the spool
// protocol's wire contract, and a unit's bytes never depend on which process
// (or machine) executed it.
//
// Fault-injection sites kFabricate / kSimulate / kCacheInsert fire inside
// execute() at the same stage boundaries they always did; the caller supplies
// the (unit index, attempt) coordinate, so schedules replay identically under
// the in-process retry ladder and under the fabric's lease reclaim.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/cell_library.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/campaign_spec.hpp"
#include "engine/checkpoint.hpp"
#include "engine/fault_injection.hpp"
#include "engine/kernel.hpp"
#include "engine/scheme_artifacts.hpp"
#include "link/datalink.hpp"
#include "link/scheme_spec.hpp"
#include "ppv/chip.hpp"

namespace sfqecc::engine {

struct UnitExecutorOptions {
  /// Worker-state slots: execute()'s worker_index must stay below this.
  std::size_t workers = 1;
  /// Chips per work unit (campaign_fingerprint input — must match the
  /// coordinator's in a fabric run).
  std::size_t shard_chips = 32;
  /// Byte budget of the fabrication-artifact cache; 0 disables it. Never
  /// affects results, only speed (engine/artifact_cache.hpp key rules).
  std::size_t artifact_cache_bytes = 256ull << 20;
  /// Optional deterministic fault injection; borrowed, may be null.
  const FaultInjector* fault_injector = nullptr;
  /// Stage-2 evaluation mode. Speed-only (every mode yields byte-identical
  /// units, see engine::SimMode), so — like the cache — it is not part of
  /// the campaign fingerprint and fabric workers may mix modes freely.
  SimMode sim_mode = SimMode::kAuto;
};

class UnitExecutor {
 public:
  /// Borrows cells/schemes/library for its lifetime; builds the per-scheme
  /// SimTables once (stage 0) and derives the deterministic unit list from
  /// (cells, schemes, spec.chips, shard_chips).
  UnitExecutor(const CampaignSpec& spec, const std::vector<CampaignCell>& cells,
               const std::vector<link::SchemeSpec>& schemes,
               const circuit::CellLibrary& library,
               const UnitExecutorOptions& options);
  ~UnitExecutor();

  UnitExecutor(const UnitExecutor&) = delete;
  UnitExecutor& operator=(const UnitExecutor&) = delete;

  /// The campaign's deterministic work-unit list (make_work_units order).
  const std::vector<WorkUnit>& units() const noexcept { return units_; }

  /// FNV-1a fingerprint of the campaign (engine/campaign_spec.hpp) — the
  /// value checkpoint files and fabric manifests/shards carry.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// Runs every chip of units()[unit_index] and fills `out` with the unit's
  /// per-chip tallies (fully overwritten; `out`'s capacity is reused).
  /// Throws on failure — including injected faults at the fabricate /
  /// simulate boundaries — leaving `out` unspecified; a retry with the same
  /// coordinates produces the exact bytes the failed attempt would have.
  /// Thread-safe across distinct worker_index values (< options.workers).
  void execute(std::size_t unit_index, std::size_t worker_index, std::size_t attempt,
               UnitResult& out);

  /// Artifact-cache counters so far, including injected insert failures
  /// (diagnostics only — scheduling-dependent, kept out of reports).
  ArtifactCacheStats cache_stats() const;

 private:
  struct WorkerState;

  const CampaignSpec& spec_;
  const std::vector<CampaignCell>& cells_;
  const std::vector<link::SchemeSpec>& schemes_;
  const circuit::CellLibrary& library_;
  const FaultInjector* injector_;
  SimMode sim_mode_ = SimMode::kAuto;

  std::vector<WorkUnit> units_;
  std::uint64_t fingerprint_ = 0;
  std::vector<SchemeArtifacts> artifacts_;
  std::vector<std::uint64_t> cell_spread_fp_;
  std::vector<char> cell_cached_;
  std::unique_ptr<ArtifactCache> cache_;
  std::vector<WorkerState> workers_;
  std::atomic<std::uint64_t> injected_insert_failures_{0};
};

}  // namespace sfqecc::engine
