#include "engine/unit_executor.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "engine/kernel.hpp"
#include "util/expect.hpp"

namespace sfqecc::engine {

/// Per-worker scratch: one DataLink slot per scheme, rebuilt when the cell's
/// link config differs from the cached one. Spread/ARQ-only sweeps (equal
/// configs) build each scheme's simulator once per worker; channel/timing
/// sweeps rebuild at cell boundaries, which is shard-granular and cheap
/// (the link leases the scheme's shared SimTables, so a rebuild allocates
/// only mutable simulator state — the netlist is never re-flattened), while
/// memory stays bounded at one simulator per scheme per worker no matter how
/// many cells the sweep expands to. Reuse never affects results — the kernel
/// reinstalls chip state and reseeds all noise streams per chip.
struct UnitExecutor::WorkerState {
  struct SchemeSlot {
    link::DataLinkConfig config;
    std::unique_ptr<link::DataLink> link;
    std::unique_ptr<link::SlicedLink> sliced;
  };
  std::vector<SchemeSlot> slots;  ///< indexed by scheme
  ppv::ChipSample sample;
  /// Synthetic all-healthy sample for kAuto's lone-chip fallback: a chip is
  /// only deferred when fully healthy, and install_chip consumes nothing but
  /// the fault states, so this stands in for the (discarded) real sample.
  ppv::ChipSample healthy;
  std::vector<std::size_t> deferred;  ///< gate-eligible chips of the current unit

  SchemeSlot& slot_for(const CampaignCell& cell, std::size_t scheme_index) {
    if (slots.size() <= scheme_index) slots.resize(scheme_index + 1);
    SchemeSlot& slot = slots[scheme_index];
    if (!(slot.config == cell.link)) {
      // Config changed at a cell boundary: invalidate both evaluators; each
      // is rebuilt lazily on first use under the new config.
      slot.link.reset();
      slot.sliced.reset();
      slot.config = cell.link;
    }
    return slot;
  }

  link::DataLink& link_for(const CampaignCell& cell, std::size_t scheme_index,
                           const link::SchemeSpec& scheme,
                           const SchemeArtifacts& artifacts) {
    SchemeSlot& slot = slot_for(cell, scheme_index);
    if (!slot.link)
      slot.link = std::make_unique<link::DataLink>(*scheme.encoder, artifacts.tables,
                                                   scheme.reference, scheme.decoder,
                                                   cell.link);
    return *slot.link;
  }

  link::SlicedLink& sliced_for(const CampaignCell& cell, std::size_t scheme_index,
                               const link::SchemeSpec& scheme,
                               const SchemeArtifacts& artifacts) {
    SchemeSlot& slot = slot_for(cell, scheme_index);
    if (!slot.sliced)
      slot.sliced = std::make_unique<link::SlicedLink>(
          *scheme.encoder, artifacts.tables, scheme.reference, scheme.decoder,
          cell.link);
    return *slot.sliced;
  }

  const ppv::ChipSample& healthy_sample(std::size_t cell_count) {
    if (healthy.faults.size() != cell_count) {
      healthy.faults.assign(cell_count, sim::CellFault{});
      healthy.health_ratios.assign(cell_count, 0.0);
    }
    return healthy;
  }
};

namespace {

/// kAuto falls back to the event path when a unit defers fewer eligible
/// chips than this: a batch of one has no word-level parallelism to win.
constexpr std::size_t kAutoSliceMinLanes = 2;

}  // namespace

UnitExecutor::UnitExecutor(const CampaignSpec& spec,
                           const std::vector<CampaignCell>& cells,
                           const std::vector<link::SchemeSpec>& schemes,
                           const circuit::CellLibrary& library,
                           const UnitExecutorOptions& options)
    : spec_(spec),
      cells_(cells),
      schemes_(schemes),
      library_(library),
      injector_(options.fault_injector),
      sim_mode_(options.sim_mode) {
  for (const link::SchemeSpec& scheme : schemes)
    expects(scheme.encoder != nullptr, "campaign scheme without encoder");

  units_ = make_work_units(cells.size(), schemes.size(), spec.chips,
                           options.shard_chips);
  {
    std::vector<std::string> scheme_names;
    scheme_names.reserve(schemes.size());
    for (const link::SchemeSpec& scheme : schemes) scheme_names.push_back(scheme.name);
    fingerprint_ = campaign_fingerprint(spec, cells, scheme_names, options.shard_chips);
  }
  if (units_.empty()) return;  // empty sweep / no schemes / chips == 0

  // ---- stage 0: shared immutable per-scheme artifacts ----------------------
  artifacts_ = build_scheme_artifacts(schemes, library);

  // ---- fabrication-artifact cache ------------------------------------------
  // Cells fabricate identical chips exactly when they agree on (seed,
  // spread): the kPpv substream depends on nothing else. Only cells whose
  // (seed, spread fingerprint) pair recurs can ever hit, so single-cell runs
  // (run_monte_carlo) and pure spread sweeps bypass the cache entirely — no
  // lookups, no resident copies, the exact pre-cache path.
  cell_spread_fp_.assign(cells.size(), 0);
  cell_cached_.assign(cells.size(), 0);
  if (options.artifact_cache_bytes > 0) {
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> population;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      cell_spread_fp_[c] = spread_fingerprint(cells[c].spread);
      ++population[{cells[c].seed, cell_spread_fp_[c]}];
    }
    for (std::size_t c = 0; c < cells.size(); ++c)
      cell_cached_[c] = population[{cells[c].seed, cell_spread_fp_[c]}] > 1 ? 1 : 0;
    for (char cached : cell_cached_)
      if (cached) {
        cache_ = std::make_unique<ArtifactCache>(options.artifact_cache_bytes);
        break;
      }
  }

  workers_.resize(std::max<std::size_t>(1, options.workers));
}

UnitExecutor::~UnitExecutor() = default;

void UnitExecutor::execute(std::size_t unit_index, std::size_t worker_index,
                           std::size_t attempt, UnitResult& out) {
  expects(unit_index < units_.size(), "unit executor: unit index out of range");
  expects(worker_index < workers_.size(), "unit executor: worker index out of range");
  const WorkUnit& unit = units_[unit_index];
  const CampaignCell& cell = cells_[unit.cell];
  const link::SchemeSpec& scheme = schemes_[unit.scheme];
  WorkerState& worker = workers_[worker_index];
  // Reusing the worker's DataLink across attempts is safe for the same
  // reason reusing it across units is: simulate_chip reinstalls the chip and
  // reseeds every noise stream per chip, so no state from an abandoned
  // attempt can leak into the retry.
  link::DataLink& dlink =
      worker.link_for(cell, unit.scheme, scheme, artifacts_[unit.scheme]);

  const std::size_t count = unit.chip_hi - unit.chip_lo;
  out.unit = unit;
  out.errors.assign(count, 0);
  out.flagged.assign(count, 0);
  out.frames.assign(count, 0);
  out.channel_bit_errors.assign(count, 0);

  ChipTask task;
  task.scheme = &scheme;
  task.library = &library_;
  task.spread = cell.spread;
  task.seed = cell.seed;
  task.scheme_index = unit.scheme;
  task.chips = spec_.chips;
  task.messages = spec_.messages_per_chip;
  task.count_flagged_as_error = spec_.count_flagged_as_error;
  task.arq = cell.arq;

  const auto store = [&out, &unit](std::size_t chip, const ChipCounts& counts) {
    const std::size_t slot = chip - unit.chip_lo;
    out.errors[slot] = counts.errors;
    out.flagged[slot] = counts.flagged;
    out.frames[slot] = counts.frames;
    out.channel_bit_errors[slot] = counts.channel_bit_errors;
  };

  // The fabricate/simulate checks throw InjectedFault on a matching
  // (site, unit, attempt) at the stage boundary of the first chip that
  // reaches it — so a simulate fault fires after fabrication (and any cache
  // insert) already happened, exercising retry over partially completed
  // work. A failed attempt leaves `out` partially filled; that is fine
  // because callers only consume `out` on success and a successful retry
  // overwrites every chip with deterministically identical values.
  //
  // Pass 1: fabricate every chip in order (the kPpv draws and cache traffic
  // are mode-independent); chips passing the sliced observability gate are
  // deferred for batched evaluation, everything else simulates on the exact
  // event path immediately. Pass 2 evaluates the deferred chips 64 to a
  // word. The fill order of `out` differs from the all-event pass, the
  // bytes do not: each chip's tallies depend only on its own substreams.
  worker.deferred.clear();
  for (std::size_t chip = unit.chip_lo; chip < unit.chip_hi; ++chip) {
    task.chip = chip;
    if (injector_) injector_->check(FaultSite::kFabricate, unit_index, attempt);
    if (cache_ && cell_cached_[unit.cell]) {
      const ArtifactKey key{artifacts_[unit.scheme].fingerprint,
                            cell_spread_fp_[unit.cell], cell.seed, task.stream()};
      if (!cache_->lookup(key, worker.sample)) {
        fabricate_chip(task, worker.sample);
        // Graceful degradation: a failed insert (injected here, or a real
        // allocation failure inside the cache) keeps the chip out of the
        // cache but never out of the unit — the sample in hand is used as-is
        // and peers re-fabricate on their misses.
        if (injector_ && injector_->fire(FaultSite::kCacheInsert, unit_index, attempt)) {
          injected_insert_failures_.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache_->insert(key, worker.sample);
        }
      }
    } else {
      fabricate_chip(task, worker.sample);
    }
    if (injector_) injector_->check(FaultSite::kSimulate, unit_index, attempt);
    if (sim_mode_ != SimMode::kEvent && chip_sliceable(worker.sample, cell.link.sim)) {
      worker.deferred.push_back(chip);
      continue;
    }
    store(chip, simulate_chip(dlink, task, worker.sample));
  }

  if (worker.deferred.empty()) return;
  if (sim_mode_ == SimMode::kAuto && worker.deferred.size() < kAutoSliceMinLanes) {
    // A lone eligible chip gains nothing from a one-lane batch: run it on
    // the event path. Its sample was discarded during classification, but a
    // deferred chip is by definition fully healthy, so the synthetic
    // all-healthy sample installs the identical fault state.
    const ppv::ChipSample& healthy =
        worker.healthy_sample(scheme.encoder->netlist.cell_count());
    for (const std::size_t chip : worker.deferred) {
      task.chip = chip;
      store(chip, simulate_chip(dlink, task, healthy));
    }
    return;
  }
  link::SlicedLink& slink =
      worker.sliced_for(cell, unit.scheme, scheme, artifacts_[unit.scheme]);
  ChipCounts counts[link::SlicedLink::kMaxLanes];
  for (std::size_t begin = 0; begin < worker.deferred.size();
       begin += link::SlicedLink::kMaxLanes) {
    const std::size_t lanes =
        std::min(link::SlicedLink::kMaxLanes, worker.deferred.size() - begin);
    simulate_chip_batch(slink, task, worker.deferred.data() + begin, lanes, counts);
    for (std::size_t l = 0; l < lanes; ++l) store(worker.deferred[begin + l], counts[l]);
  }
}

ArtifactCacheStats UnitExecutor::cache_stats() const {
  ArtifactCacheStats stats;
  if (cache_) stats = cache_->stats();
  stats.insert_failures += injected_insert_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sfqecc::engine
