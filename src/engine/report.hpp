// Campaign result reporters: machine-readable JSON and CSV.
//
// The JSON schema is flat and stable (schema 1): campaign scalars, then one
// record per (cell, scheme) with the scenario axes spelled out and the
// finalized statistics plus the full per-chip error histogram — enough to
// re-plot any cell's Fig. 5-style CDF without re-running. The CSV carries
// the same records minus the histogram, one row per (cell, scheme), for
// spreadsheet/pandas consumption; free-form strings (cell label, scheme
// name) are RFC 4180-quoted so labels containing commas, quotes or newlines
// round-trip.
//
// Both documents are byte-stable: they depend only on the CampaignResult
// payload, never on runtime accidents (thread count, shard size, artifact-
// cache setting). Cache counters live in CampaignResult::artifact_cache for
// run summaries precisely so they stay out of these files.
//
// File writing is ATOMIC: the text goes to `<path>.tmp` in the same
// directory, is flushed and verified, then renamed over `path` — a kill or
// a full disk at any instant leaves either the previous report or the new
// one, never a torn JSON/CSV. Failures are verified after the flush (a
// buffered ENOSPC is not a success) and reported with the path; the caller
// chooses between warn-and-continue and a thrown engine::IoError via
// ReportIo::policy.
#pragma once

#include <cstddef>
#include <string>

#include "engine/campaign.hpp"
#include "engine/fault_injection.hpp"

namespace sfqecc::engine {

/// Serializes the result to the schema-1 JSON document.
std::string campaign_json(const CampaignSpec& spec, const CampaignResult& result);

/// Serializes the result to CSV (header row + one row per cell x scheme).
std::string campaign_csv(const CampaignResult& result);

/// Serializes the run's artifact-cache counters to a small standalone JSON
/// document. Deliberately a separate file from campaign_json: the counters
/// are scheduling-dependent (see ArtifactCacheStats), so folding them into
/// the main report would break its byte-identity across thread counts and
/// cache settings.
std::string cache_stats_json(const ArtifactCacheStats& stats);

/// How write_text_file_atomic handles failures.
struct ReportIo {
  /// kWarn: print the path + reason to stderr and return false.
  /// kFail: additionally throw engine::IoError after the attempts run out.
  IoErrorPolicy policy = IoErrorPolicy::kWarn;
  /// Bounded retry of the whole write-verify-rename sequence (>= 1). Each
  /// attempt starts the tmp file over, so a partially written attempt never
  /// leaks into the next.
  std::size_t attempts = 1;
  /// Optional deterministic failure source (site report-write); `ordinal`
  /// is the coordinate's unit index — the file's position in the driver's
  /// write order (campaign_runner: 0 = JSON, 1 = CSV, 2 = cache stats).
  const FaultInjector* injector = nullptr;
  std::size_t ordinal = 0;
};

/// Atomically writes `text` to `path` via tmp-file + rename, verifying the
/// stream after the flush. Returns true on success; on failure removes the
/// tmp file, leaves any previous `path` contents untouched, prints the path
/// and reason to stderr, and returns false (kWarn) or throws IoError
/// (kFail).
bool write_text_file_atomic(const std::string& path, const std::string& text,
                            const ReportIo& io = {});

/// Back-compatible wrapper over write_text_file_atomic with default policy
/// (single attempt, warn on failure).
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace sfqecc::engine
