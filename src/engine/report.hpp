// Campaign result reporters: machine-readable JSON and CSV.
//
// The JSON schema is flat and stable (schema 1): campaign scalars, then one
// record per (cell, scheme) with the scenario axes spelled out and the
// finalized statistics plus the full per-chip error histogram — enough to
// re-plot any cell's Fig. 5-style CDF without re-running. The CSV carries
// the same records minus the histogram, one row per (cell, scheme), for
// spreadsheet/pandas consumption.
#pragma once

#include <string>

#include "engine/campaign.hpp"

namespace sfqecc::engine {

/// Serializes the result to the schema-1 JSON document.
std::string campaign_json(const CampaignSpec& spec, const CampaignResult& result);

/// Serializes the result to CSV (header row + one row per cell x scheme).
std::string campaign_csv(const CampaignResult& result);

/// Writes `text` to `path`. Returns false (and prints to stderr) on failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace sfqecc::engine
