// Campaign result reporters: machine-readable JSON and CSV.
//
// The JSON schema is flat and stable (schema 1): campaign scalars, then one
// record per (cell, scheme) with the scenario axes spelled out and the
// finalized statistics plus the full per-chip error histogram — enough to
// re-plot any cell's Fig. 5-style CDF without re-running. The CSV carries
// the same records minus the histogram, one row per (cell, scheme), for
// spreadsheet/pandas consumption; free-form strings (cell label, scheme
// name) are RFC 4180-quoted so labels containing commas, quotes or newlines
// round-trip.
//
// Both documents are byte-stable: they depend only on the CampaignResult
// payload, never on runtime accidents (thread count, shard size, artifact-
// cache setting). Cache counters live in CampaignResult::artifact_cache for
// run summaries precisely so they stay out of these files.
#pragma once

#include <string>

#include "engine/campaign.hpp"

namespace sfqecc::engine {

/// Serializes the result to the schema-1 JSON document.
std::string campaign_json(const CampaignSpec& spec, const CampaignResult& result);

/// Serializes the result to CSV (header row + one row per cell x scheme).
std::string campaign_csv(const CampaignResult& result);

/// Serializes the run's artifact-cache counters to a small standalone JSON
/// document. Deliberately a separate file from campaign_json: the counters
/// are scheduling-dependent (see ArtifactCacheStats), so folding them into
/// the main report would break its byte-identity across thread counts and
/// cache settings.
std::string cache_stats_json(const ArtifactCacheStats& stats);

/// Writes `text` to `path`. Returns false (and prints to stderr) on failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace sfqecc::engine
