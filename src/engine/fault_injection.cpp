#include "engine/fault_injection.hpp"

#include <cstdlib>

namespace sfqecc::engine {
namespace {

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "fabricate",    "simulate",    "cache-insert", "checkpoint-write",
    "report-write", "lease-claim", "shard-write",  "merge"};

/// Parses a unit/attempt field: digits or the '*' wildcard. Returns false on
/// anything else (including an empty field or trailing junk).
bool parse_index(const std::string& field, std::size_t& out) {
  if (field == "*") {
    out = InjectionSpec::kAny;
    return true;
  }
  if (field.empty() || field[0] < '0' || field[0] > '9') return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(field.c_str(), &end, 10);
  if (*end != '\0') return false;
  out = static_cast<std::size_t>(parsed);
  return true;
}

std::optional<InjectionSpec> fail(InjectionParseError* error, std::string message,
                                  std::size_t position) {
  if (error) {
    error->message = std::move(message);
    error->position = position;
  }
  return std::nullopt;
}

}  // namespace

const char* fault_site_name(FaultSite site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<FaultSite> parse_fault_site(const std::string& name) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i)
    if (name == kSiteNames[i]) return static_cast<FaultSite>(i);
  if (name == "artifact-cache-insert") return FaultSite::kCacheInsert;
  return std::nullopt;
}

std::optional<InjectionSpec> parse_injection_spec(const std::string& text,
                                                  InjectionParseError* error) {
  const std::size_t site_end = text.find(':');
  if (site_end == std::string::npos)
    return fail(error, "expected site:unit[:attempt]", text.size());

  InjectionSpec spec;
  const std::string site_name = text.substr(0, site_end);
  const std::optional<FaultSite> site = parse_fault_site(site_name);
  if (!site)
    return fail(error,
                "unknown fault site '" + site_name +
                    "' (fabricate, simulate, cache-insert, checkpoint-write, "
                    "report-write, lease-claim, shard-write, merge)",
                0);
  spec.site = *site;

  const std::size_t unit_begin = site_end + 1;
  const std::size_t unit_end = text.find(':', unit_begin);
  const std::string unit_field =
      text.substr(unit_begin, unit_end == std::string::npos
                                  ? std::string::npos
                                  : unit_end - unit_begin);
  if (!parse_index(unit_field, spec.unit))
    return fail(error, "expected a unit index or '*'", unit_begin);

  if (unit_end != std::string::npos) {
    const std::size_t attempt_begin = unit_end + 1;
    if (!parse_index(text.substr(attempt_begin), spec.attempt))
      return fail(error, "expected an attempt index or '*'", attempt_begin);
  }
  return spec;
}

InjectedFault::InjectedFault(FaultSite site, std::size_t unit, std::size_t attempt)
    : std::runtime_error("injected fault at " + std::string(fault_site_name(site)) +
                         " (unit " + std::to_string(unit) + ", attempt " +
                         std::to_string(attempt) + ")"),
      site_(site),
      unit_(unit),
      attempt_(attempt) {}

}  // namespace sfqecc::engine
