// Umbrella header for the sfqecc library.
//
// sfqecc reproduces "Lightweight Error-Correction Code Encoders in
// Superconducting Electronic Systems" (SOCC 2025): lightweight block codes
// (Hamming(7,4), Hamming(8,4), RM(1,3) and friends), SFQ circuit synthesis
// for their encoders, a pulse-level simulator with process-parameter
// variation modelling, and the cryogenic data-link Monte Carlo.
//
// Component headers (include individually for faster builds):
//   code/     coding theory: bitvec, gf2_matrix, linear_code, hamming,
//             reed_muller, bch, code3832, decoder, code_analysis
//   circuit/  cell_library, netlist, xor_synth, balance, fanout, clock_tree,
//             netlist_stats, encoder_builder
//   sim/      event_sim, cell_behavior, waveform
//   ppv/      spread, margin_model, chip, calibration
//   link/     channel, datalink, scheme_spec, monte_carlo
//   engine/   campaign_spec, scheduler, kernel, artifact_cache,
//             scheme_artifacts, checkpoint, unit_executor, tally_board,
//             campaign, report, fault_injection
//   fabric/   spool, worker, coordinator — distributed campaign execution
//             over a shared spool directory
//   serve/    mpmc_ring, link_server, telemetry — online serving of
//             encode -> transmit -> decode requests with lane coalescing
//   core/     scheme_catalog, paper_encoders, paper_constants
//   util/     rng, stats, cdf, table, ascii_plot, expect, latency_histogram
#pragma once

#include "circuit/balance.hpp"
#include "circuit/cell_library.hpp"
#include "circuit/clock_tree.hpp"
#include "circuit/encoder_builder.hpp"
#include "circuit/fanout.hpp"
#include "circuit/netlist.hpp"
#include "circuit/netlist_export.hpp"
#include "circuit/netlist_stats.hpp"
#include "circuit/xor_synth.hpp"
#include "code/bch.hpp"
#include "code/bitvec.hpp"
#include "code/code3832.hpp"
#include "code/code_analysis.hpp"
#include "code/decoder.hpp"
#include "code/soft_decoder.hpp"
#include "code/gf2_matrix.hpp"
#include "code/gf2m.hpp"
#include "code/hamming.hpp"
#include "code/hsiao.hpp"
#include "code/linear_code.hpp"
#include "code/macwilliams.hpp"
#include "code/reed_muller.hpp"
#include "core/paper_constants.hpp"
#include "core/paper_encoders.hpp"
#include "core/scheme_catalog.hpp"
#include "engine/artifact_cache.hpp"
#include "engine/campaign.hpp"
#include "engine/campaign_spec.hpp"
#include "engine/checkpoint.hpp"
#include "engine/fault_injection.hpp"
#include "engine/kernel.hpp"
#include "engine/report.hpp"
#include "engine/scheduler.hpp"
#include "engine/scheme_artifacts.hpp"
#include "engine/tally_board.hpp"
#include "engine/unit_executor.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/spool.hpp"
#include "fabric/worker.hpp"
#include "link/arq.hpp"
#include "link/channel.hpp"
#include "link/datalink.hpp"
#include "link/monte_carlo.hpp"
#include "link/scheme_spec.hpp"
#include "ppv/calibration.hpp"
#include "serve/link_server.hpp"
#include "serve/mpmc_ring.hpp"
#include "serve/telemetry.hpp"
#include "ppv/chip.hpp"
#include "ppv/margin_model.hpp"
#include "ppv/spread.hpp"
#include "sim/behavioral_eval.hpp"
#include "sim/bitsliced_eval.hpp"
#include "sim/cell_behavior.hpp"
#include "sim/event_sim.hpp"
#include "sim/waveform.hpp"
#include "util/ascii_plot.hpp"
#include "util/cdf.hpp"
#include "util/expect.hpp"
#include "util/latency_histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
