// Fast behavioural netlist evaluation.
//
// A second, independent execution engine for balanced encoder netlists: one
// frame is evaluated combinationally in topological order (per-cell boolean
// semantics with the same fault model), with no event queue and no timing.
// Roughly an order of magnitude faster than the pulse simulator and — by the
// cross-validation tests — frame-equivalent to it for deterministic fault
// states on balanced netlists. Used for large design-space sweeps; the
// pulse simulator remains the reference engine (it also covers timing,
// jitter and streaming).
#pragma once

#include <vector>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "code/bitvec.hpp"
#include "sim/cell_behavior.hpp"
#include "util/rng.hpp"

namespace sfqecc::sim {

/// Evaluates one frame of a balanced netlist: message bits in, DC levels out.
///
/// Semantics per frame: each net carries the number of pulses (mod 2) it sees
/// during the frame; clocked gates fire per their truth table once per
/// wavefront (valid because the netlist is path-balanced); SFQ-to-DC levels
/// are pulse-count parity. Faults: kDead forces a cell's output to 0;
/// kSputter makes a clocked cell fire on every of the `depth` clock cycles
/// (parity of depth) and an unclocked cell behave flakily at p = 0.5; kFlaky
/// drops/adds with the cell's error probability using `rng`.
class BehavioralEvaluator {
 public:
  BehavioralEvaluator(const circuit::Netlist& netlist,
                      const circuit::CellLibrary& library, std::size_t logic_depth);

  void set_fault(circuit::CellId cell, const CellFault& fault);
  void clear_faults();

  /// Evaluates one frame. `message` maps to the primary inputs in order
  /// (excluding the clock input, which is implicit). Returns the DC level of
  /// each primary output. `rng` is only consulted for flaky faults.
  code::BitVec evaluate(const code::BitVec& message, util::Rng& rng) const;

 private:
  const circuit::Netlist& netlist_;
  const circuit::CellLibrary& library_;
  std::size_t logic_depth_;
  std::vector<CellFault> faults_;
  std::vector<circuit::CellId> topo_order_;
  std::vector<circuit::NetId> data_inputs_;  // primary inputs minus the clock
};

}  // namespace sfqecc::sim
