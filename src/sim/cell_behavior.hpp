// Dynamic state and fault model of SFQ cells under simulation.
//
// Clocked gates use destructive readout: input pulses set internal flux
// ("arm") states; the clock pulse evaluates the gate, emits at clock-to-Q
// delay when the logic function holds, and resets the arms. Unclocked cells
// (splitter, JTL, merger, TFF, SFQ-to-DC) propagate or accumulate pulses
// directly.
//
// Faults model what process-parameter variations do to a marginal cell:
//  * kHealthy — nominal behaviour.
//  * kFlaky   — each emission is dropped with probability `error_prob`, and a
//               clocked cell emits spuriously with the same probability on
//               clocks where it should stay silent (operating point near the
//               margin boundary).
//  * kDead    — the cell never emits (flux trapping / bias far out of margin).
//  * kSputter — a clocked cell emits on every clock regardless of inputs; an
//               unclocked cell behaves as kFlaky with probability 0.5.
#pragma once

#include <cstddef>

namespace sfqecc::sim {

enum class FaultMode { kHealthy, kFlaky, kDead, kSputter };

struct CellFault {
  FaultMode mode = FaultMode::kHealthy;
  double error_prob = 0.0;  ///< per-operation error probability for kFlaky

  bool healthy() const noexcept { return mode == FaultMode::kHealthy; }

  /// Memberwise equality — DataLink::install_chip compares the incoming
  /// chip's fault states against the installed ones to skip redundant
  /// simulator resets on the serving hot path.
  bool operator==(const CellFault&) const = default;
};

/// Mutable per-cell simulation state.
struct CellState {
  bool arm_a = false;      ///< first data arm (clocked cells, TFF internal state)
  bool arm_b = false;      ///< second data arm
  bool dc_level = false;   ///< SFQ-to-DC output level
  std::size_t emissions = 0;  ///< total output pulses emitted (diagnostics)

  void reset_arms() noexcept {
    arm_a = false;
    arm_b = false;
  }
};

}  // namespace sfqecc::sim
