#include "sim/behavioral_eval.hpp"

#include <queue>

#include "util/expect.hpp"

namespace sfqecc::sim {

using circuit::Cell;
using circuit::CellId;
using circuit::CellType;
using circuit::kClockPort;
using circuit::kInvalidId;
using circuit::NetId;

namespace {

/// Nets and splitter cells reachable from `root` through the clock network.
/// Returns (clock_nets, clock_splitters) flags; `feeds_clock_port` reports
/// whether the cone reaches any clock port.
void walk_clock_cone(const circuit::Netlist& netlist, NetId root,
                     std::vector<bool>& clock_net, std::vector<bool>& clock_cell,
                     bool& feeds_clock_port) {
  std::queue<NetId> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const NetId net = frontier.front();
    frontier.pop();
    if (clock_net[net]) continue;
    clock_net[net] = true;
    for (const circuit::Sink& sink : netlist.net(net).sinks) {
      if (sink.port == kClockPort) {
        feeds_clock_port = true;
        continue;
      }
      const Cell& cell = netlist.cell(sink.cell);
      if (cell.type == CellType::kSplitter && !clock_cell[cell.id]) {
        clock_cell[cell.id] = true;
        for (NetId out : cell.outputs) frontier.push(out);
      }
    }
  }
}

}  // namespace

BehavioralEvaluator::BehavioralEvaluator(const circuit::Netlist& netlist,
                                         const circuit::CellLibrary& library,
                                         std::size_t logic_depth)
    : netlist_(netlist),
      library_(library),
      logic_depth_(logic_depth),
      faults_(netlist.cell_count()),
      topo_order_(netlist.topological_order()) {
  // Identify the clock primary input: the one whose cone reaches clock ports.
  for (NetId in : netlist_.primary_inputs()) {
    std::vector<bool> cone_net(netlist_.net_count(), false);
    std::vector<bool> cone_cell(netlist_.cell_count(), false);
    bool feeds = false;
    walk_clock_cone(netlist_, in, cone_net, cone_cell, feeds);
    if (!feeds) data_inputs_.push_back(in);
  }
}

void BehavioralEvaluator::set_fault(CellId cell, const CellFault& fault) {
  expects(cell < faults_.size(), "unknown cell");
  faults_[cell] = fault;
}

void BehavioralEvaluator::clear_faults() {
  for (CellFault& f : faults_) f = CellFault{};
}

code::BitVec BehavioralEvaluator::evaluate(const code::BitVec& message,
                                           util::Rng& rng) const {
  expects(message.size() == data_inputs_.size(), "message length mismatch");

  // Clock-cone classification (with fault-aware aliveness per clocked cell).
  std::vector<bool> clock_net(netlist_.net_count(), false);
  std::vector<bool> clock_cell(netlist_.cell_count(), false);
  for (NetId in : netlist_.primary_inputs()) {
    bool feeds = false;
    std::vector<bool> cone_net(netlist_.net_count(), false);
    std::vector<bool> cone_cell(netlist_.cell_count(), false);
    walk_clock_cone(netlist_, in, cone_net, cone_cell, feeds);
    if (feeds) {
      for (std::size_t i = 0; i < cone_net.size(); ++i)
        if (cone_net[i]) clock_net[i] = true;
      for (std::size_t i = 0; i < cone_cell.size(); ++i)
        if (cone_cell[i]) clock_cell[i] = true;
    }
  }

  // Clock aliveness: walk up the clock path of a clocked cell; every dead
  // splitter kills it, every flaky splitter drops the frame's clocks with
  // its per-operation probability (approximation documented in the header).
  auto clock_alive = [&](const Cell& cell) {
    NetId net = cell.clock;
    while (net != kInvalidId) {
      const CellId driver = netlist_.net(net).driver_cell;
      if (driver == kInvalidId) return true;  // reached the primary clock
      const CellFault& fault = faults_[driver];
      if (fault.mode == FaultMode::kDead) return false;
      if (fault.mode == FaultMode::kFlaky && rng.bernoulli(fault.error_prob))
        return false;
      net = netlist_.cell(driver).inputs[0];
    }
    return true;
  };

  std::vector<bool> value(netlist_.net_count(), false);
  for (std::size_t i = 0; i < data_inputs_.size(); ++i)
    value[data_inputs_[i]] = message.get(i);

  for (CellId id : topo_order_) {
    const Cell& cell = netlist_.cell(id);
    if (clock_cell[id]) continue;  // clock-tree splitters handled via aliveness
    expects(cell.type != CellType::kTff, "behavioural evaluation does not model TFF");

    const CellFault& fault = faults_[id];
    auto in = [&](std::size_t port) { return value[cell.inputs[port]]; };

    bool out = false;
    switch (cell.type) {
      case CellType::kXor: out = in(0) != in(1); break;
      case CellType::kAnd: out = in(0) && in(1); break;
      case CellType::kOr: out = in(0) || in(1); break;
      case CellType::kNot: out = !in(0); break;
      case CellType::kDff: out = in(0); break;
      case CellType::kSplitter:
      case CellType::kJtl:
      case CellType::kDcToSfq:
      case CellType::kSfqToDc: out = in(0); break;
      case CellType::kMerger: out = in(0) != in(1); break;  // pulse parity
      case CellType::kTff: break;                           // unreachable
    }

    const bool clocked = library_.spec(cell.type).clocked;
    if (clocked && !clock_alive(cell)) {
      out = false;
    } else {
      switch (fault.mode) {
        case FaultMode::kHealthy:
          break;
        case FaultMode::kDead:
          out = false;
          break;
        case FaultMode::kFlaky:
          if (out && rng.bernoulli(fault.error_prob))
            out = false;  // dropped emission
          else if (!out && clocked && rng.bernoulli(fault.error_prob))
            out = true;  // spurious emission
          break;
        case FaultMode::kSputter:
          if (clocked)
            out = logic_depth_ % 2 == 1;  // fires every cycle; parity reaches the DC
          else if (rng.bernoulli(0.5))
            out = false;
          break;
      }
    }
    for (NetId o : cell.outputs) value[o] = out;
  }

  code::BitVec result(netlist_.primary_outputs().size());
  for (std::size_t j = 0; j < result.size(); ++j)
    result.set(j, value[netlist_.primary_outputs()[j]]);
  return result;
}

}  // namespace sfqecc::sim
