#include "sim/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.hpp"

namespace sfqecc::sim {
namespace {

std::size_t sample_count(const RasterOptions& o) {
  expects(o.t1_ps > o.t0_ps && o.dt_ps > 0.0, "invalid raster window");
  return static_cast<std::size_t>((o.t1_ps - o.t0_ps) / o.dt_ps) + 1;
}

void add_noise(std::vector<double>& samples, const RasterOptions& o) {
  if (o.noise_sigma_uv <= 0.0) return;
  util::Rng rng(o.noise_seed);
  for (double& s : samples) s += rng.gaussian(0.0, o.noise_sigma_uv);
}

}  // namespace

AnalogTrace rasterize_pulses(const std::string& label, const std::vector<double>& pulse_times,
                             const RasterOptions& options) {
  AnalogTrace trace;
  trace.label = label;
  trace.t0_ps = options.t0_ps;
  trace.dt_ps = options.dt_ps;
  trace.samples_uv.assign(sample_count(options), 0.0);

  const double sigma = options.pulse_sigma_ps;
  for (double t : pulse_times) {
    // A pulse only influences +/- 4 sigma around its center.
    const double lo = t - 4.0 * sigma, hi = t + 4.0 * sigma;
    const auto first = static_cast<long>(std::floor((lo - options.t0_ps) / options.dt_ps));
    const auto last = static_cast<long>(std::ceil((hi - options.t0_ps) / options.dt_ps));
    for (long i = std::max(0L, first);
         i <= last && i < static_cast<long>(trace.samples_uv.size()); ++i) {
      const double ts = options.t0_ps + static_cast<double>(i) * options.dt_ps;
      const double x = (ts - t) / sigma;
      trace.samples_uv[static_cast<std::size_t>(i)] +=
          options.pulse_amplitude_uv * std::exp(-0.5 * x * x);
    }
  }
  add_noise(trace.samples_uv, options);
  return trace;
}

AnalogTrace rasterize_dc(const std::string& label, const std::vector<double>& transitions,
                         double high_uv, const RasterOptions& options) {
  AnalogTrace trace;
  trace.label = label;
  trace.t0_ps = options.t0_ps;
  trace.dt_ps = options.dt_ps;
  const std::size_t count = sample_count(options);
  trace.samples_uv.assign(count, 0.0);

  bool level = false;
  std::size_t next = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double ts = options.t0_ps + static_cast<double>(i) * options.dt_ps;
    while (next < transitions.size() && transitions[next] <= ts) {
      level = !level;
      ++next;
    }
    trace.samples_uv[i] = level ? high_uv : 0.0;
  }
  add_noise(trace.samples_uv, options);
  return trace;
}

std::string traces_to_csv(const std::vector<AnalogTrace>& traces) {
  expects(!traces.empty(), "no traces");
  const std::size_t count = traces.front().samples_uv.size();
  for (const AnalogTrace& t : traces)
    expects(t.samples_uv.size() == count && t.t0_ps == traces.front().t0_ps &&
                t.dt_ps == traces.front().dt_ps,
            "traces must share the sampling grid");

  std::ostringstream out;
  out << "time_ps";
  for (const AnalogTrace& t : traces) out << ',' << t.label << "_uV";
  out << '\n';
  for (std::size_t i = 0; i < count; ++i) {
    out << traces.front().t0_ps + static_cast<double>(i) * traces.front().dt_ps;
    for (const AnalogTrace& t : traces) out << ',' << t.samples_uv[i];
    out << '\n';
  }
  return out.str();
}

std::string traces_to_ascii(const std::vector<AnalogTrace>& traces, std::size_t width) {
  expects(width >= 10, "width too small");
  std::size_t label_width = 0;
  for (const AnalogTrace& t : traces) label_width = std::max(label_width, t.label.size());

  std::ostringstream out;
  for (const AnalogTrace& t : traces) {
    double peak = 0.0;
    for (double s : t.samples_uv) peak = std::max(peak, std::abs(s));
    const double threshold = peak * 0.5;
    std::string strip(width, '_');
    if (peak > 0.0) {
      const std::size_t n = t.samples_uv.size();
      for (std::size_t c = 0; c < width; ++c) {
        const std::size_t lo = c * n / width;
        const std::size_t hi = std::max(lo + 1, (c + 1) * n / width);
        double m = 0.0;
        for (std::size_t i = lo; i < hi && i < n; ++i) m = std::max(m, t.samples_uv[i]);
        if (m >= threshold) strip[c] = '|';
      }
    }
    out << t.label << std::string(label_width - t.label.size(), ' ') << " " << strip << '\n';
  }
  return out.str();
}

}  // namespace sfqecc::sim
