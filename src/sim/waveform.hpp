// Waveform rendering: turns recorded pulse/level events into sampled analog
// traces (SFQ pulses as ~2 ps Gaussian bumps, DC levels as steps) with
// additive thermal noise — the presentation format of the paper's Fig. 3.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sfqecc::sim {

/// One labelled analog trace sampled on a uniform grid.
struct AnalogTrace {
  std::string label;
  double t0_ps = 0.0;
  double dt_ps = 1.0;
  std::vector<double> samples_uv;  ///< microvolts
};

struct RasterOptions {
  double t0_ps = 0.0;
  double t1_ps = 2500.0;      ///< Fig. 3 spans 2.5 ns
  double dt_ps = 1.0;
  double pulse_amplitude_uv = 400.0;  ///< SFQ pulse height (~2 Phi0/2ps)
  double pulse_sigma_ps = 1.0;        ///< Gaussian pulse width (2 ps FWHM-ish)
  double noise_sigma_uv = 0.0;        ///< additive thermal noise
  std::uint64_t noise_seed = 7;
};

/// Renders a pulse train as a sum of Gaussian bumps plus noise.
AnalogTrace rasterize_pulses(const std::string& label, const std::vector<double>& pulse_times,
                             const RasterOptions& options);

/// Renders a DC level sequence (transition times, starting low) as a step
/// waveform with `high_uv` amplitude plus noise.
AnalogTrace rasterize_dc(const std::string& label, const std::vector<double>& transitions,
                         double high_uv, const RasterOptions& options);

/// Writes traces as a CSV file: time_ps, then one column per trace.
/// All traces must share t0/dt/sample count.
std::string traces_to_csv(const std::vector<AnalogTrace>& traces);

/// Compact terminal rendering: one row per trace with pulse ticks.
std::string traces_to_ascii(const std::vector<AnalogTrace>& traces, std::size_t width = 100);

}  // namespace sfqecc::sim
