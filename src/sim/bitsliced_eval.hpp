// Bit-sliced frame evaluation: the same frame position across up to 64
// Monte-Carlo chips packed into one 64-bit lane word (ROADMAP item 3).
//
// A Monte-Carlo campaign evaluates the *same netlist* for thousands of
// fabricated chips. For the chips where timing is not observable — every
// cell fully healthy, thermal jitter off, pulse recording off: exactly the
// observability gate the static fan-out expansion uses in event_sim.hpp —
// the event simulator's behaviour degenerates to deterministic GF(2) logic
// on a fixed event schedule. The schedule depends only on the netlist, so
// 64 such chips share every event and differ only in which lanes carry a
// pulse. SlicedSimulator exploits that: events carry a (target, lane mask)
// pair, cell state is one lane word per arm, and each delivery evaluates
// the cell for all lanes in one instruction instead of one event per chip.
//
// Equivalence contract (proved chip-by-chip by tests/sim/test_bitsliced_eval
// and end-to-end by the campaign byte-identity tests): the sliced event
// schedule is the lane-wise union of the per-chip scalar schedules. Within
// a timestamp the FIFO order of any single lane's effective deliveries is
// exactly the scalar simulator's order, deliveries whose mask excludes a
// lane are no-ops for that lane, and every scheduled time is the identical
// double-precision expression the scalar path computes (time + delay,
// time + expansion offset, max(time, now)). Hence per-lane DC output words
// are bit-identical to 64 independent EventSimulator runs.
//
// Restrictions (enforced by the caller, see engine::chip_sliceable):
//  * every cell healthy in every lane — no fault state exists here at all;
//  * jitter off and recording off — there is no RNG and no waveform log;
//  * the static fan-out expansion is therefore unconditionally valid and is
//    always taken. Emission counters are not maintained (they are a
//    diagnostics/credit concept of the scalar path; no sliced output reads
//    them).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/event_sim.hpp"

namespace sfqecc::sim {

/// One bit per chip lane; lane l of every word belongs to chip l of the
/// current batch.
using LaneMask = std::uint64_t;

/// Lane-parallel mirror of EventSimulator for fully healthy, jitter-free,
/// recording-free chips. Shares the immutable SimTables of the scalar
/// simulator; only the lane-word state is per instance.
class SlicedSimulator {
 public:
  static constexpr std::size_t kMaxLanes = 64;

  /// Convenience constructor: builds private tables for this instance.
  SlicedSimulator(const circuit::Netlist& netlist, const circuit::CellLibrary& library);

  /// Shares pre-built tables with any number of scalar or sliced simulators.
  explicit SlicedSimulator(std::shared_ptr<const SimTables> tables);

  /// Schedules a pulse on `net` at `time_ps` in the lanes of `mask`.
  void inject_pulse(circuit::NetId net, double time_ps, LaneMask mask);

  /// Injects a clock train into the lanes of `mask`: pulses at phase,
  /// phase+period, ... up to `until_ps` (same edge enumeration as the
  /// scalar inject_clock).
  void inject_clock(circuit::NetId clock_net, double period_ps, double phase_ps,
                    double until_ps, LaneMask mask);

  /// Processes all events up to and including `until_ps`.
  void run_until(double until_ps);

  /// Clears lane state and pending events. Allocation-free after warm-up.
  void reset();

  /// Compact copy of the pending-event queue, lane masks included. Unlike
  /// the scalar QueueSnapshot there are no emission credits to capture —
  /// the sliced path does not maintain emission counters.
  struct QueueSnapshot {
    std::vector<double> times;           ///< distinct timestamps, ascending
    std::vector<std::uint32_t> offsets;  ///< CSR into targets/masks, size times+1
    std::vector<std::uint32_t> targets;  ///< event targets in FIFO order
    std::vector<LaneMask> masks;         ///< lane mask per event, parallel to targets
  };

  /// Captures the pending events into `out` (reusing its capacity).
  void snapshot_queue(QueueSnapshot& out) const;

  /// Replaces the pending events with a snapshot taken on a simulator that
  /// shares this one's tables. Only valid while the queue is empty (right
  /// after reset()).
  void restore_queue(const QueueSnapshot& snapshot);

  /// Current DC levels of an SFQ-to-DC converter's output net, one bit per
  /// lane.
  LaneMask dc_levels(circuit::NetId converter_output) const;

  double now() const noexcept { return now_ps_; }
  std::size_t events_processed() const noexcept { return events_processed_; }

  /// The shared tables; lease these to stand up further instances cheaply.
  const std::shared_ptr<const SimTables>& tables() const noexcept { return tables_; }

 private:
  /// Lane-word cell state: bit l is the scalar CellState field of lane l.
  struct LaneState {
    LaneMask arm_a = 0;
    LaneMask arm_b = 0;
    LaneMask dc_level = 0;
  };

  struct Event {
    std::uint32_t target = 0;
    LaneMask mask = 0;
  };

  std::shared_ptr<const SimTables> tables_;

  // Calendar event queue, structurally identical to EventSimulator's (see
  // the discussion there): per-timestamp FIFO buckets in a sorted time
  // index, pop order (time ascending, insertion order within a timestamp).
  std::vector<double> bucket_time_;
  std::vector<std::uint32_t> bucket_slot_;
  std::vector<std::vector<Event>> bucket_pool_;
  std::vector<std::uint32_t> bucket_head_;
  std::size_t bucket_front_ = 0;
  std::size_t bucket_end_ = 0;
  double now_ps_ = 0.0;
  std::size_t events_processed_ = 0;

  std::vector<LaneState> lane_state_;

  /// Queues a pulse on `net` through the fan-out expansion (always valid
  /// here — every cell is healthy by contract).
  void schedule(double time, std::uint32_t net, LaneMask mask);

  void push_event(double time, std::uint32_t target, LaneMask mask);
  void deliver(std::uint32_t target, double time, LaneMask mask);
  void on_pulse(std::uint32_t cell, std::uint32_t port, double time, LaneMask mask);
  void on_clock(std::uint32_t cell, double time, LaneMask mask);
};

}  // namespace sfqecc::sim
