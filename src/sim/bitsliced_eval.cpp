#include "sim/bitsliced_eval.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace sfqecc::sim {

using circuit::CellId;
using circuit::CellType;
using circuit::kInvalidId;
using circuit::NetId;

SlicedSimulator::SlicedSimulator(const circuit::Netlist& netlist,
                                 const circuit::CellLibrary& library)
    : SlicedSimulator(std::make_shared<SimTables>(netlist, library)) {}

SlicedSimulator::SlicedSimulator(std::shared_ptr<const SimTables> tables)
    : tables_(std::move(tables)), lane_state_(tables_->netlist_.cell_count()) {}

void SlicedSimulator::schedule(double time, std::uint32_t net, LaneMask mask) {
  // Every cell is healthy in every lane, so the fan-out expansion is valid
  // unconditionally — the per-instance gating of the scalar schedule()
  // collapses to "expansion present?". Emission credits are skipped (no
  // counters exist here); the terminal arrival times are the identical
  // double sums the scalar path computes.
  const SimTables& t = *tables_;
  const std::uint32_t idx = t.expansion_of_net_[net];
  if (idx != SimTables::kNoExpansion) {
    const SimTables::Expansion& e = t.expansions_[idx];
    for (std::uint32_t i = e.terminals_begin; i < e.terminals_end; ++i)
      push_event(time + t.terminal_pool_[i].offset_ps, SimTables::kDirectFlag | i, mask);
    return;
  }
  push_event(time, net, mask);
}

void SlicedSimulator::push_event(double time, std::uint32_t target, LaneMask mask) {
  // Same backward-scanning calendar insert as EventSimulator::push_event.
  std::size_t i = bucket_end_;
  while (i > bucket_front_ && bucket_time_[i - 1] > time) --i;
  if (i == bucket_front_ || bucket_time_[i - 1] != time) {
    const auto slot = static_cast<std::uint32_t>(bucket_end_);
    if (bucket_pool_.size() <= slot) {
      bucket_pool_.emplace_back();
      bucket_head_.push_back(0);
    }
    if (bucket_time_.size() < bucket_pool_.size()) {
      bucket_time_.resize(bucket_pool_.size());
      bucket_slot_.resize(bucket_pool_.size());
    }
    for (std::size_t j = bucket_end_; j > i; --j) {
      bucket_time_[j] = bucket_time_[j - 1];
      bucket_slot_[j] = bucket_slot_[j - 1];
    }
    bucket_time_[i] = time;
    bucket_slot_[i] = slot;
    ++bucket_end_;
    bucket_pool_[slot].push_back(Event{target, mask});
    return;
  }
  bucket_pool_[bucket_slot_[i - 1]].push_back(Event{target, mask});
}

void SlicedSimulator::inject_pulse(NetId net, double time_ps, LaneMask mask) {
  expects(net < tables_->netlist_.net_count(), "unknown net");
  expects(time_ps >= now_ps_, "cannot schedule in the past");
  expects(mask != 0, "pulse must target at least one lane");
  schedule(time_ps, static_cast<std::uint32_t>(net), mask);
}

void SlicedSimulator::inject_clock(NetId clock_net, double period_ps, double phase_ps,
                                   double until_ps, LaneMask mask) {
  expects(period_ps > 0.0, "clock period must be positive");
  for (double t = phase_ps; t <= until_ps; t += period_ps)
    inject_pulse(clock_net, t, mask);
}

void SlicedSimulator::run_until(double until_ps) {
  while (bucket_front_ != bucket_end_) {
    const double time = bucket_time_[bucket_front_];
    if (time > until_ps) break;
    const std::uint32_t slot = bucket_slot_[bucket_front_];
    if (bucket_head_[slot] == bucket_pool_[slot].size()) {
      bucket_pool_[slot].clear();
      bucket_head_[slot] = 0;
      ++bucket_front_;
      continue;
    }
    // Drain the whole same-timestamp bucket in one pass. Deliveries may
    // append to this very bucket (zero-delay scheduling lands at `time`) and
    // may open later buckets, which can grow/reallocate bucket_pool_ — so
    // the FIFO is re-indexed on every iteration instead of caching a
    // reference, and the size is re-read so appended events are picked up.
    now_ps_ = std::max(now_ps_, time);
    while (bucket_head_[slot] < bucket_pool_[slot].size()) {
      const std::uint32_t at = bucket_head_[slot]++;
      const Event ev = bucket_pool_[slot][at];
      ++events_processed_;
      deliver(ev.target, time, ev.mask);
    }
  }
  now_ps_ = std::max(now_ps_, until_ps);
}

void SlicedSimulator::reset() {
  for (std::size_t slot = 0; slot < bucket_end_; ++slot) {
    bucket_pool_[slot].clear();
    bucket_head_[slot] = 0;
  }
  bucket_front_ = bucket_end_ = 0;
  now_ps_ = 0.0;
  for (LaneState& s : lane_state_) s = LaneState{};
}

void SlicedSimulator::snapshot_queue(QueueSnapshot& out) const {
  out.times.clear();
  out.offsets.clear();
  out.targets.clear();
  out.masks.clear();
  out.offsets.push_back(0);
  for (std::size_t b = bucket_front_; b < bucket_end_; ++b) {
    const std::uint32_t slot = bucket_slot_[b];
    const std::vector<Event>& fifo = bucket_pool_[slot];
    const std::uint32_t head = bucket_head_[slot];
    if (head == fifo.size()) continue;  // drained
    out.times.push_back(bucket_time_[b]);
    for (std::size_t i = head; i < fifo.size(); ++i) {
      out.targets.push_back(fifo[i].target);
      out.masks.push_back(fifo[i].mask);
    }
    out.offsets.push_back(static_cast<std::uint32_t>(out.targets.size()));
  }
}

void SlicedSimulator::restore_queue(const QueueSnapshot& snapshot) {
  expects(bucket_front_ == bucket_end_, "restore_queue requires an empty queue");
  const std::size_t count = snapshot.times.size();
  while (bucket_pool_.size() < count) {
    bucket_pool_.emplace_back();
    bucket_head_.push_back(0);
  }
  if (bucket_time_.size() < bucket_pool_.size()) {
    bucket_time_.resize(bucket_pool_.size());
    bucket_slot_.resize(bucket_pool_.size());
  }
  bucket_front_ = 0;
  bucket_end_ = count;
  for (std::size_t i = 0; i < count; ++i) {
    bucket_time_[i] = snapshot.times[i];
    bucket_slot_[i] = static_cast<std::uint32_t>(i);
    bucket_head_[i] = 0;
    bucket_pool_[i].clear();
    for (std::uint32_t j = snapshot.offsets[i]; j < snapshot.offsets[i + 1]; ++j)
      bucket_pool_[i].push_back(Event{snapshot.targets[j], snapshot.masks[j]});
  }
}

LaneMask SlicedSimulator::dc_levels(NetId converter_output) const {
  expects(converter_output < tables_->converter_cell_.size(), "unknown net");
  const CellId cell = tables_->converter_cell_[converter_output];
  expects(cell != kInvalidId, "net is not an SFQ-to-DC output");
  return lane_state_[cell].dc_level;
}

void SlicedSimulator::deliver(std::uint32_t target, double time, LaneMask mask) {
  const SimTables& t = *tables_;
  if (target & SimTables::kDirectFlag) {
    const SimTables::Terminal& term =
        t.terminal_pool_[target & ~SimTables::kDirectFlag];
    if (term.port == SimTables::kClockSinkPort)
      on_clock(term.cell, time, mask);
    else
      on_pulse(term.cell, term.port, time, mask);
    return;
  }
  const std::uint32_t begin = t.sink_offset_[target];
  const std::uint32_t end = t.sink_offset_[target + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const SimTables::CompactSink sink = t.sinks_[i];
    if (sink.port == SimTables::kClockSinkPort)
      on_clock(sink.cell, time, mask);
    else
      on_pulse(sink.cell, sink.port, time, mask);
  }
}

void SlicedSimulator::on_pulse(std::uint32_t cell, std::uint32_t port, double time,
                               LaneMask mask) {
  LaneState& state = lane_state_[cell];
  const SimTables::CompactCell& compact = tables_->cells_[cell];
  const double delay = compact.delay_ps;

  switch (compact.type) {
    case CellType::kXor:
    case CellType::kAnd:
    case CellType::kOr:
      // Store the arm in the pulsed lanes; the clock evaluates and resets.
      (port == 0 ? state.arm_a : state.arm_b) |= mask;
      return;
    case CellType::kNot:
    case CellType::kDff:
      state.arm_a |= mask;
      return;
    case CellType::kSplitter: {
      const double when = std::max(time + delay, now_ps_);
      schedule(when, compact.out0, mask);
      schedule(when, compact.out1, mask);
      return;
    }
    case CellType::kJtl:
    case CellType::kMerger:
    case CellType::kDcToSfq:
      schedule(std::max(time + delay, now_ps_), compact.out0, mask);
      return;
    case CellType::kTff: {
      // Divide-by-two per lane: emit in the lanes whose arm was already set.
      const LaneMask emit_mask = state.arm_a & mask;
      state.arm_a ^= mask;
      if (emit_mask) schedule(std::max(time + delay, now_ps_), compact.out0, emit_mask);
      return;
    }
    case CellType::kSfqToDc:
      // Toggling output driver (no fault handling: all lanes healthy).
      state.dc_level ^= mask;
      return;
  }
}

void SlicedSimulator::on_clock(std::uint32_t cell, double time, LaneMask mask) {
  LaneState& state = lane_state_[cell];
  const SimTables::CompactCell& compact = tables_->cells_[cell];

  LaneMask fire = 0;
  switch (compact.type) {
    case CellType::kXor: fire = state.arm_a ^ state.arm_b; break;
    case CellType::kAnd: fire = state.arm_a & state.arm_b; break;
    case CellType::kOr: fire = state.arm_a | state.arm_b; break;
    case CellType::kNot: fire = ~state.arm_a; break;
    case CellType::kDff: fire = state.arm_a; break;
    default:
      throw ContractViolation("clock pulse delivered to unclocked cell");
  }
  fire &= mask;
  state.arm_a &= ~mask;
  state.arm_b &= ~mask;

  if (fire) schedule(std::max(time + compact.delay_ps, now_ps_), compact.out0, fire);
}

}  // namespace sfqecc::sim
