#include "sim/cell_behavior.hpp"

// State is plain data; behaviour lives in the event simulator. This
// translation unit anchors the component.
namespace sfqecc::sim {}
