#include "sim/event_sim.hpp"

#include <algorithm>
#include <functional>

#include "util/expect.hpp"

namespace sfqecc::sim {

using circuit::CellId;
using circuit::CellType;
using circuit::kClockPort;
using circuit::kInvalidId;
using circuit::NetId;

SimTables::SimTables(const circuit::Netlist& netlist, const circuit::CellLibrary& library)
    : netlist_(netlist),
      library_(library),
      cells_(netlist.cell_count()),
      cell_clocked_(netlist.cell_count()),
      converter_cell_(netlist.net_count(), kInvalidId) {
  // Flatten the pointer-heavy circuit:: structures into the dispatch tables
  // the event loop runs on (see the header's hot-path invariants).
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const circuit::Cell& cell = netlist.cell(id);
    const circuit::CellSpec& spec = library.spec(cell.type);
    CompactCell& compact = cells_[id];
    compact.type = cell.type;
    compact.delay_ps = spec.delay_ps;
    if (!cell.outputs.empty()) compact.out0 = static_cast<std::uint32_t>(cell.outputs[0]);
    if (cell.outputs.size() > 1) compact.out1 = static_cast<std::uint32_t>(cell.outputs[1]);
    cell_clocked_[id] = spec.clocked;
  }
  sink_offset_.assign(netlist.net_count() + 1, 0);
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    const circuit::Net& net = netlist.net(id);
    sink_offset_[id + 1] =
        sink_offset_[id] + static_cast<std::uint32_t>(net.sinks.size());
    for (const circuit::Sink& sink : net.sinks)
      sinks_.push_back(CompactSink{
          static_cast<std::uint32_t>(sink.cell),
          sink.port == kClockPort ? kClockSinkPort
                                  : static_cast<std::uint32_t>(sink.port)});
    if (net.driver_cell != kInvalidId &&
        netlist.cell(net.driver_cell).type == CellType::kSfqToDc)
      converter_cell_[id] = net.driver_cell;
  }
  for (CellId id = 0; id < netlist.cell_count(); ++id)
    if (netlist.cell(id).type == CellType::kSfqToDc)
      converter_cells_.push_back(static_cast<std::uint32_t>(id));
  build_expansions();
}

namespace {

bool is_passthrough(CellType type) {
  return type == CellType::kSplitter || type == CellType::kJtl ||
         type == CellType::kMerger || type == CellType::kDcToSfq;
}

}  // namespace

void SimTables::build_expansions() {
  // Always built (construction-time cost only): whether an instance may use
  // the expansion is a per-instance config/fault decision made at schedule().
  const std::size_t nets = netlist_.net_count();
  expansion_of_net_.assign(nets, kNoExpansion);

  std::vector<std::vector<Terminal>> terms(nets);
  std::vector<std::vector<EmissionCredit>> creds(nets);
  std::vector<bool> visited(nets, false);

  auto add_credit = [](std::vector<EmissionCredit>& list, std::uint32_t cell,
                       std::uint32_t count) {
    for (EmissionCredit& c : list)
      if (c.cell == cell) {
        c.count += count;
        return;
      }
    list.push_back(EmissionCredit{cell, count});
  };

  // DFS over the (acyclic) netlist; terms[net] collects every stateful
  // endpoint reachable from `net` through pass-through cells, with the
  // accumulated chain delay; creds[net] the per-pulse emission counts of the
  // skipped cells.
  std::function<void(std::uint32_t)> visit = [&](std::uint32_t net) {
    if (visited[net]) return;
    visited[net] = true;
    for (std::uint32_t i = sink_offset_[net]; i < sink_offset_[net + 1]; ++i) {
      const CompactSink sink = sinks_[i];
      const CompactCell& cell = cells_[sink.cell];
      if (sink.port != kClockSinkPort && is_passthrough(cell.type)) {
        const std::uint32_t outputs = cell.type == CellType::kSplitter ? 2 : 1;
        add_credit(creds[net], sink.cell, outputs);
        for (std::uint32_t o = 0; o < outputs; ++o) {
          const std::uint32_t out = o == 0 ? cell.out0 : cell.out1;
          visit(out);
          for (const Terminal& t : terms[out])
            terms[net].push_back(
                Terminal{t.cell, t.port, t.offset_ps + cell.delay_ps});
          for (const EmissionCredit& c : creds[out]) add_credit(creds[net], c.cell, c.count);
        }
      } else {
        terms[net].push_back(Terminal{sink.cell, sink.port, 0.0});
      }
    }
  };
  for (std::uint32_t net = 0; net < nets; ++net) visit(net);

  // Flatten: only nets that actually skip at least one cell get an expansion.
  for (std::uint32_t net = 0; net < nets; ++net) {
    if (creds[net].empty()) continue;
    Expansion e;
    e.terminals_begin = static_cast<std::uint32_t>(terminal_pool_.size());
    terminal_pool_.insert(terminal_pool_.end(), terms[net].begin(), terms[net].end());
    e.terminals_end = static_cast<std::uint32_t>(terminal_pool_.size());
    e.credits_begin = static_cast<std::uint32_t>(credit_pool_.size());
    credit_pool_.insert(credit_pool_.end(), creds[net].begin(), creds[net].end());
    e.credits_end = static_cast<std::uint32_t>(credit_pool_.size());
    expansion_of_net_[net] = static_cast<std::uint32_t>(expansions_.size());
    expansions_.push_back(e);
  }
}

EventSimulator::EventSimulator(const circuit::Netlist& netlist,
                               const circuit::CellLibrary& library,
                               const SimConfig& config)
    : EventSimulator(std::make_shared<SimTables>(netlist, library), config) {}

EventSimulator::EventSimulator(std::shared_ptr<const SimTables> tables,
                               const SimConfig& config)
    : tables_(std::move(tables)),
      config_(config),
      rng_(config.noise_seed),
      cell_state_(tables_->netlist_.cell_count()),
      cell_fault_(tables_->netlist_.cell_count()),
      net_pulses_(tables_->netlist_.net_count()),
      dc_transition_times_(tables_->netlist_.cell_count()),
      expansion_valid_(tables_->expansions_.size(), 0) {
  expansion_enabled_ = !config_.record_pulses && config_.jitter_sigma_ps <= 0.0;
}

void EventSimulator::revalidate_expansions() {
  const SimTables& t = *tables_;
  for (std::size_t idx = 0; idx < t.expansions_.size(); ++idx) {
    const SimTables::Expansion& e = t.expansions_[idx];
    expansion_valid_[idx] = 1;
    for (std::uint32_t i = e.credits_begin; i < e.credits_end; ++i)
      if (cell_fault_[t.credit_pool_[i].cell].mode != FaultMode::kHealthy) {
        expansion_valid_[idx] = 0;
        break;
      }
  }
  expansion_validity_dirty_ = false;
}

void EventSimulator::schedule(double time, std::uint32_t net) {
  if (expansion_enabled_) {
    const SimTables& t = *tables_;
    const std::uint32_t idx = t.expansion_of_net_[net];
    if (idx != SimTables::kNoExpansion) {
      if (expansion_validity_dirty_) revalidate_expansions();
      if (expansion_valid_[idx]) {
        const SimTables::Expansion& e = t.expansions_[idx];
        for (std::uint32_t i = e.credits_begin; i < e.credits_end; ++i)
          cell_state_[t.credit_pool_[i].cell].emissions += t.credit_pool_[i].count;
        for (std::uint32_t i = e.terminals_begin; i < e.terminals_end; ++i)
          push_event(time + t.terminal_pool_[i].offset_ps, SimTables::kDirectFlag | i);
        return;
      }
    }
  }
  push_event(time, net);
}

void EventSimulator::set_fault(CellId cell, const CellFault& fault) {
  expects(cell < cell_fault_.size(), "unknown cell");
  cell_fault_[cell] = fault;
  expansion_validity_dirty_ = true;
}

void EventSimulator::push_event(double time, std::uint32_t target) {
  // Locate the time bucket, scanning backwards: pushes are almost always at
  // or beyond the latest pending timestamp.
  std::size_t i = bucket_end_;
  while (i > bucket_front_ && bucket_time_[i - 1] > time) --i;
  if (i == bucket_front_ || bucket_time_[i - 1] != time) {
    // New timestamp: open a bucket at position i, reusing pooled storage.
    const auto slot = static_cast<std::uint32_t>(bucket_end_);
    if (bucket_pool_.size() <= slot) {
      bucket_pool_.emplace_back();
      bucket_head_.push_back(0);
    }
    if (bucket_time_.size() < bucket_pool_.size()) {
      bucket_time_.resize(bucket_pool_.size());
      bucket_slot_.resize(bucket_pool_.size());
    }
    for (std::size_t j = bucket_end_; j > i; --j) {
      bucket_time_[j] = bucket_time_[j - 1];
      bucket_slot_[j] = bucket_slot_[j - 1];
    }
    bucket_time_[i] = time;
    bucket_slot_[i] = slot;
    ++bucket_end_;
    bucket_pool_[slot].push_back(target);
    return;
  }
  bucket_pool_[bucket_slot_[i - 1]].push_back(target);
}

void EventSimulator::inject_pulse(NetId net, double time_ps) {
  expects(net < tables_->netlist_.net_count(), "unknown net");
  expects(time_ps >= now_ps_, "cannot schedule in the past");
  schedule(time_ps, static_cast<std::uint32_t>(net));
}

void EventSimulator::inject_clock(NetId clock_net, double period_ps, double phase_ps,
                                  double until_ps) {
  expects(period_ps > 0.0, "clock period must be positive");
  for (double t = phase_ps; t <= until_ps; t += period_ps) inject_pulse(clock_net, t);
}

void EventSimulator::run_until(double until_ps) {
  while (bucket_front_ != bucket_end_) {
    const double time = bucket_time_[bucket_front_];
    if (time > until_ps) break;
    const std::uint32_t slot = bucket_slot_[bucket_front_];
    if (bucket_head_[slot] == bucket_pool_[slot].size()) {
      // Bucket drained; recycle its storage and advance.
      bucket_pool_[slot].clear();
      bucket_head_[slot] = 0;
      ++bucket_front_;
      continue;
    }
    // Drain the whole same-timestamp bucket in one pass instead of
    // re-walking the time index per event: all arrivals of one clock edge
    // (the dominant bucket in SFQ frames) dispatch back to back. Deliveries
    // may append to this very bucket (emissions clamp to now_ps_ == time)
    // and may open later buckets, which can grow/reallocate bucket_pool_ —
    // so the FIFO is re-indexed every iteration instead of caching a
    // reference, and its size is re-read so appended events are picked up.
    // Pop order is unchanged: nothing can be pushed before `time`.
    now_ps_ = std::max(now_ps_, time);
    while (bucket_head_[slot] < bucket_pool_[slot].size()) {
      const std::uint32_t at = bucket_head_[slot]++;
      const std::uint32_t target = bucket_pool_[slot][at];
      ++events_processed_;
      deliver(target, time);
    }
  }
  now_ps_ = std::max(now_ps_, until_ps);
}

void EventSimulator::reseed_noise(std::uint64_t seed) { rng_ = util::Rng(seed); }

void EventSimulator::reset() {
  for (std::size_t slot = 0; slot < bucket_end_; ++slot) {
    bucket_pool_[slot].clear();
    bucket_head_[slot] = 0;
  }
  bucket_front_ = bucket_end_ = 0;
  now_ps_ = 0.0;
  for (CellState& s : cell_state_) s = CellState{};
  // net_pulses_ stays untouched (and empty) when recording is disabled; DC
  // transition logs exist only on converter cells. Both clears keep capacity.
  if (config_.record_pulses)
    for (auto& v : net_pulses_) v.clear();
  for (std::uint32_t cell : tables_->converter_cells_) dc_transition_times_[cell].clear();
}

void EventSimulator::snapshot_queue(QueueSnapshot& out) const {
  out.times.clear();
  out.offsets.clear();
  out.items.clear();
  out.emission_credits.clear();
  out.offsets.push_back(0);
  for (std::size_t cell = 0; cell < cell_state_.size(); ++cell)
    if (cell_state_[cell].emissions != 0)
      out.emission_credits.emplace_back(static_cast<std::uint32_t>(cell),
                                        cell_state_[cell].emissions);
  for (std::size_t b = bucket_front_; b < bucket_end_; ++b) {
    const std::uint32_t slot = bucket_slot_[b];
    const std::vector<std::uint32_t>& fifo = bucket_pool_[slot];
    const std::uint32_t head = bucket_head_[slot];
    if (head == fifo.size()) continue;  // drained
    out.times.push_back(bucket_time_[b]);
    out.items.insert(out.items.end(), fifo.begin() + head, fifo.end());
    out.offsets.push_back(static_cast<std::uint32_t>(out.items.size()));
  }
}

void EventSimulator::restore_queue(const QueueSnapshot& snapshot) {
  expects(bucket_front_ == bucket_end_, "restore_queue requires an empty queue");
  const std::size_t count = snapshot.times.size();
  while (bucket_pool_.size() < count) {
    bucket_pool_.emplace_back();
    bucket_head_.push_back(0);
  }
  if (bucket_time_.size() < bucket_pool_.size()) {
    bucket_time_.resize(bucket_pool_.size());
    bucket_slot_.resize(bucket_pool_.size());
  }
  bucket_front_ = 0;
  bucket_end_ = count;
  for (std::size_t i = 0; i < count; ++i) {
    bucket_time_[i] = snapshot.times[i];
    bucket_slot_[i] = static_cast<std::uint32_t>(i);
    bucket_head_[i] = 0;
    bucket_pool_[i].assign(snapshot.items.begin() + snapshot.offsets[i],
                           snapshot.items.begin() + snapshot.offsets[i + 1]);
  }
  for (const auto& [cell, count_credit] : snapshot.emission_credits)
    cell_state_[cell].emissions += count_credit;
}

const std::vector<double>& EventSimulator::pulses(NetId net) const {
  expects(net < net_pulses_.size(), "unknown net");
  expects(config_.record_pulses, "pulse recording disabled");
  return net_pulses_[net];
}

CellId EventSimulator::converter_of(NetId output_net) const {
  expects(output_net < tables_->converter_cell_.size(), "unknown net");
  const CellId cell = tables_->converter_cell_[output_net];
  expects(cell != kInvalidId, "net is not an SFQ-to-DC output");
  return cell;
}

bool EventSimulator::dc_level(NetId converter_output) const {
  return cell_state_[converter_of(converter_output)].dc_level;
}

const std::vector<double>& EventSimulator::dc_transitions(NetId converter_output) const {
  return dc_transition_times_[converter_of(converter_output)];
}

double EventSimulator::jitter(double time) {
  if (config_.jitter_sigma_ps <= 0.0) return time;
  return time + rng_.gaussian(0.0, config_.jitter_sigma_ps);
}

void EventSimulator::deliver(std::uint32_t target, double time) {
  const SimTables& t = *tables_;
  if (target & SimTables::kDirectFlag) {
    const SimTables::Terminal& term =
        t.terminal_pool_[target & ~SimTables::kDirectFlag];
    if (term.port == SimTables::kClockSinkPort)
      on_clock(term.cell, time);
    else
      on_pulse(term.cell, term.port, time);
    return;
  }
  if (config_.record_pulses) net_pulses_[target].push_back(time);
  const std::uint32_t begin = t.sink_offset_[target];
  const std::uint32_t end = t.sink_offset_[target + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    const SimTables::CompactSink sink = t.sinks_[i];
    if (sink.port == SimTables::kClockSinkPort)
      on_clock(sink.cell, time);
    else
      on_pulse(sink.cell, sink.port, time);
  }
}

void EventSimulator::on_pulse(std::uint32_t cell, std::uint32_t port, double time) {
  CellState& state = cell_state_[cell];
  const SimTables::CompactCell& compact = tables_->cells_[cell];
  const double delay = compact.delay_ps;

  switch (compact.type) {
    case CellType::kXor:
    case CellType::kAnd:
    case CellType::kOr:
      // Store the arm; the clock evaluates and resets.
      (port == 0 ? state.arm_a : state.arm_b) = true;
      return;
    case CellType::kNot:
    case CellType::kDff:
      state.arm_a = true;
      return;
    case CellType::kSplitter:
      emit(cell, compact.out0, time + delay);
      emit(cell, compact.out1, time + delay);
      return;
    case CellType::kJtl:
    case CellType::kMerger:
    case CellType::kDcToSfq:
      emit(cell, compact.out0, time + delay);
      return;
    case CellType::kTff:
      // Divide-by-two: emit on every second input pulse.
      state.arm_a = !state.arm_a;
      if (!state.arm_a) emit(cell, compact.out0, time + delay);
      return;
    case CellType::kSfqToDc: {
      // Toggling output driver. Fault handling is inline because the
      // "emission" is a level transition, not a pulse.
      const CellFault& fault = cell_fault_[cell];
      if (fault.mode == FaultMode::kDead) return;
      if (fault.mode == FaultMode::kFlaky && rng_.bernoulli(fault.error_prob)) return;
      if (fault.mode == FaultMode::kSputter && rng_.bernoulli(0.5)) return;
      state.dc_level = !state.dc_level;
      ++state.emissions;
      dc_transition_times_[cell].push_back(time + delay);
      return;
    }
  }
}

void EventSimulator::on_clock(std::uint32_t cell, double time) {
  CellState& state = cell_state_[cell];
  const SimTables::CompactCell& compact = tables_->cells_[cell];
  const CellFault& fault = cell_fault_[cell];
  const double delay = compact.delay_ps;

  bool fire = false;
  switch (compact.type) {
    case CellType::kXor: fire = state.arm_a != state.arm_b; break;
    case CellType::kAnd: fire = state.arm_a && state.arm_b; break;
    case CellType::kOr: fire = state.arm_a || state.arm_b; break;
    case CellType::kNot: fire = !state.arm_a; break;
    case CellType::kDff: fire = state.arm_a; break;
    default:
      throw ContractViolation("clock pulse delivered to unclocked cell");
  }
  state.reset_arms();

  if (fault.mode == FaultMode::kSputter) {
    emit(cell, compact.out0, time + delay);  // emits regardless of inputs
    return;
  }
  if (!fire && fault.mode == FaultMode::kFlaky && rng_.bernoulli(fault.error_prob)) {
    emit(cell, compact.out0, time + delay);  // spurious emission
    return;
  }
  if (fire) emit(cell, compact.out0, time + delay);
}

void EventSimulator::emit(std::uint32_t cell, std::uint32_t net, double time) {
  const CellFault& fault = cell_fault_[cell];
  switch (fault.mode) {
    case FaultMode::kDead:
      return;
    case FaultMode::kFlaky:
      if (rng_.bernoulli(fault.error_prob)) return;
      break;
    case FaultMode::kSputter:
      if (!tables_->cell_clocked_[cell] && rng_.bernoulli(0.5)) return;
      break;
    case FaultMode::kHealthy:
      break;
  }
  ++cell_state_[cell].emissions;
  const double when = std::max(jitter(time), now_ps_);
  schedule(when, net);
}

}  // namespace sfqecc::sim
