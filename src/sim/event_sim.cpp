#include "sim/event_sim.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace sfqecc::sim {

using circuit::Cell;
using circuit::CellId;
using circuit::CellType;
using circuit::kClockPort;
using circuit::kInvalidId;
using circuit::NetId;

EventSimulator::EventSimulator(const circuit::Netlist& netlist,
                               const circuit::CellLibrary& library,
                               const SimConfig& config)
    : netlist_(netlist),
      library_(library),
      config_(config),
      rng_(config.noise_seed),
      cell_state_(netlist.cell_count()),
      cell_fault_(netlist.cell_count()),
      net_pulses_(netlist.net_count()),
      dc_transition_times_(netlist.cell_count()) {}

void EventSimulator::set_fault(CellId cell, const CellFault& fault) {
  expects(cell < cell_fault_.size(), "unknown cell");
  cell_fault_[cell] = fault;
}

void EventSimulator::inject_pulse(NetId net, double time_ps) {
  expects(net < netlist_.net_count(), "unknown net");
  expects(time_ps >= now_ps_, "cannot schedule in the past");
  queue_.push(Event{time_ps, net, next_seq_++});
}

void EventSimulator::inject_clock(NetId clock_net, double period_ps, double phase_ps,
                                  double until_ps) {
  expects(period_ps > 0.0, "clock period must be positive");
  for (double t = phase_ps; t <= until_ps; t += period_ps) inject_pulse(clock_net, t);
}

void EventSimulator::run_until(double until_ps) {
  while (!queue_.empty() && queue_.top().time <= until_ps) {
    const Event event = queue_.top();
    queue_.pop();
    now_ps_ = std::max(now_ps_, event.time);
    ++events_processed_;
    deliver(event);
  }
  now_ps_ = std::max(now_ps_, until_ps);
}

void EventSimulator::reseed_noise(std::uint64_t seed) { rng_ = util::Rng(seed); }

void EventSimulator::reset() {
  queue_ = {};
  now_ps_ = 0.0;
  next_seq_ = 0;
  for (CellState& s : cell_state_) s = CellState{};
  for (auto& v : net_pulses_) v.clear();
  for (auto& v : dc_transition_times_) v.clear();
}

const std::vector<double>& EventSimulator::pulses(NetId net) const {
  expects(net < net_pulses_.size(), "unknown net");
  expects(config_.record_pulses, "pulse recording disabled");
  return net_pulses_[net];
}

const Cell& EventSimulator::converter_of(NetId output_net) const {
  const circuit::Net& net = netlist_.net(output_net);
  expects(net.driver_cell != kInvalidId, "net has no driver");
  const Cell& cell = netlist_.cell(net.driver_cell);
  expects(cell.type == CellType::kSfqToDc, "net is not an SFQ-to-DC output");
  return cell;
}

bool EventSimulator::dc_level(NetId converter_output) const {
  return cell_state_[converter_of(converter_output).id].dc_level;
}

const std::vector<double>& EventSimulator::dc_transitions(NetId converter_output) const {
  return dc_transition_times_[converter_of(converter_output).id];
}

double EventSimulator::jitter(double time) {
  if (config_.jitter_sigma_ps <= 0.0) return time;
  return time + rng_.gaussian(0.0, config_.jitter_sigma_ps);
}

void EventSimulator::deliver(const Event& event) {
  if (config_.record_pulses) net_pulses_[event.net].push_back(event.time);
  for (const circuit::Sink& sink : netlist_.net(event.net).sinks) {
    const Cell& cell = netlist_.cell(sink.cell);
    if (sink.port == kClockPort)
      on_clock(cell, event.time);
    else
      on_pulse(cell, sink.port, event.time);
  }
}

void EventSimulator::on_pulse(const Cell& cell, std::size_t port, double time) {
  CellState& state = cell_state_[cell.id];
  const CellFault& fault = cell_fault_[cell.id];
  const double delay = library_.spec(cell.type).delay_ps;

  switch (cell.type) {
    case CellType::kXor:
    case CellType::kAnd:
    case CellType::kOr:
      // Store the arm; the clock evaluates and resets.
      (port == 0 ? state.arm_a : state.arm_b) = true;
      return;
    case CellType::kNot:
    case CellType::kDff:
      state.arm_a = true;
      return;
    case CellType::kSplitter:
      emit(cell, 0, time + delay);
      emit(cell, 1, time + delay);
      return;
    case CellType::kJtl:
    case CellType::kMerger:
    case CellType::kDcToSfq:
      emit(cell, 0, time + delay);
      return;
    case CellType::kTff:
      // Divide-by-two: emit on every second input pulse.
      state.arm_a = !state.arm_a;
      if (!state.arm_a) emit(cell, 0, time + delay);
      return;
    case CellType::kSfqToDc: {
      // Toggling output driver. Fault handling is inline because the
      // "emission" is a level transition, not a pulse.
      if (fault.mode == FaultMode::kDead) return;
      if (fault.mode == FaultMode::kFlaky && rng_.bernoulli(fault.error_prob)) return;
      if (fault.mode == FaultMode::kSputter && rng_.bernoulli(0.5)) return;
      state.dc_level = !state.dc_level;
      ++state.emissions;
      dc_transition_times_[cell.id].push_back(time + delay);
      return;
    }
  }
}

void EventSimulator::on_clock(const Cell& cell, double time) {
  CellState& state = cell_state_[cell.id];
  const CellFault& fault = cell_fault_[cell.id];
  const double delay = library_.spec(cell.type).delay_ps;

  bool fire = false;
  switch (cell.type) {
    case CellType::kXor: fire = state.arm_a != state.arm_b; break;
    case CellType::kAnd: fire = state.arm_a && state.arm_b; break;
    case CellType::kOr: fire = state.arm_a || state.arm_b; break;
    case CellType::kNot: fire = !state.arm_a; break;
    case CellType::kDff: fire = state.arm_a; break;
    default:
      throw ContractViolation("clock pulse delivered to unclocked cell");
  }
  state.reset_arms();

  if (fault.mode == FaultMode::kSputter) {
    emit(cell, 0, time + delay);  // emits regardless of inputs
    return;
  }
  if (!fire && fault.mode == FaultMode::kFlaky && rng_.bernoulli(fault.error_prob)) {
    emit(cell, 0, time + delay);  // spurious emission
    return;
  }
  if (fire) emit(cell, 0, time + delay);
}

void EventSimulator::emit(const Cell& cell, std::size_t port, double time) {
  const CellFault& fault = cell_fault_[cell.id];
  switch (fault.mode) {
    case FaultMode::kDead:
      return;
    case FaultMode::kFlaky:
      if (rng_.bernoulli(fault.error_prob)) return;
      break;
    case FaultMode::kSputter:
      if (!library_.spec(cell.type).clocked && rng_.bernoulli(0.5)) return;
      break;
    case FaultMode::kHealthy:
      break;
  }
  ++cell_state_[cell.id].emissions;
  const double when = std::max(jitter(time), now_ps_);
  queue_.push(Event{when, cell.outputs[port], next_seq_++});
}

}  // namespace sfqecc::sim
