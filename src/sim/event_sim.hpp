// Event-driven pulse-level simulator for SFQ netlists — the library's JoSIM
// substitute (DESIGN.md §2).
//
// Pulses are discrete events on nets. Cells react to pulses per the clocked /
// unclocked semantics described in sim/cell_behavior.hpp, with per-cell
// propagation delays from the cell library, optional Gaussian thermal timing
// jitter, and per-cell fault injection driven by the PPV layer.
//
// The clock is not special-cased: the testbench injects a pulse train into
// the clock primary input and the pulses propagate through the real clock
// splitter tree, so clock skew emerges from the netlist as it does in JoSIM.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "sim/cell_behavior.hpp"
#include "util/rng.hpp"

namespace sfqecc::sim {

struct SimConfig {
  double jitter_sigma_ps = 0.0;   ///< thermal timing jitter per emission (4.2 K ~ 0.8 ps)
  std::uint64_t noise_seed = 1;   ///< seed for jitter and flaky-fault draws
  bool record_pulses = true;      ///< keep per-net pulse history (waveforms)
};

/// Simulates one netlist instance. Construct, optionally set faults, inject
/// pulses, then run. The simulator may be reused across frames; `reset()`
/// clears dynamic state but keeps faults.
class EventSimulator {
 public:
  EventSimulator(const circuit::Netlist& netlist, const circuit::CellLibrary& library,
                 const SimConfig& config);

  /// Sets the fault state of a cell (default healthy).
  void set_fault(circuit::CellId cell, const CellFault& fault);

  /// Schedules a pulse on a net (typically a primary input) at `time_ps`.
  void inject_pulse(circuit::NetId net, double time_ps);

  /// Injects a clock train: pulses at phase, phase+period, ... up to `until_ps`.
  void inject_clock(circuit::NetId clock_net, double period_ps, double phase_ps,
                    double until_ps);

  /// Processes all events up to and including `until_ps`.
  void run_until(double until_ps);

  /// Clears pulses, arms, DC levels and pending events; faults are kept.
  void reset();

  /// Reseeds the jitter/fault noise stream (per-chip determinism in Monte
  /// Carlo regardless of thread partitioning).
  void reseed_noise(std::uint64_t seed);

  /// Recorded pulse times on a net (requires record_pulses).
  const std::vector<double>& pulses(circuit::NetId net) const;

  /// Current DC level of an SFQ-to-DC converter's output net.
  bool dc_level(circuit::NetId converter_output) const;

  /// Level-transition times of an SFQ-to-DC converter's output net.
  const std::vector<double>& dc_transitions(circuit::NetId converter_output) const;

  double now() const noexcept { return now_ps_; }
  std::size_t events_processed() const noexcept { return events_processed_; }

 private:
  struct Event {
    double time;
    circuit::NetId net;
    std::uint64_t seq;
    bool operator>(const Event& other) const noexcept {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  const circuit::Netlist& netlist_;
  const circuit::CellLibrary& library_;
  SimConfig config_;
  util::Rng rng_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;
  double now_ps_ = 0.0;
  std::size_t events_processed_ = 0;

  std::vector<CellState> cell_state_;
  std::vector<CellFault> cell_fault_;
  std::vector<std::vector<double>> net_pulses_;
  std::vector<std::vector<double>> dc_transition_times_;  // indexed by cell id

  void deliver(const Event& event);
  void on_pulse(const circuit::Cell& cell, std::size_t port, double time);
  void on_clock(const circuit::Cell& cell, double time);
  /// Emission with fault/jitter handling; schedules the pulse on the output net.
  void emit(const circuit::Cell& cell, std::size_t port, double time);
  double jitter(double time);
  const circuit::Cell& converter_of(circuit::NetId output_net) const;
};

}  // namespace sfqecc::sim
