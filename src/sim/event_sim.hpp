// Event-driven pulse-level simulator for SFQ netlists — the library's JoSIM
// substitute (DESIGN.md §2).
//
// Pulses are discrete events on nets. Cells react to pulses per the clocked /
// unclocked semantics described in sim/cell_behavior.hpp, with per-cell
// propagation delays from the cell library, optional Gaussian thermal timing
// jitter, and per-cell fault injection driven by the PPV layer.
//
// The clock is not special-cased: the testbench injects a pulse train into
// the clock primary input and the pulses propagate through the real clock
// splitter tree, so clock skew emerges from the netlist as it does in JoSIM.
//
// Hot-path invariants (the Monte-Carlo harness sends millions of frames
// through one simulator instance):
//  * reset() is allocation-free: the event heap, per-net pulse records and
//    per-cell DC transition logs all retain their capacity across frames.
//  * The netlist and cell library are flattened at construction into
//    cache-compact dispatch tables (CSR sink lists, per-cell {type, delay,
//    output nets}); the per-event path touches no std::map, no std::string
//    and none of the pointer-heavy circuit:: structs. The tables live in an
//    immutable SimTables that many simulator instances can share: the
//    campaign engine builds them once per scheme and leases them to every
//    worker instead of re-flattening the netlist per (worker, cell).
//  * Static fan-out expansion: chains of stateless pass-through cells
//    (splitter, JTL, merger, DC-to-SFQ) propagate pulses deterministically
//    when they are healthy and jitter is off, so each such subtree is
//    collapsed at construction into a list of (stateful endpoint, arrival
//    offset) pairs. Scheduling a pulse onto the subtree pushes the endpoint
//    arrivals directly instead of re-simulating the chain event by event —
//    the classic static-timing treatment of SFQ clock splitter trees. The
//    expansion is bypassed (falling back to exact cell-by-cell event
//    delivery) whenever it could change observable behaviour: pulse
//    recording on, timing jitter enabled, or any fault installed on a cell
//    inside the subtree. Emission counters of skipped cells are credited
//    exactly. Residual caveat: when two pulses from *different* source
//    injections arrive at stateful endpoints with exactly equal derived
//    timestamps (identical double sums of unrelated delay chains), their
//    FIFO order follows scheduling order rather than the cell-by-cell
//    cascade order. No paper netlist/configuration produces such a
//    cross-path tie (data and clock phases are separated by tens of ps
//    against ps-scale chain-delay differences); keep phases off clock
//    edges if you craft custom schedules.
//  * Steady-state frames (capacities warmed up by the first frame) perform
//    zero heap allocations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "sim/cell_behavior.hpp"
#include "util/rng.hpp"

namespace sfqecc::sim {

struct SimConfig {
  double jitter_sigma_ps = 0.0;   ///< thermal timing jitter per emission (4.2 K ~ 0.8 ps)
  std::uint64_t noise_seed = 1;   ///< seed for jitter and flaky-fault draws
  bool record_pulses = true;      ///< keep per-net pulse history (waveforms)

  bool operator==(const SimConfig&) const = default;
};

/// The immutable, config-independent half of a simulator: the netlist and
/// cell library flattened into the dispatch tables the event loop runs on,
/// plus the static fan-out expansion. Built once per netlist and shareable
/// by any number of EventSimulator instances (and across threads — nothing
/// here is mutated after construction). The netlist and library are
/// borrowed and must outlive the tables.
class SimTables {
 public:
  SimTables(const circuit::Netlist& netlist, const circuit::CellLibrary& library);

  const circuit::Netlist& netlist() const noexcept { return netlist_; }
  const circuit::CellLibrary& library() const noexcept { return library_; }

 private:
  friend class EventSimulator;
  friend class SlicedSimulator;  // lane-parallel mirror, sim/bitsliced_eval.hpp

  /// A (cell, port) endpoint in the flattened sink lists; kClockSinkPort
  /// marks the clock input of a clocked cell.
  static constexpr std::uint32_t kClockSinkPort = 0xffffffffu;
  struct CompactSink {
    std::uint32_t cell;
    std::uint32_t port;
  };

  /// Cache-compact per-cell record: everything the event loop needs.
  struct CompactCell {
    circuit::CellType type;
    std::uint32_t out0 = 0;  ///< first output net
    std::uint32_t out1 = 0;  ///< second output net (splitter only)
    double delay_ps = 0.0;
  };

  // ---- static fan-out expansion tables ------------------------------------
  /// Event targets with this bit set address terminal_pool_ directly instead
  /// of a net.
  static constexpr std::uint32_t kDirectFlag = 0x80000000u;
  static constexpr std::uint32_t kNoExpansion = 0xffffffffu;
  struct Terminal {
    std::uint32_t cell;
    std::uint32_t port;   ///< data port or kClockSinkPort
    double offset_ps;     ///< accumulated pass-through delay
  };
  struct EmissionCredit {
    std::uint32_t cell;
    std::uint32_t count;  ///< emissions per pulse entering the subtree
  };
  struct Expansion {
    std::uint32_t terminals_begin = 0, terminals_end = 0;  ///< terminal_pool_ range
    std::uint32_t credits_begin = 0, credits_end = 0;      ///< credit_pool_ range
  };

  void build_expansions();

  const circuit::Netlist& netlist_;
  const circuit::CellLibrary& library_;

  // Flattened netlist/library dispatch tables (immutable after construction).
  std::vector<std::uint32_t> sink_offset_;  ///< CSR offsets, net id -> sinks_ range
  std::vector<CompactSink> sinks_;
  std::vector<CompactCell> cells_;
  std::vector<bool> cell_clocked_;
  // Driver cell of each SFQ-to-DC output net (kInvalidId otherwise).
  std::vector<circuit::CellId> converter_cell_;
  std::vector<std::uint32_t> converter_cells_;  // cells with DC transition logs

  std::vector<std::uint32_t> expansion_of_net_;  ///< net -> expansions_ index
  std::vector<Expansion> expansions_;
  std::vector<Terminal> terminal_pool_;
  std::vector<EmissionCredit> credit_pool_;
};

/// Simulates one netlist instance. Construct, optionally set faults, inject
/// pulses, then run. The simulator may be reused across frames; `reset()`
/// clears dynamic state but keeps faults.
class EventSimulator {
 public:
  /// Convenience constructor: builds private tables for this instance.
  EventSimulator(const circuit::Netlist& netlist, const circuit::CellLibrary& library,
                 const SimConfig& config);

  /// Shares pre-built tables (see SimTables). The fast way to stand up many
  /// simulators of one netlist: only the mutable per-instance state is
  /// allocated here.
  EventSimulator(std::shared_ptr<const SimTables> tables, const SimConfig& config);

  /// Sets the fault state of a cell (default healthy).
  void set_fault(circuit::CellId cell, const CellFault& fault);

  /// Schedules a pulse on a net (typically a primary input) at `time_ps`.
  void inject_pulse(circuit::NetId net, double time_ps);

  /// Injects a clock train: pulses at phase, phase+period, ... up to `until_ps`.
  void inject_clock(circuit::NetId clock_net, double period_ps, double phase_ps,
                    double until_ps);

  /// Processes all events up to and including `until_ps`.
  void run_until(double until_ps);

  /// Clears pulses, arms, DC levels and pending events; faults are kept.
  /// Allocation-free: all buffers retain their capacity.
  void reset();

  /// Compact copy of the pending-event queue. Lets a caller capture a fixed
  /// injection schedule (e.g. the per-frame clock train) once and replay it
  /// with restore_queue instead of re-injecting and re-expanding each frame.
  struct QueueSnapshot {
    std::vector<double> times;            ///< distinct timestamps, ascending
    std::vector<std::uint32_t> offsets;   ///< CSR into items, size times+1
    std::vector<std::uint32_t> items;     ///< event targets in FIFO order
    /// Emission counts credited by the captured injections (the fan-out
    /// expansion credits skipped pass-through cells at scheduling time, not
    /// at delivery, so a faithful replay must re-apply them).
    std::vector<std::pair<std::uint32_t, std::size_t>> emission_credits;
  };

  /// Captures the pending events into `out` (reusing its capacity), along
  /// with the emission counters accumulated so far. Take the snapshot right
  /// after the injections it should capture, before run_until — then the
  /// counters are exactly the injections' expansion credits.
  void snapshot_queue(QueueSnapshot& out) const;

  /// Replaces the pending events with a snapshot taken on a simulator that
  /// shares this one's tables. Only valid while the queue is empty (right
  /// after reset()). Invalidate snapshots whenever faults change: the
  /// snapshot bakes in the fan-out expansion decisions of the fault state it
  /// was taken under.
  void restore_queue(const QueueSnapshot& snapshot);

  /// Reseeds the jitter/fault noise stream (per-chip determinism in Monte
  /// Carlo regardless of thread partitioning).
  void reseed_noise(std::uint64_t seed);

  /// Recorded pulse times on a net (requires record_pulses).
  const std::vector<double>& pulses(circuit::NetId net) const;

  /// Current DC level of an SFQ-to-DC converter's output net.
  bool dc_level(circuit::NetId converter_output) const;

  /// Level-transition times of an SFQ-to-DC converter's output net.
  const std::vector<double>& dc_transitions(circuit::NetId converter_output) const;

  double now() const noexcept { return now_ps_; }
  std::size_t events_processed() const noexcept { return events_processed_; }

  /// The netlist the (possibly shared) tables were flattened from.
  const circuit::Netlist& netlist() const noexcept { return tables_->netlist(); }
  /// The shared tables; lease these to stand up further instances cheaply.
  const std::shared_ptr<const SimTables>& tables() const noexcept { return tables_; }

 private:
  std::shared_ptr<const SimTables> tables_;
  SimConfig config_;
  util::Rng rng_;

  // Calendar event queue: SFQ frames have very few distinct timestamps
  // (clock edges plus a handful of delay sums), so events are kept in
  // per-timestamp FIFO buckets in a sorted time index instead of a binary
  // heap. Pop order is exactly (time ascending, insertion order within a
  // timestamp) — the same total order the previous heap's sequence numbers
  // enforced. All backing vectors are reused across reset() calls.
  std::vector<double> bucket_time_;        ///< sorted times, active range [front_, end_)
  std::vector<std::uint32_t> bucket_slot_; ///< pool slot of each active bucket
  std::vector<std::vector<std::uint32_t>> bucket_pool_;  ///< event targets per slot
  std::vector<std::uint32_t> bucket_head_; ///< FIFO cursor per slot
  std::size_t bucket_front_ = 0;           ///< first non-drained bucket
  std::size_t bucket_end_ = 0;             ///< one past the last bucket
  double now_ps_ = 0.0;
  std::size_t events_processed_ = 0;

  std::vector<CellState> cell_state_;
  std::vector<CellFault> cell_fault_;
  std::vector<std::vector<double>> net_pulses_;
  std::vector<std::vector<double>> dc_transition_times_;  // indexed by cell id

  // Per-instance expansion gating over the shared tables: whether this
  // config may use the expansion at all, and which expansions are currently
  // valid under this instance's fault state.
  bool expansion_enabled_ = false;          ///< !record_pulses && jitter off
  bool expansion_validity_dirty_ = true;    ///< faults changed since last check
  std::vector<char> expansion_valid_;       ///< parallel to tables_->expansions_

  void revalidate_expansions();
  /// Queues a pulse on `net`, through the fan-out expansion when valid.
  void schedule(double time, std::uint32_t net);

  void push_event(double time, std::uint32_t target);
  void deliver(std::uint32_t target, double time);
  void on_pulse(std::uint32_t cell, std::uint32_t port, double time);
  void on_clock(std::uint32_t cell, double time);
  /// Emission with fault/jitter handling; schedules the pulse on `net`.
  void emit(std::uint32_t cell, std::uint32_t net, double time);
  double jitter(double time);
  circuit::CellId converter_of(circuit::NetId output_net) const;
};

}  // namespace sfqecc::sim
