#include "ppv/margin_model.hpp"

#include <cmath>

#include "ppv/calibration.hpp"
#include "util/expect.hpp"

namespace sfqecc::ppv {

namespace {

/// Shared normalization: sigma_H = spread * sensitivity under uniform spread.
double statistic_from_sum(double sum, double sensitivity) {
  return sensitivity * std::sqrt(3.0 / static_cast<double>(kParamsPerCell)) * sum;
}

}  // namespace

double health_statistic(const std::vector<double>& deviations, double sensitivity) {
  expects(deviations.size() == kParamsPerCell, "deviation vector size mismatch");
  double sum = 0.0;
  for (double d : deviations) sum += d;
  return statistic_from_sum(sum, sensitivity);
}

double health_ratio(double health, const circuit::CellSpec& spec) {
  expects(spec.ppv_threshold > 0.0, "cell threshold must be positive");
  return std::abs(health) / spec.ppv_threshold;
}

sim::CellFault fault_from_health_ratio(double h, util::Rng& rng) {
  sim::CellFault fault;
  if (h < kSoftOnset) return fault;  // healthy
  if (h < 1.0) {
    const double ramp = (h - kSoftOnset) / (1.0 - kSoftOnset);
    fault.mode = sim::FaultMode::kFlaky;
    fault.error_prob = kSoftMaxErrorProb * ramp * ramp;
    return fault;
  }
  fault.mode = rng.bernoulli(kDeadFraction) ? sim::FaultMode::kDead
                                            : sim::FaultMode::kSputter;
  return fault;
}

CellHealth sample_cell_health(const circuit::CellSpec& spec, const SpreadSpec& spread,
                              util::Rng& rng) {
  // Same draws (in the same order) and the same arithmetic as
  // health_statistic(sample_deviations(...)), without the per-cell heap
  // allocation — this runs once per cell per Monte-Carlo chip.
  double sum = 0.0;
  for (std::size_t i = 0; i < kParamsPerCell; ++i) sum += sample_deviation(spread, rng);
  const double h = health_ratio(statistic_from_sum(sum, spec.ppv_sensitivity), spec);
  return CellHealth{h, fault_from_health_ratio(h, rng)};
}

namespace {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double trouble_probability(const circuit::CellSpec& spec, const SpreadSpec& spread) {
  // H is approximately N(0, sigma_H); per health_statistic() the per-parameter
  // sigma combines to sigma_H = deviation_sigma * sqrt(3) * sensitivity, which
  // is fraction * sensitivity for the uniform spread. The cell is in trouble
  // when |H| >= kSoftOnset * threshold.
  const double sigma_h = deviation_sigma(spread) * std::sqrt(3.0) * spec.ppv_sensitivity;
  const double z = kSoftOnset * spec.ppv_threshold / sigma_h;
  return 2.0 * normal_cdf(-z);
}

}  // namespace sfqecc::ppv
