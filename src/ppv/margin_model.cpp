#include "ppv/margin_model.hpp"

#include <cmath>

#include "ppv/calibration.hpp"
#include "util/expect.hpp"

namespace sfqecc::ppv {

double health_statistic(const std::vector<double>& deviations, double sensitivity) {
  expects(deviations.size() == kParamsPerCell, "deviation vector size mismatch");
  double sum = 0.0;
  for (double d : deviations) sum += d;
  // Normalized so that sigma_H = spread * sensitivity under uniform spread.
  return sensitivity * std::sqrt(3.0 / static_cast<double>(kParamsPerCell)) * sum;
}

double health_ratio(double health, const circuit::CellSpec& spec) {
  expects(spec.ppv_threshold > 0.0, "cell threshold must be positive");
  return std::abs(health) / spec.ppv_threshold;
}

sim::CellFault fault_from_health_ratio(double h, util::Rng& rng) {
  sim::CellFault fault;
  if (h < kSoftOnset) return fault;  // healthy
  if (h < 1.0) {
    const double ramp = (h - kSoftOnset) / (1.0 - kSoftOnset);
    fault.mode = sim::FaultMode::kFlaky;
    fault.error_prob = kSoftMaxErrorProb * ramp * ramp;
    return fault;
  }
  fault.mode = rng.bernoulli(kDeadFraction) ? sim::FaultMode::kDead
                                            : sim::FaultMode::kSputter;
  return fault;
}

CellHealth sample_cell_health(const circuit::CellSpec& spec, const SpreadSpec& spread,
                              util::Rng& rng) {
  const std::vector<double> deviations = sample_deviations(spread, kParamsPerCell, rng);
  const double h = health_ratio(health_statistic(deviations, spec.ppv_sensitivity), spec);
  return CellHealth{h, fault_from_health_ratio(h, rng)};
}

namespace {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double trouble_probability(const circuit::CellSpec& spec, const SpreadSpec& spread) {
  // H is approximately N(0, sigma_H); per health_statistic() the per-parameter
  // sigma combines to sigma_H = deviation_sigma * sqrt(3) * sensitivity, which
  // is fraction * sensitivity for the uniform spread. The cell is in trouble
  // when |H| >= kSoftOnset * threshold.
  const double sigma_h = deviation_sigma(spread) * std::sqrt(3.0) * spec.ppv_sensitivity;
  const double z = kSoftOnset * spec.ppv_threshold / sigma_h;
  return 2.0 * normal_cdf(-z);
}

}  // namespace sfqecc::ppv
