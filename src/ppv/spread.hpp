// JoSIM-style process-parameter spread.
//
// JoSIM's `spread` function assigns every circuit parameter a deviation from
// its nominal value; the paper uses a uniform +/-20 % spread. A SpreadSpec
// describes the distribution; sample_deviations draws one deviation vector
// per cell.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace sfqecc::ppv {

enum class SpreadDistribution {
  kUniform,   ///< deviation uniform in [-fraction, +fraction] (JoSIM default)
  kGaussian,  ///< deviation ~ N(0, fraction/2), truncated at +/-2 sigma equivalents
};

struct SpreadSpec {
  double fraction = 0.20;  ///< the paper's +/-20 % setting
  SpreadDistribution distribution = SpreadDistribution::kUniform;
};

/// One parameter deviation (relative, e.g. +0.13 = +13 %).
double sample_deviation(const SpreadSpec& spec, util::Rng& rng);

/// Deviation vector for a cell with `count` spread-affected parameters.
std::vector<double> sample_deviations(const SpreadSpec& spec, std::size_t count,
                                      util::Rng& rng);

/// Standard deviation of a single parameter deviation under `spec`.
double deviation_sigma(const SpreadSpec& spec) noexcept;

}  // namespace sfqecc::ppv
