// A "chip" is one fabricated instance of a netlist: every cell carries its
// own sampled parameter deviations and the resulting fault state. The paper
// treats each Monte-Carlo iteration as a distinct fabricated chip.
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/cell_library.hpp"
#include "circuit/netlist.hpp"
#include "ppv/margin_model.hpp"
#include "ppv/spread.hpp"
#include "sim/event_sim.hpp"

namespace sfqecc::ppv {

/// Per-cell PPV outcome for one fabricated chip.
struct ChipSample {
  std::vector<double> health_ratios;       ///< h per cell (netlist cell id order)
  std::vector<sim::CellFault> faults;      ///< fault state per cell

  std::size_t flaky_cells() const noexcept;
  std::size_t hard_failed_cells() const noexcept;  ///< dead + sputtering
  bool fully_healthy() const noexcept;
};

/// Samples one chip. Deterministic for a given rng state: cells are visited
/// in id order.
ChipSample sample_chip(const circuit::Netlist& netlist, const circuit::CellLibrary& library,
                       const SpreadSpec& spread, util::Rng& rng);

/// Allocation-free variant for hot Monte-Carlo loops: refills `chip` in
/// place, reusing its vector capacity. Identical draws and results to
/// sample_chip.
void sample_chip_into(ChipSample& chip, const circuit::Netlist& netlist,
                      const circuit::CellLibrary& library, const SpreadSpec& spread,
                      util::Rng& rng);

/// Applies a chip's fault states to a simulator instance.
void apply_chip(const ChipSample& chip, sim::EventSimulator& simulator);

}  // namespace sfqecc::ppv
