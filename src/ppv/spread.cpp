#include "ppv/spread.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace sfqecc::ppv {

double sample_deviation(const SpreadSpec& spec, util::Rng& rng) {
  expects(spec.fraction >= 0.0 && spec.fraction < 1.0, "spread fraction out of range");
  switch (spec.distribution) {
    case SpreadDistribution::kUniform:
      return rng.uniform(-spec.fraction, spec.fraction);
    case SpreadDistribution::kGaussian: {
      const double sigma = spec.fraction / 2.0;
      return std::clamp(rng.gaussian(0.0, sigma), -2.0 * spec.fraction,
                        2.0 * spec.fraction);
    }
  }
  throw ContractViolation("unknown spread distribution");
}

std::vector<double> sample_deviations(const SpreadSpec& spec, std::size_t count,
                                      util::Rng& rng) {
  std::vector<double> out(count);
  for (double& d : out) d = sample_deviation(spec, rng);
  return out;
}

double deviation_sigma(const SpreadSpec& spec) noexcept {
  switch (spec.distribution) {
    case SpreadDistribution::kUniform:
      return spec.fraction / std::sqrt(3.0);
    case SpreadDistribution::kGaussian:
      return spec.fraction / 2.0;
  }
  return 0.0;
}

}  // namespace sfqecc::ppv
