// Calibration constants of the PPV failure model (DESIGN.md §7).
//
// The paper derives cell failure behaviour from JoSIM margin analysis of the
// MIT-LL SFQ5ee process; those margins are not public, so this model is
// calibrated to reproduce the paper's anchor point — P(zero erroneous
// messages out of 100) = 80 % for the no-encoder 4-bit link at +/-20 %
// spread — and the per-cell-type ordering of RSFQ margins reported in the
// SFQ literature (output drivers tightest, splitters widest). The encoder
// curves of Fig. 5 are then *emergent*: they follow from circuit structure,
// not from further tuning.
#pragma once

#include <cstddef>

namespace sfqecc::ppv {

/// Number of spread-affected circuit parameters per cell (junction critical
/// currents, inductances, bias resistors). Only the count matters: the health
/// statistic is their sensitivity-weighted sum (approximately Gaussian).
inline constexpr std::size_t kParamsPerCell = 8;

/// Health ratio h = |H| / threshold at which a cell starts misbehaving.
/// Below the onset the cell is fully operational (inside its margin box).
inline constexpr double kSoftOnset = 0.90;

/// Per-operation error probability at the margin boundary (h = 1); the
/// probability ramps quadratically from 0 at kSoftOnset to this value.
inline constexpr double kSoftMaxErrorProb = 0.30;

/// Fraction of hard failures (h >= 1) that are "dead" (pulse-dropping, e.g.
/// flux trapping); the rest sputter (emit on every clock).
inline constexpr double kDeadFraction = 0.70;

}  // namespace sfqecc::ppv
