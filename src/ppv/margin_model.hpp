// Sensitivity-weighted margin model: maps a cell's sampled parameter
// deviations to a health statistic and a fault state.
//
// The health statistic H is the sensitivity-weighted sum of the cell's
// parameter deviations, normalized so that sigma_H = spread * sensitivity
// under the uniform JoSIM spread (CLT over kParamsPerCell parameters). The
// cell operates correctly while |H| stays below its margin threshold; the
// fault mapping is:
//   h = |H| / threshold < kSoftOnset          -> healthy
//   kSoftOnset <= h < 1                        -> flaky, p ramps to kSoftMaxErrorProb
//   h >= 1                                     -> dead (kDeadFraction) or sputtering
#pragma once

#include "circuit/cell_library.hpp"
#include "ppv/spread.hpp"
#include "sim/cell_behavior.hpp"
#include "util/rng.hpp"

namespace sfqecc::ppv {

/// Health statistic of one cell from its deviation vector. `deviations` must
/// have kParamsPerCell entries.
double health_statistic(const std::vector<double>& deviations, double sensitivity);

/// Health ratio h = |H| / threshold for a cell spec.
double health_ratio(double health, const circuit::CellSpec& spec);

/// Fault state from a health ratio. `rng` decides the dead-vs-sputter split
/// for hard failures (per-chip, not per-operation).
sim::CellFault fault_from_health_ratio(double h, util::Rng& rng);

/// Convenience: sample deviations, compute h, map to a fault.
struct CellHealth {
  double ratio = 0.0;       ///< h
  sim::CellFault fault;
};
CellHealth sample_cell_health(const circuit::CellSpec& spec, const SpreadSpec& spread,
                              util::Rng& rng);

/// Analytic probability that a cell of this spec is NOT fully healthy
/// (h >= kSoftOnset) under the spread — used by tests and the calibration
/// bench to cross-check the Monte Carlo.
double trouble_probability(const circuit::CellSpec& spec, const SpreadSpec& spread);

}  // namespace sfqecc::ppv
