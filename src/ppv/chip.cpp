#include "ppv/chip.hpp"

#include "util/expect.hpp"

namespace sfqecc::ppv {

std::size_t ChipSample::flaky_cells() const noexcept {
  std::size_t n = 0;
  for (const sim::CellFault& f : faults)
    if (f.mode == sim::FaultMode::kFlaky) ++n;
  return n;
}

std::size_t ChipSample::hard_failed_cells() const noexcept {
  std::size_t n = 0;
  for (const sim::CellFault& f : faults)
    if (f.mode == sim::FaultMode::kDead || f.mode == sim::FaultMode::kSputter) ++n;
  return n;
}

bool ChipSample::fully_healthy() const noexcept {
  for (const sim::CellFault& f : faults)
    if (f.mode != sim::FaultMode::kHealthy) return false;
  return true;
}

ChipSample sample_chip(const circuit::Netlist& netlist, const circuit::CellLibrary& library,
                       const SpreadSpec& spread, util::Rng& rng) {
  ChipSample chip;
  sample_chip_into(chip, netlist, library, spread, rng);
  return chip;
}

void sample_chip_into(ChipSample& chip, const circuit::Netlist& netlist,
                      const circuit::CellLibrary& library, const SpreadSpec& spread,
                      util::Rng& rng) {
  chip.health_ratios.clear();
  chip.faults.clear();
  chip.health_ratios.reserve(netlist.cell_count());
  chip.faults.reserve(netlist.cell_count());
  // Memoize specs per cell type: the library lookup is a std::map walk and
  // netlists use only a handful of types.
  constexpr std::size_t kMaxTypes = 16;
  const circuit::CellSpec* specs[kMaxTypes] = {};
  for (const circuit::Cell& cell : netlist.cells()) {
    const auto type_index = static_cast<std::size_t>(cell.type);
    expects(type_index < kMaxTypes, "unexpected cell type");
    if (specs[type_index] == nullptr) specs[type_index] = &library.spec(cell.type);
    const CellHealth health = sample_cell_health(*specs[type_index], spread, rng);
    chip.health_ratios.push_back(health.ratio);
    chip.faults.push_back(health.fault);
  }
}

void apply_chip(const ChipSample& chip, sim::EventSimulator& simulator) {
  for (std::size_t id = 0; id < chip.faults.size(); ++id)
    simulator.set_fault(id, chip.faults[id]);
}

}  // namespace sfqecc::ppv
