#include "ppv/chip.hpp"

#include "util/expect.hpp"

namespace sfqecc::ppv {

std::size_t ChipSample::flaky_cells() const noexcept {
  std::size_t n = 0;
  for (const sim::CellFault& f : faults)
    if (f.mode == sim::FaultMode::kFlaky) ++n;
  return n;
}

std::size_t ChipSample::hard_failed_cells() const noexcept {
  std::size_t n = 0;
  for (const sim::CellFault& f : faults)
    if (f.mode == sim::FaultMode::kDead || f.mode == sim::FaultMode::kSputter) ++n;
  return n;
}

bool ChipSample::fully_healthy() const noexcept {
  for (const sim::CellFault& f : faults)
    if (f.mode != sim::FaultMode::kHealthy) return false;
  return true;
}

ChipSample sample_chip(const circuit::Netlist& netlist, const circuit::CellLibrary& library,
                       const SpreadSpec& spread, util::Rng& rng) {
  ChipSample chip;
  chip.health_ratios.reserve(netlist.cell_count());
  chip.faults.reserve(netlist.cell_count());
  for (const circuit::Cell& cell : netlist.cells()) {
    const CellHealth health = sample_cell_health(library.spec(cell.type), spread, rng);
    chip.health_ratios.push_back(health.ratio);
    chip.faults.push_back(health.fault);
  }
  return chip;
}

void apply_chip(const ChipSample& chip, sim::EventSimulator& simulator) {
  for (std::size_t id = 0; id < chip.faults.size(); ++id)
    simulator.set_fault(id, chip.faults[id]);
}

}  // namespace sfqecc::ppv
