// Reed-Muller codes RM(r, m) of length 2^m.
//
// Construction: generator rows are the evaluation vectors of all monomials of
// degree <= r in m boolean variables, evaluated over the points j = 0..2^m-1
// (variable x_i of point j is bit i of j). Rows are ordered by degree, then
// lexicographically by variable set. dmin(RM(r,m)) = 2^(m-r).
//
// paper_rm13() is RM(1,3) with the message mapping used in the paper's Fig. 4
// reconstruction: m1 -> constant, m2 -> x1, m3 -> x2, m4 -> x3, i.e.
// c_j = m1 ^ (m2 & j0) ^ (m3 & j1) ^ (m4 & j2) for bit index j = 0..7.
#pragma once

#include <cstddef>

#include "code/linear_code.hpp"

namespace sfqecc::code {

/// Reed-Muller code RM(r, m), 0 <= r <= m, m <= 16.
LinearCode reed_muller(std::size_t r, std::size_t m);

/// Dimension of RM(r, m): sum_{i<=r} C(m, i).
std::size_t reed_muller_k(std::size_t r, std::size_t m);

/// The paper's RM(1,3) code (k = 4, n = 8, dmin = 4).
LinearCode paper_rm13();

/// Plotkin (u | u+v) combination: builds the length-2n code
/// { (u, u+v) : u in A, v in B } for codes A, B of equal length n.
/// RM(r, m+1) = Plotkin(RM(r, m), RM(r-1, m)); used for tests and scaling.
LinearCode plotkin_combine(const LinearCode& a, const LinearCode& b);

}  // namespace sfqecc::code
