// Dense matrix over GF(2) with the linear algebra needed for block codes:
// row-reduction, rank, systematic form and null-space (parity-check) capture.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "code/bitvec.hpp"

namespace sfqecc::code {

/// Dense GF(2) matrix stored as one BitVec per row.
class Gf2Matrix {
 public:
  Gf2Matrix() = default;

  /// Zero matrix with the given shape.
  Gf2Matrix(std::size_t rows, std::size_t cols);

  /// Builds a matrix from 0/1 integer literals, e.g.
  ///   Gf2Matrix::from_rows({{1,1,0},{0,1,1}}).
  static Gf2Matrix from_rows(std::initializer_list<std::initializer_list<int>> rows);

  /// Builds a matrix from '0'/'1' strings, one per row.
  static Gf2Matrix from_strings(const std::vector<std::string>& rows);

  static Gf2Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t cols() const noexcept { return cols_; }

  bool get(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool value);

  const BitVec& row(std::size_t r) const;
  BitVec& row(std::size_t r);
  BitVec column(std::size_t c) const;

  bool operator==(const Gf2Matrix& other) const noexcept = default;

  /// Row-vector times matrix: v (1 x rows) * M (rows x cols) -> (1 x cols).
  BitVec mul_left(const BitVec& v) const;

  /// Matrix times column vector: M (rows x cols) * v (cols x 1) -> (rows x 1).
  BitVec mul_right(const BitVec& v) const;

  Gf2Matrix transpose() const;

  /// Matrix product over GF(2). this->cols() must equal other.rows().
  Gf2Matrix multiply(const Gf2Matrix& other) const;

  /// Horizontal concatenation [this | other]. Row counts must match.
  Gf2Matrix hconcat(const Gf2Matrix& other) const;

  std::size_t rank() const;

  /// Reduced row-echelon form.
  Gf2Matrix rref() const;

  /// Inverse of a square, full-rank matrix. Throws when singular.
  Gf2Matrix inverse() const;

  /// Sub-matrix keeping only the given columns, in the given order.
  Gf2Matrix select_columns(const std::vector<std::size_t>& columns) const;

  /// Basis of the null space {x : M x = 0} as rows of the returned matrix
  /// (each row has cols() entries). Empty matrix when the kernel is trivial.
  Gf2Matrix null_space() const;

  /// Systematic form of a full-row-rank matrix (see SystematicForm below).
  /// Throws if rows() > rank().
  struct SystematicForm to_systematic() const;

  std::string to_string() const;

 private:
  std::size_t cols_ = 0;
  std::vector<BitVec> rows_;
};

/// Result of bringing a generator matrix to systematic form by row
/// operations and (when unavoidable) column permutation.
struct SystematicForm {
  Gf2Matrix generator;                    ///< [I_k | P], k = rank
  std::vector<std::size_t> column_order;  ///< column i of `generator` is column_order[i] of the original
  bool permuted = false;                  ///< true when a column swap was required
};

/// Parity-check matrix H (size (n-k) x n) from a systematic generator
/// G = [I_k | P] (size k x n): H = [P^T | I_{n-k}].
Gf2Matrix parity_check_from_systematic(const Gf2Matrix& systematic_generator);

}  // namespace sfqecc::code
