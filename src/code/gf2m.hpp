// Finite-field arithmetic over GF(2^m), 2 <= m <= 16, with log/antilog
// tables. Substrate for the BCH codes used in the paper's Section II
// complexity comparison against Hamming codes.
#pragma once

#include <cstdint>
#include <vector>

namespace sfqecc::code {

/// GF(2^m) with a fixed primitive polynomial. Elements are represented as
/// polynomial bit masks (0 .. 2^m - 1); `alpha` (= 2) is primitive.
class Gf2mField {
 public:
  /// Uses a standard primitive polynomial for the given m.
  explicit Gf2mField(unsigned m);

  unsigned m() const noexcept { return m_; }
  std::uint32_t size() const noexcept { return order_ + 1; }     ///< field size 2^m
  std::uint32_t order() const noexcept { return order_; }        ///< multiplicative order 2^m - 1
  std::uint32_t primitive_poly() const noexcept { return poly_; }

  std::uint32_t add(std::uint32_t a, std::uint32_t b) const noexcept { return a ^ b; }
  std::uint32_t mul(std::uint32_t a, std::uint32_t b) const;
  std::uint32_t inv(std::uint32_t a) const;
  std::uint32_t div(std::uint32_t a, std::uint32_t b) const { return mul(a, inv(b)); }

  /// alpha^e for any integer exponent (reduced mod 2^m - 1).
  std::uint32_t alpha_pow(long long e) const noexcept;

  /// Discrete log base alpha; `a` must be nonzero.
  std::uint32_t log(std::uint32_t a) const;

  std::uint32_t pow(std::uint32_t a, unsigned long long e) const;

 private:
  unsigned m_;
  std::uint32_t order_;
  std::uint32_t poly_;
  std::vector<std::uint32_t> exp_;  // exp_[i] = alpha^i, doubled for wraparound
  std::vector<std::uint32_t> log_;  // log_[a] = i with alpha^i = a
};

/// Polynomial over GF(2) stored as coefficient bit mask in a vector<bool>-free
/// form: coeffs[i] is the coefficient of x^i (0 or 1), highest degree last.
using Gf2Poly = std::vector<std::uint8_t>;

/// Degree of a polynomial; degree of the zero polynomial is SIZE_MAX.
std::size_t poly_degree(const Gf2Poly& p) noexcept;

/// Product of two GF(2) polynomials.
Gf2Poly poly_mul(const Gf2Poly& a, const Gf2Poly& b);

/// Remainder of a mod b (b nonzero).
Gf2Poly poly_mod(const Gf2Poly& a, const Gf2Poly& b);

/// Minimal polynomial over GF(2) of alpha^e in the given field.
Gf2Poly minimal_polynomial(const Gf2mField& field, std::uint32_t e);

}  // namespace sfqecc::code
