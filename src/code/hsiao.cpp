#include "code/hsiao.hpp"

#include <bit>
#include <string>
#include <vector>

#include "util/expect.hpp"

namespace sfqecc::code {

LinearCode hsiao_code(std::size_t k, std::size_t r) {
  expects(r >= 3 && r <= 16, "Hsiao code needs 3 <= r <= 16");
  // Unit columns (weight 1) serve the parity bits; data columns use odd
  // weights >= 3. Available non-unit odd columns: 2^(r-1) - r.
  expects(k <= (std::size_t{1} << (r - 1)) - r, "k too large for r parity bits");

  std::vector<std::size_t> data_columns;
  for (std::size_t w = 3; w <= r && data_columns.size() < k; w += 2)
    for (std::size_t v = 1; v < (std::size_t{1} << r) && data_columns.size() < k; ++v)
      if (static_cast<std::size_t>(std::popcount(v)) == w) data_columns.push_back(v);
  ensures(data_columns.size() == k, "failed to build Hsiao column set");

  Gf2Matrix g(k, k + r);
  for (std::size_t i = 0; i < k; ++i) {
    g.set(i, i, true);
    for (std::size_t j = 0; j < r; ++j)
      if ((data_columns[i] >> j) & 1) g.set(i, k + j, true);
  }
  // All columns odd and distinct -> dmin = 4 (odd+odd+odd is odd, so no
  // weight-3 codeword; three data columns cannot sum to zero, and a weight-4
  // codeword exists whenever two data columns share a two-column complement).
  return LinearCode("Hsiao(" + std::to_string(k + r) + "," + std::to_string(k) + ")",
                    std::move(g), 4);
}

LinearCode hsiao_13_8() { return hsiao_code(8, 5); }

}  // namespace sfqecc::code
