#include "code/hamming.hpp"

#include <bit>
#include <string>
#include <vector>

#include "util/expect.hpp"

namespace sfqecc::code {

LinearCode hamming_code(std::size_t r) {
  expects(r >= 2, "Hamming code needs r >= 2");
  expects(r <= 16, "Hamming code r too large to be practical");
  const std::size_t n = (std::size_t{1} << r) - 1;
  const std::size_t k = n - r;

  // Column values: data columns are the non-power-of-two values ascending,
  // parity columns are 1, 2, 4, ... so that H = [A | I_r].
  std::vector<std::size_t> data_columns;
  for (std::size_t v = 1; v <= n; ++v)
    if (std::popcount(v) > 1) data_columns.push_back(v);
  ensures(data_columns.size() == k, "unexpected data column count");

  // Systematic generator G = [I_k | P] with P(i, j) = bit j of data column i:
  // parity j covers exactly the data bits whose column value has bit j set.
  Gf2Matrix g(k, n);
  for (std::size_t i = 0; i < k; ++i) {
    g.set(i, i, true);
    for (std::size_t j = 0; j < r; ++j)
      if ((data_columns[i] >> j) & 1) g.set(i, k + j, true);
  }
  return LinearCode("Hamming(" + std::to_string(n) + "," + std::to_string(k) + ")",
                    std::move(g), 3);
}

LinearCode extend_with_overall_parity(const LinearCode& base) {
  const std::size_t k = base.k();
  const std::size_t n = base.n();
  Gf2Matrix g(k, n + 1);
  for (std::size_t i = 0; i < k; ++i) {
    const BitVec& row = base.generator().row(i);
    for (std::size_t c = 0; c < n; ++c) g.set(i, c, row.get(c));
    g.set(i, n, row.parity());
  }
  // Every extended row (hence every codeword) has even weight; if the base
  // dmin was odd it increases by exactly one.
  std::optional<std::size_t> d;
  if (base.known_dmin() || base.k() <= 24) {
    const std::size_t base_d = base.dmin();
    d = base_d % 2 == 1 ? base_d + 1 : base_d;
  }
  return LinearCode("extended-" + base.name(), std::move(g), d);
}

LinearCode paper_hamming74() {
  // Rows are codewords of the unit messages m1..m4 under Eq. (3) minus c8.
  Gf2Matrix g = Gf2Matrix::from_rows({
      {1, 1, 1, 0, 0, 0, 0},   // m1 -> c1, c2, c3
      {1, 0, 0, 1, 1, 0, 0},   // m2 -> c1, c4, c5
      {0, 1, 0, 1, 0, 1, 0},   // m3 -> c2, c4, c6
      {1, 1, 0, 1, 0, 0, 1},   // m4 -> c1, c2, c4, c7
  });
  return LinearCode("Hamming(7,4)", std::move(g), 3);
}

LinearCode paper_hamming84() {
  // Eq. (1) of the paper.
  Gf2Matrix g = Gf2Matrix::from_rows({
      {1, 1, 1, 0, 0, 0, 0, 1},
      {1, 0, 0, 1, 1, 0, 0, 1},
      {0, 1, 0, 1, 0, 1, 0, 1},
      {1, 1, 0, 1, 0, 0, 1, 0},
  });
  return LinearCode("Hamming(8,4)", std::move(g), 4);
}

}  // namespace sfqecc::code
