// Narrow-sense binary BCH codes of length 2^m - 1.
//
// The paper (Section II) notes that BCH codes are algebraically equivalent to
// Hamming codes at short lengths but carry higher encoding/decoding
// complexity; this module lets the benches quantify that claim with the same
// synthesis pipeline used for the paper's encoders.
//
// Encoding is systematic-cyclic (message bits first). Decoding is classic
// Berlekamp-Massey + Chien search.
#pragma once

#include <cstddef>
#include <memory>

#include "code/decoder.hpp"
#include "code/gf2m.hpp"
#include "code/linear_code.hpp"

namespace sfqecc::code {

/// A narrow-sense binary BCH code with designed distance `designed_distance`
/// (odd, >= 3) and length 2^m - 1.
class BchCode {
 public:
  BchCode(unsigned m, std::size_t designed_distance);

  std::size_t n() const noexcept { return n_; }
  std::size_t k() const noexcept { return k_; }
  std::size_t designed_distance() const noexcept { return delta_; }
  std::size_t t() const noexcept { return (delta_ - 1) / 2; }
  const Gf2Poly& generator_polynomial() const noexcept { return gen_; }
  const Gf2mField& field() const noexcept { return field_; }

  /// Systematic encoding: codeword = (message | parity).
  BitVec encode(const BitVec& message) const;

  /// Berlekamp-Massey decoding; corrects up to t() errors, flags kDetected
  /// when the error locator is inconsistent with the received word.
  DecodeResult decode(const BitVec& received) const;

  /// Generator matrix (systematic) for use with the LinearCode machinery and
  /// the circuit synthesis pipeline.
  LinearCode to_linear_code() const;

 private:
  Gf2mField field_;
  std::size_t n_;
  std::size_t k_;
  std::size_t delta_;
  Gf2Poly gen_;

  BitVec parity_of(const BitVec& message) const;
};

/// Uniform factory entry point: the narrow-sense binary BCH code with the
/// given (n, k). `n` must be 2^m - 1; the designed distance is found by
/// searching odd values until the dimension matches (contract-checked when
/// no designed distance yields dimension k).
BchCode make_bch(std::size_t n, std::size_t k);

/// Decoder adapter: classic Berlekamp-Massey + Chien search behind the
/// uniform code::Decoder interface, so BCH schemes plug into the data link
/// and the scheme catalog. Owns its BchCode; `code` (normally the BchCode's
/// to_linear_code()) is borrowed and must outlive the decoder.
class BchDecoder final : public Decoder {
 public:
  BchDecoder(BchCode bch, const LinearCode& code);
  DecodeResult decode(const BitVec& received) const override;
  const LinearCode& base_code() const noexcept override { return code_; }
  std::string name() const override;

 private:
  BchCode bch_;
  const LinearCode& code_;
};

}  // namespace sfqecc::code
