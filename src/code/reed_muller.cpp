#include "code/reed_muller.hpp"

#include <string>
#include <vector>

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

/// Appends to `rows` the evaluation vectors of all degree-`deg` monomials,
/// iterating variable subsets in lexicographic order.
void append_monomials(std::vector<BitVec>& rows, std::size_t deg, std::size_t m) {
  const std::size_t n = std::size_t{1} << m;
  if (deg == 0) {
    BitVec ones(n);
    for (std::size_t j = 0; j < n; ++j) ones.set(j, true);
    rows.push_back(ones);
    return;
  }
  // Enumerate variable subsets of size `deg` as sorted index vectors.
  std::vector<std::size_t> vars(deg);
  for (std::size_t i = 0; i < deg; ++i) vars[i] = i;
  while (true) {
    BitVec row(n);
    for (std::size_t j = 0; j < n; ++j) {
      bool all = true;
      for (std::size_t v : vars)
        if (((j >> v) & 1) == 0) {
          all = false;
          break;
        }
      row.set(j, all);
    }
    rows.push_back(row);

    std::size_t pos = deg;
    while (pos > 0 && vars[pos - 1] == m - deg + pos - 1) --pos;
    if (pos == 0) break;
    ++vars[pos - 1];
    for (std::size_t i = pos; i < deg; ++i) vars[i] = vars[i - 1] + 1;
  }
}

}  // namespace

std::size_t reed_muller_k(std::size_t r, std::size_t m) {
  std::size_t k = 0;
  std::size_t binom = 1;  // C(m, 0)
  for (std::size_t i = 0; i <= r; ++i) {
    k += binom;
    binom = binom * (m - i) / (i + 1);
  }
  return k;
}

LinearCode reed_muller(std::size_t r, std::size_t m) {
  expects(m >= 1 && m <= 16, "RM(r,m) needs 1 <= m <= 16");
  expects(r <= m, "RM(r,m) needs r <= m");
  std::vector<BitVec> rows;
  for (std::size_t deg = 0; deg <= r; ++deg) append_monomials(rows, deg, m);
  ensures(rows.size() == reed_muller_k(r, m), "RM dimension mismatch");

  Gf2Matrix g(rows.size(), std::size_t{1} << m);
  for (std::size_t i = 0; i < rows.size(); ++i) g.row(i) = rows[i];
  const std::size_t d = std::size_t{1} << (m - r);
  return LinearCode("RM(" + std::to_string(r) + "," + std::to_string(m) + ")",
                    std::move(g), d);
}

LinearCode paper_rm13() {
  LinearCode rm = reed_muller(1, 3);
  // The generic construction already orders rows (1, x1, x2, x3), matching the
  // paper mapping m1 -> constant, m2..m4 -> x1..x3. Rename for presentation.
  return LinearCode("RM(1,3)", rm.generator(), 4);
}

LinearCode plotkin_combine(const LinearCode& a, const LinearCode& b) {
  expects(a.n() == b.n(), "Plotkin combination needs equal lengths");
  const std::size_t n = a.n();
  Gf2Matrix g(a.k() + b.k(), 2 * n);
  // Rows from A appear as (u | u); rows from B as (0 | v).
  for (std::size_t i = 0; i < a.k(); ++i) {
    const BitVec& u = a.generator().row(i);
    for (std::size_t c = 0; c < n; ++c) {
      g.set(i, c, u.get(c));
      g.set(i, n + c, u.get(c));
    }
  }
  for (std::size_t i = 0; i < b.k(); ++i) {
    const BitVec& v = b.generator().row(i);
    for (std::size_t c = 0; c < n; ++c) g.set(a.k() + i, n + c, v.get(c));
  }
  return LinearCode("plotkin(" + a.name() + "," + b.name() + ")", std::move(g));
}

}  // namespace sfqecc::code
