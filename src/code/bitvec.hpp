// Word-packed GF(2) vector.
//
// BitVec is the value type for messages, codewords, syndromes and error
// patterns throughout the library. It is a fixed-length bit string with XOR /
// AND algebra, Hamming-weight queries and integer/string conversions.
//
// Storage invariants (the hot-path contract the sim and link layers rely on):
//  * size <= 64: the bits live in an inline word — construction, copy, XOR,
//    weight, parity, dot and to_u64/from_u64 never touch the heap. Every code
//    in the paper has n <= 38, so the whole frame path is allocation-free.
//  * size > 64: bits spill to a heap word array (the general case used by
//    long Reed-Muller codes and analysis tools).
//  * Padding bits above `size` are always zero, in both representations, so
//    word-parallel operations (weight/parity/dot/equality/hash) need no
//    per-bit masking.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sfqecc::code {

/// Fixed-length vector over GF(2), little-endian within 64-bit words
/// (bit index 0 is the least significant bit of word 0).
class BitVec {
 public:
  /// Sizes up to this many bits are stored inline (no heap allocation).
  static constexpr std::size_t kInlineBits = 64;

  BitVec() = default;

  /// Zero vector of the given length.
  explicit BitVec(std::size_t size) : size_(size) {
    if (size > kInlineBits) heap_.assign(word_count(), 0);
  }

  /// Builds a BitVec of length `size` from the low bits of `value`
  /// (bit i of `value` becomes element i). Requires size <= 64.
  static BitVec from_u64(std::size_t size, std::uint64_t value);

  /// Parses a string of '0'/'1' characters; element i is s[i].
  static BitVec from_string(const std::string& s);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const {
    check_index(i);
    return (words()[i / kWordBits] >> (i % kWordBits)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    check_index(i);
    const std::uint64_t mask = 1ULL << (i % kWordBits);
    if (value)
      words()[i / kWordBits] |= mask;
    else
      words()[i / kWordBits] &= ~mask;
  }

  void flip(std::size_t i) {
    check_index(i);
    words()[i / kWordBits] ^= 1ULL << (i % kWordBits);
  }

  /// Number of ones. Word-parallel (one popcount per word).
  std::size_t weight() const noexcept {
    if (size_ <= kInlineBits) return static_cast<std::size_t>(std::popcount(word0_));
    std::size_t w = 0;
    for (std::uint64_t word : heap_) w += static_cast<std::size_t>(std::popcount(word));
    return w;
  }

  /// True when every element is zero.
  bool is_zero() const noexcept {
    if (size_ <= kInlineBits) return word0_ == 0;
    for (std::uint64_t word : heap_)
      if (word != 0) return false;
    return true;
  }

  /// Parity (XOR) of all elements. Word-parallel.
  bool parity() const noexcept {
    if (size_ <= kInlineBits) return (std::popcount(word0_) & 1) != 0;
    std::uint64_t acc = 0;
    for (std::uint64_t word : heap_) acc ^= word;
    return (std::popcount(acc) & 1) != 0;
  }

  /// In-place XOR with `other`. Sizes must match.
  BitVec& operator^=(const BitVec& other) {
    check_same_size(other);
    if (size_ <= kInlineBits) {
      word0_ ^= other.word0_;
    } else {
      for (std::size_t w = 0; w < heap_.size(); ++w) heap_[w] ^= other.heap_[w];
    }
    return *this;
  }

  /// In-place AND with `other`. Sizes must match.
  BitVec& operator&=(const BitVec& other) {
    check_same_size(other);
    if (size_ <= kInlineBits) {
      word0_ &= other.word0_;
    } else {
      for (std::size_t w = 0; w < heap_.size(); ++w) heap_[w] &= other.heap_[w];
    }
    return *this;
  }

  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }

  bool operator==(const BitVec& other) const noexcept {
    if (size_ != other.size_) return false;
    if (size_ <= kInlineBits) return word0_ == other.word0_;
    return heap_ == other.heap_;
  }

  /// Inner product over GF(2): parity of (this AND other). Sizes must match.
  bool dot(const BitVec& other) const {
    check_same_size(other);
    if (size_ <= kInlineBits) return (std::popcount(word0_ & other.word0_) & 1) != 0;
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < heap_.size(); ++w) acc ^= heap_[w] & other.heap_[w];
    return (std::popcount(acc) & 1) != 0;
  }

  /// Concatenation: this followed by `other`.
  BitVec concat(const BitVec& other) const;

  /// Sub-vector [begin, begin+count).
  BitVec slice(std::size_t begin, std::size_t count) const;

  /// The low 64 elements as an integer (element i -> bit i). Requires size <= 64.
  std::uint64_t to_u64() const;

  /// String of '0'/'1' characters, element 0 first.
  std::string to_string() const;

  /// Positions of the ones, ascending.
  std::vector<std::size_t> support() const;

  /// FNV-style hash for use in unordered containers.
  std::size_t hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ size_;
    const std::uint64_t* w = words();
    for (std::size_t i = 0, count = word_count(); i < count; ++i) {
      h ^= w[i];
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  std::size_t size_ = 0;
  std::uint64_t word0_ = 0;          // inline storage when size_ <= kInlineBits
  std::vector<std::uint64_t> heap_;  // spill storage when size_ > kInlineBits

  std::size_t word_count() const noexcept { return (size_ + kWordBits - 1) / kWordBits; }
  std::uint64_t* words() noexcept { return size_ <= kInlineBits ? &word0_ : heap_.data(); }
  const std::uint64_t* words() const noexcept {
    return size_ <= kInlineBits ? &word0_ : heap_.data();
  }

  void check_index(std::size_t i) const;
  void check_same_size(const BitVec& other) const;
  void clear_padding() noexcept {
    const std::size_t rem = size_ % kWordBits;
    if (rem != 0) words()[word_count() - 1] &= (1ULL << rem) - 1;
  }
};

/// std::hash adapter.
struct BitVecHash {
  std::size_t operator()(const BitVec& v) const noexcept { return v.hash(); }
};

}  // namespace sfqecc::code
