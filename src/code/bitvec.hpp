// Word-packed GF(2) vector.
//
// BitVec is the value type for messages, codewords, syndromes and error
// patterns throughout the library. It is a fixed-length bit string with XOR /
// AND algebra, Hamming-weight queries and integer/string conversions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sfqecc::code {

/// Fixed-length vector over GF(2), little-endian within 64-bit words
/// (bit index 0 is the least significant bit of word 0).
class BitVec {
 public:
  BitVec() = default;

  /// Zero vector of the given length.
  explicit BitVec(std::size_t size);

  /// Builds a BitVec of length `size` from the low bits of `value`
  /// (bit i of `value` becomes element i). Requires size <= 64.
  static BitVec from_u64(std::size_t size, std::uint64_t value);

  /// Parses a string of '0'/'1' characters; element i is s[i].
  static BitVec from_string(const std::string& s);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Number of ones.
  std::size_t weight() const noexcept;

  /// True when every element is zero.
  bool is_zero() const noexcept;

  /// Parity (XOR) of all elements.
  bool parity() const noexcept;

  /// In-place XOR with `other`. Sizes must match.
  BitVec& operator^=(const BitVec& other);

  /// In-place AND with `other`. Sizes must match.
  BitVec& operator&=(const BitVec& other);

  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }

  bool operator==(const BitVec& other) const noexcept = default;

  /// Inner product over GF(2): parity of (this AND other). Sizes must match.
  bool dot(const BitVec& other) const;

  /// Concatenation: this followed by `other`.
  BitVec concat(const BitVec& other) const;

  /// Sub-vector [begin, begin+count).
  BitVec slice(std::size_t begin, std::size_t count) const;

  /// The low 64 elements as an integer (element i -> bit i). Requires size <= 64.
  std::uint64_t to_u64() const;

  /// String of '0'/'1' characters, element 0 first.
  std::string to_string() const;

  /// Positions of the ones, ascending.
  std::vector<std::size_t> support() const;

  /// FNV-style hash for use in unordered containers.
  std::size_t hash() const noexcept;

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;

  void check_index(std::size_t i) const;
  void clear_padding() noexcept;
};

/// std::hash adapter.
struct BitVecHash {
  std::size_t operator()(const BitVec& v) const noexcept { return v.hash(); }
};

}  // namespace sfqecc::code
