// Binary linear block code [n, k, d].
//
// A LinearCode owns its generator matrix and lazily derives the structures
// decoders and analyses need: parity-check matrix, minimum distance, weight
// distribution, syndrome/coset-leader table and a message-recovery map.
//
// Fast-path invariants (relied on by the decoders and the link-layer frame
// loop): whenever n <= 64 the constructor eagerly caches
//  * per-row generator masks   — encode is a handful of u64 XORs,
//  * a direct codeword lookup table when k <= 16 — encode is one load,
//  * per-row parity-check masks — syndrome is (n-k) AND+popcount ops,
//  * per-bit message-extraction masks — extract_message is k parity ops,
// so encode/syndrome/extract_message never run a generic Gf2Matrix product
// and never allocate (their BitVec results are <= 64 bits and stay inline).
// The u64 views (encode_u64 etc.) expose the same tables to callers that
// already hold words. Tables are immutable after construction, making the
// fast accessors safe for concurrent use across Monte-Carlo threads; the
// coset-leader table stays lazy (decoders build it eagerly in their
// constructors, before worker threads spawn).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "code/bitvec.hpp"
#include "code/gf2_matrix.hpp"

namespace sfqecc::code {

/// Binary linear [n, k] block code defined by a full-row-rank k x n generator.
class LinearCode {
 public:
  /// Codes with n at most this long get the cached u64 fast paths.
  static constexpr std::size_t kFastPathMaxN = 64;
  /// Codes with k at most this get a direct message -> codeword table.
  static constexpr std::size_t kCodewordLutMaxK = 16;

  /// `known_dmin` can be supplied when the construction guarantees it (e.g.
  /// extended Hamming has d = 4); otherwise dmin() computes it.
  LinearCode(std::string name, Gf2Matrix generator,
             std::optional<std::size_t> known_dmin = std::nullopt);

  const std::string& name() const noexcept { return name_; }
  std::size_t n() const noexcept { return generator_.cols(); }
  std::size_t k() const noexcept { return generator_.rows(); }
  std::size_t parity_bits() const noexcept { return n() - k(); }

  /// Code rate k / n.
  double rate() const noexcept {
    return static_cast<double>(k()) / static_cast<double>(n());
  }

  const Gf2Matrix& generator() const noexcept { return generator_; }

  /// Parity-check matrix H ((n-k) x n) with H c^T = 0 for every codeword c.
  const Gf2Matrix& parity_check() const;

  /// codeword = message x G. `message` must have k elements.
  BitVec encode(const BitVec& message) const;

  /// Syndrome H r^T of a received word (length n-k).
  BitVec syndrome(const BitVec& received) const;

  bool is_codeword(const BitVec& word) const;

  /// Recovers the message from a *valid* codeword (inverts the injective
  /// encoding map). The caller must pass a codeword; contract-checked.
  BitVec extract_message(const BitVec& codeword) const;

  // ---- u64 fast paths (require has_fast_path(), i.e. n <= 64) -------------

  /// True when the u64 table-driven paths below are available.
  bool has_fast_path() const noexcept { return n() <= kFastPathMaxN; }

  /// Codeword of the k-bit message packed in a u64 (bit i = message bit i).
  std::uint64_t encode_u64(std::uint64_t message) const noexcept {
    if (!codeword_lut_.empty()) return codeword_lut_[message];
    std::uint64_t cw = 0;
    while (message != 0) {
      cw ^= gen_row_masks_[static_cast<std::size_t>(std::countr_zero(message))];
      message &= message - 1;
    }
    return cw;
  }

  /// Syndrome of the n-bit received word packed in a u64.
  std::uint64_t syndrome_u64(std::uint64_t received) const noexcept {
    std::uint64_t s = 0;
    for (std::size_t i = 0; i < h_row_masks_.size(); ++i)
      s |= static_cast<std::uint64_t>(std::popcount(h_row_masks_[i] & received) & 1)
           << i;
    return s;
  }

  /// Message of a *valid* codeword packed in a u64 (not contract-checked).
  std::uint64_t extract_message_u64(std::uint64_t codeword) const noexcept {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < extract_masks_.size(); ++i)
      m |= static_cast<std::uint64_t>(std::popcount(extract_masks_[i] & codeword) & 1)
           << i;
    return m;
  }

  /// Coset leaders as packed words, indexed by syndrome value (requires
  /// has_fast_path(); same deterministic leaders as coset_leaders()).
  const std::vector<std::uint64_t>& coset_leader_words() const;

  // -------------------------------------------------------------------------

  /// Minimum Hamming distance. Computed by codeword enumeration (k <= 24)
  /// unless supplied at construction.
  std::size_t dmin() const;

  /// dmin if already known (supplied or previously computed), without
  /// triggering enumeration.
  std::optional<std::size_t> known_dmin() const noexcept { return dmin_; }

  /// Weight distribution A_0..A_n (requires k <= 24).
  const std::vector<std::size_t>& weight_distribution() const;

  /// Number of errors guaranteed correctable: floor((d-1)/2).
  std::size_t t_correct() const { return (dmin() - 1) / 2; }

  /// Number of errors guaranteed detectable in detect-only operation: d - 1.
  std::size_t t_detect() const { return dmin() - 1; }

  /// Minimum-weight coset leader for every syndrome, indexed by the syndrome
  /// value as an integer (requires n-k <= 28). Used by syndrome decoding.
  /// Leaders are chosen deterministically: lowest weight, then lexicographically
  /// smallest support.
  const std::vector<BitVec>& coset_leaders() const;

  /// Convenience: all 2^k codewords (requires k <= 24), indexed by message value.
  std::vector<BitVec> all_codewords() const;

 private:
  std::string name_;
  Gf2Matrix generator_;
  mutable std::optional<Gf2Matrix> parity_check_;
  mutable std::optional<std::size_t> dmin_;
  mutable std::optional<std::vector<std::size_t>> weight_distribution_;
  mutable std::optional<std::vector<BitVec>> coset_leaders_;
  mutable std::vector<std::uint64_t> coset_leader_words_;
  // Message recovery: m = c[pivot_columns] * decode_matrix_.
  mutable std::optional<Gf2Matrix> decode_matrix_;
  mutable std::vector<std::size_t> pivot_columns_;

  // u64 fast-path tables; empty when n > 64. Built in the constructor and
  // never mutated afterwards (safe to read concurrently).
  std::vector<std::uint64_t> gen_row_masks_;   ///< k masks, n bits each
  std::vector<std::uint64_t> h_row_masks_;     ///< n-k masks, n bits each
  std::vector<std::uint64_t> extract_masks_;   ///< k masks, n bits each
  std::vector<std::uint64_t> codeword_lut_;    ///< 2^k codewords when k <= 16

  void build_message_recovery() const;
  void build_fast_tables();
};

}  // namespace sfqecc::code
