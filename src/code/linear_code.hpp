// Binary linear block code [n, k, d].
//
// A LinearCode owns its generator matrix and lazily derives the structures
// decoders and analyses need: parity-check matrix, minimum distance, weight
// distribution, syndrome/coset-leader table and a message-recovery map.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "code/bitvec.hpp"
#include "code/gf2_matrix.hpp"

namespace sfqecc::code {

/// Binary linear [n, k] block code defined by a full-row-rank k x n generator.
class LinearCode {
 public:
  /// `known_dmin` can be supplied when the construction guarantees it (e.g.
  /// extended Hamming has d = 4); otherwise dmin() computes it.
  LinearCode(std::string name, Gf2Matrix generator,
             std::optional<std::size_t> known_dmin = std::nullopt);

  const std::string& name() const noexcept { return name_; }
  std::size_t n() const noexcept { return generator_.cols(); }
  std::size_t k() const noexcept { return generator_.rows(); }
  std::size_t parity_bits() const noexcept { return n() - k(); }

  /// Code rate k / n.
  double rate() const noexcept {
    return static_cast<double>(k()) / static_cast<double>(n());
  }

  const Gf2Matrix& generator() const noexcept { return generator_; }

  /// Parity-check matrix H ((n-k) x n) with H c^T = 0 for every codeword c.
  const Gf2Matrix& parity_check() const;

  /// codeword = message x G. `message` must have k elements.
  BitVec encode(const BitVec& message) const;

  /// Syndrome H r^T of a received word (length n-k).
  BitVec syndrome(const BitVec& received) const;

  bool is_codeword(const BitVec& word) const;

  /// Recovers the message from a *valid* codeword (inverts the injective
  /// encoding map). The caller must pass a codeword; contract-checked.
  BitVec extract_message(const BitVec& codeword) const;

  /// Minimum Hamming distance. Computed by codeword enumeration (k <= 24)
  /// unless supplied at construction.
  std::size_t dmin() const;

  /// dmin if already known (supplied or previously computed), without
  /// triggering enumeration.
  std::optional<std::size_t> known_dmin() const noexcept { return dmin_; }

  /// Weight distribution A_0..A_n (requires k <= 24).
  const std::vector<std::size_t>& weight_distribution() const;

  /// Number of errors guaranteed correctable: floor((d-1)/2).
  std::size_t t_correct() const { return (dmin() - 1) / 2; }

  /// Number of errors guaranteed detectable in detect-only operation: d - 1.
  std::size_t t_detect() const { return dmin() - 1; }

  /// Minimum-weight coset leader for every syndrome, indexed by the syndrome
  /// value as an integer (requires n-k <= 28). Used by syndrome decoding.
  /// Leaders are chosen deterministically: lowest weight, then lexicographically
  /// smallest support.
  const std::vector<BitVec>& coset_leaders() const;

  /// Convenience: all 2^k codewords (requires k <= 24), indexed by message value.
  std::vector<BitVec> all_codewords() const;

 private:
  std::string name_;
  Gf2Matrix generator_;
  mutable std::optional<Gf2Matrix> parity_check_;
  mutable std::optional<std::size_t> dmin_;
  mutable std::optional<std::vector<std::size_t>> weight_distribution_;
  mutable std::optional<std::vector<BitVec>> coset_leaders_;
  // Message recovery: m = c[pivot_columns] * decode_matrix_.
  mutable std::optional<Gf2Matrix> decode_matrix_;
  mutable std::vector<std::size_t> pivot_columns_;

  void build_message_recovery() const;
};

}  // namespace sfqecc::code
