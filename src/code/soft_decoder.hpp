// Soft-decision decoding for first-order Reed-Muller codes.
//
// The link's receiver slices each cable's analog level to a hard bit before
// decoding; a soft-decision decoder instead feeds the analog observations
// straight into the fast Hadamard transform (Be'ery & Snyders [34], cited by
// the paper), recovering the ~2 dB that hard slicing throws away. This is an
// extension beyond the paper's MATLAB hard-decision flow; the
// `bench/soft_decoding` harness quantifies the gain on the paper's RM(1,3).
#pragma once

#include <vector>

#include "code/decoder.hpp"

namespace sfqecc::code {

/// Maximum-likelihood soft decoding of RM(1,m) over an AWGN-like channel.
/// Observations are bipolar: y_j > 0 favours bit 0, y_j < 0 favours bit 1,
/// |y_j| is the reliability (e.g. y = 1 - 2 * level for a unit DC swing).
class RmSoftDecoder {
 public:
  /// `code` must be RM(1,m) with rows ordered (1, x1, ..., xm).
  explicit RmSoftDecoder(const LinearCode& code);

  /// Returns the ML codeword estimate; `bipolar` must have n entries.
  DecodeResult decode(const std::vector<double>& bipolar) const;

  /// Convenience: hard-decision input with per-bit erasures marked by 0.0.
  DecodeResult decode_bits(const BitVec& received) const;

  const LinearCode& base_code() const noexcept { return code_; }

 private:
  const LinearCode& code_;
  std::size_t m_;
};

}  // namespace sfqecc::code
