// Soft-decision decoding for first-order Reed-Muller codes.
//
// The link's receiver slices each cable's analog level to a hard bit before
// decoding; a soft-decision decoder instead feeds the analog observations
// straight into the fast Hadamard transform (Be'ery & Snyders [34], cited by
// the paper), recovering the ~2 dB that hard slicing throws away. This is an
// extension beyond the paper's MATLAB hard-decision flow; the
// `bench/soft_decoding` harness quantifies the gain on the paper's RM(1,3).
#pragma once

#include <vector>

#include "code/decoder.hpp"

namespace sfqecc::code {

/// Maximum-likelihood soft decoding of RM(1,m) over an AWGN-like channel.
/// Observations are bipolar: y_j > 0 favours bit 0, y_j < 0 favours bit 1,
/// |y_j| is the reliability (e.g. y = 1 - 2 * level for a unit DC swing).
class RmSoftDecoder {
 public:
  /// `code` must be RM(1,m) with rows ordered (1, x1, ..., xm).
  explicit RmSoftDecoder(const LinearCode& code);

  /// Returns the ML codeword estimate; `bipolar` must have n entries.
  DecodeResult decode(const std::vector<double>& bipolar) const;

  /// Convenience: hard-decision input with per-bit erasures marked by 0.0.
  DecodeResult decode_bits(const BitVec& received) const;

  const LinearCode& base_code() const noexcept { return code_; }

 private:
  const LinearCode& code_;
  std::size_t m_;
};

/// Hard-input adapter behind the uniform code::Decoder interface: slices the
/// received bits to ±1 reliabilities and runs the soft FHT decoder. On hard
/// bits this is exactly ML decoding with the soft decoder's tie-breaking;
/// it exists so "/soft" schemes plug into the data link and the scheme
/// catalog. `code` is borrowed and must outlive the decoder.
class RmSoftBitDecoder final : public Decoder {
 public:
  explicit RmSoftBitDecoder(const LinearCode& code) : soft_(code) {}
  DecodeResult decode(const BitVec& received) const override {
    return soft_.decode_bits(received);
  }
  const LinearCode& base_code() const noexcept override {
    return soft_.base_code();
  }
  std::string name() const override {
    return "soft-fht(" + soft_.base_code().name() + ")";
  }

 private:
  RmSoftDecoder soft_;
};

}  // namespace sfqecc::code
