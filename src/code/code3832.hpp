// The (38,32) linear block code of Peng et al. [14] — the prior-art SFQ ECC
// encoder the paper compares against. A 32-bit message with six parity bits,
// realized here as a shortened Hamming(63,57) code: the parity-check columns
// are 38 distinct nonzero 6-bit values, so dmin = 3 (single-error correction;
// double errors are detectable when correction is not attempted).
#pragma once

#include "code/linear_code.hpp"

namespace sfqecc::code {

/// The (38,32) baseline code. Systematic: bits 0..31 are the message, bits
/// 32..37 the parity. Data columns are chosen low-weight-first (all fifteen
/// weight-2 values then seventeen weight-3 values in ascending order) to keep
/// the encoder small, mirroring the lightweight-encoder goal of [14].
LinearCode code3832();

}  // namespace sfqecc::code
