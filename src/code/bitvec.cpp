#include "code/bitvec.hpp"

#include <bit>

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }

}  // namespace

BitVec::BitVec(std::size_t size) : size_(size), words_(words_for(size), 0) {}

BitVec BitVec::from_u64(std::size_t size, std::uint64_t value) {
  expects(size <= kWordBits, "from_u64 supports at most 64 bits");
  BitVec v(size);
  if (size > 0) {
    const std::uint64_t mask =
        size == kWordBits ? ~0ULL : ((1ULL << size) - 1);
    v.words_[0] = value & mask;
  }
  return v;
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    expects(s[i] == '0' || s[i] == '1', "BitVec string must contain only 0/1");
    if (s[i] == '1') v.set(i, true);
  }
  return v;
}

void BitVec::check_index(std::size_t i) const {
  expects(i < size_, "BitVec index out of range");
}

bool BitVec::get(std::size_t i) const {
  check_index(i);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  const std::uint64_t mask = 1ULL << (i % kWordBits);
  if (value)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void BitVec::flip(std::size_t i) {
  check_index(i);
  words_[i / kWordBits] ^= 1ULL << (i % kWordBits);
}

std::size_t BitVec::weight() const noexcept {
  std::size_t w = 0;
  for (std::uint64_t word : words_) w += static_cast<std::size_t>(std::popcount(word));
  return w;
}

bool BitVec::is_zero() const noexcept {
  for (std::uint64_t word : words_)
    if (word != 0) return false;
  return true;
}

bool BitVec::parity() const noexcept { return weight() % 2 != 0; }

void BitVec::clear_padding() noexcept {
  const std::size_t rem = size_ % kWordBits;
  if (rem != 0 && !words_.empty()) words_.back() &= (1ULL << rem) - 1;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  expects(size_ == other.size_, "BitVec XOR size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  expects(size_ == other.size_, "BitVec AND size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

bool BitVec::dot(const BitVec& other) const {
  expects(size_ == other.size_, "BitVec dot size mismatch");
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    acc ^= words_[w] & other.words_[w];
  return std::popcount(acc) % 2 != 0;
}

BitVec BitVec::concat(const BitVec& other) const {
  BitVec out(size_ + other.size_);
  for (std::size_t i = 0; i < size_; ++i) out.set(i, get(i));
  for (std::size_t i = 0; i < other.size_; ++i) out.set(size_ + i, other.get(i));
  return out;
}

BitVec BitVec::slice(std::size_t begin, std::size_t count) const {
  expects(begin + count <= size_, "BitVec slice out of range");
  BitVec out(count);
  for (std::size_t i = 0; i < count; ++i) out.set(i, get(begin + i));
  return out;
}

std::uint64_t BitVec::to_u64() const {
  expects(size_ <= kWordBits, "to_u64 supports at most 64 bits");
  return words_.empty() ? 0 : words_[0];
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

std::vector<std::size_t> BitVec::support() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) out.push_back(i);
  return out;
}

std::size_t BitVec::hash() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ size_;
  for (std::uint64_t word : words_) {
    h ^= word;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace sfqecc::code
