#include "code/bitvec.hpp"

#include "util/expect.hpp"

namespace sfqecc::code {

BitVec BitVec::from_u64(std::size_t size, std::uint64_t value) {
  expects(size <= kWordBits, "from_u64 supports at most 64 bits");
  BitVec v(size);
  if (size > 0) {
    const std::uint64_t mask = size == kWordBits ? ~0ULL : ((1ULL << size) - 1);
    v.word0_ = value & mask;
  }
  return v;
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    expects(s[i] == '0' || s[i] == '1', "BitVec string must contain only 0/1");
    if (s[i] == '1') v.set(i, true);
  }
  return v;
}

void BitVec::check_index(std::size_t i) const {
  expects(i < size_, "BitVec index out of range");
}

void BitVec::check_same_size(const BitVec& other) const {
  expects(size_ == other.size_, "BitVec size mismatch");
}

BitVec BitVec::concat(const BitVec& other) const {
  BitVec out(size_ + other.size_);
  std::uint64_t* dst = out.words();
  const std::uint64_t* a = words();
  for (std::size_t w = 0, count = word_count(); w < count; ++w) dst[w] = a[w];
  // OR `other`'s words in, shifted to start at bit offset size_.
  const std::uint64_t* b = other.words();
  const std::size_t word_off = size_ / kWordBits;
  const std::size_t bit_off = size_ % kWordBits;
  const std::size_t out_words = out.word_count();
  for (std::size_t w = 0, count = other.word_count(); w < count; ++w) {
    dst[word_off + w] |= b[w] << bit_off;
    if (bit_off != 0 && word_off + w + 1 < out_words)
      dst[word_off + w + 1] |= b[w] >> (kWordBits - bit_off);
  }
  out.clear_padding();
  return out;
}

BitVec BitVec::slice(std::size_t begin, std::size_t count) const {
  expects(begin + count <= size_, "BitVec slice out of range");
  BitVec out(count);
  if (count == 0) return out;
  std::uint64_t* dst = out.words();
  const std::uint64_t* src = words();
  const std::size_t word_off = begin / kWordBits;
  const std::size_t bit_off = begin % kWordBits;
  const std::size_t src_words = word_count();
  for (std::size_t w = 0, out_words = out.word_count(); w < out_words; ++w) {
    std::uint64_t v = src[word_off + w] >> bit_off;
    if (bit_off != 0 && word_off + w + 1 < src_words)
      v |= src[word_off + w + 1] << (kWordBits - bit_off);
    dst[w] = v;
  }
  out.clear_padding();
  return out;
}

std::uint64_t BitVec::to_u64() const {
  expects(size_ <= kWordBits, "to_u64 supports at most 64 bits");
  return word0_;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

std::vector<std::size_t> BitVec::support() const {
  std::vector<std::size_t> out;
  const std::uint64_t* w = words();
  for (std::size_t i = 0, count = word_count(); i < count; ++i) {
    std::uint64_t word = w[i];
    while (word != 0) {
      out.push_back(i * kWordBits + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace sfqecc::code
