#include "code/bch.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "util/expect.hpp"

namespace sfqecc::code {

BchCode::BchCode(unsigned m, std::size_t designed_distance)
    : field_(m),
      n_((std::size_t{1} << m) - 1),
      delta_(designed_distance) {
  expects(designed_distance >= 3 && designed_distance % 2 == 1,
          "designed distance must be odd and >= 3");
  expects(designed_distance <= n_, "designed distance exceeds length");

  // g(x) = lcm of the minimal polynomials of alpha^1 .. alpha^(delta-1).
  // Conjugate exponents share a minimal polynomial; collect distinct classes.
  std::set<std::uint32_t> class_reps;
  Gf2Poly g{1};
  for (std::size_t e = 1; e < delta_; ++e) {
    // Representative: smallest exponent in the conjugacy class of e.
    std::uint32_t cur = static_cast<std::uint32_t>(e % field_.order());
    std::uint32_t rep = cur;
    for (;;) {
      cur = static_cast<std::uint32_t>((2ULL * cur) % field_.order());
      if (cur == e % field_.order()) break;
      rep = std::min(rep, cur);
    }
    if (!class_reps.insert(rep).second) continue;
    g = poly_mul(g, minimal_polynomial(field_, rep));
  }
  gen_ = g;
  const std::size_t deg = poly_degree(gen_);
  expects(deg < n_, "generator polynomial too large");
  k_ = n_ - deg;
}

BchCode make_bch(std::size_t n, std::size_t k) {
  unsigned m = 0;
  while ((std::size_t{1} << m) - 1 < n) ++m;
  expects((std::size_t{1} << m) - 1 == n && m >= 3,
          "BCH length must be 2^m - 1 with m >= 3");
  expects(k >= 1 && k < n, "BCH dimension must satisfy 1 <= k < n");
  // The dimension is monotone non-increasing in the designed distance, but
  // consecutive odd distances can share a generator (the conjugacy classes
  // already cover the larger root set), so scan rather than bisect.
  for (std::size_t delta = 3; delta <= n; delta += 2) {
    const BchCode code(m, delta);
    if (code.k() == k) return code;
    if (code.k() < k) break;
  }
  throw ContractViolation("no narrow-sense BCH(" + std::to_string(n) + "," +
                          std::to_string(k) + ") exists (valid dimensions are "
                          "gaps in the conjugacy-class ladder)");
}

BchDecoder::BchDecoder(BchCode bch, const LinearCode& code)
    : bch_(std::move(bch)), code_(code) {
  expects(bch_.n() == code_.n() && bch_.k() == code_.k(),
          "BchDecoder reference code dimensions mismatch");
}

DecodeResult BchDecoder::decode(const BitVec& received) const {
  return bch_.decode(received);
}

std::string BchDecoder::name() const {
  return "bm(" + code_.name() + ",t=" + std::to_string(bch_.t()) + ")";
}

BitVec BchCode::parity_of(const BitVec& message) const {
  // parity(x) = x^(n-k) * m(x) mod g(x), with message bit i the coefficient
  // of x^i (so the codeword is (message | parity) in ascending positions).
  const std::size_t deg = n_ - k_;
  Gf2Poly shifted(deg + k_, 0);
  for (std::size_t i = 0; i < k_; ++i)
    if (message.get(i)) shifted[deg + i] = 1;
  const Gf2Poly rem = poly_mod(shifted, gen_);
  BitVec parity(deg);
  for (std::size_t i = 0; i < deg && i < rem.size(); ++i)
    if (rem[i]) parity.set(i, true);
  return parity;
}

BitVec BchCode::encode(const BitVec& message) const {
  expects(message.size() == k_, "message length mismatch");
  return message.concat(parity_of(message));
}

LinearCode BchCode::to_linear_code() const {
  Gf2Matrix g(k_, n_);
  for (std::size_t i = 0; i < k_; ++i) {
    BitVec unit(k_);
    unit.set(i, true);
    const BitVec cw = encode(unit);
    for (std::size_t c = 0; c < n_; ++c) g.set(i, c, cw.get(c));
  }
  return LinearCode("BCH(" + std::to_string(n_) + "," + std::to_string(k_) + ")",
                    std::move(g),
                    k_ <= 24 ? std::optional<std::size_t>{} : std::optional<std::size_t>{delta_});
}

DecodeResult BchCode::decode(const BitVec& received) const {
  expects(received.size() == n_, "received length mismatch");

  // Codeword positions map to polynomial coefficients directly, but note the
  // systematic layout: position i (message area) is the coefficient of
  // x^(n-k+i)... To keep evaluation simple we evaluate the received word with
  // position j as the coefficient of x^perm(j), where perm matches encode():
  // encode() produced (message | parity) with message bit i at x^(deg+i) and
  // parity bit p at x^p. Build the coefficient view first.
  const std::size_t deg = n_ - k_;
  std::vector<std::uint8_t> coeff(n_, 0);
  for (std::size_t i = 0; i < k_; ++i) coeff[deg + i] = received.get(i) ? 1 : 0;
  for (std::size_t p = 0; p < deg; ++p) coeff[p] = received.get(k_ + p) ? 1 : 0;

  // Syndromes S_j = r(alpha^j), j = 1 .. delta-1.
  const std::size_t ns = delta_ - 1;
  std::vector<std::uint32_t> syn(ns, 0);
  bool all_zero = true;
  for (std::size_t j = 1; j <= ns; ++j) {
    std::uint32_t s = 0;
    for (std::size_t i = 0; i < n_; ++i)
      if (coeff[i]) s ^= field_.alpha_pow(static_cast<long long>(i * j));
    syn[j - 1] = s;
    all_zero = all_zero && s == 0;
  }

  DecodeResult result;
  if (all_zero) {
    result.status = DecodeStatus::kNoError;
    result.codeword = received;
    result.message = received.slice(0, k_);
    return result;
  }

  // Berlekamp-Massey: find the error-locator polynomial Lambda.
  std::vector<std::uint32_t> lambda{1}, b{1};
  std::size_t l = 0;
  std::uint32_t bcoef = 1;
  std::size_t shift = 1;
  for (std::size_t r = 0; r < ns; ++r) {
    std::uint32_t delta_r = syn[r];
    for (std::size_t i = 1; i <= l && i < lambda.size(); ++i)
      if (lambda[i] != 0 && r >= i)
        delta_r ^= field_.mul(lambda[i], syn[r - i]);
    if (delta_r == 0) {
      ++shift;
    } else if (2 * l <= r) {
      std::vector<std::uint32_t> t = lambda;
      const std::uint32_t scale = field_.div(delta_r, bcoef);
      if (lambda.size() < b.size() + shift) lambda.resize(b.size() + shift, 0);
      for (std::size_t i = 0; i < b.size(); ++i)
        lambda[i + shift] ^= field_.mul(scale, b[i]);
      l = r + 1 - l;
      b = std::move(t);
      bcoef = delta_r;
      shift = 1;
    } else {
      const std::uint32_t scale = field_.div(delta_r, bcoef);
      if (lambda.size() < b.size() + shift) lambda.resize(b.size() + shift, 0);
      for (std::size_t i = 0; i < b.size(); ++i)
        lambda[i + shift] ^= field_.mul(scale, b[i]);
      ++shift;
    }
  }
  while (!lambda.empty() && lambda.back() == 0) lambda.pop_back();
  const std::size_t num_errors = lambda.size() - 1;

  result.codeword = received;
  if (num_errors == 0 || num_errors > t()) {
    result.status = DecodeStatus::kDetected;
    result.message = received.slice(0, k_);
    return result;
  }

  // Chien search: roots alpha^(-i) of Lambda mark error positions i (in the
  // coefficient view).
  std::vector<std::size_t> error_positions;
  for (std::size_t i = 0; i < n_; ++i) {
    std::uint32_t v = 0;
    for (std::size_t d = 0; d < lambda.size(); ++d)
      if (lambda[d] != 0)
        v ^= field_.mul(lambda[d],
                        field_.alpha_pow(-static_cast<long long>(i * d)));
    if (v == 0) error_positions.push_back(i);
  }
  if (error_positions.size() != num_errors) {
    result.status = DecodeStatus::kDetected;
    result.message = received.slice(0, k_);
    return result;
  }

  // Map coefficient positions back to codeword bit positions and correct.
  for (std::size_t pos : error_positions) {
    const std::size_t bit = pos >= deg ? pos - deg : k_ + pos;
    result.codeword.flip(bit);
  }
  result.bits_flipped = error_positions.size();
  result.status = DecodeStatus::kCorrected;
  result.message = result.codeword.slice(0, k_);
  return result;
}

}  // namespace sfqecc::code
