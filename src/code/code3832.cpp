#include "code/code3832.hpp"

#include <bit>
#include <vector>

#include "util/expect.hpp"

namespace sfqecc::code {

LinearCode code3832() {
  constexpr std::size_t r = 6;
  constexpr std::size_t k = 32;
  constexpr std::size_t n = 38;

  // Data columns: nonzero non-unit 6-bit values, ascending weight then value.
  std::vector<std::size_t> data_columns;
  for (std::size_t w = 2; w <= r && data_columns.size() < k; ++w)
    for (std::size_t v = 1; v < (std::size_t{1} << r) && data_columns.size() < k; ++v)
      if (std::popcount(v) == static_cast<int>(w)) data_columns.push_back(v);
  ensures(data_columns.size() == k, "not enough parity-check columns");

  Gf2Matrix g(k, n);
  for (std::size_t i = 0; i < k; ++i) {
    g.set(i, i, true);
    for (std::size_t j = 0; j < r; ++j)
      if ((data_columns[i] >> j) & 1) g.set(i, k + j, true);
  }
  // dmin = 3: all 38 parity-check columns are distinct and nonzero (>= 3), and
  // e.g. columns 0b000011, 0b000101, 0b000110 sum to zero (== 3); verified by
  // the unit tests since k = 32 is too large to enumerate.
  return LinearCode("(38,32)", std::move(g), 3);
}

}  // namespace sfqecc::code
