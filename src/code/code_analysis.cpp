#include "code/code_analysis.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

/// Calls `fn` with every length-n pattern of the given weight, in
/// lexicographic order of support.
template <typename Fn>
void for_each_pattern(std::size_t n, std::size_t weight, Fn&& fn) {
  std::vector<std::size_t> idx(weight);
  for (std::size_t i = 0; i < weight; ++i) idx[i] = i;
  if (weight > n) return;
  while (true) {
    BitVec e(n);
    for (std::size_t i : idx) e.set(i, true);
    fn(e);
    std::size_t pos = weight;
    while (pos > 0 && idx[pos - 1] == n - weight + pos - 1) --pos;
    if (pos == 0) break;
    ++idx[pos - 1];
    for (std::size_t i = pos; i < weight; ++i) idx[i] = idx[i - 1] + 1;
  }
}

}  // namespace

ErrorPatternAnalysis analyze_error_patterns(const Decoder& decoder, std::size_t max_weight) {
  const LinearCode& code = decoder.base_code();
  const std::size_t n = code.n();
  if (max_weight == 0) max_weight = std::min(n, code.dmin() + 1);
  expects(max_weight <= n, "max_weight exceeds block length");

  ErrorPatternAnalysis out;
  out.decoder_name = decoder.name();
  out.dmin = code.dmin();

  const BitVec zero_message(code.k());
  for (std::size_t w = 1; w <= max_weight; ++w) {
    WeightClassStats stats;
    stats.weight = w;
    for_each_pattern(n, w, [&](const BitVec& e) {
      ++stats.patterns;
      if (code.is_codeword(e)) {
        // The channel maps one codeword onto another: no decoder can react.
        ++stats.undetected;
        return;
      }
      const DecodeResult r = decoder.decode(e);
      if (r.status == DecodeStatus::kDetected)
        ++stats.detected;
      else if (r.message == zero_message)
        ++stats.corrected;
      else
        ++stats.miscorrected;
    });
    out.by_weight.push_back(stats);
  }

  bool all_corrected = true, all_safe = true;
  for (const WeightClassStats& s : out.by_weight) {
    all_corrected = all_corrected && s.corrected == s.patterns;
    all_safe = all_safe && s.miscorrected == 0 && s.undetected == 0;
    if (all_corrected) out.guaranteed_correct = s.weight;
    if (all_safe) out.guaranteed_safe = s.weight;
    if (s.corrected > 0) out.best_correct = s.weight;
    if (s.corrected + s.detected > 0) out.best_safe = s.weight;
  }
  return out;
}

std::vector<DetectionCoverage> detection_coverage(const LinearCode& code,
                                                  std::size_t max_weight) {
  expects(max_weight <= code.n(), "max_weight exceeds block length");
  std::vector<DetectionCoverage> out;
  for (std::size_t w = 1; w <= max_weight; ++w) {
    DetectionCoverage cov;
    cov.weight = w;
    for_each_pattern(code.n(), w, [&](const BitVec& e) {
      ++cov.patterns;
      if (!code.is_codeword(e)) ++cov.detected;
    });
    out.push_back(cov);
  }
  return out;
}

}  // namespace sfqecc::code
