#include "code/macwilliams.hpp"

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

/// Binomial coefficient as int64; n <= 60 stays comfortably in range for the
/// block lengths this library handles.
std::int64_t binom(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::int64_t r = 1;
  for (std::size_t i = 0; i < k; ++i)
    r = r * static_cast<std::int64_t>(n - i) / static_cast<std::int64_t>(i + 1);
  return r;
}

}  // namespace

std::int64_t krawtchouk(std::size_t n, std::size_t j, std::size_t i) {
  std::int64_t sum = 0;
  for (std::size_t l = 0; l <= j; ++l) {
    const std::int64_t term = binom(i, l) * binom(n - i, j - l);
    sum += (l % 2 == 0) ? term : -term;
  }
  return sum;
}

std::vector<std::size_t> macwilliams_transform(
    const std::vector<std::size_t>& weight_distribution, std::size_t n, std::size_t k) {
  expects(weight_distribution.size() == n + 1, "weight distribution size mismatch");
  expects(n <= 48, "MacWilliams transform limited to n <= 48 (int64 safety)");
  std::size_t total = 0;
  for (std::size_t a : weight_distribution) total += a;
  expects(total == (std::size_t{1} << k), "weight distribution must sum to 2^k");

  std::vector<std::size_t> dual(n + 1, 0);
  for (std::size_t j = 0; j <= n; ++j) {
    std::int64_t sum = 0;
    for (std::size_t i = 0; i <= n; ++i) {
      if (weight_distribution[i] == 0) continue;
      sum += static_cast<std::int64_t>(weight_distribution[i]) * krawtchouk(n, j, i);
    }
    const std::int64_t denom = std::int64_t{1} << k;
    ensures(sum >= 0 && sum % denom == 0, "MacWilliams sum must divide by 2^k");
    dual[j] = static_cast<std::size_t>(sum / denom);
  }
  return dual;
}

std::vector<std::size_t> dual_weight_distribution(const LinearCode& code) {
  return macwilliams_transform(code.weight_distribution(), code.n(), code.k());
}

}  // namespace sfqecc::code
