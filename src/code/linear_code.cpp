#include "code/linear_code.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

constexpr std::size_t kMaxEnumerableK = 24;       // 16M codewords
constexpr std::size_t kMaxSyndromeBits = 28;      // 256M-entry table cap

}  // namespace

LinearCode::LinearCode(std::string name, Gf2Matrix generator,
                       std::optional<std::size_t> known_dmin)
    : name_(std::move(name)), generator_(std::move(generator)), dmin_(known_dmin) {
  expects(generator_.rows() > 0 && generator_.cols() > 0, "empty generator matrix");
  expects(generator_.rows() <= generator_.cols(), "generator must have k <= n");
  expects(generator_.rank() == generator_.rows(), "generator must have full row rank");
  build_fast_tables();
}

const Gf2Matrix& LinearCode::parity_check() const {
  if (!parity_check_) {
    // Rows of H are a basis of the dual code: the null space of the map
    // x -> G x (vectors orthogonal to every generator row).
    parity_check_ = generator_.null_space();
    ensures(parity_check_->rows() == parity_bits(), "parity check rank mismatch");
  }
  return *parity_check_;
}

void LinearCode::build_fast_tables() {
  if (!has_fast_path()) return;
  gen_row_masks_.resize(k());
  for (std::size_t i = 0; i < k(); ++i) gen_row_masks_[i] = generator_.row(i).to_u64();

  const Gf2Matrix& h = parity_check();
  h_row_masks_.resize(parity_bits());
  for (std::size_t i = 0; i < parity_bits(); ++i) h_row_masks_[i] = h.row(i).to_u64();

  // m_i = XOR_j c[pivot_j] * D[j][i]  ==>  parity(c & extract_masks_[i]).
  build_message_recovery();
  extract_masks_.assign(k(), 0);
  for (std::size_t j = 0; j < k(); ++j)
    for (std::size_t i = 0; i < k(); ++i)
      if (decode_matrix_->get(j, i))
        extract_masks_[i] |= std::uint64_t{1} << pivot_columns_[j];

  if (k() <= kCodewordLutMaxK) {
    // Gray-code enumeration: one row XOR per table entry.
    codeword_lut_.assign(std::size_t{1} << k(), 0);
    std::uint64_t current = 0;
    std::uint64_t prev_gray = 0;
    const std::uint64_t total = std::uint64_t{1} << k();
    for (std::uint64_t i = 1; i < total; ++i) {
      const std::uint64_t gray = i ^ (i >> 1);
      current ^= gen_row_masks_[static_cast<std::size_t>(
          std::countr_zero(gray ^ prev_gray))];
      prev_gray = gray;
      codeword_lut_[gray] = current;
    }
  }
}

BitVec LinearCode::encode(const BitVec& message) const {
  expects(message.size() == k(), "message length mismatch");
  if (has_fast_path()) return BitVec::from_u64(n(), encode_u64(message.to_u64()));
  return generator_.mul_left(message);
}

BitVec LinearCode::syndrome(const BitVec& received) const {
  expects(received.size() == n(), "received word length mismatch");
  if (has_fast_path())
    return BitVec::from_u64(parity_bits(), syndrome_u64(received.to_u64()));
  return parity_check().mul_right(received);
}

bool LinearCode::is_codeword(const BitVec& word) const {
  expects(word.size() == n(), "received word length mismatch");
  if (has_fast_path()) return syndrome_u64(word.to_u64()) == 0;
  return syndrome(word).is_zero();
}

void LinearCode::build_message_recovery() const {
  if (decode_matrix_) return;
  // Pivot columns of G form an information set; the k x k submatrix there is
  // invertible and m = c[pivots] * inv(G[:, pivots]).
  const Gf2Matrix r = generator_.rref();
  pivot_columns_.clear();
  std::size_t row = 0;
  for (std::size_t c = 0; c < generator_.cols() && row < k(); ++c) {
    if (r.get(row, c)) {
      bool is_pivot = true;
      for (std::size_t rr = 0; rr < k(); ++rr)
        if (r.get(rr, c) != (rr == row)) {
          is_pivot = false;
          break;
        }
      if (is_pivot) {
        pivot_columns_.push_back(c);
        ++row;
      }
    }
  }
  ensures(pivot_columns_.size() == k(), "failed to find information set");
  decode_matrix_ = generator_.select_columns(pivot_columns_).inverse();
}

BitVec LinearCode::extract_message(const BitVec& codeword) const {
  expects(codeword.size() == n(), "codeword length mismatch");
  expects(is_codeword(codeword), "extract_message requires a valid codeword");
  if (has_fast_path())
    return BitVec::from_u64(k(), extract_message_u64(codeword.to_u64()));
  build_message_recovery();
  BitVec restricted(k());
  for (std::size_t i = 0; i < k(); ++i) restricted.set(i, codeword.get(pivot_columns_[i]));
  return decode_matrix_->mul_left(restricted);
}

std::size_t LinearCode::dmin() const {
  if (dmin_) return *dmin_;
  const auto& dist = weight_distribution();
  for (std::size_t w = 1; w < dist.size(); ++w) {
    if (dist[w] > 0) {
      dmin_ = w;
      return w;
    }
  }
  throw ContractViolation("code has no nonzero codeword");
}

const std::vector<std::size_t>& LinearCode::weight_distribution() const {
  if (!weight_distribution_) {
    expects(k() <= kMaxEnumerableK, "weight distribution needs k <= 24");
    std::vector<std::size_t> dist(n() + 1, 0);
    // Gray-code enumeration: flip one generator row per step.
    BitVec current(n());
    ++dist[0];
    const std::uint64_t total = 1ULL << k();
    std::uint64_t prev_gray = 0;
    for (std::uint64_t i = 1; i < total; ++i) {
      const std::uint64_t gray = i ^ (i >> 1);
      const std::uint64_t changed = gray ^ prev_gray;
      prev_gray = gray;
      std::size_t row = 0;
      std::uint64_t bit = changed;
      while ((bit & 1) == 0) {
        bit >>= 1;
        ++row;
      }
      current ^= generator_.row(row);
      ++dist[current.weight()];
    }
    weight_distribution_ = std::move(dist);
  }
  return *weight_distribution_;
}

const std::vector<BitVec>& LinearCode::coset_leaders() const {
  if (!coset_leaders_) {
    const std::size_t sbits = parity_bits();
    expects(sbits <= kMaxSyndromeBits, "syndrome table too large");
    const std::size_t table_size = std::size_t{1} << sbits;
    std::vector<BitVec> leaders(table_size);
    std::vector<bool> found(table_size, false);
    std::size_t remaining = table_size;

    // Zero syndrome -> zero leader.
    leaders[0] = BitVec(n());
    found[0] = true;
    --remaining;

    // Precompute the syndrome of each single-bit error; pattern syndromes are
    // XORs of these. Enumerate patterns by increasing weight so the first
    // pattern seen for a syndrome is a minimum-weight leader; iterating
    // support positions in ascending lexicographic order makes the choice
    // deterministic.
    std::vector<std::uint64_t> column_syndromes(n());
    for (std::size_t i = 0; i < n(); ++i) {
      BitVec e(n());
      e.set(i, true);
      column_syndromes[i] = syndrome(e).to_u64();
    }

    std::vector<std::size_t> idx;
    for (std::size_t weight = 1; weight <= n() && remaining > 0; ++weight) {
      idx.resize(weight);
      for (std::size_t i = 0; i < weight; ++i) idx[i] = i;
      while (true) {
        std::uint64_t s = 0;
        for (std::size_t i : idx) s ^= column_syndromes[i];
        if (!found[s]) {
          BitVec e(n());
          for (std::size_t i : idx) e.set(i, true);
          leaders[s] = e;
          found[s] = true;
          --remaining;
          if (remaining == 0) break;
        }
        // Next combination.
        std::size_t pos = weight;
        while (pos > 0 && idx[pos - 1] == n() - weight + pos - 1) --pos;
        if (pos == 0) break;
        ++idx[pos - 1];
        for (std::size_t i = pos; i < weight; ++i) idx[i] = idx[i - 1] + 1;
      }
    }
    ensures(remaining == 0, "failed to cover all syndromes");
    coset_leaders_ = std::move(leaders);
    if (has_fast_path()) {
      coset_leader_words_.resize(table_size);
      for (std::size_t s = 0; s < table_size; ++s)
        coset_leader_words_[s] = (*coset_leaders_)[s].to_u64();
    }
  }
  return *coset_leaders_;
}

const std::vector<std::uint64_t>& LinearCode::coset_leader_words() const {
  expects(has_fast_path(), "coset_leader_words requires n <= 64");
  (void)coset_leaders();
  return coset_leader_words_;
}

std::vector<BitVec> LinearCode::all_codewords() const {
  expects(k() <= kMaxEnumerableK, "codeword enumeration needs k <= 24");
  const std::uint64_t total = 1ULL << k();
  // Same Gray-code row-XOR walk as weight_distribution(): one generator-row
  // XOR per codeword instead of a full encode per message.
  std::vector<BitVec> out(total);
  BitVec current(n());
  out[0] = current;
  std::uint64_t prev_gray = 0;
  for (std::uint64_t i = 1; i < total; ++i) {
    const std::uint64_t gray = i ^ (i >> 1);
    current ^= generator_.row(
        static_cast<std::size_t>(std::countr_zero(gray ^ prev_gray)));
    prev_gray = gray;
    out[gray] = current;
  }
  return out;
}

}  // namespace sfqecc::code
