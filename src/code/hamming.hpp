// Hamming codes.
//
// Provides the general Hamming(2^r-1, 2^r-1-r) family, the overall-parity
// extension that turns any code into an even-weight code (dmin 3 -> 4 for
// Hamming), and the exact generator layouts used in the paper:
//  * paper_hamming74(): Eq. (3) without c8 — codeword (c1..c7), message (m1..m4)
//  * paper_hamming84(): Eq. (1) — the extended Hamming(8,4) with c8 = overall parity
#pragma once

#include <cstddef>

#include "code/linear_code.hpp"

namespace sfqecc::code {

/// General Hamming code with r >= 2 parity bits: [2^r-1, 2^r-1-r, 3].
/// Systematic layout: data bits first, parity bits last; parity-check columns
/// are the nonzero r-bit values with non-unit columns (data) in ascending
/// integer order followed by unit columns (parity).
LinearCode hamming_code(std::size_t r);

/// Extends `base` by one overall parity bit (appended as the last position),
/// making every codeword even-weight. For a code with odd dmin this raises
/// dmin by one.
LinearCode extend_with_overall_parity(const LinearCode& base);

/// The paper's Hamming(7,4): c1=m1^m2^m4, c2=m1^m3^m4, c3=m1, c4=m2^m3^m4,
/// c5=m2, c6=m3, c7=m4 (bit i of the codeword is c_{i+1}).
LinearCode paper_hamming74();

/// The paper's Hamming(8,4) (Eq. (1)); c8 = m1^m2^m3 equals the overall
/// parity of c1..c7, so this is the extended Hamming code with dmin 4.
LinearCode paper_hamming84();

}  // namespace sfqecc::code
