#include "code/gf2_matrix.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace sfqecc::code {

Gf2Matrix::Gf2Matrix(std::size_t rows, std::size_t cols)
    : cols_(cols), rows_(rows, BitVec(cols)) {}

Gf2Matrix Gf2Matrix::from_rows(std::initializer_list<std::initializer_list<int>> rows) {
  Gf2Matrix m;
  std::size_t r = 0;
  for (const auto& row : rows) {
    if (r == 0) {
      m = Gf2Matrix(rows.size(), row.size());
    } else {
      expects(row.size() == m.cols_, "ragged initializer for Gf2Matrix");
    }
    std::size_t c = 0;
    for (int v : row) {
      expects(v == 0 || v == 1, "Gf2Matrix entries must be 0 or 1");
      m.set(r, c++, v == 1);
    }
    ++r;
  }
  return m;
}

Gf2Matrix Gf2Matrix::from_strings(const std::vector<std::string>& rows) {
  expects(!rows.empty(), "from_strings needs at least one row");
  Gf2Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    expects(rows[r].size() == m.cols_, "ragged string rows for Gf2Matrix");
    m.rows_[r] = BitVec::from_string(rows[r]);
  }
  return m;
}

Gf2Matrix Gf2Matrix::identity(std::size_t n) {
  Gf2Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

bool Gf2Matrix::get(std::size_t r, std::size_t c) const {
  expects(r < rows_.size(), "Gf2Matrix row out of range");
  return rows_[r].get(c);
}

void Gf2Matrix::set(std::size_t r, std::size_t c, bool value) {
  expects(r < rows_.size(), "Gf2Matrix row out of range");
  rows_[r].set(c, value);
}

const BitVec& Gf2Matrix::row(std::size_t r) const {
  expects(r < rows_.size(), "Gf2Matrix row out of range");
  return rows_[r];
}

BitVec& Gf2Matrix::row(std::size_t r) {
  expects(r < rows_.size(), "Gf2Matrix row out of range");
  return rows_[r];
}

BitVec Gf2Matrix::column(std::size_t c) const {
  BitVec out(rows());
  for (std::size_t r = 0; r < rows(); ++r) out.set(r, get(r, c));
  return out;
}

BitVec Gf2Matrix::mul_left(const BitVec& v) const {
  expects(v.size() == rows(), "mul_left dimension mismatch");
  BitVec out(cols_);
  for (std::size_t r = 0; r < rows(); ++r)
    if (v.get(r)) out ^= rows_[r];
  return out;
}

BitVec Gf2Matrix::mul_right(const BitVec& v) const {
  expects(v.size() == cols_, "mul_right dimension mismatch");
  BitVec out(rows());
  for (std::size_t r = 0; r < rows(); ++r) out.set(r, rows_[r].dot(v));
  return out;
}

Gf2Matrix Gf2Matrix::transpose() const {
  Gf2Matrix t(cols_, rows());
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (get(r, c)) t.set(c, r, true);
  return t;
}

Gf2Matrix Gf2Matrix::multiply(const Gf2Matrix& other) const {
  expects(cols_ == other.rows(), "matrix product dimension mismatch");
  Gf2Matrix out(rows(), other.cols());
  for (std::size_t r = 0; r < rows(); ++r) out.rows_[r] = other.mul_left(rows_[r]);
  return out;
}

Gf2Matrix Gf2Matrix::hconcat(const Gf2Matrix& other) const {
  expects(rows() == other.rows(), "hconcat row count mismatch");
  Gf2Matrix out(rows(), cols_ + other.cols_);
  for (std::size_t r = 0; r < rows(); ++r) out.rows_[r] = rows_[r].concat(other.rows_[r]);
  return out;
}

namespace {

/// Gaussian elimination to (reduced) row echelon form; returns pivot columns.
std::vector<std::size_t> eliminate(std::vector<BitVec>& rows, std::size_t cols) {
  std::vector<std::size_t> pivots;
  std::size_t lead = 0;
  for (std::size_t c = 0; c < cols && lead < rows.size(); ++c) {
    std::size_t pivot = lead;
    while (pivot < rows.size() && !rows[pivot].get(c)) ++pivot;
    if (pivot == rows.size()) continue;
    std::swap(rows[lead], rows[pivot]);
    for (std::size_t r = 0; r < rows.size(); ++r)
      if (r != lead && rows[r].get(c)) rows[r] ^= rows[lead];
    pivots.push_back(c);
    ++lead;
  }
  return pivots;
}

}  // namespace

std::size_t Gf2Matrix::rank() const {
  std::vector<BitVec> work = rows_;
  return eliminate(work, cols_).size();
}

Gf2Matrix Gf2Matrix::rref() const {
  Gf2Matrix out = *this;
  eliminate(out.rows_, cols_);
  return out;
}

Gf2Matrix Gf2Matrix::inverse() const {
  expects(rows() == cols_, "inverse of non-square matrix");
  const std::size_t n = rows();
  // Augment [M | I] and reduce; the right half becomes M^-1.
  std::vector<BitVec> work;
  work.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    BitVec id(n);
    id.set(r, true);
    work.push_back(rows_[r].concat(id));
  }
  const std::vector<std::size_t> pivots = eliminate(work, cols_);
  expects(pivots.size() == n, "matrix is singular");
  Gf2Matrix inv(n, n);
  for (std::size_t r = 0; r < n; ++r) inv.rows_[r] = work[r].slice(n, n);
  return inv;
}

Gf2Matrix Gf2Matrix::select_columns(const std::vector<std::size_t>& columns) const {
  Gf2Matrix out(rows(), columns.size());
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t c = 0; c < columns.size(); ++c) out.set(r, c, get(r, columns[c]));
  return out;
}

Gf2Matrix Gf2Matrix::null_space() const {
  std::vector<BitVec> work = rows_;
  const std::vector<std::size_t> pivots = eliminate(work, cols_);
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t c : pivots) is_pivot[c] = true;

  std::vector<BitVec> basis;
  for (std::size_t free_col = 0; free_col < cols_; ++free_col) {
    if (is_pivot[free_col]) continue;
    BitVec v(cols_);
    v.set(free_col, true);
    // Back-substitute: pivot row r has its pivot at pivots[r].
    for (std::size_t r = 0; r < pivots.size(); ++r)
      if (work[r].get(free_col)) v.set(pivots[r], true);
    basis.push_back(v);
  }
  Gf2Matrix out(basis.size(), cols_);
  for (std::size_t r = 0; r < basis.size(); ++r) out.rows_[r] = basis[r];
  return out;
}

SystematicForm Gf2Matrix::to_systematic() const {
  const std::size_t k = rows();
  SystematicForm result;
  result.column_order.resize(cols_);
  for (std::size_t c = 0; c < cols_; ++c) result.column_order[c] = c;

  std::vector<BitVec> work = rows_;
  const std::vector<std::size_t> pivots = eliminate(work, cols_);
  expects(pivots.size() == k, "to_systematic requires full row rank");

  Gf2Matrix rrefm(k, cols_);
  for (std::size_t r = 0; r < k; ++r) rrefm.rows_[r] = work[r];

  // Move pivot columns to the front, preserving relative order of the rest.
  for (std::size_t r = 0; r < k; ++r) {
    if (pivots[r] == r) continue;
    result.permuted = true;
  }
  std::vector<std::size_t> order;
  order.reserve(cols_);
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t c : pivots) {
    order.push_back(c);
    is_pivot[c] = true;
  }
  for (std::size_t c = 0; c < cols_; ++c)
    if (!is_pivot[c]) order.push_back(c);

  Gf2Matrix sys(k, cols_);
  for (std::size_t newc = 0; newc < cols_; ++newc) {
    const std::size_t oldc = order[newc];
    for (std::size_t r = 0; r < k; ++r) sys.set(r, newc, rrefm.get(r, oldc));
  }
  result.generator = sys;
  result.column_order = order;
  return result;
}

std::string Gf2Matrix::to_string() const {
  std::string out;
  for (std::size_t r = 0; r < rows(); ++r) {
    out += rows_[r].to_string();
    out += '\n';
  }
  return out;
}

Gf2Matrix parity_check_from_systematic(const Gf2Matrix& g) {
  const std::size_t k = g.rows();
  const std::size_t n = g.cols();
  expects(n > k, "systematic generator must have n > k");
  // Verify the left block is the identity.
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < k; ++c)
      expects(g.get(r, c) == (r == c), "generator is not in systematic form");

  Gf2Matrix p(k, n - k);
  for (std::size_t r = 0; r < k; ++r)
    for (std::size_t c = 0; c < n - k; ++c) p.set(r, c, g.get(r, k + c));

  Gf2Matrix h(n - k, n);
  const Gf2Matrix pt = p.transpose();
  for (std::size_t r = 0; r < n - k; ++r) {
    for (std::size_t c = 0; c < k; ++c) h.set(r, c, pt.get(r, c));
    h.set(r, k + r, true);
  }
  return h;
}

}  // namespace sfqecc::code
