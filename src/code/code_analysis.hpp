// Exhaustive error-pattern analysis.
//
// Classifies every error pattern of each weight against a decoder, producing
// the numbers behind the paper's Table I: guaranteed detection/correction
// weights, best-case achievable weights, and per-weight coverage such as
// "Hamming(7,4) detects 28 of 35 possible 3-bit error patterns" and
// "RM(1,3) corrects 7 of 28 double errors".
//
// Decoders for linear codes considered here are translation invariant
// (syndrome-, parity- and correlation-based), so patterns are analyzed
// against the all-zero codeword; a property test verifies the invariance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "code/decoder.hpp"

namespace sfqecc::code {

/// Outcome counts for all error patterns of one weight.
struct WeightClassStats {
  std::size_t weight = 0;
  std::size_t patterns = 0;    ///< C(n, weight)
  std::size_t corrected = 0;   ///< decoder accepted and recovered the message
  std::size_t detected = 0;    ///< decoder raised the error flag
  std::size_t miscorrected = 0;///< decoder accepted a wrong message
  std::size_t undetected = 0;  ///< pattern is itself a codeword (invisible to any decoder)

  double corrected_fraction() const noexcept {
    return patterns ? static_cast<double>(corrected) / static_cast<double>(patterns) : 0.0;
  }
  double detected_fraction() const noexcept {
    return patterns ? static_cast<double>(detected) / static_cast<double>(patterns) : 0.0;
  }
};

/// Full analysis of a decoder over all error patterns up to `max_weight`.
struct ErrorPatternAnalysis {
  std::string decoder_name;
  std::size_t dmin = 0;
  std::vector<WeightClassStats> by_weight;  ///< index 0 = weight 1

  /// Largest w such that every pattern of weight <= w is corrected.
  std::size_t guaranteed_correct = 0;
  /// Largest w such that every pattern of weight <= w is corrected or
  /// detected (no silent wrong message).
  std::size_t guaranteed_safe = 0;
  /// Largest analyzed w with at least one corrected pattern.
  std::size_t best_correct = 0;
  /// Largest analyzed w with at least one corrected-or-detected pattern.
  std::size_t best_safe = 0;
};

/// Runs the exhaustive per-weight classification. `max_weight` defaults to
/// min(n, dmin + 1) when zero. Cost is sum_w C(n, w) decode calls.
ErrorPatternAnalysis analyze_error_patterns(const Decoder& decoder,
                                            std::size_t max_weight = 0);

/// Detection coverage when the code is operated detect-only: fraction of
/// weight-w patterns with a nonzero syndrome. Returns {detected, patterns}.
struct DetectionCoverage {
  std::size_t weight = 0;
  std::size_t detected = 0;
  std::size_t patterns = 0;
};
std::vector<DetectionCoverage> detection_coverage(const LinearCode& code,
                                                  std::size_t max_weight);

}  // namespace sfqecc::code
