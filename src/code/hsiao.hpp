// Hsiao SEC-DED codes: single-error-correcting, double-error-detecting codes
// whose parity-check columns all have odd weight. Compared to the extended
// Hamming construction, the odd-weight-column property yields faster/simpler
// double-error detection (the syndrome's overall parity distinguishes 1 vs 2
// errors directly) and minimum total column weight — i.e. the fewest encoder
// XOR terms. The industry-standard choice for memory interfaces; included
// here as the natural competitor for the byte-wide (8-bit processor) design
// point the paper's introduction motivates.
#pragma once

#include <cstddef>

#include "code/linear_code.hpp"

namespace sfqecc::code {

/// Hsiao code with k data bits and r parity bits; requires that the number of
/// odd-weight r-bit columns (2^(r-1)) can accommodate k + r columns.
/// Systematic layout: data bits first, parity last. dmin = 4.
/// Data columns are chosen minimum-weight-first (weight 3, then 5, ...)
/// in ascending value order, which minimizes the encoder's XOR-term count.
LinearCode hsiao_code(std::size_t k, std::size_t r);

/// The byte-wide Hsiao(13,8) SEC-DED code.
LinearCode hsiao_13_8();

}  // namespace sfqecc::code
