#include "code/soft_decoder.hpp"

#include <cmath>

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

std::size_t log2_exact(std::size_t n) {
  std::size_t m = 0;
  while ((std::size_t{1} << m) < n) ++m;
  expects((std::size_t{1} << m) == n, "length must be a power of two");
  return m;
}

}  // namespace

RmSoftDecoder::RmSoftDecoder(const LinearCode& code)
    : code_(code), m_(log2_exact(code.n())) {
  expects(code_.k() == m_ + 1, "code is not RM(1,m)");
  for (std::size_t j = 0; j < code_.n(); ++j) {
    expects(code_.generator().get(0, j), "RM(1,m) row 0 must be all-ones");
    for (std::size_t i = 0; i < m_; ++i)
      expects(code_.generator().get(i + 1, j) == (((j >> i) & 1) != 0),
              "RM(1,m) rows must be (1, x1..xm)");
  }
}

DecodeResult RmSoftDecoder::decode(const std::vector<double>& bipolar) const {
  expects(bipolar.size() == code_.n(), "observation length mismatch");
  const std::size_t n = code_.n();

  // Real-valued fast Hadamard transform of the observations; F_a is the
  // correlation with the bipolar image of message (0, a).
  std::vector<double> f = bipolar;
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t blk = 0; blk < n; blk += len << 1) {
      for (std::size_t j = blk; j < blk + len; ++j) {
        const double a = f[j];
        const double b = f[j + len];
        f[j] = a + b;
        f[j + len] = a - b;
      }
    }
  }

  std::size_t best = 0;
  double best_abs = std::abs(f[0]);
  for (std::size_t a = 1; a < n; ++a) {
    if (std::abs(f[a]) > best_abs) {
      best = a;
      best_abs = std::abs(f[a]);
    }
  }

  BitVec message(m_ + 1);
  message.set(0, f[best] < 0.0);
  for (std::size_t i = 0; i < m_; ++i) message.set(i + 1, ((best >> i) & 1) != 0);

  DecodeResult result;
  result.message = message;
  result.codeword = code_.encode(message);
  // Hard distance against the sign pattern, for reporting only.
  std::size_t flips = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const bool hard = bipolar[j] < 0.0;
    if (hard != result.codeword.get(j)) ++flips;
  }
  result.bits_flipped = flips;
  result.status = flips == 0 ? DecodeStatus::kNoError : DecodeStatus::kCorrected;
  return result;
}

DecodeResult RmSoftDecoder::decode_bits(const BitVec& received) const {
  std::vector<double> bipolar(received.size());
  for (std::size_t j = 0; j < received.size(); ++j)
    bipolar[j] = received.get(j) ? -1.0 : 1.0;
  return decode(bipolar);
}

}  // namespace sfqecc::code
