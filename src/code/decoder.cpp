#include "code/decoder.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "util/expect.hpp"

namespace sfqecc::code {

// ---------------------------------------------------------------- Syndrome --

SyndromeDecoder::SyndromeDecoder(const LinearCode& code,
                                 std::optional<std::size_t> max_correct_weight)
    : code_(code), max_correct_weight_(max_correct_weight) {
  (void)code_.coset_leaders();  // build the table eagerly
}

std::string SyndromeDecoder::name() const {
  std::string n = "syndrome(" + code_.name() + ")";
  if (max_correct_weight_) n += "<=w" + std::to_string(*max_correct_weight_);
  return n;
}

DecodeResult SyndromeDecoder::decode(const BitVec& received) const {
  expects(received.size() == code_.n(), "received length mismatch");
  DecodeResult result;
  if (code_.has_fast_path()) {
    // Allocation-free path: received word, syndrome, leader and message all
    // stay in single words.
    const std::uint64_t r = received.to_u64();
    const std::uint64_t s = code_.syndrome_u64(r);
    std::uint64_t cw = r;
    if (s == 0) {
      result.status = DecodeStatus::kNoError;
      result.codeword = received;
    } else {
      const std::uint64_t leader = code_.coset_leader_words()[s];
      cw ^= leader;
      result.codeword = BitVec::from_u64(code_.n(), cw);
      result.bits_flipped = static_cast<std::size_t>(std::popcount(leader));
      result.status =
          (max_correct_weight_ && result.bits_flipped > *max_correct_weight_)
              ? DecodeStatus::kDetected
              : DecodeStatus::kCorrected;
    }
    result.message = BitVec::from_u64(code_.k(), code_.extract_message_u64(cw));
    return result;
  }
  const BitVec s = code_.syndrome(received);
  if (s.is_zero()) {
    result.status = DecodeStatus::kNoError;
    result.codeword = received;
  } else {
    const BitVec& leader = code_.coset_leaders()[s.to_u64()];
    result.codeword = received ^ leader;
    result.bits_flipped = leader.weight();
    result.status = (max_correct_weight_ && leader.weight() > *max_correct_weight_)
                        ? DecodeStatus::kDetected
                        : DecodeStatus::kCorrected;
  }
  result.message = code_.extract_message(result.codeword);
  return result;
}

// ------------------------------------------------------------- DetectOnly --

DecodeResult DetectOnlyDecoder::decode(const BitVec& received) const {
  expects(received.size() == code_.n(), "received length mismatch");
  DecodeResult result;
  const BitVec s = code_.syndrome(received);
  if (s.is_zero()) {
    result.status = DecodeStatus::kNoError;
    result.codeword = received;
  } else {
    result.status = DecodeStatus::kDetected;
    const BitVec& leader = code_.coset_leaders()[s.to_u64()];
    result.codeword = received ^ leader;  // best guess only
    result.bits_flipped = leader.weight();
  }
  result.message = code_.extract_message(result.codeword);
  return result;
}

// -------------------------------------------------------- ExtendedHamming --

ExtendedHammingDecoder::ExtendedHammingDecoder(const LinearCode& extended,
                                               const LinearCode& base)
    : extended_(extended), base_(base) {
  expects(extended_.n() == base_.n() + 1, "extended code must add one bit");
  expects(extended_.k() == base_.k(), "extended code must keep the dimension");
  (void)base_.coset_leaders();
}

DecodeResult ExtendedHammingDecoder::decode(const BitVec& received) const {
  expects(received.size() == extended_.n(), "received length mismatch");
  const std::size_t n = extended_.n();
  if (extended_.has_fast_path()) {
    // Allocation-free path, semantically identical to the BitVec branch
    // below: inner word = low n-1 bits, leaders XOR directly into the word.
    const std::uint64_t r = received.to_u64();
    const bool parity_odd = (std::popcount(r) & 1) != 0;
    const std::uint64_t parity_bit = std::uint64_t{1} << (n - 1);
    const std::uint64_t s = base_.syndrome_u64(r & (parity_bit - 1));

    DecodeResult result;
    std::uint64_t cw = r;
    if (s == 0) {
      if (!parity_odd) {
        result.status = DecodeStatus::kNoError;
      } else {
        result.status = DecodeStatus::kCorrected;
        cw ^= parity_bit;
        result.bits_flipped = 1;
      }
    } else {
      const std::uint64_t leader = base_.coset_leader_words()[s];
      cw ^= leader;
      result.bits_flipped = static_cast<std::size_t>(std::popcount(leader));
      result.status = parity_odd ? DecodeStatus::kCorrected : DecodeStatus::kDetected;
    }
    if (extended_.syndrome_u64(cw) != 0) cw ^= parity_bit;
    result.codeword = BitVec::from_u64(n, cw);
    result.message =
        BitVec::from_u64(extended_.k(), extended_.extract_message_u64(cw));
    return result;
  }
  const BitVec inner = received.slice(0, n - 1);
  const bool parity_odd = received.parity();
  const BitVec s = base_.syndrome(inner);

  DecodeResult result;
  result.codeword = received;
  if (s.is_zero()) {
    if (!parity_odd) {
      result.status = DecodeStatus::kNoError;
    } else {
      // Inner word is consistent; the overall parity bit itself is in error.
      result.status = DecodeStatus::kCorrected;
      result.codeword.flip(n - 1);
      result.bits_flipped = 1;
    }
  } else if (parity_odd) {
    // Odd number of errors with a nonzero inner syndrome: assume one error in
    // the inner bits and correct it via the base code's coset leader.
    const BitVec& leader = base_.coset_leaders()[s.to_u64()];
    for (std::size_t i : leader.support()) result.codeword.flip(i);
    result.bits_flipped = leader.weight();
    result.status = DecodeStatus::kCorrected;
  } else {
    // Nonzero syndrome but even parity: an even (>= 2) number of errors.
    result.status = DecodeStatus::kDetected;
    const BitVec& leader = base_.coset_leaders()[s.to_u64()];
    for (std::size_t i : leader.support()) result.codeword.flip(i);
    result.bits_flipped = leader.weight();
  }
  // The corrected word can fail to be a valid extended codeword only in the
  // detected branch (best guess); fall back to flipping the parity bit there.
  if (!extended_.is_codeword(result.codeword)) result.codeword.flip(n - 1);
  result.message = extended_.extract_message(result.codeword);
  return result;
}

// ------------------------------------------------------------------ RM FHT --

namespace {

std::size_t log2_exact(std::size_t n) {
  std::size_t m = 0;
  while ((std::size_t{1} << m) < n) ++m;
  expects((std::size_t{1} << m) == n, "length must be a power of two");
  return m;
}

void check_rm1(const LinearCode& code) {
  const std::size_t m = log2_exact(code.n());
  expects(code.k() == m + 1, "code is not RM(1,m)");
  // Row 0 must be all-ones and row i+1 must be the evaluation of x_i.
  for (std::size_t j = 0; j < code.n(); ++j) {
    expects(code.generator().get(0, j), "RM(1,m) row 0 must be all-ones");
    for (std::size_t i = 0; i < m; ++i)
      expects(code.generator().get(i + 1, j) == (((j >> i) & 1) != 0),
              "RM(1,m) rows must be (1, x1..xm)");
  }
}

}  // namespace

RmFhtDecoder::RmFhtDecoder(const LinearCode& code, bool flag_ties)
    : code_(code), m_(log2_exact(code.n())), flag_ties_(flag_ties) {
  check_rm1(code_);
}

DecodeResult RmFhtDecoder::decode(const BitVec& received) const {
  expects(received.size() == code_.n(), "received length mismatch");
  const std::size_t n = code_.n();

  // Bipolar map 0 -> +1, 1 -> -1, then the fast Hadamard transform; F_a is the
  // correlation of the received word with the linear form <a, j>. Short codes
  // (every paper code) use a stack buffer so decoding never allocates.
  int stack_f[64] = {};
  std::vector<int> heap_f;
  int* f = stack_f;
  if (n > 64) {
    heap_f.resize(n);
    f = heap_f.data();
  }
  for (std::size_t j = 0; j < n; ++j) f[j] = received.get(j) ? -1 : 1;
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t blk = 0; blk < n; blk += len << 1) {
      for (std::size_t j = blk; j < blk + len; ++j) {
        const int a = f[j];
        const int b = f[j + len];
        f[j] = a + b;
        f[j + len] = a - b;
      }
    }
  }

  std::size_t best = 0;
  int best_abs = std::abs(f[0]);
  bool tie = false;
  for (std::size_t a = 1; a < n; ++a) {
    const int v = std::abs(f[a]);
    if (v > best_abs) {
      best = a;
      best_abs = v;
      tie = false;
    } else if (v == best_abs) {
      tie = true;
    }
  }

  BitVec message(m_ + 1);
  message.set(0, f[best] < 0);  // constant term from the sign
  for (std::size_t i = 0; i < m_; ++i) message.set(i + 1, ((best >> i) & 1) != 0);

  DecodeResult result;
  if ((tie || best_abs == 0) && !flag_ties_) {
    // Deterministic, translation-invariant tie resolution: fall back to
    // standard-array decoding with the code's fixed coset leaders. This is
    // what corrects the "certain 2-bit error patterns" of the paper's
    // Section II-B (7 of the 28 doubles for RM(1,3)).
    const BitVec s = code_.syndrome(received);
    const BitVec& leader = code_.coset_leaders()[s.to_u64()];
    result.codeword = received ^ leader;
    result.message = code_.extract_message(result.codeword);
    result.bits_flipped = leader.weight();
    result.status =
        result.bits_flipped == 0 ? DecodeStatus::kNoError : DecodeStatus::kCorrected;
    return result;
  }
  result.message = message;
  result.codeword = code_.encode(message);
  result.bits_flipped = (result.codeword ^ received).weight();
  if (result.bits_flipped == 0)
    result.status = DecodeStatus::kNoError;
  else if (flag_ties_ && (tie || best_abs == 0))
    result.status = DecodeStatus::kDetected;
  else
    result.status = DecodeStatus::kCorrected;
  return result;
}

// ------------------------------------------------------------- RM majority --

RmMajorityDecoder::RmMajorityDecoder(const LinearCode& code)
    : code_(code), m_(log2_exact(code.n())) {
  check_rm1(code_);
}

DecodeResult RmMajorityDecoder::decode(const BitVec& received) const {
  expects(received.size() == code_.n(), "received length mismatch");
  const std::size_t n = code_.n();
  const std::size_t half = n / 2;

  BitVec message(m_ + 1);
  bool tie = false;
  // Coefficient of x_i: majority over the 2^(m-1) disjoint pairs (j, j ^ e_i)
  // of the discrete derivative r_j ^ r_{j ^ e_i}.
  for (std::size_t i = 0; i < m_; ++i) {
    std::size_t votes = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if ((j >> i) & 1) continue;  // count each pair once
      if (received.get(j) != received.get(j | (std::size_t{1} << i))) ++votes;
    }
    if (votes * 2 == half) tie = true;
    message.set(i + 1, votes * 2 > half);
  }
  // Constant term: majority of the residual after removing the linear part.
  std::size_t ones = 0;
  for (std::size_t j = 0; j < n; ++j) {
    bool linear = false;
    for (std::size_t i = 0; i < m_; ++i)
      if (message.get(i + 1) && ((j >> i) & 1)) linear = !linear;
    if (received.get(j) != linear) ++ones;
  }
  if (ones * 2 == n) tie = true;
  message.set(0, ones * 2 > n);

  DecodeResult result;
  result.message = message;
  result.codeword = code_.encode(message);
  result.bits_flipped = (result.codeword ^ received).weight();
  if (result.bits_flipped == 0)
    result.status = DecodeStatus::kNoError;
  else if (tie)
    result.status = DecodeStatus::kDetected;
  else
    result.status = DecodeStatus::kCorrected;
  return result;
}

}  // namespace sfqecc::code
