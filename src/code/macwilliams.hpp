// MacWilliams identity: the weight distribution of the dual code from the
// weight distribution of the code, via Krawtchouk polynomials:
//
//   B_j = 2^{-k} * sum_i A_i * K_j(i),   K_j(i) = sum_l (-1)^l C(i,l) C(n-i, j-l)
//
// Used to obtain dual weight spectra without enumerating the (possibly much
// larger) dual codebook, and as a strong cross-check on the enumerative
// machinery in LinearCode (property-tested both ways).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "code/linear_code.hpp"

namespace sfqecc::code {

/// Krawtchouk polynomial K_j(i) for the binary Hamming scheme of length n.
std::int64_t krawtchouk(std::size_t n, std::size_t j, std::size_t i);

/// Dual weight distribution B_0..B_n from A_0..A_n of an [n, k] code.
/// `weight_distribution` must have n+1 entries summing to 2^k.
std::vector<std::size_t> macwilliams_transform(
    const std::vector<std::size_t>& weight_distribution, std::size_t n, std::size_t k);

/// Convenience: dual weight distribution of a code (requires k <= 24 to
/// enumerate the primal distribution; the dual dimension is unrestricted).
std::vector<std::size_t> dual_weight_distribution(const LinearCode& code);

}  // namespace sfqecc::code
