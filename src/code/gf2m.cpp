#include "code/gf2m.hpp"

#include <algorithm>
#include <set>

#include "util/expect.hpp"

namespace sfqecc::code {
namespace {

/// Standard primitive polynomials, indexed by m (x^m + ... + 1), as bit masks
/// including the x^m term. Values from Lin & Costello, Appendix B.
constexpr std::uint32_t kPrimitivePoly[17] = {
    0, 0,
    0x7,      // m=2:  x^2+x+1
    0xB,      // m=3:  x^3+x+1
    0x13,     // m=4:  x^4+x+1
    0x25,     // m=5:  x^5+x^2+1
    0x43,     // m=6:  x^6+x+1
    0x89,     // m=7:  x^7+x^3+1
    0x11D,    // m=8:  x^8+x^4+x^3+x^2+1
    0x211,    // m=9:  x^9+x^4+1
    0x409,    // m=10: x^10+x^3+1
    0x805,    // m=11: x^11+x^2+1
    0x1053,   // m=12: x^12+x^6+x^4+x+1
    0x201B,   // m=13: x^13+x^4+x^3+x+1
    0x4443,   // m=14: x^14+x^10+x^6+x+1
    0x8003,   // m=15: x^15+x+1
    0x1100B,  // m=16: x^16+x^12+x^3+x+1
};

}  // namespace

Gf2mField::Gf2mField(unsigned m) : m_(m) {
  expects(m >= 2 && m <= 16, "GF(2^m) supports 2 <= m <= 16");
  order_ = (std::uint32_t{1} << m) - 1;
  poly_ = kPrimitivePoly[m];
  exp_.resize(2 * order_);
  log_.assign(order_ + 1, 0);
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < order_; ++i) {
    exp_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & (std::uint32_t{1} << m)) x ^= poly_;
  }
  ensures(x == 1, "polynomial is not primitive");
  for (std::uint32_t i = 0; i < order_; ++i) exp_[order_ + i] = exp_[i];
}

std::uint32_t Gf2mField::mul(std::uint32_t a, std::uint32_t b) const {
  expects(a <= order_ && b <= order_, "element out of field");
  if (a == 0 || b == 0) return 0;
  return exp_[log_[a] + log_[b]];
}

std::uint32_t Gf2mField::inv(std::uint32_t a) const {
  expects(a != 0, "zero has no inverse");
  expects(a <= order_, "element out of field");
  return exp_[order_ - log_[a]];
}

std::uint32_t Gf2mField::alpha_pow(long long e) const noexcept {
  long long r = e % static_cast<long long>(order_);
  if (r < 0) r += order_;
  return exp_[static_cast<std::size_t>(r)];
}

std::uint32_t Gf2mField::log(std::uint32_t a) const {
  expects(a != 0 && a <= order_, "log of zero or out-of-field element");
  return log_[a];
}

std::uint32_t Gf2mField::pow(std::uint32_t a, unsigned long long e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  const unsigned long long le = (static_cast<unsigned long long>(log(a)) * (e % order_)) % order_;
  return exp_[static_cast<std::size_t>(le)];
}

std::size_t poly_degree(const Gf2Poly& p) noexcept {
  for (std::size_t i = p.size(); i-- > 0;)
    if (p[i]) return i;
  return static_cast<std::size_t>(-1);
}

Gf2Poly poly_mul(const Gf2Poly& a, const Gf2Poly& b) {
  if (a.empty() || b.empty()) return {};
  Gf2Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a[i]) continue;
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] ^= b[j];
  }
  return out;
}

Gf2Poly poly_mod(const Gf2Poly& a, const Gf2Poly& b) {
  const std::size_t db = poly_degree(b);
  expects(db != static_cast<std::size_t>(-1), "modulo by zero polynomial");
  Gf2Poly r = a;
  std::size_t dr = poly_degree(r);
  while (dr != static_cast<std::size_t>(-1) && dr >= db) {
    const std::size_t shift = dr - db;
    for (std::size_t i = 0; i <= db; ++i) r[i + shift] ^= b[i];
    dr = poly_degree(r);
  }
  r.resize(db);  // remainder has degree < db
  if (r.empty()) r.push_back(0);
  return r;
}

Gf2Poly minimal_polynomial(const Gf2mField& field, std::uint32_t e) {
  // Conjugacy class of alpha^e under Frobenius: exponents e, 2e, 4e, ...
  std::set<std::uint32_t> exponents;
  std::uint32_t cur = e % field.order();
  while (exponents.insert(cur).second)
    cur = static_cast<std::uint32_t>((2ULL * cur) % field.order());
  std::set<std::uint32_t> roots;
  for (std::uint32_t ex : exponents) roots.insert(field.alpha_pow(ex));

  // Product of (x - root) over the class, with coefficients in GF(2^m); the
  // result has coefficients in GF(2).
  std::vector<std::uint32_t> poly{1};  // leading coefficient, ascending degree below
  std::vector<std::uint32_t> acc{1};
  for (std::uint32_t root : roots) {
    std::vector<std::uint32_t> next(acc.size() + 1, 0);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      next[i + 1] ^= acc[i];                  // x * acc
      next[i] ^= field.mul(acc[i], root);     // root * acc
    }
    acc = std::move(next);
  }
  Gf2Poly out(acc.size(), 0);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    expects(acc[i] <= 1, "minimal polynomial has non-binary coefficient");
    out[i] = static_cast<std::uint8_t>(acc[i]);
  }
  return out;
}

}  // namespace sfqecc::code
