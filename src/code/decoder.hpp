// Decoders for the lightweight codes.
//
// All decoders consume a hard-decision received word of length n and return a
// DecodeResult carrying the estimated message and a status:
//  * kNoError   — received word was a valid codeword,
//  * kCorrected — errors were found and corrected; estimate accepted,
//  * kDetected  — an uncorrectable error was detected; the estimate is a best
//                 guess and the link-level error flag (paper Fig. 1) is raised.
//
// Provided decoders:
//  * SyndromeDecoder        — fixed coset-leader table lookup (any linear code);
//                             optionally refuses to correct beyond a weight bound.
//  * DetectOnlyDecoder      — raises kDetected for every nonzero syndrome.
//  * ExtendedHammingDecoder — correct-1 / detect-2 using the overall parity bit
//                             (the paper's Hamming(8,4) operating mode).
//  * RmFhtDecoder           — maximum-likelihood decoding of RM(1,m) via the
//                             fast Hadamard transform; ties raise kDetected.
//  * RmMajorityDecoder      — Reed's majority-logic decoder for RM(1,m).
#pragma once

#include <memory>
#include <string>

#include "code/linear_code.hpp"

namespace sfqecc::code {

enum class DecodeStatus {
  kNoError,
  kCorrected,
  kDetected,
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNoError;
  BitVec codeword;   ///< the decoder's codeword estimate
  BitVec message;    ///< message extracted from `codeword`
  std::size_t bits_flipped = 0;  ///< Hamming distance between received and estimate

  /// True when the decoder accepted the estimate (no flag raised).
  bool accepted() const noexcept { return status != DecodeStatus::kDetected; }
};

/// Abstract hard-decision decoder bound to a code.
class Decoder {
 public:
  virtual ~Decoder() = default;
  virtual DecodeResult decode(const BitVec& received) const = 0;
  virtual const LinearCode& base_code() const noexcept = 0;
  virtual std::string name() const = 0;
};

/// Standard-array (coset leader) decoding. Always produces a codeword
/// estimate; when `max_correct_weight` is set, leaders heavier than the bound
/// yield kDetected instead of kCorrected.
class SyndromeDecoder final : public Decoder {
 public:
  explicit SyndromeDecoder(const LinearCode& code,
                           std::optional<std::size_t> max_correct_weight = std::nullopt);
  DecodeResult decode(const BitVec& received) const override;
  const LinearCode& base_code() const noexcept override { return code_; }
  std::string name() const override;

 private:
  const LinearCode& code_;
  std::optional<std::size_t> max_correct_weight_;
};

/// Error-detection-only operation: any nonzero syndrome raises kDetected and
/// the received word is returned unmodified (message is the best guess from
/// the closest coset leader).
class DetectOnlyDecoder final : public Decoder {
 public:
  explicit DetectOnlyDecoder(const LinearCode& code) : code_(code) {}
  DecodeResult decode(const BitVec& received) const override;
  const LinearCode& base_code() const noexcept override { return code_; }
  std::string name() const override { return "detect-only(" + code_.name() + ")"; }

 private:
  const LinearCode& code_;
};

/// Correct-1/detect-2 decoding for a code built as `base Hamming + overall
/// parity appended as the last bit` (the paper's Hamming(8,4)).
///  syndrome == 0, parity even -> no error
///  syndrome == 0, parity odd  -> error in the parity bit, corrected
///  syndrome != 0, parity odd  -> single error, corrected via the base code
///  syndrome != 0, parity even -> double error, detected
class ExtendedHammingDecoder final : public Decoder {
 public:
  /// `extended` must be `base` plus a trailing overall parity bit.
  ExtendedHammingDecoder(const LinearCode& extended, const LinearCode& base);
  DecodeResult decode(const BitVec& received) const override;
  const LinearCode& base_code() const noexcept override { return extended_; }
  std::string name() const override { return "sec-ded(" + extended_.name() + ")"; }

 private:
  const LinearCode& extended_;
  const LinearCode& base_;
};

/// Maximum-likelihood decoding of RM(1,m) with the fast Hadamard transform.
/// The codeword estimate maximizes the correlation |F_k|. When the maximum is
/// not unique the behaviour depends on `flag_ties`:
///  * true (default): the error is flagged as kDetected (erasure semantics,
///    used as the operating decoder on the link);
///  * false: the first maximizer wins deterministically — this is standard-
///    array decoding and corrects "certain 2-bit error patterns" (Table I's
///    best case for RM(1,3)).
class RmFhtDecoder final : public Decoder {
 public:
  /// `code` must be RM(1,m) with rows ordered (1, x1, ..., xm).
  explicit RmFhtDecoder(const LinearCode& code, bool flag_ties = true);
  DecodeResult decode(const BitVec& received) const override;
  const LinearCode& base_code() const noexcept override { return code_; }
  std::string name() const override {
    return (flag_ties_ ? "fht-ml(" : "fht-ml-tiebreak(") + code_.name() + ")";
  }

 private:
  const LinearCode& code_;
  std::size_t m_;
  bool flag_ties_;
};

/// Reed's majority-logic decoder for RM(1,m): each first-order coefficient is
/// the majority vote of 2^(m-1) derivative pairs; the constant term is the
/// majority of the residual. Vote ties raise kDetected.
class RmMajorityDecoder final : public Decoder {
 public:
  explicit RmMajorityDecoder(const LinearCode& code);
  DecodeResult decode(const BitVec& received) const override;
  const LinearCode& base_code() const noexcept override { return code_; }
  std::string name() const override { return "majority(" + code_.name() + ")"; }

 private:
  const LinearCode& code_;
  std::size_t m_;
};

}  // namespace sfqecc::code
