// The paper's concrete artifacts, assembled: the three lightweight encoders
// (and the no-encoder reference link) with their codes, synthesized SFQ
// netlists and operating decoders — everything the benches and examples need
// to reproduce Tables I-II and Figures 3 & 5.
//
// Since the scheme catalog (core/scheme_catalog.hpp) opened the scheme axis,
// this header is a thin enum-keyed wrapper over the four canonical paper
// descriptors: make_scheme(SchemeId) == catalog.resolve(paper_descriptor(id)),
// bit-identically — same display names, netlists, fingerprints and reports.
#pragma once

#include <string>
#include <vector>

#include "core/scheme_catalog.hpp"

namespace sfqecc::core {

/// One fully assembled transmission scheme (owning). Historically a separate
/// struct; now the catalog's Scheme value type.
using PaperScheme = Scheme;

/// Identifier for the four schemes of Fig. 5, in the paper's order.
enum class SchemeId { kNoEncoder, kRm13, kHamming74, kHamming84 };

const char* scheme_name(SchemeId id) noexcept;

/// The canonical catalog descriptor of a paper scheme: "none", "rm:1,3",
/// "hamming:7,4", "hamming:8,4x".
const char* paper_descriptor(SchemeId id) noexcept;

/// The four canonical descriptors in the paper's Fig. 5 order.
std::vector<std::string> paper_descriptors();

/// Builds one scheme against the given library.
/// Decoders: Hamming(7,4) -> syndrome (always-correct, perfect code);
/// Hamming(8,4) -> correct-1/detect-2 (drives the link error flags);
/// RM(1,3) -> FHT maximum likelihood with deterministic tie-breaking.
PaperScheme make_scheme(SchemeId id, const circuit::CellLibrary& library);

/// All four schemes in the paper's Fig. 5 order.
std::vector<PaperScheme> make_all_schemes(const circuit::CellLibrary& library);

}  // namespace sfqecc::core
