// The paper's concrete artifacts, assembled: the three lightweight encoders
// (and the no-encoder reference link) with their codes, synthesized SFQ
// netlists and operating decoders — everything the benches and examples need
// to reproduce Tables I-II and Figures 3 & 5.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "circuit/encoder_builder.hpp"
#include "code/decoder.hpp"
#include "code/linear_code.hpp"

namespace sfqecc::core {

/// One fully assembled transmission scheme.
struct PaperScheme {
  std::string name;
  std::unique_ptr<code::LinearCode> code;       ///< null for the no-encoder link
  std::unique_ptr<code::LinearCode> base_code;  ///< inner code (extended Hamming only)
  std::unique_ptr<code::Decoder> decoder;       ///< the operating decoder; null for raw
  std::unique_ptr<circuit::BuiltEncoder> encoder;

  bool has_code() const noexcept { return code != nullptr; }
};

/// Identifier for the four schemes of Fig. 5, in the paper's order.
enum class SchemeId { kNoEncoder, kRm13, kHamming74, kHamming84 };

const char* scheme_name(SchemeId id) noexcept;

/// Builds one scheme against the given library.
/// Decoders: Hamming(7,4) -> syndrome (always-correct, perfect code);
/// Hamming(8,4) -> correct-1/detect-2 (drives the link error flags);
/// RM(1,3) -> FHT maximum likelihood with deterministic tie-breaking.
PaperScheme make_scheme(SchemeId id, const circuit::CellLibrary& library);

/// All four schemes in the paper's Fig. 5 order.
std::vector<PaperScheme> make_all_schemes(const circuit::CellLibrary& library);

}  // namespace sfqecc::core
