#include "core/paper_encoders.hpp"

namespace sfqecc::core {

const char* scheme_name(SchemeId id) noexcept {
  switch (id) {
    case SchemeId::kNoEncoder: return "No encoder";
    case SchemeId::kRm13: return "RM(1,3)";
    case SchemeId::kHamming74: return "Hamming(7,4)";
    case SchemeId::kHamming84: return "Hamming(8,4)";
  }
  return "?";
}

const char* paper_descriptor(SchemeId id) noexcept {
  switch (id) {
    case SchemeId::kNoEncoder: return "none";
    case SchemeId::kRm13: return "rm:1,3";
    case SchemeId::kHamming74: return "hamming:7,4";
    case SchemeId::kHamming84: return "hamming:8,4x";
  }
  return "?";
}

std::vector<std::string> paper_descriptors() {
  return {paper_descriptor(SchemeId::kNoEncoder), paper_descriptor(SchemeId::kRm13),
          paper_descriptor(SchemeId::kHamming74),
          paper_descriptor(SchemeId::kHamming84)};
}

PaperScheme make_scheme(SchemeId id, const circuit::CellLibrary& library) {
  return SchemeCatalog::builtin().resolve(paper_descriptor(id), library);
}

std::vector<PaperScheme> make_all_schemes(const circuit::CellLibrary& library) {
  std::vector<PaperScheme> schemes;
  for (const std::string& descriptor : paper_descriptors())
    schemes.push_back(SchemeCatalog::builtin().resolve(descriptor, library));
  return schemes;
}

}  // namespace sfqecc::core
