#include "core/paper_encoders.hpp"

#include "code/hamming.hpp"
#include "code/reed_muller.hpp"
#include "util/expect.hpp"

namespace sfqecc::core {

const char* scheme_name(SchemeId id) noexcept {
  switch (id) {
    case SchemeId::kNoEncoder: return "No encoder";
    case SchemeId::kRm13: return "RM(1,3)";
    case SchemeId::kHamming74: return "Hamming(7,4)";
    case SchemeId::kHamming84: return "Hamming(8,4)";
  }
  return "?";
}

PaperScheme make_scheme(SchemeId id, const circuit::CellLibrary& library) {
  PaperScheme scheme;
  scheme.name = scheme_name(id);
  switch (id) {
    case SchemeId::kNoEncoder: {
      scheme.encoder = std::make_unique<circuit::BuiltEncoder>(
          circuit::build_no_encoder_link(4, library));
      return scheme;
    }
    case SchemeId::kRm13: {
      scheme.code = std::make_unique<code::LinearCode>(code::paper_rm13());
      // Standard FHT argmax decoding with deterministic tie-breaking — the
      // paper's "standard decoding techniques" (its Table I credits RM(1,3)
      // with correcting certain 2-bit patterns, which requires tie-breaking
      // rather than erasure output).
      scheme.decoder =
          std::make_unique<code::RmFhtDecoder>(*scheme.code, /*flag_ties=*/false);
      break;
    }
    case SchemeId::kHamming74: {
      scheme.code = std::make_unique<code::LinearCode>(code::paper_hamming74());
      scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
      break;
    }
    case SchemeId::kHamming84: {
      scheme.code = std::make_unique<code::LinearCode>(code::paper_hamming84());
      scheme.base_code = std::make_unique<code::LinearCode>(code::paper_hamming74());
      scheme.decoder = std::make_unique<code::ExtendedHammingDecoder>(*scheme.code,
                                                                      *scheme.base_code);
      break;
    }
  }
  scheme.encoder = std::make_unique<circuit::BuiltEncoder>(
      circuit::build_encoder(*scheme.code, library));
  return scheme;
}

std::vector<PaperScheme> make_all_schemes(const circuit::CellLibrary& library) {
  std::vector<PaperScheme> schemes;
  schemes.push_back(make_scheme(SchemeId::kNoEncoder, library));
  schemes.push_back(make_scheme(SchemeId::kRm13, library));
  schemes.push_back(make_scheme(SchemeId::kHamming74, library));
  schemes.push_back(make_scheme(SchemeId::kHamming84, library));
  return schemes;
}

}  // namespace sfqecc::core
