// Values the paper reports, kept in one place so benches and EXPERIMENTS.md
// can print paper-vs-measured side by side.
#pragma once

#include <cstddef>

namespace sfqecc::core::paper {

// ---- Table I (detected / corrected errors) ---------------------------------
struct TableIRow {
  const char* code;
  std::size_t dmin;
  std::size_t worst_detected;
  std::size_t worst_corrected;
  std::size_t best_detected;
  std::size_t best_corrected;
};
inline constexpr TableIRow kTableI[] = {
    {"Hamming(7,4)", 3, 1, 1, 3, 1},
    {"Hamming(8,4)", 4, 3, 1, 3, 1},
    {"RM(1,3)", 4, 3, 1, 3, 2},
};

/// Section II-C: Hamming(7,4) "can correctly identify 28 out of the 35
/// possible 3-bit error patterns, an 80 % detection rate".
inline constexpr std::size_t kH74ThreeBitDetected = 28;
inline constexpr std::size_t kH74ThreeBitPatterns = 35;

// ---- Table II (circuit-level comparison) ------------------------------------
struct TableIIRow {
  const char* encoder;
  std::size_t xor_gates;
  std::size_t dffs;
  std::size_t splitters;
  std::size_t sfq_to_dc;
  std::size_t jj_count;
  double power_uw;
  double area_mm2;
};
inline constexpr TableIIRow kTableII[] = {
    {"RM(1,3)", 8, 7, 26, 8, 305, 101.5, 0.193},
    {"Hamming(7,4)", 5, 8, 20, 7, 247, 81.7, 0.158},
    {"Hamming(8,4)", 6, 8, 23, 8, 278, 92.3, 0.177},
};

/// Section III: 10 data splitters + 13 clock splitters for Hamming(8,4).
inline constexpr std::size_t kH84DataSplitters = 10;
inline constexpr std::size_t kH84ClockSplitters = 13;

// ---- Fig. 3 ------------------------------------------------------------------
inline constexpr double kFig3ClockGhz = 5.0;
inline constexpr const char* kFig3Message = "1011";
inline constexpr const char* kFig3Codeword = "01100110";
inline constexpr double kFig3MessageTimeNs = 0.1;
inline constexpr double kFig3CodewordTimeNs = 0.4;
inline constexpr std::size_t kFig3LogicDepth = 2;

// ---- Fig. 5 ------------------------------------------------------------------
inline constexpr std::size_t kFig5Chips = 1000;
inline constexpr std::size_t kFig5MessagesPerChip = 100;
inline constexpr double kFig5Spread = 0.20;
struct Fig5PZero {
  const char* scheme;
  double p_zero;  ///< probability of zero errors in 100 decoded messages
};
inline constexpr Fig5PZero kFig5PZeros[] = {
    {"No encoder", 0.800},
    {"RM(1,3)", 0.867},
    {"Hamming(7,4)", 0.898},
    {"Hamming(8,4)", 0.927},
};

// ---- Baseline [14] -----------------------------------------------------------
inline constexpr std::size_t kPeng3832XorGates = 84;
inline constexpr std::size_t kPeng3832Dffs = 135;

}  // namespace sfqecc::core::paper
