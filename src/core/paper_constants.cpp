#include "core/paper_constants.hpp"

// Constants only; this translation unit anchors the component.
namespace sfqecc::core::paper {}
