#include "core/scheme_catalog.hpp"

#include <algorithm>

#include "code/bch.hpp"
#include "code/code3832.hpp"
#include "code/hamming.hpp"
#include "code/hsiao.hpp"
#include "code/reed_muller.hpp"
#include "code/soft_decoder.hpp"
#include "util/expect.hpp"

namespace sfqecc::core {
namespace {

constexpr std::size_t kNpos = std::string_view::npos;

/// Standard-array decoding enumerates all 2^(n-k) coset leaders; beyond this
/// the table is no longer "lightweight" (see the ROADMAP open item on a
/// meet-in-the-middle construction).
constexpr std::size_t kMaxSyndromeTableBits = 16;

bool default_build(const SchemeDescriptor& desc) {
  return desc.synthesis.empty() || desc.synthesis == "paar";
}

const std::string& default_decoder_for(const SchemeCatalog::FamilyInfo& info,
                                       const SchemeDescriptor& desc) {
  if (desc.extended && !info.extended_default_decoder.empty())
    return info.extended_default_decoder;
  return info.default_decoder;
}

void require_params(const SchemeDescriptor& desc, std::size_t count,
                    const char* shape) {
  if (desc.params.size() != count)
    throw ContractViolation("scheme family '" + desc.family + "' takes parameters " +
                            shape);
}

void require_not_extended(const SchemeDescriptor& desc) {
  if (desc.extended)
    throw ContractViolation("scheme family '" + desc.family +
                            "' has no extended ('x') variant");
}

void require_syndrome_table(const SchemeDescriptor& desc, const code::LinearCode& code) {
  if (code.parity_bits() > kMaxSyndromeTableBits)
    throw ContractViolation(
        "decoder '" + desc.decoder + "' on '" + desc.family +
        "' would enumerate a 2^" + std::to_string(code.parity_bits()) +
        "-entry coset-leader table; pick a code with at most " +
        std::to_string(kMaxSyndromeTableBits) + " parity bits");
}

// ---- family factories -------------------------------------------------------

void make_none(const SchemeDescriptor& desc, const circuit::CellLibrary& library,
               Scheme& scheme) {
  require_params(desc, 1, "[k] (pass-through bit count, default 4)");
  require_not_extended(desc);
  const std::size_t bits = desc.params[0];
  expects(bits >= 1 && bits <= 16, "none:[k] needs 1 <= k <= 16");
  if (!desc.synthesis.empty())
    throw ContractViolation("the no-encoder scheme has nothing to synthesize; "
                            "drop the '@" + desc.synthesis + "' suffix");
  scheme.encoder = std::make_unique<circuit::BuiltEncoder>(
      circuit::build_no_encoder_link(bits, library));
  if (bits == 4) scheme.name = "No encoder";
}

void make_rm(const SchemeDescriptor& desc, const circuit::CellLibrary&,
             Scheme& scheme) {
  require_params(desc, 2, "r,m (order and log2 length)");
  require_not_extended(desc);
  const std::size_t r = desc.params[0], m = desc.params[1];
  expects(m >= 1 && m <= 6, "rm:r,m needs 1 <= m <= 6 (codeword must fit the "
                            "link's 64-bit fast path)");
  expects(r >= 1 && r <= m, "rm:r,m needs 1 <= r <= m");
  const bool paper = r == 1 && m == 3;
  scheme.code = std::make_unique<code::LinearCode>(
      paper ? code::paper_rm13() : code::reed_muller(r, m));
  const std::string& dec = desc.decoder;
  if (dec != "syndrome" && r != 1)
    throw ContractViolation("decoder '" + dec + "' requires RM(1,m); "
                            "use /syndrome for higher-order RM codes");
  if (dec == "ml") {
    // Deterministic tie-breaking — standard-array decoding, the paper's
    // operating decoder for RM(1,3) (Table I credits certain 2-bit patterns).
    scheme.decoder = std::make_unique<code::RmFhtDecoder>(*scheme.code, false);
  } else if (dec == "ml-flag") {
    scheme.decoder = std::make_unique<code::RmFhtDecoder>(*scheme.code, true);
  } else if (dec == "majority") {
    scheme.decoder = std::make_unique<code::RmMajorityDecoder>(*scheme.code);
  } else if (dec == "soft") {
    scheme.decoder = std::make_unique<code::RmSoftBitDecoder>(*scheme.code);
  } else {  // syndrome
    require_syndrome_table(desc, *scheme.code);
    scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
  }
  if (paper && dec == "ml" && default_build(desc)) scheme.name = "RM(1,3)";
}

void make_hamming(const SchemeDescriptor& desc, const circuit::CellLibrary&,
                  Scheme& scheme) {
  require_params(desc, 2, "n,k (append x for the extended code)");
  const std::size_t n = desc.params[0], k = desc.params[1];
  std::size_t r = 2;
  if (!desc.extended) {
    while (r <= 6 && (std::size_t{1} << r) - 1 < n) ++r;
    if (r > 6 || (std::size_t{1} << r) - 1 != n || k + r != n)
      throw ContractViolation("hamming:n,k requires n = 2^r - 1, k = n - r "
                              "(2 <= r <= 6); e.g. hamming:7,4 or hamming:15,11");
    if (desc.decoder == "secded")
      throw ContractViolation("decoder 'secded' needs the overall parity bit of "
                              "the extended code — use hamming:" +
                              std::to_string(n + 1) + "," + std::to_string(k) + "x");
    const bool paper = n == 7 && k == 4;
    scheme.code = std::make_unique<code::LinearCode>(
        paper ? code::paper_hamming74() : code::hamming_code(r));
    if (desc.decoder == "detect") {
      scheme.decoder = std::make_unique<code::DetectOnlyDecoder>(*scheme.code);
    } else {  // syndrome — always-correct on the perfect code
      scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
    }
    if (paper && desc.decoder == "syndrome" && default_build(desc))
      scheme.name = "Hamming(7,4)";
  } else {
    while (r <= 6 && (std::size_t{1} << r) < n) ++r;
    if (r > 6 || (std::size_t{1} << r) != n || k + r + 1 != n)
      throw ContractViolation("hamming:n,kx requires n = 2^r, k = n - r - 1 "
                              "(2 <= r <= 6); e.g. hamming:8,4x");
    const bool paper = n == 8 && k == 4;
    scheme.base_code = std::make_unique<code::LinearCode>(
        paper ? code::paper_hamming74() : code::hamming_code(r));
    scheme.code = std::make_unique<code::LinearCode>(
        paper ? code::paper_hamming84()
              : code::extend_with_overall_parity(*scheme.base_code));
    if (desc.decoder == "secded") {
      scheme.decoder = std::make_unique<code::ExtendedHammingDecoder>(
          *scheme.code, *scheme.base_code);
    } else if (desc.decoder == "detect") {
      scheme.decoder = std::make_unique<code::DetectOnlyDecoder>(*scheme.code);
    } else {  // syndrome
      scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
    }
    if (paper && desc.decoder == "secded" && default_build(desc))
      scheme.name = "Hamming(8,4)";
  }
}

void make_hsiao(const SchemeDescriptor& desc, const circuit::CellLibrary&,
                Scheme& scheme) {
  require_params(desc, 2, "n,k");
  require_not_extended(desc);
  const std::size_t n = desc.params[0], k = desc.params[1];
  // Bound n before constructing anything: the resolve()-time fast-path check
  // would come too late to stop a huge generator-matrix build.
  expects(n <= 64, "hsiao:n,k needs n <= 64 (the link's 64-bit fast path)");
  expects(k >= 1 && k < n, "hsiao:n,k needs 1 <= k < n");
  const std::size_t r = n - k;
  if (r < 3 || r > 16 || k > (std::size_t{1} << (r - 1)) - r)
    throw ContractViolation("no Hsiao(" + std::to_string(n) + "," +
                            std::to_string(k) + ") exists: needs 3 <= n-k <= 16 "
                            "and k <= 2^(n-k-1) - (n-k); e.g. hsiao:8,4 or "
                            "hsiao:13,8");
  scheme.code = std::make_unique<code::LinearCode>(code::hsiao_code(k, r));
  if (desc.decoder == "secded") {
    // Correct single errors, flag everything heavier — the SEC-DED operating
    // point the odd-weight-column construction is designed for.
    scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code, 1);
  } else if (desc.decoder == "detect") {
    scheme.decoder = std::make_unique<code::DetectOnlyDecoder>(*scheme.code);
  } else {  // syndrome
    scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
  }
}

void make_bch_scheme(const SchemeDescriptor& desc, const circuit::CellLibrary&,
                     Scheme& scheme) {
  require_params(desc, 2, "n,k");
  require_not_extended(desc);
  // Bound n before make_bch: its designed-distance scan over GF(2^m) is
  // expensive for large m, and the resolve()-time fast-path check would only
  // run after construction.
  expects(desc.params[0] <= 64,
          "bch:n,k needs n <= 64 (2^m - 1 with m <= 6; the link's 64-bit fast path)");
  code::BchCode bch = code::make_bch(desc.params[0], desc.params[1]);
  scheme.code = std::make_unique<code::LinearCode>(bch.to_linear_code());
  if (desc.decoder == "bm") {
    scheme.decoder =
        std::make_unique<code::BchDecoder>(std::move(bch), *scheme.code);
  } else if (desc.decoder == "detect") {
    require_syndrome_table(desc, *scheme.code);
    scheme.decoder = std::make_unique<code::DetectOnlyDecoder>(*scheme.code);
  } else {  // syndrome
    require_syndrome_table(desc, *scheme.code);
    scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
  }
}

void make_code3832(const SchemeDescriptor& desc, const circuit::CellLibrary&,
                   Scheme& scheme) {
  require_params(desc, 0, "none (the fixed (38,32) code of [14])");
  require_not_extended(desc);
  scheme.code = std::make_unique<code::LinearCode>(code::code3832());
  if (desc.decoder == "detect") {
    scheme.decoder = std::make_unique<code::DetectOnlyDecoder>(*scheme.code);
  } else {  // syndrome
    scheme.decoder = std::make_unique<code::SyndromeDecoder>(*scheme.code);
  }
}

}  // namespace

std::vector<link::SchemeSpec> scheme_specs(const std::vector<Scheme>& schemes) {
  std::vector<link::SchemeSpec> specs;
  specs.reserve(schemes.size());
  for (const Scheme& scheme : schemes) specs.push_back(scheme.spec());
  return specs;
}

std::string SchemeDescriptor::text() const {
  std::string out = family;
  if (!params.empty()) {
    out += ':';
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(params[i]);
    }
    if (extended) out += 'x';
  }
  if (!decoder.empty()) out += '/' + decoder;
  if (!synthesis.empty()) out += '@' + synthesis;
  return out;
}

std::optional<SchemeDescriptor> parse_scheme_descriptor(std::string_view text,
                                                        DescriptorParseError* error) {
  DescriptorParseError scratch;
  DescriptorParseError& err = error != nullptr ? *error : scratch;
  const auto fail = [&](std::string message, std::size_t position) {
    err = {std::move(message), position};
    return std::optional<SchemeDescriptor>{};
  };
  if (text.empty()) return fail("empty scheme descriptor", 0);

  SchemeDescriptor desc;
  std::string_view head = text;

  // Suffixes, outermost first: "@synthesis" then "/decoder" (strict order).
  const std::size_t at = head.find('@');
  if (at != kNpos) {
    const std::string_view synth = head.substr(at + 1);
    if (synth.empty()) return fail("missing synthesis algorithm after '@'", at + 1);
    if (synth.find('@') != kNpos)
      return fail("duplicate '@' — one synthesis suffix allowed",
                  at + 1 + synth.find('@'));
    if (synth.find('/') != kNpos)
      return fail("'/decoder' must come before '@synthesis'",
                  at + 1 + synth.find('/'));
    desc.synthesis = std::string(synth);
    head = head.substr(0, at);
  }
  const std::size_t slash = head.find('/');
  if (slash != kNpos) {
    const std::string_view dec = head.substr(slash + 1);
    if (dec.empty()) return fail("missing decoder tag after '/'", slash + 1);
    if (dec.find('/') != kNpos)
      return fail("duplicate '/' — one decoder suffix allowed",
                  slash + 1 + dec.find('/'));
    desc.decoder = std::string(dec);
    head = head.substr(0, slash);
  }

  // Legacy aliases from the pre-catalog --schemes grammar. They parse
  // cleanly, so the offset shift can never surface in an error.
  if (head == "rm13") head = "rm:1,3";
  else if (head == "h74") head = "hamming:7,4";
  else if (head == "h84") head = "hamming:8,4x";

  const std::size_t colon = head.find(':');
  const std::string_view family = colon == kNpos ? head : head.substr(0, colon);
  if (family.empty()) return fail("missing scheme family", 0);
  // A family starts with a letter — that is what lets comma-separated
  // descriptor lists ("none,hamming:7,4") be split unambiguously: fragments
  // starting with a digit are parameter continuations, not new descriptors.
  if (!(family[0] >= 'a' && family[0] <= 'z'))
    return fail("scheme family must start with a lowercase letter", 0);
  for (std::size_t i = 1; i < family.size(); ++i) {
    const char c = family[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_'))
      return fail("scheme family may contain only a-z, 0-9 and '_'", i);
  }
  desc.family = std::string(family);

  if (colon != kNpos) {
    const std::string_view params = head.substr(colon + 1);
    if (params.empty()) return fail("missing parameters after ':'", colon + 1);
    std::size_t start = 0;
    for (;;) {
      const std::size_t comma = params.find(',', start);
      const std::size_t end = comma == kNpos ? params.size() : comma;
      const std::size_t offset = colon + 1 + start;  // into the descriptor text
      if (end == start) return fail("empty parameter", offset);
      const bool last = comma == kNpos;
      std::size_t value = 0;
      for (std::size_t i = start; i < end; ++i) {
        const char c = params[i];
        if (c == 'x' && last && i + 1 == end && i > start) {
          desc.extended = true;
          break;
        }
        if (c < '0' || c > '9')
          return fail("parameter must be a non-negative integer "
                      "(an 'x' may only trail the last parameter)",
                      colon + 1 + i);
        value = value * 10 + static_cast<std::size_t>(c - '0');
        if (value > 100000) return fail("parameter out of range", offset);
      }
      desc.params.push_back(value);
      if (last) break;
      start = comma + 1;
    }
  }
  return desc;
}

void SchemeCatalog::register_family(FamilyInfo info, Factory factory) {
  expects(!info.family.empty(), "scheme family needs a name");
  expects(factory != nullptr, "scheme family needs a factory");
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].family == info.family) {
      infos_[i] = std::move(info);
      factories_[i] = std::move(factory);
      return;
    }
  }
  infos_.push_back(std::move(info));
  factories_.push_back(std::move(factory));
}

const SchemeCatalog::FamilyInfo* SchemeCatalog::find_family(
    std::string_view family) const noexcept {
  for (const FamilyInfo& info : infos_)
    if (info.family == family) return &info;
  return nullptr;
}

std::string SchemeCatalog::canonical(const SchemeDescriptor& desc) const {
  SchemeDescriptor c = desc;
  if (const FamilyInfo* info = find_family(desc.family)) {
    if (c.decoder == default_decoder_for(*info, desc)) c.decoder.clear();
    if (c.params.empty() && !info->default_params.empty())
      c.params = info->default_params;
    if (c.params == info->default_params && !c.extended) c.params.clear();
  }
  if (c.synthesis == "paar") c.synthesis.clear();
  return c.text();
}

Scheme SchemeCatalog::resolve(const std::string& descriptor,
                              const circuit::CellLibrary& library) const {
  DescriptorParseError error;
  const std::optional<SchemeDescriptor> desc =
      parse_scheme_descriptor(descriptor, &error);
  if (!desc)
    throw ContractViolation("bad scheme descriptor '" + descriptor +
                            "': " + error.message);
  return resolve(*desc, library);
}

Scheme SchemeCatalog::resolve(const SchemeDescriptor& desc,
                              const circuit::CellLibrary& library) const {
  const FamilyInfo* info = find_family(desc.family);
  std::size_t index = 0;
  if (info == nullptr) {
    std::string known;
    for (const FamilyInfo& f : infos_) {
      if (!known.empty()) known += ", ";
      known += f.family;
    }
    throw ContractViolation("unknown scheme family '" + desc.family +
                            "' (known: " + known + ")");
  }
  index = static_cast<std::size_t>(info - infos_.data());

  SchemeDescriptor resolved = desc;
  if (resolved.params.empty() && !info->default_params.empty())
    resolved.params = info->default_params;
  if (resolved.decoder.empty()) {
    resolved.decoder = default_decoder_for(*info, resolved);
  } else if (std::find(info->decoders.begin(), info->decoders.end(),
                       resolved.decoder) == info->decoders.end()) {
    std::string valid;
    for (const std::string& d : info->decoders) {
      if (!valid.empty()) valid += ", ";
      valid += d;
    }
    throw ContractViolation("scheme family '" + desc.family + "' has no decoder '" +
                            resolved.decoder + "'" +
                            (valid.empty() ? " (it takes none)"
                                           : " (valid: " + valid + ")"));
  }

  Scheme scheme;
  if (!resolved.synthesis.empty()) {
    const std::optional<circuit::SynthesisAlgorithm> algorithm =
        circuit::parse_synthesis_algorithm(resolved.synthesis);
    if (!algorithm)
      throw ContractViolation("unknown synthesis algorithm '@" + resolved.synthesis +
                              "' (valid: paar, paar-unbounded, tree, chain)");
    scheme.build_options.algorithm = *algorithm;
  }

  factories_[index](resolved, library, scheme);

  if (scheme.code) {
    expects(scheme.code->has_fast_path(),
            "catalog schemes must fit the link's 64-bit fast path (n <= 64)");
    // The kernel draws messages with `rng.below(1 << k)`: k = 64 would shift
    // by the word width (UB), so the full 64-bit message space is out.
    expects(scheme.code->k() <= 63,
            "catalog schemes must have k <= 63 (the kernel draws k-bit messages "
            "from a 64-bit stream)");
  }
  if (!scheme.encoder) {
    expects(scheme.code != nullptr, "scheme factory built neither code nor encoder");
    scheme.encoder = std::make_unique<circuit::BuiltEncoder>(
        circuit::build_encoder(*scheme.code, library, scheme.build_options));
  }
  scheme.descriptor = canonical(desc);
  if (scheme.name.empty()) scheme.name = scheme.descriptor;
  return scheme;
}

const SchemeCatalog& SchemeCatalog::builtin() {
  static const SchemeCatalog catalog = with_builtins();
  return catalog;
}

SchemeCatalog SchemeCatalog::with_builtins() {
  SchemeCatalog catalog;
  catalog.register_family(
      {.family = "none",
       .params_help = "[k]  pass-through bit count (default 4)",
       .default_params = {4},
       .default_decoder = "",
       .extended_default_decoder = "",
       .decoders = {},
       .summary = "the paper's reference link: k uncoded channels",
       .example = "none"},
      make_none);
  catalog.register_family(
      {.family = "rm",
       .params_help = "r,m  order and log2 length (RM(1,3) is the paper's)",
       .default_params = {},
       .default_decoder = "ml",
       .extended_default_decoder = "",
       .decoders = {"ml", "ml-flag", "majority", "soft", "syndrome"},
       .summary = "Reed-Muller RM(r,m), FHT maximum-likelihood decoding",
       .example = "rm:1,3"},
      make_rm);
  catalog.register_family(
      {.family = "hamming",
       .params_help = "n,k  [2^r-1, 2^r-1-r]; append x for the extended code",
       .default_params = {},
       .default_decoder = "syndrome",
       .extended_default_decoder = "secded",
       .decoders = {"syndrome", "secded", "detect"},
       .summary = "Hamming codes in the paper's generator layouts",
       .example = "hamming:7,4"},
      make_hamming);
  catalog.register_family(
      {.family = "hsiao",
       .params_help = "n,k  odd-weight-column SEC-DED (minimal XOR terms)",
       .default_params = {},
       .default_decoder = "secded",
       .extended_default_decoder = "",
       .decoders = {"secded", "syndrome", "detect"},
       .summary = "Hsiao SEC-DED, the memory-interface industry standard",
       .example = "hsiao:8,4"},
      make_hsiao);
  catalog.register_family(
      {.family = "bch",
       .params_help = "n,k  narrow-sense binary BCH, n = 2^m - 1",
       .default_params = {},
       .default_decoder = "bm",
       .extended_default_decoder = "",
       .decoders = {"bm", "syndrome", "detect"},
       .summary = "BCH codes, Berlekamp-Massey + Chien decoding",
       .example = "bch:15,7"},
      make_bch_scheme);
  catalog.register_family(
      {.family = "code3832",
       .params_help = "(none)  the fixed (38,32) SEC code of Peng et al. [14]",
       .default_params = {},
       .default_decoder = "syndrome",
       .extended_default_decoder = "",
       .decoders = {"syndrome", "detect"},
       .summary = "the prior-art SFQ ECC baseline the paper compares against",
       .example = "code3832"},
      make_code3832);
  return catalog;
}

}  // namespace sfqecc::core
