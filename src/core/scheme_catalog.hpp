// String-addressable scheme catalog: the open axis over (code family,
// decoder, synthesis algorithm).
//
// A textual descriptor names one fully assembled transmission scheme:
//
//   descriptor := family [":" params] ["/" decoder] ["@" synthesis]
//
//   family     lowercase token registered in the catalog
//              (built-ins: none, rm, hamming, hsiao, bch, code3832)
//   params     comma-separated non-negative integers, family-specific
//              (rm takes r,m; hamming/hsiao/bch take n,k). A trailing "x"
//              on the last parameter selects the extended (overall-parity)
//              variant where the family supports one: hamming:8,4x.
//   decoder    decoder tag; omitted = the family default. Built-in tags:
//              syndrome (standard-array), secded (correct-1/detect-rest),
//              detect (detect-only), ml / ml-flag (RM(1,m) FHT, tie-break /
//              tie-flag), majority (Reed majority logic), soft (soft-input
//              FHT fed hard bits), bm (BCH Berlekamp-Massey).
//   synthesis  encoder synthesis algorithm: paar (default), paar-unbounded,
//              tree, chain — circuit::SynthesisAlgorithm by name.
//
// Examples: "none", "rm:1,3", "hamming:7,4", "hamming:8,4x", "hsiao:8,4",
// "bch:15,7", "code3832", "rm:1,3/majority", "hamming:7,4@tree".
// Legacy aliases rm13, h74 and h84 resolve to the paper descriptors.
//
// The catalog resolves a descriptor into an owning core::Scheme — code,
// operating decoder and synthesized SFQ encoder in one movable value — which
// replaces the closed SchemeId enum as the way schemes enter the campaign
// engine (core/paper_encoders.hpp keeps SchemeId as a thin wrapper over the
// four canonical paper descriptors). Canonical descriptors for the paper's
// four schemes resolve to their historical display names ("No encoder",
// "RM(1,3)", "Hamming(7,4)", "Hamming(8,4)"), so reports, checkpoint
// fingerprints and artifact-cache keys are byte-for-byte identical to
// enum-built schemes; every other scheme is named by its canonical
// descriptor string, which is what enters reports and fingerprints.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/encoder_builder.hpp"
#include "code/decoder.hpp"
#include "code/linear_code.hpp"
#include "link/scheme_spec.hpp"

namespace sfqecc::core {

/// One fully assembled transmission scheme, owned. Movable, not copyable
/// (the decoder holds references into `code`/`base_code`, which moving
/// preserves — the pointees stay put).
struct Scheme {
  std::string descriptor;  ///< canonical descriptor (defaults omitted)
  std::string name;        ///< display/report identity (paper names for the
                           ///< four canonical paper descriptors)
  std::unique_ptr<code::LinearCode> code;       ///< null for the no-encoder link
  std::unique_ptr<code::LinearCode> base_code;  ///< inner code (secded decoding)
  std::unique_ptr<code::Decoder> decoder;       ///< operating decoder; null for raw
  std::unique_ptr<circuit::BuiltEncoder> encoder;
  circuit::EncoderBuildOptions build_options;   ///< options the encoder was built with

  bool has_code() const noexcept { return code != nullptr; }

  /// Borrowed view for the link layer / campaign engine. The Scheme must
  /// outlive every use of the returned spec.
  link::SchemeSpec spec() const {
    return link::SchemeSpec{name, encoder.get(), code.get(), decoder.get()};
  }
};

/// Borrowed views of a whole scheme list (what engine::run_campaign takes).
std::vector<link::SchemeSpec> scheme_specs(const std::vector<Scheme>& schemes);

/// A parsed (but not yet resolved) descriptor.
struct SchemeDescriptor {
  std::string family;
  std::vector<std::size_t> params;
  bool extended = false;   ///< trailing "x" on the last parameter
  std::string decoder;     ///< empty = family default
  std::string synthesis;   ///< empty = default (paar)

  /// Normalized text form, keeping decoder/synthesis exactly as given.
  std::string text() const;
};

/// Parse failure: what went wrong and where in the descriptor text (byte
/// offset), so CLIs can point a caret at the offending character.
struct DescriptorParseError {
  std::string message;
  std::size_t position = 0;
};

/// Parses descriptor syntax (no family/param validation — that happens at
/// resolve time). Returns nullopt and fills `error` (if given) on failure.
/// Legacy aliases (rm13, h74, h84) are expanded here.
std::optional<SchemeDescriptor> parse_scheme_descriptor(
    std::string_view text, DescriptorParseError* error = nullptr);

/// Registry of scheme families. Resolving a descriptor looks up its family,
/// validates the decoder tag, invokes the family factory to build the code
/// and decoder, then synthesizes the encoder with the requested algorithm.
/// Resolution errors throw sfqecc::ContractViolation with a descriptive
/// message. The catalog is copyable: take with_builtins() and
/// register_family() to extend the scheme axis without touching core.
class SchemeCatalog {
 public:
  struct FamilyInfo {
    std::string family;                 ///< descriptor token
    std::string params_help;            ///< e.g. "n,k  (x suffix: extended)"
    std::vector<std::size_t> default_params;  ///< used when params are omitted
    std::string default_decoder;        ///< empty = scheme has no decoder
    /// Default decoder of the extended ("x") variant when it differs (e.g.
    /// extended Hamming operates secded, plain Hamming syndrome). Empty =
    /// same as default_decoder.
    std::string extended_default_decoder;
    std::vector<std::string> decoders;  ///< accepted decoder tags
    std::string summary;                ///< one line for --list-schemes / docs
    std::string example;                ///< a resolvable example descriptor
  };

  /// Fills `scheme.code` / `base_code` / `decoder` (and may set `name` /
  /// `encoder` — the no-encoder family builds its own pass-through netlist).
  /// `desc.decoder` arrives validated and defaulted (never empty unless the
  /// family has no decoders).
  using Factory = std::function<void(const SchemeDescriptor& desc,
                                     const circuit::CellLibrary& library,
                                     Scheme& scheme)>;

  /// Registers (or replaces) a family under info.family.
  void register_family(FamilyInfo info, Factory factory);

  const FamilyInfo* find_family(std::string_view family) const noexcept;
  const std::vector<FamilyInfo>& families() const noexcept { return infos_; }

  /// Parses and resolves in one step.
  Scheme resolve(const std::string& descriptor,
                 const circuit::CellLibrary& library) const;
  Scheme resolve(const SchemeDescriptor& desc,
                 const circuit::CellLibrary& library) const;

  /// Canonical text of a descriptor under this catalog: family defaults
  /// (decoder, paar synthesis, default parameters) are omitted.
  std::string canonical(const SchemeDescriptor& desc) const;

  /// The shared immutable catalog of built-in families.
  static const SchemeCatalog& builtin();
  /// A mutable copy of the built-in catalog, for registering new families.
  static SchemeCatalog with_builtins();

 private:
  std::vector<FamilyInfo> infos_;        // registration order
  std::vector<Factory> factories_;       // parallel to infos_
};

}  // namespace sfqecc::core
