// Stop-and-wait ARQ over the cryogenic data link.
//
// The paper's Fig. 1 gives the decoder "error flags" toward the receiver's
// system side; the natural protocol built on them is retransmission: a
// flagged (detected-uncorrectable) frame is discarded and the message is sent
// again. This module implements stop-and-wait ARQ and the metrics that make
// the schemes comparable at system level:
//   * residual error rate — wrong messages that were *accepted*,
//   * average attempts per delivered message (goodput cost),
//   * surrender rate — messages dropped after max_attempts flags.
// Under ARQ, detection capability (Hamming(8,4)'s extra parity) converts
// directly into delivered-message integrity, which is the quantitative basis
// for the erasure accounting used in the Fig. 5 reproduction (DESIGN.md §6).
#pragma once

#include <cstddef>

#include "link/datalink.hpp"

namespace sfqecc::link {

struct ArqConfig {
  std::size_t max_attempts = 4;  ///< total tries per message (1 = no retransmission)
};

/// Outcome of delivering one message through ARQ.
struct ArqResult {
  code::BitVec delivered;       ///< accepted message (empty when surrendered)
  std::size_t attempts = 0;     ///< frames transmitted
  bool surrendered = false;     ///< every attempt was flagged
  bool residual_error = false;  ///< accepted but wrong
  std::size_t channel_bit_errors = 0;  ///< summed over all attempts
};

/// Sends `message` with retransmission on flagged frames.
ArqResult send_with_arq(DataLink& link, const code::BitVec& message, util::Rng& rng,
                        const ArqConfig& config = {});

/// Aggregate ARQ statistics over many messages on one chip.
struct ArqStats {
  std::size_t messages = 0;
  std::size_t delivered_ok = 0;
  std::size_t residual_errors = 0;
  std::size_t surrendered = 0;
  std::size_t total_frames = 0;

  double residual_error_rate() const noexcept {
    return messages ? static_cast<double>(residual_errors) /
                          static_cast<double>(messages)
                    : 0.0;
  }
  double mean_attempts() const noexcept {
    return messages ? static_cast<double>(total_frames) / static_cast<double>(messages)
                    : 0.0;
  }
};

/// Runs `count` random messages through ARQ on the link's installed chip.
ArqStats run_arq_session(DataLink& link, std::size_t count, util::Rng& message_rng,
                         util::Rng& channel_rng, const ArqConfig& config = {});

}  // namespace sfqecc::link
