// Cryogenic cable channel (4.2 K -> 50-300 K stage).
//
// Each SFQ-to-DC output drives one cable. The receiver is a threshold
// comparator (CMOS amplifier input): the transmitted DC level is attenuated,
// picks up additive Gaussian noise, and is sliced against a threshold. This
// is the binary channel the decoder sees.
#pragma once

#include "util/rng.hpp"

namespace sfqecc::link {

struct ChannelModel {
  double swing_mv = 1.0;         ///< transmitted DC swing (paper: up to 1 V after amplification; normalized here)
  double attenuation = 1.0;      ///< multiplicative amplitude loss over the cable (0..1]
  double noise_sigma_mv = 0.0;   ///< additive Gaussian noise at the receiver input
  double threshold_mv = 0.5;     ///< receiver slicing threshold

  /// Analytic bit-error probability of the channel alone (equal for 0/1 when
  /// the threshold sits at the midpoint).
  double bit_error_probability() const;

  bool operator==(const ChannelModel&) const = default;
};

/// Transmits one DC level over the cable; returns the received bit.
bool transmit_level(const ChannelModel& channel, bool level, util::Rng& rng);

}  // namespace sfqecc::link
