#include "link/monte_carlo.hpp"

#include <algorithm>
#include <thread>

#include "util/expect.hpp"
#include "util/stats.hpp"

namespace sfqecc::link {
namespace {

/// Distinct substream domains, mixed into the master seed so that PPV,
/// message, channel and simulator-noise streams never collide.
enum class Domain : std::uint64_t {
  kPpv = 0x50505601,
  kMessages = 0x4d534701,
  kChannel = 0x43484e01,
  kSimNoise = 0x53494d01,
};

std::uint64_t stream_index(std::size_t scheme, std::size_t chip, std::size_t chips) {
  return static_cast<std::uint64_t>(scheme) * chips + chip;
}

}  // namespace

std::vector<SchemeOutcome> run_monte_carlo(const std::vector<SchemeSpec>& schemes,
                                           const circuit::CellLibrary& library,
                                           const MonteCarloConfig& config) {
  expects(!schemes.empty(), "no schemes");
  expects(config.chips > 0 && config.messages_per_chip > 0, "empty experiment");

  std::size_t threads = config.threads;
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, config.chips);

  std::vector<SchemeOutcome> outcomes(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    outcomes[s].name = schemes[s].name;
    outcomes[s].errors_per_chip.assign(config.chips, 0);
    outcomes[s].flagged_per_chip.assign(config.chips, 0);
  }

  auto worker = [&](std::size_t thread_index) {
    // Each thread owns one DataLink (simulator) per scheme plus one reusable
    // chip-sample buffer, so the steady-state chip loop never allocates. The
    // per-(scheme, chip) RNG substreams below are untouched by the reuse:
    // results stay bit-identical for any thread count.
    std::vector<DataLink> links;
    links.reserve(schemes.size());
    for (const SchemeSpec& scheme : schemes)
      links.emplace_back(*scheme.encoder, library, scheme.reference, scheme.decoder,
                         config.link);
    ppv::ChipSample sample;

    for (std::size_t chip = thread_index; chip < config.chips; chip += threads) {
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeSpec& scheme = schemes[s];
        const std::uint64_t stream = stream_index(s, chip, config.chips);

        util::Rng ppv_rng(config.seed ^ static_cast<std::uint64_t>(Domain::kPpv), stream);
        ppv::sample_chip_into(sample, scheme.encoder->netlist, library, config.spread,
                              ppv_rng);

        DataLink& dlink = links[s];
        dlink.install_chip(sample);
        dlink.reseed_noise(util::substream_seed(
            config.seed ^ static_cast<std::uint64_t>(Domain::kSimNoise), stream));

        util::Rng msg_rng(config.seed ^ static_cast<std::uint64_t>(Domain::kMessages),
                          stream);
        util::Rng chan_rng(config.seed ^ static_cast<std::uint64_t>(Domain::kChannel),
                           stream);

        const std::size_t k = scheme.encoder->message_inputs.size();
        std::size_t errors = 0, flagged = 0;
        for (std::size_t m = 0; m < config.messages_per_chip; ++m) {
          const code::BitVec message =
              code::BitVec::from_u64(k, msg_rng.below(std::uint64_t{1} << k));
          const FrameResult frame = dlink.send(message, chan_rng);
          if (frame.message_error) ++errors;
          if (frame.flagged) {
            ++flagged;
            if (config.count_flagged_as_error) ++errors;
          }
        }
        outcomes[s].errors_per_chip[chip] = errors;
        outcomes[s].flagged_per_chip[chip] = flagged;
      }
    }
  };

  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }

  for (SchemeOutcome& outcome : outcomes) {
    outcome.cdf = util::EmpiricalCdf(outcome.errors_per_chip);
    outcome.p_zero = outcome.cdf.at(0);
    util::Accumulator err_acc, flag_acc;
    for (std::size_t e : outcome.errors_per_chip) err_acc.add(static_cast<double>(e));
    for (std::size_t f : outcome.flagged_per_chip) flag_acc.add(static_cast<double>(f));
    outcome.mean_errors = err_acc.mean();
    outcome.mean_flagged = flag_acc.mean();
  }
  return outcomes;
}

}  // namespace sfqecc::link
