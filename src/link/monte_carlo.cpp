#include "link/monte_carlo.hpp"

#include "core/scheme_catalog.hpp"
#include "engine/campaign.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"

namespace sfqecc::link {

// Thin wrapper over the campaign engine: one hand-built cell carrying the
// MonteCarloConfig verbatim (so sim options like record_pulses pass through
// unchanged), executed by the engine's staged fabricate->simulate pipeline
// under the sharded work-stealing scheduler. The per-(scheme, chip) RNG
// substream layout lives in engine/kernel.hpp and is unchanged from the
// original implementation, so outcomes are bit-identical to historical runs
// at any thread count — and schemes interleave at shard granularity, so
// short schemes no longer idle threads at scheme boundaries. Being a single
// cell, this run has no cross-cell chip reuse; the engine detects that and
// bypasses its artifact cache, so the hot path is exactly the uncached one.
std::vector<SchemeOutcome> run_monte_carlo(const std::vector<SchemeSpec>& schemes,
                                           const circuit::CellLibrary& library,
                                           const MonteCarloConfig& config) {
  expects(!schemes.empty(), "no schemes");
  expects(config.chips > 0 && config.messages_per_chip > 0, "empty experiment");

  engine::CampaignSpec spec;
  spec.chips = config.chips;
  spec.messages_per_chip = config.messages_per_chip;
  spec.seed = config.seed;
  spec.count_flagged_as_error = config.count_flagged_as_error;

  engine::CampaignCell cell;
  cell.index = 0;
  cell.seed = config.seed;
  cell.spread = config.spread;
  cell.link = config.link;
  cell.label = engine::cell_label(cell.spread, cell.link, cell.arq);

  engine::RunnerOptions options;
  options.threads = config.threads;

  engine::CampaignResult campaign =
      engine::run_cells(spec, {cell}, schemes, library, options);

  std::vector<SchemeOutcome> outcomes(schemes.size());
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    engine::SchemeCellResult& result = campaign.cells[0].schemes[s];
    SchemeOutcome& outcome = outcomes[s];
    outcome.name = schemes[s].name;
    outcome.errors_per_chip = std::move(result.errors_per_chip);
    outcome.flagged_per_chip = std::move(result.flagged_per_chip);
    outcome.cdf = std::move(result.cdf);
    outcome.p_zero = result.p_zero;
    outcome.mean_errors = result.mean_errors;
    outcome.mean_flagged = result.mean_flagged;
  }
  return outcomes;
}

std::vector<SchemeOutcome> run_monte_carlo(const std::vector<core::Scheme>& schemes,
                                           const circuit::CellLibrary& library,
                                           const MonteCarloConfig& config) {
  return run_monte_carlo(core::scheme_specs(schemes), library, config);
}

}  // namespace sfqecc::link
