#include "link/datalink.hpp"

#include <memory>

#include "util/expect.hpp"

namespace sfqecc::link {

using code::BitVec;

namespace {

// The clock-snapshot replay reorders injection (clock before message); that
// is only order-equivalent when no message pulse shares a timestamp with a
// clock edge. Enumerate the edges exactly as inject_clock does (accumulated
// addition, inclusive end) so the check covers the timestamps actually
// injected. Combinational links (no clock injected) and non-positive periods
// (inject_clock rejects those later) are trivially usable.
bool clock_phase_clear_of_edges(const DataLinkConfig& config, std::size_t frame_cycles) {
  if (frame_cycles == 0 || config.clock_period_ps <= 0.0) return true;
  const double clock_until =
      config.clock_period_ps * static_cast<double>(frame_cycles) + 0.5;
  for (double t = config.clock_period_ps; t <= clock_until; t += config.clock_period_ps)
    if (config.input_phase_ps == t) return false;
  return true;
}

}  // namespace

FrameResult finish_frame(const DataLinkConfig& config, const code::LinearCode* reference,
                         const code::Decoder* decoder, const BitVec& message,
                         const BitVec& transmitted, util::Rng& rng) {
  FrameResult frame;
  frame.sent_message = message;
  frame.reference_codeword = reference != nullptr ? reference->encode(message) : message;
  frame.transmitted_word = transmitted;
  frame.encoder_bit_errors =
      (frame.transmitted_word ^ frame.reference_codeword).weight();

  const std::size_t n = transmitted.size();
  frame.received_word = BitVec(n);
  for (std::size_t j = 0; j < n; ++j)
    frame.received_word.set(
        j, transmit_level(config.channel, frame.transmitted_word.get(j), rng));
  frame.channel_bit_errors = (frame.received_word ^ frame.transmitted_word).weight();

  if (decoder != nullptr) {
    const code::DecodeResult decoded = decoder->decode(frame.received_word);
    frame.delivered_message = decoded.message;
    frame.flagged = !decoded.accepted();
    frame.message_error = decoded.accepted() && decoded.message != message;
  } else {
    frame.delivered_message = frame.received_word;
    frame.flagged = false;
    frame.message_error = frame.received_word != message;
  }
  return frame;
}

DataLink::DataLink(const circuit::BuiltEncoder& encoder, const circuit::CellLibrary& library,
                   const code::LinearCode* reference, const code::Decoder* decoder,
                   const DataLinkConfig& config)
    : DataLink(encoder, std::make_shared<sim::SimTables>(encoder.netlist, library),
               reference, decoder, config) {}

DataLink::DataLink(const circuit::BuiltEncoder& encoder,
                   std::shared_ptr<const sim::SimTables> tables,
                   const code::LinearCode* reference, const code::Decoder* decoder,
                   const DataLinkConfig& config)
    : encoder_(encoder),
      reference_(reference),
      decoder_(decoder),
      config_(config),
      simulator_(std::move(tables), config.sim),
      frame_cycles_(encoder.logic_depth) {
  expects(&simulator_.netlist() == &encoder.netlist,
          "simulator tables built for a different netlist");
  if (reference_ != nullptr) {
    expects(reference_->k() == encoder_.message_inputs.size(),
            "reference code dimension mismatch");
    expects(reference_->n() == encoder_.codeword_outputs.size(),
            "reference code length mismatch");
  }
  if (frame_cycles_ > 0) {
    expects(encoder_.clock_input != circuit::kInvalidId,
            "clocked encoder needs a clock input");
  }
  clock_snapshot_usable_ = clock_phase_clear_of_edges(config_, frame_cycles_);
}

void DataLink::install_chip(const ppv::ChipSample& chip) {
  expects(chip.faults.size() == encoder_.netlist.cell_count(),
          "chip sample does not match the netlist");
  // Reinstalling the already-resident fault state is a no-op: skipping the
  // reset keeps the clock snapshot valid, which is what makes per-request
  // install_chip affordable on the serving hot path (a server pins few chips
  // and reinstalls one per request). Fault state is all install_chip sets,
  // so equality of the fault vectors is equality of the installed chip.
  if (installed_faults_valid_ && installed_faults_ == chip.faults) return;
  simulator_.reset();
  for (std::size_t id = 0; id < chip.faults.size(); ++id)
    simulator_.set_fault(id, chip.faults[id]);
  clock_snapshot_valid_ = false;  // expansion validity may have changed
  installed_faults_ = chip.faults;
  installed_faults_valid_ = true;
}

FrameResult DataLink::send(const BitVec& message, util::Rng& rng) {
  const std::size_t k = encoder_.message_inputs.size();
  const std::size_t n = encoder_.codeword_outputs.size();
  expects(message.size() == k, "message length mismatch");

  simulator_.reset();
  const double last_clock =
      config_.clock_period_ps * static_cast<double>(frame_cycles_);
  // Clock first (its pending-event schedule is message-independent, so it can
  // be replayed from a snapshot), then the message pulses. Injection order
  // does not affect delivery order as long as the message phase never
  // coincides with a clock edge's timestamp (checked at construction; the
  // queue pops by time, FIFO within a timestamp).
  if (frame_cycles_ > 0 && clock_snapshot_usable_) {
    if (clock_snapshot_valid_) {
      simulator_.restore_queue(clock_snapshot_);
    } else {
      simulator_.inject_clock(encoder_.clock_input, config_.clock_period_ps,
                              config_.clock_period_ps, last_clock + 0.5);
      simulator_.snapshot_queue(clock_snapshot_);
      clock_snapshot_valid_ = true;
    }
  }
  for (std::size_t i = 0; i < k; ++i)
    if (message.get(i))
      simulator_.inject_pulse(encoder_.message_inputs[i], config_.input_phase_ps);
  if (frame_cycles_ > 0 && !clock_snapshot_usable_) {
    simulator_.inject_clock(encoder_.clock_input, config_.clock_period_ps,
                            config_.clock_period_ps, last_clock + 0.5);
  }
  // For a combinational link (no clock) the frame still has to outlast the
  // input pulses.
  simulator_.run_until(std::max(last_clock, config_.input_phase_ps) +
                       config_.settle_margin_ps);

  // Sample the DC levels (differential read: reset() cleared the levels, so
  // the level itself is the frame's bit), then finish the frame — channel
  // and decode — through the path shared with SlicedLink.
  BitVec transmitted(n);
  for (std::size_t j = 0; j < n; ++j)
    transmitted.set(j, simulator_.dc_level(encoder_.codeword_outputs[j]));
  return finish_frame(config_, reference_, decoder_, message, transmitted, rng);
}

SlicedLink::SlicedLink(const circuit::BuiltEncoder& encoder,
                       const circuit::CellLibrary& library,
                       const code::LinearCode* reference, const code::Decoder* decoder,
                       const DataLinkConfig& config)
    : SlicedLink(encoder, std::make_shared<sim::SimTables>(encoder.netlist, library),
                 reference, decoder, config) {}

SlicedLink::SlicedLink(const circuit::BuiltEncoder& encoder,
                       std::shared_ptr<const sim::SimTables> tables,
                       const code::LinearCode* reference, const code::Decoder* decoder,
                       const DataLinkConfig& config)
    : encoder_(encoder),
      reference_(reference),
      decoder_(decoder),
      config_(config),
      simulator_(std::move(tables)),
      frame_cycles_(encoder.logic_depth) {
  expects(&simulator_.tables()->netlist() == &encoder.netlist,
          "simulator tables built for a different netlist");
  expects(!config_.sim.record_pulses && config_.sim.jitter_sigma_ps <= 0.0,
          "sliced evaluation requires the observability gate: no pulse "
          "recording, no timing jitter");
  if (reference_ != nullptr) {
    expects(reference_->k() == encoder_.message_inputs.size(),
            "reference code dimension mismatch");
    expects(reference_->n() == encoder_.codeword_outputs.size(),
            "reference code length mismatch");
  }
  if (frame_cycles_ > 0) {
    expects(encoder_.clock_input != circuit::kInvalidId,
            "clocked encoder needs a clock input");
  }
  clock_snapshot_usable_ = clock_phase_clear_of_edges(config_, frame_cycles_);
}

void SlicedLink::transmit(const BitVec* messages, std::size_t lanes, BitVec* transmitted) {
  const std::size_t k = encoder_.message_inputs.size();
  const std::size_t n = encoder_.codeword_outputs.size();
  expects(lanes >= 1 && lanes <= kMaxLanes, "lane count out of range");
  for (std::size_t l = 0; l < lanes; ++l)
    expects(messages[l].size() == k, "message length mismatch");
  const sim::LaneMask active = lanes == kMaxLanes
                                   ? ~sim::LaneMask{0}
                                   : (sim::LaneMask{1} << lanes) - 1;

  simulator_.reset();
  const double last_clock =
      config_.clock_period_ps * static_cast<double>(frame_cycles_);
  // Same injection discipline as DataLink::send: clock first (replayed from
  // a snapshot when the message phase is clear of clock edges), then one
  // pulse per message bit position carrying the mask of lanes whose message
  // sets that bit.
  if (frame_cycles_ > 0 && clock_snapshot_usable_) {
    if (clock_snapshot_mask_ == active) {
      simulator_.restore_queue(clock_snapshot_);
    } else {
      simulator_.inject_clock(encoder_.clock_input, config_.clock_period_ps,
                              config_.clock_period_ps, last_clock + 0.5, active);
      simulator_.snapshot_queue(clock_snapshot_);
      clock_snapshot_mask_ = active;
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    sim::LaneMask bit_mask = 0;
    for (std::size_t l = 0; l < lanes; ++l)
      if (messages[l].get(i)) bit_mask |= sim::LaneMask{1} << l;
    if (bit_mask != 0)
      simulator_.inject_pulse(encoder_.message_inputs[i], config_.input_phase_ps,
                              bit_mask);
  }
  if (frame_cycles_ > 0 && !clock_snapshot_usable_) {
    simulator_.inject_clock(encoder_.clock_input, config_.clock_period_ps,
                            config_.clock_period_ps, last_clock + 0.5, active);
  }
  simulator_.run_until(std::max(last_clock, config_.input_phase_ps) +
                       config_.settle_margin_ps);

  for (std::size_t l = 0; l < lanes; ++l) transmitted[l] = BitVec(n);
  for (std::size_t j = 0; j < n; ++j) {
    const sim::LaneMask levels = simulator_.dc_levels(encoder_.codeword_outputs[j]);
    for (std::size_t l = 0; l < lanes; ++l)
      transmitted[l].set(j, ((levels >> l) & 1) != 0);
  }
}

}  // namespace sfqecc::link
