// Monte-Carlo engine for the paper's Fig. 5 experiment.
//
// For each scheme (no encoder, Hamming(7,4), Hamming(8,4), RM(1,3)):
//   repeat for `chips` fabricated chips (independent PPV samples):
//     transmit `messages_per_chip` random messages through the full
//     circuit-level data link and count erroneous messages N;
// then report the empirical CDF of N and P(N = 0).
//
// Deterministic: every (scheme, chip) pair draws from its own RNG substreams,
// so results are identical for any thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "link/datalink.hpp"
#include "link/scheme_spec.hpp"
#include "util/cdf.hpp"

namespace sfqecc::core {
struct Scheme;
}

namespace sfqecc::link {

struct MonteCarloConfig {
  std::size_t chips = 1000;
  std::size_t messages_per_chip = 100;
  ppv::SpreadSpec spread;               ///< default +/-20 % uniform
  std::uint64_t seed = 20250831;
  std::size_t threads = 0;              ///< 0 = hardware concurrency
  bool count_flagged_as_error = false;  ///< accounting choice, DESIGN.md §6
  DataLinkConfig link;
};

struct SchemeOutcome {
  std::string name;
  std::vector<std::size_t> errors_per_chip;   ///< N per chip (per the accounting)
  std::vector<std::size_t> flagged_per_chip;  ///< detected-uncorrectable frames per chip
  util::EmpiricalCdf cdf;                     ///< CDF of errors_per_chip
  double p_zero = 0.0;                        ///< P(N = 0)
  double mean_errors = 0.0;
  double mean_flagged = 0.0;
};

/// Runs the experiment for every scheme. The library must be the one the
/// encoders were built with.
std::vector<SchemeOutcome> run_monte_carlo(const std::vector<SchemeSpec>& schemes,
                                           const circuit::CellLibrary& library,
                                           const MonteCarloConfig& config);

/// Convenience overload over owning catalog schemes (core/scheme_catalog.hpp):
/// forwards the schemes' borrowed views to the primary entry point above.
std::vector<SchemeOutcome> run_monte_carlo(const std::vector<core::Scheme>& schemes,
                                           const circuit::CellLibrary& library,
                                           const MonteCarloConfig& config);

}  // namespace sfqecc::link
