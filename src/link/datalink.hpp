// End-to-end cryogenic digital output data link (the paper's Fig. 1):
//
//   SFQ controller -> ECC encoder (simulated netlist) -> SFQ-to-DC drivers
//   -> cryo cables -> threshold receiver -> ECC decoder -> message + flags.
//
// One frame transmits one k-bit message: message pulses are applied between
// clock edges, the clock runs for logic_depth cycles, the DC levels are
// sampled, sent over the channel, and decoded. The receiver reads each bit
// differentially (level at frame end XOR level at frame start) so that the
// toggling SFQ-to-DC drivers need no reset between frames.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "circuit/encoder_builder.hpp"
#include "code/decoder.hpp"
#include "link/channel.hpp"
#include "ppv/chip.hpp"
#include "sim/bitsliced_eval.hpp"
#include "sim/event_sim.hpp"

namespace sfqecc::link {

struct DataLinkConfig {
  double clock_period_ps = 200.0;  ///< 5 GHz, as in the paper's Fig. 3
  double input_phase_ps = 100.0;   ///< message pulses applied at 0.1 ns into the frame
  double settle_margin_ps = 60.0;  ///< extra time after the last clock before sampling
  ChannelModel channel;
  sim::SimConfig sim;

  /// Memberwise equality — the campaign engine shares one simulator across
  /// cells with equal configs, so new fields are compared automatically.
  bool operator==(const DataLinkConfig&) const = default;
};

/// Outcome of one frame.
struct FrameResult {
  code::BitVec sent_message;
  code::BitVec reference_codeword;  ///< what a perfect encoder would transmit
  code::BitVec transmitted_word;    ///< DC levels actually produced by the circuit
  code::BitVec received_word;       ///< after cable + receiver
  code::BitVec delivered_message;   ///< decoder output (or raw bits without decoder)
  bool flagged = false;             ///< decoder raised the error flag
  bool message_error = false;       ///< delivered (and accepted) message != sent
  std::size_t channel_bit_errors = 0;  ///< received_word vs transmitted_word
  std::size_t encoder_bit_errors = 0;  ///< transmitted_word vs reference_codeword
};

/// The channel + decode half of one frame, shared by DataLink::send and the
/// bit-sliced SlicedLink: given the word the circuit transmitted, fills in
/// everything downstream of it (reference codeword, channel draws, decode
/// outcome). Factored so both paths perform the identical per-bit
/// transmit_level draw sequence and decode logic — the byte-identity of the
/// sliced mode's reports rests on this being one function, not two copies.
FrameResult finish_frame(const DataLinkConfig& config, const code::LinearCode* reference,
                         const code::Decoder* decoder, const code::BitVec& message,
                         const code::BitVec& transmitted, util::Rng& rng);

/// A live data link instance: owns the circuit simulator; the decoder and
/// reference code are borrowed and must outlive the link.
class DataLink {
 public:
  /// `decoder` may be null: bits are delivered raw (the "no encoder" scheme).
  /// `reference` is the code used to compute the expected codeword; for the
  /// no-encoder scheme pass nullptr (reference = message itself).
  DataLink(const circuit::BuiltEncoder& encoder, const circuit::CellLibrary& library,
           const code::LinearCode* reference, const code::Decoder* decoder,
           const DataLinkConfig& config);

  /// Same link over pre-built simulator tables (which must be the flattening
  /// of `encoder.netlist`). The campaign engine builds one SimTables per
  /// scheme and leases it to every worker's links, so standing up a link for
  /// a new sweep cell allocates only mutable simulator state instead of
  /// re-flattening the netlist.
  DataLink(const circuit::BuiltEncoder& encoder,
           std::shared_ptr<const sim::SimTables> tables,
           const code::LinearCode* reference, const code::Decoder* decoder,
           const DataLinkConfig& config);

  /// Installs a fabricated chip's fault states (clears previous ones).
  /// Reinstalling the chip whose fault states are already resident is a
  /// recognized no-op that preserves the clock snapshot — the link server
  /// reinstalls per request, the campaign kernel per chip, and both see
  /// identical results either way.
  void install_chip(const ppv::ChipSample& chip);

  /// Reseeds the simulator's jitter/fault noise stream; call per chip for
  /// thread-count-independent Monte Carlo.
  void reseed_noise(std::uint64_t seed) { simulator_.reseed_noise(seed); }

  /// Sends one message through the full pipeline. `rng` drives the channel
  /// noise (simulator noise uses the SimConfig seed stream).
  FrameResult send(const code::BitVec& message, util::Rng& rng);

  std::size_t frame_cycles() const noexcept { return frame_cycles_; }
  const circuit::BuiltEncoder& encoder() const noexcept { return encoder_; }

 private:
  const circuit::BuiltEncoder& encoder_;
  const code::LinearCode* reference_;
  const code::Decoder* decoder_;
  DataLinkConfig config_;
  sim::EventSimulator simulator_;
  std::size_t frame_cycles_;
  // The clock train is the same every frame: captured once per chip (the
  // fan-out expansion baked into it depends on the installed faults) and
  // replayed, instead of re-injected, on each send.
  sim::EventSimulator::QueueSnapshot clock_snapshot_;
  bool clock_snapshot_valid_ = false;
  bool clock_snapshot_usable_ = false;  ///< message phase clear of clock edges
  // Fault states currently installed, kept to recognize a redundant
  // install_chip (same chip re-installed) without resetting the simulator.
  std::vector<sim::CellFault> installed_faults_;
  bool installed_faults_valid_ = false;
};

/// Bit-sliced data link: evaluates the *circuit* half of one frame for up to
/// 64 fully healthy chips at once (sim::SlicedSimulator), then finishes each
/// lane's frame — channel draws and decode — per chip with that chip's own
/// channel RNG via finish_frame. Valid only under the sliced observability
/// gate (no faults in any lane, jitter off, recording off; see
/// engine::chip_sliceable); the constructor rejects configs that enable
/// jitter or pulse recording.
class SlicedLink {
 public:
  static constexpr std::size_t kMaxLanes = sim::SlicedSimulator::kMaxLanes;

  SlicedLink(const circuit::BuiltEncoder& encoder, const circuit::CellLibrary& library,
             const code::LinearCode* reference, const code::Decoder* decoder,
             const DataLinkConfig& config);

  /// Same link over pre-built simulator tables (see the DataLink overload).
  SlicedLink(const circuit::BuiltEncoder& encoder,
             std::shared_ptr<const sim::SimTables> tables,
             const code::LinearCode* reference, const code::Decoder* decoder,
             const DataLinkConfig& config);

  /// Simulates one frame position for `lanes` chips at once: messages[l]
  /// drives lane l, transmitted[l] receives lane l's sampled DC word.
  /// Timing, injection schedule and settle window are identical to
  /// DataLink::send; each output word is bit-identical to what a healthy
  /// chip's DataLink would transmit for messages[l].
  void transmit(const code::BitVec* messages, std::size_t lanes,
                code::BitVec* transmitted);

  /// Channel + decode half for one lane's frame (the chip's own `rng` keeps
  /// the per-chip channel substream exactly as the event path draws it).
  FrameResult finish(const code::BitVec& message, const code::BitVec& transmitted,
                     util::Rng& rng) const {
    return finish_frame(config_, reference_, decoder_, message, transmitted, rng);
  }

  std::size_t frame_cycles() const noexcept { return frame_cycles_; }
  const circuit::BuiltEncoder& encoder() const noexcept { return encoder_; }

 private:
  const circuit::BuiltEncoder& encoder_;
  const code::LinearCode* reference_;
  const code::Decoder* decoder_;
  DataLinkConfig config_;
  sim::SlicedSimulator simulator_;
  std::size_t frame_cycles_;
  // Clock-train snapshot, keyed by the lane mask it was taken for: batches
  // of fewer than 64 lanes inject a narrower clock mask, so the snapshot is
  // retaken whenever the active mask changes (healthy chips have no fault
  // state, so unlike DataLink no per-chip invalidation is needed).
  sim::SlicedSimulator::QueueSnapshot clock_snapshot_;
  sim::LaneMask clock_snapshot_mask_ = 0;
  bool clock_snapshot_usable_ = false;  ///< message phase clear of clock edges
};

}  // namespace sfqecc::link
