#include "link/arq.hpp"

#include "util/expect.hpp"

namespace sfqecc::link {

ArqResult send_with_arq(DataLink& link, const code::BitVec& message, util::Rng& rng,
                        const ArqConfig& config) {
  expects(config.max_attempts >= 1, "ARQ needs at least one attempt");
  ArqResult result;
  for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
    ++result.attempts;
    const FrameResult frame = link.send(message, rng);
    result.channel_bit_errors += frame.channel_bit_errors;
    if (frame.flagged) continue;  // detected-uncorrectable: retransmit
    result.delivered = frame.delivered_message;
    result.residual_error = frame.message_error;
    return result;
  }
  result.surrendered = true;
  return result;
}

ArqStats run_arq_session(DataLink& link, std::size_t count, util::Rng& message_rng,
                         util::Rng& channel_rng, const ArqConfig& config) {
  ArqStats stats;
  const std::size_t k = link.encoder().message_inputs.size();
  for (std::size_t i = 0; i < count; ++i) {
    const code::BitVec message =
        code::BitVec::from_u64(k, message_rng.below(std::uint64_t{1} << k));
    const ArqResult result = send_with_arq(link, message, channel_rng, config);
    ++stats.messages;
    stats.total_frames += result.attempts;
    if (result.surrendered)
      ++stats.surrendered;
    else if (result.residual_error)
      ++stats.residual_errors;
    else
      ++stats.delivered_ok;
  }
  return stats;
}

}  // namespace sfqecc::link
