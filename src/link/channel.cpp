#include "link/channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace sfqecc::link {
namespace {

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double ChannelModel::bit_error_probability() const {
  if (noise_sigma_mv <= 0.0) return 0.0;
  const double high = swing_mv * attenuation;
  const double margin0 = threshold_mv;          // distance of level 0 from threshold
  const double margin1 = high - threshold_mv;   // distance of level 1 from threshold
  const double p0 = 1.0 - normal_cdf(margin0 / noise_sigma_mv);
  const double p1 = 1.0 - normal_cdf(margin1 / noise_sigma_mv);
  return 0.5 * (p0 + p1);
}

bool transmit_level(const ChannelModel& channel, bool level, util::Rng& rng) {
  expects(channel.attenuation > 0.0 && channel.attenuation <= 1.0,
          "attenuation must be in (0, 1]");
  const double sent = level ? channel.swing_mv * channel.attenuation : 0.0;
  const double noise =
      channel.noise_sigma_mv > 0.0 ? rng.gaussian(0.0, channel.noise_sigma_mv) : 0.0;
  return sent + noise > channel.threshold_mv;
}

}  // namespace sfqecc::link
