// Borrowed view of one transmission scheme, the unit the link layer and the
// campaign engine consume. The owning counterpart is core::Scheme
// (core/scheme_catalog.hpp); call its spec() to obtain this view. Lives in
// its own header (rather than link/monte_carlo.hpp, its historical home) so
// that owners of schemes need not pull in the Monte-Carlo driver.
#pragma once

#include <string>

namespace sfqecc::circuit {
struct BuiltEncoder;
}
namespace sfqecc::code {
class LinearCode;
class Decoder;
}

namespace sfqecc::link {

/// One transmission scheme under test. Pointers are borrowed; for the
/// no-encoder scheme `reference` and `decoder` are null.
struct SchemeSpec {
  std::string name;
  const circuit::BuiltEncoder* encoder = nullptr;
  const code::LinearCode* reference = nullptr;
  const code::Decoder* decoder = nullptr;
};

}  // namespace sfqecc::link
