// RCSJ (resistively-and-capacitively-shunted junction) analog substrate —
// the library's miniature JoSIM.
//
// The paper simulates its encoders in JoSIM, a SPICE-level solver of
// Josephson-junction circuit dynamics. The gate-level simulator in sim/ is
// calibrated behaviour; this module provides the microscopic grounding: it
// integrates the RCSJ equations
//
//   C dV/dt + V/R + Ic sin(phi) = I_ext,   dphi/dt = 2*pi*V / Phi0
//
// for single junctions and Josephson transmission lines (JTLs), reproducing
// the physics the behavioural model abstracts: ~2 ps SFQ pulses carrying
// exactly one flux quantum (integral V dt = Phi0), a few picoseconds of
// propagation delay per stage, and bias/parameter operating margins of the
// order the PPV layer assumes.
//
// Unit system (chosen so all constants are O(1)): time ps, voltage mV,
// current mA, resistance Ohm, inductance pH, capacitance pF. In these units
// Phi0 = 2.067833848 mV*ps.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sfqecc::josim {

/// Magnetic flux quantum in mV*ps.
inline constexpr double kPhi0 = 2.067833848;

/// One Josephson junction with resistive and capacitive shunts.
struct JunctionParams {
  double ic_ma = 0.10;  ///< critical current (typical 10 kA/cm^2 SFQ5ee cell JJ)
  double r_ohm = 5.0;   ///< shunt resistance
  double c_pf = 0.13;   ///< junction + shunt capacitance

  /// Stewart-McCumber damping parameter beta_c = 2*pi*Ic*R^2*C / Phi0.
  double beta_c() const noexcept;

  /// Capacitance for critical damping target beta_c.
  static double capacitance_for_beta_c(double ic_ma, double r_ohm, double beta_c);
};

/// Time course of one junction driven by an external current waveform.
struct JunctionTrace {
  std::vector<double> time_ps;
  std::vector<double> voltage_mv;
  std::vector<double> phase_rad;
  std::vector<double> slip_times_ps;  ///< 2*pi phase-slip instants (SFQ emissions)

  /// Integral of V dt over the whole trace, in units of Phi0.
  double flux_quanta() const noexcept;
};

/// Integrates a single junction under drive `current_ma(t)` with RK4 at the
/// given step. The drive includes any DC bias.
JunctionTrace simulate_junction(const JunctionParams& junction,
                                const std::function<double(double)>& current_ma,
                                double t_end_ps, double dt_ps = 0.01);

/// A Josephson transmission line: `stages` junctions to ground, inductors
/// between adjacent nodes, a DC bias into every node and a pulse input at
/// node 0.
struct JtlParams {
  std::size_t stages = 6;
  JunctionParams junction;
  double l_ph = 8.0;            ///< inter-stage inductance
  double bias_fraction = 0.75;  ///< DC bias per node, fraction of Ic (margin-window center)

  /// Per-junction critical-current scale factors (PPV); empty = all 1.0.
  std::vector<double> ic_scale;
};

/// Input stimulus: a raised-cosine current pulse.
struct PulseStimulus {
  double t0_ps = 10.0;
  double width_ps = 5.0;
  double amplitude_ma = 0.16;  ///< ~1.6 Ic peak on top of the DC bias: one clean slip
};

/// Result of a JTL transient run.
struct JtlTrace {
  std::vector<std::vector<double>> slip_times_ps;  ///< per junction
  std::vector<double> mid_voltage_mv;              ///< V(t) at the middle junction
  std::vector<double> time_ps;
  double dt_ps = 0.0;

  /// True when exactly one flux quantum traversed every stage.
  bool clean_single_pulse() const noexcept;

  /// Mean per-stage propagation delay (first-slip time differences); returns
  /// 0 when the pulse did not traverse.
  double stage_delay_ps() const noexcept;
};

/// Integrates the JTL with RK4.
JtlTrace simulate_jtl(const JtlParams& jtl, const PulseStimulus& stimulus,
                      double t_end_ps = 100.0, double dt_ps = 0.01);

/// True when the JTL transmits exactly one pulse cleanly under the stimulus.
bool jtl_transmits(const JtlParams& jtl, const PulseStimulus& stimulus = {});

/// Operating bias range [low, high] (fractions of Ic) for clean single-pulse
/// transmission, found by bisection against `jtl_transmits`.
struct BiasMargins {
  double low = 0.0;
  double high = 0.0;
  double center() const noexcept { return 0.5 * (low + high); }
  /// Symmetric margin around the nominal bias, as a fraction of it.
  double relative_margin(double nominal) const noexcept;
};
BiasMargins find_bias_margins(JtlParams jtl, const PulseStimulus& stimulus = {});

}  // namespace sfqecc::josim
