#include "josim/rcsj.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace sfqecc::josim {
namespace {

constexpr double kTwoPi = 6.283185307179586;

}  // namespace

double JunctionParams::beta_c() const noexcept {
  return kTwoPi * ic_ma * r_ohm * r_ohm * c_pf / kPhi0;
}

double JunctionParams::capacitance_for_beta_c(double ic_ma, double r_ohm,
                                              double beta_c) {
  expects(ic_ma > 0 && r_ohm > 0 && beta_c > 0, "junction parameters must be positive");
  return beta_c * kPhi0 / (kTwoPi * ic_ma * r_ohm * r_ohm);
}

double JunctionTrace::flux_quanta() const noexcept {
  if (time_ps.size() < 2) return 0.0;
  double integral = 0.0;
  for (std::size_t i = 1; i < time_ps.size(); ++i)
    integral += 0.5 * (voltage_mv[i] + voltage_mv[i - 1]) * (time_ps[i] - time_ps[i - 1]);
  return integral / kPhi0;
}

JunctionTrace simulate_junction(const JunctionParams& junction,
                                const std::function<double(double)>& current_ma,
                                double t_end_ps, double dt_ps) {
  expects(t_end_ps > 0 && dt_ps > 0, "simulation window must be positive");
  JunctionTrace trace;

  // State y = (phi, V). RK4 with fixed step.
  double phi = 0.0, v = 0.0;
  double next_slip = kTwoPi;
  auto dphi = [](double vv) { return kTwoPi * vv / kPhi0; };
  auto dv = [&](double t, double ph, double vv) {
    return (current_ma(t) - junction.ic_ma * std::sin(ph) - vv / junction.r_ohm) /
           junction.c_pf;
  };

  const auto steps = static_cast<std::size_t>(t_end_ps / dt_ps);
  trace.time_ps.reserve(steps + 1);
  trace.voltage_mv.reserve(steps + 1);
  trace.phase_rad.reserve(steps + 1);
  for (std::size_t i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) * dt_ps;
    trace.time_ps.push_back(t);
    trace.voltage_mv.push_back(v);
    trace.phase_rad.push_back(phi);
    while (phi >= next_slip) {
      trace.slip_times_ps.push_back(t);
      next_slip += kTwoPi;
    }

    const double k1p = dphi(v), k1v = dv(t, phi, v);
    const double k2p = dphi(v + 0.5 * dt_ps * k1v),
                 k2v = dv(t + 0.5 * dt_ps, phi + 0.5 * dt_ps * k1p, v + 0.5 * dt_ps * k1v);
    const double k3p = dphi(v + 0.5 * dt_ps * k2v),
                 k3v = dv(t + 0.5 * dt_ps, phi + 0.5 * dt_ps * k2p, v + 0.5 * dt_ps * k2v);
    const double k4p = dphi(v + dt_ps * k3v),
                 k4v = dv(t + dt_ps, phi + dt_ps * k3p, v + dt_ps * k3v);
    phi += dt_ps / 6.0 * (k1p + 2 * k2p + 2 * k3p + k4p);
    v += dt_ps / 6.0 * (k1v + 2 * k2v + 2 * k3v + k4v);
  }
  return trace;
}

namespace {

/// JTL state: per junction (phi_j, V_j), plus inter-node inductor currents.
struct JtlState {
  std::vector<double> phi;
  std::vector<double> v;
  std::vector<double> il;  // il[j]: current node j -> j+1
};

JtlState derivative(const JtlParams& jtl, const JtlState& s, double input_ma) {
  const std::size_t n = jtl.stages;
  JtlState d;
  d.phi.resize(n);
  d.v.resize(n);
  d.il.resize(n > 0 ? n - 1 : 0);
  const double bias = jtl.bias_fraction * jtl.junction.ic_ma;
  for (std::size_t j = 0; j < n; ++j) {
    const double ic =
        jtl.junction.ic_ma * (j < jtl.ic_scale.size() ? jtl.ic_scale[j] : 1.0);
    double node_current = bias;
    if (j == 0) node_current += input_ma;
    if (j > 0) node_current += s.il[j - 1];
    if (j + 1 < n) node_current -= s.il[j];
    d.phi[j] = kTwoPi * s.v[j] / kPhi0;
    d.v[j] = (node_current - ic * std::sin(s.phi[j]) - s.v[j] / jtl.junction.r_ohm) /
             jtl.junction.c_pf;
  }
  for (std::size_t j = 0; j + 1 < n; ++j) d.il[j] = (s.v[j] - s.v[j + 1]) / jtl.l_ph;
  return d;
}

JtlState axpy(const JtlState& a, double h, const JtlState& b) {
  JtlState out = a;
  for (std::size_t j = 0; j < a.phi.size(); ++j) {
    out.phi[j] += h * b.phi[j];
    out.v[j] += h * b.v[j];
  }
  for (std::size_t j = 0; j < a.il.size(); ++j) out.il[j] += h * b.il[j];
  return out;
}

}  // namespace

JtlTrace simulate_jtl(const JtlParams& jtl, const PulseStimulus& stimulus,
                      double t_end_ps, double dt_ps) {
  expects(jtl.stages >= 1, "JTL needs at least one stage");
  expects(jtl.ic_scale.empty() || jtl.ic_scale.size() == jtl.stages,
          "ic_scale must match the stage count");

  auto input = [&](double t) {
    const double x = (t - stimulus.t0_ps) / stimulus.width_ps;
    if (x < 0.0 || x > 1.0) return 0.0;
    return stimulus.amplitude_ma * 0.5 * (1.0 - std::cos(kTwoPi * x));
  };

  JtlTrace trace;
  trace.dt_ps = dt_ps;
  trace.slip_times_ps.resize(jtl.stages);
  std::vector<double> next_slip(jtl.stages, kTwoPi);

  JtlState s;
  s.phi.assign(jtl.stages, 0.0);
  s.v.assign(jtl.stages, 0.0);
  s.il.assign(jtl.stages > 0 ? jtl.stages - 1 : 0, 0.0);

  // Settle the DC bias operating point first (bias ramps phases to
  // arcsin(bias/ic) with transients dying out over a few ps).
  const auto settle_steps = static_cast<std::size_t>(10.0 / dt_ps);
  const auto steps = static_cast<std::size_t>(t_end_ps / dt_ps);
  const std::size_t mid = jtl.stages / 2;

  for (std::size_t i = 0; i < settle_steps + steps; ++i) {
    const bool settling = i < settle_steps;
    const double t = settling ? -1.0 : static_cast<double>(i - settle_steps) * dt_ps;
    const double in = settling ? 0.0 : input(t);

    if (!settling) {
      trace.time_ps.push_back(t);
      trace.mid_voltage_mv.push_back(s.v[mid]);
      for (std::size_t j = 0; j < jtl.stages; ++j) {
        while (s.phi[j] >= next_slip[j]) {
          trace.slip_times_ps[j].push_back(t);
          next_slip[j] += kTwoPi;
        }
      }
    }

    const JtlState k1 = derivative(jtl, s, in);
    const JtlState k2 = derivative(jtl, axpy(s, 0.5 * dt_ps, k1), in);
    const JtlState k3 = derivative(jtl, axpy(s, 0.5 * dt_ps, k2), in);
    const JtlState k4 = derivative(jtl, axpy(s, dt_ps, k3), in);
    for (std::size_t j = 0; j < jtl.stages; ++j) {
      s.phi[j] += dt_ps / 6.0 * (k1.phi[j] + 2 * k2.phi[j] + 2 * k3.phi[j] + k4.phi[j]);
      s.v[j] += dt_ps / 6.0 * (k1.v[j] + 2 * k2.v[j] + 2 * k3.v[j] + k4.v[j]);
    }
    for (std::size_t j = 0; j < s.il.size(); ++j)
      s.il[j] += dt_ps / 6.0 * (k1.il[j] + 2 * k2.il[j] + 2 * k3.il[j] + k4.il[j]);
  }
  return trace;
}

bool JtlTrace::clean_single_pulse() const noexcept {
  for (const auto& slips : slip_times_ps)
    if (slips.size() != 1) return false;
  return true;
}

double JtlTrace::stage_delay_ps() const noexcept {
  if (!clean_single_pulse() || slip_times_ps.size() < 2) return 0.0;
  return (slip_times_ps.back()[0] - slip_times_ps.front()[0]) /
         static_cast<double>(slip_times_ps.size() - 1);
}

bool jtl_transmits(const JtlParams& jtl, const PulseStimulus& stimulus) {
  return simulate_jtl(jtl, stimulus).clean_single_pulse();
}

double BiasMargins::relative_margin(double nominal) const noexcept {
  if (nominal <= 0.0) return 0.0;
  return std::min(nominal - low, high - nominal) / nominal;
}

BiasMargins find_bias_margins(JtlParams jtl, const PulseStimulus& stimulus) {
  expects(jtl_transmits(jtl, stimulus), "nominal bias point must work");
  const double nominal = jtl.bias_fraction;

  auto works = [&](double bias) {
    jtl.bias_fraction = bias;
    return jtl_transmits(jtl, stimulus);
  };
  auto bisect = [&](double good, double bad) {
    for (int iter = 0; iter < 24; ++iter) {
      const double mid = 0.5 * (good + bad);
      (works(mid) ? good : bad) = mid;
    }
    return good;
  };

  // Find failing brackets.
  double low_bad = 0.0;
  double high_bad = nominal;
  while (works(high_bad) && high_bad < 4.0) high_bad += 0.1;

  BiasMargins margins;
  margins.low = works(low_bad) ? low_bad : bisect(nominal, low_bad);
  margins.high = high_bad >= 4.0 ? 4.0 : bisect(nominal, high_bad);
  return margins;
}

}  // namespace sfqecc::josim
