// Terminal plotting for bench output: XY line plots (Fig. 5 CDF curves) and
// pulse-train strips (Fig. 3 waveforms).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sfqecc::util {

/// One labelled series of an XY plot.
struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  std::size_t width = 72;   ///< plot area width in characters
  std::size_t height = 20;  ///< plot area height in characters
  std::string x_label;
  std::string y_label;
};

/// Renders the series into a character-cell XY plot with axes and a legend.
/// Each series is drawn with its own glyph; later series overwrite earlier
/// ones where they collide.
std::string plot_xy(const std::vector<Series>& series, const PlotOptions& options);

/// Renders a pulse train as a one-line strip over [t0, t1): pulses are drawn
/// as '|' at their quantized position, the baseline as '_'.
std::string pulse_strip(const std::vector<double>& pulse_times, double t0, double t1,
                        std::size_t width);

}  // namespace sfqecc::util
