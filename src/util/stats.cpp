#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace sfqecc::util {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  Accumulator acc;
  for (double x : xs) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = std::sqrt(s.variance);
  s.min = acc.min();
  s.max = acc.max();
  return s;
}

double quantile(std::vector<double> xs, double q) {
  expects(!xs.empty(), "quantile of empty sample");
  expects(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  expects(trials > 0, "wilson_interval needs at least one trial");
  expects(successes <= trials, "successes cannot exceed trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

}  // namespace sfqecc::util
