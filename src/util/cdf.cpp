#include "util/cdf.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace sfqecc::util {

EmpiricalCdf::EmpiricalCdf(const std::vector<std::size_t>& samples) {
  count_ = samples.size();
  if (samples.empty()) return;
  const std::size_t maxv = *std::max_element(samples.begin(), samples.end());
  counts_.assign(maxv + 1, 0);
  for (std::size_t v : samples) ++counts_[v];
}

double EmpiricalCdf::at(std::size_t n) const noexcept {
  if (count_ == 0) return 0.0;
  std::size_t cum = 0;
  const std::size_t upto = std::min(n, counts_.size() - 1);
  for (std::size_t v = 0; v <= upto; ++v) cum += counts_[v];
  return static_cast<double>(cum) / static_cast<double>(count_);
}

std::size_t EmpiricalCdf::inverse(double q) const {
  expects(count_ > 0, "inverse of empty CDF");
  expects(q > 0.0 && q <= 1.0, "CDF level must be in (0,1]");
  std::size_t cum = 0;
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    cum += counts_[v];
    if (static_cast<double>(cum) / static_cast<double>(count_) >= q) return v;
  }
  return counts_.size() - 1;
}

std::size_t EmpiricalCdf::count_at(std::size_t n) const noexcept {
  return n < counts_.size() ? counts_[n] : 0;
}

}  // namespace sfqecc::util
