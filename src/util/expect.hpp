// Lightweight contract checking (C++ Core Guidelines I.6 / E.12 style).
//
// `expects` guards preconditions, `ensures` guards postconditions; both throw
// sfqecc::ContractViolation (a std::logic_error) so that misuse of the library
// API is reported deterministically instead of corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace sfqecc {

/// Thrown when a precondition or postcondition of a library function is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

/// Precondition check: throws ContractViolation with `msg` when `cond` is false.
inline void expects(bool cond, const char* msg) {
  if (!cond) throw ContractViolation(std::string("precondition violated: ") + msg);
}

/// Postcondition check: throws ContractViolation with `msg` when `cond` is false.
inline void ensures(bool cond, const char* msg) {
  if (!cond) throw ContractViolation(std::string("postcondition violated: ") + msg);
}

}  // namespace sfqecc
