// Deterministic random-number utilities.
//
// Monte-Carlo experiments must be reproducible regardless of thread count, so
// every independent unit of work (a "chip", a message, a noise process) draws
// from its own generator seeded through SplitMix64 substreams derived from a
// single experiment seed.
#pragma once

#include <cstdint>
#include <random>

namespace sfqecc::util {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to derive independent
/// seeds for substreams; passes BigCrush when used as a generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of substream `index` from a master `seed`.
/// Distinct (seed, index) pairs give statistically independent streams.
constexpr std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  SplitMix64 mixer(seed ^ (0xd1b54a32d192ed03ULL * (index + 1)));
  std::uint64_t s = mixer.next();
  return s != 0 ? s : 0x9e3779b97f4a7c15ULL;  // mt19937_64 accepts 0, but avoid it anyway
}

/// A seeded engine for one unit of work. Wraps std::mt19937_64 and offers the
/// handful of draw shapes the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Substream constructor: independent stream `index` of master `seed`.
  Rng(std::uint64_t seed, std::uint64_t index) : engine_(substream_seed(seed, index)) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double gaussian() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Normal draw with the given standard deviation.
  double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sfqecc::util
