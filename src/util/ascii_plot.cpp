#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.hpp"
#include "util/table.hpp"

namespace sfqecc::util {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

}  // namespace

std::string plot_xy(const std::vector<Series>& series, const PlotOptions& options) {
  expects(options.width >= 8 && options.height >= 4, "plot area too small");

  double xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  bool any = false;
  for (const Series& s : series) {
    expects(s.x.size() == s.y.size(), "series x/y size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!any) {
        xmin = xmax = s.x[i];
        ymin = ymax = s.y[i];
        any = true;
      } else {
        xmin = std::min(xmin, s.x[i]);
        xmax = std::max(xmax, s.x[i]);
        ymin = std::min(ymin, s.y[i]);
        ymax = std::max(ymax, s.y[i]);
      }
    }
  }
  if (!any) return "(empty plot)\n";
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  const std::size_t w = options.width;
  const std::size_t h = options.height;
  std::vector<std::string> grid(h, std::string(w, ' '));

  auto to_col = [&](double x) {
    double f = (x - xmin) / (xmax - xmin);
    auto c = static_cast<long>(std::lround(f * static_cast<double>(w - 1)));
    return static_cast<std::size_t>(std::clamp<long>(c, 0, static_cast<long>(w - 1)));
  };
  auto to_row = [&](double y) {
    double f = (y - ymin) / (ymax - ymin);
    auto r = static_cast<long>(std::lround((1.0 - f) * static_cast<double>(h - 1)));
    return static_cast<std::size_t>(std::clamp<long>(r, 0, static_cast<long>(h - 1)));
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof kGlyphs];
    const Series& s = series[si];
    // Draw segments with simple linear interpolation so curves look connected.
    for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
      const std::size_t c0 = to_col(s.x[i]), c1 = to_col(s.x[i + 1]);
      const std::size_t steps = std::max<std::size_t>(std::max(c0, c1) - std::min(c0, c1), 1);
      for (std::size_t k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / static_cast<double>(steps);
        const double x = s.x[i] + t * (s.x[i + 1] - s.x[i]);
        const double y = s.y[i] + t * (s.y[i + 1] - s.y[i]);
        grid[to_row(y)][to_col(x)] = glyph;
      }
    }
    if (s.x.size() == 1) grid[to_row(s.y[0])][to_col(s.x[0])] = glyph;
  }

  std::ostringstream out;
  const std::string ymax_s = fixed(ymax, 3), ymin_s = fixed(ymin, 3);
  const std::size_t margin = std::max(ymax_s.size(), ymin_s.size());
  for (std::size_t r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = std::string(margin - ymax_s.size(), ' ') + ymax_s;
    if (r == h - 1) label = std::string(margin - ymin_s.size(), ' ') + ymin_s;
    out << label << " |" << grid[r] << '\n';
  }
  out << std::string(margin + 1, ' ') << '+' << std::string(w, '-') << '\n';
  const std::string xmin_s = fixed(xmin, 1), xmax_s = fixed(xmax, 1);
  out << std::string(margin + 2, ' ') << xmin_s
      << std::string(w > xmin_s.size() + xmax_s.size() ? w - xmin_s.size() - xmax_s.size() : 1, ' ')
      << xmax_s << '\n';
  if (!options.x_label.empty())
    out << std::string(margin + 2, ' ') << "x: " << options.x_label << '\n';
  if (!options.y_label.empty())
    out << std::string(margin + 2, ' ') << "y: " << options.y_label << '\n';
  for (std::size_t si = 0; si < series.size(); ++si)
    out << std::string(margin + 2, ' ') << kGlyphs[si % sizeof kGlyphs] << " = "
        << series[si].label << '\n';
  return out.str();
}

std::string pulse_strip(const std::vector<double>& pulse_times, double t0, double t1,
                        std::size_t width) {
  expects(t1 > t0, "pulse_strip needs t1 > t0");
  expects(width >= 2, "pulse_strip needs width >= 2");
  std::string strip(width, '_');
  for (double t : pulse_times) {
    if (t < t0 || t >= t1) continue;
    const double f = (t - t0) / (t1 - t0);
    auto c = static_cast<std::size_t>(f * static_cast<double>(width));
    strip[std::min(c, width - 1)] = '|';
  }
  return strip;
}

}  // namespace sfqecc::util
