#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sfqecc::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::string TextTable::to_string() const {
  std::size_t columns = header_.size();
  for (const Row& r : rows_) columns = std::max(columns, r.cells.size());

  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      widths[c] = std::max(widths[c], cells[c].size());
  };
  widen(header_);
  for (const Row& r : rows_)
    if (!r.rule) widen(r.cells);

  auto print_row = [&](std::ostringstream& out, const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto print_rule = [&](std::ostringstream& out) {
    out << "+";
    for (std::size_t c = 0; c < columns; ++c) out << std::string(widths[c] + 2, '-') << '+';
    out << '\n';
  };

  std::ostringstream out;
  print_rule(out);
  print_row(out, header_);
  print_rule(out);
  for (const Row& r : rows_) {
    if (r.rule)
      print_rule(out);
    else
      print_row(out, r.cells);
  }
  print_rule(out);
  return out.str();
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string percent(double p, int digits) {
  return fixed(p * 100.0, digits) + " %";
}

std::string scientific(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", digits, value);
  return buf;
}

std::string compact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

std::string roundtrip(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace sfqecc::util
