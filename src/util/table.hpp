// Plain-text table formatter used by the bench binaries to print paper-style
// tables (Table I, Table II, the Fig. 5 CDF grid) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace sfqecc::util {

/// Column-aligned ASCII table. Rows are added as vectors of pre-formatted
/// strings; `to_string` pads every column to its widest entry.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row. Short rows are padded with empty cells; long rows extend
  /// the column set.
  void add_row(std::vector<std::string> row);

  /// Adds a horizontal separator row.
  void add_rule();

  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats `value` with `digits` digits after the decimal point.
std::string fixed(double value, int digits);

/// Formats a probability as a percentage with one decimal, e.g. "92.7 %".
std::string percent(double p, int digits = 1);

/// Formats `value` in scientific notation, e.g. "1.23e-05".
std::string scientific(double value, int digits);

/// Shortest human-friendly formatting ("%g"), for labels.
std::string compact(double value);

/// Round-trip-exact formatting ("%.17g"); report writers use it so emitted
/// files are byte-stable across runs (determinism tests compare whole files).
std::string roundtrip(double value);

}  // namespace sfqecc::util
