// Empirical cumulative distribution functions over integer-valued samples,
// matching the presentation of the paper's Fig. 5 (probability of receiving at
// most N erroneous messages out of 100 transmissions).
#pragma once

#include <cstddef>
#include <vector>

namespace sfqecc::util {

/// Empirical CDF of a sample of non-negative integer observations.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(const std::vector<std::size_t>& samples);

  /// P(X <= n). Returns 0 for an empty sample.
  double at(std::size_t n) const noexcept;

  /// Smallest n with P(X <= n) >= q (q in (0, 1]); sample must be non-empty.
  std::size_t inverse(double q) const;

  std::size_t sample_count() const noexcept { return count_; }
  std::size_t max_value() const noexcept { return counts_.empty() ? 0 : counts_.size() - 1; }

  /// Number of observations exactly equal to n.
  std::size_t count_at(std::size_t n) const noexcept;

 private:
  std::vector<std::size_t> counts_;  ///< histogram: counts_[v] = #samples == v
  std::size_t count_ = 0;
};

}  // namespace sfqecc::util
