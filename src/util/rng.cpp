#include "util/rng.hpp"

// All members are defined inline in the header; this translation unit exists so
// the target has a stable object for the component and to hold future
// out-of-line additions.
namespace sfqecc::util {}
