// Constant-memory log-linear latency histogram.
//
// The recording surface the serving telemetry and the campaign wall-time
// summary share: a fixed array of buckets whose widths grow geometrically
// (one group of kSubBuckets linear buckets per power of two), so a single
// histogram spans nanoseconds to hours at a bounded ~1/kSubBuckets relative
// error with zero allocation on the hot path. record() is a handful of bit
// operations and one increment; merge() is element-wise addition, which is
// what makes per-worker histograms cheap — each worker records into its own
// instance contention-free and the owner folds them together at snapshot
// time.
//
// Quantiles are deterministic: quantile(q) returns the inclusive upper bound
// of the bucket holding the q-th sample (by cumulative count, exact min/max
// clamped), so two histograms with equal bucket counts report byte-identical
// quantiles regardless of the arrival order of the samples. Values are plain
// std::uint64_t — the unit (ns, µs, frames) is the caller's convention.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace sfqecc::util {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two group: 32 ⇒ worst-case relative
  /// error of a reported quantile ≈ 1/32 ≈ 3 %.
  static constexpr std::size_t kSubBucketBits = 5;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// Values below kSubBuckets get one bucket each (exact); each further
  /// power-of-two group re-uses kSubBuckets linear buckets. 64-bit values
  /// need (64 - kSubBucketBits) groups after the exact range.
  static constexpr std::size_t kGroups = 64 - kSubBucketBits;
  static constexpr std::size_t kBuckets = (kGroups + 1) * kSubBuckets;

  /// Bucket index of `value`; total order, stable across processes.
  static constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int top = std::bit_width(value) - 1;  // >= kSubBucketBits
    const int shift = top - static_cast<int>(kSubBucketBits);
    const auto sub = static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
    return (static_cast<std::size_t>(top) - kSubBucketBits + 1) * kSubBuckets + sub;
  }

  /// Inclusive upper bound of bucket `index` (the value quantile() reports).
  static constexpr std::uint64_t bucket_upper_bound(std::size_t index) noexcept {
    if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
    const std::size_t group = index / kSubBuckets;  // >= 1
    const std::size_t sub = index % kSubBuckets;
    const int shift = static_cast<int>(group) - 1;
    const std::uint64_t base = (std::uint64_t{kSubBuckets} + sub) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return base + (width - 1);
  }

  /// Records one sample. Allocation-free; not thread-safe — give each
  /// recording thread its own histogram and merge().
  void record(std::uint64_t value) noexcept {
    ++counts_[bucket_index(value)];
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = std::max(max_, value);
  }

  /// Folds `other` into this histogram (element-wise; commutative and
  /// associative, so any merge tree over per-worker histograms yields the
  /// same result).
  void merge(const LatencyHistogram& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket containing
  /// the ceil(q * count)-th sample, clamped to the exact [min, max] range.
  /// 0 when empty. Monotone in q by construction (a cumulative walk), so
  /// quantile(.5) <= quantile(.99) <= quantile(.999) always holds.
  std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min();
    if (q >= 1.0) return max_;
    const auto rank = static_cast<std::uint64_t>(
        std::min(static_cast<double>(count_ - 1),
                 q * static_cast<double>(count_)));  // 0-based target rank
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank)
        return std::clamp(bucket_upper_bound(i), min_, max_);
    }
    return max_;  // unreachable: counts_ sums to count_
  }

  /// Raw bucket counts (telemetry serialization / tests).
  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace sfqecc::util
