// FNV-1a hashing primitives shared by the engine's fingerprint families —
// campaign_fingerprint (checkpoint identity) and the artifact-cache content
// addresses (engine/artifact_cache.hpp). Both families are load-bearing for
// determinism and resume correctness, so they must hash through one
// definition: a silent divergence would change one set of fingerprints and
// orphan checkpoints or alias cache keys.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sfqecc::util {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline void fnv_mix(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

inline void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) { fnv_mix(h, &v, sizeof v); }

inline void fnv_mix_double(std::uint64_t& h, double v) { fnv_mix(h, &v, sizeof v); }

inline void fnv_mix_string(std::uint64_t& h, const std::string& s) {
  fnv_mix_u64(h, s.size());
  fnv_mix(h, s.data(), s.size());
}

}  // namespace sfqecc::util
