// Minimal JSON string escaping shared by the repo's hand-rolled JSON
// emitters (engine reports, BENCH_*.json perf records). Escapes the quote,
// backslash and every control character, so arbitrary strings (e.g. hand-
// built campaign cell labels) round-trip through any conforming JSON parser.
#pragma once

#include <cstdio>
#include <string>

namespace sfqecc::util {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace sfqecc::util
