// Minimal JSON string escaping shared by the repo's hand-rolled JSON
// emitters (engine reports, BENCH_*.json perf records). Handles the
// characters those writers can actually produce: quote, backslash, newline.
#pragma once

#include <string>

namespace sfqecc::util {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace sfqecc::util
