// Small statistics toolkit used by the Monte-Carlo harness and benches:
// summary statistics, quantiles and Wilson confidence intervals for the
// binomial proportions reported in the paper's Fig. 5.
#pragma once

#include <cstddef>
#include <vector>

namespace sfqecc::util {

/// Summary of a sample: count, mean, (sample) variance/stddev, min and max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased sample variance (n-1 denominator)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes summary statistics of `xs`. Empty input yields a zero Summary.
Summary summarize(const std::vector<double>& xs);

/// Empirical quantile with linear interpolation (type-7, the numpy default).
/// `q` must lie in [0, 1]; `xs` must be non-empty.
double quantile(std::vector<double> xs, double q);

/// Wilson score interval for a binomial proportion.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for `successes` out of `trials` at confidence z
/// (z = 1.96 for 95 %). `trials` must be > 0.
Interval wilson_interval(std::size_t successes, std::size_t trials, double z = 1.96);

/// Streaming mean/variance accumulator (Welford). Numerically stable.
class Accumulator {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sfqecc::util
